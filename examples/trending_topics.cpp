// Emerging-topic discovery scenario (paper Tables 3-4): each user's tweets
// form a stream of words; keyword sets bursting across many user streams are
// hot events.
//
// Generates a synthetic microblog trace with planted events, mines FCPs with
// CooMine, and prints a Table-3-style report: pattern, number of streams
// (users), and whether it matches a planted event.
//
// Usage: ./build/examples/trending_topics [--tweets=N] [--users=N]
//        [--theta=N] [--seed=N]

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/mining_engine.h"
#include "datagen/twitter_gen.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  fcp::Flags flags(argc, argv);

  fcp::TwitterConfig config;
  config.num_users = static_cast<uint32_t>(flags.GetInt("users", 4000));
  config.total_tweets = static_cast<uint64_t>(flags.GetInt("tweets", 60000));
  config.num_events = static_cast<uint32_t>(flags.GetInt("events", 6));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  fcp::MiningParams params;
  params.xi = fcp::Seconds(60);
  params.tau = fcp::Minutes(30);
  params.theta = static_cast<uint32_t>(flags.GetInt("theta", 30));
  params.min_pattern_size = 2;
  params.max_pattern_size = 4;

  std::printf("Generating %llu tweets from %u users (%u planted events)...\n",
              static_cast<unsigned long long>(config.total_tweets),
              config.num_users, config.num_events);
  const fcp::TwitterTrace trace = GenerateTwitter(config);

  fcp::EngineOptions options;
  options.suppression_window = params.tau;
  fcp::MiningEngine engine(fcp::MinerKind::kCooMine, params, options);

  // Track, per distinct pattern, the maximum support seen.
  std::map<fcp::Pattern, size_t> support;
  auto absorb = [&](std::vector<fcp::Fcp> fcps) {
    for (const fcp::Fcp& fcp : fcps) {
      size_t& best = support[fcp.objects];
      best = std::max(best, fcp.streams.size());
    }
  };
  for (const fcp::ObjectEvent& event : trace.events) {
    absorb(engine.PushEvent(event));
  }
  absorb(engine.Flush());

  // Rank patterns by support (Table 3 reports "the number of streams").
  std::vector<std::pair<fcp::Pattern, size_t>> ranked(support.begin(),
                                                      support.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  std::printf("\n%-40s %8s  %s\n", "FCP (keywords)", "streams", "hot event?");
  std::printf("%s\n", std::string(70, '-').c_str());
  int shown = 0;
  for (const auto& [pattern, streams] : ranked) {
    std::string words;
    for (size_t i = 0; i < pattern.size(); ++i) {
      if (i) words += " ";
      words += trace.WordName(pattern[i]);
    }
    // Match against planted ground truth.
    std::string event_name = "-";
    for (const fcp::EventPlan& plan : trace.planted_events) {
      if (std::includes(plan.keywords.begin(), plan.keywords.end(),
                        pattern.begin(), pattern.end())) {
        event_name = plan.name;
        break;
      }
    }
    std::printf("%-40s %8zu  %s\n", words.c_str(), streams,
                event_name.c_str());
    if (++shown == 15) break;
  }

  std::printf("\nPlanted events: %zu; recovered in the ranking above:\n",
              trace.planted_events.size());
  for (const fcp::EventPlan& plan : trace.planted_events) {
    const bool hit = support.contains(plan.keywords);
    std::printf("  [%s] %-28s (%u participants)\n", hit ? "x" : " ",
                plan.name.c_str(), plan.num_participants);
  }
  return 0;
}
