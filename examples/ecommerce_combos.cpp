// E-commerce scenario from the paper's introduction: each user's browsing
// trace is a stream of item visits; items co-occurring in many users' traces
// over a short period signal cross-sell ("combo deal") opportunities.
//
// Demonstrates parameter sensitivity: the same trace mined under several
// (theta, xi) settings, showing how the pattern count reacts — the intuition
// behind the paper's Figs. 9-10.
//
// Usage: ./build/examples/ecommerce_combos [--sessions=N] [--seed=N]

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "core/mining_engine.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace {

struct BrowseTrace {
  std::vector<fcp::ObjectEvent> events;
};

// Synthesizes browsing sessions: Zipf-popular items, plus "bundles" (items
// frequently browsed together, e.g., console + controller + game).
BrowseTrace GenerateBrowsing(uint32_t sessions, uint64_t seed) {
  constexpr uint32_t kItems = 5000;
  constexpr uint32_t kBundles = 12;
  constexpr uint32_t kBundleSize = 3;
  fcp::Rng rng(seed);
  fcp::ZipfDistribution zipf(kItems, 1.0);

  // Reserve item ids [kItems, kItems + kBundles*kBundleSize) for bundles.
  BrowseTrace trace;
  fcp::Timestamp now = 0;
  for (uint32_t user = 0; user < sessions; ++user) {
    now += static_cast<fcp::Timestamp>(rng.Below(fcp::Seconds(3)));
    fcp::Timestamp t = now;
    const bool browses_bundle = rng.Chance(0.25);
    if (browses_bundle) {
      const uint32_t bundle = static_cast<uint32_t>(rng.Below(kBundles));
      for (uint32_t k = 0; k < kBundleSize; ++k) {
        trace.events.push_back(
            {user, kItems + bundle * kBundleSize + k, t});
        t += static_cast<fcp::Timestamp>(rng.Below(fcp::Seconds(20)));
      }
    }
    const uint32_t extra = 2 + static_cast<uint32_t>(rng.Below(6));
    for (uint32_t k = 0; k < extra; ++k) {
      trace.events.push_back(
          {user, static_cast<fcp::ObjectId>(zipf.Sample(rng)), t});
      t += static_cast<fcp::Timestamp>(rng.Below(fcp::Seconds(20)));
    }
  }
  std::sort(trace.events.begin(), trace.events.end(),
            [](const fcp::ObjectEvent& a, const fcp::ObjectEvent& b) {
              return a.time < b.time;
            });
  return trace;
}

// Mines the trace under one parameter setting; returns #distinct patterns
// per size.
std::map<uint32_t, uint64_t> MineOnce(const BrowseTrace& trace,
                                      uint32_t theta, fcp::DurationMs xi) {
  fcp::MiningParams params;
  params.xi = xi;
  params.tau = fcp::Minutes(20);
  params.theta = theta;
  params.min_pattern_size = 2;
  params.max_pattern_size = 4;
  fcp::MiningEngine engine(fcp::MinerKind::kCooMine, params);
  for (const fcp::ObjectEvent& event : trace.events) engine.PushEvent(event);
  engine.Flush();
  return engine.collector().distinct_patterns_by_size();
}

}  // namespace

int main(int argc, char** argv) {
  fcp::Flags flags(argc, argv);
  const uint32_t sessions =
      static_cast<uint32_t>(flags.GetInt("sessions", 3000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 99));

  std::printf("Generating %u browsing sessions...\n", sessions);
  const BrowseTrace trace = GenerateBrowsing(sessions, seed);
  std::printf("%zu item-visit events\n\n", trace.events.size());

  std::printf("%7s %8s | %10s %10s %10s\n", "theta", "xi(s)", "#combos(2)",
              "#combos(3)", "#combos(4)");
  std::printf("%s\n", std::string(56, '-').c_str());
  for (uint32_t theta : {5u, 10u, 20u, 40u}) {
    for (fcp::DurationMs xi : {fcp::Seconds(30), fcp::Seconds(60)}) {
      const auto counts = MineOnce(trace, theta, xi);
      auto get = [&](uint32_t k) -> uint64_t {
        auto it = counts.find(k);
        return it == counts.end() ? 0 : it->second;
      };
      std::printf("%7u %8lld | %10llu %10llu %10llu\n", theta,
                  static_cast<long long>(xi / 1000),
                  static_cast<unsigned long long>(get(2)),
                  static_cast<unsigned long long>(get(3)),
                  static_cast<unsigned long long>(get(4)));
    }
  }
  std::printf(
      "\nHigher theta -> sharply fewer combos (cf. paper Fig. 10); larger xi\n"
      "-> longer browsing windows count as co-occurrences -> more combos\n"
      "(cf. Fig. 7(a)).\n");
  return 0;
}
