// Quickstart: mine frequent co-occurrence patterns across three tiny streams.
//
// Three "cameras" (streams 0, 1, 2) each see vehicles 7 and 8 pass within a
// minute of each other — a convoy. With theta = 3 the pair {7, 8} becomes a
// frequent co-occurrence pattern the moment the third camera's segment
// completes.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/mining_engine.h"

int main() {
  fcp::MiningParams params;
  params.xi = fcp::Seconds(60);    // co-occurrence window within one stream
  params.tau = fcp::Minutes(30);   // window across streams
  params.theta = 3;                // minimum number of streams
  params.min_pattern_size = 2;     // only report pairs and bigger

  fcp::MiningEngine engine(fcp::MinerKind::kCooMine, params);

  // (stream, object, time) — the convoy {7, 8} passes cameras 0, 1, 2;
  // object 9 is unrelated background traffic.
  const fcp::ObjectEvent feed[] = {
      {0, 7, fcp::Seconds(0)},   {0, 8, fcp::Seconds(20)},
      {1, 9, fcp::Seconds(30)},  {1, 7, fcp::Seconds(90)},
      {1, 8, fcp::Seconds(115)}, {2, 7, fcp::Seconds(180)},
      {2, 8, fcp::Seconds(200)}, {0, 9, fcp::Seconds(300)},
      {1, 9, fcp::Seconds(300)}, {2, 9, fcp::Seconds(300)},
  };

  for (const fcp::ObjectEvent& event : feed) {
    for (const fcp::Fcp& fcp : engine.PushEvent(event)) {
      std::printf("FCP %s — objects travelling together across %zu streams\n",
                  fcp.DebugString().c_str(), fcp.streams.size());
    }
  }
  for (const fcp::Fcp& fcp : engine.Flush()) {
    std::printf("FCP %s (at end of feed)\n", fcp.DebugString().c_str());
  }

  std::printf("segments completed: %llu, index memory: %zu bytes\n",
              static_cast<unsigned long long>(engine.segments_completed()),
              engine.MemoryUsage());
  return 0;
}
