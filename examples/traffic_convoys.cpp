// Crime-prevention scenario from the paper's introduction: find groups of
// vehicles travelling together across traffic-surveillance cameras.
//
// Generates a synthetic city (camera streams with background traffic and
// planted convoys), mines FCPs online with CooMine, and scores the result
// against the planted ground truth (precision / recall on vehicle groups).
//
// Usage: ./build/examples/traffic_convoys [--events=N] [--cameras=N]
//        [--convoys=N] [--theta=N] [--seed=N]

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "core/mining_engine.h"
#include "datagen/traffic_gen.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace {

using fcp::ConvoyPlan;
using fcp::Fcp;
using fcp::ObjectEvent;
using fcp::Pattern;

}  // namespace

int main(int argc, char** argv) {
  fcp::Flags flags(argc, argv);

  fcp::TrafficConfig config;
  config.num_cameras = static_cast<uint32_t>(flags.GetInt("cameras", 100));
  config.num_vehicles = static_cast<uint32_t>(flags.GetInt("vehicles", 10000));
  config.total_events =
      static_cast<uint64_t>(flags.GetInt("events", 100000));
  config.num_convoys = static_cast<uint32_t>(flags.GetInt("convoys", 15));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  fcp::MiningParams params;
  params.xi = fcp::Seconds(60);
  params.tau = fcp::Minutes(30);
  params.theta = static_cast<uint32_t>(flags.GetInt("theta", 3));
  params.min_pattern_size = 2;
  params.max_pattern_size = 5;

  std::printf("Generating %llu VPRs over %u cameras with %u convoys...\n",
              static_cast<unsigned long long>(config.total_events),
              config.num_cameras, config.num_convoys);
  const fcp::TrafficTrace trace = GenerateTraffic(config);

  fcp::EngineOptions options;
  options.suppression_window = params.tau;  // one alert per convoy episode
  fcp::MiningEngine engine(fcp::MinerKind::kCooMine, params, options);

  fcp::Stopwatch clock;
  std::vector<Fcp> alerts;
  for (const ObjectEvent& event : trace.events) {
    for (Fcp& fcp : engine.PushEvent(event)) alerts.push_back(std::move(fcp));
  }
  for (Fcp& fcp : engine.Flush()) alerts.push_back(std::move(fcp));
  const double elapsed = clock.ElapsedSeconds();

  // Keep only maximal patterns per trigger window for reporting.
  std::set<Pattern> reported;
  for (const Fcp& fcp : alerts) reported.insert(fcp.objects);

  // Score against the planted convoys.
  std::set<Pattern> truth;
  for (const ConvoyPlan& convoy : trace.convoys) truth.insert(convoy.vehicles);
  size_t recovered = 0;
  for (const Pattern& convoy : truth) {
    if (reported.contains(convoy)) ++recovered;
  }
  // A reported pattern is "explained" if it is a subset of some convoy
  // (smaller subsets of a convoy are genuine co-travel groups too).
  size_t explained = 0;
  for (const Pattern& pattern : reported) {
    for (const Pattern& convoy : truth) {
      if (std::includes(convoy.begin(), convoy.end(), pattern.begin(),
                        pattern.end())) {
        ++explained;
        break;
      }
    }
  }

  std::printf("\nProcessed %zu events in %.2fs (%.0f events/s)\n",
              trace.events.size(), elapsed,
              static_cast<double>(trace.events.size()) / elapsed);
  std::printf("Alerts (distinct patterns, size >= 2): %zu\n", reported.size());
  std::printf("Convoy recall:  %zu / %zu planted convoys fully recovered\n",
              recovered, truth.size());
  std::printf("Alert precision: %zu / %zu alerts explained by a convoy\n",
              explained, reported.size());

  std::printf("\nSample alerts:\n");
  int shown = 0;
  for (const Fcp& fcp : alerts) {
    if (fcp.objects.size() < 2) continue;
    std::printf("  vehicles {");
    for (size_t i = 0; i < fcp.objects.size(); ++i) {
      std::printf("%s%u", i ? ", " : "", fcp.objects[i]);
    }
    std::printf("} seen together at %zu cameras within %.1f min\n",
                fcp.streams.size(),
                static_cast<double>(fcp.window_end - fcp.window_start) /
                    fcp::Minutes(1));
    if (++shown == 8) break;
  }
  return 0;
}
