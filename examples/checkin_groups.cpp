// Location-based-services scenario from the paper's introduction: each
// mobile user's check-ins form a stream of venue ids; groups of venues
// visited together across many users within a short span reveal people
// "hanging out together" — targets for group-buying offers.
//
// This example also demonstrates the parallel ingestion engine
// (ParallelEngine) and the report helpers (maximal patterns / top-K).
//
// Usage: ./build/examples/checkin_groups [--users=N] [--checkins=N]
//        [--workers=N] [--seed=N]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/parallel_engine.h"
#include "core/pattern_report.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/zipf.h"

namespace {

struct CheckinTrace {
  std::vector<fcp::ObjectEvent> events;
  // Ground truth: "hangout" venue circuits many users walk together.
  std::vector<fcp::Pattern> hangouts;
};

// Users check into Zipf-popular venues; planted "hangout groups" of users
// tour a fixed circuit of venues within minutes of each other.
CheckinTrace GenerateCheckins(uint32_t users, uint32_t checkins,
                              uint64_t seed) {
  constexpr uint32_t kVenues = 2000;
  constexpr uint32_t kHangouts = 6;
  constexpr uint32_t kCircuit = 3;    // venues per hangout circuit
  constexpr uint32_t kGroupSize = 8;  // users per hangout
  fcp::Rng rng(seed);
  fcp::ZipfDistribution venue_popularity(kVenues, 1.0);

  CheckinTrace trace;
  const fcp::Timestamp horizon =
      static_cast<fcp::Timestamp>(checkins / users + 1) * fcp::Minutes(30);

  // Background check-ins.
  for (uint32_t user = 0; user < users; ++user) {
    fcp::Timestamp t = static_cast<fcp::Timestamp>(
        rng.Below(static_cast<uint64_t>(fcp::Minutes(30))));
    while (t < horizon) {
      trace.events.push_back(
          {user, static_cast<fcp::ObjectId>(venue_popularity.Sample(rng)),
           t});
      t += fcp::Minutes(20) + static_cast<fcp::Timestamp>(
                                  rng.Below(fcp::Minutes(40)));
    }
  }

  // Planted hangout circuits: reserved venue ids >= kVenues.
  for (uint32_t h = 0; h < kHangouts; ++h) {
    fcp::Pattern circuit;
    for (uint32_t v = 0; v < kCircuit; ++v) {
      circuit.push_back(kVenues + h * kCircuit + v);
    }
    trace.hangouts.push_back(circuit);
    const fcp::Timestamp start = static_cast<fcp::Timestamp>(
        rng.Below(static_cast<uint64_t>(horizon - fcp::Minutes(60))));
    for (uint32_t g = 0; g < kGroupSize; ++g) {
      const fcp::StreamId user = static_cast<fcp::StreamId>(rng.Below(users));
      fcp::Timestamp t = start + static_cast<fcp::Timestamp>(
                                     rng.Below(fcp::Minutes(5)));
      for (fcp::ObjectId venue : circuit) {
        trace.events.push_back({user, venue, t});
        t += fcp::Minutes(3) + static_cast<fcp::Timestamp>(
                                   rng.Below(fcp::Minutes(5)));
      }
    }
  }

  std::sort(trace.events.begin(), trace.events.end(),
            [](const fcp::ObjectEvent& a, const fcp::ObjectEvent& b) {
              return a.time < b.time;
            });
  if (trace.events.size() > checkins) trace.events.resize(checkins);
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  fcp::Flags flags(argc, argv);
  const uint32_t users = static_cast<uint32_t>(flags.GetInt("users", 2000));
  const uint32_t checkins =
      static_cast<uint32_t>(flags.GetInt("checkins", 60000));
  const uint32_t workers =
      static_cast<uint32_t>(flags.GetInt("workers", 2));
  const uint32_t shards =
      static_cast<uint32_t>(flags.GetInt("shards", 1));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 5));

  std::printf("Generating %u check-ins from %u users...\n", checkins, users);
  const CheckinTrace trace = GenerateCheckins(users, checkins, seed);

  fcp::MiningParams params;
  params.xi = fcp::Minutes(30);  // a venue circuit takes up to half an hour
  params.tau = fcp::Minutes(60);
  params.theta = 5;              // at least 5 people together
  params.min_pattern_size = 2;
  params.max_pattern_size = 4;

  fcp::ParallelEngineOptions options;
  options.num_workers = workers;
  options.num_miner_shards = shards;
  fcp::ParallelEngine engine(fcp::MinerKind::kCooMine, params, options);

  fcp::Stopwatch clock;
  for (const fcp::ObjectEvent& event : trace.events) engine.Push(event);
  engine.Finish();
  const double elapsed = clock.ElapsedSeconds();

  fcp::PatternSupportIndex report;
  report.AddAll(engine.results());

  std::printf("\n%zu events in %.2fs (%.0f/s, %u segmenter workers, "
              "%u miner shards)\n",
              trace.events.size(), elapsed,
              static_cast<double>(trace.events.size()) / elapsed, workers,
              shards);
  std::printf("%zu distinct venue patterns; maximal ones:\n", report.size());
  for (const auto& entry : report.MaximalPatterns()) {
    if (entry.pattern.size() < 2) continue;
    std::printf("  venues {");
    for (size_t i = 0; i < entry.pattern.size(); ++i) {
      std::printf("%s%u", i ? ", " : "", entry.pattern[i]);
    }
    std::printf("} visited together by %zu users\n", entry.support);
  }

  size_t recovered = 0;
  for (const fcp::Pattern& circuit : trace.hangouts) {
    if (report.SupportOf(circuit) >= params.theta) ++recovered;
  }
  std::printf("\nPlanted hangout circuits recovered: %zu / %zu\n", recovered,
              trace.hangouts.size());
  return 0;
}
