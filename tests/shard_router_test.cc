#include "stream/shard_router.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/shard.h"
#include "test_util.h"

namespace fcp {
namespace {

using testing::MakeSegment;

// Drains everything currently queued for `shard` (the router must be closed
// or the producer done, so Pop never blocks indefinitely here).
std::vector<ShardDelivery> Drain(ShardRouter& router, uint32_t shard) {
  std::vector<ShardDelivery> out;
  while (auto delivery = router.queue(shard).TryPop()) {
    out.push_back(std::move(*delivery));
  }
  return out;
}

TEST(ShardSpecTest, SerialSpecOwnsEverything) {
  const ShardSpec serial;
  EXPECT_TRUE(serial.IsSingleton());
  for (ObjectId o = 0; o < 1000; ++o) EXPECT_TRUE(serial.Owns(o));
}

TEST(ShardSpecTest, ShardsPartitionTheObjectUniverse) {
  for (uint32_t count : {2u, 3u, 8u}) {
    for (ObjectId o = 0; o < 1000; ++o) {
      uint32_t owners = 0;
      for (uint32_t i = 0; i < count; ++i) {
        owners += ShardSpec{i, count}.Owns(o) ? 1 : 0;
      }
      EXPECT_EQ(owners, 1u) << "object " << o << " with " << count
                            << " shards";
    }
  }
}

TEST(ShardRouterTest, SingleShardReceivesEverySegment) {
  ShardRouter router(1, 16);
  EXPECT_EQ(router.Route(MakeSegment(1, 0, {5, 7}, 100)), 1u);
  EXPECT_EQ(router.Route(MakeSegment(2, 1, {9}, 200)), 1u);
  router.Close();
  EXPECT_EQ(Drain(router, 0).size(), 2u);
  EXPECT_EQ(router.stats().segments_routed, 2u);
  EXPECT_EQ(router.stats().deliveries, 2u);
}

TEST(ShardRouterTest, MulticastsToExactlyTheOwningShards) {
  constexpr uint32_t kShards = 4;
  ShardRouter router(kShards, 64);
  const Segment segment = MakeSegment(1, 0, {1, 2, 3, 4, 5, 6}, 100);

  std::set<uint32_t> expected;
  for (ObjectId o : segment.DistinctObjects()) {
    expected.insert(ShardOf(o, kShards));
  }
  EXPECT_EQ(router.Route(segment), expected.size());
  router.Close();

  for (uint32_t s = 0; s < kShards; ++s) {
    const std::vector<ShardDelivery> got = Drain(router, s);
    if (expected.contains(s)) {
      ASSERT_EQ(got.size(), 1u) << "shard " << s;
      EXPECT_EQ(got[0].segment.id(), segment.id());
      EXPECT_EQ(got[0].watermark, segment.end_time());
    } else {
      EXPECT_TRUE(got.empty()) << "shard " << s;
    }
  }
}

TEST(ShardRouterTest, DuplicateObjectsDeliverOnce) {
  ShardRouter router(2, 16);
  // All entries map to the same object: exactly one delivery to its owner.
  EXPECT_EQ(router.Route(MakeSegment(1, 0, {42, 42, 42}, 50)), 1u);
  router.Close();
  EXPECT_EQ(Drain(router, 0).size() + Drain(router, 1).size(), 1u);
}

TEST(ShardRouterTest, WatermarkIsMonotoneAcrossOutOfOrderSegments) {
  ShardRouter router(2, 16);
  router.Route(MakeSegment(1, 0, {1}, 1000));
  EXPECT_EQ(router.watermark(), 1000);
  // An earlier-ending segment must not regress the shipped watermark.
  router.Route(MakeSegment(2, 1, {2}, 400));
  EXPECT_EQ(router.watermark(), 1000);
  router.Close();
  for (uint32_t s = 0; s < 2; ++s) {
    for (const ShardDelivery& delivery : Drain(router, s)) {
      if (delivery.segment.id() == 2) {
        EXPECT_EQ(delivery.watermark, 1000);
      }
    }
  }
}

TEST(ShardRouterTest, CloseEndsConsumers) {
  ShardRouter router(3, 4);
  router.Route(MakeSegment(1, 0, {7}, 10));
  router.Close();
  for (uint32_t s = 0; s < 3; ++s) {
    Drain(router, s);
    EXPECT_EQ(router.queue(s).Pop(), std::nullopt);
  }
}

}  // namespace
}  // namespace fcp
