#include "stream/shard_router.h"

#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/shard.h"
#include "test_util.h"

namespace fcp {
namespace {

using testing::MakeSegment;

// Shorthand: wraps a test segment in a (pool-less) refcounted slab.
SegmentRef Ref(Segment segment) { return SegmentRef::Adopt(std::move(segment)); }

// Drains everything currently queued for `shard` (the router must be closed
// or the producer done, so Pop never blocks indefinitely here).
std::vector<ShardDelivery> Drain(ShardRouter& router, uint32_t shard) {
  std::vector<ShardDelivery> out;
  while (auto delivery = router.queue(shard).TryPop()) {
    out.push_back(std::move(*delivery));
  }
  return out;
}

TEST(ShardSpecTest, SerialSpecOwnsEverything) {
  const ShardSpec serial;
  EXPECT_TRUE(serial.IsSingleton());
  for (ObjectId o = 0; o < 1000; ++o) EXPECT_TRUE(serial.Owns(o));
}

TEST(ShardSpecTest, ShardsPartitionTheObjectUniverse) {
  for (uint32_t count : {2u, 3u, 8u}) {
    for (ObjectId o = 0; o < 1000; ++o) {
      uint32_t owners = 0;
      for (uint32_t i = 0; i < count; ++i) {
        owners += ShardSpec{i, count}.Owns(o) ? 1 : 0;
      }
      EXPECT_EQ(owners, 1u) << "object " << o << " with " << count
                            << " shards";
    }
  }
}

TEST(ShardRouterTest, SingleShardReceivesEverySegment) {
  ShardRouter router(1, 16);
  EXPECT_EQ(router.Route(Ref(MakeSegment(1, 0, {5, 7}, 100))), 1u);
  EXPECT_EQ(router.Route(Ref(MakeSegment(2, 1, {9}, 200))), 1u);
  router.Close();
  EXPECT_EQ(Drain(router, 0).size(), 2u);
  EXPECT_EQ(router.stats().segments_routed, 2u);
  EXPECT_EQ(router.stats().deliveries, 2u);
}

TEST(ShardRouterTest, MulticastsToExactlyTheOwningShards) {
  constexpr uint32_t kShards = 4;
  ShardRouter router(kShards, 64);
  const SegmentRef segment = Ref(MakeSegment(1, 0, {1, 2, 3, 4, 5, 6}, 100));

  std::set<uint32_t> expected;
  for (ObjectId o : segment->DistinctObjects()) {
    expected.insert(ShardOf(o, kShards));
  }
  EXPECT_EQ(router.Route(segment), expected.size());
  router.Close();

  for (uint32_t s = 0; s < kShards; ++s) {
    const std::vector<ShardDelivery> got = Drain(router, s);
    if (expected.contains(s)) {
      ASSERT_EQ(got.size(), 1u) << "shard " << s;
      EXPECT_EQ(got[0].segment->id(), segment->id());
      EXPECT_EQ(got[0].watermark, segment->end_time());
    } else {
      EXPECT_TRUE(got.empty()) << "shard " << s;
    }
  }
}

TEST(ShardRouterTest, DuplicateObjectsDeliverOnce) {
  ShardRouter router(2, 16);
  // All entries map to the same object: exactly one delivery to its owner.
  EXPECT_EQ(router.Route(Ref(MakeSegment(1, 0, {42, 42, 42}, 50))), 1u);
  router.Close();
  EXPECT_EQ(Drain(router, 0).size() + Drain(router, 1).size(), 1u);
}

TEST(ShardRouterTest, WatermarkIsMonotoneAcrossOutOfOrderSegments) {
  ShardRouter router(2, 16);
  router.Route(Ref(MakeSegment(1, 0, {1}, 1000)));
  EXPECT_EQ(router.watermark(), 1000);
  // An earlier-ending segment must not regress the shipped watermark.
  router.Route(Ref(MakeSegment(2, 1, {2}, 400)));
  EXPECT_EQ(router.watermark(), 1000);
  router.Close();
  for (uint32_t s = 0; s < 2; ++s) {
    for (const ShardDelivery& delivery : Drain(router, s)) {
      if (delivery.segment->id() == 2) {
        EXPECT_EQ(delivery.watermark, 1000);
      }
    }
  }
}

TEST(ShardRouterTest, RouteBatchMatchesPerSegmentRoute) {
  // The same segment sequence through Route and RouteBatch must yield the
  // same deliveries per shard — same segments, same (cumulative) watermarks
  // — and the same router stats.
  constexpr uint32_t kShards = 3;
  std::vector<SegmentRef> segments;
  segments.push_back(Ref(MakeSegment(1, 0, {1, 5, 9}, 100)));
  segments.push_back(Ref(MakeSegment(2, 1, {2}, 700)));
  segments.push_back(Ref(MakeSegment(3, 0, {3, 4}, 300)));  // watermark holds 700
  segments.push_back(Ref(MakeSegment(4, 2, {1, 2, 3, 4, 5, 6}, 900)));

  ShardRouter serial(kShards, 64);
  uint64_t serial_delivered = 0;
  for (const SegmentRef& segment : segments) {
    serial_delivered += serial.Route(segment);
  }
  serial.Close();

  ShardRouter batched(kShards, 64);
  const uint64_t batch_delivered =
      batched.RouteBatch(segments.data(), segments.size());
  batched.Close();

  EXPECT_EQ(batch_delivered, serial_delivered);
  EXPECT_EQ(batched.watermark(), serial.watermark());
  EXPECT_EQ(batched.stats().segments_routed, serial.stats().segments_routed);
  EXPECT_EQ(batched.stats().deliveries, serial.stats().deliveries);
  for (uint32_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(batched.routed_to(s), serial.routed_to(s)) << "shard " << s;
    const std::vector<ShardDelivery> expected = Drain(serial, s);
    const std::vector<ShardDelivery> got = Drain(batched, s);
    ASSERT_EQ(got.size(), expected.size()) << "shard " << s;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(*got[i].segment, *expected[i].segment) << "shard " << s;
      EXPECT_EQ(got[i].watermark, expected[i].watermark)
          << "shard " << s << " delivery " << i;
    }
  }
}

TEST(ShardRouterTest, RouteBatchLargerThanQueueCapacity) {
  // Single-shard router with a tiny queue: the batch must flow through in
  // chunks while the consumer drains, losing nothing.
  ShardRouter router(1, 4);
  std::vector<SegmentRef> segments;
  for (SegmentId id = 1; id <= 20; ++id) {
    segments.push_back(
        Ref(MakeSegment(id, 0, {static_cast<ObjectId>(id % 5)},
                        static_cast<Timestamp>(id * 10))));
  }
  std::vector<ShardDelivery> got;
  std::thread consumer([&] {
    while (auto delivery = router.queue(0).Pop()) {
      got.push_back(std::move(*delivery));
    }
  });
  EXPECT_EQ(router.RouteBatch(segments.data(), segments.size()), 20u);
  router.Close();
  consumer.join();
  ASSERT_EQ(got.size(), 20u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].segment->id(), segments[i]->id());
    EXPECT_EQ(got[i].watermark, segments[i]->end_time());
  }
}

TEST(ShardRouterTest, EmptyRouteBatchIsANoOp) {
  ShardRouter router(2, 8);
  EXPECT_EQ(router.RouteBatch(nullptr, 0), 0u);
  EXPECT_EQ(router.stats().segments_routed, 0u);
}

TEST(ShardRouterTest, CloseEndsConsumers) {
  ShardRouter router(3, 4);
  router.Route(Ref(MakeSegment(1, 0, {7}, 10)));
  router.Close();
  for (uint32_t s = 0; s < 3; ++s) {
    Drain(router, s);
    EXPECT_EQ(router.queue(s).Pop(), std::nullopt);
  }
}

}  // namespace
}  // namespace fcp
