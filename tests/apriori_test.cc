#include "core/apriori.h"

#include <gtest/gtest.h>

namespace fcp {
namespace {

TEST(AprioriTest, EmptyInput) {
  EXPECT_TRUE(GenerateCandidates({}).empty());
}

TEST(AprioriTest, SingletonsJoinToPairs) {
  const std::vector<Pattern> f1 = {{1}, {2}, {3}};
  const std::vector<Pattern> candidates = GenerateCandidates(f1);
  EXPECT_EQ(candidates,
            (std::vector<Pattern>{{1, 2}, {1, 3}, {2, 3}}));
}

TEST(AprioriTest, SingleSingletonNoCandidates) {
  EXPECT_TRUE(GenerateCandidates({{7}}).empty());
}

TEST(AprioriTest, PairsJoinOnlyOnSharedPrefix) {
  // {1,2} and {1,3} share prefix {1} -> candidate {1,2,3} needs subset {2,3}.
  {
    const std::vector<Pattern> f2 = {{1, 2}, {1, 3}, {2, 3}};
    EXPECT_EQ(GenerateCandidates(f2), (std::vector<Pattern>{{1, 2, 3}}));
  }
  {
    // Without {2,3} the candidate is pruned.
    const std::vector<Pattern> f2 = {{1, 2}, {1, 3}};
    EXPECT_TRUE(GenerateCandidates(f2).empty());
  }
}

TEST(AprioriTest, NoJoinAcrossDifferentPrefixes) {
  const std::vector<Pattern> f2 = {{1, 2}, {3, 4}};
  EXPECT_TRUE(GenerateCandidates(f2).empty());
}

TEST(AprioriTest, TriplesToQuads) {
  const std::vector<Pattern> f3 = {
      {1, 2, 3}, {1, 2, 4}, {1, 3, 4}, {2, 3, 4}};
  EXPECT_EQ(GenerateCandidates(f3), (std::vector<Pattern>{{1, 2, 3, 4}}));
}

TEST(AprioriTest, QuadPrunedWhenSubsetMissing) {
  // Missing {2,3,4}: {1,2,3,4} must be pruned.
  const std::vector<Pattern> f3 = {{1, 2, 3}, {1, 2, 4}, {1, 3, 4}};
  EXPECT_TRUE(GenerateCandidates(f3).empty());
}

TEST(AprioriTest, AllSubsetsFrequentDirect) {
  const std::vector<Pattern> f2 = {{1, 2}, {1, 3}, {2, 3}};
  EXPECT_TRUE(AllSubsetsFrequent({1, 2, 3}, f2));
  const std::vector<Pattern> missing = {{1, 2}, {1, 3}};
  EXPECT_FALSE(AllSubsetsFrequent({1, 2, 3}, missing));
}

TEST(AprioriTest, PairCandidateAlwaysPassesSubsetCheck) {
  // For size-2 candidates both subsets are the join parents.
  EXPECT_TRUE(AllSubsetsFrequent({4, 9}, {{4}, {9}}));
}

TEST(AprioriTest, LargeJoinCount) {
  // n singletons -> C(n,2) pair candidates.
  std::vector<Pattern> f1;
  for (ObjectId o = 0; o < 20; ++o) f1.push_back({o});
  EXPECT_EQ(GenerateCandidates(f1).size(), 190u);
}

TEST(AprioriTest, OutputSortedLexicographically) {
  std::vector<Pattern> f1 = {{2}, {5}, {9}};
  const auto candidates = GenerateCandidates(f1);
  EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
}

}  // namespace
}  // namespace fcp
