#include "util/rng.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace fcp {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, BelowOneIsZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Below(1), 0u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, RangeSingleton) {
  Rng rng(9);
  EXPECT_EQ(rng.Range(5, 5), 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  // Mean of U(0,1) is 0.5; with 100k samples the error is < 0.01 whp.
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.Chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.Exponential(50.0);
    ASSERT_GE(g, 0.0);
    sum += g;
  }
  EXPECT_NEAR(sum / kN, 50.0, 1.0);
}

TEST(RngTest, UniformBitsRoughly) {
  // Each of the 64 bit positions should be set ~50% of the time.
  Rng rng(23);
  constexpr int kN = 4096;
  std::vector<int> ones(64, 0);
  for (int i = 0; i < kN; ++i) {
    uint64_t v = rng.Next();
    for (int b = 0; b < 64; ++b) ones[b] += (v >> b) & 1;
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(static_cast<double>(ones[b]) / kN, 0.5, 0.05) << "bit " << b;
  }
}

}  // namespace
}  // namespace fcp
