#include "obs/watchdog.h"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "telemetry/registry.h"

namespace fcp::obs {
namespace {

constexpr int64_t kMs = 1'000'000;  // ns per ms

// All tests drive EvaluateOnce with a synthetic clock (poll_interval_ms = 0
// keeps Start() a no-op), so every predicate decision is deterministic.
WatchdogOptions TestOptions(telemetry::MetricRegistry* metrics = nullptr) {
  WatchdogOptions options;
  options.poll_interval_ms = 0;
  options.stall_timeout_ms = 100;
  options.backlog_timeout_ms = 50;
  options.metrics = metrics;
  return options;
}

TEST(WatchdogTest, StartsInStartingAndHoldsUntilReady) {
  Watchdog watchdog(TestOptions());
  StageHeartbeat* heartbeat = watchdog.RegisterStage("stage");
  EXPECT_EQ(watchdog.state(), HealthState::kStarting);
  EXPECT_FALSE(watchdog.ready());

  // Clean evaluations without SetReady stay in kStarting, not ready.
  heartbeat->Beat();
  watchdog.EvaluateOnce(0);
  watchdog.EvaluateOnce(10 * kMs);
  EXPECT_EQ(watchdog.state(), HealthState::kStarting);
  EXPECT_FALSE(watchdog.ready());

  // SetReady + the next clean evaluation flips to healthy and ready.
  watchdog.SetReady();
  watchdog.EvaluateOnce(20 * kMs);
  EXPECT_EQ(watchdog.state(), HealthState::kHealthy);
  EXPECT_TRUE(watchdog.ready());
}

TEST(WatchdogTest, IdleStageWithEmptyQueueStaysHealthyForever) {
  Watchdog watchdog(TestOptions());
  StageHeartbeat* heartbeat = watchdog.RegisterStage(
      "stage", [] { return size_t{0}; }, /*capacity=*/8);
  heartbeat->MarkIdle(true);
  watchdog.SetReady();
  watchdog.EvaluateOnce(0);
  // Hours of silence while idle with no queued input is not a stall.
  watchdog.EvaluateOnce(3'600'000 * kMs);
  EXPECT_EQ(watchdog.state(), HealthState::kHealthy);
  EXPECT_TRUE(watchdog.ready());
}

TEST(WatchdogTest, WedgedConsumerStallsAndRecovers) {
  telemetry::MetricRegistry metrics;
  Watchdog watchdog(TestOptions(&metrics));
  size_t depth = 5;
  StageHeartbeat* heartbeat = watchdog.RegisterStage(
      "shard-0", [&depth] { return depth; }, /*capacity=*/8);
  // The wedged-consumer shape: the consumer parked itself idle while work
  // rots in its queue. Idle must NOT excuse it.
  heartbeat->MarkIdle(true);
  watchdog.SetReady();
  watchdog.EvaluateOnce(0);
  EXPECT_EQ(watchdog.state(), HealthState::kHealthy);

  watchdog.EvaluateOnce(100 * kMs);  // silent for exactly stall_timeout
  EXPECT_EQ(watchdog.state(), HealthState::kStalled);
  EXPECT_FALSE(watchdog.ready());
  EXPECT_EQ(metrics.GetGauge("fcp_health_state")->Value(), 3);
  EXPECT_EQ(
      metrics.GetCounter("fcp_stage_stalls_total{stage=\"shard-0\"}")->Value(),
      1u);
  EXPECT_EQ(
      metrics.GetCounter("fcp_health_transitions_total{to=\"stalled\"}")
          ->Value(),
      1u);

  // Progress resumes: the next evaluation flips straight back to healthy.
  heartbeat->Beat(5);
  depth = 0;
  watchdog.EvaluateOnce(150 * kMs);
  EXPECT_EQ(watchdog.state(), HealthState::kHealthy);
  EXPECT_TRUE(watchdog.ready());
  EXPECT_EQ(metrics.GetGauge("fcp_health_state")->Value(), 1);
  // The stall counter records entry edges, not evaluations.
  EXPECT_EQ(
      metrics.GetCounter("fcp_stage_stalls_total{stage=\"shard-0\"}")->Value(),
      1u);
}

TEST(WatchdogTest, QueueDrainWithoutProgressAlsoRecovers) {
  Watchdog watchdog(TestOptions());
  size_t depth = 3;
  watchdog.RegisterStage("stage", [&depth] { return depth; }, 8);
  watchdog.SetReady();
  watchdog.EvaluateOnce(0);
  watchdog.EvaluateOnce(200 * kMs);
  EXPECT_EQ(watchdog.state(), HealthState::kStalled);
  // Someone else (a work-stealing thief) drained the queue: idle + empty is
  // healthy even though this stage's own counter never moved.
  depth = 0;
  watchdog.EvaluateOnce(300 * kMs);
  EXPECT_EQ(watchdog.state(), HealthState::kHealthy);
}

TEST(WatchdogTest, SilentBusyThreadStallsWithoutQueue) {
  Watchdog watchdog(TestOptions());
  // No depth probe at all: only the busy-and-silent predicate applies.
  StageHeartbeat* heartbeat = watchdog.RegisterStage("ingest");
  heartbeat->MarkIdle(false);
  watchdog.SetReady();
  watchdog.EvaluateOnce(0);
  EXPECT_EQ(watchdog.state(), HealthState::kHealthy);
  watchdog.EvaluateOnce(99 * kMs);  // one ms short of the timeout
  EXPECT_EQ(watchdog.state(), HealthState::kHealthy);
  watchdog.EvaluateOnce(100 * kMs);
  EXPECT_EQ(watchdog.state(), HealthState::kStalled);
  heartbeat->Beat();
  watchdog.EvaluateOnce(120 * kMs);
  EXPECT_EQ(watchdog.state(), HealthState::kHealthy);
}

TEST(WatchdogTest, PersistentBacklogDegradesWhileProgressing) {
  Watchdog watchdog(TestOptions());
  size_t depth = 8;
  StageHeartbeat* heartbeat =
      watchdog.RegisterStage("stage", [&depth] { return depth; }, 8);
  heartbeat->MarkIdle(false);
  watchdog.SetReady();
  watchdog.EvaluateOnce(0);
  // Full queue but the consumer keeps beating: degraded, never stalled.
  heartbeat->Beat();
  watchdog.EvaluateOnce(30 * kMs);  // full for 30ms < backlog_timeout
  EXPECT_EQ(watchdog.state(), HealthState::kHealthy);
  heartbeat->Beat();
  watchdog.EvaluateOnce(80 * kMs);  // continuously full for 80ms >= 50ms
  EXPECT_EQ(watchdog.state(), HealthState::kDegraded);
  EXPECT_TRUE(watchdog.ready());  // degraded still serves
  heartbeat->Beat();
  depth = 2;
  watchdog.EvaluateOnce(120 * kMs);
  EXPECT_EQ(watchdog.state(), HealthState::kHealthy);
}

TEST(WatchdogTest, WatermarkLagSloBreachDegrades) {
  WatchdogOptions options = TestOptions();
  options.watermark_lag_slo_ms = 1000;
  Watchdog watchdog(options);
  StageHeartbeat* heartbeat = watchdog.RegisterStage("stage");
  int64_t lag = 0;
  watchdog.SetWatermarkLagProbe([&lag] { return lag; });
  watchdog.SetReady();
  heartbeat->Beat();
  watchdog.EvaluateOnce(0);
  EXPECT_EQ(watchdog.state(), HealthState::kHealthy);
  lag = 5000;
  heartbeat->Beat();
  watchdog.EvaluateOnce(10 * kMs);
  EXPECT_EQ(watchdog.state(), HealthState::kDegraded);
  lag = 100;
  heartbeat->Beat();
  watchdog.EvaluateOnce(20 * kMs);
  EXPECT_EQ(watchdog.state(), HealthState::kHealthy);
}

TEST(WatchdogTest, StatusJsonCarriesStageRows) {
  Watchdog watchdog(TestOptions());
  StageHeartbeat* heartbeat =
      watchdog.RegisterStage("merge", [] { return size_t{3}; }, 16);
  heartbeat->Beat(7);
  watchdog.SetReady();
  watchdog.EvaluateOnce(0);
  const std::string json = watchdog.StatusJson();
  EXPECT_NE(json.find("\"state\":\"healthy\""), std::string::npos);
  EXPECT_NE(json.find("\"ready\":true"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"merge\""), std::string::npos);
  EXPECT_NE(json.find("\"progress\":7"), std::string::npos);
  EXPECT_NE(json.find("\"depth\":3"), std::string::npos);
  EXPECT_NE(json.find("\"capacity\":16"), std::string::npos);

  const std::vector<StageStatus> stages = watchdog.Stages();
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].name, "merge");
  EXPECT_EQ(stages[0].progress, 7u);
  EXPECT_FALSE(stages[0].stalled);
}

TEST(WatchdogTest, StallDuringStartupSurfaces) {
  Watchdog watchdog(TestOptions());
  size_t depth = 4;
  watchdog.RegisterStage("stage", [&depth] { return depth; }, 8);
  // No SetReady: a wedge during startup must still flip the state machine
  // (orchestrators distinguish "slow start" from "dead on arrival").
  watchdog.EvaluateOnce(0);
  watchdog.EvaluateOnce(200 * kMs);
  EXPECT_EQ(watchdog.state(), HealthState::kStalled);
  EXPECT_FALSE(watchdog.ready());
}

TEST(WatchdogTest, BackgroundThreadEvaluatesRealClock) {
  WatchdogOptions options;
  options.poll_interval_ms = 5;
  options.stall_timeout_ms = 10'000;
  Watchdog watchdog(options);
  StageHeartbeat* heartbeat = watchdog.RegisterStage("stage");
  heartbeat->Beat();
  watchdog.SetReady();
  watchdog.Start();
  // Wait for at least one real evaluation, then stop (idempotent).
  while (watchdog.evaluations() == 0) {
  }
  watchdog.Stop();
  watchdog.Stop();
  EXPECT_GE(watchdog.evaluations(), 1u);
  EXPECT_EQ(watchdog.state(), HealthState::kHealthy);
}

}  // namespace
}  // namespace fcp::obs
