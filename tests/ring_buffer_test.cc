// Unit tests for the power-of-two ring buffer behind the Seg-tree's Tlist.

#include "util/ring_buffer.h"

#include <cstdint>
#include <deque>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fcp {
namespace {

TEST(RingBufferTest, FifoOrderAcrossGrowth) {
  RingBuffer<int> ring;
  for (int i = 0; i < 100; ++i) ring.push_back(i);
  ASSERT_EQ(ring.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.front(), i);
    ring.pop_front();
  }
  EXPECT_TRUE(ring.empty());
}

TEST(RingBufferTest, AtIndexesFromFront) {
  RingBuffer<int> ring;
  for (int i = 0; i < 10; ++i) ring.push_back(i * 10);
  ring.pop_front();
  ring.pop_front();
  EXPECT_EQ(ring.at(0), 20);
  EXPECT_EQ(ring.at(7), 90);
}

TEST(RingBufferTest, WrapAroundThenGrowPreservesOrder) {
  RingBuffer<int> ring;
  int next = 0;
  // Fill to the initial capacity (16), drain most, then push past the wrap
  // point and beyond capacity so Grow() has to linearize a wrapped layout.
  for (; next < 16; ++next) ring.push_back(next);
  for (int i = 0; i < 12; ++i) ring.pop_front();
  for (; next < 60; ++next) ring.push_back(next);
  ASSERT_EQ(ring.size(), 48u);
  for (int expected = 12; expected < 60; ++expected) {
    EXPECT_EQ(ring.front(), expected);
    ring.pop_front();
  }
}

TEST(RingBufferTest, MemoryIsStableOnceWarm) {
  RingBuffer<uint64_t> ring;
  for (uint64_t i = 0; i < 100; ++i) ring.push_back(i);
  const size_t warm = ring.MemoryUsage();
  // A size-stable FIFO advancing forever must not grow.
  for (uint64_t i = 0; i < 10000; ++i) {
    ring.push_back(i);
    ring.pop_front();
  }
  EXPECT_EQ(ring.MemoryUsage(), warm);
}

TEST(RingBufferTest, RandomOpsMatchDeque) {
  RingBuffer<uint32_t> ring;
  std::deque<uint32_t> mirror;
  Rng rng(77);
  for (int op = 0; op < 20000; ++op) {
    if (mirror.empty() || rng.Chance(0.55)) {
      const uint32_t value = static_cast<uint32_t>(rng.Next());
      ring.push_back(value);
      mirror.push_back(value);
    } else {
      ASSERT_EQ(ring.front(), mirror.front());
      ring.pop_front();
      mirror.pop_front();
    }
    ASSERT_EQ(ring.size(), mirror.size());
    if (!mirror.empty()) {
      const size_t probe = rng.Below(mirror.size());
      ASSERT_EQ(ring.at(probe), mirror[probe]);
    }
  }
}

}  // namespace
}  // namespace fcp
