#include "util/zipf.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fcp {
namespace {

TEST(ZipfTest, SingleElement) {
  ZipfDistribution zipf(1, 1.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

TEST(ZipfTest, SamplesInRange) {
  ZipfDistribution zipf(100, 1.0);
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(rng), 100u);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(500, 0.8);
  double sum = 0;
  for (uint64_t r = 0; r < 500; ++r) sum += zipf.Pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, PmfMonotoneDecreasing) {
  ZipfDistribution zipf(100, 1.2);
  for (uint64_t r = 1; r < 100; ++r) {
    EXPECT_LE(zipf.Pmf(r), zipf.Pmf(r - 1)) << "rank " << r;
  }
}

TEST(ZipfTest, SkewZeroIsUniform) {
  ZipfDistribution zipf(10, 0.0);
  for (uint64_t r = 0; r < 10; ++r) EXPECT_NEAR(zipf.Pmf(r), 0.1, 1e-9);
}

TEST(ZipfTest, EmpiricalMatchesPmf) {
  constexpr uint64_t kN = 50;
  ZipfDistribution zipf(kN, 1.0);
  Rng rng(3);
  constexpr int kSamples = 200000;
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Sample(rng)];
  for (uint64_t r = 0; r < kN; ++r) {
    const double expected = zipf.Pmf(r);
    const double observed = static_cast<double>(counts[r]) / kSamples;
    EXPECT_NEAR(observed, expected, 0.01) << "rank " << r;
  }
}

TEST(ZipfTest, HeadHeavierWithLargerSkew) {
  ZipfDistribution flat(1000, 0.5);
  ZipfDistribution steep(1000, 1.5);
  EXPECT_GT(steep.Pmf(0), flat.Pmf(0));
  EXPECT_LT(steep.Pmf(999), flat.Pmf(999));
}

}  // namespace
}  // namespace fcp
