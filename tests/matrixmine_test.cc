#include "core/matrixmine.h"

#include <gtest/gtest.h>

#include "core/miner.h"
#include "test_util.h"

namespace fcp {
namespace {

using ::fcp::testing::MakeSegment;
using ::fcp::testing::PatternsOf;

MiningParams Params(uint32_t theta = 2) {
  MiningParams params;
  params.xi = Seconds(60);
  params.tau = Minutes(30);
  params.theta = theta;
  params.min_pattern_size = 1;
  params.max_pattern_size = 4;
  return params;
}

TEST(MatrixMineTest, PairsFromCells) {
  MatrixMine miner(Params(2));
  std::vector<Fcp> out;
  miner.AddSegment(MakeSegment(1, 0, {7, 8}, 100), &out);
  EXPECT_TRUE(out.empty());
  miner.AddSegment(MakeSegment(2, 1, {7, 8}, 200), &out);
  EXPECT_EQ(PatternsOf(out), (std::set<Pattern>{{7}, {8}, {7, 8}}));
}

TEST(MatrixMineTest, HigherOrderViaIntersection) {
  MatrixMine miner(Params(2));
  std::vector<Fcp> out;
  miner.AddSegment(MakeSegment(1, 0, {1, 2, 3}, 100), &out);
  out.clear();
  miner.AddSegment(MakeSegment(2, 1, {1, 2, 3}, 200), &out);
  EXPECT_TRUE(PatternsOf(out).contains(Pattern{1, 2, 3}));
  EXPECT_EQ(out.size(), 7u);
}

TEST(MatrixMineTest, PartialOverlapOnlyCommonSubset) {
  MatrixMine miner(Params(2));
  std::vector<Fcp> out;
  miner.AddSegment(MakeSegment(1, 0, {1, 2, 9}, 100), &out);
  out.clear();
  miner.AddSegment(MakeSegment(2, 1, {1, 2, 7}, 200), &out);
  EXPECT_EQ(PatternsOf(out), (std::set<Pattern>{{1}, {2}, {1, 2}}));
}

TEST(MatrixMineTest, ExpiredCellsFiltered) {
  MatrixMine miner(Params(2));
  std::vector<Fcp> out;
  miner.AddSegment(MakeSegment(1, 0, {4, 5}, 0), &out);
  out.clear();
  miner.AddSegment(MakeSegment(2, 1, {4, 5}, Minutes(35)), &out);
  EXPECT_TRUE(out.empty());
}

TEST(MatrixMineTest, SweepRunsOnInterval) {
  MiningParams params = Params(2);
  params.maintenance_interval = Minutes(1);
  MatrixMine miner(params);
  std::vector<Fcp> out;
  Timestamp now = 0;
  for (int i = 0; i < 100; ++i) {
    now += Minutes(1);
    miner.AddSegment(MakeSegment(static_cast<SegmentId>(i),
                                 static_cast<StreamId>(i % 3),
                                 {static_cast<ObjectId>(i % 5),
                                  static_cast<ObjectId>(5 + i % 5)},
                                 now),
                     &out);
  }
  EXPECT_GT(miner.stats().maintenance_runs, 0u);
  EXPECT_LE(miner.index().num_segments(), 40u);
}

TEST(MatrixMineTest, QuadraticInsertionCost) {
  MatrixMine miner(Params(2));
  std::vector<Fcp> out;
  std::vector<SegmentEntry> entries;
  for (ObjectId i = 0; i < 30; ++i) entries.push_back(SegmentEntry{i, 0});
  miner.AddSegment(Segment(1, 0, std::move(entries)), &out);
  // 30 diagonal + C(30,2) = 435 pairs.
  EXPECT_EQ(miner.index().total_entries(), 465u);
}

}  // namespace
}  // namespace fcp
