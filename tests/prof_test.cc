// Unit tests for the fcp::prof sampling profiler (DESIGN.md §2.9): the
// arm/disarm lifecycle, SIGPROF sample capture and symbolization of a known
// function, wait-tag attribution, folded rendering, heap-site sampling and
// the crash-handler aux splice. The profiler is process-global (thread
// records persist for the process lifetime), so every test starts from
// StopCpuProfiler() + ResetProfile() and leaves the profiler disarmed.

#include "util/alloc_counter.h"  // must be first: defines the counting
                                 // operator new the heap profiler hooks

#include "prof/prof.h"

#include <csignal>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/trace.h"

namespace fcp {

// Namespace-scope (not anonymous) so the demangled frame is a stable,
// greppable "fcp::prof_test_detail::..." in the folded profile. noinline
// keeps a real frame on the chain the SIGPROF handler walks.
namespace prof_test_detail {

__attribute__((noinline)) uint64_t BurnThreadCpuMs(int ms) {
  timespec start{}, now{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &start);
  volatile uint64_t sink = 1;
  for (;;) {
    for (int i = 0; i < 4096; ++i) sink = sink * 2862933555777941757ULL + 3;
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &now);
    const int64_t elapsed_ms =
        (now.tv_sec - start.tv_sec) * 1000 +
        (now.tv_nsec - start.tv_nsec) / 1000000;
    if (elapsed_ms >= ms) break;
  }
  return sink;
}

__attribute__((noinline)) std::vector<std::vector<char>> AllocateChunks(
    size_t chunks, size_t bytes_each) {
  std::vector<std::vector<char>> keep;
  keep.reserve(chunks);
  for (size_t i = 0; i < chunks; ++i) {
    keep.emplace_back(bytes_each, static_cast<char>(i));
  }
  return keep;
}

}  // namespace prof_test_detail

namespace {

class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!prof::kCompiledIn) GTEST_SKIP() << "built with FCP_PROF=OFF";
    prof::StopCpuProfiler();
    prof::DisableHeapProfiler();
    prof::ResetProfile();
  }
  void TearDown() override {
    if (!prof::kCompiledIn) return;
    prof::StopCpuProfiler();
    prof::DisableHeapProfiler();
    prof::ResetProfile();
  }
};

TEST_F(ProfTest, DisarmedByDefaultAndRejectsBadRates) {
  EXPECT_FALSE(prof::IsEnabled());
  EXPECT_FALSE(prof::IsSampling());
  EXPECT_EQ(prof::SamplingHz(), 0);
  EXPECT_FALSE(prof::StartCpuProfiler(0));
  EXPECT_FALSE(prof::StartCpuProfiler(-7));
  EXPECT_FALSE(prof::StartCpuProfiler(1001));
  EXPECT_FALSE(prof::IsSampling());
}

TEST_F(ProfTest, StartStopLifecycle) {
  ASSERT_TRUE(prof::StartCpuProfiler(100));
  EXPECT_TRUE(prof::IsEnabled());
  EXPECT_TRUE(prof::IsSampling());
  EXPECT_EQ(prof::SamplingHz(), 100);
  EXPECT_FALSE(prof::StartCpuProfiler(100)) << "double-arm must fail";
  prof::StopCpuProfiler();
  EXPECT_FALSE(prof::IsEnabled());
  EXPECT_FALSE(prof::IsSampling());
  EXPECT_EQ(prof::SamplingHz(), 0);
  prof::StopCpuProfiler();  // idempotent
}

TEST_F(ProfTest, SamplesSymbolizeKnownFunctionUnderThreadName) {
  ASSERT_TRUE(prof::StartCpuProfiler(1000));
  std::thread burner([] {
    prof::ThreadScope scope("burner");
    prof_test_detail::BurnThreadCpuMs(300);
  });
  burner.join();
  prof::StopCpuProfiler();

  const prof::ProfStats stats = prof::Stats();
  EXPECT_GT(stats.samples, 10u) << "300ms of CPU at 1000 Hz sampled almost "
                                   "nothing";
  EXPECT_GE(stats.threads, 1u);

  const std::string folded = prof::FoldedProfile();
  ASSERT_FALSE(folded.empty());
  // The burning thread's stacks are rooted at its registered name and the
  // hot leaf symbolizes to the named function (main-exe .symtab lookup).
  EXPECT_NE(folded.find("burner;"), std::string::npos) << folded;
  EXPECT_NE(folded.find("BurnThreadCpuMs"), std::string::npos) << folded;
  EXPECT_GT(prof::Stats().symbols_cached, 0u);
}

TEST_F(ProfTest, WaitTimerAttributesBlockedWallTime) {
  static const char* const kTag = "test/block-point";
  ASSERT_TRUE(prof::StartCpuProfiler(1000));
  {
    prof::ThreadScope scope("waiter");
    prof::WaitTimer wait(kTag);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  prof::StopCpuProfiler();
  // 50ms at 1000 Hz renders ~50 wait units on the tag's pseudo stack.
  const std::string folded = prof::FoldedProfile();
  EXPECT_NE(folded.find("wait;test/block-point "), std::string::npos)
      << folded;
}

TEST_F(ProfTest, WaitTimerIsInertWhileDisarmed) {
  static const char* const kTag = "test/inert";
  {
    prof::ThreadScope scope("idle");
    prof::WaitTimer wait(kTag);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(prof::FoldedProfile().find("test/inert"), std::string::npos);
}

TEST_F(ProfTest, RecordWaitOnUnregisteredThreadIsANoOp) {
  // The gtest main thread holds no ThreadScope here; this must not crash
  // and must not surface in the profile.
  prof::RecordWaitNs("test/unregistered", 1000000000);
  EXPECT_EQ(prof::FoldedProfile().find("test/unregistered"),
            std::string::npos);
}

TEST_F(ProfTest, ResetProfileDropsStacksAndWaitTotals) {
  static const char* const kTag = "test/reset-me";
  ASSERT_TRUE(prof::StartCpuProfiler(1000));
  {
    prof::ThreadScope scope("resetter");
    prof_test_detail::BurnThreadCpuMs(60);
    prof::WaitTimer wait(kTag);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  prof::StopCpuProfiler();
  ASSERT_FALSE(prof::FoldedProfile().empty());
  prof::ResetProfile();
  EXPECT_TRUE(prof::FoldedProfile().empty());
  EXPECT_EQ(prof::Stats().samples, 0u);
}

TEST_F(ProfTest, CaptureFoldedProfileReturnsTheWindowDelta) {
  std::thread burner([] {
    prof::ThreadScope scope("window-burner");
    prof_test_detail::BurnThreadCpuMs(1500);
  });
  // Not armed before the call: CaptureFoldedProfile arms for the window and
  // disarms after.
  const std::string folded = prof::CaptureFoldedProfile(1, 400);
  burner.join();
  EXPECT_FALSE(prof::IsSampling());
  EXPECT_NE(folded.find("window-burner;"), std::string::npos) << folded;
}

TEST_F(ProfTest, HeapProfilerSamplesAllocationSites) {
  EXPECT_FALSE(prof::HeapProfilerEnabled());
  prof::EnableHeapProfiler(/*sample_bytes=*/4096);
  EXPECT_TRUE(prof::HeapProfilerEnabled());
  {
    const auto keep = prof_test_detail::AllocateChunks(64, 16 * 1024);
    ASSERT_EQ(keep.size(), 64u);
  }
  prof::DisableHeapProfiler();
  EXPECT_FALSE(prof::HeapProfilerEnabled());

  const std::string heap = prof::HeapProfile();
  ASSERT_FALSE(heap.empty());
  // ~1 MiB allocated against a 4 KiB sampling interval: the allocating
  // frame must be present and credited with a plausible byte volume.
  EXPECT_NE(heap.find("AllocateChunks"), std::string::npos) << heap;
}

TEST_F(ProfTest, HeapHookUnhooksCleanly) {
  prof::EnableHeapProfiler(1);
  prof::DisableHeapProfiler();
  prof::ResetProfile();
  // Allocations after disable must not accumulate sites.
  const auto keep = prof_test_detail::AllocateChunks(8, 4096);
  EXPECT_TRUE(prof::HeapProfile().empty());
}

TEST_F(ProfTest, CrashJsonIsSelfContainedState) {
  ASSERT_TRUE(prof::StartCpuProfiler(500));
  std::thread burner([] {
    prof::ThreadScope scope("crashy");
    prof_test_detail::BurnThreadCpuMs(50);
  });
  burner.join();
  const std::string json = prof::CrashJson();
  prof::StopCpuProfiler();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* key :
       {"\"sampling\"", "\"hz\"", "\"collected\"", "\"drops\"",
        "\"threads\"", "\"tail\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
  EXPECT_NE(json.find("\"crashy\""), std::string::npos) << json;
}

// Named without "Prof" or "Trace" so neither the TSan suite filter (which
// cannot run death tests) nor the trace-only filters pick it up.
TEST(CpuSamplerCrashDeathTest, FatalDumpCarriesProfilerAuxState) {
  if (!prof::kCompiledIn) GTEST_SKIP() << "built with FCP_PROF=OFF";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = ::testing::TempDir() + "/prof_crash_aux.json";
  std::remove(path.c_str());
  EXPECT_DEATH(
      {
        trace::Start(64);
        trace::SetThreadName("doomed");
        trace::Emit(trace::Phase::kInstant, "about-to-die");
        // Arming registers the profiler's crash-aux provider and starts
        // SIGPROF delivery; the fatal path must mask SIGPROF and still
        // produce a parseable dump with the profiler state spliced in.
        prof::StartCpuProfiler(1000);
        prof::ThreadScope scope("doomed");
        prof_test_detail::BurnThreadCpuMs(80);
        trace::InstallCrashHandler(path);
        std::raise(SIGABRT);
      },
      "fatal signal");

  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string dump = buf.str();
  ASSERT_FALSE(dump.empty());
  // The spliced aux keeps the document valid JSON with traceEvents intact.
  std::string error;
  EXPECT_TRUE(trace::ValidateChromeTraceJson(dump, &error)) << error;
  EXPECT_NE(dump.find("about-to-die"), std::string::npos);
  EXPECT_NE(dump.find("\"profiler\""), std::string::npos);
  EXPECT_NE(dump.find("\"sampling\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fcp
