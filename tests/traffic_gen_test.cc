#include "datagen/traffic_gen.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace fcp {
namespace {

TrafficConfig SmallConfig() {
  TrafficConfig config;
  config.num_cameras = 20;
  config.num_vehicles = 500;
  config.per_camera_rate_hz = 0.1;
  config.total_events = 5000;
  config.num_convoys = 5;
  config.seed = 1;
  return config;
}

TEST(TrafficGenTest, ConfigValidation) {
  EXPECT_TRUE(SmallConfig().Validate().ok());
  {
    TrafficConfig c = SmallConfig();
    c.num_cameras = 0;
    EXPECT_FALSE(c.Validate().ok());
  }
  {
    TrafficConfig c = SmallConfig();
    c.route_len_max = 100;  // more cameras than exist
    EXPECT_FALSE(c.Validate().ok());
  }
  {
    TrafficConfig c = SmallConfig();
    c.convoy_size_min = 5;
    c.convoy_size_max = 2;
    EXPECT_FALSE(c.Validate().ok());
  }
  {
    TrafficConfig c = SmallConfig();
    c.per_camera_rate_hz = 0;
    EXPECT_FALSE(c.Validate().ok());
  }
}

TEST(TrafficGenTest, DeterministicForSeed) {
  const TrafficTrace a = GenerateTraffic(SmallConfig());
  const TrafficTrace b = GenerateTraffic(SmallConfig());
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_TRUE(std::equal(a.events.begin(), a.events.end(), b.events.begin()));
  EXPECT_EQ(a.convoys.size(), b.convoys.size());
}

TEST(TrafficGenTest, DifferentSeedsDiffer) {
  TrafficConfig c2 = SmallConfig();
  c2.seed = 2;
  const TrafficTrace a = GenerateTraffic(SmallConfig());
  const TrafficTrace b = GenerateTraffic(c2);
  EXPECT_FALSE(a.events.size() == b.events.size() &&
               std::equal(a.events.begin(), a.events.end(),
                          b.events.begin()));
}

TEST(TrafficGenTest, EventsSortedByTime) {
  const TrafficTrace trace = GenerateTraffic(SmallConfig());
  EXPECT_TRUE(std::is_sorted(
      trace.events.begin(), trace.events.end(),
      [](const ObjectEvent& a, const ObjectEvent& b) { return a.time < b.time; }));
}

TEST(TrafficGenTest, RespectsTotalEvents) {
  const TrafficTrace trace = GenerateTraffic(SmallConfig());
  EXPECT_LE(trace.events.size(), 5000u);
  EXPECT_GE(trace.events.size(), 4000u);  // Poisson noise tolerance
}

TEST(TrafficGenTest, StreamsAndObjectsInRange) {
  const TrafficConfig config = SmallConfig();
  const TrafficTrace trace = GenerateTraffic(config);
  for (const ObjectEvent& e : trace.events) {
    EXPECT_LT(e.stream, config.num_cameras);
    EXPECT_LT(e.object, config.num_vehicles);
    EXPECT_GE(e.time, 0);
  }
}

TEST(TrafficGenTest, ConvoyPlansWellFormed) {
  const TrafficConfig config = SmallConfig();
  const TrafficTrace trace = GenerateTraffic(config);
  ASSERT_EQ(trace.convoys.size(), config.num_convoys);
  for (const ConvoyPlan& convoy : trace.convoys) {
    EXPECT_GE(convoy.vehicles.size(), config.convoy_size_min);
    EXPECT_LE(convoy.vehicles.size(), config.convoy_size_max);
    EXPECT_GE(convoy.cameras.size(), config.route_len_min);
    EXPECT_LE(convoy.cameras.size(), config.route_len_max);
    EXPECT_TRUE(std::is_sorted(convoy.vehicles.begin(), convoy.vehicles.end()));
    // Distinct cameras on the route.
    std::set<StreamId> route(convoy.cameras.begin(), convoy.cameras.end());
    EXPECT_EQ(route.size(), convoy.cameras.size());
    EXPECT_LE(convoy.first_passage, convoy.last_passage);
  }
}

TEST(TrafficGenTest, ConvoyEventsAppearInTrace) {
  // Every (vehicle, camera) passage of the first convoy must be present,
  // unless truncated by the Ds cap — use a config where the cap is slack.
  TrafficConfig config = SmallConfig();
  config.total_events = 20000;
  const TrafficTrace trace = GenerateTraffic(config);
  ASSERT_FALSE(trace.convoys.empty());
  const ConvoyPlan& convoy = trace.convoys.front();
  for (StreamId cam : convoy.cameras) {
    for (ObjectId vehicle : convoy.vehicles) {
      const bool found = std::any_of(
          trace.events.begin(), trace.events.end(), [&](const ObjectEvent& e) {
            return e.stream == cam && e.object == vehicle &&
                   e.time >= convoy.first_passage &&
                   e.time <= convoy.last_passage;
          });
      EXPECT_TRUE(found) << "vehicle " << vehicle << " at camera " << cam;
    }
  }
}

TEST(TrafficGenTest, DenseStreamsOverlapHeavily) {
  // The TR regime: with 0.1 Hz per camera and xi = 60 s, consecutive camera
  // events are usually closer than xi, so adjacent segments share events.
  const TrafficTrace trace = GenerateTraffic(SmallConfig());
  uint64_t close_gaps = 0, gaps = 0;
  std::vector<Timestamp> last(20, -1);
  for (const ObjectEvent& e : trace.events) {
    if (last[e.stream] >= 0) {
      ++gaps;
      if (e.time - last[e.stream] <= Seconds(60)) ++close_gaps;
    }
    last[e.stream] = e.time;
  }
  ASSERT_GT(gaps, 0u);
  EXPECT_GT(static_cast<double>(close_gaps) / static_cast<double>(gaps), 0.9);
}

}  // namespace
}  // namespace fcp
