// End-to-end flight-recorder coverage: a serial MiningEngine run and a
// sharded ParallelEngine run, both traced, must serialize to valid Chrome
// trace JSON whose flow events stitch each segment's journey together — in
// the sharded case across thread boundaries (worker -> merge -> shard). The
// slow-op path is exercised with a 1 ns threshold so every mine call
// triggers a forensic dump.

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/mining_engine.h"
#include "core/parallel_engine.h"
#include "datagen/traffic_gen.h"
#include "telemetry/trace.h"

namespace fcp {
namespace {

MiningParams Params() {
  MiningParams params;
  params.xi = Seconds(60);
  params.tau = Minutes(30);
  params.theta = 3;
  params.min_pattern_size = 2;
  params.max_pattern_size = 4;
  return params;
}

std::vector<ObjectEvent> Trace() {
  TrafficConfig config;
  config.num_cameras = 20;
  config.num_vehicles = 600;
  config.total_events = 4000;
  config.num_convoys = 3;
  config.seed = 99;
  return GenerateTraffic(config).events;
}

std::vector<trace::ParsedTraceEvent> StopAndParse() {
  trace::Stop();
  const std::string json = trace::SerializeChromeTrace(trace::Snapshot());
  std::string error;
  EXPECT_TRUE(trace::ValidateChromeTraceJson(json, &error)) << error;
  auto parsed = trace::ParseChromeTraceJson(json, &error);
  EXPECT_TRUE(parsed.has_value()) << error;
  return parsed.value_or(std::vector<trace::ParsedTraceEvent>{});
}

class TracePipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!trace::kCompiledIn) GTEST_SKIP() << "built with FCP_TRACE=OFF";
    trace::Reset();
    trace::ConfigureSlowOp(trace::SlowOpOptions{});
  }
  void TearDown() override {
    trace::ConfigureSlowOp(trace::SlowOpOptions{});
    trace::Reset();
  }
};

TEST_F(TracePipelineTest, SerialRunEmitsSpansAndCompleteFlows) {
  trace::Start(1024);
  MiningEngine engine(MinerKind::kCooMine, Params());
  for (const ObjectEvent& event : Trace()) engine.PushEvent(event);
  engine.Flush();
  const uint64_t segments = engine.segments_completed();
  ASSERT_GT(segments, 0u);

  const std::vector<trace::ParsedTraceEvent> events = StopAndParse();
  std::set<std::string> span_names;
  std::set<std::string> flow_begins, flow_ends;
  for (const trace::ParsedTraceEvent& e : events) {
    if (e.ph == 'B') span_names.insert(e.name);
    if (e.ph == 's') flow_begins.insert(e.id);
    if (e.ph == 'f') flow_ends.insert(e.id);
  }
  // The instrumented layers all show up: segmentation, engine, miner.
  EXPECT_TRUE(span_names.count("mux/segment_complete"));
  EXPECT_TRUE(span_names.count("engine/mine"));
  EXPECT_TRUE(span_names.count("coomine/slcp"));
  EXPECT_TRUE(span_names.count("coomine/apriori"));

  // Every segment flow that begins also ends (ring is large enough that
  // nothing wrapped in this run).
  EXPECT_EQ(flow_begins.size(), segments);
  EXPECT_EQ(flow_begins, flow_ends);
}

TEST_F(TracePipelineTest, ShardedRunConnectsFlowsAcrossThreads) {
  trace::Start(4096);
  ParallelEngineOptions options;
  options.num_workers = 2;
  options.num_miner_shards = 4;
  ParallelEngine engine(MinerKind::kCooMine, Params(), options);
  for (const ObjectEvent& event : Trace()) engine.Push(event);
  engine.Finish();
  ASSERT_GT(engine.segments_completed(), 0u);

  const std::vector<trace::ParsedTraceEvent> events = StopAndParse();

  // Thread metadata names the pipeline stages.
  std::set<std::string> thread_names;
  for (const trace::ParsedTraceEvent& e : events) {
    if (e.ph == 'M') thread_names.insert(e.arg_name);
  }
  EXPECT_TRUE(thread_names.count("merge"));
  EXPECT_TRUE(thread_names.count("worker-0"));
  EXPECT_TRUE(thread_names.count("shard-0"));

  // Causality: at least one flow id spans two or more threads (worker ->
  // merge hand-off and merge -> shard delivery both cross track boundaries).
  std::map<std::string, std::set<uint64_t>> flow_tids;
  for (const trace::ParsedTraceEvent& e : events) {
    if (e.ph == 's' || e.ph == 't' || e.ph == 'f') {
      flow_tids[e.id].insert(e.tid);
    }
  }
  ASSERT_FALSE(flow_tids.empty());
  size_t cross_thread = 0;
  for (const auto& [id, tids] : flow_tids) {
    if (tids.size() >= 2) ++cross_thread;
  }
  EXPECT_GT(cross_thread, 0u)
      << "no flow connects events across thread boundaries";

  // The shard stage participates in flows: some flow-end landed on a shard
  // thread's span ("shard/mine" begins exist).
  std::set<std::string> span_names;
  for (const trace::ParsedTraceEvent& e : events) {
    if (e.ph == 'B') span_names.insert(e.name);
  }
  EXPECT_TRUE(span_names.count("worker/segment"));
  EXPECT_TRUE(span_names.count("merge/route"));
  EXPECT_TRUE(span_names.count("shard/mine"));
}

TEST_F(TracePipelineTest, SlowOpThresholdProducesForensicDump) {
  trace::Start(256);
  trace::SlowOpOptions slow;
  slow.threshold_ns = 1;  // every mine call is "slow"
  slow.dump_prefix = ::testing::TempDir() + "/pipeline_slowop";
  slow.max_dumps = 2;
  trace::ConfigureSlowOp(slow);

  MiningEngine engine(MinerKind::kCooMine, Params());
  for (const ObjectEvent& event : Trace()) engine.PushEvent(event);
  engine.Flush();
  trace::Stop();

  ASSERT_GE(trace::SlowOpDumpCount(), 1u);
  EXPECT_LE(trace::SlowOpDumpCount(), 2u);  // capped at max_dumps

  const std::string path = slow.dump_prefix + ".slowop-0.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string dump = buf.str();

  // The dump ties together the op, the triggering segment, the miner's
  // introspection state and the flight-recorder tail.
  EXPECT_NE(dump.find("\"op\": \"engine/mine\""), std::string::npos);
  EXPECT_NE(dump.find("\"miner\": \"CooMine\""), std::string::npos);
  EXPECT_NE(dump.find("\"segment\""), std::string::npos);
  EXPECT_NE(dump.find("\"debug\""), std::string::npos);
  EXPECT_NE(dump.find("\"state\""), std::string::npos);
  EXPECT_NE(dump.find("\"live_segments\""), std::string::npos);
  EXPECT_NE(dump.find("\"index_bytes\""), std::string::npos);
  EXPECT_NE(dump.find("\"recorder_tail\""), std::string::npos);
  EXPECT_NE(dump.find("\"traceEvents\""), std::string::npos);

  for (uint64_t n = 0; n < trace::SlowOpDumpCount(); ++n) {
    std::remove(
        (slow.dump_prefix + ".slowop-" + std::to_string(n) + ".json").c_str());
  }
}

}  // namespace
}  // namespace fcp
