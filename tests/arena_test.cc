// Unit tests for the slab allocators behind the zero-allocation hot path:
// ObjectPool (node recycling), ChunkArena (size-class array recycling) and
// PooledVec (arena-backed vector).

#include "util/arena.h"

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace fcp {
namespace {

struct Widget {
  int value = 0;
  std::vector<int> payload;
};

TEST(ObjectPoolTest, AcquireReturnsDistinctConstructedObjects) {
  ObjectPool<Widget> pool(/*objects_per_slab=*/4);
  std::set<Widget*> seen;
  for (int i = 0; i < 10; ++i) {
    Widget* w = pool.Acquire();
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->value, 0);
    EXPECT_TRUE(w->payload.empty());
    EXPECT_TRUE(seen.insert(w).second) << "object handed out twice";
  }
  EXPECT_EQ(pool.stats().objects_constructed, 10u);
  EXPECT_EQ(pool.stats().slabs_allocated, 3u);  // ceil(10 / 4)
  EXPECT_EQ(pool.live(), 10u);
}

TEST(ObjectPoolTest, ReleaseRecyclesWithoutDestroying) {
  ObjectPool<Widget> pool(/*objects_per_slab=*/8);
  Widget* w = pool.Acquire();
  w->payload.assign(100, 7);
  const int* data = w->payload.data();
  pool.Release(w);

  Widget* again = pool.Acquire();
  EXPECT_EQ(again, w) << "free list should serve the released object";
  // The vector member was not destroyed: its heap buffer is still there.
  EXPECT_EQ(again->payload.data(), data);
  EXPECT_EQ(pool.stats().objects_recycled, 1u);
  EXPECT_EQ(pool.stats().objects_constructed, 1u);
}

TEST(ObjectPoolTest, SlabBytesCountFullSlabs) {
  ObjectPool<Widget> pool(/*objects_per_slab=*/16);
  EXPECT_EQ(pool.SlabBytes(), 0u);
  pool.Acquire();
  EXPECT_EQ(pool.SlabBytes(), 16 * sizeof(Widget));
  for (int i = 0; i < 16; ++i) pool.Acquire();  // spills into a second slab
  EXPECT_EQ(pool.SlabBytes(), 2 * 16 * sizeof(Widget));
}

TEST(ChunkArenaTest, ReleasedChunkIsReusedByItsSizeClass) {
  ChunkArena<uint64_t> arena(/*slab_bytes=*/1024);
  uint64_t* a = arena.Acquire(3);  // 8 elements
  uint64_t* b = arena.Acquire(3);
  EXPECT_NE(a, b);
  arena.Release(a, 3);
  EXPECT_EQ(arena.Acquire(3), a);
  // A different class does not see class-3 free chunks.
  EXPECT_NE(arena.Acquire(4), a);
}

TEST(ChunkArenaTest, OversizedRequestGetsDedicatedSlab) {
  ChunkArena<uint64_t> arena(/*slab_bytes=*/64);
  const size_t before = arena.SlabBytes();
  uint64_t* big = arena.Acquire(10);  // 1024 elements * 8 bytes >> 64
  ASSERT_NE(big, nullptr);
  EXPECT_GE(arena.SlabBytes(), before + (size_t{1} << 10) * sizeof(uint64_t));
  // The whole span is writable.
  for (size_t i = 0; i < (size_t{1} << 10); ++i) big[i] = i;
  EXPECT_EQ(big[1023], 1023u);
}

TEST(ChunkArenaTest, SlabBytesIsMonotonicAndCountsEverything) {
  ChunkArena<uint32_t> arena(/*slab_bytes=*/256);
  size_t last = arena.SlabBytes();
  for (int round = 0; round < 100; ++round) {
    uint32_t* chunk = arena.Acquire(round % 5);
    arena.Release(chunk, round % 5);
    EXPECT_GE(arena.SlabBytes(), last);
    last = arena.SlabBytes();
  }
  // Everything was released, yet the footprint is still reported (slabs are
  // never returned while the arena lives).
  EXPECT_GT(arena.SlabBytes(), 0u);
}

TEST(PooledVecTest, PushBackGrowsThroughPowerOfTwoCapacities) {
  ChunkArena<int> arena;
  PooledVec<int> vec;
  for (int i = 0; i < 100; ++i) {
    vec.push_back(i, arena);
    EXPECT_EQ(vec.size(), static_cast<size_t>(i + 1));
    ASSERT_TRUE(vec.capacity == 0 ||
                (vec.capacity & (vec.capacity - 1)) == 0);
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(vec[i], i);
  EXPECT_EQ(vec.back(), 99);
  vec.Reset(arena);
}

TEST(PooledVecTest, EraseAtPreservesOrder) {
  ChunkArena<int> arena;
  PooledVec<int> vec;
  for (int i = 0; i < 6; ++i) vec.push_back(i, arena);
  vec.erase_at(2);
  ASSERT_EQ(vec.size(), 5u);
  const int expected[] = {0, 1, 3, 4, 5};
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(vec[i], expected[i]);
  vec.erase_at(4);  // last element
  EXPECT_EQ(vec.size(), 4u);
  EXPECT_EQ(vec.back(), 4);
  vec.Reset(arena);
}

TEST(PooledVecTest, ResetReturnsChunkForAnyVecToReuse) {
  ChunkArena<int> arena;
  PooledVec<int> first;
  for (int i = 0; i < 8; ++i) first.push_back(i, arena);  // capacity 8
  int* chunk = first.data;
  first.Reset(arena);
  EXPECT_EQ(first.data, nullptr);
  EXPECT_EQ(first.size(), 0u);

  // A DIFFERENT vec growing to the same class reuses the chunk — capacity is
  // pooled by size class, not parked per owner.
  PooledVec<int> second;
  for (int i = 0; i < 8; ++i) second.push_back(i, arena);
  EXPECT_EQ(second.data, chunk);
  second.Reset(arena);
}

TEST(PooledVecTest, GrowReleasesTheOldChunk) {
  ChunkArena<int> arena;
  PooledVec<int> vec;
  for (int i = 0; i < 4; ++i) vec.push_back(i, arena);  // capacity 4
  int* old_chunk = vec.data;
  vec.push_back(4, arena);  // grows to 8, must release the 4-chunk
  EXPECT_NE(vec.data, old_chunk);
  EXPECT_EQ(arena.Acquire(2), old_chunk);
  vec.Reset(arena);
}

}  // namespace
}  // namespace fcp
