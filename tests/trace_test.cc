// Unit tests for the fcp::trace flight recorder (DESIGN.md §2.5): ring
// recording and drop-oldest wrap, span balancing, Chrome trace-event
// serialization round-trips, slow-op forensic dumps and the fatal-signal
// black box. The recorder is process-global, so every test starts from
// Reset() and leaves the recorder disabled.

#include "telemetry/trace.h"

#include <csignal>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fcp {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class TraceRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override { trace::Reset(); }
  void TearDown() override { trace::Reset(); }
};

TEST_F(TraceRecorderTest, DisabledByDefaultRecordsNothing) {
  EXPECT_FALSE(trace::IsEnabled());
  trace::Emit(trace::Phase::kInstant, "ignored");
  EXPECT_TRUE(trace::Snapshot().empty());
}

TEST_F(TraceRecorderTest, RecordsEventsInOrderWithThreadName) {
  trace::Start(64);
  EXPECT_TRUE(trace::IsEnabled());
  trace::SetThreadName("recorder-test");
  trace::Emit(trace::Phase::kBegin, "op", /*flow=*/7, /*arg=*/3);
  trace::Emit(trace::Phase::kInstant, "tick");
  trace::Emit(trace::Phase::kEnd, "op");
  trace::Stop();
  EXPECT_FALSE(trace::IsEnabled());

  const std::vector<trace::ThreadTrace> threads = trace::Snapshot();
  ASSERT_EQ(threads.size(), 1u);
  const trace::ThreadTrace& t = threads[0];
  EXPECT_EQ(t.name, "recorder-test");
  EXPECT_EQ(t.dropped, 0u);
  ASSERT_EQ(t.events.size(), 3u);
  EXPECT_EQ(t.events[0].phase, trace::Phase::kBegin);
  EXPECT_STREQ(t.events[0].name, "op");
  EXPECT_EQ(t.events[0].flow, 7u);
  EXPECT_EQ(t.events[0].arg, 3u);
  EXPECT_EQ(t.events[1].phase, trace::Phase::kInstant);
  EXPECT_EQ(t.events[2].phase, trace::Phase::kEnd);
  EXPECT_LE(t.events[0].ts_ns, t.events[1].ts_ns);
  EXPECT_LE(t.events[1].ts_ns, t.events[2].ts_ns);
}

TEST_F(TraceRecorderTest, RingWrapKeepsNewestAndCountsDropped) {
  // 1 KiB / 32-byte events = 32 slots, clamped up to the 64-slot minimum.
  trace::Start(1);
  constexpr uint32_t kEmitted = 200;
  for (uint32_t i = 0; i < kEmitted; ++i) {
    trace::Emit(trace::Phase::kInstant, "wrap", 0, i);
  }
  trace::Stop();

  const std::vector<trace::ThreadTrace> threads = trace::Snapshot();
  ASSERT_EQ(threads.size(), 1u);
  const trace::ThreadTrace& t = threads[0];
  ASSERT_EQ(t.events.size(), 64u);
  EXPECT_EQ(t.dropped, kEmitted - 64u);
  // Drop-oldest: the tail is the most recent 64 events, oldest first.
  for (size_t i = 0; i < t.events.size(); ++i) {
    EXPECT_EQ(t.events[i].arg, kEmitted - 64u + i);
  }
}

TEST_F(TraceRecorderTest, SpanEmitsBalancedBeginEnd) {
  trace::Start(64);
  {
    trace::Span span("scoped", /*flow=*/11, /*arg=*/2);
    trace::Emit(trace::Phase::kInstant, "inside");
  }
  trace::Stop();
  const std::vector<trace::ThreadTrace> threads = trace::Snapshot();
  ASSERT_EQ(threads.size(), 1u);
  ASSERT_EQ(threads[0].events.size(), 3u);
  EXPECT_EQ(threads[0].events[0].phase, trace::Phase::kBegin);
  EXPECT_EQ(threads[0].events[0].flow, 11u);
  EXPECT_EQ(threads[0].events[2].phase, trace::Phase::kEnd);
  EXPECT_STREQ(threads[0].events[2].name, "scoped");
}

TEST_F(TraceRecorderTest, SpanConstructedWhileDisabledStaysSilent) {
  {
    trace::Span span("never");
    // Enabling mid-scope must not make the destructor emit a dangling End.
    trace::Start(64);
  }
  trace::Stop();
  for (const trace::ThreadTrace& t : trace::Snapshot()) {
    EXPECT_TRUE(t.events.empty());
  }
}

TEST_F(TraceRecorderTest, EachThreadGetsItsOwnRing) {
  trace::Start(64);
  trace::SetThreadName("main");
  trace::Emit(trace::Phase::kInstant, "from-main");
  std::thread helper([] {
    trace::SetThreadName("helper");
    trace::Emit(trace::Phase::kInstant, "from-helper");
    trace::Emit(trace::Phase::kInstant, "from-helper");
  });
  helper.join();
  trace::Stop();

  const std::vector<trace::ThreadTrace> threads = trace::Snapshot();
  ASSERT_EQ(threads.size(), 2u);
  std::map<std::string, size_t> events_by_name;
  for (const trace::ThreadTrace& t : threads) {
    events_by_name[t.name] = t.events.size();
  }
  EXPECT_EQ(events_by_name["main"], 1u);
  EXPECT_EQ(events_by_name["helper"], 2u);
}

TEST_F(TraceRecorderTest, ResetDropsRecordedEvents) {
  trace::Start(64);
  trace::Emit(trace::Phase::kInstant, "kept-until-reset");
  trace::Stop();
  EXPECT_FALSE(trace::Snapshot().empty());  // Stop() preserves the rings
  trace::Reset();
  EXPECT_TRUE(trace::Snapshot().empty());

  // The thread re-registers after Reset: a fresh Start records again.
  trace::Start(64);
  trace::Emit(trace::Phase::kInstant, "after-reset");
  trace::Stop();
  const std::vector<trace::ThreadTrace> threads = trace::Snapshot();
  ASSERT_EQ(threads.size(), 1u);
  ASSERT_EQ(threads[0].events.size(), 1u);
  EXPECT_STREQ(threads[0].events[0].name, "after-reset");
}

TEST_F(TraceRecorderTest, NextFlowIdIsUniqueAndNonZero) {
  const uint64_t a = trace::NextFlowId();
  const uint64_t b = trace::NextFlowId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

class TraceSerializerTest : public TraceRecorderTest {};

TEST_F(TraceSerializerTest, SerializeParseRoundTrip) {
  trace::Start(64);
  trace::SetThreadName("serializer");
  {
    trace::Span span("mine", /*flow=*/0, /*arg=*/5);
    trace::Emit(trace::Phase::kFlowEnd, "segment", 255);
  }
  trace::Emit(trace::Phase::kFlowBegin, "segment", 255);
  trace::Emit(trace::Phase::kInstant, "mark", 0, 9);
  trace::Stop();

  const std::string json = trace::SerializeChromeTrace(trace::Snapshot());
  std::string error;
  EXPECT_TRUE(trace::ValidateChromeTraceJson(json, &error)) << error;
  const auto parsed = trace::ParseChromeTraceJson(json, &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  size_t begins = 0, ends = 0;
  std::set<std::string> metadata_names;
  bool saw_flow_begin = false, saw_flow_end = false, saw_instant = false;
  for (const trace::ParsedTraceEvent& e : *parsed) {
    switch (e.ph) {
      case 'B': ++begins; EXPECT_EQ(e.name, "mine"); break;
      case 'E': ++ends; break;
      case 'M': metadata_names.insert(e.arg_name); break;
      case 'i': saw_instant = true; EXPECT_EQ(e.name, "mark"); break;
      case 's':
        saw_flow_begin = true;
        EXPECT_EQ(e.cat, "flow");
        EXPECT_EQ(e.id, "0xff");  // flow ids serialize as hex strings
        break;
      case 'f':
        saw_flow_end = true;
        EXPECT_EQ(e.id, "0xff");
        break;
      default: break;
    }
  }
  EXPECT_EQ(begins, 1u);
  EXPECT_EQ(ends, 1u);
  EXPECT_TRUE(metadata_names.count("serializer"));  // thread_name metadata
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_flow_begin);
  EXPECT_TRUE(saw_flow_end);
}

TEST_F(TraceSerializerTest, UnbalancedBeginIsClosedAtSnapshotEnd) {
  trace::Start(64);
  trace::Emit(trace::Phase::kBegin, "left-open");
  trace::Emit(trace::Phase::kInstant, "tick");
  trace::Stop();

  std::string error;
  const auto parsed = trace::ParseChromeTraceJson(
      trace::SerializeChromeTrace(trace::Snapshot()), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  size_t begins = 0, ends = 0;
  for (const trace::ParsedTraceEvent& e : *parsed) {
    if (e.ph == 'B') ++begins;
    if (e.ph == 'E') ++ends;
  }
  EXPECT_EQ(begins, 1u);
  EXPECT_EQ(ends, begins) << "serializer must close unbalanced spans";
}

TEST_F(TraceSerializerTest, ValidateRejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(trace::ValidateChromeTraceJson("not json at all", &error));
  EXPECT_FALSE(error.empty());

  error.clear();
  EXPECT_FALSE(trace::ValidateChromeTraceJson("{\"traceEvents\": 3}", &error));
  EXPECT_FALSE(error.empty());

  // An event missing required fields (ts/pid/tid) must be rejected.
  error.clear();
  EXPECT_FALSE(trace::ValidateChromeTraceJson(
      "{\"traceEvents\": [{\"ph\": \"B\", \"name\": \"x\"}]}", &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(TraceSerializerTest, WriteChromeTraceProducesValidFile) {
  trace::Start(64);
  trace::Emit(trace::Phase::kInstant, "persisted");
  trace::Stop();
  const std::string path = ::testing::TempDir() + "/trace_write_test.json";
  ASSERT_TRUE(trace::WriteChromeTrace(path));
  std::string error;
  EXPECT_TRUE(trace::ValidateChromeTraceJson(ReadFile(path), &error)) << error;
  std::remove(path.c_str());
}

class SlowOpTest : public TraceRecorderTest {
 protected:
  void TearDown() override {
    trace::ConfigureSlowOp(trace::SlowOpOptions{});  // disable for next test
    TraceRecorderTest::TearDown();
  }
};

trace::SlowOpReport MakeReport() {
  trace::SlowOpReport report;
  report.op = "test/mine";
  report.duration_ns = 123456;
  report.miner = "CooMine";
  report.shard = 2;
  report.segment_debug = "segment{...}";
  report.segment_id = 42;
  report.stream = 7;
  report.segment_length = 5;
  report.state = {{"segments_processed", 10}, {"fcps_emitted", 3}};
  return report;
}

TEST_F(SlowOpTest, DisabledThresholdWritesNothing) {
  trace::ConfigureSlowOp(trace::SlowOpOptions{});
  EXPECT_EQ(trace::SlowOpThresholdNs(), 0);
  EXPECT_EQ(trace::WriteSlowOpDump(MakeReport()), "");
  EXPECT_EQ(trace::SlowOpDumpCount(), 0u);
}

TEST_F(SlowOpTest, NegativeThresholdIsTreatedAsDisabled) {
  trace::SlowOpOptions options;
  options.threshold_ns = -5;
  trace::ConfigureSlowOp(options);
  EXPECT_EQ(trace::SlowOpThresholdNs(), 0);
}

TEST_F(SlowOpTest, DumpContainsReportStateAndRecorderTail) {
  trace::Start(64);
  trace::SetThreadName("slowop");
  trace::Emit(trace::Phase::kInstant, "before-the-slow-op");

  trace::SlowOpOptions options;
  options.threshold_ns = 1;
  options.dump_prefix = ::testing::TempDir() + "/slowop_unit";
  options.max_dumps = 4;
  trace::ConfigureSlowOp(options);

  const std::string path = trace::WriteSlowOpDump(MakeReport());
  ASSERT_EQ(path, options.dump_prefix + ".slowop-0.json");
  EXPECT_EQ(trace::SlowOpDumpCount(), 1u);

  const std::string dump = ReadFile(path);
  EXPECT_NE(dump.find("\"op\": \"test/mine\""), std::string::npos);
  EXPECT_NE(dump.find("\"duration_ns\": 123456"), std::string::npos);
  EXPECT_NE(dump.find("\"miner\": \"CooMine\""), std::string::npos);
  EXPECT_NE(dump.find("\"id\": 42"), std::string::npos);
  EXPECT_NE(dump.find("\"segments_processed\": 10"), std::string::npos);
  EXPECT_NE(dump.find("\"recorder_tail\""), std::string::npos);
  EXPECT_NE(dump.find("before-the-slow-op"), std::string::npos);
  trace::Stop();
  std::remove(path.c_str());
}

TEST_F(SlowOpTest, MaxDumpsCapsTheFloodAndConfigureResets) {
  trace::SlowOpOptions options;
  options.threshold_ns = 1;
  options.dump_prefix = ::testing::TempDir() + "/slowop_cap";
  options.max_dumps = 2;
  trace::ConfigureSlowOp(options);

  const std::string first = trace::WriteSlowOpDump(MakeReport());
  const std::string second = trace::WriteSlowOpDump(MakeReport());
  EXPECT_NE(first, "");
  EXPECT_NE(second, "");
  EXPECT_NE(first, second);
  EXPECT_EQ(trace::WriteSlowOpDump(MakeReport()), "");  // cap reached
  EXPECT_EQ(trace::SlowOpDumpCount(), 2u);

  trace::ConfigureSlowOp(options);  // reconfiguring resets the budget
  EXPECT_EQ(trace::SlowOpDumpCount(), 0u);
  const std::string again = trace::WriteSlowOpDump(MakeReport());
  EXPECT_EQ(again, first);
  std::remove(first.c_str());
  std::remove(second.c_str());
}

// Named without "Trace" so the TSan job's suite filter (which cannot run
// death tests) does not pick it up.
TEST(CrashDumpDeathTest, FatalSignalWritesFlightRecorderBlackBox) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = ::testing::TempDir() + "/crash_black_box.json";
  std::remove(path.c_str());
  EXPECT_DEATH(
      {
        trace::Start(64);
        trace::SetThreadName("doomed");
        trace::Emit(trace::Phase::kInstant, "crash-imminent");
        trace::InstallCrashHandler(path);
        std::raise(SIGABRT);
      },
      "fatal signal");

  // The dying child wrote its flight recorder before re-raising.
  const std::string dump = ReadFile(path);
  ASSERT_FALSE(dump.empty());
  std::string error;
  EXPECT_TRUE(trace::ValidateChromeTraceJson(dump, &error)) << error;
  EXPECT_NE(dump.find("crash-imminent"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fcp
