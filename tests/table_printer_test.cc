#include "util/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace fcp {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"rate", "mb"});
  t.AddRow({"1000", "12.5"});
  t.AddRow({"50", "7"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("rate"), std::string::npos);
  EXPECT_NE(out.find("12.5"), std::string::npos);
  // Each line has equal visible structure; the separator is dashes.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"1", "2", "3"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,2,3\n");
}

TEST(TablePrinterTest, NumFormatsDigits) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(3.0, 0), "3");
  EXPECT_EQ(TablePrinter::Num(1234.5, 1), "1234.5");
}

TEST(TablePrinterTest, CountsRows) {
  TablePrinter t({"x"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1"});
  t.AddRow({"2"});
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinterDeathTest, RowArityMismatchAborts) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "FCP_CHECK");
}

}  // namespace
}  // namespace fcp
