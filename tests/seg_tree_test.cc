// Unit tests of the Seg-tree, including the paper's worked examples
// (Example 2: insertion; Example 3: attribute updates; Fig. 2/3 tree shape;
// Table 1: SLCP result).

#include "index/seg_tree.h"

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "test_util.h"

namespace fcp {
namespace {

using ::fcp::testing::MakeSegment;

// Object ids for the paper's Fig. 3 letters.
constexpr ObjectId b = 1, c = 2, d = 3, e = 4, f = 5, h = 6, j = 7, k = 8,
                   m = 9, n = 10, o = 11, p = 12, r = 13, s = 14, t = 15,
                   w = 16, z = 17;

constexpr DurationMs kTau = Minutes(30);

// The segments of Fig. 3 (stream s1 = 1, stream s2 = 2). Timestamps are
// spread a little so ordering is realistic but everything stays valid.
std::vector<Segment> PaperS1Segments() {
  return {
      MakeSegment(10, 1, {b, c, d}, 100),
      MakeSegment(11, 1, {c, d, f, k}, 200),
      MakeSegment(12, 1, {h, m, n}, 300),
      MakeSegment(13, 1, {n, c, p, o}, 400),
      MakeSegment(14, 1, {h, b, k, r, s, t}, 500),
  };
}

std::vector<Segment> PaperS2Segments() {
  return {
      MakeSegment(20, 2, {e, c, f}, 150),
      MakeSegment(21, 2, {c, f, h, j}, 250),
      MakeSegment(22, 2, {j, p, o}, 350),
      MakeSegment(23, 2, {e, c, m, n}, 450),
      MakeSegment(24, 2, {n, s, w, z}, 550),
  };
}

TEST(SegTreeTest, EmptyTree) {
  SegTree tree;
  EXPECT_EQ(tree.num_nodes(), 0u);
  EXPECT_EQ(tree.num_segments(), 0u);
  EXPECT_EQ(tree.total_objects(), 0u);
  EXPECT_EQ(tree.CompressionRatio(), 0.0);
  tree.CheckInvariants();
}

TEST(SegTreeTest, PaperExample2InsertionSharing) {
  SegTree tree;
  const auto segments = PaperS1Segments();

  // G0 (b,c,d) goes under the root: 3 new nodes.
  tree.Insert(segments[0]);
  EXPECT_EQ(tree.num_nodes(), 3u);

  // G1 (c,d,f,k): prefix (c,d) exists inside the b-branch; only f,k are new.
  tree.Insert(segments[1]);
  EXPECT_EQ(tree.num_nodes(), 5u);
  EXPECT_EQ(tree.stats().prefix_nodes_shared, 2u);

  // G2 (h,m,n): no matching prefix; 3 new nodes at the root.
  tree.Insert(segments[2]);
  EXPECT_EQ(tree.num_nodes(), 8u);

  // G3 (n,c,p,o): prefix n matches inside the h-branch; c,p,o are new.
  tree.Insert(segments[3]);
  EXPECT_EQ(tree.num_nodes(), 11u);

  // G4 (h,b,k,r,s,t): prefix h matches; 5 new nodes.
  tree.Insert(segments[4]);
  EXPECT_EQ(tree.num_nodes(), 16u);

  EXPECT_EQ(tree.num_segments(), 5u);
  EXPECT_EQ(tree.total_objects(), 20u);
  EXPECT_NEAR(tree.CompressionRatio(), 4.0 / 20.0, 1e-12);
  tree.CheckInvariants();
}

TEST(SegTreeTest, PaperExample3AttributeUpdates) {
  SegTree tree;
  const auto segments = PaperS1Segments();
  tree.Insert(segments[0]);
  // Before inserting G1: c has (dist=1, cnt=1), d has (dist=0, cnt=1).
  {
    const std::string dump = tree.DebugString();
    EXPECT_NE(dump.find("obj=2 (dist=1, cnt=1)"), std::string::npos) << dump;
    EXPECT_NE(dump.find("obj=3 (dist=0, cnt=1)"), std::string::npos) << dump;
  }
  tree.Insert(segments[1]);
  // After inserting G1: c -> (3, 2) and d -> (2, 2), per Example 3.
  {
    const std::string dump = tree.DebugString();
    EXPECT_NE(dump.find("obj=2 (dist=3, cnt=2)"), std::string::npos) << dump;
    EXPECT_NE(dump.find("obj=3 (dist=2, cnt=2)"), std::string::npos) << dump;
  }
  tree.CheckInvariants();
}

TEST(SegTreeTest, RelevantSegmentsFindsAllContainingSegments) {
  SegTree tree;
  for (const Segment& g : PaperS1Segments()) tree.Insert(g);
  for (const Segment& g : PaperS2Segments()) tree.Insert(g);
  const Timestamp now = 600;

  EXPECT_EQ(tree.RelevantSegments(c, now, kTau),
            (std::vector<SegmentId>{10, 11, 13, 20, 21, 23}));
  EXPECT_EQ(tree.RelevantSegments(n, now, kTau),
            (std::vector<SegmentId>{12, 13, 23, 24}));
  EXPECT_EQ(tree.RelevantSegments(t, now, kTau),
            (std::vector<SegmentId>{14}));
  EXPECT_TRUE(tree.RelevantSegments(999, now, kTau).empty());
}

TEST(SegTreeTest, PaperTable1Slcp) {
  SegTree tree;
  for (const Segment& g : PaperS1Segments()) tree.Insert(g);
  for (const Segment& g : PaperS2Segments()) tree.Insert(g);

  // Example 4's new segment G0 = (m,n,p,o) in stream s3.
  const Segment probe = MakeSegment(30, 3, {m, n, p, o}, 600);
  std::vector<SegmentId> expired;
  const std::vector<LcpRow> rows = tree.Slcp(probe, 600, kTau, &expired);
  EXPECT_TRUE(expired.empty());

  std::map<SegmentId, std::vector<ObjectId>> got;
  for (const LcpRow& row : rows) got[row.segment] = row.common;

  const std::map<SegmentId, std::vector<ObjectId>> want = {
      {12, {m, n}},     // (G2, s1): {m, n}
      {13, {n, o, p}},  // (G3, s1): {n, p, o}
      {22, {o, p}},     // (G2, s2): {p, o}
      {23, {m, n}},     // (G3, s2): {m, n}
      {24, {n}},        // (G4, s2): {n}
  };
  EXPECT_EQ(got, want);
}

TEST(SegTreeTest, SlcpReportsStreamAndTimes) {
  SegTree tree;
  tree.Insert(MakeSegment(1, 7, {c, d}, 1000));
  const Segment probe = MakeSegment(2, 8, {d}, 1500);
  const auto rows = tree.Slcp(probe, 1500, kTau, nullptr);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].segment, 1u);
  EXPECT_EQ(rows[0].stream, 7u);
  EXPECT_EQ(rows[0].start, 1000);
  EXPECT_EQ(rows[0].end, 1000);
}

TEST(SegTreeTest, SlcpSkipsExpiredAndReportsThem) {
  SegTree tree;
  tree.Insert(MakeSegment(1, 1, {c, d}, 0));
  tree.Insert(MakeSegment(2, 2, {c}, 100));
  const Timestamp now = kTau + 50;  // segment 1 has expired, 2 is valid
  const Segment probe = MakeSegment(3, 3, {c}, now);
  std::vector<SegmentId> expired;
  const auto rows = tree.Slcp(probe, now, kTau, &expired);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].segment, 2u);
  EXPECT_EQ(expired, std::vector<SegmentId>{1});
}

TEST(SegTreeTest, RemoveSharedPrefixKeepsOtherSegments) {
  SegTree tree;
  const auto segments = PaperS1Segments();
  for (const Segment& g : segments) tree.Insert(g);

  // Removing G0 (b,c,d) must keep G1 (c,d,f,k) intact: b disappears and the
  // orphaned (c,d,f,k) chain grafts onto G3's existing c node, merging the
  // duplicate c (16 - b - merged c = 14 nodes).
  tree.Remove(10);
  tree.CheckInvariants();
  EXPECT_EQ(tree.num_segments(), 4u);
  EXPECT_EQ(tree.num_nodes(), 14u);
  EXPECT_EQ(tree.RelevantSegments(c, 600, kTau),
            (std::vector<SegmentId>{11, 13}));
  EXPECT_EQ(tree.RelevantSegments(b, 600, kTau),
            (std::vector<SegmentId>{14}));
}

TEST(SegTreeTest, RemoveLeafSegment) {
  SegTree tree;
  const auto segments = PaperS1Segments();
  for (const Segment& g : segments) tree.Insert(g);
  tree.Remove(14);  // (h,b,k,r,s,t): h shared with G2, rest unique
  tree.CheckInvariants();
  EXPECT_EQ(tree.num_nodes(), 11u);
  EXPECT_TRUE(tree.RelevantSegments(t, 600, kTau).empty());
  EXPECT_EQ(tree.RelevantSegments(h, 600, kTau),
            (std::vector<SegmentId>{12}));
}

TEST(SegTreeTest, RemoveIsIdempotent) {
  SegTree tree;
  tree.Insert(MakeSegment(1, 1, {c, d}, 0));
  tree.Remove(1);
  tree.Remove(1);  // no-op
  EXPECT_EQ(tree.num_segments(), 0u);
  EXPECT_EQ(tree.num_nodes(), 0u);
  tree.CheckInvariants();
}

TEST(SegTreeTest, RemoveEverythingLeavesEmptyTree) {
  SegTree tree;
  const auto s1 = PaperS1Segments();
  const auto s2 = PaperS2Segments();
  for (const Segment& g : s1) tree.Insert(g);
  for (const Segment& g : s2) tree.Insert(g);
  for (const Segment& g : s1) {
    tree.Remove(g.id());
    tree.CheckInvariants();
  }
  for (const Segment& g : s2) {
    tree.Remove(g.id());
    tree.CheckInvariants();
  }
  EXPECT_EQ(tree.num_nodes(), 0u);
  EXPECT_EQ(tree.num_segments(), 0u);
  EXPECT_EQ(tree.total_objects(), 0u);
}

TEST(SegTreeTest, RemoveExpiredSweep) {
  SegTree tree;
  tree.Insert(MakeSegment(1, 1, {c, d}, 0));
  tree.Insert(MakeSegment(2, 2, {d, f}, 1000));
  tree.Insert(MakeSegment(3, 3, {f, k}, kTau + 500));
  const size_t removed = tree.RemoveExpired(kTau + 500, kTau);
  EXPECT_EQ(removed, 1u);  // only segment 1 (start 0) expired
  EXPECT_EQ(tree.num_segments(), 2u);
  tree.CheckInvariants();
}

TEST(SegTreeTest, SameSegmentInsertedTwiceByDifferentIdsShares) {
  // Identical object sequences compress onto a single path.
  SegTree tree;
  tree.Insert(MakeSegment(1, 1, {c, d, f}, 0));
  tree.Insert(MakeSegment(2, 2, {c, d, f}, 10));
  EXPECT_EQ(tree.num_nodes(), 3u);
  EXPECT_EQ(tree.num_segments(), 2u);
  EXPECT_NEAR(tree.CompressionRatio(), 0.5, 1e-12);
  // Both segments are tails on the same node.
  EXPECT_EQ(tree.RelevantSegments(f, 10, kTau),
            (std::vector<SegmentId>{1, 2}));
  tree.CheckInvariants();
}

TEST(SegTreeTest, DuplicateObjectsWithinSegment) {
  SegTree tree;
  tree.Insert(MakeSegment(1, 1, {c, c, d, c}, 0));
  EXPECT_EQ(tree.num_nodes(), 4u);
  EXPECT_EQ(tree.RelevantSegments(c, 0, kTau), (std::vector<SegmentId>{1}));
  const Segment probe = MakeSegment(2, 2, {c, d}, 10);
  const auto rows = tree.Slcp(probe, 10, kTau, nullptr);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].common, (std::vector<ObjectId>{c, d}));
  tree.CheckInvariants();
}

TEST(SegTreeTest, SingleObjectSegments) {
  SegTree tree;
  tree.Insert(MakeSegment(1, 1, {c}, 0));
  tree.Insert(MakeSegment(2, 2, {c}, 10));
  EXPECT_EQ(tree.num_nodes(), 1u);  // fully shared
  EXPECT_EQ(tree.RelevantSegments(c, 10, kTau),
            (std::vector<SegmentId>{1, 2}));
  tree.Remove(1);
  EXPECT_EQ(tree.num_nodes(), 1u);
  tree.Remove(2);
  EXPECT_EQ(tree.num_nodes(), 0u);
  tree.CheckInvariants();
}

TEST(SegTreeTest, DistanceBoundPruningMatchesExhaustive) {
  SegTreeOptions no_bound;
  no_bound.use_distance_bound = false;
  SegTree pruned;       // default: pruning on
  SegTree exhaustive(no_bound);
  for (const Segment& g : PaperS1Segments()) {
    pruned.Insert(g);
    exhaustive.Insert(g);
  }
  for (const Segment& g : PaperS2Segments()) {
    pruned.Insert(g);
    exhaustive.Insert(g);
  }
  for (ObjectId object : {b, c, d, e, f, h, j, k, m, n, o, p, r, s, t, w, z}) {
    EXPECT_EQ(pruned.RelevantSegments(object, 600, kTau),
              exhaustive.RelevantSegments(object, 600, kTau))
        << "object " << object;
  }
  // Pruning must visit no more nodes than the exhaustive search.
  EXPECT_LE(pruned.stats().distance_bound_visits,
            exhaustive.stats().distance_bound_visits);
}

TEST(SegTreeTest, GraftReusesExistingBranch) {
  // Build G0=(b,c,d) and G1=(c,d,f,k) sharing (c,d) inside the b-branch,
  // plus an independent (c,d) path elsewhere via (x=99,c,d)? Simpler: after
  // removing G0, the orphaned (c,d,f,k) subtree should graft onto the
  // existing standalone (c,d) path of another segment.
  SegTree tree;  // graft_on_delete is on by default
  tree.Insert(MakeSegment(1, 1, {b, c, d}, 0));
  tree.Insert(MakeSegment(2, 1, {c, d, f, k}, 10));
  tree.Insert(MakeSegment(3, 2, {m, c, d}, 20));
  const size_t nodes_before = tree.num_nodes();  // b,c,d,f,k + m,c,d = 8
  EXPECT_EQ(nodes_before, 8u);
  tree.Remove(1);
  tree.CheckInvariants();
  // b is gone; the orphaned (c,d,f,k) chain merges with m's (c,d) branch:
  // nodes: m,c,d,f,k = 5.
  EXPECT_EQ(tree.num_nodes(), 5u);
  EXPECT_GE(tree.stats().subtrees_grafted, 1u);
  EXPECT_EQ(tree.RelevantSegments(c, 20, kTau),
            (std::vector<SegmentId>{2, 3}));
  EXPECT_EQ(tree.RelevantSegments(k, 20, kTau), (std::vector<SegmentId>{2}));
}

TEST(SegTreeTest, RootAttachModeKeepsCorrectness) {
  SegTreeOptions options;
  options.graft_on_delete = false;
  SegTree tree(options);
  tree.Insert(MakeSegment(1, 1, {b, c, d}, 0));
  tree.Insert(MakeSegment(2, 1, {c, d, f, k}, 10));
  tree.Insert(MakeSegment(3, 2, {m, c, d}, 20));
  tree.Remove(1);
  tree.CheckInvariants();
  // No merging: the orphan chain re-roots as-is (7 nodes remain).
  EXPECT_EQ(tree.num_nodes(), 7u);
  EXPECT_GE(tree.stats().subtrees_reattached, 1u);
  EXPECT_EQ(tree.RelevantSegments(c, 20, kTau),
            (std::vector<SegmentId>{2, 3}));
}

TEST(SegTreeTest, MemoryUsageGrowsAndIsRetainedForReuse) {
  SegTree tree;
  const size_t empty = tree.MemoryUsage();
  for (const Segment& g : PaperS1Segments()) tree.Insert(g);
  const size_t full = tree.MemoryUsage();
  EXPECT_GT(full, empty);
  // Removal recycles nodes into the arena free list instead of freeing:
  // the footprint is retained (full accounting, no undercount), and the
  // only growth allowed is the free-list bookkeeping itself.
  for (const Segment& g : PaperS1Segments()) tree.Remove(g.id());
  const size_t drained = tree.MemoryUsage();
  EXPECT_LE(drained, full + 1024);
  EXPECT_GT(tree.stats().nodes_deleted, 0u);
  // Refilling reuses the recycled nodes: no new slabs, footprint stable.
  for (const Segment& g : PaperS1Segments()) tree.Insert(g);
  EXPECT_LE(tree.MemoryUsage(), drained + 1024);
  EXPECT_GT(tree.stats().nodes_recycled, 0u);
}


TEST(SegTreeTest, PrefixProbeCapLimitsSharingButNotCorrectness) {
  SegTreeOptions capped;
  capped.max_prefix_probes = 1;  // only the newest chain node is probed
  SegTree tree(capped);
  // Two identical segments starting with c: the first probe target is the
  // newest chain node, so sharing still happens for the common case...
  tree.Insert(MakeSegment(1, 1, {c, d, f}, 0));
  tree.Insert(MakeSegment(2, 2, {c, d, f}, 10));
  EXPECT_EQ(tree.num_nodes(), 3u);
  // ...but with many distinct c-branches the cap forgoes deeper matches.
  tree.Insert(MakeSegment(3, 3, {c, k}, 20));      // probes newest c only
  tree.Insert(MakeSegment(4, 1, {c, d, f}, 30));   // newest c is now 3's
  tree.CheckInvariants();
  // Queries stay exact regardless of sharing.
  EXPECT_EQ(tree.RelevantSegments(c, 30, kTau),
            (std::vector<SegmentId>{1, 2, 3, 4}));
  EXPECT_EQ(tree.RelevantSegments(f, 30, kTau),
            (std::vector<SegmentId>{1, 2, 4}));
}

TEST(SegTreeTest, UnboundedPrefixProbesMatchPaperAlgorithm) {
  SegTreeOptions unbounded;
  unbounded.max_prefix_probes = 0;
  SegTree tree(unbounded);
  for (int i = 0; i < 32; ++i) {
    tree.Insert(MakeSegment(static_cast<SegmentId>(i), 1,
                            {static_cast<ObjectId>(100 + i), c},
                            static_cast<Timestamp>(i)));
  }
  // A (c, d) segment must find SOME c to extend, even though every c sits
  // at the bottom of a different branch.
  tree.Insert(MakeSegment(99, 2, {c, d}, 40));
  EXPECT_EQ(tree.stats().prefix_nodes_shared, 1u);
  tree.CheckInvariants();
}

TEST(SegTreeTest, SweepStopsAtFirstLiveEntry) {
  // An out-of-completion-order old segment behind a live one survives the
  // sweep (documented Tlist behaviour) but is still invisible to queries.
  SegTree tree;
  tree.Insert(MakeSegment(1, 1, {c}, 1000));  // completes first, young
  tree.Insert(MakeSegment(2, 2, {d}, 0));     // completes later, old
  const Timestamp now = kTau + 500;           // only segment 2 is expired
  EXPECT_EQ(tree.RemoveExpired(now, kTau), 0u);  // blocked by live front
  EXPECT_EQ(tree.num_segments(), 2u);
  EXPECT_TRUE(tree.RelevantSegments(d, now, kTau).empty());  // still exact
  // Once the front expires too, the straggler goes with it.
  const Timestamp later = 1000 + kTau + 1;
  EXPECT_EQ(tree.RemoveExpired(later, kTau), 2u);
  EXPECT_EQ(tree.num_segments(), 0u);
  tree.CheckInvariants();
}

TEST(SegTreeDeathTest, DuplicateIdAborts) {
  SegTree tree;
  tree.Insert(MakeSegment(1, 1, {c}, 0));
  EXPECT_DEATH(tree.Insert(MakeSegment(1, 2, {d}, 0)), "FCP_CHECK");
}

}  // namespace
}  // namespace fcp
