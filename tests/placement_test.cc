// PlacementMap: the pluggable object -> shard function behind skew-aware
// routing. These tests pin the contract the migration fence relies on —
// hash-compatible fallback, immutable successor snapshots with monotone
// versions, and a greedy initial placement that actually balances a skewed
// frequency profile better than the hash.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/placement.h"
#include "common/shard.h"
#include "util/zipf.h"

namespace fcp {
namespace {

TEST(PlacementTest, HashFallbackMatchesShardOf) {
  // The empty placement must be a drop-in for the static rule: equal
  // assignment for every object, so enabling the PlacementMap plumbing with
  // no frequency data changes nothing.
  const PlacementMap placement(4);
  for (ObjectId object = 0; object < 10000; ++object) {
    EXPECT_EQ(placement.shard_of(object), ShardOf(object, 4)) << object;
  }
  EXPECT_EQ(placement.version(), 0u);
  EXPECT_EQ(placement.dense_size(), 0u);
}

TEST(PlacementTest, DenseTableWinsInsideRangeHashBeyondIt) {
  const PlacementMap placement(3, {2, 2, 0, 1});
  EXPECT_EQ(placement.shard_of(0), 2u);
  EXPECT_EQ(placement.shard_of(1), 2u);
  EXPECT_EQ(placement.shard_of(2), 0u);
  EXPECT_EQ(placement.shard_of(3), 1u);
  for (ObjectId object = 4; object < 1000; ++object) {
    EXPECT_EQ(placement.shard_of(object), ShardOf(object, 3)) << object;
  }
}

TEST(PlacementTest, WithMovesProducesBumpedImmutableSuccessor) {
  auto base = std::make_shared<const PlacementMap>(4, std::vector<uint32_t>{0, 1, 2, 3});
  const std::vector<std::pair<ObjectId, uint32_t>> moves = {{1, 3}, {3, 0}};
  auto next = base->WithMoves(moves);

  // The successor reflects the moves; everything else is untouched.
  EXPECT_EQ(next->shard_of(1), 3u);
  EXPECT_EQ(next->shard_of(3), 0u);
  EXPECT_EQ(next->shard_of(0), 0u);
  EXPECT_EQ(next->shard_of(2), 2u);
  EXPECT_EQ(next->version(), base->version() + 1);

  // The base snapshot is immutable: deliveries routed under it keep seeing
  // the pre-move world (the migration fence depends on this).
  EXPECT_EQ(base->shard_of(1), 1u);
  EXPECT_EQ(base->shard_of(3), 3u);
  EXPECT_EQ(base->version(), 0u);
}

TEST(PlacementTest, WithMovesGrowsDenseTableForOutOfRangeObjects) {
  auto base = std::make_shared<const PlacementMap>(4);
  const std::vector<std::pair<ObjectId, uint32_t>> moves = {{100, 2}};
  auto next = base->WithMoves(moves);
  EXPECT_EQ(next->shard_of(100), 2u);
  EXPECT_GE(next->dense_size(), 101u);
  // New slots below the moved object keep their hash assignment — growing
  // the table must not silently reassign untouched objects.
  for (ObjectId object = 0; object < 100; ++object) {
    EXPECT_EQ(next->shard_of(object), ShardOf(object, 4)) << object;
  }
}

TEST(PlacementTest, ChainedMovesKeepMonotoneVersions) {
  std::shared_ptr<const PlacementMap> placement =
      std::make_shared<const PlacementMap>(2);
  for (uint64_t round = 1; round <= 5; ++round) {
    const std::vector<std::pair<ObjectId, uint32_t>> moves = {
        {static_cast<ObjectId>(round), static_cast<uint32_t>(round % 2)}};
    placement = placement->WithMoves(moves);
    EXPECT_EQ(placement->version(), round);
    EXPECT_EQ(placement->shard_of(static_cast<ObjectId>(round)), round % 2);
  }
}

// Max/mean load ratio of a placement against per-object weights.
double Imbalance(const PlacementMap& placement,
                 const std::vector<std::pair<ObjectId, uint64_t>>& weights) {
  std::vector<uint64_t> load(placement.num_shards(), 0);
  for (const auto& [object, weight] : weights) {
    load[placement.shard_of(object)] += weight;
  }
  uint64_t total = 0;
  uint64_t max_load = 0;
  for (uint64_t l : load) {
    total += l;
    max_load = std::max(max_load, l);
  }
  return static_cast<double>(max_load) * placement.num_shards() /
         static_cast<double>(total);
}

TEST(PlacementTest, GreedyPlacementBeatsHashOnZipfWeights) {
  // Zipf s = 1.0 frequency profile: the hash parks the head of the
  // distribution wherever Mix64 says, so one shard ends up paying a large
  // multiple of its fair share; LPT must spread the head across shards.
  constexpr uint64_t kVocab = 2000;
  constexpr uint32_t kShards = 8;
  const ZipfDistribution zipf(kVocab, 1.0);
  std::vector<std::pair<ObjectId, uint64_t>> weights;
  uint64_t total = 0;
  uint64_t max_weight = 0;
  for (uint64_t r = 0; r < kVocab; ++r) {
    const uint64_t w = static_cast<uint64_t>(zipf.Pmf(r) * 1e9) + 1;
    weights.push_back({static_cast<ObjectId>(r), w});
    total += w;
    max_weight = std::max(max_weight, w);
  }
  auto greedy = BuildGreedyPlacement(weights, kShards);
  const PlacementMap hash(kShards);
  const double greedy_imbalance = Imbalance(*greedy, weights);
  const double hash_imbalance = Imbalance(hash, weights);
  EXPECT_LT(greedy_imbalance, hash_imbalance);
  // No placement can beat max(heaviest object, mean) per shard; LPT must
  // land within a few percent of that lower bound. (A single object heavier
  // than total/S is the residual skew only live rotation can break — see
  // stream/rebalancer.h.)
  const double lower_bound = std::max(
      1.0, static_cast<double>(max_weight) * kShards / static_cast<double>(total));
  EXPECT_LT(greedy_imbalance, lower_bound * 1.05);
}

TEST(PlacementTest, GreedyPlacementIsDeterministic) {
  std::vector<std::pair<ObjectId, uint64_t>> weights;
  for (ObjectId o = 0; o < 500; ++o) weights.push_back({o, 1000 / (o + 1)});
  auto a = BuildGreedyPlacement(weights, 4);
  // Same weights in a different order must yield the same placement (the
  // builder sorts with a deterministic tie-break).
  std::reverse(weights.begin(), weights.end());
  auto b = BuildGreedyPlacement(weights, 4);
  for (ObjectId o = 0; o < 500; ++o) {
    EXPECT_EQ(a->shard_of(o), b->shard_of(o)) << o;
  }
}

TEST(PlacementTest, GreedyPlacementRespectsDenseCap) {
  std::vector<std::pair<ObjectId, uint64_t>> weights;
  for (ObjectId o = 0; o < 100; ++o) weights.push_back({o, 100 - o});
  auto placement = BuildGreedyPlacement(weights, 4, /*max_dense_objects=*/16);
  EXPECT_LE(placement->dense_size(), 16u);
  // Objects beyond the cap fall back to the hash.
  for (ObjectId o = 16; o < 100; ++o) {
    EXPECT_EQ(placement->shard_of(o), ShardOf(o, 4)) << o;
  }
}

TEST(PlacementTest, ShardSpecOwnsFollowsThePlacement) {
  const PlacementMap placement(3, {2, 0, 1});
  ShardSpec spec{0, 3, &placement};
  EXPECT_FALSE(spec.Owns(0));
  EXPECT_TRUE(spec.Owns(1));
  EXPECT_FALSE(spec.Owns(2));
  // Without a placement the spec falls back to the static hash rule.
  ShardSpec hash_spec{ShardOf(7, 3), 3};
  EXPECT_TRUE(hash_spec.Owns(7));
  // Singleton shards own everything regardless of placement.
  ShardSpec singleton{0, 1, &placement};
  EXPECT_TRUE(singleton.Owns(0));
}

}  // namespace
}  // namespace fcp
