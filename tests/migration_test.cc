// Migration under fire: forced hot-object migrations mid-stream must leave
// the union of shard outputs byte-identical to a serial run. This is the
// correctness contract of the fence protocol (DESIGN.md §2.6): every
// delivery carries its route-time placement snapshot, and ApplyPlacement
// backfills each new owner's index through the same FIFO queue before any
// trigger routed under the new snapshot — so ownership stays a complete,
// disjoint partition for every trigger, no matter how often placement flips.
//
// The router-level test drives the ShardRouter directly (deterministic
// forced moves, every miner kind); the engine-level tests run the whole
// ParallelEngine with live rebalancing and with work stealing, one worker so
// serial equivalence is exact.

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/placement.h"
#include "common/shard.h"
#include "core/mining_engine.h"
#include "core/parallel_engine.h"
#include "stream/rebalancer.h"
#include "stream/segment.h"
#include "stream/shard_router.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace fcp {
namespace {

using testing::FcpSignature;
using testing::FullSignatures;

MiningParams Params() {
  MiningParams params;
  params.xi = Seconds(60);
  params.tau = Minutes(10);
  params.theta = 3;
  params.min_pattern_size = 2;
  params.max_pattern_size = 4;
  params.max_segment_objects = 16;
  return params;
}

// Zipf-skewed segment workload: a few hot objects dominate, so migrations of
// the head actually change routing for a large share of the traffic.
std::vector<Segment> ZipfSegments(uint64_t seed, size_t num_segments,
                                  uint64_t vocab, double skew) {
  Rng rng(seed);
  const ZipfDistribution zipf(vocab, skew);
  std::vector<Segment> out;
  out.reserve(num_segments);
  Timestamp time = 0;
  for (size_t i = 0; i < num_segments; ++i) {
    time += 1 + static_cast<Timestamp>(rng.Below(30000));
    const uint32_t length = 2 + static_cast<uint32_t>(rng.Below(5));
    std::vector<SegmentEntry> entries;
    entries.reserve(length);
    for (uint32_t j = 0; j < length; ++j) {
      entries.push_back(
          SegmentEntry{static_cast<ObjectId>(zipf.Sample(rng)),
                       time + static_cast<Timestamp>(j * 100)});
    }
    out.emplace_back(static_cast<SegmentId>(i + 1),
                     static_cast<StreamId>(rng.Below(10)), std::move(entries));
  }
  return out;
}

std::vector<Fcp> MineSerial(MinerKind kind, const MiningParams& params,
                            const std::vector<Segment>& segments) {
  auto miner = MakeMiner(kind, params);
  std::vector<Fcp> out;
  std::vector<Fcp> batch;
  for (const Segment& segment : segments) {
    batch.clear();
    miner->AddSegment(segment, &batch);
    for (Fcp& fcp : batch) out.push_back(std::move(fcp));
  }
  return out;
}

// Replays the workload through a live-tracking ShardRouter, forcing a
// hot-object migration every `migrate_every` segments, then drains each
// shard queue in FIFO order exactly the way a shard thread would: adopt the
// delivery's placement snapshot, advance the watermark, mine — or
// index-backfill when the delivery is a migration replay.
std::vector<Fcp> MineWithForcedMigrations(MinerKind kind,
                                          const MiningParams& params,
                                          uint32_t num_shards,
                                          const std::vector<Segment>& segments,
                                          size_t migrate_every,
                                          uint64_t* backfills_out) {
  ShardRouterOptions router_options;
  router_options.track_live = true;
  router_options.tau = params.tau;
  ShardRouter router(num_shards, /*queue_capacity=*/1 << 17,
                     std::move(router_options));
  std::vector<std::unique_ptr<FcpMiner>> miners;
  for (uint32_t s = 0; s < num_shards; ++s) {
    miners.push_back(MakeMiner(kind, params, router.spec(s)));
  }

  size_t since_migration = 0;
  uint32_t round = 0;
  for (const Segment& segment : segments) {
    router.Route(SegmentRef::Adopt(segment));
    if (++since_migration >= migrate_every) {
      since_migration = 0;
      // Rotate the zipf head: move the hottest ranks to fresh shards each
      // round. Objects 0..3 carry most of the traffic, so every migration
      // re-homes live supporters (forcing real backfills, not no-ops).
      auto current = router.placement();
      if (current == nullptr) {
        current = std::make_shared<const PlacementMap>(num_shards);
      }
      ++round;
      std::vector<std::pair<ObjectId, uint32_t>> moves;
      for (ObjectId hot = 0; hot < 2; ++hot) {
        moves.push_back(
            {hot, (current->shard_of(hot) + 1 + round + hot) % num_shards});
      }
      router.ApplyPlacement(current->WithMoves(moves));
    }
  }
  if (backfills_out != nullptr) {
    *backfills_out = router.stats().backfill_deliveries;
  }
  router.Close();

  std::vector<Fcp> out;
  std::vector<Fcp> batch;
  for (uint32_t s = 0; s < num_shards; ++s) {
    std::shared_ptr<const PlacementMap> active;
    while (auto delivery = router.queue(s).TryPop()) {
      if (delivery->placement.get() != active.get()) {
        miners[s]->SetPlacement(delivery->placement.get());
        active = delivery->placement;
      }
      miners[s]->AdvanceWatermark(delivery->watermark);
      if (delivery->index_only) {
        miners[s]->AddSegmentIndexOnly(delivery->segment);
        continue;
      }
      batch.clear();
      miners[s]->AddSegment(delivery->segment, &batch);
      for (Fcp& fcp : batch) out.push_back(std::move(fcp));
    }
  }
  return out;
}

class MigrationTest : public ::testing::TestWithParam<MinerKind> {};

TEST_P(MigrationTest, ForcedMigrationsPreserveByteIdenticalUnion) {
  const MinerKind kind = GetParam();
  const MiningParams params = Params();
  for (uint64_t seed : {41u, 42u}) {
    const std::vector<Segment> segments =
        ZipfSegments(seed, 800, /*vocab=*/40, /*skew=*/1.0);
    const std::vector<FcpSignature> serial =
        FullSignatures(MineSerial(kind, params, segments));
    ASSERT_FALSE(serial.empty()) << "workload mined nothing — test is vacuous";
    uint64_t backfills = 0;
    const std::vector<FcpSignature> migrated = FullSignatures(
        MineWithForcedMigrations(kind, params, /*num_shards=*/4, segments,
                                 /*migrate_every=*/50, &backfills));
    EXPECT_GT(backfills, 0u)
        << "no backfill was forced — the fence went unexercised";
    EXPECT_EQ(migrated, serial) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllMiners, MigrationTest,
                         ::testing::Values(MinerKind::kCooMine,
                                           MinerKind::kDiMine,
                                           MinerKind::kMatrixMine),
                         [](const ::testing::TestParamInfo<MinerKind>& info) {
                           return std::string(MinerKindToString(info.param));
                         });

TEST(MigrationTest, BruteForceOracleSurvivesMigrations) {
  // The oracle shares no code with the real miners or indexes; identical
  // union under migration is independent evidence the fence protocol itself
  // is correct, not an artifact of one index implementation.
  MiningParams params = Params();
  params.max_segment_objects = 8;
  const std::vector<Segment> segments =
      ZipfSegments(47, 300, /*vocab=*/16, /*skew=*/1.0);
  const std::vector<FcpSignature> serial =
      FullSignatures(MineSerial(MinerKind::kBruteForce, params, segments));
  ASSERT_FALSE(serial.empty());
  uint64_t backfills = 0;
  EXPECT_EQ(FullSignatures(MineWithForcedMigrations(
                MinerKind::kBruteForce, params, /*num_shards=*/4, segments,
                /*migrate_every=*/40, &backfills)),
            serial);
  EXPECT_GT(backfills, 0u);
}

TEST(MigrationTest, FreqPlacementAloneIsEquivalent) {
  // Placement-agnostic ownership: ANY object->shard function partitions the
  // pattern space, so a greedy frequency-weighted initial placement (no
  // migration at all) must also reproduce the serial output exactly.
  const MiningParams params = Params();
  const std::vector<Segment> segments =
      ZipfSegments(51, 800, /*vocab=*/40, /*skew=*/1.0);
  std::vector<std::pair<ObjectId, uint64_t>> weights;
  for (ObjectId o = 0; o < 40; ++o) weights.push_back({o, 0});
  for (const Segment& segment : segments) {
    for (const SegmentEntry& entry : segment.entries()) {
      ++weights[entry.object].second;
    }
  }
  auto placement = BuildGreedyPlacement(weights, 4);

  const std::vector<FcpSignature> serial =
      FullSignatures(MineSerial(MinerKind::kCooMine, params, segments));
  ASSERT_FALSE(serial.empty());

  ShardRouterOptions router_options;
  router_options.placement = placement;
  ShardRouter router(4, /*queue_capacity=*/1 << 17, std::move(router_options));
  std::vector<std::unique_ptr<FcpMiner>> miners;
  for (uint32_t s = 0; s < 4; ++s) {
    miners.push_back(MakeMiner(MinerKind::kCooMine, params, router.spec(s)));
    miners[s]->SetPlacement(placement.get());
  }
  for (const Segment& segment : segments) {
    router.Route(SegmentRef::Adopt(segment));
  }
  router.Close();
  std::vector<Fcp> out;
  std::vector<Fcp> batch;
  for (uint32_t s = 0; s < 4; ++s) {
    while (auto delivery = router.queue(s).TryPop()) {
      miners[s]->AdvanceWatermark(delivery->watermark);
      batch.clear();
      miners[s]->AddSegment(delivery->segment, &batch);
      for (Fcp& fcp : batch) out.push_back(std::move(fcp));
    }
  }
  EXPECT_EQ(FullSignatures(out), serial);
}

// ---------------------------------------------------------------------------
// Engine-level: the full pipeline with live rebalancing / stealing enabled.

std::vector<ObjectEvent> ZipfEvents(uint64_t seed, size_t num_events,
                                    uint64_t vocab, double skew,
                                    uint32_t streams) {
  Rng rng(seed);
  const ZipfDistribution zipf(vocab, skew);
  std::vector<ObjectEvent> events;
  events.reserve(num_events);
  Timestamp time = 0;
  for (size_t i = 0; i < num_events; ++i) {
    time += 1 + static_cast<Timestamp>(rng.Below(2000));
    events.push_back(ObjectEvent{static_cast<StreamId>(rng.Below(streams)),
                                 static_cast<ObjectId>(zipf.Sample(rng)),
                                 time});
  }
  return events;
}

std::vector<FcpSignature> SerialEngineSignatures(
    MinerKind kind, const MiningParams& params,
    const std::vector<ObjectEvent>& events) {
  MiningEngine serial(kind, params);
  std::vector<Fcp> all;
  for (const ObjectEvent& event : events) {
    for (Fcp& f : serial.PushEvent(event)) all.push_back(std::move(f));
  }
  for (Fcp& f : serial.Flush()) all.push_back(std::move(f));
  return FullSignatures(all);
}

TEST(MigrationTest, RebalancingEngineMatchesSerialByteForByte) {
  // One worker removes merge skew; with live rebalancing migrating the zipf
  // head between shards mid-stream the output must STILL be byte-identical
  // to serial — the end-to-end proof of the fence through the real pipeline.
  const MiningParams params = Params();
  const std::vector<ObjectEvent> events =
      ZipfEvents(61, 12000, /*vocab=*/50, /*skew=*/1.2, /*streams=*/8);
  const std::vector<FcpSignature> serial =
      SerialEngineSignatures(MinerKind::kCooMine, params, events);
  ASSERT_FALSE(serial.empty());

  ParallelEngineOptions options;
  options.num_workers = 1;
  options.num_miner_shards = 4;
  options.rebalance = true;
  options.rebalancer.interval_segments = 64;
  options.rebalancer.imbalance_threshold = 1.0;  // trigger on any skew
  options.rebalancer.min_move_weight = 2;
  ParallelEngine engine(MinerKind::kCooMine, params, options);
  for (const ObjectEvent& event : events) engine.Push(event);
  engine.Finish();

  ASSERT_NE(engine.rebalancer(), nullptr);
  EXPECT_GT(engine.rebalancer()->stats().rounds_triggered, 0u)
      << "no migration happened — the test did not exercise rebalancing";
  EXPECT_GT(engine.router_stats().placements_applied, 0u);
  EXPECT_EQ(FullSignatures(engine.results()), serial);
}

TEST(MigrationTest, RebalancingEngineAllMinersStaySound) {
  const MiningParams params = Params();
  const std::vector<ObjectEvent> events =
      ZipfEvents(62, 8000, /*vocab=*/50, /*skew=*/1.2, /*streams=*/8);
  for (MinerKind kind :
       {MinerKind::kCooMine, MinerKind::kDiMine, MinerKind::kMatrixMine}) {
    const std::vector<FcpSignature> serial =
        SerialEngineSignatures(kind, params, events);
    ParallelEngineOptions options;
    options.num_workers = 1;
    options.num_miner_shards = 4;
    options.rebalance = true;
    options.rebalancer.interval_segments = 64;
    options.rebalancer.imbalance_threshold = 1.0;
    options.rebalancer.min_move_weight = 2;
    ParallelEngine engine(kind, params, options);
    for (const ObjectEvent& event : events) engine.Push(event);
    engine.Finish();
    EXPECT_EQ(FullSignatures(engine.results()), serial)
        << MinerKindToString(kind);
  }
}

TEST(StealTest, StealingEngineMatchesSerialByteForByte) {
  // Stealing changes which THREAD mines a delivery, never which MINER — so
  // even with thieves active the output is byte-identical to serial.
  const MiningParams params = Params();
  const std::vector<ObjectEvent> events =
      ZipfEvents(63, 12000, /*vocab=*/50, /*skew=*/1.2, /*streams=*/8);
  const std::vector<FcpSignature> serial =
      SerialEngineSignatures(MinerKind::kCooMine, params, events);
  ASSERT_FALSE(serial.empty());

  ParallelEngineOptions options;
  options.num_workers = 1;
  options.num_miner_shards = 4;
  options.steal = true;
  options.steal_min_depth = 1;  // steal eagerly so the path really runs
  ParallelEngine engine(MinerKind::kCooMine, params, options);
  for (const ObjectEvent& event : events) engine.Push(event);
  engine.Finish();
  EXPECT_EQ(FullSignatures(engine.results()), serial);
}

TEST(StealTest, StealingPlusRebalancingMatchesSerialByteForByte) {
  // Both mechanisms at once: thieves mine under the victim's mutex while
  // migrations flip placements through the same queues.
  const MiningParams params = Params();
  const std::vector<ObjectEvent> events =
      ZipfEvents(64, 10000, /*vocab=*/50, /*skew=*/1.2, /*streams=*/8);
  const std::vector<FcpSignature> serial =
      SerialEngineSignatures(MinerKind::kCooMine, params, events);
  ASSERT_FALSE(serial.empty());

  ParallelEngineOptions options;
  options.num_workers = 1;
  options.num_miner_shards = 4;
  options.steal = true;
  options.steal_min_depth = 1;
  options.rebalance = true;
  options.rebalancer.interval_segments = 64;
  options.rebalancer.imbalance_threshold = 1.0;
  options.rebalancer.min_move_weight = 2;
  ParallelEngine engine(MinerKind::kCooMine, params, options);
  for (const ObjectEvent& event : events) engine.Push(event);
  engine.Finish();
  EXPECT_EQ(FullSignatures(engine.results()), serial);
}

TEST(StealTest, StressManyWorkersSmallQueuesUnderSkew) {
  // The TSan workhorse: multiple workers, tiny shard queues (constant
  // backpressure), eager stealing and live rebalancing all at once. The
  // assertions are liveness + accounting; the value is every data race this
  // run would surface under -fsanitize=thread.
  const MiningParams params = Params();
  const std::vector<ObjectEvent> events =
      ZipfEvents(65, 16000, /*vocab=*/60, /*skew=*/1.2, /*streams=*/12);

  ParallelEngineOptions options;
  options.num_workers = 3;
  options.num_miner_shards = 4;
  options.shard_queue_capacity = 8;
  options.segment_queue_capacity = 16;
  options.event_queue_capacity = 64;
  options.steal = true;
  options.steal_min_depth = 1;
  options.rebalance = true;
  options.rebalancer.interval_segments = 32;
  options.rebalancer.imbalance_threshold = 1.0;
  options.rebalancer.min_move_weight = 2;
  ParallelEngine engine(MinerKind::kCooMine, params, options);
  for (const ObjectEvent& event : events) engine.Push(event);
  engine.Finish();

  EXPECT_EQ(engine.events_pushed(), events.size());
  EXPECT_GT(engine.segments_completed(), 0u);
  EXPECT_FALSE(engine.results().empty());
  // Every routed segment was mined by exactly one thread; backfills are
  // accounted separately from mining.
  uint64_t mined = 0;
  uint64_t backfilled = 0;
  for (uint32_t s = 0; s < options.num_miner_shards; ++s) {
    mined += engine.shard_miner(s).stats().segments_processed;
    backfilled += engine.shard_miner(s).stats().segments_indexed_only;
  }
  EXPECT_EQ(mined, engine.router_stats().deliveries);
  EXPECT_EQ(backfilled, engine.router_stats().backfill_deliveries);
}

}  // namespace
}  // namespace fcp
