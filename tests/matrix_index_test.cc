#include "index/matrix_index.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace fcp {
namespace {

using ::fcp::testing::MakeSegment;

constexpr DurationMs kTau = 1000;

TEST(MatrixIndexTest, PairAndDiagonalLookup) {
  MatrixIndex index;
  index.Insert(MakeSegment(1, 0, {5, 6, 7}, 100));
  index.Insert(MakeSegment(2, 1, {6, 7}, 200));
  // Diagonal = single object.
  EXPECT_EQ(index.ValidSegments(6, 6, 200, kTau),
            (std::vector<SegmentId>{1, 2}));
  EXPECT_EQ(index.ValidSegments(5, 5, 200, kTau),
            (std::vector<SegmentId>{1}));
  // Pairs, in either argument order.
  EXPECT_EQ(index.ValidSegments(6, 7, 200, kTau),
            (std::vector<SegmentId>{1, 2}));
  EXPECT_EQ(index.ValidSegments(7, 6, 200, kTau),
            (std::vector<SegmentId>{1, 2}));
  EXPECT_EQ(index.ValidSegments(5, 7, 200, kTau),
            (std::vector<SegmentId>{1}));
  EXPECT_TRUE(index.ValidSegments(5, 99, 200, kTau).empty());
}

TEST(MatrixIndexTest, QuadraticEntryCount) {
  MatrixIndex index;
  index.Insert(MakeSegment(1, 0, {1, 2, 3, 4}, 0));
  // 4 diagonal + C(4,2)=6 pairs = 10 entries.
  EXPECT_EQ(index.total_entries(), 10u);
  EXPECT_EQ(index.num_cells(), 10u);
}

TEST(MatrixIndexTest, DuplicateObjectsCollapse) {
  MatrixIndex index;
  index.Insert(MakeSegment(1, 0, {5, 5, 6}, 0));
  // Distinct {5,6}: 2 diagonal + 1 pair.
  EXPECT_EQ(index.total_entries(), 3u);
}

TEST(MatrixIndexTest, ValidityAndCompaction) {
  MatrixIndex index;
  index.Insert(MakeSegment(1, 0, {5, 6}, 0));
  index.Insert(MakeSegment(2, 1, {5, 6}, 2000));
  EXPECT_EQ(index.ValidSegments(5, 6, 2000, kTau),
            (std::vector<SegmentId>{2}));
  // The touched cell was compacted; untouched cells still hold stale ids.
  EXPECT_EQ(index.total_entries(), 5u);  // 6 - 1 compacted
}

TEST(MatrixIndexTest, FullSweep) {
  MatrixIndex index;
  index.Insert(MakeSegment(1, 0, {5, 6}, 0));
  index.Insert(MakeSegment(2, 1, {6, 7}, 2000));
  EXPECT_EQ(index.RemoveExpired(2000, kTau), 1u);
  EXPECT_EQ(index.num_segments(), 1u);
  EXPECT_EQ(index.total_entries(), 3u);
  EXPECT_TRUE(index.ValidSegments(5, 5, 2000, kTau).empty());
  EXPECT_EQ(index.ValidSegments(6, 7, 2000, kTau),
            (std::vector<SegmentId>{2}));
}

TEST(MatrixIndexTest, SweepErasesEmptyCells) {
  MatrixIndex index;
  index.Insert(MakeSegment(1, 0, {1, 2, 3}, 0));
  EXPECT_EQ(index.num_cells(), 6u);
  index.RemoveExpired(5000, kTau);
  EXPECT_EQ(index.num_cells(), 0u);
  EXPECT_EQ(index.total_entries(), 0u);
}

TEST(MatrixIndexTest, MemoryComparesAboveDiIndexShape) {
  // Sanity: the matrix of a 6-object segment holds ~C(6,2)+6 entries while
  // an inverted index would hold 6 — memory must reflect that gap.
  MatrixIndex matrix;
  matrix.Insert(MakeSegment(1, 0, {1, 2, 3, 4, 5, 6}, 0));
  EXPECT_EQ(matrix.total_entries(), 21u);
  EXPECT_GT(matrix.MemoryUsage(), 21u * sizeof(SegmentId));
}

TEST(MatrixIndexDeathTest, DuplicateIdAborts) {
  MatrixIndex index;
  index.Insert(MakeSegment(1, 0, {5}, 0));
  EXPECT_DEATH(index.Insert(MakeSegment(1, 0, {6}, 0)), "FCP_CHECK");
}

}  // namespace
}  // namespace fcp
