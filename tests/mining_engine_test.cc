#include "core/mining_engine.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace fcp {
namespace {

using ::fcp::testing::MakeSegment;
using ::fcp::testing::PatternsOf;

MiningParams SmallParams() {
  MiningParams params;
  params.xi = Seconds(10);
  params.tau = Minutes(5);
  params.theta = 2;
  params.max_pattern_size = 3;
  return params;
}

TEST(MiningEngineTest, EndToEndEventsToFcps) {
  MiningEngine engine(MinerKind::kCooMine, SmallParams());
  // Two streams each seeing objects {7, 8} close together; segments complete
  // when a later far-away event arrives.
  std::vector<Fcp> all;
  auto push = [&](StreamId s, ObjectId o, Timestamp t) {
    for (Fcp& fcp : engine.PushEvent({s, o, t})) all.push_back(std::move(fcp));
  };
  push(0, 7, 1000);
  push(0, 8, 2000);
  push(1, 7, 3000);
  push(1, 8, 4000);
  EXPECT_TRUE(all.empty());  // windows still open
  push(0, 9, Minutes(1));    // closes stream 0's window
  push(1, 9, Minutes(1));    // closes stream 1's window -> patterns complete
  EXPECT_EQ(PatternsOf(all), (std::set<Pattern>{{7}, {8}, {7, 8}}));
  EXPECT_EQ(engine.segments_completed(), 2u);
}

TEST(MiningEngineTest, FlushClosesTrailingWindows) {
  MiningEngine engine(MinerKind::kCooMine, SmallParams());
  engine.PushEvent({0, 7, 1000});
  engine.PushEvent({1, 7, 2000});
  std::vector<Fcp> flushed = engine.Flush();
  EXPECT_EQ(PatternsOf(flushed), (std::set<Pattern>{{7}}));
  EXPECT_EQ(engine.segments_completed(), 2u);
}

TEST(MiningEngineTest, DirectSegmentPush) {
  MiningEngine engine(MinerKind::kDiMine, SmallParams());
  const SegmentId id1 = engine.AllocateSegmentId();
  const SegmentId id2 = engine.AllocateSegmentId();
  std::vector<Fcp> out1 = engine.PushSegment(MakeSegment(id1, 0, {1, 2}, 100));
  EXPECT_TRUE(out1.empty());
  std::vector<Fcp> out2 = engine.PushSegment(MakeSegment(id2, 1, {1, 2}, 200));
  EXPECT_EQ(PatternsOf(out2), (std::set<Pattern>{{1}, {2}, {1, 2}}));
}

TEST(MiningEngineTest, SuppressionWindowDeduplicates) {
  EngineOptions options;
  options.suppression_window = Minutes(10);
  MiningEngine engine(MinerKind::kCooMine, SmallParams(), options);
  SegmentId ids[4] = {engine.AllocateSegmentId(), engine.AllocateSegmentId(),
                      engine.AllocateSegmentId(), engine.AllocateSegmentId()};
  engine.PushSegment(MakeSegment(ids[0], 0, {5}, 100));
  auto first = engine.PushSegment(MakeSegment(ids[1], 1, {5}, 200));
  EXPECT_EQ(first.size(), 1u);
  // Re-discovered by a third stream soon after: suppressed.
  auto second = engine.PushSegment(MakeSegment(ids[2], 2, {5}, 300));
  EXPECT_TRUE(second.empty());
  EXPECT_EQ(engine.collector().total_suppressed(), 1u);
}

TEST(MiningEngineTest, WorksWithEveryMinerKind) {
  for (MinerKind kind : {MinerKind::kCooMine, MinerKind::kDiMine,
                         MinerKind::kMatrixMine, MinerKind::kBruteForce}) {
    MiningEngine engine(kind, SmallParams());
    engine.PushEvent({0, 1, 100});
    engine.PushEvent({1, 1, 200});
    auto fcps = engine.Flush();
    EXPECT_EQ(PatternsOf(fcps), (std::set<Pattern>{{1}}))
        << MinerKindToString(kind);
  }
}

TEST(MiningEngineTest, MemoryUsageExposed) {
  MiningEngine engine(MinerKind::kCooMine, SmallParams());
  engine.PushEvent({0, 1, 100});
  EXPECT_GT(engine.MemoryUsage(), 0u);
}

}  // namespace
}  // namespace fcp
