#include "core/mining_engine.h"

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace fcp {
namespace {

using ::fcp::testing::MakeSegment;
using ::fcp::testing::PatternsOf;

MiningParams SmallParams() {
  MiningParams params;
  params.xi = Seconds(10);
  params.tau = Minutes(5);
  params.theta = 2;
  params.max_pattern_size = 3;
  return params;
}

TEST(MiningEngineTest, EndToEndEventsToFcps) {
  MiningEngine engine(MinerKind::kCooMine, SmallParams());
  // Two streams each seeing objects {7, 8} close together; segments complete
  // when a later far-away event arrives.
  std::vector<Fcp> all;
  auto push = [&](StreamId s, ObjectId o, Timestamp t) {
    for (Fcp& fcp : engine.PushEvent({s, o, t})) all.push_back(std::move(fcp));
  };
  push(0, 7, 1000);
  push(0, 8, 2000);
  push(1, 7, 3000);
  push(1, 8, 4000);
  EXPECT_TRUE(all.empty());  // windows still open
  push(0, 9, Minutes(1));    // closes stream 0's window
  push(1, 9, Minutes(1));    // closes stream 1's window -> patterns complete
  EXPECT_EQ(PatternsOf(all), (std::set<Pattern>{{7}, {8}, {7, 8}}));
  EXPECT_EQ(engine.segments_completed(), 2u);
}

TEST(MiningEngineTest, FlushClosesTrailingWindows) {
  MiningEngine engine(MinerKind::kCooMine, SmallParams());
  engine.PushEvent({0, 7, 1000});
  engine.PushEvent({1, 7, 2000});
  std::vector<Fcp> flushed = engine.Flush();
  EXPECT_EQ(PatternsOf(flushed), (std::set<Pattern>{{7}}));
  EXPECT_EQ(engine.segments_completed(), 2u);
}

TEST(MiningEngineTest, DirectSegmentPush) {
  MiningEngine engine(MinerKind::kDiMine, SmallParams());
  const SegmentId id1 = engine.AllocateSegmentId();
  const SegmentId id2 = engine.AllocateSegmentId();
  std::vector<Fcp> out1 = engine.PushSegment(MakeSegment(id1, 0, {1, 2}, 100));
  EXPECT_TRUE(out1.empty());
  std::vector<Fcp> out2 = engine.PushSegment(MakeSegment(id2, 1, {1, 2}, 200));
  EXPECT_EQ(PatternsOf(out2), (std::set<Pattern>{{1}, {2}, {1, 2}}));
}

// A small multi-stream workload with same-stream runs, enough events to
// complete segments and fire FCPs.
std::vector<ObjectEvent> BatchWorkload() {
  std::vector<ObjectEvent> events;
  Timestamp time = 0;
  for (int round = 0; round < 60; ++round) {
    const StreamId stream = static_cast<StreamId>(round % 4);
    for (int k = 0; k < 3; ++k) {
      time += 900;
      events.push_back(
          {stream, static_cast<ObjectId>(7 + (round + k) % 5), time});
    }
  }
  return events;
}

uint64_t CounterValue(const std::vector<telemetry::MetricSample>& samples,
                      const std::string& name) {
  for (const telemetry::MetricSample& sample : samples) {
    if (sample.name == name) return sample.counter_value;
  }
  ADD_FAILURE() << "metric not found: " << name;
  return 0;
}

TEST(MiningEngineTest, IngestBatchMatchesPerEventPush) {
  const std::vector<ObjectEvent> events = BatchWorkload();
  for (size_t batch : {size_t{1}, size_t{7}, size_t{64}, events.size()}) {
    MiningEngine per_event(MinerKind::kCooMine, SmallParams());
    std::vector<Fcp> expected;
    for (const ObjectEvent& event : events) {
      for (Fcp& fcp : per_event.PushEvent(event)) {
        expected.push_back(std::move(fcp));
      }
    }
    for (Fcp& fcp : per_event.Flush()) expected.push_back(std::move(fcp));

    MiningEngine batched(MinerKind::kCooMine, SmallParams());
    std::vector<Fcp> got;
    for (size_t i = 0; i < events.size(); i += batch) {
      const size_t n = std::min(batch, events.size() - i);
      for (Fcp& fcp : batched.IngestBatch(std::span(events.data() + i, n))) {
        got.push_back(std::move(fcp));
      }
    }
    for (Fcp& fcp : batched.Flush()) got.push_back(std::move(fcp));

    EXPECT_EQ(testing::FullSignatures(got), testing::FullSignatures(expected))
        << "batch=" << batch;
    EXPECT_EQ(batched.segments_completed(), per_event.segments_completed())
        << "batch=" << batch;

    // Per-batch counter deltas must land on the same totals as per-event
    // increments.
    const auto expected_metrics = per_event.SnapshotMetrics();
    const auto got_metrics = batched.SnapshotMetrics();
    for (const char* counter :
         {"fcp_events_ingested_total", "fcp_segments_completed_total",
          "fcp_fcps_accepted_total"}) {
      EXPECT_EQ(CounterValue(got_metrics, counter),
                CounterValue(expected_metrics, counter))
          << counter << " batch=" << batch;
    }
  }
}

TEST(MiningEngineTest, EmptyIngestBatchIsANoOp) {
  MiningEngine engine(MinerKind::kCooMine, SmallParams());
  EXPECT_TRUE(engine.IngestBatch({}).empty());
  EXPECT_EQ(engine.segments_completed(), 0u);
  EXPECT_EQ(CounterValue(engine.SnapshotMetrics(),
                         "fcp_events_ingested_total"),
            0u);
}

TEST(MiningEngineTest, SuppressionWindowDeduplicates) {
  EngineOptions options;
  options.suppression_window = Minutes(10);
  MiningEngine engine(MinerKind::kCooMine, SmallParams(), options);
  SegmentId ids[4] = {engine.AllocateSegmentId(), engine.AllocateSegmentId(),
                      engine.AllocateSegmentId(), engine.AllocateSegmentId()};
  engine.PushSegment(MakeSegment(ids[0], 0, {5}, 100));
  auto first = engine.PushSegment(MakeSegment(ids[1], 1, {5}, 200));
  EXPECT_EQ(first.size(), 1u);
  // Re-discovered by a third stream soon after: suppressed.
  auto second = engine.PushSegment(MakeSegment(ids[2], 2, {5}, 300));
  EXPECT_TRUE(second.empty());
  EXPECT_EQ(engine.collector().total_suppressed(), 1u);
}

TEST(MiningEngineTest, WorksWithEveryMinerKind) {
  for (MinerKind kind : {MinerKind::kCooMine, MinerKind::kDiMine,
                         MinerKind::kMatrixMine, MinerKind::kBruteForce}) {
    MiningEngine engine(kind, SmallParams());
    engine.PushEvent({0, 1, 100});
    engine.PushEvent({1, 1, 200});
    auto fcps = engine.Flush();
    EXPECT_EQ(PatternsOf(fcps), (std::set<Pattern>{{1}}))
        << MinerKindToString(kind);
  }
}

TEST(MiningEngineTest, MemoryUsageExposed) {
  MiningEngine engine(MinerKind::kCooMine, SmallParams());
  engine.PushEvent({0, 1, 100});
  EXPECT_GT(engine.MemoryUsage(), 0u);
}

}  // namespace
}  // namespace fcp
