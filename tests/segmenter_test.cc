#include "stream/segmenter.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fcp {
namespace {

// Feeds (object, time) pairs and returns all segments incl. the flush.
// Copies out of the pool-backed refs so the local pool can die (checked:
// each segment's cached distinct-object set matches the reference recompute).
std::vector<Segment> SegmentAll(
    DurationMs xi, const std::vector<std::pair<ObjectId, Timestamp>>& events) {
  SegmentIdGen ids;
  SegmentPool pool;
  Segmenter segmenter(/*stream=*/0, xi, &ids, &pool);
  std::vector<SegmentRef> out;
  for (const auto& [o, t] : events) segmenter.Push(o, t, &out);
  segmenter.Flush(&out);
  std::vector<Segment> segments;
  segments.reserve(out.size());
  for (const SegmentRef& ref : out) {
    EXPECT_EQ(ref->distinct_objects(), ref->DistinctObjects());
    segments.push_back(*ref);
  }
  out.clear();  // release refs before the pool goes out of scope
  return segments;
}

std::vector<std::vector<ObjectId>> ObjectSeqs(const std::vector<Segment>& gs) {
  std::vector<std::vector<ObjectId>> seqs;
  for (const Segment& g : gs) {
    std::vector<ObjectId> seq;
    for (const SegmentEntry& e : g.entries()) seq.push_back(e.object);
    seqs.push_back(seq);
  }
  return seqs;
}

// Brute-force enumeration of maximal windows (Definition 5).
std::vector<std::vector<ObjectId>> BruteForceSegments(
    DurationMs xi, const std::vector<std::pair<ObjectId, Timestamp>>& events) {
  std::vector<std::vector<ObjectId>> result;
  const size_t n = events.size();
  for (size_t l = 0; l < n; ++l) {
    size_t r = l;
    while (r + 1 < n && events[r + 1].second - events[l].second <= xi) ++r;
    // Window [l, r] is maximal iff it is not contained in the window of l-1.
    const bool left_maximal =
        (l == 0) || (events[r].second - events[l - 1].second > xi);
    if (left_maximal) {
      std::vector<ObjectId> seq;
      for (size_t i = l; i <= r; ++i) seq.push_back(events[i].first);
      result.push_back(seq);
    }
  }
  return result;
}

TEST(SegmenterTest, PaperFigure1Example) {
  // Fig. 1 temporal relations with xi = 10:
  // td-ta < xi, tg-ta > xi, tg-td < xi, tg-tc > xi, te-td < xi, tb-td > xi.
  constexpr ObjectId a = 1, c = 2, d = 3, g = 4, e = 5, b = 6;
  const std::vector<std::pair<ObjectId, Timestamp>> events = {
      {a, 0}, {c, 4}, {d, 8}, {g, 15}, {e, 17}, {b, 19}};
  const auto seqs = ObjectSeqs(SegmentAll(10, events));
  ASSERT_EQ(seqs.size(), 3u);
  EXPECT_EQ(seqs[0], std::vector<ObjectId>({a, c, d}));   // G0 per the paper
  EXPECT_EQ(seqs[1], std::vector<ObjectId>({d, g, e}));
  EXPECT_EQ(seqs[2], std::vector<ObjectId>({g, e, b}));
}

TEST(SegmenterTest, SingleEventSingleSegment) {
  const auto segments = SegmentAll(10, {{7, 100}});
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].length(), 1u);
  EXPECT_EQ(segments[0].start_time(), 100);
}

TEST(SegmenterTest, AllWithinXiIsOneSegment) {
  const auto segments = SegmentAll(100, {{1, 0}, {2, 30}, {3, 60}, {4, 100}});
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].length(), 4u);
}

TEST(SegmenterTest, LargeGapsGiveSingletons) {
  const auto segments = SegmentAll(10, {{1, 0}, {2, 100}, {3, 200}});
  ASSERT_EQ(segments.size(), 3u);
  for (const Segment& g : segments) EXPECT_EQ(g.length(), 1u);
}

TEST(SegmenterTest, OverlappingSegmentsShareEvents) {
  // 0,5,10,15 with xi=10: windows [0,10], [5,15] overlap in {5,10}.
  const auto seqs =
      ObjectSeqs(SegmentAll(10, {{1, 0}, {2, 5}, {3, 10}, {4, 15}}));
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0], std::vector<ObjectId>({1, 2, 3}));
  EXPECT_EQ(seqs[1], std::vector<ObjectId>({2, 3, 4}));
}

TEST(SegmenterTest, EqualTimestampsStayTogether) {
  const auto segments =
      SegmentAll(10, {{1, 5}, {2, 5}, {3, 5}, {4, 5}, {5, 5}});
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].length(), 5u);
  EXPECT_EQ(segments[0].span(), 0);
}

TEST(SegmenterTest, BoundaryExactlyXiIncluded) {
  // Span exactly xi is allowed (<=).
  const auto segments = SegmentAll(10, {{1, 0}, {2, 10}, {3, 21}});
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].length(), 2u);  // {1,2}: span 10 == xi
  EXPECT_EQ(segments[1].length(), 1u);
}

TEST(SegmenterTest, SegmentIdsAreUniqueAndIncreasing) {
  SegmentIdGen ids;
  SegmentPool pool;
  Segmenter s0(0, 10, &ids, &pool);
  Segmenter s1(1, 10, &ids, &pool);
  std::vector<SegmentRef> out;
  s0.Push(1, 0, &out);
  s0.Push(2, 100, &out);  // completes one segment in stream 0
  s1.Push(3, 0, &out);
  s1.Push(4, 100, &out);  // completes one segment in stream 1
  s0.Flush(&out);
  s1.Flush(&out);
  ASSERT_EQ(out.size(), 4u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1]->id(), out[i]->id());
  }
}

TEST(SegmenterTest, OutOfOrderEventsClampedAndCounted) {
  SegmentIdGen ids;
  SegmentPool pool;
  Segmenter segmenter(0, 10, &ids, &pool);
  std::vector<SegmentRef> out;
  segmenter.Push(1, 100, &out);
  segmenter.Push(2, 90, &out);  // out of order: clamped to 100
  EXPECT_EQ(segmenter.reordered_count(), 1u);
  segmenter.Flush(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->entries()[1].time, 100);
}

TEST(SegmenterTest, FlushResetsForReuse) {
  SegmentIdGen ids;
  SegmentPool pool;
  Segmenter segmenter(0, 10, &ids, &pool);
  std::vector<SegmentRef> out;
  segmenter.Push(1, 100, &out);
  segmenter.Flush(&out);
  EXPECT_EQ(segmenter.pending_size(), 0u);
  // Timestamps may restart lower after a flush without being "reordered".
  segmenter.Push(2, 5, &out);
  segmenter.Flush(&out);
  EXPECT_EQ(segmenter.reordered_count(), 0u);
  ASSERT_EQ(out.size(), 2u);
}

TEST(SegmenterTest, EveryEventCoveredBySomeSegment) {
  Rng rng(99);
  std::vector<std::pair<ObjectId, Timestamp>> events;
  Timestamp t = 0;
  for (int i = 0; i < 500; ++i) {
    t += rng.Range(0, 30);
    events.push_back({static_cast<ObjectId>(rng.Below(50)), t});
  }
  const auto segments = SegmentAll(20, events);
  size_t covered = 0;
  for (const Segment& g : segments) covered += g.length();
  EXPECT_GE(covered, events.size());  // overlap means >= is expected
  for (const Segment& g : segments) EXPECT_LE(g.span(), 20);
}

// Property sweep: segmenter output == brute-force maximal windows, across
// xi values and random traces.
class SegmenterPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SegmenterPropertyTest, MatchesBruteForce) {
  const int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  const DurationMs xi = 1 + static_cast<DurationMs>(rng.Below(40));
  std::vector<std::pair<ObjectId, Timestamp>> events;
  Timestamp t = 0;
  const int n = 1 + static_cast<int>(rng.Below(300));
  for (int i = 0; i < n; ++i) {
    t += rng.Range(0, 25);
    events.push_back({static_cast<ObjectId>(rng.Below(20)), t});
  }
  EXPECT_EQ(ObjectSeqs(SegmentAll(xi, events)),
            BruteForceSegments(xi, events))
      << "xi=" << xi << " n=" << n << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomTraces, SegmenterPropertyTest,
                         ::testing::Range(0, 50));

}  // namespace
}  // namespace fcp
