// Lifetime and recycling semantics of the refcounted segment fabric:
// SegmentRef copy/move/reset refcounting, the size-classed SegmentPool
// (hit/miss/recycle accounting, capacity retention across reuse), and the
// release-exactly-once guarantee under multicast + migration backfill churn
// with concurrent shard consumers.

#include "stream/segment_ref.h"

#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/placement.h"
#include "stream/shard_router.h"
#include "test_util.h"

namespace fcp {
namespace {

using testing::MakeSegment;

TEST(SegmentRefTest, AdoptCopyMoveResetRefcounts) {
  SegmentRef a = SegmentRef::Adopt(MakeSegment(1, 0, {1, 2, 3}, 10));
  ASSERT_TRUE(a);
  EXPECT_EQ(a.use_count(), 1u);
  EXPECT_TRUE(a.unique());
  EXPECT_EQ(a->id(), 1u);
  EXPECT_EQ((*a).length(), 3u);

  SegmentRef b = a;  // copy = incref, same slab
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_FALSE(a.unique());

  SegmentRef c = std::move(b);  // move = transfer, no count change
  EXPECT_FALSE(b);
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_EQ(c.get(), a.get());

  c.reset();
  EXPECT_EQ(a.use_count(), 1u);
  a.reset();
  EXPECT_FALSE(a);
  a.reset();  // idempotent on null
}

TEST(SegmentRefTest, RelabelRenamesUniqueRefInPlace) {
  SegmentRef a = SegmentRef::Adopt(MakeSegment(7, 2, {4, 9}, 50));
  const Segment* slab = a.get();
  a.RelabelId(123);
  EXPECT_EQ(a->id(), 123u);
  EXPECT_EQ(a.get(), slab);  // no copy: same storage, new name
  EXPECT_EQ(a->stream(), 2u);
  EXPECT_EQ(a->length(), 2u);
}

TEST(SegmentRefDeathTest, RelabelSharedRefAborts) {
  SegmentRef a = SegmentRef::Adopt(MakeSegment(1, 0, {1}, 5));
  SegmentRef b = a;
  EXPECT_DEATH(a.RelabelId(9), "FCP_CHECK");
}

TEST(SegmentPoolTest, MakePopulatesSegmentAndDistinctCache) {
  SegmentPool pool;
  const std::vector<SegmentEntry> entries = {
      {5, 10}, {3, 11}, {5, 12}, {1, 14}};
  const SegmentRef ref = pool.Make(42, 3, entries);
  EXPECT_EQ(ref->id(), 42u);
  EXPECT_EQ(ref->stream(), 3u);
  EXPECT_EQ(ref->entries(), entries);
  EXPECT_EQ(ref->distinct_objects(), ref->DistinctObjects());
  EXPECT_EQ(ref->distinct_objects(), std::vector<ObjectId>({1, 3, 5}));
}

TEST(SegmentPoolTest, MakeWithTailSpanConcatenates) {
  // The segmenter emits ring-buffer halves; Make must stitch them in order.
  SegmentPool pool;
  const std::vector<SegmentEntry> head = {{1, 10}, {2, 11}};
  const std::vector<SegmentEntry> tail = {{3, 12}};
  const SegmentRef ref = pool.Make(1, 0, head, tail);
  ASSERT_EQ(ref->length(), 3u);
  EXPECT_EQ(ref->entries()[0].object, 1u);
  EXPECT_EQ(ref->entries()[2].object, 3u);
  EXPECT_EQ(ref->start_time(), 10);
  EXPECT_EQ(ref->end_time(), 12);
}

TEST(SegmentPoolTest, ReleasedSlabIsRecycledBySizeClass) {
  SegmentPool pool;
  const std::vector<SegmentEntry> entries = {{1, 10}, {2, 11}, {3, 12}};
  {
    const SegmentRef a = pool.Make(1, 0, entries);
    EXPECT_EQ(pool.stats().slab_allocs, 1u);
    EXPECT_EQ(pool.stats().live, 1u);
    EXPECT_EQ(pool.stats().free, 0u);
  }
  // Last ref dropped: slab parked, capacity intact.
  EXPECT_EQ(pool.stats().live, 0u);
  EXPECT_EQ(pool.stats().free, 1u);
  EXPECT_EQ(pool.stats().recycled, 1u);
  EXPECT_GT(pool.stats().recycled_bytes, 0u);

  const SegmentRef b = pool.Make(2, 1, entries);
  EXPECT_EQ(pool.stats().pool_hits, 1u);
  EXPECT_EQ(pool.stats().slab_allocs, 1u);  // no fresh allocation
  EXPECT_EQ(pool.stats().live, 1u);
  EXPECT_EQ(pool.stats().free, 0u);
  EXPECT_EQ(b->id(), 2u);
  EXPECT_EQ(b->stream(), 1u);
  EXPECT_EQ(b->entries(), entries);
}

TEST(SegmentPoolTest, DistinctSizeClassesDoNotShareSlabs) {
  SegmentPool pool;
  std::vector<SegmentEntry> small = {{1, 0}, {2, 1}};
  std::vector<SegmentEntry> large;
  for (int i = 0; i < 300; ++i) {
    large.push_back({static_cast<ObjectId>(i), static_cast<Timestamp>(i)});
  }
  pool.Make(1, 0, small).reset();
  // A 300-entry segment must not reuse the tiny parked slab.
  const SegmentRef big = pool.Make(2, 0, large);
  EXPECT_EQ(pool.stats().pool_hits, 0u);
  EXPECT_EQ(pool.stats().slab_allocs, 2u);
  EXPECT_EQ(big->length(), 300u);
}

TEST(SegmentPoolTest, MaxFreePerClassBoundsParkedSlabs) {
  SegmentPool pool(/*max_free_per_class=*/2);
  const std::vector<SegmentEntry> entries = {{1, 0}};
  {
    std::vector<SegmentRef> refs;
    for (int i = 0; i < 5; ++i) refs.push_back(pool.Make(i + 1, 0, entries));
  }
  // 5 released, only 2 parked; the rest were freed outright.
  EXPECT_EQ(pool.stats().live, 0u);
  EXPECT_EQ(pool.stats().free, 2u);
  EXPECT_EQ(pool.stats().recycled, 2u);
}

// The acceptance guarantee of the zero-copy fabric: one slab per segment,
// shared by every delivery (multicast fan-out AND migration backfill),
// released back to the pool exactly once — no leak, no double release, no
// use-after-release — while consumers read concurrently and placements
// change under fire. ASan/TSan CI legs run this same test to catch lifetime
// races the assertions cannot see.
TEST(SegmentPoolTest, ReleaseExactlyOncePerSlabUnderMigrationFire) {
  constexpr uint32_t kShards = 4;
  constexpr int kRounds = 50;
  constexpr int kSegmentsPerRound = 20;
  constexpr ObjectId kVocab = 64;
  SegmentPool pool;
  {
    ShardRouterOptions options;
    options.track_live = true;  // live set holds refs for backfill
    options.tau = Minutes(10);  // everything stays live -> real backfills
    ShardRouter router(kShards, /*queue_capacity=*/1024, std::move(options));

    std::atomic<uint64_t> consumed{0};
    std::atomic<bool> corrupt{false};
    std::vector<std::thread> consumers;
    for (uint32_t s = 0; s < kShards; ++s) {
      consumers.emplace_back([&router, &consumed, &corrupt, s] {
        while (auto delivery = router.queue(s).Pop()) {
          // Read through the held ref: a premature release would recycle
          // the slab mid-read (data race under TSan, poisoned under ASan).
          const Segment& segment = *delivery->segment;
          if (segment.length() == 0 || segment.distinct_objects().empty() ||
              segment.distinct_objects() != segment.DistinctObjects()) {
            corrupt.store(true, std::memory_order_relaxed);
          }
          consumed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }

    SegmentId next_id = 1;
    Timestamp now = 0;
    std::shared_ptr<const PlacementMap> placement =
        std::make_shared<const PlacementMap>(kShards);
    std::vector<SegmentEntry> entries;
    for (int round = 0; round < kRounds; ++round) {
      for (int k = 0; k < kSegmentsPerRound; ++k) {
        entries.clear();
        const int width = 1 + (k % 5);
        for (int o = 0; o < width; ++o) {
          entries.push_back(SegmentEntry{
              static_cast<ObjectId>((k * 7 + o) % kVocab), now});
        }
        now += 5;
        router.Route(pool.Make(next_id++, 0, entries));
      }
      // Migrate a hot object mid-flight: ApplyPlacement re-delivers live
      // slabs (index-only backfill) — more refs on the same allocations.
      const std::vector<std::pair<ObjectId, uint32_t>> moves = {
          {static_cast<ObjectId>(round % kVocab),
           static_cast<uint32_t>(round % kShards)}};
      placement = placement->WithMoves(moves);
      router.ApplyPlacement(placement);
    }
    router.Close();
    for (std::thread& t : consumers) t.join();
    EXPECT_FALSE(corrupt.load());
    EXPECT_GT(consumed.load(),
              static_cast<uint64_t>(kRounds * kSegmentsPerRound));
  }  // router destroyed -> live-set refs dropped
  const SegmentPoolStats stats = pool.stats();
  EXPECT_EQ(stats.live, 0u)
      << "a slab leaked (never released) or was double-released";
  // Exactly one Make per routed segment, whatever the delivery fan-out was.
  EXPECT_EQ(stats.pool_hits + stats.slab_allocs,
            static_cast<uint64_t>(kRounds * kSegmentsPerRound));
}

}  // namespace
}  // namespace fcp
