#include "telemetry/metric.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/registry.h"
#include "telemetry/reporter.h"

namespace fcp::telemetry {
namespace {

TEST(TelemetryTest, CounterIncrements) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(TelemetryTest, GaugeSetAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Set(-5);
  EXPECT_EQ(g.Value(), -5);
}

TEST(TelemetryTest, CounterConcurrentIncrements) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), 40000u);
}

TEST(TelemetryHistogramTest, BucketOfIsBitWidth) {
  EXPECT_EQ(LatencyHistogram::BucketOf(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketOf(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketOf(2), 2u);
  EXPECT_EQ(LatencyHistogram::BucketOf(3), 2u);
  EXPECT_EQ(LatencyHistogram::BucketOf(4), 3u);
  EXPECT_EQ(LatencyHistogram::BucketOf(1023), 10u);
  EXPECT_EQ(LatencyHistogram::BucketOf(1024), 11u);
  EXPECT_EQ(LatencyHistogram::BucketOf(~uint64_t{0}), 64u);
}

TEST(TelemetryHistogramTest, BucketUpperBoundCoversBucket) {
  // Bucket b holds values v with bit_width(v) == b; its upper bound must be
  // the largest such v.
  for (size_t b = 0; b < HistogramSnapshot::kNumBuckets; ++b) {
    const uint64_t ub = HistogramSnapshot::BucketUpperBound(b);
    EXPECT_EQ(LatencyHistogram::BucketOf(ub), b);
    if (ub != ~uint64_t{0}) {
      EXPECT_EQ(LatencyHistogram::BucketOf(ub + 1), b + 1);
    }
  }
}

TEST(TelemetryHistogramTest, EmptySnapshot) {
  LatencyHistogram h;
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.total, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.Percentile(50), 0.0);
  EXPECT_EQ(snap.Mean(), 0.0);
}

TEST(TelemetryHistogramTest, SingleSample) {
  LatencyHistogram h;
  h.Record(100);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.total, 1u);
  EXPECT_EQ(snap.sum, 100u);
  // 100 lands in bucket 7 ([64, 128)); every percentile reports its upper
  // bound 127 — within the 2x relative error contract.
  EXPECT_EQ(snap.Percentile(0), 127.0);
  EXPECT_EQ(snap.Percentile(99), 127.0);
  EXPECT_EQ(snap.Mean(), 100.0);
}

TEST(TelemetryHistogramTest, PercentilesOnKnownDistribution) {
  LatencyHistogram h;
  // 90 values of 1 (bucket 1, ub 1) and 10 of 1000 (bucket 10, ub 1023).
  for (int i = 0; i < 90; ++i) h.Record(1);
  for (int i = 0; i < 10; ++i) h.Record(1000);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.total, 100u);
  EXPECT_EQ(snap.Percentile(50), 1.0);
  EXPECT_EQ(snap.Percentile(89), 1.0);
  EXPECT_EQ(snap.Percentile(99), 1023.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), (90.0 * 1 + 10.0 * 1000) / 100.0);
}

TEST(TelemetryHistogramTest, MergeAccumulates) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Record(1);
  a.Record(1);
  b.Record(1000);
  HistogramSnapshot snap = a.Snapshot();
  snap.Merge(b.Snapshot());
  EXPECT_EQ(snap.total, 3u);
  EXPECT_EQ(snap.sum, 1002u);
  EXPECT_EQ(snap.Percentile(50), 1.0);
  EXPECT_EQ(snap.Percentile(100), 1023.0);
}

TEST(TelemetryTest, RegistryReturnsStablePointers) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("fcp_a_total");
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("fcp_pad_" + std::to_string(i) + "_total");
  }
  EXPECT_EQ(registry.GetCounter("fcp_a_total"), a);
  a->Increment(7);
  EXPECT_EQ(registry.size(), 101u);
  const std::vector<MetricSample> samples = registry.Snapshot();
  EXPECT_EQ(samples.size(), 101u);
  EXPECT_EQ(samples[0].name, "fcp_a_total");
  EXPECT_EQ(samples[0].counter_value, 7u);
}

TEST(TelemetryTest, RegistryConcurrentRegistrationAndSnapshot) {
  MetricRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 200; ++i) {
        Counter* c = registry.GetCounter(
            "fcp_t" + std::to_string(t % 2) + "_" + std::to_string(i) +
            "_total");
        c->Increment();
        registry.Snapshot();
      }
    });
  }
  for (auto& t : threads) t.join();
  // 2 name groups x 200 names; each name incremented once by 2 threads.
  EXPECT_EQ(registry.size(), 400u);
  uint64_t total = 0;
  for (const MetricSample& s : registry.Snapshot()) total += s.counter_value;
  EXPECT_EQ(total, 800u);
}

TEST(TelemetryTest, RegistryTypeMismatchAborts) {
  MetricRegistry registry;
  registry.GetCounter("fcp_x_total");
  EXPECT_DEATH(registry.GetGauge("fcp_x_total"), "FCP_CHECK");
}

TEST(TelemetrySerializerTest, JsonParsesAndEscapes) {
  MetricRegistry registry;
  registry.GetCounter("fcp_events_total")->Increment(5);
  registry.GetGauge("fcp_depth")->Set(-2);
  registry.GetCounter("fcp_routed_total{shard=\"0\"}")->Increment(3);
  registry.GetHistogram("fcp_lat_us")->Record(10);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"fcp_events_total\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"fcp_depth\": -2"), std::string::npos);
  // The label block's quotes must be escaped in the JSON key.
  EXPECT_NE(json.find("fcp_routed_total{shard=\\\"0\\\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST(TelemetrySerializerTest, PrometheusTextExposition) {
  MetricRegistry registry;
  registry.GetCounter("fcp_events_total")->Increment(12);
  registry.GetGauge("fcp_queue_depth")->Set(4);
  registry.GetCounter("fcp_routed_total{shard=\"0\"}")->Increment(7);
  registry.GetCounter("fcp_routed_total{shard=\"1\"}")->Increment(9);
  LatencyHistogram* h = registry.GetHistogram("fcp_lat_us");
  h->Record(1);
  h->Record(1);
  h->Record(100);
  const std::string prom = registry.ToPrometheus();

  // Typed family headers, one per family (label variants share one).
  EXPECT_NE(prom.find("# TYPE fcp_events_total counter\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE fcp_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE fcp_routed_total counter\n"),
            std::string::npos);
  EXPECT_EQ(prom.find("# TYPE fcp_routed_total counter",
                      prom.find("# TYPE fcp_routed_total counter") + 1),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE fcp_lat_us histogram\n"), std::string::npos);

  // Sample lines.
  EXPECT_NE(prom.find("fcp_events_total 12\n"), std::string::npos);
  EXPECT_NE(prom.find("fcp_queue_depth 4\n"), std::string::npos);
  EXPECT_NE(prom.find("fcp_routed_total{shard=\"0\"} 7\n"),
            std::string::npos);
  EXPECT_NE(prom.find("fcp_routed_total{shard=\"1\"} 9\n"),
            std::string::npos);

  // Histogram expansion: cumulative buckets, +Inf == _count, and _sum.
  EXPECT_NE(prom.find("fcp_lat_us_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(prom.find("fcp_lat_us_bucket{le=\"127\"} 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("fcp_lat_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("fcp_lat_us_sum 102\n"), std::string::npos);
  EXPECT_NE(prom.find("fcp_lat_us_count 3\n"), std::string::npos);

  // Counters are monotone: a second snapshot after more increments never
  // shows a smaller value.
  registry.GetCounter("fcp_events_total")->Increment();
  EXPECT_NE(registry.ToPrometheus().find("fcp_events_total 13\n"),
            std::string::npos);
}

TEST(TelemetrySerializerTest, HistogramBucketsAreCumulative) {
  MetricRegistry registry;
  LatencyHistogram* h = registry.GetHistogram("fcp_lat_us");
  for (int i = 0; i < 5; ++i) h->Record(1);    // bucket 1
  for (int i = 0; i < 3; ++i) h->Record(2);    // bucket 2
  for (int i = 0; i < 2; ++i) h->Record(100);  // bucket 7
  const std::string prom = registry.ToPrometheus();
  EXPECT_NE(prom.find("fcp_lat_us_bucket{le=\"1\"} 5\n"), std::string::npos);
  EXPECT_NE(prom.find("fcp_lat_us_bucket{le=\"3\"} 8\n"), std::string::npos);
  EXPECT_NE(prom.find("fcp_lat_us_bucket{le=\"127\"} 10\n"),
            std::string::npos);
}

TEST(TelemetrySerializerTest, LabelValueEscaping) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("a\nb"), "a\\nb");
  EXPECT_EQ(EscapeLabelValue("\\\"\n"), "\\\\\\\"\\n");
  EXPECT_EQ(FormatLabel("path", "C:\\tmp"), "path=\"C:\\\\tmp\"");
}

TEST(TelemetrySerializerTest, EscapedLabelValuesSurvivePrometheusAndJson) {
  // A label value carrying a quote, a backslash and a newline must round
  // out of both serializers as one valid line / one valid JSON document
  // (the 0.0.4 text format escapes exactly those three characters).
  MetricRegistry registry;
  const std::string label = FormatLabel("source", "say \"hi\"\\\n");
  registry.GetCounter("fcp_tagged_total{" + label + "}")->Increment(2);

  const std::string prom = registry.ToPrometheus();
  EXPECT_NE(
      prom.find("fcp_tagged_total{source=\"say \\\"hi\\\"\\\\\\n\"} 2\n"),
      std::string::npos);
  // No raw newline inside any sample line: every '\n' in the output ends a
  // complete line that starts with '#' or the metric name.
  size_t start = 0;
  while (start < prom.size()) {
    size_t end = prom.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const std::string line = prom.substr(start, end - start);
    EXPECT_TRUE(line.empty() || line[0] == '#' ||
                line.rfind("fcp_", 0) == 0)
        << "torn line: " << line;
    start = end + 1;
  }

  const std::string json = registry.ToJson();
  // The JSON key escapes the label's quotes and backslashes and encodes the
  // newline as \n — never a raw control character.
  EXPECT_EQ(json.find('\n', json.find("fcp_tagged_total")),
            json.find("\": 2", json.find("fcp_tagged_total")) + 4);
  EXPECT_NE(json.find("\\\\n"), std::string::npos);
}

TEST(TelemetryReporterTest, StopEmitsFinalReportToFile) {
  MetricRegistry registry;
  registry.GetCounter("fcp_done_total")->Increment(3);
  const std::string path = ::testing::TempDir() + "/reporter_test.json";
  {
    ReporterOptions options;
    options.format = ReporterOptions::Format::kJson;
    options.path = path;
    options.interval_ms = 60000;  // never fires during the test
    MetricReporter reporter(&registry, options);
    reporter.Stop();
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  EXPECT_NE(std::string(buf).find("\"fcp_done_total\": 3"),
            std::string::npos);
}

TEST(TelemetryReporterTest, ZeroIntervalDisablesPeriodicReporting) {
  // interval_ms = 0 means "final report only": no background thread, no
  // ticks (a zero-length wait_for used to busy-spin EmitOnce in a loop,
  // rewriting the file continuously and burning a core).
  MetricRegistry registry;
  registry.GetCounter("fcp_final_total")->Increment(9);
  const std::string path = ::testing::TempDir() + "/reporter_zero.json";
  std::remove(path.c_str());
  ReporterOptions options;
  options.format = ReporterOptions::Format::kJson;
  options.path = path;
  options.interval_ms = 0;
  MetricReporter reporter(&registry, options);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Nothing was emitted while the reporter idled.
  EXPECT_EQ(std::fopen(path.c_str(), "r"), nullptr);
  reporter.Stop();
  // Stop() still renders the one final report.
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  EXPECT_NE(std::string(buf).find("\"fcp_final_total\": 9"),
            std::string::npos);
}

TEST(TelemetryReporterTest, NegativeIntervalAlsoDisablesThread) {
  MetricRegistry registry;
  registry.GetCounter("fcp_neg_total")->Increment(1);
  ReporterOptions options;
  options.format = ReporterOptions::Format::kJson;
  options.path = ::testing::TempDir() + "/reporter_neg.json";
  options.interval_ms = -5;
  std::remove(options.path.c_str());
  MetricReporter reporter(&registry, options);
  reporter.Stop();
  std::FILE* f = std::fopen(options.path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
}

TEST(TelemetryReporterTest, PeriodicEmission) {
  MetricRegistry registry;
  registry.GetCounter("fcp_tick_total")->Increment();
  const std::string path = ::testing::TempDir() + "/reporter_periodic.txt";
  ReporterOptions options;
  options.format = ReporterOptions::Format::kPrometheus;
  options.path = path;
  options.interval_ms = 20;
  MetricReporter reporter(&registry, options);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  reporter.Stop();
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  EXPECT_NE(std::string(buf).find("fcp_tick_total 1"), std::string::npos);
}

TEST(TelemetrySerializerTest, EmptyHistogramSerializesInBothFormats) {
  // A histogram that never recorded must still expand to a complete, valid
  // family: scrapers treat a missing _count as a broken exposition.
  MetricRegistry registry;
  registry.GetHistogram("fcp_idle_us");
  const std::string prom = registry.ToPrometheus();
  EXPECT_NE(prom.find("# TYPE fcp_idle_us histogram\n"), std::string::npos);
  EXPECT_NE(prom.find("fcp_idle_us_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(prom.find("fcp_idle_us_sum 0\n"), std::string::npos);
  EXPECT_NE(prom.find("fcp_idle_us_count 0\n"), std::string::npos);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"count\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 0"), std::string::npos);
}

TEST(TelemetryHistogramTest, PercentileOnZeroSamplesIsZeroAtEveryRank) {
  const HistogramSnapshot empty{};
  EXPECT_EQ(empty.Percentile(0), 0.0);
  EXPECT_EQ(empty.Percentile(50), 0.0);
  EXPECT_EQ(empty.Percentile(100), 0.0);
  // Out-of-range ranks clamp rather than misbehave, empty or not.
  EXPECT_EQ(empty.Percentile(-10), 0.0);
  EXPECT_EQ(empty.Percentile(1000), 0.0);
}

TEST(TelemetrySerializerTest, CounterNearUint64MaxSerializesExactly) {
  // A counter one below and at the uint64 ceiling must round-trip digit
  // for digit — any double conversion in the serializer would round
  // 2^64-1 and corrupt rate() math on the scraper side.
  MetricRegistry registry;
  Counter* c = registry.GetCounter("fcp_big_total");
  c->Increment(~uint64_t{0} - 1);
  EXPECT_NE(registry.ToPrometheus().find(
                "fcp_big_total 18446744073709551614\n"),
            std::string::npos);
  EXPECT_NE(registry.ToJson().find(
                "\"fcp_big_total\": 18446744073709551614"),
            std::string::npos);
  c->Increment();
  EXPECT_EQ(c->Value(), ~uint64_t{0});
  EXPECT_NE(registry.ToPrometheus().find(
                "fcp_big_total 18446744073709551615\n"),
            std::string::npos);
}

TEST(TelemetryReporterTest, FileReportIsRenamedAtomically) {
  // EmitOnce writes <path>.tmp then rename(2)s it over <path>: a reader
  // polling the path never sees a torn document, and no temp file survives.
  MetricRegistry registry;
  registry.GetCounter("fcp_atomic_total")->Increment(7);
  const std::string path = ::testing::TempDir() + "/reporter_rename.json";
  {
    ReporterOptions options;
    options.format = ReporterOptions::Format::kJson;
    options.path = path;
    options.interval_ms = 0;  // final report only
    MetricReporter reporter(&registry, options);
    reporter.Stop();
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  EXPECT_NE(std::string(buf).find("\"fcp_atomic_total\": 7"),
            std::string::npos);
  EXPECT_EQ(std::fopen((path + ".tmp").c_str(), "r"), nullptr);
}

}  // namespace
}  // namespace fcp::telemetry
