// Allocation-count regression tests for the zero-allocation hot path.
//
// The workload is a closed-universe cyclic replay: a fixed pool of segment
// shapes repeated with fresh ids and time-shifted so each cycle expires the
// previous one. After the warm cycles every arena, free list, flat map, ring
// buffer and scratch vector has converged to its steady-state capacity, and
// from then on CooMine::AddSegment (and the bare Seg-tree insert/expire
// cycle) must perform ZERO heap allocations. The counter sees every
// `operator new` in the process, so a single regression anywhere on the path
// — an emplace into a node-based container, a vector that outgrew its
// scratch, a std::function capture — fails the test deterministically.

#include "util/alloc_counter.h"  // must be first: defines operator new/delete

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/shard.h"
#include "core/engine_metrics.h"
#include "core/miner.h"
#include "index/seg_tree.h"
#include "stream/segment.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"
#include "util/intersect.h"
#include "util/kernels/kernels.h"
#include "util/rng.h"

namespace fcp {
namespace {

// Deterministic segment pool over a small closed object universe: every
// object appears in cycle one, so later cycles present no structural novelty
// — only churn.
std::vector<Segment> BuildSegmentPool(size_t count, Rng& rng) {
  constexpr ObjectId kVocab = 200;
  constexpr StreamId kStreams = 12;
  std::vector<Segment> pool;
  pool.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t length = 2 + rng.Below(5);
    std::vector<SegmentEntry> entries;
    const Timestamp time = static_cast<Timestamp>(i * 50);
    for (size_t j = 0; j < length; ++j) {
      entries.push_back(
          SegmentEntry{static_cast<ObjectId>(rng.Below(kVocab)), time});
    }
    pool.emplace_back(static_cast<SegmentId>(i),
                      static_cast<StreamId>(i % kStreams), std::move(entries));
  }
  return pool;
}

// `cycles` repetitions of the pool, each shifted by one full validity window
// so the previous cycle is expired, with globally fresh segment ids.
std::vector<Segment> BuildCyclicTrace(const std::vector<Segment>& pool,
                                      int cycles, const MiningParams& params) {
  Timestamp t_min = kMaxTimestamp;
  Timestamp t_max = kMinTimestamp;
  for (const Segment& s : pool) {
    t_min = std::min(t_min, s.start_time());
    t_max = std::max(t_max, s.end_time());
  }
  const Timestamp period = (t_max - t_min) + params.tau + params.xi;
  std::vector<Segment> out;
  out.reserve(pool.size() * static_cast<size_t>(cycles));
  SegmentId next_id = 1;
  for (int c = 0; c < cycles; ++c) {
    const Timestamp shift = period * c;
    for (const Segment& s : pool) {
      std::vector<SegmentEntry> entries = s.entries();
      for (SegmentEntry& e : entries) e.time += shift;
      out.emplace_back(next_id++, s.stream(), std::move(entries));
    }
  }
  return out;
}

MiningParams SteadyParams() {
  MiningParams params;
  params.xi = Seconds(60);
  params.tau = Minutes(5);
  params.theta = 1u << 20;  // unreachable: the mining path runs, emits nothing
  params.min_pattern_size = 1;
  params.max_pattern_size = 5;
  params.max_segment_objects = 24;
  return params;
}

// Replays the cyclic trace through `kind` and returns the number of heap
// allocations performed by the steady-state (post-warmup) half.
uint64_t SteadyStateAllocations(MinerKind kind) {
  const MiningParams params = SteadyParams();
  Rng rng(42);
  const std::vector<Segment> trace =
      BuildCyclicTrace(BuildSegmentPool(400, rng), /*cycles=*/6, params);

  auto miner = MakeMiner(kind, params);
  std::vector<Fcp> sink;
  sink.reserve(64);

  // Warm: first 3 of 6 cycles.
  const size_t warm = trace.size() / 2;
  for (size_t i = 0; i < warm; ++i) {
    sink.clear();
    miner->AddSegment(trace[i], &sink);
  }

  const uint64_t before = alloc_counter::allocations();
  for (size_t i = warm; i < trace.size(); ++i) {
    sink.clear();
    miner->AddSegment(trace[i], &sink);
  }
  return alloc_counter::allocations() - before;
}

TEST(AllocRegressionTest, CooMineSteadyStateAddSegmentIsAllocationFree) {
  EXPECT_EQ(SteadyStateAllocations(MinerKind::kCooMine), 0u);
}

TEST(AllocRegressionTest, DiMineSteadyStateAddSegmentIsAllocationFree) {
  EXPECT_EQ(SteadyStateAllocations(MinerKind::kDiMine), 0u);
}

TEST(AllocRegressionTest, MatrixMineSteadyStateAddSegmentIsAllocationFree) {
  EXPECT_EQ(SteadyStateAllocations(MinerKind::kMatrixMine), 0u);
}

// The sharded deployment must not scale allocations with the shard count:
// S replicas each index the full closed universe, so any per-posting heap
// growth (the doubling chain a plain std::vector pays per object) is paid S
// times over. With arena-pooled postings every replica converges during the
// warm cycles and the steady-state half must be allocation-free — the same
// zero the serial miner achieves, not merely "small".
TEST(AllocRegressionTest, ShardedDiMineSteadyStateIsAllocationFree) {
  constexpr uint32_t kShards = 4;
  const MiningParams params = SteadyParams();
  Rng rng(42);
  const std::vector<Segment> trace =
      BuildCyclicTrace(BuildSegmentPool(400, rng), /*cycles=*/6, params);

  std::vector<std::unique_ptr<FcpMiner>> miners;
  for (uint32_t s = 0; s < kShards; ++s) {
    miners.push_back(MakeMiner(MinerKind::kDiMine, params,
                               ShardSpec{s, kShards}));
  }
  std::vector<Fcp> sink;
  sink.reserve(64);
  std::vector<uint32_t> targets;
  targets.reserve(kShards);
  auto deliver = [&](const Segment& segment) {
    targets.clear();
    // Route off the raw entries (DistinctObjects() allocates a fresh vector,
    // which would charge the harness's own routing to the miners).
    for (const SegmentEntry& entry : segment.entries()) {
      const uint32_t shard = ShardOf(entry.object, kShards);
      if (std::find(targets.begin(), targets.end(), shard) == targets.end()) {
        targets.push_back(shard);
      }
    }
    for (uint32_t target : targets) {
      miners[target]->AdvanceWatermark(segment.end_time());
      sink.clear();
      miners[target]->AddSegment(segment, &sink);
    }
  };

  const size_t warm = trace.size() / 2;
  for (size_t i = 0; i < warm; ++i) deliver(trace[i]);

  const uint64_t before = alloc_counter::allocations();
  for (size_t i = warm; i < trace.size(); ++i) deliver(trace[i]);
  const uint64_t allocations = alloc_counter::allocations() - before;
  EXPECT_EQ(allocations, 0u)
      << "sharded (S=" << kShards << ") DiMine steady state performed "
      << allocations << " heap allocations";
}

// The SIMD kernel layer must not disturb the invariant at any dispatch
// level: the kernels write into caller-provided buffers only, so forcing
// each supported level through the same steady-state replay must still
// count zero allocations.
TEST(AllocRegressionTest, SteadyStateIsAllocationFreeAtEveryKernelLevel) {
  const kernels::KernelLevel saved = kernels::ActiveLevel();
  for (kernels::KernelLevel level :
       {kernels::KernelLevel::kScalar, kernels::KernelLevel::kSse42,
        kernels::KernelLevel::kAvx2}) {
    if (!kernels::LevelSupported(level)) continue;
    kernels::SetKernelLevel(level);
    for (MinerKind kind : {MinerKind::kCooMine, MinerKind::kDiMine,
                           MinerKind::kMatrixMine}) {
      EXPECT_EQ(SteadyStateAllocations(kind), 0u)
          << "kernel level " << kernels::KernelLevelName(level) << ", miner "
          << MinerKindToString(kind);
    }
  }
  kernels::SetKernelLevel(saved);
}

// The flight recorder must preserve the invariant with recording ON
// (DESIGN.md §2.5): ring slots are pre-allocated and the only allocation is
// the per-thread ring registration, which the warm cycles absorb. From then
// on every span/flow emitted inside AddSegment is plain stores into the
// ring — the steady-state half must still count zero allocations even while
// the ring wraps continuously.
TEST(AllocRegressionTest, TracingEnabledSteadyStateIsAllocationFree) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "built with FCP_TRACE=OFF";
  trace::Reset();
  trace::Start(/*ring_kb=*/64);  // small ring: wrap path exercised constantly
  for (MinerKind kind : {MinerKind::kCooMine, MinerKind::kDiMine,
                         MinerKind::kMatrixMine}) {
    EXPECT_EQ(SteadyStateAllocations(kind), 0u)
        << "tracing-enabled steady state allocated, miner "
        << MinerKindToString(kind);
  }
  trace::Stop();
  trace::Reset();
}

// ShrinkToFitIfOversized is the one sanctioned capacity release. At a
// maintenance boundary it must (a) stay silent on steady-state buffers —
// zero allocations — and (b) give back a pathological high-water mark.
TEST(AllocRegressionTest, ShrinkPolicyKeepsSteadyStateAllocationFree) {
  std::vector<uint64_t> scratch;
  scratch.reserve(2048);  // steady-state capacity, well above the byte floor
  scratch.resize(1500);   // hovers near the high-water mark
  const uint64_t before = alloc_counter::allocations();
  for (int sweep = 0; sweep < 100; ++sweep) {
    scratch.resize(1200 + (sweep % 300));
    EXPECT_FALSE(ShrinkToFitIfOversized(&scratch));
  }
  EXPECT_EQ(alloc_counter::allocations() - before, 0u)
      << "steady-state shrink checks must not touch the heap";

  // Workload shift: capacity 100x the live size is released (this is the
  // maintenance boundary, where an allocation is sanctioned).
  scratch.resize(16);
  EXPECT_TRUE(ShrinkToFitIfOversized(&scratch));
  EXPECT_LT(scratch.capacity(), size_t{2048});
}

// The telemetry record path must not reintroduce allocations: the same
// steady-state replay, but with the full per-segment publish sequence the
// engines run — a histogram Record, a PublishDelta of the miner stats and a
// PublishIntrospection of the index view. Registration happens before the
// measured region (it is the one place telemetry may allocate).
TEST(AllocRegressionTest, TelemetryPublishSteadyStateIsAllocationFree) {
  const MiningParams params = SteadyParams();
  Rng rng(42);
  const std::vector<Segment> trace =
      BuildCyclicTrace(BuildSegmentPool(400, rng), /*cycles=*/6, params);

  telemetry::MetricRegistry registry;
  const MinerMetrics metrics = MinerMetrics::Register(&registry, "");
  telemetry::LatencyHistogram* latency =
      registry.GetHistogram("fcp_segment_mine_latency_us");
  MinerStats published;

  auto miner = MakeMiner(MinerKind::kCooMine, params);
  std::vector<Fcp> sink;
  sink.reserve(64);

  const size_t warm = trace.size() / 2;
  for (size_t i = 0; i < warm; ++i) {
    sink.clear();
    miner->AddSegment(trace[i], &sink);
    latency->Record(static_cast<uint64_t>(i % 1000));
    metrics.PublishDelta(miner->stats(), &published);
    metrics.PublishIntrospection(miner->Introspect());
  }

  const uint64_t before = alloc_counter::allocations();
  for (size_t i = warm; i < trace.size(); ++i) {
    sink.clear();
    miner->AddSegment(trace[i], &sink);
    latency->Record(static_cast<uint64_t>(i % 1000));
    metrics.PublishDelta(miner->stats(), &published);
    metrics.PublishIntrospection(miner->Introspect());
  }
  const uint64_t allocations = alloc_counter::allocations() - before;
  EXPECT_EQ(allocations, 0u)
      << "telemetry-instrumented steady state performed " << allocations
      << " heap allocations";
  EXPECT_EQ(latency->TotalCount(), trace.size());
}

TEST(AllocRegressionTest, SegTreeSteadyStateChurnIsAllocationFree) {
  const MiningParams params = SteadyParams();
  Rng rng(7);
  const std::vector<Segment> trace =
      BuildCyclicTrace(BuildSegmentPool(300, rng), /*cycles=*/6, params);
  const size_t per_cycle = trace.size() / 6;

  // Insert one full cycle, then expire it while inserting the next: the
  // bare index insert/expire churn, no mining on top.
  SegTree tree;
  const size_t warm = trace.size() / 2;
  for (size_t i = 0; i < warm; ++i) {
    tree.Insert(trace[i]);
    tree.RemoveExpired(trace[i].end_time(), params.tau);
  }

  const uint64_t before = alloc_counter::allocations();
  for (size_t i = warm; i < trace.size(); ++i) {
    tree.Insert(trace[i]);
    tree.RemoveExpired(trace[i].end_time(), params.tau);
  }
  const uint64_t allocations = alloc_counter::allocations() - before;
  EXPECT_EQ(allocations, 0u)
      << "steady-state Seg-tree churn performed " << allocations
      << " heap allocations over " << (trace.size() - warm) << " cycles";
  EXPECT_EQ(tree.num_segments(), per_cycle);
  EXPECT_GT(tree.stats().nodes_recycled, 0u);
}

// Guards the counter itself: a build that silently drops the replaced
// operator new (e.g. a sanitizer interposing malloc) would make the two
// tests above pass vacuously.
TEST(AllocRegressionTest, CounterObservesAllocations) {
  const uint64_t before = alloc_counter::allocations();
  std::vector<int>* v = new std::vector<int>(1000);
  EXPECT_GT(alloc_counter::allocations(), before);
  delete v;
}

}  // namespace
}  // namespace fcp
