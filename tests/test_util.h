// Shared helpers for the libfcp test suite.

#ifndef FCP_TESTS_TEST_UTIL_H_
#define FCP_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <initializer_list>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/params.h"
#include "common/types.h"
#include "core/fcp.h"
#include "stream/segment.h"

namespace fcp::testing {

/// Builds a segment whose objects all share one timestamp (tweet-style).
inline Segment MakeSegment(SegmentId id, StreamId stream,
                           std::initializer_list<ObjectId> objects,
                           Timestamp time = 0) {
  std::vector<SegmentEntry> entries;
  for (ObjectId o : objects) entries.push_back(SegmentEntry{o, time});
  return Segment(id, stream, std::move(entries));
}

/// Builds a segment from (object, time) pairs.
inline Segment MakeTimedSegment(
    SegmentId id, StreamId stream,
    std::initializer_list<std::pair<ObjectId, Timestamp>> entries) {
  std::vector<SegmentEntry> list;
  for (const auto& [o, t] : entries) list.push_back(SegmentEntry{o, t});
  return Segment(id, stream, std::move(list));
}

/// The set of patterns among a batch of FCPs (for order-insensitive
/// comparison across miners).
inline std::set<Pattern> PatternsOf(const std::vector<Fcp>& fcps) {
  std::set<Pattern> out;
  for (const Fcp& fcp : fcps) out.insert(fcp.objects);
  return out;
}

/// The set of (pattern, sorted-stream-set) pairs — the strongest
/// order-insensitive signature of a mining result.
inline std::set<std::pair<Pattern, std::vector<StreamId>>> SignaturesOf(
    const std::vector<Fcp>& fcps) {
  std::set<std::pair<Pattern, std::vector<StreamId>>> out;
  for (const Fcp& fcp : fcps) out.insert({fcp.objects, fcp.streams});
  return out;
}

/// Full per-discovery signature, order-insensitive: one entry per emitted
/// FCP (sorted), so result equality is checked as a multiset, not a set.
/// Two mining runs with equal FullSignatures found exactly the same
/// discoveries — triggers, streams and windows included.
using FcpSignature = std::tuple<SegmentId, Pattern, std::vector<StreamId>,
                                Timestamp, Timestamp>;
inline std::vector<FcpSignature> FullSignatures(const std::vector<Fcp>& fcps) {
  std::vector<FcpSignature> out;
  out.reserve(fcps.size());
  for (const Fcp& fcp : fcps) {
    out.emplace_back(fcp.trigger, fcp.objects, fcp.streams, fcp.window_start,
                     fcp.window_end);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Offline Definition-3 checker: does `pattern` appear in >= theta distinct
/// streams, each appearance within xi, all within one tau window? Used to
/// verify that every emitted pattern is genuine, independent of any miner's
/// code path.
inline bool IsGenuineFcp(const std::vector<ObjectEvent>& events,
                         const Pattern& pattern, const MiningParams& params) {
  // Occurrences per stream: sliding window over the stream's events finding
  // windows of span <= xi containing all pattern objects.
  std::map<StreamId, std::vector<ObjectEvent>> per_stream;
  for (const ObjectEvent& e : events) per_stream[e.stream].push_back(e);
  std::vector<std::pair<StreamId, Timestamp>> occurrences;  // (stream, time)
  for (const auto& [stream, stream_events] : per_stream) {
    for (size_t l = 0; l < stream_events.size(); ++l) {
      std::set<ObjectId> seen;
      for (size_t r = l; r < stream_events.size() &&
                         stream_events[r].time - stream_events[l].time <=
                             params.xi;
           ++r) {
        if (std::binary_search(pattern.begin(), pattern.end(),
                               stream_events[r].object)) {
          seen.insert(stream_events[r].object);
        }
        if (seen.size() == pattern.size()) {
          occurrences.push_back({stream, stream_events[l].time});
          break;
        }
      }
    }
  }
  // Any tau window covering >= theta distinct streams?
  std::sort(occurrences.begin(), occurrences.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  for (size_t i = 0; i < occurrences.size(); ++i) {
    std::set<StreamId> streams;
    for (size_t j = i; j < occurrences.size() &&
                       occurrences[j].second - occurrences[i].second <=
                           params.tau;
         ++j) {
      streams.insert(occurrences[j].first);
    }
    if (streams.size() >= params.theta) return true;
  }
  return false;
}

/// Pretty-printer for gtest failure messages.
inline std::string ToString(const Pattern& pattern) {
  std::string out = "{";
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(pattern[i]);
  }
  return out + "}";
}

}  // namespace fcp::testing

#endif  // FCP_TESTS_TEST_UTIL_H_
