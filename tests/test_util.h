// Shared helpers for the libfcp test suite.

#ifndef FCP_TESTS_TEST_UTIL_H_
#define FCP_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <initializer_list>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/fcp.h"
#include "stream/segment.h"

namespace fcp::testing {

/// Builds a segment whose objects all share one timestamp (tweet-style).
inline Segment MakeSegment(SegmentId id, StreamId stream,
                           std::initializer_list<ObjectId> objects,
                           Timestamp time = 0) {
  std::vector<SegmentEntry> entries;
  for (ObjectId o : objects) entries.push_back(SegmentEntry{o, time});
  return Segment(id, stream, std::move(entries));
}

/// Builds a segment from (object, time) pairs.
inline Segment MakeTimedSegment(
    SegmentId id, StreamId stream,
    std::initializer_list<std::pair<ObjectId, Timestamp>> entries) {
  std::vector<SegmentEntry> list;
  for (const auto& [o, t] : entries) list.push_back(SegmentEntry{o, t});
  return Segment(id, stream, std::move(list));
}

/// The set of patterns among a batch of FCPs (for order-insensitive
/// comparison across miners).
inline std::set<Pattern> PatternsOf(const std::vector<Fcp>& fcps) {
  std::set<Pattern> out;
  for (const Fcp& fcp : fcps) out.insert(fcp.objects);
  return out;
}

/// The set of (pattern, sorted-stream-set) pairs — the strongest
/// order-insensitive signature of a mining result.
inline std::set<std::pair<Pattern, std::vector<StreamId>>> SignaturesOf(
    const std::vector<Fcp>& fcps) {
  std::set<std::pair<Pattern, std::vector<StreamId>>> out;
  for (const Fcp& fcp : fcps) out.insert({fcp.objects, fcp.streams});
  return out;
}

/// Pretty-printer for gtest failure messages.
inline std::string ToString(const Pattern& pattern) {
  std::string out = "{";
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(pattern[i]);
  }
  return out + "}";
}

}  // namespace fcp::testing

#endif  // FCP_TESTS_TEST_UTIL_H_
