// End-to-end integration: synthetic workloads from datagen flow through the
// full pipeline (mux -> segmenter -> miner -> collector) and the planted
// ground-truth patterns are recovered.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/coomine.h"
#include "core/mining_engine.h"
#include "datagen/traffic_gen.h"
#include "datagen/twitter_gen.h"
#include "test_util.h"

namespace fcp {
namespace {

TEST(IntegrationTest, TrafficConvoysRecovered) {
  TrafficConfig config;
  config.num_cameras = 30;
  config.num_vehicles = 2000;
  config.per_camera_rate_hz = 0.1;
  config.total_events = 20000;
  config.num_convoys = 4;
  config.convoy_size_min = 2;
  config.convoy_size_max = 3;
  config.route_len_min = 4;
  config.route_len_max = 6;
  config.seed = 11;
  const TrafficTrace trace = GenerateTraffic(config);

  MiningParams params;
  params.xi = Seconds(60);
  params.tau = Minutes(30);
  params.theta = 3;
  params.min_pattern_size = 2;
  params.max_pattern_size = 4;

  MiningEngine engine(MinerKind::kCooMine, params);
  std::vector<Fcp> all;
  for (const ObjectEvent& event : trace.events) {
    for (Fcp& fcp : engine.PushEvent(event)) all.push_back(std::move(fcp));
  }
  for (Fcp& fcp : engine.Flush()) all.push_back(std::move(fcp));

  const std::set<Pattern> found = testing::PatternsOf(all);
  // Every planted convoy whose full run fits in the trace must surface as an
  // FCP (the full vehicle group, or at least every pair of its members).
  size_t recovered = 0;
  for (const ConvoyPlan& convoy : trace.convoys) {
    bool pairs_found = true;
    for (size_t i = 0; i < convoy.vehicles.size() && pairs_found; ++i) {
      for (size_t j = i + 1; j < convoy.vehicles.size(); ++j) {
        Pattern pair = {convoy.vehicles[i], convoy.vehicles[j]};
        std::sort(pair.begin(), pair.end());
        if (!found.contains(pair)) {
          pairs_found = false;
          break;
        }
      }
    }
    if (pairs_found) ++recovered;
  }
  EXPECT_EQ(recovered, trace.convoys.size());
}

TEST(IntegrationTest, TwitterEventsRecovered) {
  TwitterConfig config;
  config.num_users = 300;
  config.vocab_size = 5000;
  config.total_tweets = 8000;
  config.num_events = 3;
  config.event_participants_min = 30;
  config.event_participants_max = 60;
  config.seed = 13;
  const TwitterTrace trace = GenerateTwitter(config);

  MiningParams params;
  params.xi = Seconds(60);
  params.tau = Minutes(30);
  params.theta = 10;
  params.min_pattern_size = 2;
  params.max_pattern_size = 4;

  MiningEngine engine(MinerKind::kCooMine, params);
  std::vector<Fcp> all;
  for (const ObjectEvent& event : trace.events) {
    for (Fcp& fcp : engine.PushEvent(event)) all.push_back(std::move(fcp));
  }
  for (Fcp& fcp : engine.Flush()) all.push_back(std::move(fcp));

  const std::set<Pattern> found = testing::PatternsOf(all);
  for (const EventPlan& plan : trace.planted_events) {
    EXPECT_TRUE(found.contains(plan.keywords))
        << "planted event '" << plan.name << "' not recovered";
  }
}

TEST(IntegrationTest, MinersAgreeOnTrafficWorkload) {
  TrafficConfig config;
  config.num_cameras = 10;
  config.num_vehicles = 300;
  config.total_events = 4000;
  config.num_convoys = 2;
  config.seed = 17;
  const TrafficTrace trace = GenerateTraffic(config);

  MiningParams params;
  params.xi = Seconds(60);
  params.tau = Minutes(20);
  params.theta = 2;
  params.min_pattern_size = 2;
  params.max_pattern_size = 3;

  MiningEngine coo(MinerKind::kCooMine, params);
  MiningEngine di(MinerKind::kDiMine, params);
  MiningEngine matrix(MinerKind::kMatrixMine, params);
  std::vector<Fcp> coo_all, di_all, matrix_all;
  for (const ObjectEvent& event : trace.events) {
    for (Fcp& f : coo.PushEvent(event)) coo_all.push_back(std::move(f));
    for (Fcp& f : di.PushEvent(event)) di_all.push_back(std::move(f));
    for (Fcp& f : matrix.PushEvent(event)) matrix_all.push_back(std::move(f));
  }
  EXPECT_EQ(testing::SignaturesOf(coo_all), testing::SignaturesOf(di_all));
  EXPECT_EQ(testing::SignaturesOf(coo_all), testing::SignaturesOf(matrix_all));
  EXPECT_GT(coo_all.size(), 0u);
}

TEST(IntegrationTest, CompressionContrastBetweenRegimes) {
  // The paper's Fig. 5(f) contrast: TR compresses, Twitter does not.
  MiningParams params;
  params.xi = Seconds(60);
  params.tau = Minutes(30);
  params.theta = 3;

  // TR-like.
  TrafficConfig traffic_config;
  traffic_config.num_cameras = 20;
  traffic_config.num_vehicles = 1000;
  traffic_config.total_events = 10000;
  traffic_config.num_convoys = 0;
  traffic_config.seed = 19;
  const TrafficTrace traffic = GenerateTraffic(traffic_config);

  MiningEngine tr_engine(MinerKind::kCooMine, params);
  for (const ObjectEvent& event : traffic.events) tr_engine.PushEvent(event);
  const auto& tr_tree =
      static_cast<const CooMine&>(tr_engine.miner()).seg_tree();

  // Twitter-like.
  TwitterConfig twitter_config;
  twitter_config.num_users = 400;
  twitter_config.vocab_size = 20000;
  twitter_config.total_tweets = 4000;
  twitter_config.num_events = 0;
  twitter_config.seed = 23;
  const TwitterTrace twitter = GenerateTwitter(twitter_config);

  MiningEngine tw_engine(MinerKind::kCooMine, params);
  for (const ObjectEvent& event : twitter.events) tw_engine.PushEvent(event);
  const auto& tw_tree =
      static_cast<const CooMine&>(tw_engine.miner()).seg_tree();

  EXPECT_GT(tr_tree.CompressionRatio(), 0.3)
      << "dense camera streams must compress";
  EXPECT_LT(tw_tree.CompressionRatio(), tr_tree.CompressionRatio())
      << "tweet segments barely overlap";
}

}  // namespace
}  // namespace fcp
