// Serial vs. sharded telemetry consistency: the same trace mined serially
// and through the ParallelEngine (one worker, S miner shards) must agree on
// the semantic counters — segments routed to a shard equal segments that
// shard mined, and the shard miners' fcps_emitted sum to the serial count.
// The telemetry registry must agree with the miners' own stats structs, so
// a dashboard reading the registry sees the same truth as the library API.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/mining_engine.h"
#include "core/parallel_engine.h"
#include "datagen/traffic_gen.h"
#include "telemetry/registry.h"

namespace fcp {
namespace {

MiningParams Params() {
  MiningParams params;
  params.xi = Seconds(60);
  params.tau = Minutes(30);
  params.theta = 3;
  params.min_pattern_size = 2;
  params.max_pattern_size = 4;
  return params;
}

std::vector<ObjectEvent> Trace() {
  TrafficConfig config;
  config.num_cameras = 20;
  config.num_vehicles = 1000;
  config.total_events = 8000;
  config.num_convoys = 4;
  config.seed = 77;
  return GenerateTraffic(config).events;
}

/// Finds `name` in a snapshot; fails the test if absent.
const telemetry::MetricSample& Find(
    const std::vector<telemetry::MetricSample>& samples,
    const std::string& name) {
  for (const telemetry::MetricSample& s : samples) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "metric " << name << " not registered";
  static const telemetry::MetricSample kMissing;
  return kMissing;
}

class MetricsConsistencyTest
    : public ::testing::TestWithParam<std::tuple<MinerKind, uint32_t>> {};

TEST_P(MetricsConsistencyTest, SerialAndShardedAgreeOnSemanticCounters) {
  const auto [kind, num_shards] = GetParam();
  const std::vector<ObjectEvent> events = Trace();
  const MiningParams params = Params();

  // Serial reference run.
  MiningEngine serial(kind, params);
  for (const ObjectEvent& event : events) serial.PushEvent(event);
  serial.Flush();
  const uint64_t serial_fcps = serial.miner().stats().fcps_emitted;
  const uint64_t serial_segments = serial.segments_completed();

  // Serial registry agrees with the serial miner/engine state.
  const auto serial_metrics = serial.SnapshotMetrics();
  EXPECT_EQ(Find(serial_metrics, "fcp_fcps_emitted_total").counter_value,
            serial_fcps);
  EXPECT_EQ(Find(serial_metrics, "fcp_segments_completed_total").counter_value,
            serial_segments);
  EXPECT_EQ(Find(serial_metrics, "fcp_events_ingested_total").counter_value,
            events.size());
  EXPECT_EQ(
      static_cast<uint64_t>(Find(serial_metrics, "fcp_index_bytes").gauge_value),
      serial.MemoryUsage());

  // Sharded run: one worker makes segmentation order identical to serial
  // (any shard count), so the semantic counters must match exactly.
  ParallelEngineOptions options;
  options.num_workers = 1;
  options.num_miner_shards = num_shards;
  ParallelEngine sharded(kind, params, options);
  for (const ObjectEvent& event : events) sharded.Push(event);
  sharded.Finish();
  const auto sharded_metrics = sharded.SnapshotMetrics();

  EXPECT_EQ(sharded.segments_completed(), serial_segments);
  EXPECT_EQ(Find(sharded_metrics, "fcp_segments_completed_total").counter_value,
            serial_segments);
  EXPECT_EQ(Find(sharded_metrics, "fcp_events_ingested_total").counter_value,
            events.size());

  uint64_t fcps_sum = 0;
  uint64_t metric_fcps_sum = 0;
  for (uint32_t s = 0; s < num_shards; ++s) {
    const std::string label = "{shard=\"" + std::to_string(s) + "\"}";
    const MinerStats& stats = sharded.shard_miner(s).stats();

    // Segments routed to the shard == segments the shard mined.
    const uint64_t routed = static_cast<uint64_t>(
        Find(sharded_metrics, "fcp_segments_routed" + label).gauge_value);
    EXPECT_EQ(routed, stats.segments_processed) << "shard " << s;

    // The registry's per-shard counters mirror the miner's own stats.
    EXPECT_EQ(
        Find(sharded_metrics, "fcp_segments_mined_total" + label).counter_value,
        stats.segments_processed)
        << "shard " << s;
    EXPECT_EQ(
        Find(sharded_metrics, "fcp_fcps_emitted_total" + label).counter_value,
        stats.fcps_emitted)
        << "shard " << s;
    EXPECT_EQ(Find(sharded_metrics, "fcp_candidates_checked_total" + label)
                  .counter_value,
              stats.candidates_checked)
        << "shard " << s;

    // Every delivery landed somewhere: discovery latency histogram counted
    // exactly the deliveries this shard mined.
    EXPECT_EQ(
        Find(sharded_metrics, "fcp_discovery_latency_us" + label)
            .histogram.total,
        stats.segments_processed)
        << "shard " << s;

    fcps_sum += stats.fcps_emitted;
    metric_fcps_sum +=
        Find(sharded_metrics, "fcp_fcps_emitted_total" + label).counter_value;
  }

  // Min-object ownership partitions the pattern space: each discovery is
  // emitted by exactly one shard, so the counts sum to the serial count.
  EXPECT_EQ(fcps_sum, serial_fcps);
  EXPECT_EQ(metric_fcps_sum, serial_fcps);

  // Same discoveries end-to-end, not just same counts.
  EXPECT_EQ(sharded.results().size(), serial.collector().results().size());
}

TEST(MetricsConsistencyQueueTest, QueueGaugesBoundedUnderConcurrentSampling) {
  // SnapshotMetrics() refreshes the queue-occupancy gauges from the live
  // queues while the pipeline runs (this suite runs under TSan, so the
  // refresh path is checked against the producer/consumer threads). Every
  // sampled value must respect the configured capacity bounds, and the
  // final snapshot must describe a fully drained pipeline.
  constexpr uint32_t kShards = 4;
  constexpr size_t kShardCapacity = 64;
  constexpr size_t kEventCapacity = 256;
  constexpr size_t kSegmentCapacity = 64;
  const std::vector<ObjectEvent> events = Trace();

  ParallelEngineOptions options;
  options.num_workers = 2;
  options.num_miner_shards = kShards;
  options.event_queue_capacity = kEventCapacity;
  options.segment_queue_capacity = kSegmentCapacity;
  options.shard_queue_capacity = kShardCapacity;
  ParallelEngine engine(MinerKind::kCooMine, Params(), options);

  std::atomic<bool> sampling{true};
  std::thread sampler([&] {
    while (sampling.load(std::memory_order_relaxed)) {
      const auto samples = engine.SnapshotMetrics();
      for (uint32_t s = 0; s < kShards; ++s) {
        const std::string label = "{shard=\"" + std::to_string(s) + "\"}";
        const int64_t depth =
            Find(samples, "fcp_shard_queue_depth" + label).gauge_value;
        const int64_t peak =
            Find(samples, "fcp_shard_queue_high_watermark" + label)
                .gauge_value;
        EXPECT_GE(depth, 0) << "shard " << s;
        EXPECT_LE(depth, static_cast<int64_t>(kShardCapacity)) << "shard " << s;
        EXPECT_GE(peak, depth) << "shard " << s;
        EXPECT_LE(peak, static_cast<int64_t>(kShardCapacity)) << "shard " << s;
      }
      std::this_thread::yield();
    }
  });

  for (const ObjectEvent& event : events) engine.Push(event);
  engine.Finish();
  sampling.store(false, std::memory_order_relaxed);
  sampler.join();

  // Quiescent pipeline: all queues drained, gauges exact.
  const auto samples = engine.SnapshotMetrics();
  uint64_t routed_sum = 0;
  for (uint32_t s = 0; s < kShards; ++s) {
    const std::string label = "{shard=\"" + std::to_string(s) + "\"}";
    EXPECT_EQ(Find(samples, "fcp_shard_queue_depth" + label).gauge_value, 0)
        << "shard " << s;
    routed_sum += static_cast<uint64_t>(
        Find(samples, "fcp_segments_routed" + label).gauge_value);
  }
  EXPECT_EQ(routed_sum, engine.router_stats().deliveries);
  for (uint32_t w = 0; w < options.num_workers; ++w) {
    const std::string label = "{worker=\"" + std::to_string(w) + "\"}";
    EXPECT_EQ(Find(samples, "fcp_event_queue_depth" + label).gauge_value, 0)
        << "worker " << w;
    EXPECT_EQ(Find(samples, "fcp_segment_queue_depth" + label).gauge_value, 0)
        << "worker " << w;
  }
}

TEST(MetricsConsistencyRebalanceTest, ImbalanceGaugeMatchesRebalancerValue) {
  // One imbalance definition, two consumers: the
  // fcp_shard_load_imbalance_permille gauge a dashboard scrapes and the
  // Rebalancer's trigger input must be the same number — both are the
  // Rebalancer's max/mean-per-interval computation, published verbatim.
  const std::vector<ObjectEvent> events = Trace();
  ParallelEngineOptions options;
  options.num_workers = 1;
  options.num_miner_shards = 4;
  options.rebalancer.interval_segments = 64;  // cadence only; no moves
  ParallelEngine engine(MinerKind::kCooMine, Params(), options);
  for (const ObjectEvent& event : events) engine.Push(event);
  engine.Finish();

  // Rebalancing was NOT requested, but S > 1 keeps the gauge live
  // (measure-only mode) so dashboards see skew before anyone opts into
  // moving objects.
  ASSERT_NE(engine.rebalancer(), nullptr);
  EXPECT_GT(engine.rebalancer()->stats().rounds, 0u)
      << "no load interval closed — shrink interval_segments or grow the "
         "trace";
  const auto samples = engine.SnapshotMetrics();
  EXPECT_EQ(Find(samples, "fcp_shard_load_imbalance_permille").gauge_value,
            engine.rebalancer()->imbalance_permille());
  // A balanced-or-worse ratio is >= 1 by construction.
  EXPECT_GE(engine.rebalancer()->imbalance_permille(), 1000);
  // Measure-only mode must not have moved anything.
  EXPECT_EQ(engine.rebalancer()->stats().objects_moved, 0u);
  EXPECT_EQ(Find(samples, "fcp_migrations_total").counter_value, 0u);
  EXPECT_EQ(Find(samples, "fcp_backfill_deliveries_total").counter_value, 0u);
}

TEST(MetricsConsistencyRebalanceTest, MigrationCountersMirrorEngineState) {
  const std::vector<ObjectEvent> events = Trace();
  ParallelEngineOptions options;
  options.num_workers = 1;
  options.num_miner_shards = 4;
  options.rebalance = true;
  options.rebalancer.interval_segments = 32;
  options.rebalancer.imbalance_threshold = 1.0;
  options.rebalancer.min_move_weight = 2;
  ParallelEngine engine(MinerKind::kCooMine, Params(), options);
  for (const ObjectEvent& event : events) engine.Push(event);
  engine.Finish();

  ASSERT_NE(engine.rebalancer(), nullptr);
  const RebalancerStats& stats = engine.rebalancer()->stats();
  ASSERT_GT(stats.rounds_triggered, 0u)
      << "rebalancing never triggered — the counters went unexercised";
  const auto samples = engine.SnapshotMetrics();
  EXPECT_EQ(Find(samples, "fcp_rebalance_rounds_total").counter_value,
            stats.rounds_triggered);
  EXPECT_EQ(Find(samples, "fcp_migrations_total").counter_value,
            stats.objects_moved);
  EXPECT_EQ(Find(samples, "fcp_backfill_deliveries_total").counter_value,
            engine.router_stats().backfill_deliveries);
  // Every migration round was timed into the latency histogram.
  EXPECT_EQ(Find(samples, "fcp_migration_latency_us").histogram.total,
            engine.router_stats().placements_applied);
  // Backfills land in the per-shard miners as index-only segments; the
  // mined counters still reconcile exactly with routed deliveries.
  uint64_t mined = 0;
  uint64_t backfilled = 0;
  for (uint32_t s = 0; s < options.num_miner_shards; ++s) {
    mined += engine.shard_miner(s).stats().segments_processed;
    backfilled += engine.shard_miner(s).stats().segments_indexed_only;
  }
  EXPECT_EQ(mined, engine.router_stats().deliveries);
  EXPECT_EQ(backfilled, engine.router_stats().backfill_deliveries);
}

INSTANTIATE_TEST_SUITE_P(
    AllMinersAllShardCounts, MetricsConsistencyTest,
    ::testing::Combine(::testing::Values(MinerKind::kCooMine,
                                         MinerKind::kDiMine,
                                         MinerKind::kMatrixMine),
                       ::testing::Values(1u, 4u)),
    [](const ::testing::TestParamInfo<std::tuple<MinerKind, uint32_t>>& info) {
      return std::string(MinerKindToString(std::get<0>(info.param))) + "_S" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace fcp
