#include "common/params.h"

#include <gtest/gtest.h>

namespace fcp {
namespace {

TEST(MiningParamsTest, DefaultsValidate) {
  MiningParams params;
  EXPECT_TRUE(params.Validate().ok()) << params.Validate();
}

TEST(MiningParamsTest, RejectsNonPositiveXi) {
  MiningParams params;
  params.xi = 0;
  EXPECT_FALSE(params.Validate().ok());
  params.xi = -5;
  EXPECT_FALSE(params.Validate().ok());
}

TEST(MiningParamsTest, RejectsNonPositiveTau) {
  MiningParams params;
  params.tau = 0;
  EXPECT_FALSE(params.Validate().ok());
}

TEST(MiningParamsTest, RejectsTauSmallerThanXi) {
  MiningParams params;
  params.xi = Seconds(60);
  params.tau = Seconds(30);
  EXPECT_FALSE(params.Validate().ok());
  params.tau = Seconds(60);  // equal is allowed
  EXPECT_TRUE(params.Validate().ok());
}

TEST(MiningParamsTest, RejectsZeroTheta) {
  MiningParams params;
  params.theta = 0;
  EXPECT_FALSE(params.Validate().ok());
}

TEST(MiningParamsTest, RejectsInvertedSizeRange) {
  MiningParams params;
  params.min_pattern_size = 4;
  params.max_pattern_size = 3;
  EXPECT_FALSE(params.Validate().ok());
}

TEST(MiningParamsTest, UnboundedMaxSizeAllowed) {
  MiningParams params;
  params.max_pattern_size = 0;  // unbounded
  params.min_pattern_size = 7;
  EXPECT_TRUE(params.Validate().ok());
}

TEST(MiningParamsTest, RejectsZeroMinSize) {
  MiningParams params;
  params.min_pattern_size = 0;
  EXPECT_FALSE(params.Validate().ok());
}

TEST(MiningParamsTest, RejectsNonPositiveMaintenanceInterval) {
  MiningParams params;
  params.maintenance_interval = 0;
  EXPECT_FALSE(params.Validate().ok());
}

TEST(MiningParamsTest, ToStringMentionsEveryKnob) {
  MiningParams params;
  params.xi = Seconds(60);
  params.tau = Minutes(30);
  params.theta = 3;
  params.min_pattern_size = 2;
  params.max_pattern_size = 5;
  const std::string s = params.ToString();
  EXPECT_NE(s.find("xi=60000ms"), std::string::npos) << s;
  EXPECT_NE(s.find("tau=1800000ms"), std::string::npos) << s;
  EXPECT_NE(s.find("theta=3"), std::string::npos) << s;
  EXPECT_NE(s.find("k=[2,5]"), std::string::npos) << s;
}

TEST(MiningParamsTest, ToStringUnbounded) {
  MiningParams params;
  params.max_pattern_size = 0;
  EXPECT_NE(params.ToString().find("inf"), std::string::npos);
}

TEST(MiningParamsTest, DurationHelpers) {
  EXPECT_EQ(Millis(1500), 1500);
  EXPECT_EQ(Seconds(2), 2000);
  EXPECT_EQ(Minutes(3), 180000);
}

}  // namespace
}  // namespace fcp
