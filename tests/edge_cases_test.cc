// Edge-case and stress tests across the mining stack: extreme parameter
// settings, degenerate workloads, and adversarial shapes that the main unit
// tests do not reach.

#include <vector>

#include <gtest/gtest.h>

#include "core/coomine.h"
#include "core/mining_engine.h"
#include "test_util.h"
#include "util/rng.h"

namespace fcp {
namespace {

using ::fcp::testing::MakeSegment;
using ::fcp::testing::PatternsOf;

MiningParams BaseParams() {
  MiningParams params;
  params.xi = Seconds(60);
  params.tau = Minutes(30);
  params.theta = 2;
  return params;
}

TEST(EdgeCaseTest, ThetaOneEveryPatternIsFrequent) {
  MiningParams params = BaseParams();
  params.theta = 1;
  params.max_pattern_size = 3;
  MiningEngine engine(MinerKind::kCooMine, params);
  auto fcps = engine.PushSegment(
      MakeSegment(engine.AllocateSegmentId(), 0, {1, 2, 3}, 100));
  // 3 singletons + 3 pairs + 1 triple, all supported by one stream.
  EXPECT_EQ(fcps.size(), 7u);
}

TEST(EdgeCaseTest, TauEqualsXi) {
  MiningParams params = BaseParams();
  params.tau = params.xi;  // smallest legal tau
  ASSERT_TRUE(params.Validate().ok());
  MiningEngine engine(MinerKind::kCooMine, params);
  engine.PushSegment(MakeSegment(engine.AllocateSegmentId(), 0, {5}, 0));
  // Within tau: counts.
  auto hit = engine.PushSegment(
      MakeSegment(engine.AllocateSegmentId(), 1, {5}, Seconds(30)));
  EXPECT_EQ(hit.size(), 1u);
  // A third occurrence beyond tau of the first but within tau of the
  // second still finds theta=2 supporters.
  auto hit2 = engine.PushSegment(
      MakeSegment(engine.AllocateSegmentId(), 2, {5}, Seconds(80)));
  EXPECT_EQ(hit2.size(), 1u);
}

TEST(EdgeCaseTest, MinEqualsMaxPatternSize) {
  MiningParams params = BaseParams();
  params.min_pattern_size = 3;
  params.max_pattern_size = 3;
  MiningEngine engine(MinerKind::kDiMine, params);
  engine.PushSegment(MakeSegment(engine.AllocateSegmentId(), 0, {1, 2, 3}, 0));
  auto fcps = engine.PushSegment(
      MakeSegment(engine.AllocateSegmentId(), 1, {1, 2, 3}, 100));
  ASSERT_EQ(fcps.size(), 1u);
  EXPECT_EQ(fcps[0].objects, (Pattern{1, 2, 3}));
}

TEST(EdgeCaseTest, SingleStreamNeverFrequentAtThetaTwo) {
  MiningEngine engine(MinerKind::kCooMine, BaseParams());
  std::vector<Fcp> all;
  for (int i = 0; i < 50; ++i) {
    for (Fcp& f : engine.PushSegment(MakeSegment(
             engine.AllocateSegmentId(), 0, {1, 2}, Minutes(i)))) {
      all.push_back(std::move(f));
    }
  }
  EXPECT_TRUE(all.empty());
}

TEST(EdgeCaseTest, ManyStreamsSameInstant) {
  // 100 streams all emit {7,8} at the same timestamp.
  MiningParams params = BaseParams();
  params.theta = 100;
  params.min_pattern_size = 2;
  MiningEngine engine(MinerKind::kCooMine, params);
  std::vector<Fcp> all;
  for (StreamId s = 0; s < 100; ++s) {
    for (Fcp& f : engine.PushSegment(
             MakeSegment(engine.AllocateSegmentId(), s, {7, 8}, 1000))) {
      all.push_back(std::move(f));
    }
  }
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].objects, (Pattern{7, 8}));
  EXPECT_EQ(all[0].streams.size(), 100u);
}

TEST(EdgeCaseTest, ZeroSpanSegments) {
  // Tweet-style: every segment has span 0; boundary of Definition 2.
  MiningEngine engine(MinerKind::kMatrixMine, BaseParams());
  engine.PushSegment(MakeSegment(engine.AllocateSegmentId(), 0, {4, 4, 4}, 7));
  auto fcps = engine.PushSegment(
      MakeSegment(engine.AllocateSegmentId(), 1, {4}, 9));
  ASSERT_EQ(fcps.size(), 1u);
  EXPECT_EQ(fcps[0].objects, (Pattern{4}));
}

TEST(EdgeCaseTest, PatternVanishesAfterTau) {
  MiningEngine engine(MinerKind::kCooMine, BaseParams());
  engine.PushSegment(MakeSegment(engine.AllocateSegmentId(), 0, {9}, 0));
  auto hit = engine.PushSegment(
      MakeSegment(engine.AllocateSegmentId(), 1, {9}, Minutes(10)));
  EXPECT_EQ(hit.size(), 1u);
  // 31 minutes later both supporters are stale; a new single occurrence in
  // a third stream is not frequent.
  auto miss = engine.PushSegment(
      MakeSegment(engine.AllocateSegmentId(), 2, {9}, Minutes(41)));
  EXPECT_TRUE(miss.empty());
}

TEST(EdgeCaseTest, VeryLongSegment) {
  // One segment with 500 entries cycling 30 distinct objects, capped.
  MiningParams params = BaseParams();
  params.theta = 1;
  params.max_segment_objects = 8;
  params.max_pattern_size = 2;
  MiningEngine engine(MinerKind::kCooMine, params);
  std::vector<SegmentEntry> entries;
  for (int i = 0; i < 500; ++i) {
    entries.push_back(SegmentEntry{static_cast<ObjectId>(i % 30),
                                   static_cast<Timestamp>(i * 10)});
  }
  auto fcps = engine.PushSegment(
      Segment(engine.AllocateSegmentId(), 0, std::move(entries)));
  // Capped at 8 objects: 8 singletons + C(8,2) pairs.
  EXPECT_EQ(fcps.size(), 8u + 28u);
}

TEST(EdgeCaseTest, InterleavedBurstsAcrossManyStreams) {
  // Deterministic stress: 20 streams, alternating shared/unshared bursts;
  // miners must agree and never crash (invariants checked via CooMine).
  MiningParams params = BaseParams();
  params.theta = 5;
  params.max_pattern_size = 3;
  Rng rng(123);
  MiningEngine coo(MinerKind::kCooMine, params);
  MiningEngine di(MinerKind::kDiMine, params);
  std::vector<Fcp> coo_all, di_all;
  Timestamp now = 0;
  for (int burst = 0; burst < 60; ++burst) {
    now += Minutes(1);
    const bool shared = burst % 3 == 0;
    const ObjectId base = shared ? 1000 : static_cast<ObjectId>(burst);
    for (StreamId s = 0; s < 20; ++s) {
      if (!shared && !rng.Chance(0.4)) continue;
      for (ObjectId o = base; o < base + 3; ++o) {
        const ObjectEvent event{s, o, now + static_cast<Timestamp>(s)};
        for (Fcp& f : coo.PushEvent(event)) coo_all.push_back(std::move(f));
        for (Fcp& f : di.PushEvent(event)) di_all.push_back(std::move(f));
      }
    }
  }
  for (Fcp& f : coo.Flush()) coo_all.push_back(std::move(f));
  for (Fcp& f : di.Flush()) di_all.push_back(std::move(f));
  EXPECT_EQ(testing::SignaturesOf(coo_all), testing::SignaturesOf(di_all));
  EXPECT_FALSE(coo_all.empty());
  static_cast<const CooMine&>(coo.miner()).seg_tree().CheckInvariants();
}

TEST(EdgeCaseTest, ObjectIdExtremes) {
  MiningEngine engine(MinerKind::kCooMine, BaseParams());
  const ObjectId huge = 0xfffffffeu;
  engine.PushSegment(MakeSegment(engine.AllocateSegmentId(), 0, {0, huge}, 0));
  auto fcps = engine.PushSegment(
      MakeSegment(engine.AllocateSegmentId(), 1, {0, huge}, 50));
  EXPECT_EQ(PatternsOf(fcps),
            (std::set<Pattern>{{0}, {huge}, {0, huge}}));
}

TEST(EdgeCaseTest, LargeTimestamps) {
  // Timestamps near the year-292471806 boundary of int64 milliseconds are
  // irrelevant, but ~2^53 exercises arithmetic robustness.
  MiningEngine engine(MinerKind::kDiMine, BaseParams());
  const Timestamp base = int64_t{1} << 53;
  engine.PushSegment(MakeSegment(engine.AllocateSegmentId(), 0, {3}, base));
  auto fcps = engine.PushSegment(
      MakeSegment(engine.AllocateSegmentId(), 1, {3}, base + Seconds(10)));
  EXPECT_EQ(fcps.size(), 1u);
}

TEST(EdgeCaseTest, SuppressionAcrossEpisodes) {
  EngineOptions options;
  options.suppression_window = Minutes(60);
  MiningParams params = BaseParams();
  MiningEngine engine(MinerKind::kCooMine, params, options);
  auto push = [&](StreamId s, Timestamp t) {
    return engine.PushSegment(
        MakeSegment(engine.AllocateSegmentId(), s, {5}, t));
  };
  push(0, 0);
  EXPECT_EQ(push(1, Minutes(1)).size(), 1u);   // first episode reported
  EXPECT_TRUE(push(2, Minutes(2)).empty());    // suppressed
  // A second episode two hours later is reported again.
  push(0, Minutes(120));
  EXPECT_EQ(push(1, Minutes(121)).size(), 1u);
}

}  // namespace
}  // namespace fcp
