#include "core/parallel_engine.h"

#include <algorithm>
#include <map>
#include <set>
#include <span>
#include <tuple>

#include <gtest/gtest.h>

#include "core/mining_engine.h"
#include "datagen/traffic_gen.h"
#include "test_util.h"

namespace fcp {
namespace {

MiningParams Params() {
  MiningParams params;
  params.xi = Seconds(60);
  params.tau = Minutes(30);
  params.theta = 3;
  params.min_pattern_size = 2;
  params.max_pattern_size = 4;
  return params;
}

TrafficTrace Trace(uint64_t seed = 31) {
  TrafficConfig config;
  config.num_cameras = 20;
  config.num_vehicles = 1000;
  config.total_events = 8000;
  config.num_convoys = 4;
  config.seed = seed;
  return GenerateTraffic(config);
}

using testing::IsGenuineFcp;

TEST(ParallelEngineTest, RecoversPlantedConvoys) {
  const TrafficTrace trace = Trace();
  ParallelEngineOptions options;
  options.num_workers = 3;
  ParallelEngine engine(MinerKind::kCooMine, Params(), options);
  for (const ObjectEvent& event : trace.events) engine.Push(event);
  engine.Finish();

  const std::set<Pattern> found = testing::PatternsOf(engine.results());
  for (const ConvoyPlan& convoy : trace.convoys) {
    for (size_t i = 0; i < convoy.vehicles.size(); ++i) {
      for (size_t j = i + 1; j < convoy.vehicles.size(); ++j) {
        Pattern pair = {convoy.vehicles[i], convoy.vehicles[j]};
        std::sort(pair.begin(), pair.end());
        EXPECT_TRUE(found.contains(pair))
            << "convoy pair " << testing::ToString(pair) << " missing";
      }
    }
  }
  EXPECT_EQ(engine.events_pushed(), trace.events.size());
  EXPECT_GT(engine.segments_completed(), 0u);
}

TEST(ParallelEngineTest, EveryEmittedPatternIsSound) {
  const MiningParams params = Params();
  const TrafficTrace trace = Trace(32);
  ParallelEngineOptions options;
  options.num_workers = 4;
  ParallelEngine engine(MinerKind::kCooMine, params, options);
  for (const ObjectEvent& event : trace.events) engine.Push(event);
  engine.Finish();

  const std::set<Pattern> found = testing::PatternsOf(engine.results());
  ASSERT_FALSE(found.empty());
  for (const Pattern& pattern : found) {
    EXPECT_TRUE(IsGenuineFcp(trace.events, pattern, params))
        << testing::ToString(pattern) << " is not a genuine FCP";
  }
}

TEST(ParallelEngineTest, MatchesSerialEngineOnPatternSet) {
  // With workers >= streams progressing at comparable pace and a final
  // flush, the discovered pattern set matches the serial engine's.
  const MiningParams params = Params();
  const TrafficTrace trace = Trace(33);

  MiningEngine serial(MinerKind::kCooMine, params);
  std::vector<Fcp> serial_all;
  for (const ObjectEvent& event : trace.events) {
    for (Fcp& f : serial.PushEvent(event)) serial_all.push_back(std::move(f));
  }
  for (Fcp& f : serial.Flush()) serial_all.push_back(std::move(f));

  ParallelEngineOptions options;
  options.num_workers = 2;
  ParallelEngine parallel(MinerKind::kCooMine, params, options);
  for (const ObjectEvent& event : trace.events) parallel.Push(event);
  parallel.Finish();

  EXPECT_EQ(testing::PatternsOf(parallel.results()),
            testing::PatternsOf(serial_all));
}

TEST(ParallelEngineTest, SingleWorkerStillWorks) {
  ParallelEngineOptions options;
  options.num_workers = 1;
  ParallelEngine engine(MinerKind::kDiMine, Params(), options);
  const TrafficTrace trace = Trace(34);
  for (const ObjectEvent& event : trace.events) engine.Push(event);
  engine.Finish();
  EXPECT_GT(engine.results().size(), 0u);
}

TEST(ParallelEngineTest, PushBatchMatchesPerEventPush) {
  // One worker removes merge skew, so batch and per-event ingestion must
  // produce identical results (the batch path only changes queue handoff).
  const TrafficTrace trace = Trace(35);
  ParallelEngineOptions options;
  options.num_workers = 1;

  ParallelEngine per_event(MinerKind::kCooMine, Params(), options);
  for (const ObjectEvent& event : trace.events) per_event.Push(event);
  per_event.Finish();

  ParallelEngine batched(MinerKind::kCooMine, Params(), options);
  constexpr size_t kBatch = 97;
  for (size_t i = 0; i < trace.events.size(); i += kBatch) {
    const size_t n = std::min(kBatch, trace.events.size() - i);
    batched.PushBatch(std::span(trace.events.data() + i, n));
  }
  batched.Finish();

  EXPECT_EQ(batched.events_pushed(), per_event.events_pushed());
  EXPECT_EQ(batched.segments_completed(), per_event.segments_completed());
  EXPECT_EQ(testing::FullSignatures(batched.results()),
            testing::FullSignatures(per_event.results()));
}

TEST(ParallelEngineTest, PushBatchSplitsRunsAcrossWorkers) {
  // Multi-worker smoke test: the run-splitting must deliver every event to
  // the right worker (soundness is checked by the dedicated tests; here we
  // just confirm nothing is lost and the pipeline completes).
  const TrafficTrace trace = Trace(36);
  ParallelEngineOptions options;
  options.num_workers = 3;
  ParallelEngine engine(MinerKind::kDiMine, Params(), options);
  engine.PushBatch(std::span(trace.events.data(), trace.events.size()));
  engine.Finish();
  EXPECT_EQ(engine.events_pushed(), trace.events.size());
  EXPECT_GT(engine.results().size(), 0u);
}

TEST(ParallelEngineTest, FinishIsIdempotent) {
  ParallelEngine engine(MinerKind::kCooMine, Params());
  engine.Push({0, 1, 100});
  engine.Finish();
  engine.Finish();
  SUCCEED();
}

TEST(ParallelEngineTest, EmptyRun) {
  ParallelEngine engine(MinerKind::kCooMine, Params());
  engine.Finish();
  EXPECT_TRUE(engine.results().empty());
  EXPECT_EQ(engine.segments_completed(), 0u);
}

using testing::FullSignatures;

TEST(ParallelEngineTest, ShardedEngineMatchesSerialByteForByte) {
  // One worker removes merge skew, so every shard count must reproduce the
  // serial engine's discoveries exactly (triggers, streams, windows).
  const MiningParams params = Params();
  const TrafficTrace trace = Trace(36);

  MiningEngine serial(MinerKind::kCooMine, params);
  std::vector<Fcp> serial_all;
  for (const ObjectEvent& event : trace.events) {
    for (Fcp& f : serial.PushEvent(event)) serial_all.push_back(std::move(f));
  }
  for (Fcp& f : serial.Flush()) serial_all.push_back(std::move(f));
  ASSERT_FALSE(serial_all.empty());

  for (uint32_t shards : {2u, 4u}) {
    ParallelEngineOptions options;
    options.num_workers = 1;
    options.num_miner_shards = shards;
    ParallelEngine engine(MinerKind::kCooMine, params, options);
    for (const ObjectEvent& event : trace.events) engine.Push(event);
    engine.Finish();
    EXPECT_EQ(FullSignatures(engine.results()), FullSignatures(serial_all))
        << "shard count " << shards;
  }
}

TEST(ParallelEngineTest, ShardedEngineIsSoundAndRecoversConvoys) {
  const MiningParams params = Params();
  const TrafficTrace trace = Trace(37);
  ParallelEngineOptions options;
  options.num_workers = 3;
  options.num_miner_shards = 3;
  ParallelEngine engine(MinerKind::kCooMine, params, options);
  for (const ObjectEvent& event : trace.events) engine.Push(event);
  engine.Finish();

  const std::set<Pattern> found = testing::PatternsOf(engine.results());
  ASSERT_FALSE(found.empty());
  for (const Pattern& pattern : found) {
    EXPECT_TRUE(IsGenuineFcp(trace.events, pattern, params))
        << testing::ToString(pattern) << " is not a genuine FCP";
  }
  for (const ConvoyPlan& convoy : trace.convoys) {
    for (size_t i = 0; i < convoy.vehicles.size(); ++i) {
      for (size_t j = i + 1; j < convoy.vehicles.size(); ++j) {
        Pattern pair = {convoy.vehicles[i], convoy.vehicles[j]};
        std::sort(pair.begin(), pair.end());
        EXPECT_TRUE(found.contains(pair))
            << "convoy pair " << testing::ToString(pair) << " missing";
      }
    }
  }
  EXPECT_EQ(engine.router_stats().segments_routed,
            engine.segments_completed());
  EXPECT_GE(engine.router_stats().deliveries,
            engine.router_stats().segments_routed);
}

TEST(ParallelEngineTest, SmallShardQueuesExerciseBackpressure) {
  ParallelEngineOptions options;
  options.num_workers = 2;
  options.num_miner_shards = 4;
  options.event_queue_capacity = 4;
  options.segment_queue_capacity = 4;
  options.shard_queue_capacity = 2;
  ParallelEngine engine(MinerKind::kCooMine, Params(), options);
  const TrafficTrace trace = Trace(38);
  for (const ObjectEvent& event : trace.events) engine.Push(event);
  engine.Finish();
  EXPECT_EQ(engine.events_pushed(), trace.events.size());
  EXPECT_GT(engine.segments_completed(), 0u);
}

TEST(ParallelEngineTest, SmallQueuesExerciseBackpressure) {
  ParallelEngineOptions options;
  options.num_workers = 2;
  options.event_queue_capacity = 4;
  options.segment_queue_capacity = 4;
  ParallelEngine engine(MinerKind::kCooMine, Params(), options);
  const TrafficTrace trace = Trace(35);
  for (const ObjectEvent& event : trace.events) engine.Push(event);
  engine.Finish();
  EXPECT_EQ(engine.events_pushed(), trace.events.size());
  EXPECT_GT(engine.segments_completed(), 0u);
}

}  // namespace
}  // namespace fcp
