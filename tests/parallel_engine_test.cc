#include "core/parallel_engine.h"

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/mining_engine.h"
#include "datagen/traffic_gen.h"
#include "test_util.h"

namespace fcp {
namespace {

MiningParams Params() {
  MiningParams params;
  params.xi = Seconds(60);
  params.tau = Minutes(30);
  params.theta = 3;
  params.min_pattern_size = 2;
  params.max_pattern_size = 4;
  return params;
}

TrafficTrace Trace(uint64_t seed = 31) {
  TrafficConfig config;
  config.num_cameras = 20;
  config.num_vehicles = 1000;
  config.total_events = 8000;
  config.num_convoys = 4;
  config.seed = seed;
  return GenerateTraffic(config);
}

// Offline Definition-3 checker: does `pattern` appear in >= theta distinct
// streams, each appearance within xi, all within one tau window?
bool IsGenuineFcp(const std::vector<ObjectEvent>& events,
                  const Pattern& pattern, const MiningParams& params) {
  // Occurrences per stream: sliding window over the stream's events finding
  // windows of span <= xi containing all pattern objects.
  std::map<StreamId, std::vector<ObjectEvent>> per_stream;
  for (const ObjectEvent& e : events) per_stream[e.stream].push_back(e);
  std::vector<std::pair<StreamId, Timestamp>> occurrences;  // (stream, time)
  for (const auto& [stream, stream_events] : per_stream) {
    for (size_t l = 0; l < stream_events.size(); ++l) {
      std::set<ObjectId> seen;
      for (size_t r = l; r < stream_events.size() &&
                         stream_events[r].time - stream_events[l].time <=
                             params.xi;
           ++r) {
        if (std::binary_search(pattern.begin(), pattern.end(),
                               stream_events[r].object)) {
          seen.insert(stream_events[r].object);
        }
        if (seen.size() == pattern.size()) {
          occurrences.push_back({stream, stream_events[l].time});
          break;
        }
      }
    }
  }
  // Any tau window covering >= theta distinct streams?
  std::sort(occurrences.begin(), occurrences.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  for (size_t i = 0; i < occurrences.size(); ++i) {
    std::set<StreamId> streams;
    for (size_t j = i; j < occurrences.size() &&
                       occurrences[j].second - occurrences[i].second <=
                           params.tau;
         ++j) {
      streams.insert(occurrences[j].first);
    }
    if (streams.size() >= params.theta) return true;
  }
  return false;
}

TEST(ParallelEngineTest, RecoversPlantedConvoys) {
  const TrafficTrace trace = Trace();
  ParallelEngineOptions options;
  options.num_workers = 3;
  ParallelEngine engine(MinerKind::kCooMine, Params(), options);
  for (const ObjectEvent& event : trace.events) engine.Push(event);
  engine.Finish();

  const std::set<Pattern> found = testing::PatternsOf(engine.results());
  for (const ConvoyPlan& convoy : trace.convoys) {
    for (size_t i = 0; i < convoy.vehicles.size(); ++i) {
      for (size_t j = i + 1; j < convoy.vehicles.size(); ++j) {
        Pattern pair = {convoy.vehicles[i], convoy.vehicles[j]};
        std::sort(pair.begin(), pair.end());
        EXPECT_TRUE(found.contains(pair))
            << "convoy pair " << testing::ToString(pair) << " missing";
      }
    }
  }
  EXPECT_EQ(engine.events_pushed(), trace.events.size());
  EXPECT_GT(engine.segments_completed(), 0u);
}

TEST(ParallelEngineTest, EveryEmittedPatternIsSound) {
  const MiningParams params = Params();
  const TrafficTrace trace = Trace(32);
  ParallelEngineOptions options;
  options.num_workers = 4;
  ParallelEngine engine(MinerKind::kCooMine, params, options);
  for (const ObjectEvent& event : trace.events) engine.Push(event);
  engine.Finish();

  const std::set<Pattern> found = testing::PatternsOf(engine.results());
  ASSERT_FALSE(found.empty());
  for (const Pattern& pattern : found) {
    EXPECT_TRUE(IsGenuineFcp(trace.events, pattern, params))
        << testing::ToString(pattern) << " is not a genuine FCP";
  }
}

TEST(ParallelEngineTest, MatchesSerialEngineOnPatternSet) {
  // With workers >= streams progressing at comparable pace and a final
  // flush, the discovered pattern set matches the serial engine's.
  const MiningParams params = Params();
  const TrafficTrace trace = Trace(33);

  MiningEngine serial(MinerKind::kCooMine, params);
  std::vector<Fcp> serial_all;
  for (const ObjectEvent& event : trace.events) {
    for (Fcp& f : serial.PushEvent(event)) serial_all.push_back(std::move(f));
  }
  for (Fcp& f : serial.Flush()) serial_all.push_back(std::move(f));

  ParallelEngineOptions options;
  options.num_workers = 2;
  ParallelEngine parallel(MinerKind::kCooMine, params, options);
  for (const ObjectEvent& event : trace.events) parallel.Push(event);
  parallel.Finish();

  EXPECT_EQ(testing::PatternsOf(parallel.results()),
            testing::PatternsOf(serial_all));
}

TEST(ParallelEngineTest, SingleWorkerStillWorks) {
  ParallelEngineOptions options;
  options.num_workers = 1;
  ParallelEngine engine(MinerKind::kDiMine, Params(), options);
  const TrafficTrace trace = Trace(34);
  for (const ObjectEvent& event : trace.events) engine.Push(event);
  engine.Finish();
  EXPECT_GT(engine.results().size(), 0u);
}

TEST(ParallelEngineTest, FinishIsIdempotent) {
  ParallelEngine engine(MinerKind::kCooMine, Params());
  engine.Push({0, 1, 100});
  engine.Finish();
  engine.Finish();
  SUCCEED();
}

TEST(ParallelEngineTest, EmptyRun) {
  ParallelEngine engine(MinerKind::kCooMine, Params());
  engine.Finish();
  EXPECT_TRUE(engine.results().empty());
  EXPECT_EQ(engine.segments_completed(), 0u);
}

TEST(ParallelEngineTest, SmallQueuesExerciseBackpressure) {
  ParallelEngineOptions options;
  options.num_workers = 2;
  options.event_queue_capacity = 4;
  options.segment_queue_capacity = 4;
  ParallelEngine engine(MinerKind::kCooMine, Params(), options);
  const TrafficTrace trace = Trace(35);
  for (const ObjectEvent& event : trace.events) engine.Push(event);
  engine.Finish();
  EXPECT_EQ(engine.events_pushed(), trace.events.size());
  EXPECT_GT(engine.segments_completed(), 0u);
}

}  // namespace
}  // namespace fcp
