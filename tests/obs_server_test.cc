#include "obs/obs_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/types.h"
#include "core/parallel_engine.h"
#include "obs/endpoints.h"
#include "obs/http.h"
#include "obs/watchdog.h"
#include "telemetry/registry.h"

namespace fcp::obs {
namespace {

// Minimal blocking HTTP client: one request, read to EOF (the server always
// closes), return the raw response. Returns "" on connect failure.
std::string Fetch(uint16_t port, const std::string& raw_request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < raw_request.size()) {
    const ssize_t n =
        ::send(fd, raw_request.data() + sent, raw_request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(uint16_t port, const std::string& path) {
  return Fetch(port, "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
}

int StatusOf(const std::string& response) {
  // "HTTP/1.1 200 OK\r\n..."
  if (response.size() < 12) return -1;
  return std::atoi(response.c_str() + 9);
}

std::string BodyOf(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(HttpParseTest, RequestLineAndQueryStripping) {
  HttpRequest request;
  EXPECT_EQ(ParseHttpRequest("GET /metrics HTTP/1.1\r\n\r\n", &request),
            ParseResult::kOk);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/metrics");
  EXPECT_EQ(
      ParseHttpRequest("GET /varz?pretty=1 HTTP/1.1\r\n\r\n", &request),
      ParseResult::kOk);
  EXPECT_EQ(request.target, "/varz");
  // Bare-LF framing (curl never sends it, netcat users do).
  EXPECT_EQ(ParseHttpRequest("GET / HTTP/1.0\n\n", &request),
            ParseResult::kOk);
}

TEST(HttpParseTest, IncompleteAndMalformed) {
  HttpRequest request;
  EXPECT_EQ(ParseHttpRequest("GET /metr", &request),
            ParseResult::kIncomplete);
  EXPECT_EQ(ParseHttpRequest("GET /metrics HTTP/1.1\r\nHost: x\r\n", &request),
            ParseResult::kIncomplete);
  EXPECT_EQ(ParseHttpRequest("NOT-HTTP\r\n\r\n", &request), ParseResult::kBad);
  EXPECT_EQ(ParseHttpRequest("GET metrics HTTP/1.1\r\n\r\n", &request),
            ParseResult::kBad);  // target must start with '/'
  EXPECT_EQ(ParseHttpRequest("GET / SMTP/1.0\r\n\r\n", &request),
            ParseResult::kBad);
}

TEST(HttpRenderTest, ResponseEnvelope) {
  const std::string response =
      RenderHttpResponse(200, "text/plain", "hello\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 6\r\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(BodyOf(response), "hello\n");
  // HEAD: same headers (same Content-Length), empty payload.
  const std::string head =
      RenderHttpResponse(200, "text/plain", "hello\n", /*head_only=*/true);
  EXPECT_NE(head.find("Content-Length: 6\r\n"), std::string::npos);
  EXPECT_EQ(BodyOf(head), "");
}

TEST(ObsServerTest, ServesHandlersAndRejectsTheRest) {
  ObsServer server;  // ephemeral port
  server.SetHandler("/ping", [] {
    HttpResponse response;
    response.body = "pong\n";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();
  ASSERT_NE(port, 0);

  const std::string ok = Get(port, "/ping");
  EXPECT_EQ(StatusOf(ok), 200);
  EXPECT_EQ(BodyOf(ok), "pong\n");

  EXPECT_EQ(StatusOf(Get(port, "/nope")), 404);
  EXPECT_EQ(StatusOf(Fetch(port, "POST /ping HTTP/1.1\r\n\r\n")), 405);
  EXPECT_EQ(StatusOf(Fetch(port, "GARBAGE\r\n\r\n")), 400);

  // HEAD answers with headers only.
  const std::string head = Fetch(port, "HEAD /ping HTTP/1.1\r\n\r\n");
  EXPECT_EQ(StatusOf(head), 200);
  EXPECT_EQ(BodyOf(head), "");

  // Parsed requests (200/404/405/HEAD) count as served; the malformed one
  // lands in fcp_obs_bad_requests_total instead.
  EXPECT_GE(server.requests_served(), 4u);
  server.Stop();
  server.Stop();  // idempotent
}

TEST(ObsServerTest, OversizedRequestGets431) {
  ObsServerOptions options;
  options.max_request_bytes = 128;
  ObsServer server(options);
  server.SetHandler("/x", [] { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  const std::string long_path(4096, 'a');
  EXPECT_EQ(StatusOf(Get(server.port(), "/" + long_path)), 431);
  server.Stop();
}

TEST(ObsServerTest, ConnectionCapRejectsWith503) {
  ObsServerOptions options;
  options.max_connections = 2;
  ObsServer server(options);
  server.SetHandler("/x", [] { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  // Two idle connections hold the cap; the third is told 503 and closed.
  auto open_idle = [port] {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    return fd;
  };
  const int a = open_idle();
  const int b = open_idle();
  // The accept of a/b is asynchronous; poll until the server rejects.
  std::string over;
  for (int attempt = 0; attempt < 100; ++attempt) {
    over = Get(port, "/x");
    if (StatusOf(over) == 503 || server.connections_rejected() > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(StatusOf(over), 503);
  EXPECT_GE(server.connections_rejected(), 1u);
  ::close(a);
  ::close(b);
  server.Stop();
}

TEST(ObsServerTest, StandardEndpointsOverRegistryAndWatchdog) {
  telemetry::MetricRegistry registry;
  registry.GetCounter("fcp_events_ingested_total")->Increment(42);
  WatchdogOptions wd_options;
  wd_options.poll_interval_ms = 0;
  Watchdog watchdog(wd_options);
  StageHeartbeat* heartbeat = watchdog.RegisterStage("stage");

  ObsServer server;
  EndpointSources sources;
  sources.registry = &registry;
  sources.watchdog = &watchdog;
  sources.pipeline_status = [] { return std::string("{\"x\":1}"); };
  InstallStandardEndpoints(server, sources);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  // Not ready yet: readyz 503, healthz 200 (starting is alive).
  EXPECT_EQ(StatusOf(Get(port, "/readyz")), 503);
  EXPECT_EQ(StatusOf(Get(port, "/healthz")), 200);

  heartbeat->Beat();
  watchdog.SetReady();
  watchdog.EvaluateOnce(0);
  EXPECT_EQ(StatusOf(Get(port, "/readyz")), 200);

  const std::string metrics = Get(port, "/metrics");
  EXPECT_EQ(StatusOf(metrics), 200);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("fcp_events_ingested_total 42"), std::string::npos);

  const std::string varz = Get(port, "/varz");
  EXPECT_NE(varz.find("application/json"), std::string::npos);
  EXPECT_NE(varz.find("\"fcp_events_ingested_total\": 42"),
            std::string::npos);

  const std::string statusz = BodyOf(Get(port, "/statusz"));
  EXPECT_NE(statusz.find("\"pipeline\":{\"x\":1}"), std::string::npos);
  EXPECT_NE(statusz.find("\"watchdog\":{\"state\":\"healthy\""),
            std::string::npos);

  EXPECT_EQ(StatusOf(Get(port, "/tracez")), 200);
  EXPECT_NE(BodyOf(Get(port, "/tracez")).find("\"recent_slow_ops\""),
            std::string::npos);

  // A stall flips healthz to 503 (wedged consumer: busy, no progress).
  heartbeat->MarkIdle(false);
  watchdog.EvaluateOnce(3'000'000'000);  // default stall timeout is 2s
  EXPECT_EQ(watchdog.state(), HealthState::kStalled);
  EXPECT_EQ(StatusOf(Get(port, "/healthz")), 503);
  EXPECT_EQ(StatusOf(Get(port, "/readyz")), 503);

  server.Stop();
}

TEST(ObsServerTest, ConcurrentScrapesDuringActiveMiningAreBenign) {
  // The acceptance shape of ISSUE 8: hammer every endpoint from several
  // client threads while the sharded pipeline mines, and require both that
  // every scrape is well-formed and that the mined output is byte-identical
  // to an unscrapted run.
  MiningParams params;
  params.xi = 100;
  params.tau = 2000;
  params.theta = 2;
  auto make_events = [] {
    std::vector<ObjectEvent> events;
    for (uint32_t i = 0; i < 6000; ++i) {
      events.push_back(ObjectEvent{/*stream=*/i % 7, /*object=*/i % 11,
                                   /*time=*/static_cast<Timestamp>(i * 10)});
    }
    return events;
  };

  auto run = [&](bool scrape) {
    telemetry::MetricRegistry registry;
    WatchdogOptions wd_options;
    wd_options.poll_interval_ms = 10;
    wd_options.metrics = &registry;
    Watchdog watchdog(wd_options);
    ParallelEngineOptions options;
    options.num_workers = 2;
    options.num_miner_shards = 4;
    options.rebalance = true;
    options.steal = true;
    options.metrics = &registry;
    options.watchdog = &watchdog;
    ParallelEngine engine(MinerKind::kCooMine, params, options);

    ObsServer server;
    std::vector<std::thread> scrapers;
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> bad{0};
    if (scrape) {
      EndpointSources sources;
      sources.registry = &registry;
      sources.watchdog = &watchdog;
      sources.pipeline_status = [&engine] { return engine.StatusJson(); };
      sources.refresh = [&engine] { engine.SnapshotMetrics(); };
      InstallStandardEndpoints(server, sources);
      EXPECT_TRUE(server.Start().ok());
      watchdog.Start();
      watchdog.SetReady();
      const uint16_t port = server.port();
      for (int t = 0; t < 3; ++t) {
        scrapers.emplace_back([port, &stop, &bad] {
          const char* paths[] = {"/metrics", "/statusz", "/varz", "/healthz"};
          size_t k = 0;
          while (!stop.load(std::memory_order_relaxed)) {
            const std::string response = Get(port, paths[k++ % 4]);
            if (StatusOf(response) != 200) {
              bad.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
      }
    }
    for (const ObjectEvent& event : make_events()) engine.Push(event);
    engine.Finish();
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& thread : scrapers) thread.join();
    watchdog.Stop();
    server.Stop();
    EXPECT_EQ(bad.load(), 0u);
    return engine.results();
  };

  const std::vector<Fcp> baseline = run(/*scrape=*/false);
  const std::vector<Fcp> scraped = run(/*scrape=*/true);
  ASSERT_FALSE(baseline.empty());
  ASSERT_EQ(baseline.size(), scraped.size());
  for (size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(baseline[i].trigger, scraped[i].trigger);
    EXPECT_EQ(baseline[i].objects, scraped[i].objects);
    EXPECT_EQ(baseline[i].streams, scraped[i].streams);
    EXPECT_EQ(baseline[i].window_start, scraped[i].window_start);
    EXPECT_EQ(baseline[i].window_end, scraped[i].window_end);
  }
}

}  // namespace
}  // namespace fcp::obs
