// Rebalancer decision logic, driven through a real ShardRouter: interval
// imbalance measurement (the one definition the gauge publishes), hot-object
// move proposals, gauge-only mode, and the argmin-cumulative rotation that
// time-slices a single dominant object across shards.

#include <memory>
#include <optional>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/placement.h"
#include "stream/rebalancer.h"
#include "stream/segment.h"
#include "stream/shard_router.h"
#include "test_util.h"

namespace fcp {
namespace {

using testing::MakeSegment;

constexpr uint32_t kShards = 4;

std::unique_ptr<ShardRouter> MakeRouter() {
  ShardRouterOptions options;
  options.track_live = true;
  options.tau = Minutes(10);
  return std::make_unique<ShardRouter>(kShards, /*queue_capacity=*/65536,
                                       std::move(options));
}

// Routes a run of single-object segments for `object`, observing each.
void RouteHot(ShardRouter& router, Rebalancer& rebalancer, ObjectId object,
              uint32_t count, SegmentId& next_id, Timestamp& time) {
  for (uint32_t i = 0; i < count; ++i) {
    const SegmentRef segment = SegmentRef::Adopt(
        MakeSegment(next_id++, /*stream=*/0, {object}, time += 10));
    router.Route(segment);
    rebalancer.ObserveSegment(*segment);
  }
}

TEST(RebalancerTest, BalancedLoadNeverTriggers) {
  auto router_ptr = MakeRouter();
  ShardRouter& router = *router_ptr;
  RebalancerOptions options;
  options.interval_segments = 64;
  options.min_move_weight = 2;
  Rebalancer rebalancer(kShards, options);
  SegmentId id = 1;
  Timestamp time = 0;
  // One segment per shard per step: every interval is perfectly balanced.
  std::vector<ObjectId> per_shard(kShards);
  {
    const PlacementMap hash(kShards);
    uint32_t found = 0;
    for (ObjectId o = 0; found < kShards && o < 1000; ++o) {
      const uint32_t s = hash.shard_of(o);
      if (per_shard[s] == 0 && o != 0) {
        per_shard[s] = o;
        ++found;
      }
    }
  }
  std::shared_ptr<const PlacementMap> proposed;
  for (uint32_t step = 0; step < 64; ++step) {
    for (ObjectId object : per_shard) {
      RouteHot(router, rebalancer, object, 1, id, time);
      if (auto next = rebalancer.MaybeRebalance(router)) proposed = next;
    }
  }
  EXPECT_EQ(proposed, nullptr);
  EXPECT_GT(rebalancer.stats().rounds, 0u);
  EXPECT_EQ(rebalancer.stats().rounds_triggered, 0u);
  // max/mean == 1 exactly.
  EXPECT_EQ(rebalancer.imbalance_permille(), 1000);
}

TEST(RebalancerTest, SkewTriggersMoveOffTheHotShard) {
  auto router_ptr = MakeRouter();
  ShardRouter& router = *router_ptr;
  RebalancerOptions options;
  options.interval_segments = 100;
  options.imbalance_threshold = 1.15;
  options.min_move_weight = 8;
  Rebalancer rebalancer(kShards, options);
  SegmentId id = 1;
  Timestamp time = 0;
  constexpr ObjectId kHot = 7;
  const uint32_t hot_home = PlacementMap(kShards).shard_of(kHot);

  // 100 deliveries, ~all to the hot object's shard: imbalance ~= S.
  RouteHot(router, rebalancer, kHot, 100, id, time);
  auto next = rebalancer.MaybeRebalance(router);
  ASSERT_NE(next, nullptr);
  EXPECT_GT(rebalancer.imbalance_permille(), 3000);
  EXPECT_EQ(rebalancer.stats().rounds_triggered, 1u);
  EXPECT_GE(rebalancer.stats().objects_moved, 1u);
  // The hot object left its home shard.
  EXPECT_NE(next->shard_of(kHot), hot_home);
  EXPECT_EQ(next->version(), 1u);
}

TEST(RebalancerTest, GaugeOnlyModeMeasuresButNeverMoves) {
  auto router_ptr = MakeRouter();
  ShardRouter& router = *router_ptr;
  RebalancerOptions options;
  options.interval_segments = 50;
  options.apply_moves = false;
  Rebalancer rebalancer(kShards, options);
  SegmentId id = 1;
  Timestamp time = 0;
  RouteHot(router, rebalancer, /*object=*/3, 50, id, time);
  EXPECT_EQ(rebalancer.MaybeRebalance(router), nullptr);
  // The gauge is still live: maximal skew reads ~S * 1000.
  EXPECT_EQ(rebalancer.imbalance_permille(), 4000);
  EXPECT_EQ(rebalancer.stats().rounds_triggered, 0u);
}

TEST(RebalancerTest, HotObjectRotatesAcrossShardsOverRounds) {
  // The skew-ceiling breaker: one object dominating every interval must not
  // stay pinned to one shard. Applying each proposed placement back to the
  // router, the hot object's owner changes round over round, visiting
  // several shards — time-sliced LPT.
  auto router_ptr = MakeRouter();
  ShardRouter& router = *router_ptr;
  RebalancerOptions options;
  options.interval_segments = 64;
  options.imbalance_threshold = 1.05;
  options.min_move_weight = 4;
  Rebalancer rebalancer(kShards, options);
  SegmentId id = 1;
  Timestamp time = 0;
  constexpr ObjectId kHot = 11;

  std::set<uint32_t> owners_seen;
  owners_seen.insert(PlacementMap(kShards).shard_of(kHot));
  for (uint32_t round = 0; round < 8; ++round) {
    RouteHot(router, rebalancer, kHot, 64, id, time);
    if (auto next = rebalancer.MaybeRebalance(router)) {
      owners_seen.insert(next->shard_of(kHot));
      router.ApplyPlacement(std::move(next));
    }
    // Drain the hot shard's queue so capacity never backpressures the test.
    for (uint32_t s = 0; s < kShards; ++s) {
      while (router.queue(s).TryPop().has_value()) {
      }
    }
  }
  EXPECT_GE(owners_seen.size(), 3u)
      << "hot object stayed pinned instead of rotating";
  EXPECT_GE(rebalancer.stats().rounds_triggered, 4u);
}

TEST(RebalancerTest, ColdObjectsBelowMinWeightNeverMove) {
  auto router_ptr = MakeRouter();
  ShardRouter& router = *router_ptr;
  RebalancerOptions options;
  options.interval_segments = 40;
  options.imbalance_threshold = 1.05;
  options.min_move_weight = 1000;  // nothing can clear this
  Rebalancer rebalancer(kShards, options);
  SegmentId id = 1;
  Timestamp time = 0;
  RouteHot(router, rebalancer, /*object=*/5, 40, id, time);
  // Skewed, but no candidate clears the weight floor: no proposal.
  EXPECT_EQ(rebalancer.MaybeRebalance(router), nullptr);
  EXPECT_GT(rebalancer.imbalance_permille(), 3000);
  EXPECT_EQ(rebalancer.stats().objects_moved, 0u);
}

TEST(RebalancerTest, IntervalGateHoldsUntilEnoughSegments) {
  auto router_ptr = MakeRouter();
  ShardRouter& router = *router_ptr;
  RebalancerOptions options;
  options.interval_segments = 100;
  Rebalancer rebalancer(kShards, options);
  SegmentId id = 1;
  Timestamp time = 0;
  RouteHot(router, rebalancer, /*object=*/2, 99, id, time);
  EXPECT_EQ(rebalancer.MaybeRebalance(router), nullptr);
  EXPECT_EQ(rebalancer.stats().rounds, 0u);
  RouteHot(router, rebalancer, /*object=*/2, 1, id, time);
  rebalancer.MaybeRebalance(router);
  EXPECT_EQ(rebalancer.stats().rounds, 1u);
}

}  // namespace
}  // namespace fcp
