#include "common/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace fcp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryOk) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("xi must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "xi must be positive");
  EXPECT_EQ(s.ToString(), "InvalidArgument: xi must be positive");
}

TEST(StatusTest, AllFactories) {
  EXPECT_EQ(Status::InvalidArgument("m").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("m").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("m").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("m").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("m").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::Internal("boom");
  EXPECT_EQ(os.str(), "Internal: boom");
}

TEST(StatusTest, CopyAndMove) {
  Status a = Status::OutOfRange("range");
  Status b = a;
  EXPECT_EQ(a, b);
  Status c = std::move(a);
  EXPECT_EQ(c, b);
}

}  // namespace
}  // namespace fcp
