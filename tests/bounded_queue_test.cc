#include "stream/bounded_queue.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fcp {
namespace {

TEST(BoundedQueueTest, PushPopFifo) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
}

TEST(BoundedQueueTest, TryPushFailsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_EQ(q.size(), 2u);
  q.Pop();
  EXPECT_TRUE(q.TryPush(3));
}

TEST(BoundedQueueTest, TryPopEmptyReturnsNullopt) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.TryPop(), std::nullopt);
  q.TryPush(5);
  EXPECT_EQ(q.TryPop(), 5);
}

TEST(BoundedQueueTest, CloseWakesConsumerAndDrains) {
  BoundedQueue<int> q(4);
  q.TryPush(1);
  q.Close();
  EXPECT_FALSE(q.TryPush(2));  // closed
  EXPECT_EQ(q.Pop(), 1);       // drains remaining
  EXPECT_EQ(q.Pop(), std::nullopt);
  EXPECT_TRUE(q.closed());
}

TEST(BoundedQueueTest, BlockingPopWaitsForProducer) {
  BoundedQueue<int> q(4);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.TryPush(42);
  });
  EXPECT_EQ(q.Pop(), 42);  // blocks until producer delivers
  producer.join();
}

TEST(BoundedQueueTest, ConcurrentProducersConsumers) {
  constexpr int kPerProducer = 2000;
  BoundedQueue<int> q(64);
  std::atomic<int> consumed{0};
  std::atomic<long long> sum{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum += *v;
        ++consumed;
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        while (!q.TryPush(1)) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(consumed.load(), 2 * kPerProducer);
  EXPECT_EQ(sum.load(), 2 * kPerProducer);
}

TEST(BoundedQueueTest, DepthTracksOccupancy) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.depth(), 0u);
  q.TryPush(1);
  q.TryPush(2);
  EXPECT_EQ(q.depth(), 2u);
  q.Pop();
  EXPECT_EQ(q.depth(), 1u);
}

TEST(BoundedQueueTest, HighWatermarkIsMonotone) {
  BoundedQueue<int> q(8);
  EXPECT_EQ(q.high_watermark(), 0u);
  q.TryPush(1);
  q.TryPush(2);
  q.TryPush(3);
  EXPECT_EQ(q.high_watermark(), 3u);
  q.Pop();
  q.Pop();
  EXPECT_EQ(q.depth(), 1u);
  EXPECT_EQ(q.high_watermark(), 3u);  // drains never lower the watermark
  q.TryPush(4);
  EXPECT_EQ(q.high_watermark(), 3u);  // depth 2 < previous peak 3
  q.TryPush(5);
  q.TryPush(6);
  EXPECT_EQ(q.high_watermark(), 4u);
}

TEST(BoundedQueueTest, HighWatermarkViaBlockingPush) {
  BoundedQueue<int> q(4);
  q.Push(1);
  q.Push(2);
  EXPECT_EQ(q.high_watermark(), 2u);
}

TEST(BoundedQueueTest, HighWatermarkUnderConcurrentPushPop) {
  constexpr int kPerProducer = 4000;
  constexpr size_t kCapacity = 32;
  BoundedQueue<int> q(kCapacity);
  std::atomic<int> consumed{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (q.Pop()) ++consumed;
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) q.Push(i);
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(consumed.load(), 2 * kPerProducer);
  EXPECT_EQ(q.depth(), 0u);
  // The peak is racy by nature but always bounded: at least one item was
  // enqueued, never more than capacity.
  EXPECT_GE(q.high_watermark(), 1u);
  EXPECT_LE(q.high_watermark(), kCapacity);
}

TEST(BoundedQueueTest, PushAllKeepsFifoOrder) {
  BoundedQueue<int> q(16);
  std::vector<int> batch = {1, 2, 3, 4, 5};
  EXPECT_EQ(q.PushAll(&batch), 5u);
  EXPECT_TRUE(batch.empty());  // elements moved out, buffer reusable
  for (int want = 1; want <= 5; ++want) {
    auto got = q.TryPop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, want);
  }
  std::vector<int> empty;
  EXPECT_EQ(q.PushAll(&empty), 0u);
}

TEST(BoundedQueueTest, PushAllLargerThanCapacityBlocksUntilDrained) {
  // A batch 4x the capacity must flow through in chunks while a consumer
  // drains, preserving order and losing nothing.
  constexpr size_t kCapacity = 8;
  constexpr int kTotal = 32;
  BoundedQueue<int> q(kCapacity);
  std::vector<int> popped;
  std::thread consumer([&] {
    while (auto item = q.Pop()) popped.push_back(*item);
  });
  std::vector<int> batch;
  for (int i = 0; i < kTotal; ++i) batch.push_back(i);
  EXPECT_EQ(q.PushAll(&batch), static_cast<size_t>(kTotal));
  q.Close();
  consumer.join();
  ASSERT_EQ(popped.size(), static_cast<size_t>(kTotal));
  for (int i = 0; i < kTotal; ++i) EXPECT_EQ(popped[i], i);
  EXPECT_EQ(q.high_watermark(), kCapacity);
}

TEST(BoundedQueueTest, HighWatermarkAcrossPushAllBursts) {
  // Burst ingestion is the RouteBatch path: the watermark must capture the
  // peak occupancy of every burst, not just single-Push increments, and
  // must survive full drains between bursts.
  BoundedQueue<int> q(16);
  std::vector<int> burst = {1, 2, 3, 4, 5};
  EXPECT_EQ(q.PushAll(&burst), 5u);
  EXPECT_EQ(q.high_watermark(), 5u);
  while (q.TryPop()) {
  }
  EXPECT_EQ(q.depth(), 0u);

  burst = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(q.PushAll(&burst), 9u);
  EXPECT_EQ(q.high_watermark(), 9u);  // larger burst raises the peak
  while (q.TryPop()) {
  }

  burst = {1, 2, 3};
  EXPECT_EQ(q.PushAll(&burst), 3u);
  EXPECT_EQ(q.high_watermark(), 9u);  // smaller burst never lowers it
}

TEST(BoundedQueueTest, HighWatermarkCountsBurstOnTopOfResidue) {
  // A burst landing on a partially-filled queue peaks at residue + burst.
  BoundedQueue<int> q(16);
  q.Push(1);
  q.Push(2);
  q.Push(3);
  std::vector<int> burst = {4, 5, 6, 7};
  EXPECT_EQ(q.PushAll(&burst), 4u);
  EXPECT_EQ(q.high_watermark(), 7u);
}

TEST(BoundedQueueTest, HighWatermarkChunkedPushAllPeaksAtCapacity) {
  // When the burst exceeds capacity, each chunk tops the queue off, so the
  // recorded peak is exactly the capacity regardless of drain interleaving.
  constexpr size_t kCapacity = 8;
  BoundedQueue<int> q(kCapacity);
  std::thread consumer([&] {
    while (q.Pop()) {
    }
  });
  std::vector<int> burst(kCapacity * 4, 7);
  EXPECT_EQ(q.PushAll(&burst), kCapacity * 4);
  q.Close();
  consumer.join();
  EXPECT_EQ(q.high_watermark(), kCapacity);
}

TEST(BoundedQueueTest, WatermarkAndDepthSampledConcurrently) {
  // A telemetry thread samples depth()/high_watermark() while producers
  // burst PushAll and consumers drain — the accessors must be data-race
  // free (TSan runs this suite) and every sample must respect the bounds.
  constexpr size_t kCapacity = 32;
  constexpr int kBursts = 200;
  BoundedQueue<int> q(kCapacity);
  std::atomic<bool> sampling{true};
  std::atomic<int> consumed{0};

  std::thread sampler([&] {
    while (sampling.load(std::memory_order_relaxed)) {
      const size_t depth = q.depth();
      const size_t watermark = q.high_watermark();
      EXPECT_LE(depth, kCapacity);
      EXPECT_LE(watermark, kCapacity);
      std::this_thread::yield();
    }
  });
  std::thread consumer([&] {
    while (q.Pop()) ++consumed;
  });
  std::thread producer([&] {
    std::vector<int> burst;
    for (int b = 0; b < kBursts; ++b) {
      burst.assign(10, b);
      q.PushAll(&burst);
    }
  });
  producer.join();
  q.Close();
  consumer.join();
  sampling.store(false, std::memory_order_relaxed);
  sampler.join();

  EXPECT_EQ(consumed.load(), kBursts * 10);
  EXPECT_GE(q.high_watermark(), 1u);
  EXPECT_LE(q.high_watermark(), kCapacity);
}

TEST(BoundedQueueTest, PushAllOnClosedQueueEnqueuesNothing) {
  BoundedQueue<int> q(4);
  q.Close();
  std::vector<int> batch = {1, 2, 3};
  EXPECT_EQ(q.PushAll(&batch), 0u);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(q.TryPop(), std::nullopt);
}

TEST(BoundedQueueDeathTest, ZeroCapacityAborts) {
  EXPECT_DEATH(BoundedQueue<int>(0), "FCP_CHECK");
}

}  // namespace
}  // namespace fcp
