// Unit tests for the open-addressing FlatMap used by the Seg-tree's id maps.
// The randomized mirror test is the load-bearing one: backward-shift
// deletion is easy to get subtly wrong, and a wrong shift silently corrupts
// unrelated keys.

#include "util/flat_map.h"

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fcp {
namespace {

TEST(FlatMapTest, InsertFindErase) {
  FlatMap<uint64_t, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(42), nullptr);

  EXPECT_TRUE(map.Insert(42, 1));
  EXPECT_FALSE(map.Insert(42, 2)) << "duplicate insert must be rejected";
  ASSERT_NE(map.Find(42), nullptr);
  EXPECT_EQ(*map.Find(42), 1) << "rejected insert must not overwrite";
  EXPECT_EQ(map.size(), 1u);

  EXPECT_TRUE(map.Erase(42));
  EXPECT_FALSE(map.Erase(42));
  EXPECT_EQ(map.Find(42), nullptr);
  EXPECT_TRUE(map.empty());
}

TEST(FlatMapTest, SubscriptInsertsDefaultAndReturnsExisting) {
  FlatMap<uint32_t, int> map;
  map[7] = 70;
  EXPECT_EQ(map[7], 70);
  EXPECT_EQ(map[8], 0);  // default-constructed
  EXPECT_EQ(map.size(), 2u);
}

TEST(FlatMapTest, GrowsPastLoadFactorAndKeepsAllEntries) {
  FlatMap<uint64_t, uint64_t> map;
  for (uint64_t k = 0; k < 5000; ++k) map.Insert(k, k * 3);
  EXPECT_EQ(map.size(), 5000u);
  for (uint64_t k = 0; k < 5000; ++k) {
    ASSERT_NE(map.Find(k), nullptr) << "lost key " << k;
    EXPECT_EQ(*map.Find(k), k * 3);
  }
}

TEST(FlatMapTest, ReserveAvoidsRehashDuringFill) {
  FlatMap<uint64_t, int> map;
  map.Reserve(1000);
  const size_t reserved = map.MemoryUsage();
  for (uint64_t k = 0; k < 1000; ++k) map.Insert(k, 1);
  EXPECT_EQ(map.MemoryUsage(), reserved)
      << "Reserve(n) must make n inserts rehash-free";
}

TEST(FlatMapTest, IterationVisitsEveryEntryOnce) {
  FlatMap<uint32_t, uint32_t> map;
  for (uint32_t k = 10; k < 50; ++k) map.Insert(k, k + 1);
  std::set<uint32_t> seen;
  for (const auto& [key, value] : map) {
    EXPECT_EQ(value, key + 1);
    EXPECT_TRUE(seen.insert(key).second);
  }
  EXPECT_EQ(seen.size(), 40u);
}

TEST(FlatMapTest, ClearEmptiesButKeepsCapacity) {
  FlatMap<uint64_t, int> map;
  for (uint64_t k = 0; k < 100; ++k) map.Insert(k, 1);
  const size_t warm = map.MemoryUsage();
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(5), nullptr);
  EXPECT_EQ(map.MemoryUsage(), warm);
  EXPECT_TRUE(map.Insert(5, 2));
  EXPECT_EQ(*map.Find(5), 2);
}

// 50k random ops mirrored against std::unordered_map. Keys are drawn from a
// small universe so probe chains constantly collide, overlap and shift —
// exactly the regime where backward-shift deletion bugs surface.
TEST(FlatMapTest, RandomOpsMatchUnorderedMap) {
  FlatMap<uint64_t, uint64_t> map;
  std::unordered_map<uint64_t, uint64_t> mirror;
  Rng rng(2026);
  for (int op = 0; op < 50000; ++op) {
    const uint64_t key = rng.Below(512);
    switch (rng.Below(3)) {
      case 0: {
        const uint64_t value = rng.Next();
        EXPECT_EQ(map.Insert(key, value), mirror.emplace(key, value).second);
        break;
      }
      case 1: {
        EXPECT_EQ(map.Erase(key), mirror.erase(key) > 0);
        break;
      }
      default: {
        const uint64_t* found = map.Find(key);
        auto it = mirror.find(key);
        ASSERT_EQ(found != nullptr, it != mirror.end()) << "key " << key;
        if (found != nullptr) {
          EXPECT_EQ(*found, it->second);
        }
      }
    }
    ASSERT_EQ(map.size(), mirror.size());
  }
  // Final full sweep: every mirrored key is present with the right value.
  for (const auto& [key, value] : mirror) {
    const uint64_t* found = map.Find(key);
    ASSERT_NE(found, nullptr) << "key " << key;
    EXPECT_EQ(*found, value);
  }
}

}  // namespace
}  // namespace fcp
