#include "core/dimine.h"

#include <gtest/gtest.h>

#include "core/miner.h"
#include "test_util.h"

namespace fcp {
namespace {

using ::fcp::testing::MakeSegment;
using ::fcp::testing::PatternsOf;

MiningParams Params(uint32_t theta = 3) {
  MiningParams params;
  params.xi = Seconds(60);
  params.tau = Minutes(30);
  params.theta = theta;
  params.min_pattern_size = 1;
  params.max_pattern_size = 4;
  return params;
}

TEST(DiMineTest, FindsCrossStreamPattern) {
  DiMine miner(Params(3));
  std::vector<Fcp> out;
  miner.AddSegment(MakeSegment(1, 0, {7, 8, 9}, 100), &out);
  miner.AddSegment(MakeSegment(2, 1, {7, 8}, 200), &out);
  EXPECT_TRUE(out.empty());
  miner.AddSegment(MakeSegment(3, 2, {7, 8, 11}, 300), &out);
  EXPECT_EQ(PatternsOf(out), (std::set<Pattern>{{7}, {8}, {7, 8}}));
}

TEST(DiMineTest, TriggerPatternsAreSubsetsOfTrigger) {
  DiMine miner(Params(2));
  std::vector<Fcp> out;
  miner.AddSegment(MakeSegment(1, 0, {1, 2, 3, 4}, 100), &out);
  miner.AddSegment(MakeSegment(2, 1, {3, 4, 5}, 200), &out);
  for (const Fcp& fcp : out) {
    for (ObjectId object : fcp.objects) {
      EXPECT_TRUE(object == 3 || object == 4) << fcp.DebugString();
    }
  }
  EXPECT_EQ(PatternsOf(out), (std::set<Pattern>{{3}, {4}, {3, 4}}));
}

TEST(DiMineTest, ExpiredSegmentsDropOut) {
  DiMine miner(Params(2));
  std::vector<Fcp> out;
  miner.AddSegment(MakeSegment(1, 0, {5}, 0), &out);
  out.clear();
  miner.AddSegment(MakeSegment(2, 1, {5}, Minutes(31)), &out);
  EXPECT_TRUE(out.empty()) << "supporter expired (tau=30min)";
}

TEST(DiMineTest, PeriodicSweepShrinksIndex) {
  MiningParams params = Params(2);
  params.maintenance_interval = Minutes(1);
  DiMine miner(params);
  std::vector<Fcp> out;
  Timestamp now = 0;
  for (int i = 0; i < 120; ++i) {
    now += Minutes(1);
    miner.AddSegment(MakeSegment(static_cast<SegmentId>(i),
                                 static_cast<StreamId>(i % 3),
                                 {static_cast<ObjectId>(i % 20)}, now),
                     &out);
  }
  EXPECT_GT(miner.stats().maintenance_runs, 0u);
  // tau = 30 min at 1 segment/min: the index holds ~31 live segments.
  EXPECT_LE(miner.index().num_segments(), 40u);
}

TEST(DiMineTest, FourLevelPattern) {
  DiMine miner(Params(2));
  std::vector<Fcp> out;
  miner.AddSegment(MakeSegment(1, 0, {1, 2, 3, 4}, 100), &out);
  out.clear();
  miner.AddSegment(MakeSegment(2, 1, {1, 2, 3, 4}, 200), &out);
  EXPECT_TRUE(PatternsOf(out).contains(Pattern{1, 2, 3, 4}));
  EXPECT_EQ(out.size(), 15u);  // all 2^4 - 1 subsets are frequent
}

TEST(DiMineTest, MaxPatternSizeStopsEnumeration) {
  MiningParams params = Params(2);
  params.max_pattern_size = 2;
  DiMine miner(params);
  std::vector<Fcp> out;
  miner.AddSegment(MakeSegment(1, 0, {1, 2, 3}, 100), &out);
  out.clear();
  miner.AddSegment(MakeSegment(2, 1, {1, 2, 3}, 200), &out);
  for (const Fcp& fcp : out) EXPECT_LE(fcp.objects.size(), 2u);
  EXPECT_EQ(out.size(), 6u);  // 3 singletons + 3 pairs
}

TEST(DiMineTest, StatsTrackTimings) {
  DiMine miner(Params(1));
  std::vector<Fcp> out;
  miner.AddSegment(MakeSegment(1, 0, {1, 2}, 100), &out);
  EXPECT_EQ(miner.stats().segments_processed, 1u);
  EXPECT_GE(miner.stats().mining_ns, 0);
  EXPECT_GE(miner.stats().maintenance_ns, 0);
  EXPECT_GT(miner.stats().fcps_emitted, 0u);
}

}  // namespace
}  // namespace fcp
