#include "stream/stream_mux.h"

#include <gtest/gtest.h>

namespace fcp {
namespace {

TEST(StreamMuxTest, RoutesPerStream) {
  StreamMux mux(10);
  std::vector<SegmentRef> out;
  // Interleave two streams; events of one stream are far apart in the other.
  mux.Push({0, 1, 0}, &out);
  mux.Push({1, 9, 2}, &out);
  mux.Push({0, 2, 5}, &out);
  mux.Push({1, 8, 4}, &out);
  EXPECT_TRUE(out.empty());  // nothing completed yet
  mux.Push({0, 3, 100}, &out);  // completes stream 0's window
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->stream(), 0u);
  EXPECT_EQ(out[0]->length(), 2u);
  EXPECT_EQ(mux.num_streams(), 2u);
}

TEST(StreamMuxTest, FlushAllDrainsEveryStream) {
  StreamMux mux(10);
  std::vector<SegmentRef> out;
  for (StreamId s = 0; s < 5; ++s) {
    mux.Push({s, s + 10, static_cast<Timestamp>(s)}, &out);
  }
  EXPECT_TRUE(out.empty());
  mux.FlushAll(&out);
  EXPECT_EQ(out.size(), 5u);
}

TEST(StreamMuxTest, IdsUniqueAcrossStreams) {
  StreamMux mux(10);
  std::vector<SegmentRef> out;
  for (int i = 0; i < 50; ++i) {
    mux.Push({static_cast<StreamId>(i % 3), static_cast<ObjectId>(i),
              static_cast<Timestamp>(i * 100)},
             &out);
  }
  mux.FlushAll(&out);
  std::set<SegmentId> ids;
  for (const SegmentRef& g : out) ids.insert(g->id());
  EXPECT_EQ(ids.size(), out.size());
}

TEST(StreamMuxTest, ReorderedCountAggregates) {
  StreamMux mux(10);
  std::vector<SegmentRef> out;
  mux.Push({0, 1, 100}, &out);
  mux.Push({0, 2, 50}, &out);  // clamped
  mux.Push({1, 1, 100}, &out);
  mux.Push({1, 2, 50}, &out);  // clamped
  EXPECT_EQ(mux.reordered_count(), 2u);
}

TEST(StreamMuxTest, PushBatchMatchesPerEventPush) {
  // Randomish interleaving with same-stream runs (the shape whose segmenter
  // lookup PushBatch caches) — batch and per-event feeds must produce the
  // same segments in the same order, with the same ids.
  std::vector<ObjectEvent> events;
  Timestamp time = 0;
  for (int run = 0; run < 40; ++run) {
    const StreamId stream = static_cast<StreamId>((run * 7) % 3);
    for (int k = 0; k < 1 + (run % 4); ++k) {
      time += 3 + (run % 11);
      events.push_back({stream, static_cast<ObjectId>((run + k) % 9), time});
    }
  }

  StreamMux per_event(10);
  std::vector<SegmentRef> expected;
  for (const ObjectEvent& event : events) per_event.Push(event, &expected);
  per_event.FlushAll(&expected);

  StreamMux batched(10);
  std::vector<SegmentRef> got;
  batched.PushBatch(events.data(), events.size(), &got);
  batched.FlushAll(&got);

  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i]->id(), expected[i]->id()) << i;
    EXPECT_EQ(got[i]->stream(), expected[i]->stream()) << i;
    EXPECT_EQ(got[i]->entries(), expected[i]->entries()) << i;
  }
  EXPECT_EQ(batched.num_streams(), per_event.num_streams());
  EXPECT_EQ(batched.reordered_count(), per_event.reordered_count());
}

TEST(StreamMuxTest, PushBatchOfZeroAndOne) {
  StreamMux mux(10);
  std::vector<SegmentRef> out;
  mux.PushBatch(nullptr, 0, &out);
  EXPECT_TRUE(out.empty());
  const ObjectEvent event{0, 1, 5};
  mux.PushBatch(&event, 1, &out);
  EXPECT_EQ(mux.num_streams(), 1u);
}

TEST(StreamMuxTest, PerStreamTimeIsIndependent) {
  // Stream 1 events go "back in time" relative to stream 0 — that is fine,
  // only intra-stream order matters.
  StreamMux mux(10);
  std::vector<SegmentRef> out;
  mux.Push({0, 1, 1000}, &out);
  mux.Push({1, 2, 5}, &out);
  EXPECT_EQ(mux.reordered_count(), 0u);
}

}  // namespace
}  // namespace fcp
