#include "util/stats.h"

#include <gtest/gtest.h>

namespace fcp {
namespace {

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
  EXPECT_EQ(s.sum(), 4.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic example set: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats s;
  s.Add(-10.0);
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -10.0);
  EXPECT_EQ(s.max(), 10.0);
}

TEST(RunningStatsTest, Reset) {
  RunningStats s;
  s.Add(1.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(SampleTest, EmptyQuantile) {
  Sample s;
  EXPECT_EQ(s.Quantile(0.5), 0.0);
}

TEST(SampleTest, MedianOfOdd) {
  Sample s;
  for (double v : {5.0, 1.0, 3.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 3.0);
}

TEST(SampleTest, Extremes) {
  Sample s;
  for (double v : {4.0, 2.0, 8.0, 6.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 8.0);
}

TEST(SampleTest, InterpolatesBetweenPoints) {
  Sample s;
  s.Add(0.0);
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 5.0);
}

}  // namespace
}  // namespace fcp
