#include "util/stats.h"

#include <gtest/gtest.h>

namespace fcp {
namespace {

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
  EXPECT_EQ(s.sum(), 4.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic example set: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats s;
  s.Add(-10.0);
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -10.0);
  EXPECT_EQ(s.max(), 10.0);
}

TEST(RunningStatsTest, Reset) {
  RunningStats s;
  s.Add(1.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(SampleTest, EmptyQuantile) {
  Sample s;
  EXPECT_EQ(s.Quantile(0.5), 0.0);
}

TEST(SampleTest, MedianOfOdd) {
  Sample s;
  for (double v : {5.0, 1.0, 3.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 3.0);
}

TEST(SampleTest, Extremes) {
  Sample s;
  for (double v : {4.0, 2.0, 8.0, 6.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 8.0);
}

TEST(SampleTest, InterpolatesBetweenPoints) {
  Sample s;
  s.Add(0.0);
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 5.0);
}

TEST(SampleTest, PercentileEmpty) {
  Sample s;
  EXPECT_EQ(s.Percentile(50.0), 0.0);
  EXPECT_EQ(s.Percentile(99.0), 0.0);
}

TEST(SampleTest, PercentileSingleSample) {
  Sample s;
  s.Add(7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50.0), 7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100.0), 7.0);
}

TEST(SampleTest, PercentileKnownDistribution) {
  // 1..100: pXX interpolates over indices 0..99, so p50 = 50.5, p99 = 99.01.
  Sample s;
  for (int i = 1; i <= 100; ++i) s.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.Percentile(50.0), 50.5);
  EXPECT_NEAR(s.Percentile(99.0), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(s.Percentile(100.0), 100.0);
}

TEST(SampleTest, PercentileClampsOutOfRange) {
  Sample s;
  for (double v : {1.0, 2.0, 3.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Percentile(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(200.0), 3.0);
}

TEST(SampleTest, MergePoolsObservations) {
  Sample a;
  Sample b;
  for (double v : {1.0, 3.0}) a.Add(v);
  for (double v : {2.0, 4.0}) b.Add(v);
  a.Merge(b);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_DOUBLE_EQ(a.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(a.Percentile(100.0), 4.0);
  EXPECT_DOUBLE_EQ(a.Percentile(50.0), 2.5);
}

TEST(SampleTest, MergeWithEmpty) {
  Sample a;
  a.Add(5.0);
  Sample empty;
  a.Merge(empty);
  EXPECT_EQ(a.size(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.size(), 1u);
  EXPECT_DOUBLE_EQ(empty.Percentile(50.0), 5.0);
}

TEST(RunningStatsTest, MergeMatchesPooledAccumulation) {
  RunningStats pooled;
  RunningStats left;
  RunningStats right;
  const double values[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (int i = 0; i < 8; ++i) {
    pooled.Add(values[i]);
    (i < 3 ? left : right).Add(values[i]);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), pooled.count());
  EXPECT_DOUBLE_EQ(left.mean(), pooled.mean());
  EXPECT_NEAR(left.variance(), pooled.variance(), 1e-12);
  EXPECT_EQ(left.min(), pooled.min());
  EXPECT_EQ(left.max(), pooled.max());
  EXPECT_DOUBLE_EQ(left.sum(), pooled.sum());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a;
  RunningStats empty;
  a.Add(3.0);
  a.Add(5.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 4.0);
}

}  // namespace
}  // namespace fcp
