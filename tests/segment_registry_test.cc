#include "index/segment_registry.h"

#include <gtest/gtest.h>

namespace fcp {
namespace {

TEST(SegmentRegistryTest, AddFindRemove) {
  SegmentRegistry registry;
  registry.Add(1, SegmentInfo{/*stream=*/3, /*start=*/100, /*end=*/150,
                              /*length=*/4});
  ASSERT_NE(registry.Find(1), nullptr);
  EXPECT_EQ(registry.Find(1)->stream, 3u);
  EXPECT_EQ(registry.Find(1)->start, 100);
  EXPECT_EQ(registry.Find(1)->end, 150);
  EXPECT_EQ(registry.Find(1)->length, 4u);
  EXPECT_EQ(registry.Find(2), nullptr);
  EXPECT_TRUE(registry.Remove(1));
  EXPECT_EQ(registry.Find(1), nullptr);
  EXPECT_FALSE(registry.Remove(1));
}

TEST(SegmentRegistryTest, ValidityWindow) {
  SegmentRegistry registry;
  registry.Add(1, SegmentInfo{0, 1000, 1060, 2});
  // tau = 500: valid until now = 1500.
  EXPECT_TRUE(registry.IsValid(1, 1000, 500));
  EXPECT_TRUE(registry.IsValid(1, 1500, 500));  // boundary inclusive
  EXPECT_FALSE(registry.IsValid(1, 1501, 500));
  EXPECT_FALSE(registry.IsExpired(1, 1500, 500));
  EXPECT_TRUE(registry.IsExpired(1, 1501, 500));
  // Unknown id: neither valid nor expired.
  EXPECT_FALSE(registry.IsValid(9, 1000, 500));
  EXPECT_FALSE(registry.IsExpired(9, 9999, 500));
}

TEST(SegmentRegistryTest, SizeAndIteration) {
  SegmentRegistry registry;
  for (SegmentId id = 0; id < 10; ++id) {
    registry.Add(id, SegmentInfo{0, static_cast<Timestamp>(id), 0, 1});
  }
  EXPECT_EQ(registry.size(), 10u);
  size_t seen = 0;
  for (const auto& [id, info] : registry) {
    EXPECT_LT(id, 10u);
    ++seen;
  }
  EXPECT_EQ(seen, 10u);
}

TEST(SegmentRegistryTest, MemoryGrowsWithSize) {
  SegmentRegistry registry;
  const size_t empty = registry.MemoryUsage();
  for (SegmentId id = 0; id < 100; ++id) {
    registry.Add(id, SegmentInfo{});
  }
  EXPECT_GT(registry.MemoryUsage(), empty);
}

TEST(SegmentRegistryDeathTest, DuplicateAddAborts) {
  SegmentRegistry registry;
  registry.Add(1, SegmentInfo{});
  EXPECT_DEATH(registry.Add(1, SegmentInfo{}), "FCP_CHECK");
}

}  // namespace
}  // namespace fcp
