#include "core/miner.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace fcp {
namespace {

using ::fcp::testing::MakeSegment;

TEST(MakeFcpIfFrequentTest, CountsDistinctStreams) {
  const Pattern pattern = {1, 2};
  std::vector<Occurrence> occ = {
      {0, 100, 110}, {1, 120, 130}, {0, 140, 150}};  // streams {0, 1}
  EXPECT_FALSE(MakeFcpIfFrequent(pattern, occ, /*theta=*/3, 7).has_value());
  auto fcp = MakeFcpIfFrequent(pattern, occ, /*theta=*/2, 7);
  ASSERT_TRUE(fcp.has_value());
  EXPECT_EQ(fcp->objects, pattern);
  EXPECT_EQ(fcp->streams, (std::vector<StreamId>{0, 1}));
  EXPECT_EQ(fcp->window_start, 100);
  EXPECT_EQ(fcp->window_end, 150);
  EXPECT_EQ(fcp->trigger, 7u);
}

TEST(MakeFcpIfFrequentTest, EmptyOccurrences) {
  EXPECT_FALSE(MakeFcpIfFrequent({1}, {}, 1, 0).has_value());
}

TEST(MakeFcpIfFrequentTest, ThetaOne) {
  auto fcp = MakeFcpIfFrequent({1}, {{5, 10, 20}}, 1, 0);
  ASSERT_TRUE(fcp.has_value());
  EXPECT_EQ(fcp->streams, (std::vector<StreamId>{5}));
}

TEST(DistinctObjectsCappedTest, NoCapKeepsAll) {
  const Segment g = MakeSegment(1, 0, {5, 3, 5, 1}, 0);
  EXPECT_EQ(DistinctObjectsCapped(g, 0),
            (std::vector<ObjectId>{1, 3, 5}));
}

TEST(DistinctObjectsCappedTest, CapTruncates) {
  const Segment g = MakeSegment(1, 0, {5, 3, 9, 1}, 0);
  EXPECT_EQ(DistinctObjectsCapped(g, 2), (std::vector<ObjectId>{1, 3}));
}

TEST(MinerKindTest, Names) {
  EXPECT_EQ(MinerKindToString(MinerKind::kCooMine), "CooMine");
  EXPECT_EQ(MinerKindToString(MinerKind::kDiMine), "DIMine");
  EXPECT_EQ(MinerKindToString(MinerKind::kMatrixMine), "MatrixMine");
  EXPECT_EQ(MinerKindToString(MinerKind::kBruteForce), "BruteForce");
}

TEST(MinerFactoryTest, CreatesEveryKind) {
  MiningParams params;
  for (MinerKind kind :
       {MinerKind::kCooMine, MinerKind::kDiMine, MinerKind::kMatrixMine,
        MinerKind::kBruteForce}) {
    auto miner = MakeMiner(kind, params);
    ASSERT_NE(miner, nullptr);
    EXPECT_EQ(miner->name(), MinerKindToString(kind));
    EXPECT_EQ(miner->stats().segments_processed, 0u);
  }
}

TEST(MinerFactoryDeathTest, InvalidParamsAbort) {
  MiningParams params;
  params.theta = 0;
  EXPECT_DEATH(MakeMiner(MinerKind::kCooMine, params), "FCP_CHECK");
}

TEST(FcpTest, DebugString) {
  Fcp fcp;
  fcp.objects = {1, 2};
  fcp.streams = {0, 3, 4};
  fcp.window_start = 10;
  fcp.window_end = 20;
  EXPECT_EQ(fcp.DebugString(), "{1,2}x3@[10,20]");
}

TEST(FcpTest, OrderingByPatternThenTrigger) {
  Fcp a, b, c;
  a.objects = {1};
  a.trigger = 5;
  b.objects = {1};
  b.trigger = 9;
  c.objects = {2};
  c.trigger = 0;
  EXPECT_TRUE(FcpLess(a, b));
  EXPECT_TRUE(FcpLess(b, c));
  EXPECT_FALSE(FcpLess(c, a));
}

}  // namespace
}  // namespace fcp
