#include "datagen/twitter_gen.h"

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

namespace fcp {
namespace {

TwitterConfig SmallConfig() {
  TwitterConfig config;
  config.num_users = 100;
  config.vocab_size = 2000;
  config.total_tweets = 3000;
  config.num_events = 3;
  config.event_participants_min = 10;
  config.event_participants_max = 30;
  config.seed = 5;
  return config;
}

TEST(TwitterGenTest, ConfigValidation) {
  EXPECT_TRUE(SmallConfig().Validate().ok());
  {
    TwitterConfig c = SmallConfig();
    c.num_users = 0;
    EXPECT_FALSE(c.Validate().ok());
  }
  {
    TwitterConfig c = SmallConfig();
    c.event_participants_max = 1000;  // more than users
    EXPECT_FALSE(c.Validate().ok());
  }
  {
    TwitterConfig c = SmallConfig();
    c.words_per_tweet_min = 0;
    EXPECT_FALSE(c.Validate().ok());
  }
}

TEST(TwitterGenTest, Deterministic) {
  const TwitterTrace a = GenerateTwitter(SmallConfig());
  const TwitterTrace b = GenerateTwitter(SmallConfig());
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_TRUE(std::equal(a.events.begin(), a.events.end(), b.events.begin()));
}

TEST(TwitterGenTest, EventsSortedByTime) {
  const TwitterTrace trace = GenerateTwitter(SmallConfig());
  EXPECT_TRUE(std::is_sorted(trace.events.begin(), trace.events.end(),
                             [](const ObjectEvent& a, const ObjectEvent& b) {
                               return a.time < b.time;
                             }));
}

TEST(TwitterGenTest, TweetGapExceedsMinGapPerUser) {
  // The "tweet == segment" invariant: two tweets of one user are >=
  // min_tweet_gap apart, so a segmenter with xi < min_tweet_gap emits each
  // tweet as its own segment.
  const TwitterConfig config = SmallConfig();
  const TwitterTrace trace = GenerateTwitter(config);
  std::map<StreamId, Timestamp> last_time;
  for (const ObjectEvent& e : trace.events) {
    auto it = last_time.find(e.stream);
    if (it != last_time.end() && e.time != it->second) {
      EXPECT_GE(e.time - it->second, config.min_tweet_gap)
          << "user " << e.stream;
    }
    last_time[e.stream] = e.time;
  }
}

TEST(TwitterGenTest, PlantedEventKeywordsOutsideBackgroundVocab) {
  const TwitterConfig config = SmallConfig();
  const TwitterTrace trace = GenerateTwitter(config);
  ASSERT_EQ(trace.planted_events.size(), config.num_events);
  for (const EventPlan& plan : trace.planted_events) {
    for (ObjectId kw : plan.keywords) {
      EXPECT_GE(kw, config.vocab_size);
      EXPECT_FALSE(trace.WordName(kw).empty());
      std::string fallback = "w";
      fallback += std::to_string(kw);
      EXPECT_NE(trace.WordName(kw), fallback)
          << "planted keywords get real names, not the w<id> fallback";
    }
  }
}

TEST(TwitterGenTest, EventTweetsReachManyStreams) {
  const TwitterConfig config = SmallConfig();
  const TwitterTrace trace = GenerateTwitter(config);
  for (const EventPlan& plan : trace.planted_events) {
    // Count streams that contain ALL of the event's keywords at one time
    // (i.e. one tweet carrying the full set).
    std::map<std::pair<StreamId, Timestamp>, std::set<ObjectId>> per_tweet;
    for (const ObjectEvent& e : trace.events) {
      if (std::binary_search(plan.keywords.begin(), plan.keywords.end(),
                             e.object)) {
        per_tweet[{e.stream, e.time}].insert(e.object);
      }
    }
    std::set<StreamId> full_streams;
    for (const auto& [key, words] : per_tweet) {
      if (words.size() == plan.keywords.size()) full_streams.insert(key.first);
    }
    EXPECT_GE(full_streams.size(), plan.num_participants * 9 / 10)
        << "event " << plan.name;
  }
}

TEST(TwitterGenTest, WordNameFallback) {
  const TwitterTrace trace = GenerateTwitter(SmallConfig());
  EXPECT_EQ(trace.WordName(17), "w17");
}

TEST(TwitterGenTest, TweetCountNearTarget) {
  const TwitterTrace trace = GenerateTwitter(SmallConfig());
  EXPECT_GE(trace.num_tweets, 2500u);
  EXPECT_LE(trace.num_tweets, 3200u);  // background cap + event tweets
}

}  // namespace
}  // namespace fcp
