// Property tests: the Seg-tree under random workloads behaves exactly like a
// naive segment store, and its structural invariants survive arbitrary
// insert/expire interleavings (with and without graft-on-delete and
// DistanceBound pruning).

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "index/seg_tree.h"
#include "stream/segment.h"
#include "util/rng.h"

namespace fcp {
namespace {

constexpr DurationMs kTau = 1000;

// Naive mirror of the Seg-tree's query surface.
class NaiveStore {
 public:
  void Insert(const Segment& segment) {
    segments_[segment.id()] = segment;
  }
  void Remove(SegmentId id) { segments_.erase(id); }

  size_t RemoveExpired(Timestamp now) {
    size_t removed = 0;
    for (auto it = segments_.begin(); it != segments_.end();) {
      if (now - it->second.start_time() > kTau) {
        it = segments_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }

  std::vector<SegmentId> RelevantSegments(ObjectId object,
                                          Timestamp now) const {
    std::vector<SegmentId> out;
    for (const auto& [id, segment] : segments_) {
      if (now - segment.start_time() > kTau) continue;
      const auto objects = segment.DistinctObjects();
      if (std::binary_search(objects.begin(), objects.end(), object)) {
        out.push_back(id);
      }
    }
    return out;  // map iteration is id-ordered
  }

  std::map<SegmentId, std::vector<ObjectId>> Slcp(const Segment& probe,
                                                  Timestamp now) const {
    std::map<SegmentId, std::vector<ObjectId>> rows;
    const auto probe_objects = probe.DistinctObjects();
    for (const auto& [id, segment] : segments_) {
      if (now - segment.start_time() > kTau) continue;
      std::vector<ObjectId> common;
      const auto objects = segment.DistinctObjects();
      std::set_intersection(objects.begin(), objects.end(),
                            probe_objects.begin(), probe_objects.end(),
                            std::back_inserter(common));
      if (!common.empty()) rows[id] = common;
    }
    return rows;
  }

  uint64_t total_objects() const {
    uint64_t total = 0;
    for (const auto& [id, segment] : segments_) total += segment.length();
    return total;
  }

  size_t size() const { return segments_.size(); }

 private:
  std::map<SegmentId, Segment> segments_;
};

Segment RandomSegment(SegmentId id, Rng& rng, Timestamp now) {
  const StreamId stream = static_cast<StreamId>(rng.Below(6));
  const size_t length = 1 + rng.Below(8);
  std::vector<SegmentEntry> entries;
  Timestamp t = now;
  for (size_t i = 0; i < length; ++i) {
    entries.push_back(
        SegmentEntry{static_cast<ObjectId>(rng.Below(15)), t});
    t += static_cast<Timestamp>(rng.Below(5));
  }
  return Segment(id, stream, std::move(entries));
}

struct PropertyParams {
  uint64_t seed;
  bool graft;
  bool distance_bound;
};

class SegTreePropertyTest
    : public ::testing::TestWithParam<PropertyParams> {};

TEST_P(SegTreePropertyTest, MatchesNaiveStoreUnderRandomWorkload) {
  const PropertyParams param = GetParam();
  Rng rng(param.seed);
  SegTreeOptions options;
  options.graft_on_delete = param.graft;
  options.use_distance_bound = param.distance_bound;
  SegTree tree(options);
  NaiveStore naive;

  SegmentId next_id = 0;
  Timestamp now = 0;
  std::vector<SegmentId> live;

  for (int step = 0; step < 400; ++step) {
    now += static_cast<Timestamp>(rng.Below(40));
    const uint64_t dice = rng.Below(100);
    if (dice < 55 || live.empty()) {
      // Insert.
      const Segment segment = RandomSegment(next_id++, rng, now);
      tree.Insert(segment);
      naive.Insert(segment);
      live.push_back(segment.id());
    } else if (dice < 70) {
      // Remove a random live segment.
      const size_t pick = rng.Below(live.size());
      const SegmentId id = live[pick];
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
      tree.Remove(id);
      naive.Remove(id);
    } else if (dice < 80) {
      // Expiry sweep.
      EXPECT_EQ(tree.RemoveExpired(now, kTau), naive.RemoveExpired(now));
      live.clear();  // lazily rebuilt below
      for (ObjectId o = 0; o < 15; ++o) {
        for (SegmentId id : naive.RelevantSegments(o, now)) {
          live.push_back(id);
        }
      }
      std::sort(live.begin(), live.end());
      live.erase(std::unique(live.begin(), live.end()), live.end());
    } else if (dice < 92) {
      // Point query.
      const ObjectId object = static_cast<ObjectId>(rng.Below(15));
      EXPECT_EQ(tree.RelevantSegments(object, now, kTau),
                naive.RelevantSegments(object, now))
          << "object=" << object << " step=" << step;
    } else {
      // SLCP probe.
      const Segment probe = RandomSegment(next_id++, rng, now);
      std::vector<SegmentId> expired;
      const auto rows = tree.Slcp(probe, now, kTau, &expired);
      std::map<SegmentId, std::vector<ObjectId>> got;
      for (const LcpRow& row : rows) got[row.segment] = row.common;
      EXPECT_EQ(got, naive.Slcp(probe, now)) << "step=" << step;
      // Lazily delete what the search flagged, mirroring CooMine.
      for (SegmentId id : expired) {
        tree.Remove(id);
        naive.Remove(id);
      }
    }
    if (step % 20 == 0) tree.CheckInvariants();
    EXPECT_EQ(tree.num_segments(), naive.size());
    EXPECT_EQ(tree.total_objects(), naive.total_objects());
  }
  tree.CheckInvariants();
  // Compression never goes negative: node count <= stored objects.
  EXPECT_LE(tree.num_nodes(), tree.total_objects());
}

std::vector<PropertyParams> MakeParams() {
  std::vector<PropertyParams> params;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    params.push_back({seed, true, true});
    params.push_back({seed, false, true});
    params.push_back({seed, true, false});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorkloads, SegTreePropertyTest, ::testing::ValuesIn(MakeParams()),
    [](const ::testing::TestParamInfo<PropertyParams>& info) {
      return "seed" + std::to_string(info.param.seed) +
             (info.param.graft ? "_graft" : "_root") +
             (info.param.distance_bound ? "_bound" : "_nobound");
    });

TEST(SegTreeCompressionTest, HighOverlapCompressesWell) {
  // Consecutive segments sharing long prefixes (the TR regime).
  SegTree tree;
  SegmentId id = 0;
  for (int i = 0; i < 100; ++i) {
    std::vector<SegmentEntry> entries;
    for (int j = 0; j < 10; ++j) {
      entries.push_back(SegmentEntry{static_cast<ObjectId>(i + j),
                                     static_cast<Timestamp>(i * 10 + j)});
    }
    tree.Insert(Segment(id++, 0, std::move(entries)));
  }
  // Each new segment shares 9 of 10 objects with its predecessor... but as a
  // *prefix* only the aligned part is shared; still, compression must be
  // substantial.
  EXPECT_GT(tree.CompressionRatio(), 0.5);
  tree.CheckInvariants();
}

// Sustained churn through the arena-backed pool: 10k random insert/remove
// cycles with every structural invariant re-validated after each mutation.
// This is the recycling torture test — a node handed back to the pool with a
// stale field, or a child/tail chunk released to the wrong size class, shows
// up here as a corrupted tree long before it would crash.
TEST(SegTreeChurnTest, TenThousandInsertRemoveCyclesKeepInvariants) {
  Rng rng(314159);
  SegTree tree;  // default options: arena pool + graft-on-delete
  SegmentId next_id = 0;
  Timestamp now = 0;
  std::vector<SegmentId> live;

  for (int step = 0; step < 10000; ++step) {
    now += static_cast<Timestamp>(rng.Below(8));
    const bool insert = live.size() < 4 ||
                        (live.size() < 24 && rng.Chance(0.55));
    if (insert) {
      const Segment segment = RandomSegment(next_id++, rng, now);
      tree.Insert(segment);
      live.push_back(segment.id());
    } else if (rng.Chance(0.9)) {
      const size_t pick = rng.Below(live.size());
      tree.Remove(live[pick]);
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    } else {
      tree.RemoveExpired(now, kTau);
      std::erase_if(live, [&](SegmentId id) {
        return tree.registry().Find(id) == nullptr;
      });
    }
    tree.CheckInvariants();
    ASSERT_EQ(tree.num_segments(), live.size()) << "step=" << step;
  }
  // The pool must actually have recycled nodes (otherwise this test ran
  // against a plain allocator and proved nothing about the arena).
  EXPECT_GT(tree.stats().nodes_recycled, 0u);
  EXPECT_GT(tree.stats().nodes_deleted, 1000u);
}

TEST(SegTreeCompressionTest, DisjointSegmentsDoNotCompress) {
  // The Twitter regime: segments share nothing.
  SegTree tree;
  SegmentId id = 0;
  ObjectId next_object = 0;
  for (int i = 0; i < 50; ++i) {
    std::vector<SegmentEntry> entries;
    for (int j = 0; j < 5; ++j) {
      entries.push_back(SegmentEntry{next_object++, static_cast<Timestamp>(i)});
    }
    tree.Insert(Segment(id++, static_cast<StreamId>(i), std::move(entries)));
  }
  EXPECT_EQ(tree.CompressionRatio(), 0.0);
  tree.CheckInvariants();
}

}  // namespace
}  // namespace fcp
