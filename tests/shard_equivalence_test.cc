// Shard-count invariance: the union of S object-partitioned miner shards
// must reproduce the serial miner's discoveries exactly — same triggers,
// patterns, stream sets and windows — for every miner and every shard count.
// This is the correctness contract of the min-object ownership rule (see
// common/shard.h): every occurrence segment of an owned pattern contains the
// owned minimum object, so the owner shard sees every supporter.

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/shard.h"
#include "core/miner.h"
#include "stream/segment.h"
#include "test_util.h"
#include "util/rng.h"

namespace fcp {
namespace {

using testing::FcpSignature;
using testing::FullSignatures;

struct WorkloadConfig {
  size_t num_segments = 600;
  ObjectId vocab = 30;
  StreamId streams = 10;
  uint32_t min_length = 2;
  uint32_t max_length = 8;
  DurationMs max_gap = Seconds(45);  ///< between consecutive segment starts
};

// Randomized workload: segments on random streams with random object sets,
// start times advancing by a random gap (global time order, so per-stream
// time order holds too) and entry times spread within the segment.
std::vector<Segment> RandomSegments(uint64_t seed, const WorkloadConfig& cfg) {
  Rng rng(seed);
  std::vector<Segment> out;
  out.reserve(cfg.num_segments);
  Timestamp time = 0;
  for (size_t i = 0; i < cfg.num_segments; ++i) {
    time += 1 + static_cast<Timestamp>(rng.Below(
                    static_cast<uint64_t>(cfg.max_gap)));
    const uint32_t length =
        cfg.min_length + static_cast<uint32_t>(rng.Below(
                             cfg.max_length - cfg.min_length + 1));
    std::vector<SegmentEntry> entries;
    entries.reserve(length);
    for (uint32_t j = 0; j < length; ++j) {
      entries.push_back(
          SegmentEntry{static_cast<ObjectId>(rng.Below(cfg.vocab)),
                       time + static_cast<Timestamp>(j * 100)});
    }
    out.emplace_back(static_cast<SegmentId>(i + 1),
                     static_cast<StreamId>(rng.Below(cfg.streams)),
                     std::move(entries));
  }
  return out;
}

std::vector<Fcp> MineSerial(MinerKind kind, const MiningParams& params,
                            const std::vector<Segment>& segments) {
  auto miner = MakeMiner(kind, params);
  std::vector<Fcp> out;
  std::vector<Fcp> batch;
  for (const Segment& segment : segments) {
    batch.clear();
    miner->AddSegment(segment, &batch);
    for (Fcp& fcp : batch) out.push_back(std::move(fcp));
  }
  return out;
}

// Replays the segment stream through S shard miners the way the
// ShardRouter + shard threads do: each segment is delivered to every shard
// owning >= 1 of its objects, together with the global watermark.
std::vector<Fcp> MineSharded(MinerKind kind, const MiningParams& params,
                             uint32_t num_shards,
                             const std::vector<Segment>& segments) {
  std::vector<std::unique_ptr<FcpMiner>> miners;
  for (uint32_t s = 0; s < num_shards; ++s) {
    miners.push_back(MakeMiner(kind, params, ShardSpec{s, num_shards}));
  }
  Timestamp watermark = kMinTimestamp;
  std::vector<Fcp> out;
  std::vector<Fcp> batch;
  std::set<uint32_t> targets;
  for (const Segment& segment : segments) {
    watermark = std::max(watermark, segment.end_time());
    targets.clear();
    for (ObjectId object : segment.DistinctObjects()) {
      targets.insert(ShardOf(object, num_shards));
    }
    for (uint32_t target : targets) {
      miners[target]->AdvanceWatermark(watermark);
      batch.clear();
      miners[target]->AddSegment(segment, &batch);
      for (Fcp& fcp : batch) out.push_back(std::move(fcp));
    }
  }
  return out;
}

MiningParams Params() {
  MiningParams params;
  params.xi = Seconds(60);
  params.tau = Minutes(10);
  params.theta = 3;
  params.min_pattern_size = 1;  // exercises the singleton emission gate
  params.max_pattern_size = 4;
  params.max_segment_objects = 16;
  return params;
}

class ShardEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<MinerKind, uint32_t>> {};

TEST_P(ShardEquivalenceTest, UnionOfShardsEqualsSerialMultiset) {
  const auto [kind, num_shards] = GetParam();
  const MiningParams params = Params();
  for (uint64_t seed : {11u, 12u, 13u}) {
    const std::vector<Segment> segments = RandomSegments(seed, {});
    const std::vector<FcpSignature> serial =
        FullSignatures(MineSerial(kind, params, segments));
    const std::vector<FcpSignature> sharded =
        FullSignatures(MineSharded(kind, params, num_shards, segments));
    ASSERT_FALSE(serial.empty()) << "workload mined nothing (seed " << seed
                                 << ") — the test is vacuous";
    EXPECT_EQ(sharded, serial) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMinersAllShardCounts, ShardEquivalenceTest,
    ::testing::Combine(::testing::Values(MinerKind::kCooMine,
                                         MinerKind::kDiMine,
                                         MinerKind::kMatrixMine),
                       ::testing::Values(2u, 3u, 8u)));

TEST(ShardEquivalenceTest, BruteForceOracleShardsExactly) {
  // The oracle shares no code with the real miners; sharding it the same
  // way and getting the same union is independent evidence the ownership
  // rule itself (not an implementation detail) is what makes recall exact.
  WorkloadConfig small;
  small.num_segments = 150;
  small.vocab = 12;
  small.max_length = 6;
  MiningParams params = Params();
  params.max_segment_objects = 8;
  const std::vector<Segment> segments = RandomSegments(21, small);
  const std::vector<FcpSignature> serial =
      FullSignatures(MineSerial(MinerKind::kBruteForce, params, segments));
  ASSERT_FALSE(serial.empty());
  for (uint32_t num_shards : {2u, 3u}) {
    EXPECT_EQ(FullSignatures(MineSharded(MinerKind::kBruteForce, params,
                                         num_shards, segments)),
              serial);
  }
}

TEST(ShardEquivalenceTest, ShardOutputsAreDisjointByOwnership) {
  // Each shard only emits patterns whose minimum object it owns, so the
  // per-shard outputs partition the serial output.
  const MiningParams params = Params();
  const std::vector<Segment> segments = RandomSegments(31, {});
  constexpr uint32_t kShards = 3;
  for (uint32_t s = 0; s < kShards; ++s) {
    auto miner = MakeMiner(MinerKind::kCooMine, params, ShardSpec{s, kShards});
    Timestamp watermark = kMinTimestamp;
    std::vector<Fcp> batch;
    for (const Segment& segment : segments) {
      watermark = std::max(watermark, segment.end_time());
      bool owns_one = false;
      for (ObjectId object : segment.DistinctObjects()) {
        owns_one |= ShardOf(object, kShards) == s;
      }
      if (!owns_one) continue;
      miner->AdvanceWatermark(watermark);
      batch.clear();
      miner->AddSegment(segment, &batch);
      for (const Fcp& fcp : batch) {
        ASSERT_FALSE(fcp.objects.empty());
        EXPECT_EQ(ShardOf(fcp.objects.front(), kShards), s)
            << "shard " << s << " emitted a pattern it does not own: "
            << testing::ToString(fcp.objects);
      }
    }
  }
}

}  // namespace
}  // namespace fcp
