#include "index/di_index.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace fcp {
namespace {

using ::fcp::testing::MakeSegment;

constexpr DurationMs kTau = 1000;

TEST(DiIndexTest, InsertAndLookup) {
  DiIndex index;
  index.Insert(MakeSegment(1, 0, {5, 6}, 100));
  index.Insert(MakeSegment(2, 1, {6, 7}, 200));
  EXPECT_EQ(index.ValidSegments(6, 200, kTau),
            (std::vector<SegmentId>{1, 2}));
  EXPECT_EQ(index.ValidSegments(5, 200, kTau), (std::vector<SegmentId>{1}));
  EXPECT_EQ(index.ValidSegments(7, 200, kTau), (std::vector<SegmentId>{2}));
  EXPECT_TRUE(index.ValidSegments(99, 200, kTau).empty());
  EXPECT_EQ(index.num_segments(), 2u);
  EXPECT_EQ(index.total_entries(), 4u);
}

TEST(DiIndexTest, DuplicateObjectsIndexedOnce) {
  DiIndex index;
  index.Insert(MakeSegment(1, 0, {5, 5, 5}, 100));
  EXPECT_EQ(index.total_entries(), 1u);
  EXPECT_EQ(index.ValidSegments(5, 100, kTau), (std::vector<SegmentId>{1}));
}

TEST(DiIndexTest, ValidityFiltersBy_Tau) {
  DiIndex index;
  index.Insert(MakeSegment(1, 0, {5}, 0));
  index.Insert(MakeSegment(2, 1, {5}, 600));
  EXPECT_EQ(index.ValidSegments(5, 1000, kTau),
            (std::vector<SegmentId>{1, 2}));  // boundary: 1000 - 0 == tau
  EXPECT_EQ(index.ValidSegments(5, 1001, kTau),
            (std::vector<SegmentId>{2}));
}

TEST(DiIndexTest, LookupCompactsPosting) {
  DiIndex index;
  index.Insert(MakeSegment(1, 0, {5}, 0));
  index.Insert(MakeSegment(2, 1, {5}, 2000));
  EXPECT_EQ(index.total_entries(), 2u);
  index.ValidSegments(5, 2000, kTau);  // segment 1 expired -> compacted away
  EXPECT_EQ(index.total_entries(), 1u);
  // Registry still holds it until the full sweep (the paper's pain point).
  EXPECT_EQ(index.num_segments(), 2u);
}

TEST(DiIndexTest, FullSweepRetiresEverywhere) {
  DiIndex index;
  index.Insert(MakeSegment(1, 0, {5, 6, 7}, 0));
  index.Insert(MakeSegment(2, 1, {5, 6}, 2000));
  const size_t removed = index.RemoveExpired(2000, kTau);
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(index.num_segments(), 1u);
  EXPECT_EQ(index.total_entries(), 2u);
  EXPECT_EQ(index.stats().segments_expired, 1u);
  EXPECT_EQ(index.ValidSegments(7, 2000, kTau), std::vector<SegmentId>{});
  EXPECT_EQ(index.ValidSegments(5, 2000, kTau), std::vector<SegmentId>{2});
}

TEST(DiIndexTest, SweepWithNothingExpiredIsCheap) {
  DiIndex index;
  index.Insert(MakeSegment(1, 0, {5}, 100));
  const uint64_t scanned_before = index.stats().posting_entries_scanned;
  EXPECT_EQ(index.RemoveExpired(200, kTau), 0u);
  EXPECT_EQ(index.stats().posting_entries_scanned, scanned_before);
}

TEST(DiIndexTest, EmptyPostingErased) {
  DiIndex index;
  index.Insert(MakeSegment(1, 0, {5}, 0));
  EXPECT_EQ(index.num_postings(), 1u);
  index.RemoveExpired(5000, kTau);
  EXPECT_EQ(index.num_postings(), 0u);
  EXPECT_EQ(index.total_entries(), 0u);
}

TEST(DiIndexTest, MemoryTracksEntries) {
  DiIndex index;
  const size_t empty = index.MemoryUsage();
  for (SegmentId id = 0; id < 50; ++id) {
    index.Insert(MakeSegment(id, 0, {static_cast<ObjectId>(id % 7)},
                             static_cast<Timestamp>(id)));
  }
  const size_t full = index.MemoryUsage();
  EXPECT_GT(full, empty);
  // The registry's flat table retains its capacity after expiry (that is
  // what makes steady-state churn allocation-free), so the drained index
  // does not fall back to `empty` — but it must not exceed the peak beyond
  // the posting arena's free-list bookkeeping, whose vectors only acquire
  // capacity when the first drain hands chunks back (a one-time, bounded
  // cost). A refill of the same shape must reuse the retained capacity.
  index.RemoveExpired(1000000, kTau);
  const size_t drained = index.MemoryUsage();
  EXPECT_LE(drained, full + 256);
  for (SegmentId id = 100; id < 150; ++id) {
    index.Insert(MakeSegment(id, 0, {static_cast<ObjectId>(id % 7)},
                             static_cast<Timestamp>(1000000 + id)));
  }
  EXPECT_LE(index.MemoryUsage(), full + 1000);
}

TEST(DiIndexDeathTest, DuplicateIdAborts) {
  DiIndex index;
  index.Insert(MakeSegment(1, 0, {5}, 0));
  EXPECT_DEATH(index.Insert(MakeSegment(1, 0, {6}, 0)), "FCP_CHECK");
}

}  // namespace
}  // namespace fcp
