// Full-pipeline allocation regression for the zero-copy segment fabric:
// events flow StreamMux-style through the ParallelEngine's workers ->
// pool-backed Segmenters -> merge (in-place relabel) -> ShardRouter
// multicast -> shard miner threads, with frequency placement, live
// rebalancing and work stealing all enabled. After a warm-up half of a
// closed-universe cyclic trace, every layer has converged: queue slots are
// preallocated, segment slabs recycle through the SegmentPool, deliveries
// share one slab per segment, and the miners' arenas are warm — so the
// steady-state half must perform (essentially) zero heap allocations.
//
// "Essentially": slab-pool misses are scheduling-dependent — a miss happens
// only when the number of in-flight slabs exceeds the pool's all-time peak,
// e.g. when a shard thread gets descheduled and its queue backs up — so the
// measured half may still grow the pool toward its high-water mark. That
// growth is bounded by queue capacity + the tau live window (the lifetime
// tests assert the pool never leaks), not by the event count, so the
// assertion charges exactly kAllocsPerSlabMiss heap allocations per observed
// miss and allows 1 per 100 events on top. Any per-event regression fails
// loudly: a per-delivery segment copy costs >= 1 allocation per delivery and
// a deque-backed FIFO costs 1 per ~32, both far over the per-event budget
// and neither accompanied by pool misses.

#include "util/alloc_counter.h"  // must be first: defines operator new/delete

#include <chrono>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/params.h"
#include "common/placement.h"
#include "common/types.h"
#include "core/parallel_engine.h"

namespace fcp {
namespace {

constexpr ObjectId kVocab = 64;
constexpr StreamId kStreams = 4;

// Closed-universe, near-uniform cyclic trace: every object appears early and
// with equal frequency, so the rebalancer observes balance (no placement
// churn inside the measured half) and the miners see churn without growth.
// 300ms spacing against xi = 1s closes a window every few events.
std::vector<ObjectEvent> BuildUniformTrace(size_t count) {
  std::vector<ObjectEvent> events;
  events.reserve(count);
  Timestamp now = 0;
  for (size_t i = 0; i < count; ++i) {
    now += 300;
    events.push_back(ObjectEvent{static_cast<StreamId>(i % kStreams),
                                 static_cast<ObjectId>(i % kVocab), now});
  }
  return events;
}

MiningParams PipelineParams() {
  MiningParams params;
  params.xi = Seconds(1);
  params.tau = Minutes(5);
  params.theta = 1u << 20;  // unreachable: mining runs, emits nothing
  params.min_pattern_size = 1;
  params.max_pattern_size = 5;
  params.max_segment_objects = 24;
  return params;
}

// Waits for the queued half to drain. Fixed sleeps (not state polling) keep
// this benign under TSan; bleed-over of converged processing into the
// measured window is itself allocation-free, so timing slop cannot fail the
// test — only real steady-state allocations can.
void LetPipelineDrain() {
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
}

// A pool miss performs one allocation each for the slab, its entry vector,
// and its distinct-object cache.
constexpr uint64_t kAllocsPerSlabMiss = 3;

struct SteadyState {
  uint64_t ops = 0;
  uint64_t allocations = 0;
  uint64_t pool_misses = 0;
};

SteadyState SteadyStatePipeline(uint32_t num_shards) {
  const MiningParams params = PipelineParams();
  const std::vector<ObjectEvent> events = BuildUniformTrace(40000);

  // The fcpmine --placement=freq --rebalance --steal configuration.
  std::vector<std::pair<ObjectId, uint64_t>> weights;
  for (ObjectId object = 0; object < kVocab; ++object) {
    weights.push_back({object, events.size() / kVocab});
  }
  ParallelEngineOptions options;
  options.num_workers = 2;
  options.num_miner_shards = num_shards;
  options.placement = BuildGreedyPlacement(weights, num_shards);
  options.rebalance = true;
  options.steal = true;

  ParallelEngine engine(MinerKind::kCooMine, params, options);
  const size_t warm = events.size() / 2;
  engine.PushBatch(std::span(events.data(), warm));
  LetPipelineDrain();

  const SegmentPoolStats warm_pool = engine.segment_pool().stats();
  const uint64_t before = alloc_counter::allocations();
  engine.PushBatch(std::span(events.data() + warm, events.size() - warm));
  LetPipelineDrain();
  const uint64_t steady = alloc_counter::allocations() - before;
  const SegmentPoolStats pool = engine.segment_pool().stats();

  engine.Finish();  // flush/join outside the measured window
  return SteadyState{events.size() - warm, steady,
                     pool.slab_allocs - warm_pool.slab_allocs};
}

class PipelineAllocTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PipelineAllocTest, SteadyStatePipelineIsAllocationFree) {
  const uint32_t num_shards = GetParam();
  const SteadyState steady = SteadyStatePipeline(num_shards);
  // Pool convergence is bounded by in-flight capacity (queue depths plus the
  // tau live window), never by the event count; a slab leaked per event
  // would blow through this immediately. The bound is deliberately loose —
  // sanitizer builds slow the shard threads enough that the warm half
  // converges less of the high-water mark.
  EXPECT_LE(steady.pool_misses, steady.ops / 10)
      << "the segment pool kept missing in steady state";
  EXPECT_LE(steady.allocations,
            steady.ops / 100 + kAllocsPerSlabMiss * steady.pool_misses)
      << "steady-state pipeline (S=" << num_shards << ", freq placement, "
      << "rebalance+steal) performed " << steady.allocations
      << " heap allocations over " << steady.ops << " events ("
      << steady.pool_misses << " pool misses)";
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, PipelineAllocTest,
                         ::testing::Values(4u, 8u),
                         [](const ::testing::TestParamInfo<uint32_t>& info) {
                           std::string name = "S";
                           name += std::to_string(info.param);
                           return name;
                         });

// Guards the counter itself: a build whose operator new replacement is
// interposed away (e.g. by a sanitizer runtime) would pass the test above
// vacuously; this canary keeps that visible.
TEST(PipelineAllocTest, CounterObservesAllocations) {
  const uint64_t before = alloc_counter::allocations();
  std::vector<int>* v = new std::vector<int>(1000);
  EXPECT_GT(alloc_counter::allocations(), before);
  delete v;
}

}  // namespace
}  // namespace fcp
