#include "util/flags.h"

#include <gtest/gtest.h>

namespace fcp {
namespace {

Flags Make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()),
               const_cast<char**>(args.data()));
}

TEST(FlagsTest, ParsesKeyValue) {
  Flags f = Make({"--rate=5000", "--dataset=tr"});
  EXPECT_EQ(f.GetInt("rate", 0), 5000);
  EXPECT_EQ(f.GetString("dataset", ""), "tr");
}

TEST(FlagsTest, BareFlagIsTrue) {
  Flags f = Make({"--quick"});
  EXPECT_TRUE(f.Has("quick"));
  EXPECT_TRUE(f.GetBool("quick", false));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  Flags f = Make({});
  EXPECT_FALSE(f.Has("missing"));
  EXPECT_EQ(f.GetInt("missing", 42), 42);
  EXPECT_EQ(f.GetString("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(f.GetDouble("missing", 2.5), 2.5);
  EXPECT_TRUE(f.GetBool("missing", true));
}

TEST(FlagsTest, BoolFalseSpellings) {
  Flags f = Make({"--a=false", "--b=0", "--c=yes"});
  EXPECT_FALSE(f.GetBool("a", true));
  EXPECT_FALSE(f.GetBool("b", true));
  EXPECT_TRUE(f.GetBool("c", false));
}

TEST(FlagsTest, DoubleParsing) {
  Flags f = Make({"--ratio=0.75"});
  EXPECT_DOUBLE_EQ(f.GetDouble("ratio", 0.0), 0.75);
}

TEST(FlagsTest, IgnoresPositionalArgs) {
  Flags f = Make({"positional", "--x=1", "another"});
  EXPECT_EQ(f.GetInt("x", 0), 1);
  EXPECT_FALSE(f.Has("positional"));
}

TEST(FlagsTest, LastValueWins) {
  Flags f = Make({"--x=1", "--x=2"});
  EXPECT_EQ(f.GetInt("x", 0), 2);
}

TEST(FlagsTest, EmptyValue) {
  Flags f = Make({"--name="});
  EXPECT_TRUE(f.Has("name"));
  EXPECT_EQ(f.GetString("name", "zzz"), "");
}

}  // namespace
}  // namespace fcp
