#include "stream/segment.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace fcp {
namespace {

using ::fcp::testing::MakeSegment;
using ::fcp::testing::MakeTimedSegment;

TEST(SegmentTest, BasicAccessors) {
  Segment g = MakeTimedSegment(7, 3, {{10, 100}, {11, 150}, {12, 160}});
  EXPECT_EQ(g.id(), 7u);
  EXPECT_EQ(g.stream(), 3u);
  EXPECT_EQ(g.start_time(), 100);
  EXPECT_EQ(g.end_time(), 160);
  EXPECT_EQ(g.span(), 60);
  EXPECT_EQ(g.length(), 3u);
}

TEST(SegmentTest, SingleObject) {
  Segment g = MakeSegment(1, 0, {42}, 500);
  EXPECT_EQ(g.span(), 0);
  EXPECT_EQ(g.length(), 1u);
  EXPECT_EQ(g.DistinctObjects(), std::vector<ObjectId>({42}));
}

TEST(SegmentTest, DistinctObjectsSortedAndDeduped) {
  Segment g =
      MakeTimedSegment(2, 0, {{5, 0}, {3, 1}, {5, 2}, {1, 3}, {3, 4}});
  EXPECT_EQ(g.DistinctObjects(), std::vector<ObjectId>({1, 3, 5}));
  EXPECT_EQ(g.length(), 5u);  // multiplicity preserved in entries
}

TEST(SegmentTest, DebugStringContainsPieces) {
  Segment g = MakeTimedSegment(9, 2, {{5, 10}, {6, 20}});
  const std::string s = g.DebugString();
  EXPECT_NE(s.find("G9"), std::string::npos) << s;
  EXPECT_NE(s.find("s2"), std::string::npos) << s;
  EXPECT_NE(s.find("@10..20"), std::string::npos) << s;
}

TEST(SegmentTest, Equality) {
  Segment a = MakeSegment(1, 0, {1, 2}, 5);
  Segment b = MakeSegment(1, 0, {1, 2}, 5);
  Segment c = MakeSegment(2, 0, {1, 2}, 5);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(SegmentTest, DistinctCacheMatchesReferenceComputation) {
  // The construction-time cache must equal the documented on-demand
  // recompute, including duplicate-heavy and single-object shapes.
  const Segment dupes =
      MakeTimedSegment(2, 0, {{5, 0}, {3, 1}, {5, 2}, {1, 3}, {3, 4}});
  EXPECT_EQ(dupes.distinct_objects(), dupes.DistinctObjects());
  EXPECT_EQ(dupes.distinct_objects(), std::vector<ObjectId>({1, 3, 5}));
  const Segment single = MakeSegment(1, 0, {42}, 500);
  EXPECT_EQ(single.distinct_objects(), single.DistinctObjects());
  const Segment uniform = MakeSegment(3, 1, {7, 7, 7, 7}, 10);
  EXPECT_EQ(uniform.distinct_objects(), uniform.DistinctObjects());
  EXPECT_EQ(uniform.distinct_objects(), std::vector<ObjectId>({7}));
}

TEST(SegmentDeathTest, EmptySegmentAborts) {
  EXPECT_DEATH(Segment(1, 0, {}), "FCP_CHECK");
}

}  // namespace
}  // namespace fcp
