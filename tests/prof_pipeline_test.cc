// Profiler x pipeline interplay (DESIGN.md §2.9): arming the sampling
// profiler over a full sharded run — frequency-hashed placement, live
// rebalancing and work stealing, per-thread SIGPROF timers firing into the
// mining hot loops — must not change a single emitted result, and the
// steady-state zero-allocation guarantee of the segment fabric must survive
// with sampling armed (the signal handler and the wait-point timers touch
// no allocator). The wait pseudo-stacks the run produces must map onto the
// pipeline's known block points and nothing else.

#include "util/alloc_counter.h"  // must be first: defines operator new/delete

#include <chrono>
#include <cstdint>
#include <set>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/params.h"
#include "common/types.h"
#include "core/parallel_engine.h"
#include "datagen/traffic_gen.h"
#include "prof/prof.h"
#include "test_util.h"

namespace fcp {
namespace {

MiningParams Params() {
  MiningParams params;
  params.xi = Seconds(60);
  params.tau = Minutes(30);
  params.theta = 3;
  params.min_pattern_size = 2;
  params.max_pattern_size = 4;
  return params;
}

std::vector<ObjectEvent> Trace() {
  TrafficConfig config;
  config.num_cameras = 20;
  config.num_vehicles = 900;
  config.total_events = 20000;
  config.num_convoys = 3;
  config.seed = 99;
  return GenerateTraffic(config).events;
}

std::vector<testing::FcpSignature> RunSharded(
    const std::vector<ObjectEvent>& events, bool profiled,
    std::string* folded_out) {
  if (profiled) {
    prof::ResetProfile();
    const bool armed = prof::StartCpuProfiler(400);
    EXPECT_TRUE(armed) << "profiler already armed";
    if (!armed) return {};
  }
  ParallelEngineOptions options;
  options.num_workers = 2;
  options.num_miner_shards = 4;
  options.rebalance = true;
  options.steal = true;
  std::vector<testing::FcpSignature> signatures;
  {
    ParallelEngine engine(MinerKind::kCooMine, Params(), options);
    for (const ObjectEvent& event : events) engine.Push(event);
    engine.Finish();
    signatures = testing::FullSignatures(engine.results());
  }
  if (profiled) {
    if (folded_out != nullptr) *folded_out = prof::FoldedProfile();
    prof::StopCpuProfiler();
  }
  return signatures;
}

class ProfPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!prof::kCompiledIn) GTEST_SKIP() << "built with FCP_PROF=OFF";
    prof::StopCpuProfiler();
    prof::DisableHeapProfiler();
    prof::ResetProfile();
  }
  void TearDown() override {
    if (!prof::kCompiledIn) return;
    prof::StopCpuProfiler();
    prof::DisableHeapProfiler();
    prof::ResetProfile();
  }
};

TEST_F(ProfPipelineTest, ArmedSamplingLeavesShardedOutputByteIdentical) {
  const std::vector<ObjectEvent> events = Trace();
  std::string folded;
  const std::vector<testing::FcpSignature> plain =
      RunSharded(events, /*profiled=*/false, nullptr);
  const std::vector<testing::FcpSignature> profiled =
      RunSharded(events, /*profiled=*/true, &folded);

  ASSERT_FALSE(plain.empty()) << "workload mined nothing — test is vacuous";
  EXPECT_EQ(profiled, plain)
      << "arming the profiler changed the mined output";

  // The profiled run observed the pipeline: some on-CPU or wait evidence
  // exists (pipeline threads idle-wait heavily even on fast machines), and
  // every wait pseudo-stack names a known instrumented block point.
  EXPECT_FALSE(folded.empty()) << "armed run produced an empty profile";
  const std::set<std::string> known_tags = {
      "wait;worker/events-empty",    "wait;ingest/events-full",
      "wait;merge/segments-empty",   "wait;worker/segments-full",
      "wait;shard/deliveries-empty", "wait;router/deliveries-full",
  };
  std::istringstream lines(folded);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("wait;", 0) != 0) continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_TRUE(known_tags.count(line.substr(0, space)))
        << "unknown wait tag: " << line;
  }
}

// The pipeline_alloc_test harness with sampling armed: converged
// steady-state processing must stay allocation-free while every thread
// takes SIGPROF samples and times its queue waits. See pipeline_alloc_test
// for the budget rationale (pool misses are scheduling-dependent).
constexpr ObjectId kVocab = 64;
constexpr StreamId kStreams = 4;
constexpr uint64_t kAllocsPerSlabMiss = 3;

std::vector<ObjectEvent> BuildUniformTrace(size_t count) {
  std::vector<ObjectEvent> events;
  events.reserve(count);
  Timestamp now = 0;
  for (size_t i = 0; i < count; ++i) {
    now += 300;
    events.push_back(ObjectEvent{static_cast<StreamId>(i % kStreams),
                                 static_cast<ObjectId>(i % kVocab), now});
  }
  return events;
}

TEST_F(ProfPipelineTest, ArmedSamplingAddsZeroSteadyStateAllocations) {
  MiningParams params;
  params.xi = Seconds(1);
  params.tau = Minutes(5);
  params.theta = 1u << 20;  // unreachable: mining runs, emits nothing
  params.min_pattern_size = 1;
  params.max_pattern_size = 5;
  params.max_segment_objects = 24;
  const std::vector<ObjectEvent> events = BuildUniformTrace(40000);

  ParallelEngineOptions options;
  options.num_workers = 2;
  options.num_miner_shards = 4;
  options.rebalance = true;
  options.steal = true;

  // Arm before construction: threads registering while armed allocate
  // their sample rings up front, inside the warm-up accounting. The heap
  // profiler stays OFF — its site table intentionally allocates.
  ASSERT_TRUE(prof::StartCpuProfiler(100));
  ParallelEngine engine(MinerKind::kCooMine, params, options);
  const size_t warm = events.size() / 2;
  engine.PushBatch(std::span(events.data(), warm));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  const SegmentPoolStats warm_pool = engine.segment_pool().stats();
  const uint64_t before = alloc_counter::allocations();
  engine.PushBatch(std::span(events.data() + warm, events.size() - warm));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const uint64_t steady = alloc_counter::allocations() - before;
  const SegmentPoolStats pool = engine.segment_pool().stats();

  engine.Finish();  // flush/join outside the measured window
  prof::StopCpuProfiler();

  const uint64_t ops = events.size() - warm;
  const uint64_t pool_misses = pool.slab_allocs - warm_pool.slab_allocs;
  EXPECT_LE(pool_misses, ops / 10)
      << "the segment pool kept missing in steady state";
  EXPECT_LE(steady, ops / 100 + kAllocsPerSlabMiss * pool_misses)
      << "steady-state pipeline with sampling armed performed " << steady
      << " heap allocations over " << ops << " events (" << pool_misses
      << " pool misses)";
}

}  // namespace
}  // namespace fcp
