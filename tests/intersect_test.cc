// Unit tests for the galloping sorted-set intersection used by the DI-Mine
// and Matrix-Mine support-counting paths.

#include "util/intersect.h"

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fcp {
namespace {

std::vector<uint64_t> Reference(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b) {
  std::vector<uint64_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<uint64_t> RandomSortedSet(Rng& rng, size_t size,
                                      uint64_t universe) {
  std::set<uint64_t> values;
  while (values.size() < size) values.insert(rng.Below(universe));
  return std::vector<uint64_t>(values.begin(), values.end());
}

TEST(IntersectTest, EmptyInputs) {
  std::vector<uint64_t> out{99};  // must be cleared
  IntersectSorted<uint64_t>({}, {1, 2, 3}, &out);
  EXPECT_TRUE(out.empty());
  IntersectSorted<uint64_t>({1, 2, 3}, {}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(IntersectTest, BalancedMerge) {
  std::vector<uint64_t> out;
  IntersectSorted<uint64_t>({1, 3, 5, 7, 9}, {2, 3, 4, 7, 10}, &out);
  EXPECT_EQ(out, (std::vector<uint64_t>{3, 7}));
  IntersectSorted<uint64_t>({1, 2, 3}, {1, 2, 3}, &out);
  EXPECT_EQ(out, (std::vector<uint64_t>{1, 2, 3}));
  IntersectSorted<uint64_t>({1, 2}, {3, 4}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(IntersectTest, SkewedSizesTakeTheGallopPath) {
  // |b| >= kGallopCrossoverRatio * |a| forces galloping. Hit the interesting
  // positions: before everything, dense run, sparse tail, past the end.
  std::vector<uint64_t> big;
  for (uint64_t v = 100; v < 1000; ++v) big.push_back(v);
  std::vector<uint64_t> small = {1, 100, 101, 555, 999, 2000};
  std::vector<uint64_t> out;
  IntersectSorted(small, big, &out);
  EXPECT_EQ(out, (std::vector<uint64_t>{100, 101, 555, 999}));
  // Symmetric argument order must give the same result.
  IntersectSorted(big, small, &out);
  EXPECT_EQ(out, (std::vector<uint64_t>{100, 101, 555, 999}));
}

TEST(IntersectTest, OutputCapacityIsReusedAcrossCalls) {
  std::vector<uint64_t> out;
  IntersectSorted<uint64_t>({1, 2, 3, 4, 5}, {1, 2, 3, 4, 5}, &out);
  const size_t capacity = out.capacity();
  for (int i = 0; i < 10; ++i) {
    IntersectSorted<uint64_t>({2, 4}, {1, 2, 3, 4, 5}, &out);
    EXPECT_EQ(out, (std::vector<uint64_t>{2, 4}));
  }
  EXPECT_EQ(out.capacity(), capacity);
}

TEST(IntersectTest, RandomizedAgainstSetIntersection) {
  Rng rng(11);
  std::vector<uint64_t> out;
  for (int round = 0; round < 300; ++round) {
    // Mix balanced and heavily skewed size pairs so both code paths run
    // (the skewed shape clears the crossover ratio with margin).
    const size_t a_size = 1 + rng.Below(40);
    const size_t b_size = round % 2 == 0
                              ? 1 + rng.Below(40)
                              : a_size * 2 * kGallopCrossoverRatio +
                                    rng.Below(200);
    const uint64_t universe = 1 + rng.Below(2000);
    const auto a = RandomSortedSet(rng, std::min<size_t>(a_size, universe),
                                   universe);
    const auto b = RandomSortedSet(rng, std::min<size_t>(b_size, universe),
                                   universe);
    IntersectSorted(a, b, &out);
    ASSERT_EQ(out, Reference(a, b)) << "round " << round;
  }
}

TEST(IntersectTest, RandomizedAcrossKernelLevels) {
  // The balanced branch runs the active dispatch kernel; the result must not
  // depend on which level is active.
  const kernels::KernelLevel saved = kernels::ActiveLevel();
  for (kernels::KernelLevel level :
       {kernels::KernelLevel::kScalar, kernels::KernelLevel::kSse42,
        kernels::KernelLevel::kAvx2}) {
    if (!kernels::LevelSupported(level)) continue;
    kernels::SetKernelLevel(level);
    Rng rng(17);
    std::vector<uint64_t> out;
    for (int round = 0; round < 100; ++round) {
      const uint64_t universe = 32 + rng.Below(1500);
      const auto a =
          RandomSortedSet(rng, 1 + rng.Below(universe / 2), universe);
      const auto b =
          RandomSortedSet(rng, 1 + rng.Below(universe / 2), universe);
      IntersectSorted(a, b, &out);
      ASSERT_EQ(out, Reference(a, b))
          << "level " << kernels::KernelLevelName(level) << " round " << round;
    }
  }
  kernels::SetKernelLevel(saved);
}

TEST(ShrinkToFitTest, SmallBuffersAreNeverReleased) {
  // Below the byte floor the release is never worth it, no matter the ratio.
  std::vector<uint64_t> v;
  v.reserve(4096 / sizeof(uint64_t));  // exactly the default floor
  EXPECT_FALSE(ShrinkToFitIfOversized(&v));
  EXPECT_GE(v.capacity(), 4096 / sizeof(uint64_t));
}

TEST(ShrinkToFitTest, SteadyStateCapacityIsKept) {
  // A buffer whose size hovers near capacity must be left alone — releasing
  // it would re-pay the allocation next call and break the zero-alloc
  // steady state.
  std::vector<uint64_t> v(4000);
  const size_t capacity = v.capacity();
  v.resize(3000);  // 1.3x oversize: below the 8x default factor
  EXPECT_FALSE(ShrinkToFitIfOversized(&v));
  EXPECT_EQ(v.capacity(), capacity);
}

TEST(ShrinkToFitTest, PathologicalHighWaterMarkIsReleased) {
  std::vector<uint64_t> v(100000);  // viral-trigger high-water mark
  v.resize(10);                     // workload shifted back to tiny
  EXPECT_TRUE(ShrinkToFitIfOversized(&v));
  EXPECT_LT(v.capacity() * sizeof(uint64_t), size_t{100000} * 8);
  EXPECT_EQ(v.size(), size_t{10});
}

TEST(ShrinkToFitTest, CustomFactorAndFloorAreHonored) {
  std::vector<uint64_t> v(1000);
  v.resize(400);
  // 2.5x oversized: released under factor 2, kept under the default 8.
  EXPECT_FALSE(ShrinkToFitIfOversized(&v));
  EXPECT_TRUE(ShrinkToFitIfOversized(&v, /*oversize_factor=*/2));
  // A huge floor protects even a massively oversized buffer.
  std::vector<uint64_t> w(100000);
  w.resize(1);
  EXPECT_FALSE(ShrinkToFitIfOversized(&w, 8, /*min_capacity_bytes=*/1 << 30));
}

}  // namespace
}  // namespace fcp
