#include "core/coomine.h"

#include <gtest/gtest.h>

#include "core/miner.h"
#include "test_util.h"
#include "util/rng.h"

namespace fcp {
namespace {

using ::fcp::testing::MakeSegment;
using ::fcp::testing::PatternsOf;

// Fig. 3 letters.
constexpr ObjectId b = 1, c = 2, d = 3, e = 4, f = 5, h = 6, j = 7, k = 8,
                   m = 9, n = 10, o = 11, p = 12, r = 13, s = 14, t = 15,
                   w = 16, z = 17;

MiningParams Example4Params() {
  MiningParams params;
  params.xi = Seconds(60);
  params.tau = Minutes(30);
  params.theta = 3;
  params.min_pattern_size = 1;
  params.max_pattern_size = 3;
  return params;
}

std::vector<Segment> PaperSegments() {
  return {
      MakeSegment(10, 1, {b, c, d}, 100),
      MakeSegment(11, 1, {c, d, f, k}, 200),
      MakeSegment(12, 1, {h, m, n}, 300),
      MakeSegment(13, 1, {n, c, p, o}, 400),
      MakeSegment(14, 1, {h, b, k, r, s, t}, 500),
      MakeSegment(20, 2, {e, c, f}, 150),
      MakeSegment(21, 2, {c, f, h, j}, 250),
      MakeSegment(22, 2, {j, p, o}, 350),
      MakeSegment(23, 2, {e, c, m, n}, 450),
      MakeSegment(24, 2, {n, s, w, z}, 550),
  };
}

TEST(CooMineTest, PaperExample4) {
  CooMine miner(Example4Params());
  std::vector<Fcp> out;
  for (const Segment& g : PaperSegments()) miner.AddSegment(g, &out);
  out.clear();

  // The new segment (m,n,p,o) in stream s3 completes, per Example 4:
  // FCP_1: {m},{n},{o},{p}; FCP_2: {m,n},{p,o}; no FCP_3.
  miner.AddSegment(MakeSegment(30, 3, {m, n, p, o}, 600), &out);
  const std::set<Pattern> got = PatternsOf(out);
  const std::set<Pattern> want = {{m}, {n}, {o}, {p}, {m, n}, {o, p}};
  EXPECT_EQ(got, want);
}

TEST(CooMineTest, PaperExample4StreamCounts) {
  CooMine miner(Example4Params());
  std::vector<Fcp> out;
  for (const Segment& g : PaperSegments()) miner.AddSegment(g, &out);
  out.clear();
  miner.AddSegment(MakeSegment(30, 3, {m, n, p, o}, 600), &out);
  for (const Fcp& fcp : out) {
    EXPECT_GE(fcp.streams.size(), 3u) << fcp.DebugString();
    // Streams are {1, 2, 3} for every pattern in this example.
    EXPECT_EQ(fcp.streams, (std::vector<StreamId>{1, 2, 3}))
        << fcp.DebugString();
    EXPECT_EQ(fcp.trigger, 30u);
  }
}

TEST(CooMineTest, NoFcpsBelowTheta) {
  MiningParams params = Example4Params();
  params.theta = 4;  // example only reaches 3 streams
  CooMine miner(params);
  std::vector<Fcp> out;
  for (const Segment& g : PaperSegments()) miner.AddSegment(g, &out);
  out.clear();
  miner.AddSegment(MakeSegment(30, 3, {m, n, p, o}, 600), &out);
  EXPECT_TRUE(out.empty());
}

TEST(CooMineTest, MinPatternSizeFiltersOutput) {
  MiningParams params = Example4Params();
  params.min_pattern_size = 2;
  CooMine miner(params);
  std::vector<Fcp> out;
  for (const Segment& g : PaperSegments()) miner.AddSegment(g, &out);
  out.clear();
  miner.AddSegment(MakeSegment(30, 3, {m, n, p, o}, 600), &out);
  EXPECT_EQ(PatternsOf(out), (std::set<Pattern>{{m, n}, {o, p}}));
}

TEST(CooMineTest, SameStreamOccurrencesCountOnce) {
  // Pattern {1,2} in three segments of ONE stream + the probe's stream:
  // only 2 distinct streams, below theta=3.
  MiningParams params = Example4Params();
  CooMine miner(params);
  std::vector<Fcp> out;
  miner.AddSegment(MakeSegment(1, 1, {1, 2}, 100), &out);
  miner.AddSegment(MakeSegment(2, 1, {1, 2, 3}, 200), &out);
  miner.AddSegment(MakeSegment(3, 1, {1, 2, 4}, 300), &out);
  out.clear();
  miner.AddSegment(MakeSegment(4, 2, {1, 2}, 400), &out);
  EXPECT_TRUE(out.empty());
  // A third distinct stream tips it over.
  miner.AddSegment(MakeSegment(5, 3, {1, 2}, 500), &out);
  EXPECT_EQ(PatternsOf(out), (std::set<Pattern>{{1}, {2}, {1, 2}}));
}

TEST(CooMineTest, ExpiredSupportersDoNotCount) {
  MiningParams params = Example4Params();
  params.theta = 2;
  CooMine miner(params);
  std::vector<Fcp> out;
  miner.AddSegment(MakeSegment(1, 1, {1, 2}, 0), &out);
  out.clear();
  // Far beyond tau: the old supporter no longer counts.
  const Timestamp late = params.tau + Minutes(5);
  miner.AddSegment(MakeSegment(2, 2, {1, 2}, late), &out);
  EXPECT_TRUE(out.empty());
  // And the expired segment was lazily deleted from the Seg-tree.
  EXPECT_EQ(miner.seg_tree().num_segments(), 1u);
}

TEST(CooMineTest, LazyDeletionKeepsTreeConsistent) {
  MiningParams params = Example4Params();
  params.theta = 2;
  CooMine miner(params);
  std::vector<Fcp> out;
  Timestamp now = 0;
  for (int i = 0; i < 200; ++i) {
    now += Minutes(1);
    miner.AddSegment(
        MakeSegment(static_cast<SegmentId>(i), static_cast<StreamId>(i % 4),
                    {static_cast<ObjectId>(i % 10),
                     static_cast<ObjectId>((i + 1) % 10)},
                    now),
        &out);
    if (i % 25 == 0) miner.seg_tree().CheckInvariants();
  }
  miner.seg_tree().CheckInvariants();
  // tau = 30 min: at most ~31 minutes of segments may be live.
  EXPECT_LE(miner.seg_tree().num_segments(), 35u);
}

TEST(CooMineTest, ForceMaintenanceSweeps) {
  MiningParams params = Example4Params();
  CooMine miner(params);
  std::vector<Fcp> out;
  miner.AddSegment(MakeSegment(1, 1, {1, 2}, 0), &out);
  miner.AddSegment(MakeSegment(2, 2, {3, 4}, 100), &out);
  EXPECT_EQ(miner.seg_tree().num_segments(), 2u);
  miner.ForceMaintenance(params.tau + 200);
  EXPECT_EQ(miner.seg_tree().num_segments(), 0u);
  EXPECT_GE(miner.stats().maintenance_runs, 1u);
}

TEST(CooMineTest, StatsAccumulate) {
  CooMine miner(Example4Params());
  std::vector<Fcp> out;
  for (const Segment& g : PaperSegments()) miner.AddSegment(g, &out);
  miner.AddSegment(MakeSegment(30, 3, {m, n, p, o}, 600), &out);
  const MinerStats& stats = miner.stats();
  EXPECT_EQ(stats.segments_processed, 11u);
  EXPECT_GT(stats.lcp_rows, 0u);
  EXPECT_GT(stats.candidates_checked, 0u);
  EXPECT_GT(stats.fcps_emitted, 0u);
  EXPECT_GE(stats.mining_ns, 0);
  EXPECT_GE(stats.maintenance_ns, 0);
}

TEST(CooMineTest, MaxSegmentObjectsCapBoundsWork) {
  MiningParams params = Example4Params();
  params.theta = 1;  // everything frequent -> worst case
  params.max_segment_objects = 3;
  params.max_pattern_size = 0;  // unbounded
  CooMine miner(params);
  std::vector<Fcp> out;
  std::vector<SegmentEntry> entries;
  for (ObjectId i = 0; i < 64; ++i) entries.push_back(SegmentEntry{i, 0});
  miner.AddSegment(Segment(1, 0, std::move(entries)), &out);
  // Capped at 3 objects: at most 2^3 - 1 = 7 patterns.
  EXPECT_LE(out.size(), 7u);
}


TEST(CooMineTest, PureLazyDeletionMatchesPeriodicSweeps) {
  // Expiry policy must not change results: validity is re-checked at every
  // query, so a miner that never sweeps (pure LD) emits the same FCPs.
  MiningParams params = Example4Params();
  params.theta = 2;
  CooMineOptions lazy_only;
  lazy_only.periodic_sweep = false;
  CooMine with_sweeps(params);
  CooMine without_sweeps(params, lazy_only);

  fcp::Rng rng(55);
  Timestamp now = 0;
  std::vector<Fcp> a, b;
  for (SegmentId id = 0; id < 300; ++id) {
    now += static_cast<Timestamp>(rng.Below(Minutes(2)));
    std::vector<SegmentEntry> entries;
    const size_t length = 1 + rng.Below(5);
    for (size_t i = 0; i < length; ++i) {
      entries.push_back(SegmentEntry{static_cast<ObjectId>(rng.Below(10)),
                                     now + static_cast<Timestamp>(i)});
    }
    const Segment segment(id, static_cast<StreamId>(rng.Below(4)),
                          std::move(entries));
    a.clear();
    b.clear();
    with_sweeps.AddSegment(segment, &a);
    without_sweeps.AddSegment(segment, &b);
    ASSERT_EQ(testing::SignaturesOf(a), testing::SignaturesOf(b))
        << "at segment " << id;
  }
  // The sweeping miner holds fewer live segments; both stay consistent.
  with_sweeps.seg_tree().CheckInvariants();
  without_sweeps.seg_tree().CheckInvariants();
  EXPECT_LE(with_sweeps.seg_tree().num_segments(),
            without_sweeps.seg_tree().num_segments());
}

}  // namespace
}  // namespace fcp
