#include "core/pattern_report.h"

#include <gtest/gtest.h>

namespace fcp {
namespace {

Fcp MakeFcp(Pattern objects, size_t num_streams, Timestamp end = 100) {
  Fcp fcp;
  fcp.objects = std::move(objects);
  for (StreamId s = 0; s < num_streams; ++s) fcp.streams.push_back(s);
  fcp.window_start = end - 50;
  fcp.window_end = end;
  return fcp;
}

TEST(MaximalOnlyTest, DropsSubsets) {
  const std::vector<Fcp> batch = {
      MakeFcp({1}, 3),       MakeFcp({2}, 3),    MakeFcp({1, 2}, 3),
      MakeFcp({1, 2, 3}, 3), MakeFcp({4, 5}, 3),
  };
  const auto maximal = MaximalOnly(batch);
  ASSERT_EQ(maximal.size(), 2u);
  EXPECT_EQ(maximal[0].objects, (Pattern{1, 2, 3}));
  EXPECT_EQ(maximal[1].objects, (Pattern{4, 5}));
}

TEST(MaximalOnlyTest, KeepsIncomparablePatterns) {
  const std::vector<Fcp> batch = {MakeFcp({1, 2}, 3), MakeFcp({2, 3}, 3)};
  EXPECT_EQ(MaximalOnly(batch).size(), 2u);
}

TEST(MaximalOnlyTest, DeduplicatesIdenticalPatterns) {
  const std::vector<Fcp> batch = {MakeFcp({1, 2}, 3), MakeFcp({1, 2}, 4)};
  const auto maximal = MaximalOnly(batch);
  ASSERT_EQ(maximal.size(), 1u);
  EXPECT_EQ(maximal[0].streams.size(), 3u);  // first occurrence kept
}

TEST(MaximalOnlyTest, EmptyBatch) {
  EXPECT_TRUE(MaximalOnly({}).empty());
}

TEST(PatternSupportIndexTest, TracksBestSupport) {
  PatternSupportIndex index;
  index.Add(MakeFcp({1, 2}, 3, 100));
  index.Add(MakeFcp({1, 2}, 7, 200));  // better
  index.Add(MakeFcp({1, 2}, 5, 300));  // worse, ignored
  EXPECT_EQ(index.SupportOf({1, 2}), 7u);
  EXPECT_EQ(index.SupportOf({9}), 0u);
  EXPECT_EQ(index.size(), 1u);
  const auto top = index.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].window_end, 200);  // window of the best support
}

TEST(PatternSupportIndexTest, TopKOrdering) {
  PatternSupportIndex index;
  index.Add(MakeFcp({1}, 5));
  index.Add(MakeFcp({2}, 9));
  index.Add(MakeFcp({3}, 7));
  index.Add(MakeFcp({4}, 7));  // tie with {3}: pattern order breaks it
  const auto top = index.TopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].pattern, (Pattern{2}));
  EXPECT_EQ(top[1].pattern, (Pattern{3}));
  EXPECT_EQ(top[2].pattern, (Pattern{4}));
}

TEST(PatternSupportIndexTest, TopKLargerThanSize) {
  PatternSupportIndex index;
  index.Add(MakeFcp({1}, 5));
  EXPECT_EQ(index.TopK(10).size(), 1u);
}

TEST(PatternSupportIndexTest, MaximalPatterns) {
  PatternSupportIndex index;
  index.Add(MakeFcp({1}, 9));
  index.Add(MakeFcp({2}, 9));
  index.Add(MakeFcp({1, 2}, 5));
  index.Add(MakeFcp({3}, 4));
  const auto maximal = index.MaximalPatterns();
  ASSERT_EQ(maximal.size(), 2u);
  EXPECT_EQ(maximal[0].pattern, (Pattern{1, 2}));
  EXPECT_EQ(maximal[1].pattern, (Pattern{3}));
}

TEST(PatternSupportIndexTest, Clear) {
  PatternSupportIndex index;
  index.Add(MakeFcp({1}, 2));
  index.Clear();
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.SupportOf({1}), 0u);
}

TEST(PatternSupportIndexTest, AddAll) {
  PatternSupportIndex index;
  index.AddAll({MakeFcp({1}, 2), MakeFcp({2}, 3), MakeFcp({1}, 4)});
  EXPECT_EQ(index.size(), 2u);
  EXPECT_EQ(index.SupportOf({1}), 4u);
}

}  // namespace
}  // namespace fcp
