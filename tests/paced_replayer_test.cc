#include "stream/paced_replayer.h"

#include <thread>

#include <gtest/gtest.h>

namespace fcp {
namespace {

std::vector<ObjectEvent> MakeEvents(size_t n) {
  std::vector<ObjectEvent> events;
  for (size_t i = 0; i < n; ++i) {
    events.push_back(ObjectEvent{0, static_cast<ObjectId>(i),
                                 static_cast<Timestamp>(i)});
  }
  return events;
}

TEST(PacedReplayerTest, DeliversAllEventsWhenQueueLarge) {
  const auto events = MakeEvents(500);
  BoundedQueue<ObjectEvent> queue(1000);
  const ReplayStats stats = ReplayAtRate(events, /*rate=*/10000.0, &queue);
  EXPECT_EQ(stats.offered, 500u);
  EXPECT_EQ(stats.accepted, 500u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(queue.size(), 500u);
}

TEST(PacedReplayerTest, DropsWhenQueueFull) {
  const auto events = MakeEvents(100);
  BoundedQueue<ObjectEvent> queue(10);
  const ReplayStats stats = ReplayAtRate(events, /*rate=*/100000.0, &queue);
  EXPECT_EQ(stats.offered, 100u);
  EXPECT_EQ(stats.accepted, 10u);
  EXPECT_EQ(stats.dropped, 90u);
}

TEST(PacedReplayerTest, PacingApproximatesRate) {
  // 200 events at 1000/s should take ~0.2 s.
  const auto events = MakeEvents(200);
  BoundedQueue<ObjectEvent> queue(1000);
  const ReplayStats stats = ReplayAtRate(events, /*rate=*/1000.0, &queue);
  EXPECT_EQ(stats.accepted, 200u);
  EXPECT_GE(stats.elapsed_seconds, 0.15);
  EXPECT_LE(stats.elapsed_seconds, 1.0);  // generous upper bound for CI noise
}

TEST(PacedReplayerTest, DeadlineStopsEarly) {
  const auto events = MakeEvents(1000000);
  BoundedQueue<ObjectEvent> queue(1u << 20);
  const ReplayStats stats =
      ReplayAtRate(events, /*rate=*/1000.0, &queue, /*deadline_seconds=*/0.1);
  EXPECT_LT(stats.offered, events.size());
  EXPECT_LE(stats.elapsed_seconds, 0.5);
}

TEST(PacedReplayerTest, ConcurrentConsumerSeesFifoOrder) {
  const auto events = MakeEvents(300);
  BoundedQueue<ObjectEvent> queue(50);
  std::vector<ObjectId> seen;
  std::thread consumer([&] {
    while (auto e = queue.Pop()) seen.push_back(e->object);
  });
  const ReplayStats stats = ReplayAtRate(events, /*rate=*/20000.0, &queue);
  queue.Close();
  consumer.join();
  EXPECT_EQ(stats.accepted + stats.dropped, 300u);
  // Whatever was accepted must be seen in order.
  EXPECT_EQ(seen.size(), stats.accepted);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

}  // namespace
}  // namespace fcp
