// Differential equivalence of the SIMD kernel layer (util/kernels/): every
// dispatch level the CPU supports must agree bit-for-bit with the scalar
// reference on every input — random and adversarial — and the miners'
// end-to-end output must be byte-identical under every level, serial and
// sharded. Levels the CPU (or build) lacks are skipped, not failed, so the
// suite passes on any machine.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <iterator>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/shard.h"
#include "core/miner.h"
#include "stream/segment.h"
#include "test_util.h"
#include "util/kernels/kernels.h"
#include "util/rng.h"

namespace fcp {
namespace {

using kernels::KernelLevel;
using kernels::KernelOps;
using testing::FcpSignature;
using testing::FullSignatures;

std::vector<KernelLevel> SupportedLevels() {
  std::vector<KernelLevel> levels = {KernelLevel::kScalar};
  if (kernels::LevelSupported(KernelLevel::kSse42)) {
    levels.push_back(KernelLevel::kSse42);
  }
  if (kernels::LevelSupported(KernelLevel::kAvx2)) {
    levels.push_back(KernelLevel::kAvx2);
  }
  return levels;
}

std::string LevelName(KernelLevel level) {
  return std::string(kernels::KernelLevelName(level));
}

// Restores the ambient dispatch level after a test that changes it.
class KernelLevelGuard {
 public:
  KernelLevelGuard() : saved_(kernels::ActiveLevel()) {}
  ~KernelLevelGuard() { kernels::SetKernelLevel(saved_); }

 private:
  KernelLevel saved_;
};

// ---------------------------------------------------------------------------
// Bitset kernels: popcount_atleast / and_popcount_atleast.
// ---------------------------------------------------------------------------

size_t TotalPopcount(const std::vector<uint64_t>& bits) {
  size_t count = 0;
  for (uint64_t word : bits) count += static_cast<size_t>(std::popcount(word));
  return count;
}

// Thresholds worth probing for a bitset with `count` set bits: the early-exit
// boundary cases on both sides plus degenerate extremes.
std::vector<size_t> InterestingThresholds(size_t count) {
  std::vector<size_t> thresholds = {0, 1, count / 2, count, count + 1,
                                    count + 1000};
  if (count > 0) thresholds.push_back(count - 1);
  return thresholds;
}

void CheckBitsetKernels(const std::vector<uint64_t>& a,
                        const std::vector<uint64_t>& b,
                        const std::string& label) {
  const size_t words = a.size();
  ASSERT_EQ(b.size(), words);
  std::vector<uint64_t> expected_and(words);
  for (size_t w = 0; w < words; ++w) expected_and[w] = a[w] & b[w];

  for (KernelLevel level : SupportedLevels()) {
    const KernelOps& ops = kernels::OpsFor(level);
    for (size_t threshold : InterestingThresholds(TotalPopcount(a))) {
      EXPECT_EQ(ops.popcount_atleast(a.data(), words, threshold),
                TotalPopcount(a) >= threshold)
          << label << " popcount_atleast level=" << LevelName(level)
          << " words=" << words << " threshold=" << threshold;
    }
    for (size_t threshold : InterestingThresholds(TotalPopcount(expected_and))) {
      std::vector<uint64_t> out(words, ~uint64_t{0});
      const bool got =
          ops.and_popcount_atleast(a.data(), b.data(), out.data(), words,
                                   threshold);
      EXPECT_EQ(got, TotalPopcount(expected_and) >= threshold)
          << label << " and_popcount_atleast level=" << LevelName(level)
          << " words=" << words << " threshold=" << threshold;
      // The contract: `out` is the complete AND regardless of the verdict
      // (CooMine reuses the buffer as the next level's tidset).
      EXPECT_EQ(out, expected_and)
          << label << " and output level=" << LevelName(level)
          << " words=" << words << " threshold=" << threshold;
    }
  }
}

TEST(KernelBitsetTest, AdversarialBitsets) {
  // Word counts straddling every internal cutoff: the generic fallback
  // (< 16 words for popcount, < 8 for fused AND), the 4-word vector step and
  // the every-8-vectors early-exit check (32 words).
  for (size_t words : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{4},
                       size_t{7}, size_t{8}, size_t{15}, size_t{16},
                       size_t{17}, size_t{31}, size_t{32}, size_t{33},
                       size_t{64}, size_t{65}, size_t{100}}) {
    CheckBitsetKernels(std::vector<uint64_t>(words, 0),
                       std::vector<uint64_t>(words, 0), "all-zero");
    CheckBitsetKernels(std::vector<uint64_t>(words, ~uint64_t{0}),
                       std::vector<uint64_t>(words, ~uint64_t{0}), "all-ones");
    if (words == 0) continue;
    // Single bit in the last word (tail path), and bits hugging the 64-bit
    // word boundaries (top bit of word k, bottom bit of word k+1).
    std::vector<uint64_t> single(words, 0);
    single.back() = uint64_t{1} << 63;
    CheckBitsetKernels(single, std::vector<uint64_t>(words, ~uint64_t{0}),
                       "single-bit");
    std::vector<uint64_t> straddle(words, 0);
    for (size_t w = 0; w < words; ++w) {
      straddle[w] = (uint64_t{1} << 63) | uint64_t{1};
    }
    CheckBitsetKernels(straddle, single, "boundary-straddle");
  }
}

TEST(KernelBitsetTest, RandomBitsetsAllLevelsMatchScalar) {
  Rng rng(20260806);
  for (int iter = 0; iter < 200; ++iter) {
    const size_t words = rng.Below(80);
    std::vector<uint64_t> a(words);
    std::vector<uint64_t> b(words);
    // Mix densities: sparse bitsets exercise the early exit's "never fires"
    // side, dense ones the "fires quickly" side.
    const int shift = static_cast<int>(rng.Below(3)) * 16;
    for (size_t w = 0; w < words; ++w) {
      a[w] = rng.Next() & (rng.Next() >> shift);
      b[w] = rng.Next() & (rng.Next() >> shift);
    }
    CheckBitsetKernels(a, b, "random iter " + std::to_string(iter));
  }
}

// ---------------------------------------------------------------------------
// Sorted intersection kernels.
// ---------------------------------------------------------------------------

template <typename T>
std::vector<T> ReferenceIntersect(const std::vector<T>& a,
                                  const std::vector<T>& b) {
  std::vector<T> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

template <typename T>
size_t RunIntersect(const KernelOps& ops, const std::vector<T>& a,
                    const std::vector<T>& b, std::vector<T>* out) {
  out->assign(std::min(a.size(), b.size()), T{});
  if constexpr (std::is_same_v<T, uint32_t>) {
    return ops.intersect_u32(a.data(), a.size(), b.data(), b.size(),
                             out->data());
  } else {
    return ops.intersect_u64(a.data(), a.size(), b.data(), b.size(),
                             out->data());
  }
}

template <typename T>
void CheckIntersect(const std::vector<T>& a, const std::vector<T>& b,
                    const std::string& label) {
  const std::vector<T> expected = ReferenceIntersect(a, b);
  for (KernelLevel level : SupportedLevels()) {
    const KernelOps& ops = kernels::OpsFor(level);
    for (bool swap : {false, true}) {
      std::vector<T> out;
      const size_t n = swap ? RunIntersect(ops, b, a, &out)
                            : RunIntersect(ops, a, b, &out);
      out.resize(n);
      EXPECT_EQ(out, expected)
          << label << " level=" << LevelName(level) << " swap=" << swap
          << " |a|=" << a.size() << " |b|=" << b.size();
    }
  }
}

template <typename T>
std::vector<T> SortedUnique(Rng* rng, size_t size, uint64_t universe) {
  std::set<T> values;
  while (values.size() < size) {
    values.insert(static_cast<T>(rng->Below(universe)));
  }
  return std::vector<T>(values.begin(), values.end());
}

template <typename T>
void IntersectAdversarialCases() {
  using V = std::vector<T>;
  CheckIntersect<T>({}, {}, "both-empty");
  CheckIntersect<T>({}, {1, 2, 3}, "one-empty");
  CheckIntersect<T>({42}, {42}, "single-match");
  CheckIntersect<T>({41}, {42}, "single-miss");
  // All-match at exactly the block widths (4/8 lanes) and one off each side.
  for (size_t size : {size_t{1}, size_t{2}, size_t{3}, size_t{4}, size_t{5},
                      size_t{7}, size_t{8}, size_t{9}, size_t{16},
                      size_t{17}, size_t{64}}) {
    V v(size);
    for (size_t i = 0; i < size; ++i) v[i] = static_cast<T>(i * 3 + 1);
    CheckIntersect<T>(v, v, "all-match size " + std::to_string(size));
    // Disjoint interleave: a gets even slots, b odd — no matches, maximal
    // block-compare churn.
    V evens, odds;
    for (size_t i = 0; i < size; ++i) {
      evens.push_back(static_cast<T>(2 * i));
      odds.push_back(static_cast<T>(2 * i + 1));
    }
    CheckIntersect<T>(evens, odds, "interleaved size " + std::to_string(size));
  }
  // 100x skew: the shape IntersectSorted routes to galloping, but the raw
  // kernels must still handle it exactly (the crossover is policy, not a
  // correctness boundary).
  Rng rng(7);
  const V small = SortedUnique<T>(&rng, 40, 400000);
  V large = SortedUnique<T>(&rng, 4000, 400000);
  for (T v : small) large.push_back(v);
  std::sort(large.begin(), large.end());
  large.erase(std::unique(large.begin(), large.end()), large.end());
  CheckIntersect<T>(small, large, "100x-skew");
  // Runs of equal-density duplicates-free consecutive values.
  V run_a, run_b;
  for (T v = 100; v < 164; ++v) run_a.push_back(v);
  for (T v = 132; v < 196; ++v) run_b.push_back(v);
  CheckIntersect<T>(run_a, run_b, "overlapping-runs");
}

TEST(KernelIntersectTest, AdversarialU32) { IntersectAdversarialCases<uint32_t>(); }
TEST(KernelIntersectTest, AdversarialU64) { IntersectAdversarialCases<uint64_t>(); }

template <typename T>
void IntersectRandomCases() {
  Rng rng(sizeof(T) == 4 ? 101u : 202u);
  for (int iter = 0; iter < 300; ++iter) {
    const size_t a_size = rng.Below(120);
    const size_t b_size = rng.Below(120);
    // Narrow universes force dense overlap; wide ones sparse overlap.
    const uint64_t universe = 32 + rng.Below(4000);
    const auto a = SortedUnique<T>(&rng, std::min<size_t>(a_size, universe / 2),
                                   universe);
    const auto b = SortedUnique<T>(&rng, std::min<size_t>(b_size, universe / 2),
                                   universe);
    CheckIntersect<T>(a, b, "random iter " + std::to_string(iter));
  }
}

TEST(KernelIntersectTest, RandomU32MatchesReference) {
  IntersectRandomCases<uint32_t>();
}
TEST(KernelIntersectTest, RandomU64MatchesReference) {
  IntersectRandomCases<uint64_t>();
}

// ---------------------------------------------------------------------------
// Miner-level equivalence: byte-identical output per dispatch level.
// ---------------------------------------------------------------------------

std::vector<Segment> RandomSegments(uint64_t seed) {
  constexpr size_t kNumSegments = 500;
  constexpr ObjectId kVocab = 30;
  constexpr StreamId kStreams = 10;
  Rng rng(seed);
  std::vector<Segment> out;
  out.reserve(kNumSegments);
  Timestamp time = 0;
  for (size_t i = 0; i < kNumSegments; ++i) {
    time += 1 + static_cast<Timestamp>(rng.Below(Seconds(45)));
    const uint32_t length = 2 + static_cast<uint32_t>(rng.Below(7));
    std::vector<SegmentEntry> entries;
    entries.reserve(length);
    for (uint32_t j = 0; j < length; ++j) {
      entries.push_back(SegmentEntry{static_cast<ObjectId>(rng.Below(kVocab)),
                                     time + static_cast<Timestamp>(j * 100)});
    }
    out.emplace_back(static_cast<SegmentId>(i + 1),
                     static_cast<StreamId>(rng.Below(kStreams)),
                     std::move(entries));
  }
  return out;
}

MiningParams Params() {
  MiningParams params;
  params.xi = Seconds(60);
  params.tau = Minutes(10);
  params.theta = 3;
  params.min_pattern_size = 1;
  params.max_pattern_size = 4;
  params.max_segment_objects = 16;
  return params;
}

std::vector<Fcp> MineSerial(MinerKind kind, const MiningParams& params,
                            const std::vector<Segment>& segments) {
  auto miner = MakeMiner(kind, params);
  std::vector<Fcp> out;
  std::vector<Fcp> batch;
  for (const Segment& segment : segments) {
    batch.clear();
    miner->AddSegment(segment, &batch);
    for (Fcp& fcp : batch) out.push_back(std::move(fcp));
  }
  return out;
}

std::vector<Fcp> MineSharded(MinerKind kind, const MiningParams& params,
                             uint32_t num_shards,
                             const std::vector<Segment>& segments) {
  std::vector<std::unique_ptr<FcpMiner>> miners;
  for (uint32_t s = 0; s < num_shards; ++s) {
    miners.push_back(MakeMiner(kind, params, ShardSpec{s, num_shards}));
  }
  Timestamp watermark = kMinTimestamp;
  std::vector<Fcp> out;
  std::vector<Fcp> batch;
  std::set<uint32_t> targets;
  for (const Segment& segment : segments) {
    watermark = std::max(watermark, segment.end_time());
    targets.clear();
    for (ObjectId object : segment.DistinctObjects()) {
      targets.insert(ShardOf(object, num_shards));
    }
    for (uint32_t target : targets) {
      miners[target]->AdvanceWatermark(watermark);
      batch.clear();
      miners[target]->AddSegment(segment, &batch);
      for (Fcp& fcp : batch) out.push_back(std::move(fcp));
    }
  }
  return out;
}

class MinerKernelEquivalenceTest : public ::testing::TestWithParam<MinerKind> {
};

TEST_P(MinerKernelEquivalenceTest, SerialOutputIdenticalAcrossLevels) {
  const MinerKind kind = GetParam();
  const MiningParams params = Params();
  KernelLevelGuard guard;
  for (uint64_t seed : {51u, 52u}) {
    const std::vector<Segment> segments = RandomSegments(seed);
    kernels::SetKernelLevel(KernelLevel::kScalar);
    const std::vector<FcpSignature> reference =
        FullSignatures(MineSerial(kind, params, segments));
    ASSERT_FALSE(reference.empty()) << "vacuous workload, seed " << seed;
    for (KernelLevel level : SupportedLevels()) {
      kernels::SetKernelLevel(level);
      EXPECT_EQ(FullSignatures(MineSerial(kind, params, segments)), reference)
          << "level=" << LevelName(level) << " seed=" << seed;
    }
  }
}

TEST_P(MinerKernelEquivalenceTest, ShardedOutputIdenticalAcrossLevels) {
  constexpr uint32_t kShards = 4;
  const MinerKind kind = GetParam();
  const MiningParams params = Params();
  KernelLevelGuard guard;
  const std::vector<Segment> segments = RandomSegments(53);
  kernels::SetKernelLevel(KernelLevel::kScalar);
  const std::vector<FcpSignature> reference =
      FullSignatures(MineSharded(kind, params, kShards, segments));
  ASSERT_FALSE(reference.empty());
  for (KernelLevel level : SupportedLevels()) {
    kernels::SetKernelLevel(level);
    EXPECT_EQ(FullSignatures(MineSharded(kind, params, kShards, segments)),
              reference)
        << "level=" << LevelName(level);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMiners, MinerKernelEquivalenceTest,
                         ::testing::Values(MinerKind::kCooMine,
                                           MinerKind::kDiMine,
                                           MinerKind::kMatrixMine));

// Unsupported levels clamp (with a warning) instead of crashing, so
// FCP_KERNEL=avx2 is safe in CI matrices that include non-AVX2 machines.
TEST(KernelDispatchTest, UnsupportedLevelClampsToBestSupported) {
  KernelLevelGuard guard;
  const KernelLevel got = kernels::SetKernelLevel(KernelLevel::kAvx2);
  EXPECT_TRUE(kernels::LevelSupported(got));
  EXPECT_EQ(got, kernels::ActiveLevel());
}

TEST(KernelDispatchTest, FromStringRejectsUnknownNames) {
  KernelLevelGuard guard;
  EXPECT_TRUE(kernels::SetKernelLevelFromString("auto"));
  EXPECT_TRUE(kernels::SetKernelLevelFromString("scalar"));
  EXPECT_FALSE(kernels::SetKernelLevelFromString("neon"));
  EXPECT_FALSE(kernels::SetKernelLevelFromString(""));
}

}  // namespace
}  // namespace fcp
