#include "io/trace_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace fcp {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fcp_trace_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }
  void WriteFile(const std::string& name, const std::string& contents) {
    std::ofstream out(Path(name), std::ios::binary);
    out << contents;
  }

  std::filesystem::path dir_;
};

std::vector<ObjectEvent> SampleEvents() {
  return {
      {0, 7, 100},
      {1, 8, 150},
      {0, 9, 200},
      {2, 7, -50},  // negative timestamps are legal (epoch-relative)
  };
}

TEST_F(TraceIoTest, ParseCsvEventBasics) {
  ObjectEvent event;
  ASSERT_TRUE(ParseCsvEvent("3,42,1000", ',', &event).ok());
  EXPECT_EQ(event, (ObjectEvent{3, 42, 1000}));
  ASSERT_TRUE(ParseCsvEvent(" 3 , 42 , -7 ", ',', &event).ok());
  EXPECT_EQ(event.time, -7);
  ASSERT_TRUE(ParseCsvEvent("3;42;5", ';', &event).ok());
  EXPECT_EQ(event.object, 42u);
}

TEST_F(TraceIoTest, ParseCsvEventRejectsGarbage) {
  ObjectEvent event;
  EXPECT_FALSE(ParseCsvEvent("1,2", ',', &event).ok());          // arity
  EXPECT_FALSE(ParseCsvEvent("1,2,3,4", ',', &event).ok());      // arity
  EXPECT_FALSE(ParseCsvEvent("a,2,3", ',', &event).ok());        // stream
  EXPECT_FALSE(ParseCsvEvent("1,-2,3", ',', &event).ok());       // object
  EXPECT_FALSE(ParseCsvEvent("1,2,3.5", ',', &event).ok());      // time
  EXPECT_FALSE(ParseCsvEvent("1,2,", ',', &event).ok());         // empty
  EXPECT_FALSE(ParseCsvEvent("99999999999,2,3", ',', &event).ok());  // ovfl
}

TEST_F(TraceIoTest, CsvRoundTrip) {
  const auto events = SampleEvents();
  ASSERT_TRUE(SaveCsvTrace(Path("t.csv"), events).ok());
  std::vector<ObjectEvent> loaded;
  ASSERT_TRUE(LoadCsvTrace(Path("t.csv"), CsvOptions{}, &loaded).ok());
  // Loader sorts by time.
  ASSERT_EQ(loaded.size(), events.size());
  EXPECT_EQ(loaded.front().time, -50);
  EXPECT_EQ(loaded.back().time, 200);
}

TEST_F(TraceIoTest, CsvSkipsCommentsAndBlanks) {
  WriteFile("c.csv",
            "# a comment\n"
            "\n"
            "0,1,10\n"
            "   \n"
            "# another\n"
            "1,2,20\n");
  std::vector<ObjectEvent> loaded;
  ASSERT_TRUE(LoadCsvTrace(Path("c.csv"), CsvOptions{}, &loaded).ok());
  EXPECT_EQ(loaded.size(), 2u);
}

TEST_F(TraceIoTest, CsvHeaderHandling) {
  WriteFile("h.csv", "stream,object,time_ms\n0,1,10\n");
  std::vector<ObjectEvent> loaded;
  ASSERT_TRUE(LoadCsvTrace(Path("h.csv"), CsvOptions{}, &loaded).ok());
  EXPECT_EQ(loaded.size(), 1u);

  CsvOptions strict;
  strict.allow_header = false;
  const Status status = LoadCsvTrace(Path("h.csv"), strict, &loaded);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 1"), std::string::npos);
}

TEST_F(TraceIoTest, CsvErrorsNameTheLine) {
  WriteFile("bad.csv", "0,1,10\n0,1\n");
  std::vector<ObjectEvent> loaded;
  const Status status = LoadCsvTrace(Path("bad.csv"), CsvOptions{}, &loaded);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 2"), std::string::npos)
      << status.message();
}

TEST_F(TraceIoTest, CsvMissingFile) {
  std::vector<ObjectEvent> loaded;
  EXPECT_EQ(LoadCsvTrace(Path("nope.csv"), CsvOptions{}, &loaded).code(),
            StatusCode::kNotFound);
}

TEST_F(TraceIoTest, CsvUnsortedOptional) {
  WriteFile("u.csv", "0,1,300\n0,2,100\n");
  CsvOptions unsorted;
  unsorted.sort_events = false;
  std::vector<ObjectEvent> loaded;
  ASSERT_TRUE(LoadCsvTrace(Path("u.csv"), unsorted, &loaded).ok());
  EXPECT_EQ(loaded[0].time, 300);  // original order preserved
}

TEST_F(TraceIoTest, BinaryRoundTrip) {
  const auto events = SampleEvents();
  ASSERT_TRUE(SaveBinaryTrace(Path("t.fcpt"), events).ok());
  std::vector<ObjectEvent> loaded;
  ASSERT_TRUE(LoadBinaryTrace(Path("t.fcpt"), &loaded).ok());
  EXPECT_EQ(loaded, events);  // binary preserves exact order
}

TEST_F(TraceIoTest, BinaryEmptyTrace) {
  ASSERT_TRUE(SaveBinaryTrace(Path("e.fcpt"), {}).ok());
  std::vector<ObjectEvent> loaded = SampleEvents();
  ASSERT_TRUE(LoadBinaryTrace(Path("e.fcpt"), &loaded).ok());
  EXPECT_TRUE(loaded.empty());
}

TEST_F(TraceIoTest, BinaryRejectsBadMagic) {
  WriteFile("junk.fcpt", "NOPE0000000000000000");
  std::vector<ObjectEvent> loaded;
  EXPECT_EQ(LoadBinaryTrace(Path("junk.fcpt"), &loaded).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(TraceIoTest, BinaryRejectsTruncation) {
  const auto events = SampleEvents();
  ASSERT_TRUE(SaveBinaryTrace(Path("t.fcpt"), events).ok());
  // Truncate the file mid-record.
  std::ifstream in(Path("t.fcpt"), std::ios::binary);
  std::string buffer((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  in.close();
  WriteFile("trunc.fcpt", buffer.substr(0, buffer.size() - 5));
  std::vector<ObjectEvent> loaded;
  EXPECT_EQ(LoadBinaryTrace(Path("trunc.fcpt"), &loaded).code(),
            StatusCode::kOutOfRange);
}

TEST_F(TraceIoTest, BinaryRejectsWrongVersion) {
  const auto events = SampleEvents();
  ASSERT_TRUE(SaveBinaryTrace(Path("t.fcpt"), events).ok());
  std::ifstream in(Path("t.fcpt"), std::ios::binary);
  std::string buffer((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  in.close();
  buffer[4] = 99;  // bump version byte
  WriteFile("v.fcpt", buffer);
  std::vector<ObjectEvent> loaded;
  const Status status = LoadBinaryTrace(Path("v.fcpt"), &loaded);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("version"), std::string::npos);
}

TEST_F(TraceIoTest, DispatcherByExtension) {
  const auto events = SampleEvents();
  ASSERT_TRUE(SaveCsvTrace(Path("d.csv"), events).ok());
  ASSERT_TRUE(SaveBinaryTrace(Path("d.fcpt"), events).ok());
  std::vector<ObjectEvent> a, b;
  EXPECT_TRUE(LoadTrace(Path("d.csv"), &a).ok());
  EXPECT_TRUE(LoadTrace(Path("d.fcpt"), &b).ok());
  EXPECT_EQ(a.size(), events.size());
  EXPECT_EQ(b.size(), events.size());
  EXPECT_EQ(LoadTrace(Path("d.txt"), &a).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(TraceIoTest, LargeRoundTripPreservesEverything) {
  std::vector<ObjectEvent> events;
  for (uint32_t i = 0; i < 10000; ++i) {
    events.push_back(ObjectEvent{i % 37, i * 7919u,
                                 static_cast<Timestamp>(i) * 13 - 5000});
  }
  ASSERT_TRUE(SaveBinaryTrace(Path("big.fcpt"), events).ok());
  std::vector<ObjectEvent> loaded;
  ASSERT_TRUE(LoadBinaryTrace(Path("big.fcpt"), &loaded).ok());
  EXPECT_EQ(loaded, events);
}

}  // namespace
}  // namespace fcp
