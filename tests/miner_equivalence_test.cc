// The central cross-validation property: CooMine, DIMine, MatrixMine and the
// brute-force oracle produce identical FCPs (patterns AND supporting stream
// sets) on every trigger, across random workloads and a parameter grid.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/miner.h"
#include "stream/segment.h"
#include "stream/stream_mux.h"
#include "test_util.h"
#include "util/rng.h"

namespace fcp {
namespace {

using ::fcp::testing::SignaturesOf;

struct GridParams {
  uint64_t seed;
  uint32_t theta;
  DurationMs tau;
  uint32_t max_k;
};

// Random multi-stream segment workload: segments arrive in end-time order,
// with object overlap engineered so that cross-stream patterns happen.
std::vector<Segment> RandomWorkload(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<Segment> segments;
  Timestamp now = 0;
  for (SegmentId id = 0; id < count; ++id) {
    now += static_cast<Timestamp>(rng.Below(Minutes(2)));
    const StreamId stream = static_cast<StreamId>(rng.Below(5));
    const size_t length = 1 + rng.Below(6);
    std::vector<SegmentEntry> entries;
    Timestamp t = now;
    for (size_t i = 0; i < length; ++i) {
      // Small object universe -> plenty of collisions across streams.
      entries.push_back(SegmentEntry{static_cast<ObjectId>(rng.Below(12)), t});
      t += static_cast<Timestamp>(rng.Below(Seconds(5)));
    }
    segments.emplace_back(id, stream, std::move(entries));
  }
  return segments;
}

class MinerEquivalenceTest : public ::testing::TestWithParam<GridParams> {};

TEST_P(MinerEquivalenceTest, AllMinersAgreeOnEveryTrigger) {
  const GridParams grid = GetParam();
  MiningParams params;
  params.xi = Minutes(2);
  params.tau = grid.tau;
  params.theta = grid.theta;
  params.min_pattern_size = 1;
  params.max_pattern_size = grid.max_k;
  ASSERT_TRUE(params.Validate().ok());

  std::vector<std::unique_ptr<FcpMiner>> miners;
  miners.push_back(MakeMiner(MinerKind::kBruteForce, params));
  miners.push_back(MakeMiner(MinerKind::kCooMine, params));
  miners.push_back(MakeMiner(MinerKind::kDiMine, params));
  miners.push_back(MakeMiner(MinerKind::kMatrixMine, params));

  const std::vector<Segment> workload = RandomWorkload(grid.seed, 150);
  std::vector<Fcp> reference, candidate;
  for (const Segment& segment : workload) {
    reference.clear();
    miners[0]->AddSegment(segment, &reference);
    const auto want = SignaturesOf(reference);
    for (size_t i = 1; i < miners.size(); ++i) {
      candidate.clear();
      miners[i]->AddSegment(segment, &candidate);
      EXPECT_EQ(SignaturesOf(candidate), want)
          << miners[i]->name() << " disagrees with BruteForce on segment "
          << segment.DebugString();
    }
  }
}

std::vector<GridParams> MakeGrid() {
  std::vector<GridParams> grid;
  for (uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    for (uint32_t theta : {1u, 2u, 3u}) {
      grid.push_back({seed, theta, Minutes(10), 4});
    }
    // Tight tau exercises expiry; large max_k exercises deep Apriori.
    grid.push_back({seed, 2, Minutes(3), 6});
    grid.push_back({seed, 4, Minutes(30), 3});
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MinerEquivalenceTest, ::testing::ValuesIn(MakeGrid()),
    [](const ::testing::TestParamInfo<GridParams>& info) {
      return "seed" + std::to_string(info.param.seed) + "_theta" +
             std::to_string(info.param.theta) + "_tau" +
             std::to_string(info.param.tau / Minutes(1)) + "_k" +
             std::to_string(info.param.max_k);
    });

// Equivalence must also hold when segments come from the real segmenter over
// a realistic interleaved event feed.
TEST(MinerEquivalenceStreamTest, SegmenterFedMinersAgree) {
  MiningParams params;
  params.xi = Seconds(30);
  params.tau = Minutes(2);
  params.theta = 2;
  params.max_pattern_size = 4;

  Rng rng(77);
  StreamMux mux(params.xi);
  std::vector<std::unique_ptr<FcpMiner>> miners;
  miners.push_back(MakeMiner(MinerKind::kBruteForce, params));
  miners.push_back(MakeMiner(MinerKind::kCooMine, params));
  miners.push_back(MakeMiner(MinerKind::kDiMine, params));
  miners.push_back(MakeMiner(MinerKind::kMatrixMine, params));

  Timestamp now = 0;
  std::vector<SegmentRef> completed;
  std::vector<Fcp> reference, candidate;
  for (int i = 0; i < 1500; ++i) {
    now += static_cast<Timestamp>(rng.Below(Seconds(4)));
    const ObjectEvent event{static_cast<StreamId>(rng.Below(4)),
                            static_cast<ObjectId>(rng.Below(6)), now};
    completed.clear();
    mux.Push(event, &completed);
    for (const SegmentRef& segment : completed) {
      reference.clear();
      miners[0]->AddSegment(segment, &reference);
      const auto want = SignaturesOf(reference);
      for (size_t m = 1; m < miners.size(); ++m) {
        candidate.clear();
        miners[m]->AddSegment(segment, &candidate);
        ASSERT_EQ(SignaturesOf(candidate), want)
            << miners[m]->name() << " @ " << segment->DebugString();
      }
    }
  }
}

}  // namespace
}  // namespace fcp
