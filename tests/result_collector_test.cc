#include "core/result_collector.h"

#include <gtest/gtest.h>

namespace fcp {
namespace {

Fcp MakeFcp(Pattern objects, Timestamp end) {
  Fcp fcp;
  fcp.objects = std::move(objects);
  fcp.streams = {0, 1, 2};
  fcp.window_start = end - 100;
  fcp.window_end = end;
  return fcp;
}

TEST(ResultCollectorTest, NoSuppressionAcceptsEverything) {
  ResultCollector collector(0);
  EXPECT_TRUE(collector.Offer(MakeFcp({1, 2}, 100)));
  EXPECT_TRUE(collector.Offer(MakeFcp({1, 2}, 101)));
  EXPECT_EQ(collector.results().size(), 2u);
  EXPECT_EQ(collector.total_offered(), 2u);
  EXPECT_EQ(collector.total_suppressed(), 0u);
}

TEST(ResultCollectorTest, SuppressesRepeatsWithinWindow) {
  ResultCollector collector(1000);
  EXPECT_TRUE(collector.Offer(MakeFcp({1, 2}, 100)));
  EXPECT_FALSE(collector.Offer(MakeFcp({1, 2}, 500)));   // 400 < 1000
  EXPECT_FALSE(collector.Offer(MakeFcp({1, 2}, 1099)));  // 999 < 1000
  EXPECT_TRUE(collector.Offer(MakeFcp({1, 2}, 1100)));   // exactly 1000
  EXPECT_EQ(collector.total_suppressed(), 2u);
  EXPECT_EQ(collector.results().size(), 2u);
}

TEST(ResultCollectorTest, DifferentPatternsIndependent) {
  ResultCollector collector(1000);
  EXPECT_TRUE(collector.Offer(MakeFcp({1, 2}, 100)));
  EXPECT_TRUE(collector.Offer(MakeFcp({1, 3}, 100)));
  EXPECT_TRUE(collector.Offer(MakeFcp({1}, 100)));
}

TEST(ResultCollectorTest, DistinctPatternCountsBySize) {
  ResultCollector collector(0);
  collector.Offer(MakeFcp({1}, 1));
  collector.Offer(MakeFcp({2}, 2));
  collector.Offer(MakeFcp({1}, 3));      // repeat: not a new distinct
  collector.Offer(MakeFcp({1, 2}, 4));
  collector.Offer(MakeFcp({3, 4, 5}, 5));
  const auto& counts = collector.distinct_patterns_by_size();
  EXPECT_EQ(counts.at(1), 2u);
  EXPECT_EQ(counts.at(2), 1u);
  EXPECT_EQ(counts.at(3), 1u);
}

TEST(ResultCollectorTest, OfferAllCollectsAccepted) {
  ResultCollector collector(1000);
  std::vector<Fcp> batch = {MakeFcp({1}, 100), MakeFcp({1}, 200),
                            MakeFcp({2}, 100)};
  std::vector<Fcp> accepted;
  collector.OfferAll(batch, &accepted);
  EXPECT_EQ(accepted.size(), 2u);
}

TEST(ResultCollectorTest, ClearResets) {
  ResultCollector collector(1000);
  collector.Offer(MakeFcp({1}, 100));
  collector.Clear();
  EXPECT_TRUE(collector.results().empty());
  EXPECT_EQ(collector.total_offered(), 0u);
  EXPECT_TRUE(collector.Offer(MakeFcp({1}, 100)));  // no longer suppressed
}

}  // namespace
}  // namespace fcp
