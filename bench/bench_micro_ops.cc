// Google-benchmark microbenchmarks of the individual operations underlying
// the figure harnesses: segmenter push, Seg-tree insert/SLCP/remove,
// DI-Index and Matrix ops, Apriori candidate generation, and end-to-end
// AddSegment for each miner.
//
// Before the google-benchmark suite, a custom-timed kernel section measures
// the SIMD dispatch layer (util/kernels/) at every level the machine
// supports: fused AND+popcount over tidset bitsets, balanced sorted
// intersection (u32 and u64), and the merge-vs-gallop crossover sweep that
// justifies kGallopCrossoverRatio. `--json=<path>` appends those datapoints
// (with speedup-vs-scalar extras) to a BENCH_*.json trajectory;
// `--kernel=auto|scalar|sse|avx2` pins the dispatch level the
// google-benchmark miner benches run at. `--benchmark_filter='^$'` skips the
// google-benchmark suite when only the kernel table is wanted.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <functional>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.h"
#include "core/apriori.h"
#include "core/miner.h"
#include "index/di_index.h"
#include "index/matrix_index.h"
#include "index/seg_tree.h"
#include "stream/segmenter.h"
#include "util/intersect.h"
#include "util/kernels/kernels.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace fcp::bench {
namespace {

// Shared pre-generated workload (built once; benchmarks index into it).
const std::vector<ObjectEvent>& TrafficEvents() {
  static const std::vector<ObjectEvent>* events =
      new std::vector<ObjectEvent>(
          GenerateEvents(Dataset::kTraffic, 120000, 42));
  return *events;
}

const std::vector<Segment>& TrafficSegments() {
  static const std::vector<Segment>* segments = new std::vector<Segment>(
      SegmentTrace(TrafficEvents(), Seconds(60)));
  return *segments;
}

void BM_SegmenterPush(benchmark::State& state) {
  const auto& events = TrafficEvents();
  SegmentIdGen ids;
  SegmentPool pool;
  Segmenter segmenter(0, Seconds(60), &ids, &pool);
  std::vector<SegmentRef> out;
  size_t i = 0;
  for (auto _ : state) {
    const ObjectEvent& e = events[i];
    segmenter.Push(e.object, e.time, &out);
    if (++i == events.size()) {
      i = 0;
      state.PauseTiming();
      segmenter.Flush(&out);
      out.clear();
      state.ResumeTiming();
    }
    if (out.size() > 4096) out.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SegmenterPush);

void BM_SegTreeInsert(benchmark::State& state) {
  const auto& segments = TrafficSegments();
  SegTree tree;
  size_t i = 0;
  for (auto _ : state) {
    tree.Insert(segments[i]);
    if (++i == segments.size()) {
      state.PauseTiming();
      tree.RemoveExpired(kMaxTimestamp - 1, 0);  // reset to empty
      i = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SegTreeInsert);

void BM_SegTreeSlcp(benchmark::State& state) {
  const auto& segments = TrafficSegments();
  SegTree tree;
  const size_t indexed = segments.size() / 2;
  Timestamp watermark = kMinTimestamp;
  for (size_t i = 0; i < indexed; ++i) {
    tree.Insert(segments[i]);
    watermark = std::max(watermark, segments[i].end_time());
  }
  size_t i = indexed;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Slcp(segments[i], watermark, Minutes(30), nullptr));
    if (++i == segments.size()) i = indexed;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SegTreeSlcp);

void BM_SegTreeInsertRemove(benchmark::State& state) {
  const auto& segments = TrafficSegments();
  SegTree tree;
  // Steady-state churn: keep a window of 4096 live segments. On trace
  // exhaustion, rebuild the window outside the timed region (wrapping the
  // cursor would re-insert ids that are still live).
  constexpr size_t kWindow = 4096;
  size_t i = 0;
  for (; i < kWindow && i < segments.size(); ++i) tree.Insert(segments[i]);
  for (auto _ : state) {
    if (i == segments.size()) {
      state.PauseTiming();
      tree.RemoveExpired(kMaxTimestamp - 1, 0);
      for (i = 0; i < kWindow; ++i) tree.Insert(segments[i]);
      state.ResumeTiming();
    }
    tree.Insert(segments[i]);
    tree.Remove(segments[i - kWindow].id());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SegTreeInsertRemove);

void BM_DiIndexInsert(benchmark::State& state) {
  const auto& segments = TrafficSegments();
  DiIndex index;
  size_t i = 0;
  for (auto _ : state) {
    index.Insert(segments[i]);
    if (++i == segments.size()) {
      state.PauseTiming();
      index.RemoveExpired(kMaxTimestamp - 1, 0);
      i = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiIndexInsert);

void BM_MatrixInsert(benchmark::State& state) {
  const auto& segments = TrafficSegments();
  MatrixIndex index;
  size_t i = 0;
  for (auto _ : state) {
    index.Insert(segments[i]);
    if (++i == segments.size()) {
      state.PauseTiming();
      index.RemoveExpired(kMaxTimestamp - 1, 0);
      i = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatrixInsert);

void BM_AprioriGenerate(benchmark::State& state) {
  // n frequent singletons -> C(n,2) candidates.
  const int n = static_cast<int>(state.range(0));
  std::vector<Pattern> f1;
  for (ObjectId o = 0; o < static_cast<ObjectId>(n); ++o) f1.push_back({o});
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateCandidates(f1));
  }
}
BENCHMARK(BM_AprioriGenerate)->Arg(8)->Arg(32)->Arg(128);

void BM_MinerAddSegment(benchmark::State& state) {
  const MinerKind kind = static_cast<MinerKind>(state.range(0));
  const auto& segments = TrafficSegments();
  const MiningParams params = DefaultParams(Dataset::kTraffic);
  auto miner = MakeMiner(kind, params);
  const size_t warm = segments.size() / 2;
  std::vector<Fcp> sink;
  for (size_t i = 0; i < warm; ++i) {
    sink.clear();
    miner->AddSegment(segments[i], &sink);
  }
  size_t i = warm;
  for (auto _ : state) {
    sink.clear();
    miner->AddSegment(segments[i], &sink);
    if (++i == segments.size()) i = warm;  // re-adding: ids collide; guard
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(MinerKindToString(kind)));
}

// --- Kernel dispatch section (custom-timed; see file comment). ------------

// Times every closure once per round (several rounds, round-robin) and
// returns per-closure minimum ns/op. Interleaving is what makes the
// speedup ratios trustworthy on a shared host: the cases being compared see
// the same frequency/sibling-load conditions within every round, and the
// minimum discards the rounds a neighbor polluted. Iteration counts are
// calibrated per closure to a ~2ms timed region.
std::vector<double> MeasureNsPerOpInterleaved(
    const std::vector<std::function<void()>>& fns) {
  std::vector<uint64_t> iters(fns.size(), 8);
  std::vector<int64_t> best(fns.size(), std::numeric_limits<int64_t>::max());
  for (size_t f = 0; f < fns.size(); ++f) {
    fns[f]();  // warm: touch the data outside the timed region
    for (;;) {
      Stopwatch timer;
      for (uint64_t i = 0; i < iters[f]; ++i) fns[f]();
      const int64_t ns = timer.ElapsedNanos();
      if (ns >= 2'000'000 || iters[f] >= (1ull << 28)) break;
      iters[f] *= 2;
    }
  }
  for (int round = 0; round < 7; ++round) {
    for (size_t f = 0; f < fns.size(); ++f) {
      Stopwatch timer;
      for (uint64_t i = 0; i < iters[f]; ++i) fns[f]();
      best[f] = std::min(best[f], timer.ElapsedNanos());
    }
  }
  std::vector<double> ns_per_op(fns.size());
  for (size_t f = 0; f < fns.size(); ++f) {
    ns_per_op[f] =
        static_cast<double>(best[f]) / static_cast<double>(iters[f]);
  }
  return ns_per_op;
}

std::vector<uint64_t> RandomBits(size_t words, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> bits(words);
  for (uint64_t& w : bits) w = rng.Next();
  return bits;
}

// `size` distinct sorted values from [0, universe): sampling two lists from
// the same universe fixes their expected overlap at size_a*size_b/universe.
std::vector<uint64_t> SortedSample(size_t size, uint64_t universe, Rng* rng) {
  std::vector<uint64_t> v;
  v.reserve(size * 2);
  while (v.size() < size) {
    for (size_t i = v.size(); i < size * 2; ++i) v.push_back(rng->Below(universe));
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  v.resize(size);
  return v;
}

// The skewed-side strategy of IntersectSorted, isolated so the crossover
// sweep can race it against the balanced merge kernel at every ratio.
size_t GallopIntersect(const uint64_t* a, size_t a_size, const uint64_t* b,
                       size_t b_size, uint64_t* out) {
  size_t n = 0, j = 0;
  for (size_t i = 0; i < a_size; ++i) {
    j = internal::GallopLowerBound(b, j, b_size, a[i]);
    if (j == b_size) break;
    if (b[j] == a[i]) {
      out[n++] = a[i];
      ++j;
    }
  }
  return n;
}

std::vector<kernels::KernelLevel> SupportedLevels() {
  std::vector<kernels::KernelLevel> levels;
  for (kernels::KernelLevel level :
       {kernels::KernelLevel::kScalar, kernels::KernelLevel::kSse42,
        kernels::KernelLevel::kAvx2}) {
    if (kernels::LevelSupported(level)) levels.push_back(level);
  }
  return levels;
}

void RunKernelSection(const Flags& flags) {
  const std::string label = flags.GetString("label", "run");
  const std::vector<kernels::KernelLevel> levels = SupportedLevels();
  std::vector<JsonRecord> records;

  // Fused AND+popcount over 4096-bit tidsets (64 words, CooMine's candidate
  // width regime). Unreachable threshold disables the early exit so every
  // level counts the full bitset — the apples-to-apples comparison. All
  // levels measured interleaved (see MeasureNsPerOpInterleaved).
  constexpr size_t kWords = 64;
  const std::vector<uint64_t> bits_a = RandomBits(kWords, 101);
  const std::vector<uint64_t> bits_b = RandomBits(kWords, 202);
  std::vector<uint64_t> bits_out(kWords);
  std::printf("kernel dispatch (words=%zu bitsets, 4096-element lists)\n",
              kWords);
  std::printf("%-32s %12s %14s\n", "case", "ns/op", "vs scalar");
  {
    std::vector<std::function<void()>> fns;
    for (kernels::KernelLevel level : levels) {
      const kernels::KernelOps& ops = kernels::OpsFor(level);
      fns.push_back([&ops, &bits_a, &bits_b, &bits_out] {
        benchmark::DoNotOptimize(ops.and_popcount_atleast(
            bits_a.data(), bits_b.data(), bits_out.data(), kWords,
            kWords * 64 + 1));
      });
    }
    const std::vector<double> ns = MeasureNsPerOpInterleaved(fns);
    for (size_t l = 0; l < levels.size(); ++l) {
      const double speedup = ns[0] / ns[l];
      JsonRecord record;
      record.name =
          "and_popcount/" + std::string(kernels::KernelLevelName(levels[l]));
      record.ns_per_op = ns[l];
      record.AddExtra("words", static_cast<double>(kWords));
      record.AddExtra("speedup_vs_scalar", speedup);
      records.push_back(record);
      std::printf("%-32s %12.2f %13.2fx\n", record.name.c_str(), ns[l],
                  speedup);
    }
  }

  // Balanced sorted intersection, 4096 vs 4096 from a 16384 universe
  // (~1024 common elements) — the shape the merge kernel owns. u32 is the
  // vectorized family the tentpole targets; u64 (SegmentId posting lists)
  // has half the lanes and correspondingly less headroom.
  constexpr size_t kListSize = 4096;
  Rng list_rng(303);
  const std::vector<uint64_t> list_a =
      SortedSample(kListSize, 4 * kListSize, &list_rng);
  const std::vector<uint64_t> list_b =
      SortedSample(kListSize, 4 * kListSize, &list_rng);
  const std::vector<uint32_t> list_a32(list_a.begin(), list_a.end());
  const std::vector<uint32_t> list_b32(list_b.begin(), list_b.end());
  std::vector<uint64_t> list_out(kListSize);
  std::vector<uint32_t> list_out32(kListSize);
  {
    std::vector<std::function<void()>> fns;
    for (kernels::KernelLevel level : levels) {
      const kernels::KernelOps& ops = kernels::OpsFor(level);
      fns.push_back([&ops, &list_a, &list_b, &list_out] {
        benchmark::DoNotOptimize(ops.intersect_u64(list_a.data(), kListSize,
                                                   list_b.data(), kListSize,
                                                   list_out.data()));
      });
      fns.push_back([&ops, &list_a32, &list_b32, &list_out32] {
        benchmark::DoNotOptimize(ops.intersect_u32(list_a32.data(), kListSize,
                                                   list_b32.data(), kListSize,
                                                   list_out32.data()));
      });
    }
    const std::vector<double> ns = MeasureNsPerOpInterleaved(fns);
    for (size_t l = 0; l < levels.size(); ++l) {
      const std::string name(kernels::KernelLevelName(levels[l]));
      for (const auto& [suffix, idx, scalar_idx] :
           {std::tuple{"u64", 2 * l, size_t{0}},
            std::tuple{"u32", 2 * l + 1, size_t{1}}}) {
        const double speedup = ns[scalar_idx] / ns[idx];
        JsonRecord record;
        record.name = "intersect_balanced_" + std::string(suffix) + "/" + name;
        record.ns_per_op = ns[idx];
        record.AddExtra("list_size", static_cast<double>(kListSize));
        record.AddExtra("speedup_vs_scalar", speedup);
        records.push_back(record);
        std::printf("%-32s %12.1f %13.2fx\n", record.name.c_str(), ns[idx],
                    speedup);
      }
    }
  }

  // Merge-vs-gallop crossover sweep: long side fixed at 4096 u64, short side
  // long/ratio, both from the same universe; the three strategies at each
  // ratio are measured interleaved. This is the measurement behind
  // kGallopCrossoverRatio in util/intersect.h — re-run it before retuning.
  const kernels::KernelLevel best = levels.back();
  std::printf("\nintersect crossover (u64, long side %zu)\n", kListSize);
  std::printf("%6s %14s %14s %14s %10s\n", "ratio", "merge(best)",
              "merge(scalar)", "gallop", "winner");
  for (size_t ratio : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    const size_t short_size = kListSize / ratio;
    Rng sweep_rng(404 + ratio);
    const std::vector<uint64_t> short_list =
        SortedSample(short_size, 4 * kListSize, &sweep_rng);
    const std::vector<uint64_t> long_list =
        SortedSample(kListSize, 4 * kListSize, &sweep_rng);
    std::vector<uint64_t> out(short_size);
    const std::vector<double> ns = MeasureNsPerOpInterleaved({
        [&, best] {
          benchmark::DoNotOptimize(kernels::OpsFor(best).intersect_u64(
              short_list.data(), short_size, long_list.data(), kListSize,
              out.data()));
        },
        [&] {
          benchmark::DoNotOptimize(
              kernels::OpsFor(kernels::KernelLevel::kScalar)
                  .intersect_u64(short_list.data(), short_size,
                                 long_list.data(), kListSize, out.data()));
        },
        [&] {
          benchmark::DoNotOptimize(
              GallopIntersect(short_list.data(), short_size, long_list.data(),
                              kListSize, out.data()));
        },
    });
    const double merge_best_ns = ns[0];
    const double merge_scalar_ns = ns[1];
    const double gallop_ns = ns[2];
    JsonRecord record;
    record.name = "intersect_ratio/" + std::to_string(ratio);
    record.ns_per_op = merge_best_ns;
    record.AddExtra("ratio", static_cast<double>(ratio));
    record.AddExtra("merge_scalar_ns", merge_scalar_ns);
    record.AddExtra("gallop_ns", gallop_ns);
    record.AddExtra("gallop_over_merge", gallop_ns / merge_best_ns);
    records.push_back(record);
    std::printf("%6zu %14.1f %14.1f %14.1f %10s\n", ratio, merge_best_ns,
                merge_scalar_ns, gallop_ns,
                gallop_ns < merge_best_ns ? "gallop" : "merge");
  }
  std::printf("\n");

  MaybeAppendBenchJson(flags, "bench_micro_ops/kernels", label, records);
}

}  // namespace

// External-linkage shim so main (outside the anonymous namespace) can run
// the kernel section after flag parsing.
void RunKernelDispatchSection(const Flags& flags) { RunKernelSection(flags); }

}  // namespace fcp::bench

// Re-adding a segment id that is still live would trip the registry CHECK;
// the half-trace window (tau=30min of event time) is long since expired by
// the time the cursor wraps, so wrap-around re-insertion is safe only if the
// earlier copy was expired and removed. To keep the benchmark simple and
// safe, give it enough segments that it never wraps in practice and force a
// generous iteration cap.
BENCHMARK(fcp::bench::BM_MinerAddSegment)
    ->Arg(static_cast<int>(fcp::MinerKind::kCooMine))
    ->Arg(static_cast<int>(fcp::MinerKind::kDiMine))
    ->Arg(static_cast<int>(fcp::MinerKind::kMatrixMine))
    ->Iterations(20000);

// Custom main: parse the harness flags (--kernel/--json/--label; google-
// benchmark ignores what it does not recognize and we never call
// ReportUnrecognizedArguments), pin the dispatch level, run the kernel
// section, then the registered google-benchmark suite.
int main(int argc, char** argv) {
  const fcp::Flags flags(argc, argv);
  fcp::bench::ApplyKernelFlag(flags);
  fcp::bench::RunKernelDispatchSection(flags);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
