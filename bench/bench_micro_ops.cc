// Google-benchmark microbenchmarks of the individual operations underlying
// the figure harnesses: segmenter push, Seg-tree insert/SLCP/remove,
// DI-Index and Matrix ops, Apriori candidate generation, and end-to-end
// AddSegment for each miner.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/apriori.h"
#include "core/miner.h"
#include "index/di_index.h"
#include "index/matrix_index.h"
#include "index/seg_tree.h"
#include "stream/segmenter.h"

namespace fcp::bench {
namespace {

// Shared pre-generated workload (built once; benchmarks index into it).
const std::vector<ObjectEvent>& TrafficEvents() {
  static const std::vector<ObjectEvent>* events =
      new std::vector<ObjectEvent>(
          GenerateEvents(Dataset::kTraffic, 120000, 42));
  return *events;
}

const std::vector<Segment>& TrafficSegments() {
  static const std::vector<Segment>* segments = new std::vector<Segment>(
      SegmentTrace(TrafficEvents(), Seconds(60)));
  return *segments;
}

void BM_SegmenterPush(benchmark::State& state) {
  const auto& events = TrafficEvents();
  SegmentIdGen ids;
  Segmenter segmenter(0, Seconds(60), &ids);
  std::vector<Segment> out;
  size_t i = 0;
  for (auto _ : state) {
    const ObjectEvent& e = events[i];
    segmenter.Push(e.object, e.time, &out);
    if (++i == events.size()) {
      i = 0;
      state.PauseTiming();
      segmenter.Flush(&out);
      out.clear();
      state.ResumeTiming();
    }
    if (out.size() > 4096) out.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SegmenterPush);

void BM_SegTreeInsert(benchmark::State& state) {
  const auto& segments = TrafficSegments();
  SegTree tree;
  size_t i = 0;
  for (auto _ : state) {
    tree.Insert(segments[i]);
    if (++i == segments.size()) {
      state.PauseTiming();
      tree.RemoveExpired(kMaxTimestamp - 1, 0);  // reset to empty
      i = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SegTreeInsert);

void BM_SegTreeSlcp(benchmark::State& state) {
  const auto& segments = TrafficSegments();
  SegTree tree;
  const size_t indexed = segments.size() / 2;
  Timestamp watermark = kMinTimestamp;
  for (size_t i = 0; i < indexed; ++i) {
    tree.Insert(segments[i]);
    watermark = std::max(watermark, segments[i].end_time());
  }
  size_t i = indexed;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Slcp(segments[i], watermark, Minutes(30), nullptr));
    if (++i == segments.size()) i = indexed;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SegTreeSlcp);

void BM_SegTreeInsertRemove(benchmark::State& state) {
  const auto& segments = TrafficSegments();
  SegTree tree;
  // Steady-state churn: keep a window of 4096 live segments. On trace
  // exhaustion, rebuild the window outside the timed region (wrapping the
  // cursor would re-insert ids that are still live).
  constexpr size_t kWindow = 4096;
  size_t i = 0;
  for (; i < kWindow && i < segments.size(); ++i) tree.Insert(segments[i]);
  for (auto _ : state) {
    if (i == segments.size()) {
      state.PauseTiming();
      tree.RemoveExpired(kMaxTimestamp - 1, 0);
      for (i = 0; i < kWindow; ++i) tree.Insert(segments[i]);
      state.ResumeTiming();
    }
    tree.Insert(segments[i]);
    tree.Remove(segments[i - kWindow].id());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SegTreeInsertRemove);

void BM_DiIndexInsert(benchmark::State& state) {
  const auto& segments = TrafficSegments();
  DiIndex index;
  size_t i = 0;
  for (auto _ : state) {
    index.Insert(segments[i]);
    if (++i == segments.size()) {
      state.PauseTiming();
      index.RemoveExpired(kMaxTimestamp - 1, 0);
      i = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiIndexInsert);

void BM_MatrixInsert(benchmark::State& state) {
  const auto& segments = TrafficSegments();
  MatrixIndex index;
  size_t i = 0;
  for (auto _ : state) {
    index.Insert(segments[i]);
    if (++i == segments.size()) {
      state.PauseTiming();
      index.RemoveExpired(kMaxTimestamp - 1, 0);
      i = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatrixInsert);

void BM_AprioriGenerate(benchmark::State& state) {
  // n frequent singletons -> C(n,2) candidates.
  const int n = static_cast<int>(state.range(0));
  std::vector<Pattern> f1;
  for (ObjectId o = 0; o < static_cast<ObjectId>(n); ++o) f1.push_back({o});
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateCandidates(f1));
  }
}
BENCHMARK(BM_AprioriGenerate)->Arg(8)->Arg(32)->Arg(128);

void BM_MinerAddSegment(benchmark::State& state) {
  const MinerKind kind = static_cast<MinerKind>(state.range(0));
  const auto& segments = TrafficSegments();
  const MiningParams params = DefaultParams(Dataset::kTraffic);
  auto miner = MakeMiner(kind, params);
  const size_t warm = segments.size() / 2;
  std::vector<Fcp> sink;
  for (size_t i = 0; i < warm; ++i) {
    sink.clear();
    miner->AddSegment(segments[i], &sink);
  }
  size_t i = warm;
  for (auto _ : state) {
    sink.clear();
    miner->AddSegment(segments[i], &sink);
    if (++i == segments.size()) i = warm;  // re-adding: ids collide; guard
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(MinerKindToString(kind)));
}

}  // namespace
}  // namespace fcp::bench

// Re-adding a segment id that is still live would trip the registry CHECK;
// the half-trace window (tau=30min of event time) is long since expired by
// the time the cursor wraps, so wrap-around re-insertion is safe only if the
// earlier copy was expired and removed. To keep the benchmark simple and
// safe, give it enough segments that it never wraps in practice and force a
// generous iteration cap.
BENCHMARK(fcp::bench::BM_MinerAddSegment)
    ->Arg(static_cast<int>(fcp::MinerKind::kCooMine))
    ->Arg(static_cast<int>(fcp::MinerKind::kDiMine))
    ->Arg(static_cast<int>(fcp::MinerKind::kMatrixMine))
    ->Iterations(20000);

BENCHMARK_MAIN();
