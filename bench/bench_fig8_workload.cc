// Reproduces Fig. 8(a)/(b): maximum sustainable workload of CooMine.
//
// A producer thread offers events to a 5000-slot buffer queue at a fixed
// arrival rate; a consumer thread drains the queue into the mining pipeline.
// The queue occupancy over time tells the story: rates below the pipeline's
// capacity keep the queue near empty; rates above it pin the queue at its
// capacity (saturation).
//
// Our C++ pipeline is far faster than the paper's Java prototype on 2011
// hardware, so absolute rates differ; to reproduce the *shape*, the bench
// first calibrates the pipeline's drain throughput on the workload, then
// offers ~{0.5x, 0.9x, 1.3x} of it (plus the paper's nominal rates for
// reference in the summary line).
//
// Flags: --duration=<s> (default 10), --rates=a,b,c (events/s, overrides
//        calibration), --quick

#include <atomic>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <thread>

#include "bench_util.h"
#include "core/mining_engine.h"
#include "stream/bounded_queue.h"
#include "stream/paced_replayer.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace fcp::bench {
namespace {

constexpr size_t kQueueCapacity = 5000;  // the paper's buffer size

// Measures single-thread pipeline throughput (events/s) on this workload.
double CalibrateThroughput(Dataset dataset,
                           const std::vector<ObjectEvent>& events) {
  MiningEngine engine(MinerKind::kCooMine, DefaultParams(dataset));
  const size_t n = std::min<size_t>(events.size(), 60000);
  Stopwatch clock;
  for (size_t i = 0; i < n; ++i) engine.PushEvent(events[i]);
  return static_cast<double>(n) / clock.ElapsedSeconds();
}

void RunRate(Dataset dataset, const std::vector<ObjectEvent>& events,
             double rate, double duration_s, TablePrinter* table) {
  BoundedQueue<ObjectEvent> queue(kQueueCapacity);
  MiningEngine engine(MinerKind::kCooMine, DefaultParams(dataset));

  std::atomic<bool> done{false};
  std::thread consumer([&] {
    while (auto event = queue.Pop()) engine.PushEvent(*event);
  });
  std::thread sampler([&] {
    Stopwatch clock;
    int tick = 0;
    while (!done.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1000));
      ++tick;
      table->AddRow({std::string(DatasetName(dataset)),
                     TablePrinter::Num(rate, 0), std::to_string(tick),
                     std::to_string(queue.size())});
      if (clock.ElapsedSeconds() >= duration_s) break;
    }
  });

  const ReplayStats stats =
      ReplayAtRate(events, rate, &queue, /*deadline_seconds=*/duration_s);
  done.store(true, std::memory_order_relaxed);
  sampler.join();
  queue.Close();
  consumer.join();

  std::printf(
      "rate %.0f/s: offered %llu, accepted %llu, dropped %llu (%.1f%%)\n",
      rate, static_cast<unsigned long long>(stats.offered),
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.dropped),
      100.0 * static_cast<double>(stats.dropped) /
          static_cast<double>(std::max<uint64_t>(stats.offered, 1)));
}

void RunDataset(Dataset dataset, double duration_s,
                const std::vector<double>& rates_override) {
  // Enough events for the highest offered rate over the duration.
  const uint64_t needed = static_cast<uint64_t>(duration_s * 2e6) + 100000;
  const std::vector<ObjectEvent> events =
      GenerateEvents(dataset, std::min<uint64_t>(needed, 3000000),
                     /*seed=*/42);

  std::vector<double> rates = rates_override;
  double capacity = 0;
  if (rates.empty()) {
    capacity = CalibrateThroughput(dataset, events);
    rates = {0.5 * capacity, 0.9 * capacity, 1.3 * capacity};
    std::printf("[%s] calibrated pipeline capacity: %.0f events/s "
                "(paper, Java/2011: TR 8000/s, Twitter 4000/s)\n",
                std::string(DatasetName(dataset)).c_str(), capacity);
  }

  TablePrinter table({"dataset", "rate/s", "t(s)", "queue_occupancy"});
  for (double rate : rates) {
    RunRate(dataset, events, rate, duration_s, &table);
  }
  table.Print(std::cout);
  std::printf("\n");
}

}  // namespace
}  // namespace fcp::bench

int main(int argc, char** argv) {
  fcp::Flags flags(argc, argv);
  double duration = flags.GetDouble("duration", 10.0);
  if (flags.GetBool("quick", false)) duration = 4.0;

  std::vector<double> rates;
  {
    std::stringstream ss(flags.GetString("rates", ""));
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (!item.empty()) rates.push_back(std::stod(item));
    }
  }

  fcp::bench::PrintHeader(
      "Fig. 8(a)/(b): maximum sustainable workload (queue occupancy)",
      "5000-slot buffer between a paced producer and the CooMine pipeline;\n"
      "occupancy pinned at 5000 == unsustainable rate (queue saturation).");
  fcp::bench::RunDataset(fcp::bench::Dataset::kTraffic, duration, rates);
  fcp::bench::RunDataset(fcp::bench::Dataset::kTwitter, duration, rates);
  return 0;
}
