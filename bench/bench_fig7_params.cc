// Reproduces Fig. 7(a)/(b): sensitivity of CooMine's mining cost to the
// window parameters, on the TR workload (Ds=100k VPRs).
//
//  - 7(a): xi in {20s, 40s, 60s} (tau=30min) — larger xi -> longer segments
//          -> more LCPs -> higher mining cost.
//  - 7(b): tau in {30min, 60min, 90min} (xi=60s) — tau should matter little.
//
// Flags: --quick, --scale=<f>, --csv

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "util/table_printer.h"

namespace fcp::bench {
namespace {

void RunCase(const std::string& figure, DurationMs xi, DurationMs tau,
             const std::vector<ObjectEvent>& events, uint64_t warm,
             TablePrinter* table) {
  MiningParams params = DefaultParams(Dataset::kTraffic);
  params.xi = xi;
  params.tau = tau;
  MinerDriver coo(MinerKind::kCooMine, params);
  const size_t warm_end = std::min<size_t>(warm, events.size());
  coo.PushEvents(events, 0, warm_end);
  size_t i = warm_end;
  for (uint64_t rate = 1000; rate <= 5000; rate += 1000) {
    const CostSample c = coo.MeasureRate(events, &i, rate);
    table->AddRow({figure, std::to_string(xi / 1000),
                   std::to_string(tau / Minutes(1)), std::to_string(rate),
                   TablePrinter::Num(c.mining_ms, 2)});
  }
}

}  // namespace
}  // namespace fcp::bench

int main(int argc, char** argv) {
  fcp::Flags flags(argc, argv);
  const fcp::bench::BenchScale scale(flags);

  fcp::bench::PrintHeader(
      "Fig. 7(a)/(b): CooMine mining cost vs xi and tau (TR, Ds=100k)",
      "7(a): larger xi -> longer segments -> more LCP work.\n"
      "7(b): tau has little impact (search scope is bounded by SLCP).");

  const uint64_t warm = scale.Events(100000);
  const std::vector<fcp::ObjectEvent> events = fcp::bench::GenerateEvents(
      fcp::bench::Dataset::kTraffic, warm + 160000, /*seed=*/42);

  fcp::TablePrinter table(
      {"figure", "xi(s)", "tau(min)", "rate/s", "coomine_mining_ms"});
  for (fcp::DurationMs xi :
       {fcp::Seconds(20), fcp::Seconds(40), fcp::Seconds(60)}) {
    fcp::bench::RunCase("7(a)", xi, fcp::Minutes(30), events, warm, &table);
  }
  for (fcp::DurationMs tau :
       {fcp::Minutes(30), fcp::Minutes(60), fcp::Minutes(90)}) {
    fcp::bench::RunCase("7(b)", fcp::Seconds(60), tau, events, warm, &table);
  }
  if (flags.GetBool("csv", false)) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  return 0;
}
