#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "stream/stream_mux.h"
#include "util/kernels/kernels.h"

namespace fcp::bench {

MinerDriver::MinerDriver(MinerKind kind, const MiningParams& params)
    : mux_(params.xi), miner_(MakeMiner(kind, params)) {}

void MinerDriver::PushEvents(const std::vector<ObjectEvent>& events,
                             size_t begin, size_t end) {
  FCP_CHECK(begin <= end && end <= events.size());
  for (size_t i = begin; i < end; ++i) {
    scratch_.clear();
    mux_.Push(events[i], &scratch_);
    for (const SegmentRef& segment : scratch_) {
      sink_.clear();
      miner_->AddSegment(segment, &sink_);
      ++segments_completed_;
    }
  }
}

CostSample MinerDriver::Measure(const std::vector<ObjectEvent>& events,
                                size_t begin, size_t end) {
  const MinerStats before = miner_->stats();
  PushEvents(events, begin, end);
  const MinerStats& after = miner_->stats();
  CostSample sample;
  sample.mining_ms =
      static_cast<double>(after.mining_ns - before.mining_ns) / 1e6;
  sample.maintenance_ms =
      static_cast<double>(after.maintenance_ns - before.maintenance_ns) / 1e6;
  sample.fcps = after.fcps_emitted - before.fcps_emitted;
  return sample;
}

std::vector<Segment> BuildCyclicTrace(const std::vector<Segment>& segments,
                                      size_t pool_size, int cycles,
                                      const MiningParams& params) {
  const size_t n = std::min(pool_size, segments.size());
  Timestamp t_min = kMaxTimestamp;
  Timestamp t_max = kMinTimestamp;
  for (size_t i = 0; i < n; ++i) {
    t_min = std::min(t_min, segments[i].start_time());
    t_max = std::max(t_max, segments[i].end_time());
  }
  const Timestamp period = (t_max - t_min) + params.tau + params.xi;
  std::vector<Segment> out;
  out.reserve(n * static_cast<size_t>(cycles));
  SegmentId next_id = 1;
  for (int c = 0; c < cycles; ++c) {
    const Timestamp shift = period * c;
    for (size_t i = 0; i < n; ++i) {
      std::vector<SegmentEntry> entries = segments[i].entries();
      for (SegmentEntry& e : entries) e.time += shift;
      out.emplace_back(next_id++, segments[i].stream(), std::move(entries));
    }
  }
  return out;
}

CostSample MinerDriver::MeasureRate(const std::vector<ObjectEvent>& events,
                                    size_t* cursor, uint64_t rate) {
  const uint64_t window = std::max<uint64_t>(5 * rate, 25000);
  const size_t begin = *cursor;
  const size_t end = std::min<size_t>(begin + window, events.size());
  CostSample sample = Measure(events, begin, end);
  *cursor = end;
  const double scale_factor =
      end > begin ? static_cast<double>(rate) / static_cast<double>(end - begin)
                  : 0.0;
  sample.mining_ms *= scale_factor;
  sample.maintenance_ms *= scale_factor;
  sample.fcps = static_cast<uint64_t>(
      static_cast<double>(sample.fcps) * scale_factor);
  return sample;
}

std::string_view DatasetName(Dataset dataset) {
  return dataset == Dataset::kTraffic ? "TR" : "Twitter";
}

MiningParams DefaultParams(Dataset dataset) {
  MiningParams params;
  params.xi = Seconds(60);
  params.tau = Minutes(30);
  params.theta = dataset == Dataset::kTraffic ? 3 : 10;
  params.min_pattern_size = 1;
  params.max_pattern_size = 5;
  // Cap pathological segments (hot Zipf words can make tweet unions dense).
  params.max_segment_objects = 24;
  return params;
}

std::vector<ObjectEvent> GenerateEvents(Dataset dataset, uint64_t total_events,
                                        uint64_t seed) {
  if (dataset == Dataset::kTraffic) {
    TrafficConfig config;
    config.num_cameras = 200;
    config.num_vehicles = 20000;
    config.per_camera_rate_hz = 0.1;
    config.total_events = total_events;
    config.num_convoys = static_cast<uint32_t>(total_events / 4000);
    config.route_len_min = 3;  // short routes die as theta rises (Fig. 10a)
    config.seed = seed;
    return GenerateTraffic(config).events;
  }
  TwitterConfig config;
  config.num_users = 5000;
  config.vocab_size = 50000;
  // Tweets2011 spreads its tweets over two weeks; a realistic slice has a
  // few thousand tweets live inside a 30-minute tau window. A 30-minute
  // mean inter-tweet gap per user gives ~5000 live tweets at steady state.
  config.mean_tweet_gap = Minutes(30);
  // ~5.5 words per tweet on average.
  config.total_tweets = total_events / 5;
  config.num_events = static_cast<uint32_t>(total_events / 50000 + 2);
  config.seed = seed;
  return GenerateTwitter(config).events;
}

std::vector<Segment> SegmentTrace(const std::vector<ObjectEvent>& events,
                                  DurationMs xi) {
  StreamMux mux(xi);
  std::vector<SegmentRef> refs;
  for (const ObjectEvent& event : events) mux.Push(event, &refs);
  mux.FlushAll(&refs);
  // Copy out of the pool-backed slabs: index/miner benches want plain
  // segments they can hold past the mux's lifetime.
  std::vector<Segment> segments;
  segments.reserve(refs.size());
  for (const SegmentRef& ref : refs) segments.push_back(*ref);
  return segments;
}

CostSample ProcessRange(FcpMiner* miner, const std::vector<Segment>& segments,
                        size_t begin, size_t end) {
  FCP_CHECK(begin <= end && end <= segments.size());
  const MinerStats before = miner->stats();
  std::vector<Fcp> scratch;
  for (size_t i = begin; i < end; ++i) {
    scratch.clear();
    miner->AddSegment(segments[i], &scratch);
  }
  const MinerStats& after = miner->stats();
  CostSample sample;
  sample.mining_ms =
      static_cast<double>(after.mining_ns - before.mining_ns) / 1e6;
  sample.maintenance_ms =
      static_cast<double>(after.maintenance_ns - before.maintenance_ns) / 1e6;
  sample.fcps = after.fcps_emitted - before.fcps_emitted;
  return sample;
}

BenchScale::BenchScale(const Flags& flags) {
  factor = flags.GetDouble("scale", 1.0);
  if (flags.GetBool("quick", false)) factor /= 4.0;
  FCP_CHECK(factor > 0);
}

uint64_t BenchScale::Events(uint64_t paper_value) const {
  const uint64_t scaled =
      static_cast<uint64_t>(static_cast<double>(paper_value) * factor);
  return scaled < 1000 ? 1000 : scaled;
}

void PrintHeader(const std::string& figure, const std::string& note) {
  std::printf("=== %s ===\n%s\n\n", figure.c_str(), note.c_str());
  std::fflush(stdout);
}

std::string_view ApplyKernelFlag(const Flags& flags) {
  const std::string kernel = flags.GetString("kernel", "");
  if (!kernel.empty() && !kernels::SetKernelLevelFromString(kernel)) {
    std::fprintf(stderr,
                 "unknown --kernel '%s' (want auto, scalar, sse or avx2)\n",
                 kernel.c_str());
    std::exit(1);
  }
  return kernels::KernelLevelName(kernels::ActiveLevel());
}

uint64_t CurrentRssBytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      uint64_t kb = 0;
      std::sscanf(line.c_str() + 6, "%lu", &kb);
      return kb * 1024;
    }
  }
  return 0;
}

void MaybeAppendBenchJson(const Flags& flags, const std::string& bench,
                          const std::string& label,
                          const std::vector<JsonRecord>& records) {
  const std::string path = flags.GetString("json", "");
  if (path.empty()) return;

  std::ostringstream run;
  run << "  {\"bench\": \"" << bench << "\", \"label\": \"" << label
      << "\", \"records\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const JsonRecord& r = records[i];
    run << "    {\"name\": \"" << r.name << "\", \"ns_per_op\": "
        << r.ns_per_op << ", \"allocs_per_op\": " << r.allocs_per_op
        << ", \"rss_bytes\": " << r.rss_bytes;
    for (const auto& [key, value] : r.extras) {
      run << ", \"" << key << "\": " << value;
    }
    run << "}" << (i + 1 < records.size() ? ",\n" : "\n");
  }
  run << "  ]}";

  // Keep the file a valid JSON array without parsing it: strip the trailing
  // `]` of an existing array and re-close after appending this run.
  std::string existing;
  {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    existing = buffer.str();
  }
  while (!existing.empty() &&
         (existing.back() == '\n' || existing.back() == ' ')) {
    existing.pop_back();
  }
  std::ofstream out(path, std::ios::trunc);
  FCP_CHECK(out.good());
  if (!existing.empty() && existing.back() == ']') {
    existing.pop_back();
    while (!existing.empty() && (existing.back() == '\n' ||
                                 existing.back() == ' ')) {
      existing.pop_back();
    }
    const bool was_empty_array =
        !existing.empty() && existing.back() == '[';
    out << existing << (was_empty_array ? "\n" : ",\n") << run.str()
        << "\n]\n";
  } else {
    out << "[\n" << run.str() << "\n]\n";
  }
}

}  // namespace fcp::bench
