// Shared plumbing for the figure-reproduction bench harness.
//
// Every bench binary regenerates one table/figure of the paper's evaluation
// (Section 6) as an aligned text table: one row per plotted point. The
// workload interpretation follows EXPERIMENTS.md: "processing the data within
// one second at arrival rate R" = processing R consecutive events of the
// trace, after a warm-up of Ds events.

#ifndef FCP_BENCH_BENCH_UTIL_H_
#define FCP_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/params.h"
#include "common/types.h"
#include "core/miner.h"
#include "datagen/traffic_gen.h"
#include "datagen/twitter_gen.h"
#include "stream/segment.h"
#include "stream/segment_ref.h"
#include "stream/stream_mux.h"
#include "util/flags.h"

namespace fcp::bench {

/// Which synthetic dataset a bench case uses.
enum class Dataset { kTraffic, kTwitter };

std::string_view DatasetName(Dataset dataset);

/// Paper-default mining parameters for each dataset (TR: xi=60s, tau=30min,
/// theta=3; Twitter: theta=10).
MiningParams DefaultParams(Dataset dataset);

/// Generates `total_events` events of the chosen dataset (deterministic for
/// a seed). Traffic uses the default camera/vehicle population; Twitter
/// events count words (a tweet is ~5 events).
std::vector<ObjectEvent> GenerateEvents(Dataset dataset, uint64_t total_events,
                                        uint64_t seed);

/// Pre-segments an event trace (segments in completion order, trailing
/// windows flushed). Used by the index-level benches so segmentation cost
/// does not pollute index measurements.
std::vector<Segment> SegmentTrace(const std::vector<ObjectEvent>& events,
                                  DurationMs xi);

/// Builds `cycles` repetitions of the first `pool_size` segments, each cycle
/// shifted far enough in time that the previous cycle expires, with globally
/// fresh segment ids. The object universe is closed after cycle one, so a
/// warm miner sees no structural novelty — only churn. This is the
/// steady-state regime for allocation and scaling measurements.
std::vector<Segment> BuildCyclicTrace(const std::vector<Segment>& segments,
                                      size_t pool_size, int cycles,
                                      const MiningParams& params);

/// Cost split of processing a batch of segments with a miner.
struct CostSample {
  double mining_ms = 0;
  double maintenance_ms = 0;
  double total_ms() const { return mining_ms + maintenance_ms; }
  uint64_t fcps = 0;
};

/// Feeds segments [begin, end) to the miner, returning the stats-delta cost
/// split.
CostSample ProcessRange(FcpMiner* miner, const std::vector<Segment>& segments,
                        size_t begin, size_t end);

/// Drives one miner behind a segmenter, measuring stats deltas over event
/// ranges. Segmentation cost is excluded from the mining/maintenance split
/// (the paper measures index structures and algorithms, not the splitter).
class MinerDriver {
 public:
  MinerDriver(MinerKind kind, const MiningParams& params);

  /// Feeds events[begin, end) without measuring.
  void PushEvents(const std::vector<ObjectEvent>& events, size_t begin,
                  size_t end);

  /// Feeds events[begin, end) and returns the miner-stats cost delta.
  CostSample Measure(const std::vector<ObjectEvent>& events, size_t begin,
                     size_t end);

  /// Measures the cost of "one second of data at `rate` events/s" by
  /// processing a window of max(5*rate, 25000) events starting at *cursor
  /// (advanced past the window) and scaling the measured cost to `rate`
  /// events. The window amortizes periodic expiry sweeps, which would
  /// otherwise land in some rate points and not others.
  CostSample MeasureRate(const std::vector<ObjectEvent>& events,
                         size_t* cursor, uint64_t rate);

  FcpMiner& miner() { return *miner_; }
  uint64_t segments_completed() const { return segments_completed_; }

 private:
  StreamMux mux_;
  std::unique_ptr<FcpMiner> miner_;
  std::vector<SegmentRef> scratch_;
  std::vector<Fcp> sink_;
  uint64_t segments_completed_ = 0;
};

/// Standard bench scaling: --quick divides all data sizes by 4 (CI-speed),
/// --scale=<f> applies a custom factor.
struct BenchScale {
  explicit BenchScale(const Flags& flags);
  uint64_t Events(uint64_t paper_value) const;
  double factor = 1.0;
};

/// One benchmark measurement for the JSON trajectory files (BENCH_*.json).
/// Every bench emits the same base schema {name, ns_per_op, allocs_per_op,
/// rss_bytes}; bench-specific dimensions (speedup, deliveries per trigger,
/// telemetry overhead, ...) go in `extras` as additional numeric fields
/// rather than per-bench ad-hoc JSON.
struct JsonRecord {
  std::string name;
  double ns_per_op = 0;
  double allocs_per_op = 0;
  uint64_t rss_bytes = 0;
  std::vector<std::pair<std::string, double>> extras;

  void AddExtra(const std::string& key, double value) {
    extras.emplace_back(key, value);
  }
};

/// Resident set size (VmRSS) of the current process in bytes; 0 when
/// /proc/self/status is unavailable.
uint64_t CurrentRssBytes();

/// If `--json=<path>` was passed, appends one run object
/// `{"bench":..., "label":..., "records":[...]}` to the JSON array at
/// <path> (creating it as `[...]` if absent). The file stays a valid JSON
/// array across appends so successive PRs can extend a BENCH_*.json
/// trajectory without a JSON parser.
void MaybeAppendBenchJson(const Flags& flags, const std::string& bench,
                          const std::string& label,
                          const std::vector<JsonRecord>& records);

/// Prints the standard bench header (figure id + interpretation note).
void PrintHeader(const std::string& figure, const std::string& note);

/// Applies the shared `--kernel=auto|scalar|sse|avx2` flag (process-global
/// SIMD dispatch; unset leaves the FCP_KERNEL / auto default in place) and
/// returns the active level's name so benches can label their records.
/// Exits with a diagnostic on an unknown value.
std::string_view ApplyKernelFlag(const Flags& flags);

}  // namespace fcp::bench

#endif  // FCP_BENCH_BENCH_UTIL_H_
