// Shard-parallel scaling bench: trigger throughput of S object-partitioned
// miner replicas (the ParallelEngine's `num_miner_shards` path) at
// S ∈ {1, 2, 4, 8}, for the three miners on two workloads:
//
//  - "zipf":  the skewed Twitter word stream (paper defaults), segments from
//             a growing open vocabulary;
//  - "cycle": closed-universe replay of a fixed segment pool — the converged
//             steady state where per-shard structures stop growing.
//
// The host is single-core, so the S shards are replayed *sequentially*, each
// against exactly the deliveries the ShardRouter would multicast to it
// (every segment goes to each shard owning >= 1 of its objects, carrying the
// global watermark). Pipeline wall-clock is then modeled as the critical
// path: the slowest shard bounds throughput, so
//
//     ns/trigger = max_s(elapsed_s) / num_segments
//
// which is what S free cores would achieve (minus routing overhead, which is
// a few percent of mining cost). The sum over shards is reported too, so the
// multicast duplication factor is visible rather than hidden.
//
// Correctness is asserted, not assumed: for every (miner, workload, S) the
// sorted multiset of discoveries (trigger, pattern, streams, window) must be
// byte-identical to the S=1 run, or the bench aborts with exit code 1.
//
// Skew bound. Object-hash partitioning balances work only as well as the
// object popularity distribution allows: the shard owning word w pays
// O(f_w^2) of the pairwise probe-vs-chain work, so with Zipf exponent
// s = 1.0 the single hottest word is ~half of all mining work and NO
// object-partitioned scheme — this one included — can exceed ~1.6x. The
// default workload therefore uses s = 0.55 (`--zipf_s=<s>` to override),
// where the head word is ~10% of the pairwise work and sharding pays off;
// run with --zipf_s=1.0 to see the ceiling itself. The other workload knobs
// (`--vocab`, `--gap_minutes`, `--theta`, `--events`, `--reps`) default to a
// dense, mining-heavy stream: ~21k tweets live per tau window, so per-probe
// row work (which partitions across shards) dominates the per-delivery
// fixed costs (which are multicast-duplicated).
//
// `--json=<path>` appends the records to BENCH_scaling.json;
// `--label=<tag>` names the run.

#include "util/alloc_counter.h"  // must be first: defines operator new/delete

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.h"
#include "common/placement.h"
#include "common/shard.h"
#include "core/miner.h"
#include "datagen/twitter_gen.h"
#include "stream/rebalancer.h"
#include "stream/shard_router.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace fcp::bench {
namespace {

// One discovery, order-insensitively comparable: two runs with equal sorted
// signature vectors found exactly the same FCPs.
using Signature = std::tuple<SegmentId, Pattern, std::vector<StreamId>,
                             Timestamp, Timestamp>;

std::vector<Signature> Signatures(const std::vector<Fcp>& fcps) {
  std::vector<Signature> out;
  out.reserve(fcps.size());
  for (const Fcp& fcp : fcps) {
    out.emplace_back(fcp.trigger, fcp.objects, fcp.streams, fcp.window_start,
                     fcp.window_end);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// The router's delivery plan, precomputed so routing cost stays out of the
// timed region: for each shard, the indices of the segments it receives, and
// for each segment the global watermark in force when it is routed.
struct DeliveryPlan {
  std::vector<std::vector<uint32_t>> per_shard;
  std::vector<Timestamp> watermark;
  uint64_t deliveries = 0;
};

DeliveryPlan PlanDeliveries(const std::vector<Segment>& segments,
                            uint32_t num_shards) {
  DeliveryPlan plan;
  plan.per_shard.resize(num_shards);
  plan.watermark.resize(segments.size());
  Timestamp watermark = kMinTimestamp;
  std::vector<bool> hit(num_shards);
  for (uint32_t i = 0; i < segments.size(); ++i) {
    watermark = std::max(watermark, segments[i].end_time());
    plan.watermark[i] = watermark;
    std::fill(hit.begin(), hit.end(), false);
    for (const SegmentEntry& entry : segments[i].entries()) {
      hit[ShardOf(entry.object, num_shards)] = true;
    }
    for (uint32_t s = 0; s < num_shards; ++s) {
      if (!hit[s]) continue;
      plan.per_shard[s].push_back(i);
      ++plan.deliveries;
    }
  }
  return plan;
}

struct ShardedCost {
  double max_shard_ms = 0;  ///< critical path — bounds pipeline throughput
  double sum_shard_ms = 0;  ///< total work across shards (duplication cost)
  uint64_t deliveries = 0;
  uint64_t allocs = 0;
  uint64_t bytes = 0;       ///< heap bytes allocated (memory bandwidth proxy)
  MinerStats stats;         ///< summed across shards
  std::vector<Fcp> output;  ///< union of all shard discoveries
};

void AccumulateStats(const MinerStats& shard, MinerStats* total) {
  total->segments_processed += shard.segments_processed;
  total->fcps_emitted += shard.fcps_emitted;
  total->candidates_checked += shard.candidates_checked;
  total->lcp_rows += shard.lcp_rows;
  total->maintenance_runs += shard.maintenance_runs;
  total->segments_expired += shard.segments_expired;
  total->mining_ns += shard.mining_ns;
  total->maintenance_ns += shard.maintenance_ns;
}

ShardedCost RunSharded(MinerKind kind, const MiningParams& params,
                       uint32_t num_shards,
                       const std::vector<Segment>& segments, int reps) {
  const DeliveryPlan plan = PlanDeliveries(segments, num_shards);
  ShardedCost cost;
  cost.deliveries = plan.deliveries;
  std::vector<Fcp> batch;
  batch.reserve(1024);
  // Replays are deterministic, so repeated runs differ only by scheduling
  // noise (this is a shared single-core host); the per-shard minimum over
  // `reps` fresh replays is the best estimate of the true cost.
  std::vector<double> best_ms(num_shards,
                              std::numeric_limits<double>::infinity());
  for (int rep = 0; rep < reps; ++rep) {
    for (uint32_t s = 0; s < num_shards; ++s) {
      const auto miner = MakeMiner(kind, params, ShardSpec{s, num_shards});
      const uint64_t allocs_before = alloc_counter::allocations();
      const uint64_t bytes_before = alloc_counter::bytes_allocated();
      Stopwatch timer;
      for (const uint32_t i : plan.per_shard[s]) {
        miner->AdvanceWatermark(plan.watermark[i]);
        batch.clear();
        miner->AddSegment(segments[i], &batch);
        if (rep == 0) {
          for (Fcp& fcp : batch) cost.output.push_back(std::move(fcp));
        }
      }
      const double ms = static_cast<double>(timer.ElapsedNanos()) / 1e6;
      best_ms[s] = std::min(best_ms[s], ms);
      if (rep == 0) {
        cost.allocs += alloc_counter::allocations() - allocs_before;
        cost.bytes += alloc_counter::bytes_allocated() - bytes_before;
        AccumulateStats(miner->stats(), &cost.stats);
      }
    }
  }
  for (const double ms : best_ms) {
    cost.max_shard_ms = std::max(cost.max_shard_ms, ms);
    cost.sum_shard_ms += ms;
  }
  return cost;
}

// ---------------------------------------------------------------------------
// Skew sweep: static hash placement vs greedy frequency placement vs live
// rebalancing (Issue 6). The placement-aware plans are recorded by running
// the REAL ShardRouter (and, for the rebalance mode, the real Rebalancer)
// single-threaded over the trace, capturing every delivery — mining and
// index-only backfill alike, each stamped with its placement snapshot — and
// then replaying each shard's FIFO against a fresh miner, timed. Migration
// cost is therefore charged honestly: the destination shard pays for its
// backfills inside its timed chain.
//
// Work stealing is deliberately absent from this offline model: a (pop,
// mine) pair serializes under the victim shard's mutex, so a steal changes
// which THREAD mines a segment, never the length of a shard's serial chain
// — the critical-path model is identical with and without it. Its real
// benefit (smoothing transient queue imbalance when a shard's dedicated
// thread falls behind) only exists with live threads; the engine-level
// StealTest suite and fcpmine --steal cover that regime.

/// Everything one shard replays, in FIFO order, placement fences included.
struct RecordedPlan {
  std::vector<std::vector<ShardDelivery>> per_shard;
  uint64_t deliveries = 0;  ///< mining deliveries
  uint64_t backfills = 0;   ///< index-only migration replays
  uint64_t rounds_triggered = 0;
  uint64_t objects_moved = 0;
};

RecordedPlan RecordPlan(const std::vector<Segment>& segments,
                        uint32_t num_shards,
                        std::shared_ptr<const PlacementMap> placement,
                        const MiningParams& params,
                        const RebalancerOptions* rebalance) {
  ShardRouterOptions options;
  options.placement = std::move(placement);
  options.track_live = rebalance != nullptr;
  options.tau = params.tau;
  // Queues must hold a full ApplyPlacement backfill burst (bounded by the
  // live set, ~one tau window of segments): the recorder drains between
  // Route calls, but ApplyPlacement enqueues its backfills in one blocking
  // call and would deadlock a single thread on a small queue.
  ShardRouter router(num_shards, /*queue_capacity=*/size_t{1} << 17, options);
  std::unique_ptr<Rebalancer> rebalancer;
  if (rebalance != nullptr) {
    rebalancer = std::make_unique<Rebalancer>(num_shards, *rebalance);
  }
  RecordedPlan plan;
  plan.per_shard.resize(num_shards);
  auto drain = [&] {
    for (uint32_t s = 0; s < num_shards; ++s) {
      while (auto delivery = router.queue(s).TryPop()) {
        if (delivery->index_only) {
          ++plan.backfills;
        } else {
          ++plan.deliveries;
        }
        plan.per_shard[s].push_back(std::move(*delivery));
      }
    }
  };
  for (const Segment& segment : segments) {
    // One pooled-slab wrap per segment, outside the timed replay; every
    // shard delivery (backfills included) shares this one allocation.
    router.Route(SegmentRef::Adopt(segment));
    if (rebalancer != nullptr) {
      rebalancer->ObserveSegment(segment);
      if (auto next = rebalancer->MaybeRebalance(router)) {
        router.ApplyPlacement(std::move(next));
      }
    }
    drain();  // single-threaded: keep the bounded queues from filling
  }
  router.Close();
  drain();
  if (rebalancer != nullptr) {
    plan.rounds_triggered = rebalancer->stats().rounds_triggered;
    plan.objects_moved = rebalancer->stats().objects_moved;
  }
  return plan;
}

ShardedCost ReplayPlan(MinerKind kind, const MiningParams& params,
                       uint32_t num_shards, const RecordedPlan& plan,
                       int reps) {
  ShardedCost cost;
  cost.deliveries = plan.deliveries;
  std::vector<Fcp> batch;
  batch.reserve(1024);
  std::vector<double> best_ms(num_shards,
                              std::numeric_limits<double>::infinity());
  for (int rep = 0; rep < reps; ++rep) {
    for (uint32_t s = 0; s < num_shards; ++s) {
      const auto miner = MakeMiner(kind, params, ShardSpec{s, num_shards});
      const PlacementMap* active = nullptr;
      const uint64_t allocs_before = alloc_counter::allocations();
      const uint64_t bytes_before = alloc_counter::bytes_allocated();
      Stopwatch timer;
      for (const ShardDelivery& delivery : plan.per_shard[s]) {
        if (delivery.placement.get() != active) {
          active = delivery.placement.get();
          miner->SetPlacement(active);
        }
        miner->AdvanceWatermark(delivery.watermark);
        if (delivery.index_only) {
          miner->AddSegmentIndexOnly(delivery.segment);
          continue;
        }
        batch.clear();
        miner->AddSegment(delivery.segment, &batch);
        if (rep == 0) {
          for (Fcp& fcp : batch) cost.output.push_back(std::move(fcp));
        }
      }
      const double ms = static_cast<double>(timer.ElapsedNanos()) / 1e6;
      best_ms[s] = std::min(best_ms[s], ms);
      if (rep == 0) {
        cost.allocs += alloc_counter::allocations() - allocs_before;
        cost.bytes += alloc_counter::bytes_allocated() - bytes_before;
        AccumulateStats(miner->stats(), &cost.stats);
      }
    }
  }
  for (const double ms : best_ms) {
    cost.max_shard_ms = std::max(cost.max_shard_ms, ms);
    cost.sum_shard_ms += ms;
  }
  return cost;
}

/// Per-object event frequencies of a segmented trace — the observation pass
/// fcpmine --placement=freq runs.
std::vector<std::pair<ObjectId, uint64_t>> ObjectWeights(
    const std::vector<Segment>& segments) {
  std::vector<uint64_t> counts;
  for (const Segment& segment : segments) {
    for (const SegmentEntry& entry : segment.entries()) {
      if (entry.object >= counts.size()) counts.resize(entry.object + 1, 0);
      ++counts[entry.object];
    }
  }
  std::vector<std::pair<ObjectId, uint64_t>> weights;
  for (ObjectId object = 0; object < counts.size(); ++object) {
    if (counts[object] > 0) weights.push_back({object, counts[object]});
  }
  return weights;
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const BenchScale scale(flags);
  const uint64_t events = scale.Events(
      static_cast<uint64_t>(flags.GetInt("events", 200000)));
  const std::string label = flags.GetString("label", "run");
  const double zipf_s = flags.GetDouble("zipf_s", 0.55);

  PrintHeader("shard scaling",
              "trigger throughput of S object-partitioned miner shards; "
              "shards replayed sequentially (single-core host), pipeline "
              "time modeled as the slowest shard (critical path); shard "
              "union asserted byte-identical to the S=1 output");

  // The Twitter workload of bench_util, with the word skew exposed (see the
  // file comment: s = 1.0 makes one word's owner the bottleneck).
  TwitterConfig twitter;
  twitter.num_users = 5000;
  twitter.vocab_size =
      static_cast<uint32_t>(flags.GetInt("vocab", 10000));
  twitter.zipf_s = zipf_s;
  twitter.mean_tweet_gap = Minutes(flags.GetInt("gap_minutes", 7));
  twitter.total_tweets = events / 5;
  twitter.num_events = static_cast<uint32_t>(events / 50000 + 2);
  twitter.seed = 42;
  const std::vector<ObjectEvent> trace = GenerateTwitter(twitter).events;
  MiningParams params = DefaultParams(Dataset::kTwitter);
  params.theta = static_cast<uint32_t>(flags.GetInt("theta", 7));
  const std::vector<Segment> zipf = SegmentTrace(trace, params.xi);
  const std::vector<Segment> cycle =
      BuildCyclicTrace(zipf, /*pool_size=*/4000, /*cycles=*/4, params);
  std::printf("events=%" PRIu64 " zipf_s=%.2f zipf_segments=%zu "
              "cycle_segments=%zu\n\n",
              events, zipf_s, zipf.size(), cycle.size());

  const MinerKind kinds[] = {MinerKind::kCooMine, MinerKind::kDiMine,
                             MinerKind::kMatrixMine};
  const uint32_t shard_counts[] = {1, 2, 4, 8};
  const std::pair<const char*, const std::vector<Segment>*> workloads[] = {
      {"zipf", &zipf}, {"cycle", &cycle}};

  std::vector<JsonRecord> records;
  bool outputs_match = true;
  std::printf("%-24s %10s %10s %9s %12s %8s %8s\n", "case", "crit(ms)",
              "sum(ms)", "deliver/s", "ns/trigger", "speedup", "fcps");
  for (MinerKind kind : kinds) {
    for (const auto& [workload, segments] : workloads) {
      double baseline_ns = 0;
      std::vector<Signature> baseline;
      for (uint32_t num_shards : shard_counts) {
        const ShardedCost cost = RunSharded(
            kind, params, num_shards, *segments,
            std::max(1, static_cast<int>(flags.GetInt("reps", 3))));
        const double triggers = static_cast<double>(segments->size());
        const double ns_per_trigger = cost.max_shard_ms * 1e6 / triggers;
        if (num_shards == 1) {
          baseline_ns = ns_per_trigger;
          baseline = Signatures(cost.output);
        } else if (Signatures(cost.output) != baseline) {
          std::fprintf(stderr,
                       "FATAL: %s/%s S=%u output differs from serial\n",
                       std::string(MinerKindToString(kind)).c_str(), workload,
                       num_shards);
          outputs_match = false;
        }
        JsonRecord record;
        record.name = std::string(MinerKindToString(kind)) + "/" + workload +
                      "/S" + std::to_string(num_shards);
        record.ns_per_op = ns_per_trigger;
        record.allocs_per_op =
            static_cast<double>(cost.allocs) / triggers;
        record.rss_bytes = CurrentRssBytes();
        record.AddExtra("speedup", baseline_ns / ns_per_trigger);
        record.AddExtra("deliveries_per_trigger",
                        static_cast<double>(cost.deliveries) / triggers);
        record.AddExtra("fcps", static_cast<double>(cost.output.size()));
        std::printf("%-24s %10.1f %10.1f %9.2f %12.1f %7.2fx %8zu\n",
                    record.name.c_str(), cost.max_shard_ms, cost.sum_shard_ms,
                    static_cast<double>(cost.deliveries) / triggers,
                    ns_per_trigger, baseline_ns / ns_per_trigger,
                    cost.output.size());
        if (flags.GetInt("stats", 0) != 0) {
          std::printf("  mine=%.1fms maint=%.1fms lcp_rows=%" PRIu64
                      " cand=%" PRIu64 " sweeps=%" PRIu64 "\n",
                      static_cast<double>(cost.stats.mining_ns) / 1e6,
                      static_cast<double>(cost.stats.maintenance_ns) / 1e6,
                      cost.stats.lcp_rows, cost.stats.candidates_checked,
                      cost.stats.maintenance_runs);
        }
        records.push_back(record);
      }
    }
  }
  // ---- Skew sweep: how each placement strategy copes as the head of the
  // object distribution grows (see the RecordedPlan comment above). CooMine
  // only — it is the paper's primary miner and the acceptance datapoint;
  // miner-equivalence under migration is covered by the Migration/Steal test
  // suites, not re-measured here. Off under --quick (the CI TSan smoke):
  // the replay is single-threaded, so sanitizers learn nothing new from it.
  const bool skew_sweep =
      flags.GetInt("skew_sweep", flags.Has("quick") ? 0 : 1) != 0;
  const uint32_t sweep_shards =
      static_cast<uint32_t>(flags.GetInt("sweep_shards", 8));
  const int reps = std::max(1, static_cast<int>(flags.GetInt("reps", 3)));
  if (!skew_sweep) {
    MaybeAppendBenchJson(flags, "bench_scaling", label, records);
    return outputs_match ? 0 : 1;
  }
  std::printf("\n%-30s %10s %10s %12s %8s %9s %10s\n",
              "skew sweep (CooMine)", "crit(ms)", "sum(ms)", "ns/trigger",
              "speedup", "backfills", "B/trigger");
  for (const double skew : {0.6, 1.0, 1.4}) {
    TwitterConfig sweep_config = twitter;
    sweep_config.zipf_s = skew;
    const std::vector<ObjectEvent> sweep_trace =
        GenerateTwitter(sweep_config).events;
    const std::vector<Segment> sweep_segments =
        SegmentTrace(sweep_trace, params.xi);
    const double triggers = static_cast<double>(sweep_segments.size());

    const ShardedCost serial =
        RunSharded(MinerKind::kCooMine, params, 1, sweep_segments, reps);
    const double baseline_ns = serial.max_shard_ms * 1e6 / triggers;
    const std::vector<Signature> baseline = Signatures(serial.output);

    auto freq_placement = BuildGreedyPlacement(ObjectWeights(sweep_segments),
                                               sweep_shards);
    RebalancerOptions rebalance;
    rebalance.interval_segments = static_cast<uint32_t>(
        flags.GetInt("rebalance_interval", 256));
    rebalance.imbalance_threshold = 1.05;
    rebalance.max_moves_per_round = 8;
    rebalance.min_move_weight = 4;

    struct Mode {
      const char* name;
      RecordedPlan plan;
    };
    Mode modes[] = {
        {"static", RecordPlan(sweep_segments, sweep_shards, nullptr, params,
                              nullptr)},
        {"freq", RecordPlan(sweep_segments, sweep_shards, freq_placement,
                            params, nullptr)},
        {"rebal", RecordPlan(sweep_segments, sweep_shards, freq_placement,
                             params, &rebalance)},
    };
    for (const Mode& mode : modes) {
      const ShardedCost cost = ReplayPlan(MinerKind::kCooMine, params,
                                          sweep_shards, mode.plan, reps);
      if (Signatures(cost.output) != baseline) {
        std::fprintf(stderr,
                     "FATAL: CooMine skew=%.1f S=%u mode=%s output differs "
                     "from serial\n",
                     skew, sweep_shards, mode.name);
        outputs_match = false;
      }
      const double ns_per_trigger = cost.max_shard_ms * 1e6 / triggers;
      JsonRecord record;
      record.name = "CooMine/skew" + std::to_string(skew).substr(0, 3) +
                    "/S" + std::to_string(sweep_shards) + "/" + mode.name;
      record.ns_per_op = ns_per_trigger;
      record.allocs_per_op = static_cast<double>(cost.allocs) / triggers;
      record.rss_bytes = CurrentRssBytes();
      record.AddExtra("zipf_s", skew);
      record.AddExtra("speedup", baseline_ns / ns_per_trigger);
      record.AddExtra("backfills", static_cast<double>(mode.plan.backfills));
      record.AddExtra("rounds_triggered",
                      static_cast<double>(mode.plan.rounds_triggered));
      record.AddExtra("objects_moved",
                      static_cast<double>(mode.plan.objects_moved));
      // Memory-bandwidth proxy: heap bytes allocated per trigger across the
      // replay (0 at steady state now that deliveries share one slab).
      record.AddExtra("bytes_per_trigger",
                      static_cast<double>(cost.bytes) / triggers);
      std::printf("%-30s %10.1f %10.1f %12.1f %7.2fx %9" PRIu64 " %10.1f\n",
                  record.name.c_str(), cost.max_shard_ms, cost.sum_shard_ms,
                  ns_per_trigger, baseline_ns / ns_per_trigger,
                  mode.plan.backfills,
                  static_cast<double>(cost.bytes) / triggers);
      records.push_back(record);
    }
  }
  MaybeAppendBenchJson(flags, "bench_scaling", label, records);
  if (!outputs_match) return 1;
  return 0;
}

}  // namespace
}  // namespace fcp::bench

int main(int argc, char** argv) { return fcp::bench::Run(argc, argv); }
