// Shard-parallel scaling bench: trigger throughput of S object-partitioned
// miner replicas (the ParallelEngine's `num_miner_shards` path) at
// S ∈ {1, 2, 4, 8}, for the three miners on two workloads:
//
//  - "zipf":  the skewed Twitter word stream (paper defaults), segments from
//             a growing open vocabulary;
//  - "cycle": closed-universe replay of a fixed segment pool — the converged
//             steady state where per-shard structures stop growing.
//
// The host is single-core, so the S shards are replayed *sequentially*, each
// against exactly the deliveries the ShardRouter would multicast to it
// (every segment goes to each shard owning >= 1 of its objects, carrying the
// global watermark). Pipeline wall-clock is then modeled as the critical
// path: the slowest shard bounds throughput, so
//
//     ns/trigger = max_s(elapsed_s) / num_segments
//
// which is what S free cores would achieve (minus routing overhead, which is
// a few percent of mining cost). The sum over shards is reported too, so the
// multicast duplication factor is visible rather than hidden.
//
// Correctness is asserted, not assumed: for every (miner, workload, S) the
// sorted multiset of discoveries (trigger, pattern, streams, window) must be
// byte-identical to the S=1 run, or the bench aborts with exit code 1.
//
// Skew bound. Object-hash partitioning balances work only as well as the
// object popularity distribution allows: the shard owning word w pays
// O(f_w^2) of the pairwise probe-vs-chain work, so with Zipf exponent
// s = 1.0 the single hottest word is ~half of all mining work and NO
// object-partitioned scheme — this one included — can exceed ~1.6x. The
// default workload therefore uses s = 0.55 (`--zipf_s=<s>` to override),
// where the head word is ~10% of the pairwise work and sharding pays off;
// run with --zipf_s=1.0 to see the ceiling itself. The other workload knobs
// (`--vocab`, `--gap_minutes`, `--theta`, `--events`, `--reps`) default to a
// dense, mining-heavy stream: ~21k tweets live per tau window, so per-probe
// row work (which partitions across shards) dominates the per-delivery
// fixed costs (which are multicast-duplicated).
//
// `--json=<path>` appends the records to BENCH_scaling.json;
// `--label=<tag>` names the run.

#include "util/alloc_counter.h"  // must be first: defines operator new/delete

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.h"
#include "common/shard.h"
#include "core/miner.h"
#include "datagen/twitter_gen.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace fcp::bench {
namespace {

// One discovery, order-insensitively comparable: two runs with equal sorted
// signature vectors found exactly the same FCPs.
using Signature = std::tuple<SegmentId, Pattern, std::vector<StreamId>,
                             Timestamp, Timestamp>;

std::vector<Signature> Signatures(const std::vector<Fcp>& fcps) {
  std::vector<Signature> out;
  out.reserve(fcps.size());
  for (const Fcp& fcp : fcps) {
    out.emplace_back(fcp.trigger, fcp.objects, fcp.streams, fcp.window_start,
                     fcp.window_end);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// The router's delivery plan, precomputed so routing cost stays out of the
// timed region: for each shard, the indices of the segments it receives, and
// for each segment the global watermark in force when it is routed.
struct DeliveryPlan {
  std::vector<std::vector<uint32_t>> per_shard;
  std::vector<Timestamp> watermark;
  uint64_t deliveries = 0;
};

DeliveryPlan PlanDeliveries(const std::vector<Segment>& segments,
                            uint32_t num_shards) {
  DeliveryPlan plan;
  plan.per_shard.resize(num_shards);
  plan.watermark.resize(segments.size());
  Timestamp watermark = kMinTimestamp;
  std::vector<bool> hit(num_shards);
  for (uint32_t i = 0; i < segments.size(); ++i) {
    watermark = std::max(watermark, segments[i].end_time());
    plan.watermark[i] = watermark;
    std::fill(hit.begin(), hit.end(), false);
    for (const SegmentEntry& entry : segments[i].entries()) {
      hit[ShardOf(entry.object, num_shards)] = true;
    }
    for (uint32_t s = 0; s < num_shards; ++s) {
      if (!hit[s]) continue;
      plan.per_shard[s].push_back(i);
      ++plan.deliveries;
    }
  }
  return plan;
}

struct ShardedCost {
  double max_shard_ms = 0;  ///< critical path — bounds pipeline throughput
  double sum_shard_ms = 0;  ///< total work across shards (duplication cost)
  uint64_t deliveries = 0;
  uint64_t allocs = 0;
  MinerStats stats;         ///< summed across shards
  std::vector<Fcp> output;  ///< union of all shard discoveries
};

void AccumulateStats(const MinerStats& shard, MinerStats* total) {
  total->segments_processed += shard.segments_processed;
  total->fcps_emitted += shard.fcps_emitted;
  total->candidates_checked += shard.candidates_checked;
  total->lcp_rows += shard.lcp_rows;
  total->maintenance_runs += shard.maintenance_runs;
  total->segments_expired += shard.segments_expired;
  total->mining_ns += shard.mining_ns;
  total->maintenance_ns += shard.maintenance_ns;
}

ShardedCost RunSharded(MinerKind kind, const MiningParams& params,
                       uint32_t num_shards,
                       const std::vector<Segment>& segments, int reps) {
  const DeliveryPlan plan = PlanDeliveries(segments, num_shards);
  ShardedCost cost;
  cost.deliveries = plan.deliveries;
  std::vector<Fcp> batch;
  batch.reserve(1024);
  // Replays are deterministic, so repeated runs differ only by scheduling
  // noise (this is a shared single-core host); the per-shard minimum over
  // `reps` fresh replays is the best estimate of the true cost.
  std::vector<double> best_ms(num_shards,
                              std::numeric_limits<double>::infinity());
  for (int rep = 0; rep < reps; ++rep) {
    for (uint32_t s = 0; s < num_shards; ++s) {
      const auto miner = MakeMiner(kind, params, ShardSpec{s, num_shards});
      const uint64_t allocs_before = alloc_counter::allocations();
      Stopwatch timer;
      for (const uint32_t i : plan.per_shard[s]) {
        miner->AdvanceWatermark(plan.watermark[i]);
        batch.clear();
        miner->AddSegment(segments[i], &batch);
        if (rep == 0) {
          for (Fcp& fcp : batch) cost.output.push_back(std::move(fcp));
        }
      }
      const double ms = static_cast<double>(timer.ElapsedNanos()) / 1e6;
      best_ms[s] = std::min(best_ms[s], ms);
      if (rep == 0) {
        cost.allocs += alloc_counter::allocations() - allocs_before;
        AccumulateStats(miner->stats(), &cost.stats);
      }
    }
  }
  for (const double ms : best_ms) {
    cost.max_shard_ms = std::max(cost.max_shard_ms, ms);
    cost.sum_shard_ms += ms;
  }
  return cost;
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const BenchScale scale(flags);
  const uint64_t events = scale.Events(
      static_cast<uint64_t>(flags.GetInt("events", 200000)));
  const std::string label = flags.GetString("label", "run");
  const double zipf_s = flags.GetDouble("zipf_s", 0.55);

  PrintHeader("shard scaling",
              "trigger throughput of S object-partitioned miner shards; "
              "shards replayed sequentially (single-core host), pipeline "
              "time modeled as the slowest shard (critical path); shard "
              "union asserted byte-identical to the S=1 output");

  // The Twitter workload of bench_util, with the word skew exposed (see the
  // file comment: s = 1.0 makes one word's owner the bottleneck).
  TwitterConfig twitter;
  twitter.num_users = 5000;
  twitter.vocab_size =
      static_cast<uint32_t>(flags.GetInt("vocab", 10000));
  twitter.zipf_s = zipf_s;
  twitter.mean_tweet_gap = Minutes(flags.GetInt("gap_minutes", 7));
  twitter.total_tweets = events / 5;
  twitter.num_events = static_cast<uint32_t>(events / 50000 + 2);
  twitter.seed = 42;
  const std::vector<ObjectEvent> trace = GenerateTwitter(twitter).events;
  MiningParams params = DefaultParams(Dataset::kTwitter);
  params.theta = static_cast<uint32_t>(flags.GetInt("theta", 7));
  const std::vector<Segment> zipf = SegmentTrace(trace, params.xi);
  const std::vector<Segment> cycle =
      BuildCyclicTrace(zipf, /*pool_size=*/4000, /*cycles=*/4, params);
  std::printf("events=%" PRIu64 " zipf_s=%.2f zipf_segments=%zu "
              "cycle_segments=%zu\n\n",
              events, zipf_s, zipf.size(), cycle.size());

  const MinerKind kinds[] = {MinerKind::kCooMine, MinerKind::kDiMine,
                             MinerKind::kMatrixMine};
  const uint32_t shard_counts[] = {1, 2, 4, 8};
  const std::pair<const char*, const std::vector<Segment>*> workloads[] = {
      {"zipf", &zipf}, {"cycle", &cycle}};

  std::vector<JsonRecord> records;
  bool outputs_match = true;
  std::printf("%-24s %10s %10s %9s %12s %8s %8s\n", "case", "crit(ms)",
              "sum(ms)", "deliver/s", "ns/trigger", "speedup", "fcps");
  for (MinerKind kind : kinds) {
    for (const auto& [workload, segments] : workloads) {
      double baseline_ns = 0;
      std::vector<Signature> baseline;
      for (uint32_t num_shards : shard_counts) {
        const ShardedCost cost = RunSharded(
            kind, params, num_shards, *segments,
            std::max(1, static_cast<int>(flags.GetInt("reps", 3))));
        const double triggers = static_cast<double>(segments->size());
        const double ns_per_trigger = cost.max_shard_ms * 1e6 / triggers;
        if (num_shards == 1) {
          baseline_ns = ns_per_trigger;
          baseline = Signatures(cost.output);
        } else if (Signatures(cost.output) != baseline) {
          std::fprintf(stderr,
                       "FATAL: %s/%s S=%u output differs from serial\n",
                       std::string(MinerKindToString(kind)).c_str(), workload,
                       num_shards);
          outputs_match = false;
        }
        JsonRecord record;
        record.name = std::string(MinerKindToString(kind)) + "/" + workload +
                      "/S" + std::to_string(num_shards);
        record.ns_per_op = ns_per_trigger;
        record.allocs_per_op =
            static_cast<double>(cost.allocs) / triggers;
        record.rss_bytes = CurrentRssBytes();
        record.AddExtra("speedup", baseline_ns / ns_per_trigger);
        record.AddExtra("deliveries_per_trigger",
                        static_cast<double>(cost.deliveries) / triggers);
        record.AddExtra("fcps", static_cast<double>(cost.output.size()));
        std::printf("%-24s %10.1f %10.1f %9.2f %12.1f %7.2fx %8zu\n",
                    record.name.c_str(), cost.max_shard_ms, cost.sum_shard_ms,
                    static_cast<double>(cost.deliveries) / triggers,
                    ns_per_trigger, baseline_ns / ns_per_trigger,
                    cost.output.size());
        if (flags.GetInt("stats", 0) != 0) {
          std::printf("  mine=%.1fms maint=%.1fms lcp_rows=%" PRIu64
                      " cand=%" PRIu64 " sweeps=%" PRIu64 "\n",
                      static_cast<double>(cost.stats.mining_ns) / 1e6,
                      static_cast<double>(cost.stats.maintenance_ns) / 1e6,
                      cost.stats.lcp_rows, cost.stats.candidates_checked,
                      cost.stats.maintenance_runs);
        }
        records.push_back(record);
      }
    }
  }
  MaybeAppendBenchJson(flags, "bench_scaling", label, records);
  if (!outputs_match) return 1;
  return 0;
}

}  // namespace
}  // namespace fcp::bench

int main(int argc, char** argv) { return fcp::bench::Run(argc, argv); }
