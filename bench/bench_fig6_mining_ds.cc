// Reproduces Fig. 6(e)/(f): CooMine's mining cost vs arrival rate at three
// data scales Ds — the paper's point is that Ds has no visible effect,
// because CooMine only searches a small neighbourhood of each new segment.
//
//  - 6(e): TR, Ds in {100k, 150k, 200k} VPRs (xi=60s, tau=30min)
//  - 6(f): Twitter, Ds in {100k, 150k, 200k} tweets
//
// Flags: --quick, --scale=<f>, --csv

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "util/table_printer.h"

namespace fcp::bench {
namespace {

void RunDataset(const std::string& figure, Dataset dataset,
                uint64_t paper_unit, const BenchScale& scale, bool csv) {
  TablePrinter table(
      {"figure", "dataset", "Ds", "rate/s", "coomine_mining_ms"});
  const MiningParams params = DefaultParams(dataset);
  for (uint64_t ds_units : {100000ull, 150000ull, 200000ull}) {
    const uint64_t warm_events = scale.Events(ds_units * paper_unit);
    const std::vector<ObjectEvent> events =
        GenerateEvents(dataset, warm_events + 160000, /*seed=*/42);
    MinerDriver coo(MinerKind::kCooMine, params);
    const size_t warm_end = std::min<size_t>(warm_events, events.size());
    coo.PushEvents(events, 0, warm_end);
    size_t i = warm_end;
    for (uint64_t rate = 1000; rate <= 5000; rate += 1000) {
      const CostSample c = coo.MeasureRate(events, &i, rate);
      table.AddRow({figure, std::string(DatasetName(dataset)),
                    std::to_string(ds_units), std::to_string(rate),
                    TablePrinter::Num(c.mining_ms, 2)});
    }
  }
  if (csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace fcp::bench

int main(int argc, char** argv) {
  fcp::Flags flags(argc, argv);
  const fcp::bench::BenchScale scale(flags);
  const bool csv = flags.GetBool("csv", false);

  fcp::bench::PrintHeader(
      "Fig. 6(e)/(f): CooMine mining cost vs arrival rate across Ds",
      "Ds (the already-processed volume) should have little effect on the\n"
      "per-second mining cost.");
  // paper_unit: 1 Ds unit = 1 VPR (TR) or ~5 word events (Twitter tweet).
  fcp::bench::RunDataset("6(e)", fcp::bench::Dataset::kTraffic, 1, scale,
                         csv);
  fcp::bench::RunDataset("6(f)", fcp::bench::Dataset::kTwitter, 5, scale,
                         csv);
  return 0;
}
