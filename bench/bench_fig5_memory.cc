// Reproduces Fig. 5(a)/(b): memory consumption of the three index structures
// for processing the data arriving within one second, at arrival rates of
// 1000..5000 events/s, after a warm-up of Ds events (TR: Ds=200k VPRs with
// xi=60s; Twitter: Ds=200k tweets).
//
// Interpretation (EXPERIMENTS.md): the y value is the additional index
// memory consumed by ingesting R further events on top of the warmed state.
//
// Flags: --quick (1/4 scale), --scale=<f>, --csv

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "index/di_index.h"
#include "index/matrix_index.h"
#include "index/seg_tree.h"
#include "stream/stream_mux.h"
#include "util/table_printer.h"

namespace fcp::bench {
namespace {

// All three indexes fed from one segmenter, with each index's own expiry
// policy applied at the paper's cadence.
class IndexTrio {
 public:
  explicit IndexTrio(const MiningParams& params)
      : params_(params), mux_(params.xi) {}

  void PushEvent(const ObjectEvent& event, bool auto_sweep) {
    scratch_.clear();
    mux_.Push(event, &scratch_);
    for (const SegmentRef& ref : scratch_) {
      const Segment& segment = *ref;
      tree_.Insert(segment);
      di_.Insert(segment);
      matrix_.Insert(segment);
      watermark_ = std::max(watermark_, segment.end_time());
      if (last_sweep_ == kMinTimestamp) last_sweep_ = watermark_;
      if (auto_sweep &&
          watermark_ - last_sweep_ >= params_.maintenance_interval) {
        SweepNow();
      }
    }
  }

  /// Expires everything outside the tau window right now, so a following
  /// measurement batch is pure insertion.
  void SweepNow() {
    tree_.RemoveExpired(watermark_, params_.tau);
    di_.RemoveExpired(watermark_, params_.tau);
    matrix_.RemoveExpired(watermark_, params_.tau);
    last_sweep_ = watermark_;
  }

  size_t tree_bytes() const { return tree_.MemoryUsage(); }
  size_t di_bytes() const { return di_.MemoryUsage(); }
  size_t matrix_bytes() const { return matrix_.MemoryUsage(); }

 private:
  MiningParams params_;
  StreamMux mux_;
  SegTree tree_;
  DiIndex di_;
  MatrixIndex matrix_;
  std::vector<SegmentRef> scratch_;
  Timestamp watermark_ = kMinTimestamp;
  Timestamp last_sweep_ = kMinTimestamp;
};

void RunDataset(Dataset dataset, uint64_t warm_events, const BenchScale& scale,
                bool csv) {
  const uint64_t warm = scale.Events(warm_events);
  const MiningParams params = DefaultParams(dataset);
  const std::vector<ObjectEvent> events =
      GenerateEvents(dataset, warm + 16000, /*seed=*/42);

  IndexTrio trio(params);
  size_t i = 0;
  for (; i < warm && i < events.size(); ++i) {
    trio.PushEvent(events[i], /*auto_sweep=*/true);
  }

  TablePrinter table({"dataset", "rate/s", "seg_tree_MB", "di_index_MB",
                      "matrix_MB"});
  for (uint64_t rate = 1000; rate <= 5000; rate += 1000) {
    // Each rate point is a pure-insertion batch of R events on top of a
    // freshly swept steady state (expiry cost is Fig. 5(c)-(e)'s subject).
    trio.SweepNow();
    const double tree0 = static_cast<double>(trio.tree_bytes());
    const double di0 = static_cast<double>(trio.di_bytes());
    const double matrix0 = static_cast<double>(trio.matrix_bytes());
    const uint64_t upto = std::min<uint64_t>(i + rate, events.size());
    for (; i < upto; ++i) trio.PushEvent(events[i], /*auto_sweep=*/false);
    auto mb = [](double delta) {
      return TablePrinter::Num(delta / (1024.0 * 1024.0), 3);
    };
    table.AddRow({std::string(DatasetName(dataset)), std::to_string(rate),
                  mb(static_cast<double>(trio.tree_bytes()) - tree0),
                  mb(static_cast<double>(trio.di_bytes()) - di0),
                  mb(static_cast<double>(trio.matrix_bytes()) - matrix0)});
  }
  if (csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace fcp::bench

int main(int argc, char** argv) {
  fcp::Flags flags(argc, argv);
  const fcp::bench::BenchScale scale(flags);
  const bool csv = flags.GetBool("csv", false);

  fcp::bench::PrintHeader(
      "Fig. 5(a)/(b): index memory vs arrival rate",
      "delta index memory (MB) after ingesting R events past the Ds warm-up;\n"
      "TR: Ds=200k VPRs, xi=60s; Twitter: Ds=200k tweets (~5 words each).");
  fcp::bench::RunDataset(fcp::bench::Dataset::kTraffic, 200000, scale, csv);
  fcp::bench::RunDataset(fcp::bench::Dataset::kTwitter, 200000 * 5, scale,
                         csv);
  return 0;
}
