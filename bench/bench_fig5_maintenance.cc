// Reproduces Fig. 5(c)/(d)/(e): maintenance cost (ms) of the three index
// structures for processing the data arriving within one second, at arrival
// rates of 1000..5000 events/s.
//
//  - 5(c): TR, xi=60s, tau=30min, Ds=200k VPRs
//  - 5(d): TR, Ds=100k, xi in {40s, 60s}
//  - 5(e): Twitter, Ds=200k tweets
//
// Maintenance = segment insertion + expiry (Seg-tree: Tlist sweep; DI-Index
// and Matrix: full posting/cell scans at the maintenance cadence).
//
// Flags: --quick, --scale=<f>, --csv

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "index/di_index.h"
#include "index/matrix_index.h"
#include "index/seg_tree.h"
#include "stream/stream_mux.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace fcp::bench {
namespace {

// Feeds events; times each index's insert + expiry work separately.
class TimedTrio {
 public:
  explicit TimedTrio(const MiningParams& params)
      : params_(params), mux_(params.xi) {}

  void PushEvent(const ObjectEvent& event) {
    scratch_.clear();
    mux_.Push(event, &scratch_);
    for (const SegmentRef& ref : scratch_) {
      const Segment& segment = *ref;
      watermark_ = std::max(watermark_, segment.end_time());
      {
        Stopwatch timer;
        tree_.Insert(segment);
        tree_ns_ += timer.ElapsedNanos();
      }
      {
        Stopwatch timer;
        di_.Insert(segment);
        di_ns_ += timer.ElapsedNanos();
      }
      {
        Stopwatch timer;
        matrix_.Insert(segment);
        matrix_ns_ += timer.ElapsedNanos();
      }
      if (last_sweep_ == kMinTimestamp) last_sweep_ = watermark_;
      if (watermark_ - last_sweep_ >= params_.maintenance_interval) {
        {
          Stopwatch timer;
          tree_.RemoveExpired(watermark_, params_.tau);
          tree_ns_ += timer.ElapsedNanos();
        }
        {
          Stopwatch timer;
          di_.RemoveExpired(watermark_, params_.tau);
          di_ns_ += timer.ElapsedNanos();
        }
        {
          Stopwatch timer;
          matrix_.RemoveExpired(watermark_, params_.tau);
          matrix_ns_ += timer.ElapsedNanos();
        }
        last_sweep_ = watermark_;
      }
    }
  }

  struct Snapshot {
    int64_t tree_ns, di_ns, matrix_ns;
  };
  Snapshot snapshot() const { return {tree_ns_, di_ns_, matrix_ns_}; }

 private:
  MiningParams params_;
  StreamMux mux_;
  SegTree tree_;
  DiIndex di_;
  MatrixIndex matrix_;
  std::vector<SegmentRef> scratch_;
  Timestamp watermark_ = kMinTimestamp;
  Timestamp last_sweep_ = kMinTimestamp;
  int64_t tree_ns_ = 0;
  int64_t di_ns_ = 0;
  int64_t matrix_ns_ = 0;
};

void RunCase(const std::string& figure, Dataset dataset, uint64_t warm_events,
             DurationMs xi, const BenchScale& scale, bool csv) {
  const uint64_t warm = scale.Events(warm_events);
  MiningParams params = DefaultParams(dataset);
  params.xi = xi;
  const std::vector<ObjectEvent> events =
      GenerateEvents(dataset, warm + 160000, /*seed=*/42);

  TimedTrio trio(params);
  size_t i = 0;
  for (; i < warm && i < events.size(); ++i) trio.PushEvent(events[i]);

  TablePrinter table({"figure", "dataset", "xi(s)", "rate/s", "seg_tree_ms",
                      "di_index_ms", "matrix_ms"});
  for (uint64_t rate = 1000; rate <= 5000; rate += 1000) {
    // Amortize periodic sweeps: process a window of >= 3*rate events and
    // scale the cost to "rate events" (one second of data).
    const uint64_t window = std::max<uint64_t>(5 * rate, 25000);
    const auto before = trio.snapshot();
    const uint64_t begin = i;
    const uint64_t upto = std::min<uint64_t>(i + window, events.size());
    for (; i < upto; ++i) trio.PushEvent(events[i]);
    const auto after = trio.snapshot();
    const double scale_to_rate =
        upto > begin
            ? static_cast<double>(rate) / static_cast<double>(upto - begin)
            : 0.0;
    auto ms = [&](int64_t delta_ns) {
      return TablePrinter::Num(
          static_cast<double>(delta_ns) / 1e6 * scale_to_rate, 2);
    };
    table.AddRow({figure, std::string(DatasetName(dataset)),
                  std::to_string(xi / 1000), std::to_string(rate),
                  ms(after.tree_ns - before.tree_ns),
                  ms(after.di_ns - before.di_ns),
                  ms(after.matrix_ns - before.matrix_ns)});
  }
  if (csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace fcp::bench

int main(int argc, char** argv) {
  fcp::Flags flags(argc, argv);
  const fcp::bench::BenchScale scale(flags);
  const bool csv = flags.GetBool("csv", false);
  using fcp::bench::Dataset;

  fcp::bench::PrintHeader(
      "Fig. 5(c)/(d)/(e): index maintenance cost vs arrival rate",
      "ms of insert+expiry work per R events, measured after a Ds warm-up.");
  fcp::bench::RunCase("5(c)", Dataset::kTraffic, 200000, fcp::Seconds(60),
                      scale, csv);
  fcp::bench::RunCase("5(d)", Dataset::kTraffic, 100000, fcp::Seconds(40),
                      scale, csv);
  fcp::bench::RunCase("5(d)", Dataset::kTraffic, 100000, fcp::Seconds(60),
                      scale, csv);
  fcp::bench::RunCase("5(e)", Dataset::kTwitter, 200000 * 5, fcp::Seconds(60),
                      scale, csv);
  return 0;
}
