// Reproduces Fig. 10(a)/(b): number of distinct FCPs as a function of the
// stream-support threshold theta.
//
//  - 10(a): TR, xi=60s, Ds=100k VPRs, theta in {3, 4, 5}, k=2..4
//  - 10(b): Twitter, Ds=100k tweets, theta in {5, 10, 15, 20}, k=2..4
//
// Flags: --quick, --scale=<f>, --csv

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/mining_engine.h"
#include "util/table_printer.h"

namespace fcp::bench {
namespace {

void RunDataset(const std::string& figure, Dataset dataset,
                uint64_t paper_unit, const std::vector<uint32_t>& thetas,
                const BenchScale& scale, TablePrinter* table) {
  const uint64_t max_events = scale.Events(100000 * paper_unit);
  const std::vector<ObjectEvent> events =
      GenerateEvents(dataset, max_events, /*seed=*/42);
  for (uint32_t theta : thetas) {
    MiningParams params = DefaultParams(dataset);
    params.theta = theta;
    params.min_pattern_size = 2;
    params.max_pattern_size = 4;
    MiningEngine engine(MinerKind::kCooMine, params);
    for (const ObjectEvent& event : events) engine.PushEvent(event);
    engine.Flush();
    const auto& counts = engine.collector().distinct_patterns_by_size();
    auto get = [&](uint32_t k) -> uint64_t {
      auto it = counts.find(k);
      return it == counts.end() ? 0 : it->second;
    };
    table->AddRow({figure, std::string(DatasetName(dataset)),
                   std::to_string(theta), std::to_string(get(2)),
                   std::to_string(get(3)), std::to_string(get(4))});
  }
}

}  // namespace
}  // namespace fcp::bench

int main(int argc, char** argv) {
  fcp::Flags flags(argc, argv);
  const fcp::bench::BenchScale scale(flags);

  fcp::bench::PrintHeader(
      "Fig. 10(a)/(b): number of distinct FCPs vs theta",
      "raising the stream-support threshold sharply reduces the FCP count.");
  fcp::TablePrinter table(
      {"figure", "dataset", "theta", "k=2", "k=3", "k=4"});
  fcp::bench::RunDataset("10(a)", fcp::bench::Dataset::kTraffic,
                         /*paper_unit=*/1, {3, 4, 5}, scale, &table);
  fcp::bench::RunDataset("10(b)", fcp::bench::Dataset::kTwitter,
                         /*paper_unit=*/5, {5, 10, 15, 20}, scale, &table);
  if (flags.GetBool("csv", false)) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  return 0;
}
