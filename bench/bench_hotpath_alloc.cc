// Hot-path allocation/latency microbench: ns/op and heap-allocations/op of
// steady-state AddSegment for the three miners, on the skewed (Zipf
// vocabulary) Twitter workload by default.
//
// Two workloads per miner:
//  - "zipf":   paper-default parameters — the latency comparison point
//              recorded in BENCH_hotpath.json;
//  - "steady": same trace with theta raised so no FCP clears the bar — every
//              trigger exercises the full index + mining path but emits
//              nothing. The Zipf tail still yields first-seen objects
//              throughout the trace, so structures keep growing slightly;
//  - "cycle":  closed-universe replay — a fixed pool of segment shapes
//              repeated with fresh ids and advancing timestamps. After the
//              warm cycles every structure has converged, which is the
//              regime where CooMine must perform ZERO heap allocations per
//              AddSegment.
//
// `--json=<path>` appends the records to a BENCH_*.json trajectory file;
// `--label=<tag>` names the run (e.g. "pre", "post").

#include "util/alloc_counter.h"  // must be first: defines operator new/delete

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <ctime>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/shard.h"
#include "core/engine_metrics.h"
#include "core/miner.h"
#include "obs/endpoints.h"
#include "obs/obs_server.h"
#include "obs/watchdog.h"
#include "prof/prof.h"
#include "stream/segment_ref.h"
#include "stream/shard_router.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace fcp::bench {
namespace {

struct OpCost {
  double ns_per_op = 0;
  double allocs_per_op = 0;
};

OpCost MeasureAddSegment(MinerKind kind, const MiningParams& params,
                         const std::vector<Segment>& segments) {
  auto miner = MakeMiner(kind, params);
  const size_t warm = segments.size() / 2;
  std::vector<Fcp> sink;
  sink.reserve(1024);
  for (size_t i = 0; i < warm; ++i) {
    sink.clear();
    miner->AddSegment(segments[i], &sink);
  }

  const uint64_t allocs_before = alloc_counter::allocations();
  Stopwatch timer;
  for (size_t i = warm; i < segments.size(); ++i) {
    sink.clear();
    miner->AddSegment(segments[i], &sink);
  }
  const int64_t elapsed_ns = timer.ElapsedNanos();
  const uint64_t allocs = alloc_counter::allocations() - allocs_before;

  const double ops = static_cast<double>(segments.size() - warm);
  OpCost cost;
  cost.ns_per_op = static_cast<double>(elapsed_ns) / ops;
  cost.allocs_per_op = static_cast<double>(allocs) / ops;
  return cost;
}

// Like MeasureAddSegment, but with the engines' per-segment telemetry
// publish sequence (histogram Record + PublishDelta + PublishIntrospection)
// when `publish` is set. The registry is always constructed, so `publish ==
// false` is the compiled-but-unread baseline the overhead is measured
// against.
OpCost MeasureWithTelemetry(MinerKind kind, const MiningParams& params,
                            const std::vector<Segment>& segments,
                            bool publish) {
  telemetry::MetricRegistry registry;
  const MinerMetrics metrics = MinerMetrics::Register(&registry, "");
  telemetry::LatencyHistogram* latency =
      registry.GetHistogram("fcp_segment_mine_latency_us");
  MinerStats published;

  auto miner = MakeMiner(kind, params);
  const size_t warm = segments.size() / 2;
  std::vector<Fcp> sink;
  sink.reserve(1024);
  for (size_t i = 0; i < warm; ++i) {
    sink.clear();
    miner->AddSegment(segments[i], &sink);
    if (publish) {
      latency->Record(static_cast<uint64_t>(i & 1023));
      metrics.PublishDelta(miner->stats(), &published);
      metrics.PublishIntrospection(miner->Introspect());
    }
  }

  const uint64_t allocs_before = alloc_counter::allocations();
  Stopwatch timer;
  for (size_t i = warm; i < segments.size(); ++i) {
    sink.clear();
    miner->AddSegment(segments[i], &sink);
    if (publish) {
      latency->Record(static_cast<uint64_t>(i & 1023));
      metrics.PublishDelta(miner->stats(), &published);
      metrics.PublishIntrospection(miner->Introspect());
    }
  }
  const int64_t elapsed_ns = timer.ElapsedNanos();
  const uint64_t allocs = alloc_counter::allocations() - allocs_before;

  const double ops = static_cast<double>(segments.size() - warm);
  OpCost cost;
  cost.ns_per_op = static_cast<double>(elapsed_ns) / ops;
  cost.allocs_per_op = static_cast<double>(allocs) / ops;
  return cost;
}

// Sharded replay: `num_shards` replicas each index their routed share of the
// trace (min-object routing, ownership-filtered mining — the ShardRouter's
// delivery pattern without the queues). The delivery plan is precomputed so
// routing never charges the measurement; allocs/op is per delivery. Posting
// growth is re-paid by every replica, so this is where unpooled per-shard
// postings make allocs/op climb with S — arena-pooled postings must hold it
// near-flat.
OpCost MeasureShardedAddSegment(MinerKind kind, const MiningParams& params,
                                const std::vector<Segment>& segments,
                                uint32_t num_shards) {
  std::vector<std::unique_ptr<FcpMiner>> miners;
  for (uint32_t s = 0; s < num_shards; ++s) {
    miners.push_back(MakeMiner(kind, params, ShardSpec{s, num_shards}));
  }
  std::vector<std::vector<uint32_t>> plan(segments.size());
  for (size_t i = 0; i < segments.size(); ++i) {
    for (ObjectId object : segments[i].DistinctObjects()) {
      const uint32_t shard = ShardOf(object, num_shards);
      std::vector<uint32_t>& targets = plan[i];
      if (std::find(targets.begin(), targets.end(), shard) == targets.end()) {
        targets.push_back(shard);
      }
    }
  }

  std::vector<Fcp> sink;
  sink.reserve(1024);
  uint64_t deliveries = 0;
  auto replay = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      for (uint32_t target : plan[i]) {
        miners[target]->AdvanceWatermark(segments[i].end_time());
        sink.clear();
        miners[target]->AddSegment(segments[i], &sink);
        ++deliveries;
      }
    }
  };
  const size_t warm = segments.size() / 2;
  replay(0, warm);

  deliveries = 0;
  const uint64_t allocs_before = alloc_counter::allocations();
  Stopwatch timer;
  replay(warm, segments.size());
  const int64_t elapsed_ns = timer.ElapsedNanos();
  const uint64_t allocs = alloc_counter::allocations() - allocs_before;

  const double ops = static_cast<double>(deliveries);
  OpCost cost;
  cost.ns_per_op = static_cast<double>(elapsed_ns) / ops;
  cost.allocs_per_op = static_cast<double>(allocs) / ops;
  return cost;
}

// Router-path cost of the zero-copy segment fabric: a real ShardRouter
// (live tracking on, as under --rebalance) multicasting refcounted slabs,
// with every delivery drained and dropped right after its Route so the
// measurement covers the delivery's full life — multicast refcount bumps,
// queue churn, live-ring upkeep, final release. The refs are adopted once
// before the timed region; steady state must stay at (essentially) zero
// allocations per delivery for every fan-out, because a delivery is a
// refcount increment, never an entry-vector copy.
struct RouterCost {
  OpCost op;
  double bytes_per_op = 0;
};

RouterCost MeasureRouterPath(const std::vector<Segment>& segments,
                             DurationMs tau, uint32_t num_shards) {
  ShardRouterOptions options;
  options.track_live = true;
  options.tau = tau;
  ShardRouter router(num_shards, /*queue_capacity=*/4096, std::move(options));
  std::vector<SegmentRef> refs;
  refs.reserve(segments.size());
  for (const Segment& segment : segments) {
    refs.push_back(SegmentRef::Adopt(Segment(segment)));
  }

  uint64_t deliveries = 0;
  auto replay = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      router.Route(refs[i]);
      for (uint32_t s = 0; s < num_shards; ++s) {
        while (router.queue(s).TryPop()) ++deliveries;
      }
    }
  };
  const size_t warm = segments.size() / 2;
  replay(0, warm);

  deliveries = 0;
  const uint64_t allocs_before = alloc_counter::allocations();
  const uint64_t bytes_before = alloc_counter::bytes_allocated();
  Stopwatch timer;
  replay(warm, segments.size());
  const int64_t elapsed_ns = timer.ElapsedNanos();
  const uint64_t allocs = alloc_counter::allocations() - allocs_before;
  const uint64_t bytes = alloc_counter::bytes_allocated() - bytes_before;

  const double ops = static_cast<double>(deliveries);
  RouterCost cost;
  cost.op.ns_per_op = static_cast<double>(elapsed_ns) / ops;
  cost.op.allocs_per_op = static_cast<double>(allocs) / ops;
  cost.bytes_per_op = static_cast<double>(bytes) / ops;
  return cost;
}

// One blocking loopback HTTP GET against the embedded ObsServer; returns
// bytes received (0 on any failure).
size_t ScrapeOnce(uint16_t port, const char* path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  size_t total = 0;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) ==
      0) {
    char request[128];
    const int len = std::snprintf(
        request, sizeof(request), "GET %s HTTP/1.1\r\nHost: bench\r\n\r\n",
        path);
    if (::send(fd, request, static_cast<size_t>(len), 0) == len) {
      char buffer[4096];
      ssize_t got;
      while ((got = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
        total += static_cast<size_t>(got);
      }
    }
  }
  ::close(fd);
  return total;
}

enum class ObsMode {
  kOff,      // no obs plane at all: the overhead baseline
  kWired,    // heartbeat wired + server live, nobody scraping
  kScraped,  // a client thread scrapes /metrics,/statusz,/varz back-to-back
};

// CPU time consumed by the calling thread, in nanoseconds.
int64_t ThreadCpuNanos() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return ts.tv_sec * 1'000'000'000LL + ts.tv_nsec;
}

struct ScrapeCost {
  OpCost mining;          // wall ns/op + process-wide allocation delta
  double cpu_ns_per_op = 0;  // mining-thread CPU time per op
  uint64_t scrapes = 0;   // scrapes completed inside the timed region
};

// Scrape-under-load: the converged cyclic CooMine workload with the full
// per-segment publish sequence, mined while an embedded ObsServer answers a
// scraper. `kWired` proves the instrumentation itself (heartbeat stores, a
// parked poll thread) costs nothing — the process-wide allocation delta must
// stay exactly 0/op. Under `kScraped` every allocation the scrapes cause
// lands on the server's poll thread, never the mining thread, so the
// process-wide allocs/op is reported per *scrape* instead and the mining
// claim rides on the wired leg.
ScrapeCost MeasureUnderScrape(const MiningParams& params,
                              const std::vector<Segment>& segments,
                              ObsMode mode) {
  telemetry::MetricRegistry registry;
  const MinerMetrics metrics = MinerMetrics::Register(&registry, "");
  telemetry::LatencyHistogram* latency =
      registry.GetHistogram("fcp_segment_mine_latency_us");
  MinerStats published;

  obs::WatchdogOptions watchdog_options;
  watchdog_options.poll_interval_ms = 0;  // heartbeats only, no eval thread
  watchdog_options.metrics = &registry;
  obs::Watchdog watchdog(watchdog_options);
  obs::StageHeartbeat* heartbeat =
      mode == ObsMode::kOff ? nullptr : watchdog.RegisterStage("bench-mine");

  std::unique_ptr<obs::ObsServer> server;
  if (mode != ObsMode::kOff) {
    obs::ObsServerOptions server_options;
    server_options.metrics = &registry;
    server = std::make_unique<obs::ObsServer>(server_options);
    obs::EndpointSources sources;
    sources.registry = &registry;
    sources.watchdog = &watchdog;
    obs::InstallStandardEndpoints(*server, sources);
    if (!server->Start().ok()) server.reset();
  }
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scrapes{0};
  std::thread scraper;
  if (mode == ObsMode::kScraped && server != nullptr) {
    // 10 scrapes/s — still ~150x a real Prometheus interval, but paced: a
    // zero-delay loop measures how fast the snapshot path can be hammered
    // (pure CPU-sharing on small hosts), not what a scraper costs the miner.
    const uint16_t port = server->port();
    scraper = std::thread([&stop, &scrapes, port] {
      const char* paths[] = {"/metrics", "/statusz", "/varz"};
      for (size_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        if (ScrapeOnce(port, paths[i % 3]) > 0) {
          scrapes.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    });
  }

  auto miner = MakeMiner(MinerKind::kCooMine, params);
  std::vector<Fcp> sink;
  sink.reserve(1024);
  auto mine = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (heartbeat != nullptr) heartbeat->MarkIdle(false);
      sink.clear();
      miner->AddSegment(segments[i], &sink);
      latency->Record(static_cast<uint64_t>(i & 1023));
      metrics.PublishDelta(miner->stats(), &published);
      metrics.PublishIntrospection(miner->Introspect());
      if (heartbeat != nullptr) {
        heartbeat->Beat();
        heartbeat->MarkIdle(true);
      }
    }
  };
  const size_t warm = segments.size() / 2;
  mine(0, warm);

  const uint64_t scrapes_before = scrapes.load(std::memory_order_relaxed);
  const uint64_t allocs_before = alloc_counter::allocations();
  const int64_t cpu_before = ThreadCpuNanos();
  Stopwatch timer;
  mine(warm, segments.size());
  const int64_t elapsed_ns = timer.ElapsedNanos();
  const int64_t cpu_ns = ThreadCpuNanos() - cpu_before;
  const uint64_t allocs = alloc_counter::allocations() - allocs_before;
  const uint64_t scrapes_during =
      scrapes.load(std::memory_order_relaxed) - scrapes_before;

  stop.store(true, std::memory_order_relaxed);
  if (scraper.joinable()) scraper.join();
  if (server != nullptr) server->Stop();
  watchdog.Stop();

  const double ops = static_cast<double>(segments.size() - warm);
  ScrapeCost cost;
  cost.mining.ns_per_op = static_cast<double>(elapsed_ns) / ops;
  cost.mining.allocs_per_op = static_cast<double>(allocs) / ops;
  cost.cpu_ns_per_op = static_cast<double>(cpu_ns) / ops;
  cost.scrapes = scrapes_during;
  return cost;
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const BenchScale scale(flags);
  const Dataset dataset =
      flags.GetString("dataset", "twitter") == "traffic" ? Dataset::kTraffic
                                                         : Dataset::kTwitter;
  const uint64_t events = scale.Events(
      static_cast<uint64_t>(flags.GetInt("events", 400000)));
  const std::string label = flags.GetString("label", "run");
  // Pin the SIMD dispatch level. An explicit --kernel tags every record name
  // with the level (per-kernel trajectory points in BENCH_kernels.json);
  // without the flag the names stay bare so the BENCH_hotpath.json
  // trajectory keeps comparing like with like across PRs.
  const std::string_view kernel_name = ApplyKernelFlag(flags);
  std::string kernel_suffix;
  if (flags.Has("kernel")) {
    kernel_suffix = "@";
    kernel_suffix += kernel_name;
  }

  PrintHeader("hot-path alloc",
              "steady-state AddSegment ns/op and heap allocations/op "
              "(operator-new counter); 'steady' raises theta so no FCP is "
              "emitted");

  const std::vector<ObjectEvent> trace =
      GenerateEvents(dataset, events, /*seed=*/42);
  const MiningParams zipf_params = DefaultParams(dataset);
  const std::vector<Segment> segments = SegmentTrace(trace, zipf_params.xi);
  std::printf("dataset=%s events=%" PRIu64 " segments=%zu kernel=%s\n\n",
              std::string(DatasetName(dataset)).c_str(), events,
              segments.size(), std::string(kernel_name).c_str());

  MiningParams steady_params = zipf_params;
  steady_params.theta = 1u << 20;  // unreachable: no emissions

  const MinerKind kinds[] = {MinerKind::kCooMine, MinerKind::kDiMine,
                             MinerKind::kMatrixMine};
  std::vector<JsonRecord> records;
  std::printf("%-24s %14s %14s %12s\n", "case", "ns/op", "allocs/op",
              "rss(MB)");
  for (MinerKind kind : kinds) {
    for (const bool steady : {false, true}) {
      const OpCost cost = MeasureAddSegment(
          kind, steady ? steady_params : zipf_params, segments);
      JsonRecord record;
      record.name = std::string(MinerKindToString(kind)) +
                    (steady ? "/steady" : "/zipf") + kernel_suffix;
      record.ns_per_op = cost.ns_per_op;
      record.allocs_per_op = cost.allocs_per_op;
      record.rss_bytes = CurrentRssBytes();
      std::printf("%-24s %14.1f %14.3f %12.1f\n", record.name.c_str(),
                  record.ns_per_op, record.allocs_per_op,
                  static_cast<double>(record.rss_bytes) / (1024.0 * 1024.0));
      records.push_back(record);
    }
  }
  // Closed-universe cyclic replay (see file comment): MeasureAddSegment
  // warms on the first half (3 cycles), measures the last 3.
  const std::vector<Segment> cyclic =
      BuildCyclicTrace(segments, /*pool_size=*/4000, /*cycles=*/6,
                       steady_params);
  for (MinerKind kind : kinds) {
    const OpCost cost = MeasureAddSegment(kind, steady_params, cyclic);
    JsonRecord record;
    record.name =
        std::string(MinerKindToString(kind)) + "/cycle" + kernel_suffix;
    record.ns_per_op = cost.ns_per_op;
    record.allocs_per_op = cost.allocs_per_op;
    record.rss_bytes = CurrentRssBytes();
    std::printf("%-24s %14.1f %14.3f %12.1f\n", record.name.c_str(),
                record.ns_per_op, record.allocs_per_op,
                static_cast<double>(record.rss_bytes) / (1024.0 * 1024.0));
    records.push_back(record);
  }
  // Shard-count allocation scaling (Issue 6 satellite): the open-universe
  // zipf trace replayed into S DiMine shard replicas. Arena-pooled postings
  // must keep allocs/op near-flat as S grows instead of re-paying every
  // posting's doubling chain per replica.
  std::printf("\n%-24s %14s %14s %12s\n", "sharded DiMine", "ns/op",
              "allocs/op", "rss(MB)");
  for (const uint32_t num_shards : {1u, 2u, 4u, 8u}) {
    const OpCost cost = MeasureShardedAddSegment(MinerKind::kDiMine,
                                                 zipf_params, segments,
                                                 num_shards);
    JsonRecord record;
    record.name = "DiMine/zipf/S" + std::to_string(num_shards) +
                  kernel_suffix;
    record.ns_per_op = cost.ns_per_op;
    record.allocs_per_op = cost.allocs_per_op;
    record.rss_bytes = CurrentRssBytes();
    record.AddExtra("num_shards", static_cast<double>(num_shards));
    std::printf("%-24s %14.1f %14.3f %12.1f\n", record.name.c_str(),
                record.ns_per_op, record.allocs_per_op,
                static_cast<double>(record.rss_bytes) / (1024.0 * 1024.0));
    records.push_back(record);
  }
  // Zero-copy router path (Issue 7 satellite): allocations and bytes per
  // delivery through a live-tracking ShardRouter. The fan-out grows with S
  // but a delivery stays a refcount bump, so both columns must hold
  // near-zero at every shard count.
  std::printf("\n%-24s %14s %14s %12s\n", "router path", "ns/op", "allocs/op",
              "bytes/op");
  for (const uint32_t num_shards : {2u, 4u, 8u}) {
    const RouterCost cost =
        MeasureRouterPath(segments, zipf_params.tau, num_shards);
    JsonRecord record;
    record.name = "router/zipf/S" + std::to_string(num_shards) + kernel_suffix;
    record.ns_per_op = cost.op.ns_per_op;
    record.allocs_per_op = cost.op.allocs_per_op;
    record.rss_bytes = CurrentRssBytes();
    record.AddExtra("num_shards", static_cast<double>(num_shards));
    record.AddExtra("bytes_per_op", cost.bytes_per_op);
    std::printf("%-24s %14.1f %14.3f %12.1f\n", record.name.c_str(),
                record.ns_per_op, record.allocs_per_op, cost.bytes_per_op);
    records.push_back(record);
  }
  // Telemetry overhead datapoint: per-segment publish sequence on vs.
  // telemetry compiled but unread, on the converged cyclic workload. The
  // acceptance bar is <= 5% — printed, not asserted (shared-host noise).
  std::printf("\n%-24s %14s %14s %12s\n", "telemetry", "ns/op", "allocs/op",
              "overhead%");
  for (MinerKind kind : kinds) {
    const OpCost off = MeasureWithTelemetry(kind, steady_params, cyclic,
                                            /*publish=*/false);
    const OpCost on = MeasureWithTelemetry(kind, steady_params, cyclic,
                                           /*publish=*/true);
    const double overhead_pct =
        off.ns_per_op > 0 ? (on.ns_per_op / off.ns_per_op - 1.0) * 100.0 : 0;
    JsonRecord record;
    record.name =
        std::string(MinerKindToString(kind)) + "/telemetry" + kernel_suffix;
    record.ns_per_op = on.ns_per_op;
    record.allocs_per_op = on.allocs_per_op;
    record.rss_bytes = CurrentRssBytes();
    record.AddExtra("baseline_ns_per_op", off.ns_per_op);
    record.AddExtra("overhead_pct", overhead_pct);
    std::printf("%-24s %14.1f %14.3f %+11.2f%%\n", record.name.c_str(),
                record.ns_per_op, record.allocs_per_op, overhead_pct);
    records.push_back(record);
  }
  // Flight-recorder overhead datapoint (DESIGN.md §2.5): the converged
  // cyclic workload with recording off (the macros' fast path — one relaxed
  // load + branch per span) vs. recording into the per-thread ring. The
  // acceptance bar is <= 10% with recording on — printed, not asserted
  // (shared-host noise). The <= 1% compiled-out leg comes from the CI
  // -DFCP_TRACE=OFF build of this binary, whose records carry
  // trace_compiled_in = 0 so the trajectory file keeps the legs apart.
  std::printf("\n%-24s %14s %14s %12s\n", "trace", "ns/op", "allocs/op",
              "overhead%");
  for (MinerKind kind : kinds) {
    trace::Reset();
    const OpCost off = MeasureAddSegment(kind, steady_params, cyclic);
    trace::Start(/*ring_kb=*/256);  // ring registers during the warm half
    const OpCost on = MeasureAddSegment(kind, steady_params, cyclic);
    trace::Stop();
    trace::Reset();
    const double overhead_pct =
        off.ns_per_op > 0 ? (on.ns_per_op / off.ns_per_op - 1.0) * 100.0 : 0;
    JsonRecord record;
    record.name =
        std::string(MinerKindToString(kind)) + "/trace" + kernel_suffix;
    record.ns_per_op = on.ns_per_op;
    record.allocs_per_op = on.allocs_per_op;
    record.rss_bytes = CurrentRssBytes();
    record.AddExtra("baseline_ns_per_op", off.ns_per_op);
    record.AddExtra("overhead_pct", overhead_pct);
    record.AddExtra("trace_compiled_in", trace::kCompiledIn ? 1 : 0);
    std::printf("%-24s %14.1f %14.3f %+11.2f%%\n", record.name.c_str(),
                record.ns_per_op, record.allocs_per_op, overhead_pct);
    records.push_back(record);
  }
  // Scrape-under-load datapoint (DESIGN.md §2.8): the converged cyclic
  // CooMine workload with the embedded ObsServer live. The wired leg must
  // hold the mining thread at exactly 0 allocs/op; the scraped leg's ns/op
  // overhead vs. the no-obs baseline has a <= 2% acceptance bar — printed,
  // not asserted (shared-host noise). Scrape-side allocations happen on the
  // server's poll thread and are reported per scrape.
  std::printf("\n%-24s %14s %14s %12s\n", "scrape", "ns/op", "allocs/op",
              "overhead%");
  {
    // Interleaved best-of-5: the three modes run back-to-back inside each
    // rep so they sample the same background load, and the min ns/op per
    // mode drops the reps a noisy neighbour stole (single shots minutes
    // apart confound scheduler noise with the ~1% effect under test).
    // Allocations are deterministic, so the max across reps is kept — any
    // rep that allocates on the mining thread must show.
    const ObsMode modes[] = {ObsMode::kOff, ObsMode::kWired,
                             ObsMode::kScraped};
    ScrapeCost best[3];
    for (int rep = 0; rep < 5; ++rep) {
      for (int m = 0; m < 3; ++m) {
        const ScrapeCost cost =
            MeasureUnderScrape(steady_params, cyclic, modes[m]);
        if (rep == 0 || cost.cpu_ns_per_op < best[m].cpu_ns_per_op) {
          best[m].mining.ns_per_op = cost.mining.ns_per_op;
          best[m].cpu_ns_per_op = cost.cpu_ns_per_op;
          best[m].scrapes = cost.scrapes;
        }
        best[m].mining.allocs_per_op = std::max(
            best[m].mining.allocs_per_op, cost.mining.allocs_per_op);
      }
    }
    const ScrapeCost& off = best[0];
    const ScrapeCost& wired = best[1];
    const ScrapeCost& scraped = best[2];
    // Overhead is on the mining thread's CPU time: wall time on a small
    // host measures the scheduler slicing the core between the miner and
    // the scraper, while CPU time is what the hot path itself pays —
    // including any contention the obs plane induces.
    auto pct = [&](const ScrapeCost& leg) {
      return off.cpu_ns_per_op > 0
                 ? (leg.cpu_ns_per_op / off.cpu_ns_per_op - 1.0) * 100.0
                 : 0;
    };
    std::printf("%-24s %14.1f %14.3f %12s\n",
                ("CooMine/obs-off" + kernel_suffix).c_str(),
                off.cpu_ns_per_op, off.mining.allocs_per_op, "--");
    std::printf("%-24s %14.1f %14.3f %+11.2f%%\n",
                ("CooMine/obs-wired" + kernel_suffix).c_str(),
                wired.cpu_ns_per_op, wired.mining.allocs_per_op, pct(wired));
    std::printf("%-24s %14.1f %14.3f %+11.2f%%  (%" PRIu64 " scrapes)\n",
                ("CooMine/obs-scraped" + kernel_suffix).c_str(),
                scraped.cpu_ns_per_op, wired.mining.allocs_per_op,
                pct(scraped), scraped.scrapes);
    JsonRecord record;
    record.name = "CooMine/scrape" + kernel_suffix;
    record.ns_per_op = scraped.cpu_ns_per_op;
    // The mining path's allocations: the wired leg's process-wide delta
    // (no scraper thread muddying the counter) — must be 0.
    record.allocs_per_op = wired.mining.allocs_per_op;
    record.rss_bytes = CurrentRssBytes();
    record.AddExtra("baseline_cpu_ns_per_op", off.cpu_ns_per_op);
    record.AddExtra("wired_cpu_ns_per_op", wired.cpu_ns_per_op);
    record.AddExtra("overhead_pct", pct(scraped));
    record.AddExtra("wall_ns_per_op", scraped.mining.ns_per_op);
    record.AddExtra("baseline_wall_ns_per_op", off.mining.ns_per_op);
    record.AddExtra("scrapes", static_cast<double>(scraped.scrapes));
    records.push_back(record);
  }
  // Sampling-profiler overhead datapoint (DESIGN.md §2.9): the converged
  // cyclic CooMine workload with the profiler disarmed (one relaxed load at
  // each wait point) vs. armed at 100 Hz (per-thread SIGPROF timer firing
  // into the mining loop). Unlike the legs above this one is ENFORCED: at
  // 100 samples/s a handler costing even microseconds is < 0.1% of the
  // thread's CPU time, so > 2% mining-thread CPU overhead means the sample
  // path regressed structurally, not that the host was busy. CPU time (not
  // wall) and interleaved best-of-5 keep neighbour noise out of the
  // comparison; the armed leg must also stay at the disarmed leg's
  // allocs/op — the signal handler and ring writes touch no allocator.
  std::printf("\n%-24s %14s %14s %12s\n", "profiler", "cpu-ns/op",
              "allocs/op", "overhead%");
  int exit_code = 0;
  {
    constexpr int kProfHz = 100;
    prof::ThreadScope prof_scope("bench-mine");
    struct ProfLeg {
      double cpu_ns_per_op = 0;
      double allocs_per_op = 0;
    };
    auto measure = [&](bool armed) {
      auto miner = MakeMiner(MinerKind::kCooMine, steady_params);
      const size_t warm = cyclic.size() / 2;
      std::vector<Fcp> sink;
      sink.reserve(1024);
      for (size_t i = 0; i < warm; ++i) {
        sink.clear();
        miner->AddSegment(cyclic[i], &sink);
      }
      // Arm after the warm half: the ring allocation (first arm only) and
      // timer syscalls stay outside the measured region.
      if (armed) prof::StartCpuProfiler(kProfHz);
      const uint64_t allocs_before = alloc_counter::allocations();
      const int64_t cpu_before = ThreadCpuNanos();
      for (size_t i = warm; i < cyclic.size(); ++i) {
        sink.clear();
        miner->AddSegment(cyclic[i], &sink);
      }
      const int64_t cpu_ns = ThreadCpuNanos() - cpu_before;
      const uint64_t allocs = alloc_counter::allocations() - allocs_before;
      if (armed) prof::StopCpuProfiler();
      const double ops = static_cast<double>(cyclic.size() - warm);
      ProfLeg leg;
      leg.cpu_ns_per_op = static_cast<double>(cpu_ns) / ops;
      leg.allocs_per_op = static_cast<double>(allocs) / ops;
      return leg;
    };
    ProfLeg off, armed;
    for (int rep = 0; rep < 5; ++rep) {
      const ProfLeg off_rep = measure(false);
      const ProfLeg armed_rep = measure(true);
      if (rep == 0 || off_rep.cpu_ns_per_op < off.cpu_ns_per_op) {
        off.cpu_ns_per_op = off_rep.cpu_ns_per_op;
      }
      if (rep == 0 || armed_rep.cpu_ns_per_op < armed.cpu_ns_per_op) {
        armed.cpu_ns_per_op = armed_rep.cpu_ns_per_op;
      }
      // Allocations are deterministic: keep the max so any rep that
      // allocated on the sample path must show.
      off.allocs_per_op = std::max(off.allocs_per_op, off_rep.allocs_per_op);
      armed.allocs_per_op =
          std::max(armed.allocs_per_op, armed_rep.allocs_per_op);
    }
    const double overhead_pct =
        off.cpu_ns_per_op > 0
            ? (armed.cpu_ns_per_op / off.cpu_ns_per_op - 1.0) * 100.0
            : 0;
    std::printf("%-24s %14.1f %14.3f %12s\n",
                ("CooMine/prof-off" + kernel_suffix).c_str(),
                off.cpu_ns_per_op, off.allocs_per_op, "--");
    std::printf("%-24s %14.1f %14.3f %+11.2f%%\n",
                ("CooMine/prof-armed" + kernel_suffix).c_str(),
                armed.cpu_ns_per_op, armed.allocs_per_op, overhead_pct);
    JsonRecord record;
    record.name = "CooMine/prof" + kernel_suffix;
    record.ns_per_op = armed.cpu_ns_per_op;
    record.allocs_per_op = armed.allocs_per_op;
    record.rss_bytes = CurrentRssBytes();
    record.AddExtra("baseline_cpu_ns_per_op", off.cpu_ns_per_op);
    record.AddExtra("overhead_pct", overhead_pct);
    record.AddExtra("hz", kProfHz);
    record.AddExtra("prof_compiled_in", prof::kCompiledIn ? 1 : 0);
    records.push_back(record);
    if (prof::kCompiledIn) {
      if (overhead_pct > 2.0) {
        std::fprintf(stderr,
                     "FAIL: armed profiler costs %+.2f%% mining-thread CPU "
                     "(budget: 2%%)\n",
                     overhead_pct);
        exit_code = 1;
      }
      if (armed.allocs_per_op > off.allocs_per_op + 1e-3) {
        std::fprintf(stderr,
                     "FAIL: armed profiler allocates on the sample path "
                     "(%.3f vs %.3f allocs/op)\n",
                     armed.allocs_per_op, off.allocs_per_op);
        exit_code = 1;
      }
    }
  }
  MaybeAppendBenchJson(flags, "bench_hotpath_alloc", label, records);
  return exit_code;
}

}  // namespace
}  // namespace fcp::bench

int main(int argc, char** argv) { return fcp::bench::Run(argc, argv); }
