// Reproduces Fig. 5(f): Seg-tree compression ratio (d1-d2)/d1 as a function
// of the data scale Ds, for the TR-like and Twitter-like workloads.
//
// d1 = objects stored across live segments; d2 = Seg-tree nodes. High overlap
// between a camera's consecutive segments compresses well; tweets (disjoint
// segments) do not.
//
// Flags: --quick, --scale=<f>, --csv

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "index/seg_tree.h"
#include "stream/stream_mux.h"
#include "util/table_printer.h"

namespace fcp::bench {
namespace {

void RunDataset(Dataset dataset, const BenchScale& scale,
                TablePrinter* table) {
  const MiningParams params = DefaultParams(dataset);
  const uint64_t max_events =
      scale.Events(dataset == Dataset::kTraffic ? 250000 : 250000 * 5);
  const std::vector<ObjectEvent> events =
      GenerateEvents(dataset, max_events, /*seed=*/42);

  SegTree tree;
  StreamMux mux(params.xi);
  std::vector<SegmentRef> scratch;
  Timestamp watermark = kMinTimestamp;
  Timestamp last_sweep = kMinTimestamp;

  const uint64_t step = events.size() / 5;
  uint64_t next_checkpoint = step;
  const uint64_t paper_step = 50000;  // Ds axis: VPRs (TR) / tweets (Twitter)
  uint64_t checkpoint_index = 1;
  for (size_t i = 0; i < events.size(); ++i) {
    scratch.clear();
    mux.Push(events[i], &scratch);
    for (const SegmentRef& ref : scratch) {
      const Segment& segment = *ref;
      tree.Insert(segment);
      watermark = std::max(watermark, segment.end_time());
      if (last_sweep == kMinTimestamp) last_sweep = watermark;
      if (watermark - last_sweep >= params.maintenance_interval) {
        tree.RemoveExpired(watermark, params.tau);
        last_sweep = watermark;
      }
    }
    if (i + 1 == next_checkpoint) {
      table->AddRow({std::string(DatasetName(dataset)),
                     std::to_string(checkpoint_index * paper_step),
                     TablePrinter::Num(tree.CompressionRatio(), 3),
                     std::to_string(tree.num_nodes()),
                     std::to_string(tree.total_objects())});
      next_checkpoint += step;
      ++checkpoint_index;
    }
  }
}

}  // namespace
}  // namespace fcp::bench

int main(int argc, char** argv) {
  fcp::Flags flags(argc, argv);
  const fcp::bench::BenchScale scale(flags);

  fcp::bench::PrintHeader(
      "Fig. 5(f): Seg-tree compression ratio vs Ds",
      "(stored objects - tree nodes) / stored objects over live segments;\n"
      "Ds column reports the paper-equivalent scale point.");
  fcp::TablePrinter table(
      {"dataset", "Ds(paper)", "compression", "nodes", "objects"});
  fcp::bench::RunDataset(fcp::bench::Dataset::kTraffic, scale, &table);
  fcp::bench::RunDataset(fcp::bench::Dataset::kTwitter, scale, &table);
  if (flags.GetBool("csv", false)) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  return 0;
}
