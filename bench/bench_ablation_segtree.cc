// Ablation study of the Seg-tree design choices called out in DESIGN.md:
//
//  1. DistanceBound pruning on/off — nodes visited and SLCP wall time.
//  2. Graft-on-delete vs root-attach — node count / compression after churn.
//  3. Lazy deletion vs eager per-segment sweeps — maintenance wall time.
//
// Flags: --quick, --scale=<f>

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/coomine.h"
#include "index/seg_tree.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace fcp::bench {
namespace {

// --- Ablation 1: DistanceBound pruning -------------------------------------
void AblateDistanceBound(const std::vector<Segment>& segments,
                         const MiningParams& params, TablePrinter* table) {
  for (bool use_bound : {true, false}) {
    SegTreeOptions options;
    options.use_distance_bound = use_bound;
    SegTree tree(options);
    // Index everything but the last 2000 segments; probe with those.
    const size_t probe_count = std::min<size_t>(2000, segments.size() / 4);
    const size_t indexed = segments.size() - probe_count;
    Timestamp watermark = kMinTimestamp;
    for (size_t i = 0; i < indexed; ++i) {
      tree.Insert(segments[i]);
      watermark = std::max(watermark, segments[i].end_time());
    }
    Stopwatch clock;
    size_t rows_total = 0;
    for (size_t i = indexed; i < segments.size(); ++i) {
      watermark = std::max(watermark, segments[i].end_time());
      rows_total +=
          tree.Slcp(segments[i], watermark, params.tau, nullptr).size();
    }
    table->AddRow({"distance_bound", use_bound ? "on" : "off",
                   TablePrinter::Num(clock.ElapsedMillis(), 1) + " ms",
                   std::to_string(tree.stats().distance_bound_visits) +
                       " nodes visited",
                   std::to_string(rows_total) + " LCP rows"});
  }
}

// --- Ablation 2: graft vs root-attach on deletion ---------------------------
void AblateGraft(const std::vector<Segment>& segments,
                 const MiningParams& base_params, TablePrinter* table) {
  // Tighten the windows so that expiry churn actually happens within the
  // trace (the figure benches use tau=30min, longer than a --quick trace).
  MiningParams params = base_params;
  params.tau = Minutes(5);
  params.maintenance_interval = Minutes(1);
  for (bool graft : {true, false}) {
    SegTreeOptions options;
    options.graft_on_delete = graft;
    SegTree tree(options);
    Timestamp watermark = kMinTimestamp;
    Timestamp last_sweep = kMinTimestamp;
    for (const Segment& segment : segments) {
      tree.Insert(segment);
      watermark = std::max(watermark, segment.end_time());
      if (last_sweep == kMinTimestamp) last_sweep = watermark;
      if (watermark - last_sweep >= params.maintenance_interval) {
        tree.RemoveExpired(watermark, params.tau);
        last_sweep = watermark;
      }
    }
    table->AddRow(
        {"delete_reattach", graft ? "graft" : "root-attach",
         TablePrinter::Num(tree.CompressionRatio(), 3) + " compression",
         std::to_string(tree.num_nodes()) + " nodes",
         std::to_string(tree.stats().subtrees_grafted) + " grafts / " +
             std::to_string(tree.stats().subtrees_reattached) +
             " root-attach"});
  }
}

// --- Ablation 3: lazy vs eager expiry ---------------------------------------
void AblateLazyDeletion(const std::vector<ObjectEvent>& events,
                        const MiningParams& base_params,
                        TablePrinter* table) {
  for (bool lazy : {true, false}) {
    MiningParams p = base_params;
    p.tau = Minutes(5);  // ensure expiry happens within the trace
    if (!lazy) p.maintenance_interval = 1;  // sweep on (almost) every segment
    CooMineOptions options;
    CooMine miner(p, options);
    std::vector<Fcp> sink;
    StreamMux mux(p.xi);
    std::vector<SegmentRef> scratch;
    Stopwatch clock;
    for (const ObjectEvent& event : events) {
      scratch.clear();
      mux.Push(event, &scratch);
      for (const SegmentRef& segment : scratch) {
        sink.clear();
        miner.AddSegment(*segment, &sink);
      }
    }
    table->AddRow(
        {"expiry", lazy ? "lazy (LD)" : "eager sweeps",
         TablePrinter::Num(clock.ElapsedMillis(), 1) + " ms total",
         TablePrinter::Num(
             static_cast<double>(miner.stats().maintenance_ns) / 1e6, 1) +
             " ms maintenance",
         std::to_string(miner.stats().maintenance_runs) + " sweeps"});
  }
}

}  // namespace
}  // namespace fcp::bench

int main(int argc, char** argv) {
  fcp::Flags flags(argc, argv);
  const fcp::bench::BenchScale scale(flags);

  fcp::bench::PrintHeader(
      "Ablation: Seg-tree design choices (TR workload)",
      "DistanceBound pruning, deletion re-attachment policy, lazy deletion.");

  const fcp::MiningParams params =
      fcp::bench::DefaultParams(fcp::bench::Dataset::kTraffic);
  const uint64_t n = scale.Events(100000);
  const std::vector<fcp::ObjectEvent> events =
      fcp::bench::GenerateEvents(fcp::bench::Dataset::kTraffic, n, 42);
  const std::vector<fcp::Segment> segments =
      fcp::bench::SegmentTrace(events, params.xi);

  fcp::TablePrinter table({"ablation", "variant", "metric1", "metric2",
                           "metric3"});
  fcp::bench::AblateDistanceBound(segments, params, &table);
  fcp::bench::AblateGraft(segments, params, &table);
  fcp::bench::AblateLazyDeletion(events, params, &table);
  table.Print(std::cout);
  return 0;
}
