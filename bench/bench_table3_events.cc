// Reproduces Tables 3-4: typical FCPs mined from the Twitter-like workload
// at a high support threshold (the paper uses theta=60), with the hot events
// they reveal.
//
// The real Tweets2011 events are unavailable; the generator plants synthetic
// hot events (keyword bursts across many user streams). The table lists the
// top mined keyword FCPs, their stream support, and the planted event each
// one reveals — the Table 3/4 layout.
//
// Flags: --tweets=N (default 120000), --theta=N (default 60), --quick

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>

#include "bench_util.h"
#include "core/mining_engine.h"
#include "datagen/twitter_gen.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  fcp::Flags flags(argc, argv);
  uint64_t tweets = static_cast<uint64_t>(flags.GetInt("tweets", 120000));
  if (flags.GetBool("quick", false)) tweets /= 4;

  fcp::bench::PrintHeader(
      "Tables 3-4: typical FCPs and the hot events they reveal (theta high)",
      "synthetic stand-in for the paper's Tweets2011 events; keyword sets\n"
      "bursting across many user streams surface as FCPs.");

  fcp::TwitterConfig config;
  config.num_users = 8000;
  config.vocab_size = 50000;
  config.total_tweets = tweets;
  config.num_events = 10;
  config.event_participants_min = 80;
  config.event_participants_max = 400;
  config.seed = 2011;
  const fcp::TwitterTrace trace = GenerateTwitter(config);

  fcp::MiningParams params = fcp::bench::DefaultParams(
      fcp::bench::Dataset::kTwitter);
  params.theta = static_cast<uint32_t>(flags.GetInt("theta", 60));
  params.min_pattern_size = 2;
  params.max_pattern_size = 4;

  fcp::MiningEngine engine(fcp::MinerKind::kCooMine, params);
  std::map<fcp::Pattern, size_t> support;
  auto absorb = [&](std::vector<fcp::Fcp> fcps) {
    for (const fcp::Fcp& fcp : fcps) {
      size_t& best = support[fcp.objects];
      best = std::max(best, fcp.streams.size());
    }
  };
  for (const fcp::ObjectEvent& event : trace.events) {
    absorb(engine.PushEvent(event));
  }
  absorb(engine.Flush());

  // Table 3: FCPs, stream counts, event labels.
  std::vector<std::pair<fcp::Pattern, size_t>> ranked(support.begin(),
                                                      support.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  fcp::TablePrinter table3({"FCP", "num_streams", "hot_event"});
  size_t event_hits = 0;
  for (const auto& [pattern, streams] : ranked) {
    std::string words;
    for (size_t i = 0; i < pattern.size(); ++i) {
      if (i) words += " ";
      words += trace.WordName(pattern[i]);
    }
    std::string label = "-";
    for (size_t e = 0; e < trace.planted_events.size(); ++e) {
      const fcp::EventPlan& plan = trace.planted_events[e];
      if (std::includes(plan.keywords.begin(), plan.keywords.end(),
                        pattern.begin(), pattern.end())) {
        label = "event" + std::to_string(e + 1);
        ++event_hits;
        break;
      }
    }
    table3.AddRow({words, std::to_string(streams), label});
    if (table3.num_rows() >= 20) break;
  }
  table3.Print(std::cout);

  // Table 4: the event legend.
  std::printf("\n");
  fcp::TablePrinter table4({"event", "meaning", "participants", "mined?"});
  for (size_t e = 0; e < trace.planted_events.size(); ++e) {
    const fcp::EventPlan& plan = trace.planted_events[e];
    table4.AddRow({"event" + std::to_string(e + 1), plan.name,
                   std::to_string(plan.num_participants),
                   support.contains(plan.keywords) ? "yes" : "no"});
  }
  table4.Print(std::cout);
  return 0;
}
