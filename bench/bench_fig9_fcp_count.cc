// Reproduces Fig. 9(a)/(b): number of distinct FCPs discovered as a function
// of the data scale Ds, per pattern size k.
//
//  - 9(a): TR, xi=60s, tau=30min, theta=3, k=2..5
//  - 9(b): Twitter, theta=10, k=2..4
//
// One pass per dataset: the collector's distinct-pattern counters are
// snapshotted at Ds checkpoints (counts are cumulative, exactly like the
// paper's "number of FCPs after mining Ds data").
//
// Flags: --quick, --scale=<f>, --csv

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/mining_engine.h"
#include "util/table_printer.h"

namespace fcp::bench {
namespace {

void RunDataset(const std::string& figure, Dataset dataset,
                uint64_t paper_unit, uint32_t max_k, const BenchScale& scale,
                TablePrinter* table) {
  MiningParams params = DefaultParams(dataset);
  params.min_pattern_size = 2;
  params.max_pattern_size = max_k;
  const uint64_t max_events = scale.Events(200000 * paper_unit);
  const std::vector<ObjectEvent> events =
      GenerateEvents(dataset, max_events, /*seed=*/42);

  MiningEngine engine(MinerKind::kCooMine, params);
  const uint64_t kCheckpoints = 5;
  const uint64_t step = events.size() / kCheckpoints;
  uint64_t next = step;
  uint64_t checkpoint = 1;
  for (size_t i = 0; i < events.size(); ++i) {
    engine.PushEvent(events[i]);
    if (i + 1 == next) {
      const auto& counts = engine.collector().distinct_patterns_by_size();
      auto get = [&](uint32_t k) -> uint64_t {
        auto it = counts.find(k);
        return it == counts.end() ? 0 : it->second;
      };
      std::vector<std::string> row = {
          figure, std::string(DatasetName(dataset)),
          std::to_string(checkpoint * 200000 / kCheckpoints)};
      for (uint32_t k = 2; k <= 5; ++k) {
        row.push_back(k <= max_k ? std::to_string(get(k)) : "-");
      }
      table->AddRow(std::move(row));
      next += step;
      ++checkpoint;
    }
  }
}

}  // namespace
}  // namespace fcp::bench

int main(int argc, char** argv) {
  fcp::Flags flags(argc, argv);
  const fcp::bench::BenchScale scale(flags);

  fcp::bench::PrintHeader(
      "Fig. 9(a)/(b): number of distinct FCPs vs Ds",
      "cumulative distinct patterns per size k; more data -> more FCPs,\n"
      "smaller k -> more FCPs. Ds column is the paper-equivalent point\n"
      "(TR: VPRs, Twitter: tweets).");
  fcp::TablePrinter table(
      {"figure", "dataset", "Ds", "k=2", "k=3", "k=4", "k=5"});
  fcp::bench::RunDataset("9(a)", fcp::bench::Dataset::kTraffic,
                         /*paper_unit=*/1, /*max_k=*/5, scale, &table);
  fcp::bench::RunDataset("9(b)", fcp::bench::Dataset::kTwitter,
                         /*paper_unit=*/5, /*max_k=*/4, scale, &table);
  if (flags.GetBool("csv", false)) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  return 0;
}
