// Reproduces Fig. 6(c)/(d): TOTAL cost (index maintenance + mining, ms) of
// CooMine, DIMine and MatrixMine per "one second of data" at arrival rates
// 1000..5000 events/s.
//
//  - 6(c): TR, Ds=100k VPRs, xi=60s (log-scale plot in the paper)
//  - 6(d): Twitter, Ds=200k tweets
//
// Flags: --quick, --scale=<f>, --csv

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "util/table_printer.h"

namespace fcp::bench {
namespace {

void RunDataset(const std::string& figure, Dataset dataset,
                uint64_t warm_events, const BenchScale& scale, bool csv) {
  const uint64_t warm = scale.Events(warm_events);
  const MiningParams params = DefaultParams(dataset);
  const std::vector<ObjectEvent> events =
      GenerateEvents(dataset, warm + 160000, /*seed=*/42);

  MinerDriver coo(MinerKind::kCooMine, params);
  MinerDriver di(MinerKind::kDiMine, params);
  MinerDriver matrix(MinerKind::kMatrixMine, params);
  const size_t warm_end = std::min<size_t>(warm, events.size());
  coo.PushEvents(events, 0, warm_end);
  di.PushEvents(events, 0, warm_end);
  matrix.PushEvents(events, 0, warm_end);

  TablePrinter table({"figure", "dataset", "rate/s", "coomine_ms",
                      "dimine_ms", "matrixmine_ms"});
  size_t ci = warm_end, di_i = warm_end, mi = warm_end;
  for (uint64_t rate = 1000; rate <= 5000; rate += 1000) {
    const CostSample c = coo.MeasureRate(events, &ci, rate);
    const CostSample d = di.MeasureRate(events, &di_i, rate);
    const CostSample m = matrix.MeasureRate(events, &mi, rate);
    table.AddRow({figure, std::string(DatasetName(dataset)),
                  std::to_string(rate), TablePrinter::Num(c.total_ms(), 2),
                  TablePrinter::Num(d.total_ms(), 2),
                  TablePrinter::Num(m.total_ms(), 2)});
  }
  if (csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace fcp::bench

int main(int argc, char** argv) {
  fcp::Flags flags(argc, argv);
  const fcp::bench::BenchScale scale(flags);
  const bool csv = flags.GetBool("csv", false);

  fcp::bench::PrintHeader(
      "Fig. 6(c)/(d): total cost (maintenance + mining) vs arrival rate",
      "CooMine should win overall on both datasets; MatrixMine should lose\n"
      "dramatically (the paper plots 6(c) on a log axis).");
  fcp::bench::RunDataset("6(c)", fcp::bench::Dataset::kTraffic, 100000, scale,
                         csv);
  fcp::bench::RunDataset("6(d)", fcp::bench::Dataset::kTwitter, 200000 * 5,
                         scale, csv);
  return 0;
}
