#!/usr/bin/env python3
"""Bench regression gate: compare a fresh bench JSON against a committed
BENCH_*.json trajectory baseline and fail CI on regression.

Usage:
    ci/bench_gate.py BASELINE.json FRESH.json [options]

Both files use the repo's bench trajectory format: a JSON array of
{"bench", "label", "records": [...]} groups, each record carrying at least
{"name", "ns_per_op", "allocs_per_op"}. The baseline for each record name is
its LATEST occurrence across the baseline file (the trajectory appends a
group per run, so the last group with that name is the current expectation).

Per-metric tolerances, chosen for what each metric measures:

  allocs_per_op  STRICT  fail if fresh > max(base * alloc_ratio,
                                             base + alloc_slack).
                         Allocation counts are deterministic per workload —
                         a real increase is a hot-path regression, not
                         noise. The additive slack keeps near-zero baselines
                         (the zero-alloc legs) from failing on a 0.001 blip
                         while still catching the first real allocation
                         (+1/op trips 0 + 0.5).

  ns_per_op      LOOSE   fail if fresh > base * ns_ratio.
                         Wall-time baselines were recorded on different
                         hardware than CI runners; the ratio only catches
                         step-function regressions (an O(n) loop going
                         O(n^2), a lock landing on the hot path), not
                         percent-level drift. Tighten with --ns-ratio when
                         baseline and runner match.

  rss_bytes      IGNORED resident set size depends on allocator, kernel and
                         machine; the memory benches track it deliberately.

Records present only in the fresh run (new benches) or only in the baseline
(benches the fresh invocation skipped, e.g. --quick runs) are reported and
skipped — a gate must not force every CI leg to run every workload.

Exit codes: 0 all gated metrics within tolerance, 1 regression, 2 usage or
unreadable/malformed input.
"""

import argparse
import json
import sys


def load_latest_records(path):
    """name -> record, keeping the last occurrence across all groups."""
    try:
        with open(path) as f:
            groups = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(groups, list):
        print(f"bench_gate: {path}: expected a JSON array of bench groups",
              file=sys.stderr)
        sys.exit(2)
    latest = {}
    for group in groups:
        for record in group.get("records", []):
            name = record.get("name")
            if name:
                latest[name] = record
    return latest


def main():
    parser = argparse.ArgumentParser(
        description="fail on bench regression vs a BENCH_*.json baseline")
    parser.add_argument("baseline", help="committed BENCH_*.json trajectory")
    parser.add_argument("fresh", help="bench JSON produced by this run")
    parser.add_argument("--ns-ratio", type=float, default=2.5,
                        help="ns/op failure ratio vs baseline (default 2.5: "
                             "cross-machine gate for step-function blowups)")
    parser.add_argument("--alloc-ratio", type=float, default=1.1,
                        help="allocs/op failure ratio (default 1.1)")
    parser.add_argument("--alloc-slack", type=float, default=0.5,
                        help="allocs/op additive slack for near-zero "
                             "baselines (default 0.5)")
    args = parser.parse_args()

    baseline = load_latest_records(args.baseline)
    fresh = load_latest_records(args.fresh)
    if not fresh:
        print("bench_gate: fresh run produced no records", file=sys.stderr)
        return 2

    failures = []
    compared = 0
    print(f"{'case':<28} {'metric':<12} {'baseline':>12} {'fresh':>12} "
          f"{'limit':>12}  verdict")
    for name in sorted(fresh):
        if name not in baseline:
            print(f"{name:<28} {'-':<12} {'-':>12} {'-':>12} {'-':>12}  "
                  f"skip (no baseline)")
            continue
        base, new = baseline[name], fresh[name]
        checks = []
        if "allocs_per_op" in base and "allocs_per_op" in new:
            b, n = base["allocs_per_op"], new["allocs_per_op"]
            limit = max(b * args.alloc_ratio, b + args.alloc_slack)
            checks.append(("allocs/op", b, n, limit))
        if "ns_per_op" in base and "ns_per_op" in new:
            b, n = base["ns_per_op"], new["ns_per_op"]
            checks.append(("ns/op", b, n, b * args.ns_ratio))
        for metric, b, n, limit in checks:
            compared += 1
            ok = n <= limit
            print(f"{name:<28} {metric:<12} {b:>12.3f} {n:>12.3f} "
                  f"{limit:>12.3f}  {'ok' if ok else 'REGRESSION'}")
            if not ok:
                failures.append((name, metric, b, n, limit))
    for name in sorted(set(baseline) - set(fresh)):
        print(f"{name:<28} {'-':<12} {'-':>12} {'-':>12} {'-':>12}  "
              f"skip (not in fresh run)")

    if compared == 0:
        print("bench_gate: no overlapping records to compare",
              file=sys.stderr)
        return 2
    if failures:
        print(f"\nbench_gate: {len(failures)} regression(s):",
              file=sys.stderr)
        for name, metric, b, n, limit in failures:
            print(f"  {name} {metric}: {n:.3f} exceeds limit {limit:.3f} "
                  f"(baseline {b:.3f})", file=sys.stderr)
        return 1
    print(f"\nbench_gate: {compared} metric(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
