// Bridges the miners' plain-counter MinerStats/MinerIntrospection into the
// atomic telemetry registry.
//
// Miners are single-threaded by contract, so their stats structs are plain
// uint64 fields — racy to read from a reporter thread. The bridge keeps the
// miner unchanged: the thread that *owns* the miner calls PublishDelta /
// PublishIntrospection after each segment (or batch), pushing the increment
// since the last publish into relaxed-atomic registry counters. The reporter
// thread then only ever reads atomics. Publishing is itself allocation-free
// and wait-free: one fetch_add per counter, one store per gauge.

#ifndef FCP_CORE_ENGINE_METRICS_H_
#define FCP_CORE_ENGINE_METRICS_H_

#include <string>

#include "core/miner.h"
#include "telemetry/registry.h"

namespace fcp {

/// Registry handles for one miner's counters, optionally labeled (sharded
/// engines register one set per shard with `{shard="s"}`).
struct MinerMetrics {
  telemetry::Counter* segments_mined = nullptr;
  telemetry::Counter* fcps_emitted = nullptr;
  telemetry::Counter* candidates_checked = nullptr;
  telemetry::Counter* candidates_pruned = nullptr;
  telemetry::Counter* slcp_probes = nullptr;
  telemetry::Counter* lcp_rows = nullptr;
  telemetry::Counter* maintenance_runs = nullptr;
  telemetry::Counter* segments_expired = nullptr;
  telemetry::Counter* mining_ns = nullptr;
  telemetry::Counter* maintenance_ns = nullptr;

  telemetry::Gauge* live_segments = nullptr;
  telemetry::Gauge* index_nodes = nullptr;
  telemetry::Gauge* index_entries = nullptr;
  telemetry::Gauge* index_bytes = nullptr;
  telemetry::Gauge* arena_bytes = nullptr;
  /// CooMine compression ratio scaled by 1000 (gauges are integral).
  telemetry::Gauge* compression_ratio_milli = nullptr;

  /// Registers (or re-binds) the metric set in `registry`. `labels` is empty
  /// or a canonical Prometheus label block without braces (`shard="2"`).
  /// Allocates; call once at construction time.
  static MinerMetrics Register(telemetry::MetricRegistry* registry,
                               const std::string& labels);

  /// Publishes the increment `current - *last` into the counters and updates
  /// *last. `last` must start zero-initialized and be reused across calls.
  void PublishDelta(const MinerStats& current, MinerStats* last) const;

  /// Publishes the current index-structure view into the gauges.
  void PublishIntrospection(const MinerIntrospection& view) const;
};

/// Registers the process identity metrics every engine exports
/// (DESIGN.md §2.8): `fcp_build_info{version=...,kernel=...,trace=...} = 1`
/// — the standard Prometheus idiom of a constant-1 gauge whose labels carry
/// the build facts (version string, active kernel dispatch level, whether
/// the flight recorder is compiled in) — and `fcp_uptime_seconds`, whose
/// gauge is returned so the caller can refresh it on snapshot/scrape.
/// Idempotent per registry (re-registration rebinds the same metrics).
telemetry::Gauge* RegisterBuildInfo(telemetry::MetricRegistry* registry);

}  // namespace fcp

#endif  // FCP_CORE_ENGINE_METRICS_H_
