#include "core/matrixmine.h"

#include <algorithm>

#include "common/check.h"
#include "telemetry/trace.h"
#include "util/intersect.h"
#include "util/stopwatch.h"

namespace fcp {

MatrixMine::MatrixMine(const MiningParams& params, const ShardSpec& shard)
    : params_(params), shard_(shard) {
  FCP_CHECK(params.Validate().ok());
  FCP_CHECK(shard.count >= 1 && shard.index < shard.count);
}

void MatrixMine::AddSegment(const Segment& segment, std::vector<Fcp>* out) {
  // Monotonic watermark anchor; see CooMine::AddSegment.
  watermark_ = std::max(watermark_, segment.end_time());
  const Timestamp now = watermark_;

  // --- Maintenance: O(d^2) pair insertion + periodic full sweep. ----------
  Stopwatch maint_timer;
  {
    FCP_TRACE_SPAN("matrixmine/maintenance");
    index_.Insert(segment);
    if (last_sweep_ == kMinTimestamp) {
      last_sweep_ = now;
    } else if (now - last_sweep_ >= params_.maintenance_interval) {
      stats_.segments_expired += index_.RemoveExpired(now, params_.tau);
      ++stats_.maintenance_runs;
      last_sweep_ = now;
    }
  }
  stats_.maintenance_ns += maint_timer.ElapsedNanos();

  // --- Mining. -------------------------------------------------------------
  Stopwatch mine_timer;
  {
    FCP_TRACE_SPAN("matrixmine/mine");
    Mine(segment, out);
  }
  stats_.mining_ns += mine_timer.ElapsedNanos();

  ++stats_.segments_processed;
}

void MatrixMine::AddSegmentIndexOnly(const Segment& segment) {
  // Migration backfill: index exactly as AddSegment's maintenance phase
  // would (MatrixIndex::Insert keeps cells ascending when the backfilled id
  // is older than existing entries), with the mining pass skipped.
  watermark_ = std::max(watermark_, segment.end_time());
  const Timestamp now = watermark_;
  Stopwatch maint_timer;
  {
    FCP_TRACE_SPAN("matrixmine/index_backfill");
    index_.Insert(segment);
    if (last_sweep_ == kMinTimestamp) {
      last_sweep_ = now;
    } else if (now - last_sweep_ >= params_.maintenance_interval) {
      stats_.segments_expired += index_.RemoveExpired(now, params_.tau);
      ++stats_.maintenance_runs;
      last_sweep_ = now;
    }
  }
  stats_.maintenance_ns += maint_timer.ElapsedNanos();
  ++stats_.segments_indexed_only;
}

void MatrixMine::ForceMaintenance(Timestamp now) {
  Stopwatch maint_timer;
  stats_.segments_expired += index_.RemoveExpired(now, params_.tau);
  ++stats_.maintenance_runs;
  last_sweep_ = now;
  // Release pathological scratch high-water marks at the maintenance
  // boundary only (see ShrinkToFitIfOversized): steady workloads never trip
  // it, so the mining path stays allocation-free.
  ShrinkToFitIfOversized(&scratch_.level_supp);
  ShrinkToFitIfOversized(&scratch_.next_supp);
  ShrinkToFitIfOversized(&scratch_.cand_supp);
  ShrinkToFitIfOversized(&scratch_.pair_supp);
  stats_.maintenance_ns += maint_timer.ElapsedNanos();
}

size_t MatrixMine::MemoryUsage() const { return index_.MemoryUsage(); }

MinerIntrospection MatrixMine::Introspect() const {
  MinerIntrospection view;
  view.live_segments = index_.num_segments();
  view.index_nodes = index_.num_cells();
  view.index_entries = index_.total_entries();
  view.index_bytes = index_.MemoryUsage();
  return view;
}

void MatrixMine::Mine(const Segment& segment, std::vector<Fcp>* out) {
  const Timestamp now = watermark_;
  MiningScratch& s = scratch_;

  // Distinct probe objects, capped — the construction-time cache, same
  // result as DistinctObjectsCapped, copied into scratch.
  const std::vector<ObjectId>& distinct = segment.distinct_objects();
  s.objects.assign(distinct.begin(), distinct.end());
  if (params_.max_segment_objects > 0 &&
      s.objects.size() > params_.max_segment_objects) {
    s.objects.resize(params_.max_segment_objects);
  }
  if (s.objects.empty()) return;
  const size_t num_objects = s.objects.size();

  // Shard ownership of each probe object (all true for the serial shard).
  s.owned.resize(num_objects);
  bool any_owned = false;
  for (size_t oi = 0; oi < num_objects; ++oi) {
    s.owned[oi] = shard_.Owns(s.objects[oi]) ? 1 : 0;
    any_owned |= s.owned[oi] != 0;
  }
  if (!any_owned) return;  // no owned pattern can trigger here
  stats_.slcp_probes += num_objects;

  // Valid supporters per probe object from the diagonal cells (ascending
  // id; includes the probe segment, indexed just before mining).
  if (s.valid.size() < num_objects) s.valid.resize(num_objects);
  for (size_t oi = 0; oi < num_objects; ++oi) {
    index_.ValidSegmentsInto(s.objects[oi], s.objects[oi], now, params_.tau,
                             &s.valid[oi]);
  }

  // See DiMine::Mine — the evaluate/emit pair is identical.
  auto evaluate = [&](const SegmentId* supp, size_t n) -> bool {
    if (n < params_.theta) return false;
    s.occurrences.clear();
    s.streams.clear();
    for (size_t i = 0; i < n; ++i) {
      const SegmentInfo* info = index_.registry().Find(supp[i]);
      FCP_DCHECK(info != nullptr);
      s.occurrences.push_back(Occurrence{info->stream, info->start, info->end});
      s.streams.push_back(info->stream);
    }
    std::sort(s.streams.begin(), s.streams.end());
    s.streams.erase(std::unique(s.streams.begin(), s.streams.end()),
                    s.streams.end());
    return s.streams.size() >= params_.theta;
  };

  auto emit = [&](const uint32_t* idx, size_t size) {
    Fcp fcp;
    fcp.objects.reserve(size);
    for (size_t i = 0; i < size; ++i) fcp.objects.push_back(s.objects[idx[i]]);
    fcp.streams.assign(s.streams.begin(), s.streams.end());
    fcp.trigger = segment.id();
    fcp.window_start = kMaxTimestamp;
    fcp.window_end = kMinTimestamp;
    for (const Occurrence& occ : s.occurrences) {
      fcp.window_start = std::min(fcp.window_start, occ.start);
      fcp.window_end = std::max(fcp.window_end, occ.end);
    }
    out->push_back(std::move(fcp));
    ++stats_.fcps_emitted;
  };

  // Level 1: diagonal cells. Non-owned singletons stay in the level store
  // as join partners; only owned ones are emitted.
  s.level_idx.clear();
  s.level_supp.clear();
  s.level_off.assign(1, 0);
  for (uint32_t oi = 0; oi < num_objects; ++oi) {
    ++stats_.candidates_checked;
    if (!evaluate(s.valid[oi].data(), s.valid[oi].size())) {
      ++stats_.candidates_pruned;
      continue;
    }
    s.level_idx.push_back(oi);
    s.level_supp.insert(s.level_supp.end(), s.valid[oi].begin(),
                        s.valid[oi].end());
    s.level_off.push_back(s.level_supp.size());
    if (params_.min_pattern_size <= 1 && s.owned[oi]) emit(&oi, 1);
  }

  // Level-wise Apriori over the flat level store. Size-2 supporters come
  // straight from the pair cell; size >= 3 intersects the parent supporters
  // with the (first, last) pair cell — a segment holding the parent and that
  // pair holds every object. Pair cells of hot object pairs dwarf the parent
  // supporter list; galloping keeps the intersection near the small side.
  s.subset.clear();
  uint32_t level = 1;
  while (!s.level_idx.empty() &&
         (params_.max_pattern_size == 0 || level < params_.max_pattern_size)) {
    const size_t k = level;  // current pattern size
    const size_t level_count = s.level_idx.size() / k;
    ++level;
    s.next_idx.clear();
    s.next_supp.clear();
    s.next_off.assign(1, 0);

    // See CooMine::MineFromLcps for the sharded drop == 0 skip rationale.
    auto all_subsets_frequent = [&](const uint32_t* prefix, uint32_t last) {
      s.subset.resize(k);
      for (size_t drop = 0; drop + 2 < k + 1; ++drop) {
        if (drop == 0 && k >= 2 && !s.owned[prefix[1]]) continue;
        size_t w = 0;
        for (size_t i = 0; i < k; ++i) {
          if (i != drop) s.subset[w++] = prefix[i];
        }
        s.subset[w] = last;
        size_t lo = 0, hi = level_count;
        bool found = false;
        while (lo < hi) {
          const size_t mid = (lo + hi) / 2;
          const uint32_t* row = s.level_idx.data() + mid * k;
          if (std::lexicographical_compare(row, row + k, s.subset.data(),
                                           s.subset.data() + k)) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }
        if (lo < level_count) {
          const uint32_t* row = s.level_idx.data() + lo * k;
          found = std::equal(row, row + k, s.subset.data());
        }
        if (!found) return false;
      }
      return true;
    };

    for (size_t i = 0; i < level_count; ++i) {
      const uint32_t* pi = s.level_idx.data() + i * k;
      // Only extend owned minima (see DiMine::Mine).
      if (k == 1 && !s.owned[pi[0]]) continue;
      for (size_t j = i + 1; j < level_count; ++j) {
        const uint32_t* pj = s.level_idx.data() + j * k;
        if (!std::equal(pi, pi + k - 1, pj)) break;
        const uint32_t last = pj[k - 1];
        if (!all_subsets_frequent(pi, last)) {
          ++stats_.candidates_pruned;
          continue;
        }
        ++stats_.candidates_checked;
        if (k == 1) {
          // Straight from the pair cell.
          index_.ValidSegmentsInto(s.objects[pi[0]], s.objects[last], now,
                                   params_.tau, &s.cand_supp);
        } else {
          index_.ValidSegmentsInto(s.objects[pi[0]], s.objects[last], now,
                                   params_.tau, &s.pair_supp);
          const SegmentId* parent = s.level_supp.data() + s.level_off[i];
          const size_t parent_n = s.level_off[i + 1] - s.level_off[i];
          IntersectSorted(parent, parent_n, s.pair_supp.data(),
                          s.pair_supp.size(), &s.cand_supp);
        }
        if (!evaluate(s.cand_supp.data(), s.cand_supp.size())) {
          ++stats_.candidates_pruned;
          continue;
        }
        s.next_idx.insert(s.next_idx.end(), pi, pi + k);
        s.next_idx.push_back(last);
        s.next_supp.insert(s.next_supp.end(), s.cand_supp.begin(),
                           s.cand_supp.end());
        s.next_off.push_back(s.next_supp.size());
        if (level >= params_.min_pattern_size) {
          emit(s.next_idx.data() + s.next_idx.size() - (k + 1), k + 1);
        }
      }
    }
    std::swap(s.level_idx, s.next_idx);
    std::swap(s.level_supp, s.next_supp);
    std::swap(s.level_off, s.next_off);
  }
}

}  // namespace fcp
