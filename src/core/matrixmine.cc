#include "core/matrixmine.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"
#include "common/hash.h"
#include "core/apriori.h"
#include "util/intersect.h"
#include "util/stopwatch.h"

namespace fcp {

MatrixMine::MatrixMine(const MiningParams& params) : params_(params) {
  FCP_CHECK(params.Validate().ok());
}

void MatrixMine::AddSegment(const Segment& segment, std::vector<Fcp>* out) {
  // Monotonic watermark anchor; see CooMine::AddSegment.
  watermark_ = std::max(watermark_, segment.end_time());
  const Timestamp now = watermark_;

  // --- Maintenance: O(d^2) pair insertion + periodic full sweep. ----------
  Stopwatch maint_timer;
  index_.Insert(segment);
  if (last_sweep_ == kMinTimestamp) {
    last_sweep_ = now;
  } else if (now - last_sweep_ >= params_.maintenance_interval) {
    stats_.segments_expired += index_.RemoveExpired(now, params_.tau);
    ++stats_.maintenance_runs;
    last_sweep_ = now;
  }
  stats_.maintenance_ns += maint_timer.ElapsedNanos();

  // --- Mining. -------------------------------------------------------------
  Stopwatch mine_timer;
  Mine(segment, out);
  stats_.mining_ns += mine_timer.ElapsedNanos();

  ++stats_.segments_processed;
}

void MatrixMine::ForceMaintenance(Timestamp now) {
  Stopwatch maint_timer;
  stats_.segments_expired += index_.RemoveExpired(now, params_.tau);
  ++stats_.maintenance_runs;
  last_sweep_ = now;
  stats_.maintenance_ns += maint_timer.ElapsedNanos();
}

size_t MatrixMine::MemoryUsage() const { return index_.MemoryUsage(); }

void MatrixMine::Mine(const Segment& segment, std::vector<Fcp>* out) {
  const Timestamp now = watermark_;
  const std::vector<ObjectId> objects =
      DistinctObjectsCapped(segment, params_.max_segment_objects);
  if (objects.empty()) return;

  auto occurrences_of = [&](const std::vector<SegmentId>& supporters) {
    std::vector<Occurrence> occurrences;
    occurrences.reserve(supporters.size());
    for (SegmentId id : supporters) {
      const SegmentInfo* info = index_.registry().Find(id);
      FCP_DCHECK(info != nullptr);
      occurrences.push_back(Occurrence{info->stream, info->start, info->end});
    }
    return occurrences;
  };

  using SupportMap =
      std::unordered_map<Pattern, std::vector<SegmentId>, IdVectorHash>;
  SupportMap supports;

  // Level 1: diagonal cells.
  std::vector<Pattern> frequent;
  Pattern singleton(1);
  for (ObjectId o : objects) {
    singleton[0] = o;
    ++stats_.candidates_checked;
    std::vector<SegmentId> supporters =
        index_.ValidSegments(o, o, now, params_.tau);
    auto fcp = MakeFcpIfFrequent(singleton, occurrences_of(supporters),
                                 params_.theta, segment.id());
    if (!fcp.has_value()) continue;
    frequent.push_back(singleton);
    supports.emplace(singleton, std::move(supporters));
    if (1 >= params_.min_pattern_size) {
      out->push_back(*std::move(fcp));
      ++stats_.fcps_emitted;
    }
  }

  uint32_t level = 1;
  while (!frequent.empty() &&
         (params_.max_pattern_size == 0 || level < params_.max_pattern_size)) {
    const std::vector<Pattern> candidates = GenerateCandidates(frequent);
    ++level;
    std::vector<Pattern> next;
    SupportMap next_supports;
    for (const Pattern& candidate : candidates) {
      ++stats_.candidates_checked;
      std::vector<SegmentId> supporters;
      if (level == 2) {
        // Straight from the pair cell.
        supporters = index_.ValidSegments(candidate[0], candidate[1], now,
                                          params_.tau);
      } else {
        // Parent supporters intersected with the (first, last) pair cell: a
        // segment holding the parent and that pair holds every object.
        Pattern parent(candidate.begin(), candidate.end() - 1);
        auto parent_it = supports.find(parent);
        FCP_DCHECK(parent_it != supports.end());
        const std::vector<SegmentId> pair_cell = index_.ValidSegments(
            candidate.front(), candidate.back(), now, params_.tau);
        // Pair cells of hot object pairs dwarf the parent supporter list;
        // galloping keeps the intersection near the small side's size.
        IntersectSorted(parent_it->second, pair_cell, &supporters);
      }
      auto fcp = MakeFcpIfFrequent(candidate, occurrences_of(supporters),
                                   params_.theta, segment.id());
      if (!fcp.has_value()) continue;
      next.push_back(candidate);
      next_supports.emplace(candidate, std::move(supporters));
      if (level >= params_.min_pattern_size) {
        out->push_back(*std::move(fcp));
        ++stats_.fcps_emitted;
      }
    }
    frequent = std::move(next);
    supports = std::move(next_supports);
  }
}

}  // namespace fcp
