#include "core/dimine.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"
#include "common/hash.h"
#include "core/apriori.h"
#include "util/intersect.h"
#include "util/stopwatch.h"

namespace fcp {

DiMine::DiMine(const MiningParams& params) : params_(params) {
  FCP_CHECK(params.Validate().ok());
}

void DiMine::AddSegment(const Segment& segment, std::vector<Fcp>* out) {
  // Monotonic watermark anchor; see CooMine::AddSegment.
  watermark_ = std::max(watermark_, segment.end_time());
  const Timestamp now = watermark_;

  // --- Maintenance: index the new segment (the paper's step (1) updates
  // the DI-Index before verification), plus the periodic full sweep. -------
  Stopwatch maint_timer;
  index_.Insert(segment);
  if (last_sweep_ == kMinTimestamp) {
    last_sweep_ = now;
  } else if (now - last_sweep_ >= params_.maintenance_interval) {
    stats_.segments_expired += index_.RemoveExpired(now, params_.tau);
    ++stats_.maintenance_runs;
    last_sweep_ = now;
  }
  stats_.maintenance_ns += maint_timer.ElapsedNanos();

  // --- Mining: Apriori over posting-list intersections. -------------------
  Stopwatch mine_timer;
  Mine(segment, out);
  stats_.mining_ns += mine_timer.ElapsedNanos();

  ++stats_.segments_processed;
}

void DiMine::ForceMaintenance(Timestamp now) {
  Stopwatch maint_timer;
  stats_.segments_expired += index_.RemoveExpired(now, params_.tau);
  ++stats_.maintenance_runs;
  last_sweep_ = now;
  stats_.maintenance_ns += maint_timer.ElapsedNanos();
}

size_t DiMine::MemoryUsage() const { return index_.MemoryUsage(); }

void DiMine::Mine(const Segment& segment, std::vector<Fcp>* out) {
  const Timestamp now = watermark_;
  const std::vector<ObjectId> objects =
      DistinctObjectsCapped(segment, params_.max_segment_objects);
  if (objects.empty()) return;

  // Valid supporters per object (ascending id; includes the new segment).
  std::unordered_map<ObjectId, std::vector<SegmentId>> valid;
  for (ObjectId o : objects) {
    valid.emplace(o, index_.ValidSegments(o, now, params_.tau));
  }

  auto occurrences_of = [&](const std::vector<SegmentId>& supporters) {
    std::vector<Occurrence> occurrences;
    occurrences.reserve(supporters.size());
    for (SegmentId id : supporters) {
      const SegmentInfo* info = index_.registry().Find(id);
      FCP_DCHECK(info != nullptr);
      occurrences.push_back(Occurrence{info->stream, info->start, info->end});
    }
    return occurrences;
  };

  // Supporter id lists of the current frequent level, keyed by pattern, so
  // the next level intersects one parent list with one posting list instead
  // of k lists.
  using SupportMap =
      std::unordered_map<Pattern, std::vector<SegmentId>, IdVectorHash>;
  SupportMap supports;

  std::vector<Pattern> frequent;
  Pattern singleton(1);
  for (ObjectId o : objects) {
    singleton[0] = o;
    ++stats_.candidates_checked;
    const std::vector<SegmentId>& supporters = valid.at(o);
    auto fcp = MakeFcpIfFrequent(singleton, occurrences_of(supporters),
                                 params_.theta, segment.id());
    if (!fcp.has_value()) continue;
    frequent.push_back(singleton);
    supports.emplace(singleton, supporters);
    if (1 >= params_.min_pattern_size) {
      out->push_back(*std::move(fcp));
      ++stats_.fcps_emitted;
    }
  }

  uint32_t level = 1;
  while (!frequent.empty() &&
         (params_.max_pattern_size == 0 || level < params_.max_pattern_size)) {
    const std::vector<Pattern> candidates = GenerateCandidates(frequent);
    ++level;
    std::vector<Pattern> next;
    SupportMap next_supports;
    for (const Pattern& candidate : candidates) {
      ++stats_.candidates_checked;
      Pattern parent(candidate.begin(), candidate.end() - 1);
      auto parent_it = supports.find(parent);
      FCP_DCHECK(parent_it != supports.end());
      const std::vector<SegmentId>& last_posting = valid.at(candidate.back());
      // Zipf-skewed posting lists make the parent/posting size ratio large;
      // galloping turns the intersection into O(small * log(large)).
      std::vector<SegmentId> supporters;
      IntersectSorted(parent_it->second, last_posting, &supporters);
      auto fcp = MakeFcpIfFrequent(candidate, occurrences_of(supporters),
                                   params_.theta, segment.id());
      if (!fcp.has_value()) continue;
      next.push_back(candidate);
      next_supports.emplace(candidate, std::move(supporters));
      if (level >= params_.min_pattern_size) {
        out->push_back(*std::move(fcp));
        ++stats_.fcps_emitted;
      }
    }
    frequent = std::move(next);
    supports = std::move(next_supports);
  }
}

}  // namespace fcp
