#include "core/mining_engine.h"

#include "common/check.h"
#include "core/slow_op.h"
#include "telemetry/trace.h"
#include "util/stopwatch.h"

namespace fcp {

MiningEngine::MiningEngine(MinerKind kind, const MiningParams& params,
                           EngineOptions options)
    : params_(params),
      mux_(params.xi),
      miner_(MakeMiner(kind, params)),
      collector_(options.suppression_window),
      publish_(options.publish_metrics) {
  FCP_CHECK(params.Validate().ok());
  if (options.metrics != nullptr) {
    registry_ = options.metrics;
  } else {
    owned_registry_ = std::make_unique<telemetry::MetricRegistry>();
    registry_ = owned_registry_.get();
  }
  miner_metrics_ = MinerMetrics::Register(registry_, "");
  events_ingested_ = registry_->GetCounter("fcp_events_ingested_total");
  segments_completed_metric_ =
      registry_->GetCounter("fcp_segments_completed_total");
  fcps_accepted_ = registry_->GetCounter("fcp_fcps_accepted_total");
  mine_latency_us_ = registry_->GetHistogram("fcp_segment_mine_latency_us");
  pool_live_refs_ = registry_->GetGauge("fcp_segment_pool_live_refs");
  pool_hits_ = registry_->GetGauge("fcp_segment_pool_hits_total");
  pool_misses_ = registry_->GetGauge("fcp_segment_pool_misses_total");
  pool_recycled_bytes_ =
      registry_->GetGauge("fcp_segment_pool_recycled_bytes_total");
  pool_free_slabs_ = registry_->GetGauge("fcp_segment_pool_free_slabs");
  open_windows_gauge_ = registry_->GetGauge("fcp_open_windows");
  streams_seen_gauge_ = registry_->GetGauge("fcp_streams_seen");
  uptime_seconds_ = RegisterBuildInfo(registry_);
  start_time_ = std::chrono::steady_clock::now();
  if (options.watchdog != nullptr) {
    // No depth probe: the serial engine has no input queue — the caller's
    // thread IS the pipeline, so only the busy-and-silent predicate applies.
    heartbeat_ = options.watchdog->RegisterStage("ingest");
  }
}

void MiningEngine::RefreshGauges() const {
  open_windows_gauge_->Set(mux_.open_windows());
  streams_seen_gauge_->Set(mux_.streams_seen());
  uptime_seconds_->Set(std::chrono::duration_cast<std::chrono::seconds>(
                           std::chrono::steady_clock::now() - start_time_)
                           .count());
}

std::string MiningEngine::StatusJson() const {
  const SegmentPoolStats pool = mux_.pool().stats();
  std::string out = "{\"engine\":\"serial\"";
  out += ",\"streams_seen\":" + std::to_string(mux_.streams_seen());
  out += ",\"open_windows\":" + std::to_string(mux_.open_windows());
  out += ",\"events_ingested\":" + std::to_string(events_ingested_->Value());
  out += ",\"segments_completed\":" +
         std::to_string(segments_completed_metric_->Value());
  out += ",\"fcps_accepted\":" + std::to_string(fcps_accepted_->Value());
  out += ",\"pool\":{\"live_refs\":" + std::to_string(pool.live) +
         ",\"free_slabs\":" + std::to_string(pool.free) +
         ",\"hits\":" + std::to_string(pool.pool_hits) +
         ",\"misses\":" + std::to_string(pool.slab_allocs) +
         ",\"recycled_bytes\":" + std::to_string(pool.recycled_bytes) + "}";
  out += "}";
  return out;
}

std::vector<Fcp> MiningEngine::PushEvent(const ObjectEvent& event) {
  if (heartbeat_ != nullptr) heartbeat_->MarkIdle(false);
  if (publish_) events_ingested_->Increment();
  scratch_segments_.clear();
  mux_.Push(event, &scratch_segments_);
  return ProcessSegments(scratch_segments_);
}

std::vector<Fcp> MiningEngine::IngestBatch(std::span<const ObjectEvent> events) {
  FCP_TRACE_SPAN_FLOW("engine/ingest_batch", 0,
                      static_cast<uint32_t>(events.size()));
  if (heartbeat_ != nullptr) heartbeat_->MarkIdle(false);
  // One counter delta per batch — same final totals as per-event increments.
  if (publish_ && !events.empty()) events_ingested_->Increment(events.size());
  scratch_segments_.clear();
  mux_.PushBatch(events.data(), events.size(), &scratch_segments_);
  return ProcessSegments(scratch_segments_);
}

std::vector<Fcp> MiningEngine::PushSegment(const Segment& segment) {
  if (heartbeat_ != nullptr) heartbeat_->MarkIdle(false);
  scratch_segments_.clear();
  // One copy into a pooled slab; ProcessSegments shares it from there.
  scratch_segments_.push_back(mux_.pool()->Make(
      segment.id(), segment.stream(), segment.entries()));
  return ProcessSegments(scratch_segments_);
}

std::vector<Fcp> MiningEngine::Flush() {
  if (heartbeat_ != nullptr) heartbeat_->MarkIdle(false);
  scratch_segments_.clear();
  mux_.FlushAll(&scratch_segments_);
  return ProcessSegments(scratch_segments_);
}

std::vector<Fcp> MiningEngine::ProcessSegments(
    const std::vector<SegmentRef>& segments) {
  std::vector<Fcp> accepted;
  std::vector<Fcp> mined;
  for (size_t k = 0; k < segments.size(); ++k) {
    // Warm the next segment's index lines while this one is mined (advisory;
    // PrefetchSegment has no observable effect, so results are unchanged).
    if (k + 1 < segments.size()) miner_->PrefetchSegment(segments[k + 1]);
    mined.clear();
    {
      FCP_TRACE_SPAN_FLOW("engine/mine", segments[k]->id(),
                          static_cast<uint32_t>(segments[k]->length()));
      FCP_TRACE_FLOW_END("segment", segments[k]->id());
      // Timing is needed for the latency histogram (publish on) or the
      // slow-op detector (threshold set); with both off the baseline path
      // stays clock-free.
      const int64_t slow_ns = trace::SlowOpThresholdNs();
      if (publish_ || slow_ns > 0) {
        Stopwatch timer;
        miner_->AddSegment(segments[k], &mined);
        const int64_t elapsed = timer.ElapsedNanos();
        if (publish_) {
          mine_latency_us_->Record(static_cast<uint64_t>(elapsed) / 1000);
        }
        if (slow_ns > 0 && elapsed >= slow_ns) {
          DumpSlowOp("engine/mine", *segments[k], *miner_, 0, elapsed);
        }
      } else {
        miner_->AddSegment(segments[k], &mined);
      }
    }
    ++segments_completed_;
    collector_.OfferAll(mined, &accepted);
  }
  if (publish_ && !segments.empty()) {
    // Per-batch counter deltas: same totals as per-segment increments, one
    // atomic add per batch.
    segments_completed_metric_->Increment(segments.size());
    miner_metrics_.PublishDelta(miner_->stats(), &published_stats_);
    miner_metrics_.PublishIntrospection(miner_->Introspect());
    fcps_accepted_->Increment(accepted.size());
    const SegmentPoolStats pool = mux_.pool()->stats();
    pool_live_refs_->Set(static_cast<int64_t>(pool.live));
    pool_hits_->Set(static_cast<int64_t>(pool.pool_hits));
    pool_misses_->Set(static_cast<int64_t>(pool.slab_allocs));
    pool_recycled_bytes_->Set(static_cast<int64_t>(pool.recycled_bytes));
    pool_free_slabs_->Set(static_cast<int64_t>(pool.free));
  }
  if (heartbeat_ != nullptr) {
    // One beat per ingest call: between calls the caller owns the thread,
    // so the stage parks idle and silence is healthy.
    heartbeat_->Beat();
    heartbeat_->MarkIdle(true);
  }
  return accepted;
}

}  // namespace fcp
