#include "core/mining_engine.h"

#include "common/check.h"

namespace fcp {

MiningEngine::MiningEngine(MinerKind kind, const MiningParams& params,
                           EngineOptions options)
    : params_(params),
      mux_(params.xi),
      miner_(MakeMiner(kind, params)),
      collector_(options.suppression_window) {
  FCP_CHECK(params.Validate().ok());
}

std::vector<Fcp> MiningEngine::PushEvent(const ObjectEvent& event) {
  scratch_segments_.clear();
  mux_.Push(event, &scratch_segments_);
  return ProcessSegments(scratch_segments_);
}

std::vector<Fcp> MiningEngine::PushSegment(const Segment& segment) {
  scratch_segments_.clear();
  scratch_segments_.push_back(segment);
  return ProcessSegments(scratch_segments_);
}

std::vector<Fcp> MiningEngine::Flush() {
  scratch_segments_.clear();
  mux_.FlushAll(&scratch_segments_);
  return ProcessSegments(scratch_segments_);
}

std::vector<Fcp> MiningEngine::ProcessSegments(
    const std::vector<Segment>& segments) {
  std::vector<Fcp> accepted;
  std::vector<Fcp> mined;
  for (const Segment& segment : segments) {
    mined.clear();
    miner_->AddSegment(segment, &mined);
    ++segments_completed_;
    collector_.OfferAll(mined, &accepted);
  }
  return accepted;
}

}  // namespace fcp
