// Collects and deduplicates the FCPs emitted by a miner.
//
// A pattern that stays frequent is re-discovered by every later supporting
// segment; applications usually want one alert per episode. The collector
// suppresses re-reports of a pattern until `suppression_window` of event
// time has passed since its last report (0 = report every discovery).

#ifndef FCP_CORE_RESULT_COLLECTOR_H_
#define FCP_CORE_RESULT_COLLECTOR_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/types.h"
#include "core/fcp.h"

namespace fcp {

class ResultCollector {
 public:
  /// `suppression_window`: minimum event time between two reports of the
  /// same pattern (measured trigger-to-trigger on window_end).
  explicit ResultCollector(DurationMs suppression_window = 0)
      : suppression_window_(suppression_window) {}

  /// Offers a discovery; returns true iff it was accepted (not suppressed).
  bool Offer(const Fcp& fcp);

  /// Offers a batch; accepted ones are appended to `accepted` if non-null.
  void OfferAll(const std::vector<Fcp>& fcps,
                std::vector<Fcp>* accepted = nullptr);

  /// All accepted discoveries, in acceptance order.
  const std::vector<Fcp>& results() const { return results_; }

  /// Number of *distinct patterns* seen, per pattern size (Figs. 9-10 plot
  /// these counts). Key = pattern size k.
  const std::map<uint32_t, uint64_t>& distinct_patterns_by_size() const {
    return distinct_by_size_;
  }

  uint64_t total_offered() const { return offered_; }
  uint64_t total_suppressed() const { return suppressed_; }

  void Clear();

 private:
  DurationMs suppression_window_;
  std::unordered_map<Pattern, Timestamp, IdVectorHash> last_report_;
  std::vector<Fcp> results_;
  std::map<uint32_t, uint64_t> distinct_by_size_;
  uint64_t offered_ = 0;
  uint64_t suppressed_ = 0;
};

}  // namespace fcp

#endif  // FCP_CORE_RESULT_COLLECTOR_H_
