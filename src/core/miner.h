// The FcpMiner interface implemented by CooMine, DIMine, MatrixMine and the
// brute-force reference miner.

#ifndef FCP_CORE_MINER_H_
#define FCP_CORE_MINER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/params.h"
#include "common/shard.h"
#include "common/types.h"
#include "core/fcp.h"
#include "stream/segment.h"
#include "stream/segment_ref.h"

namespace fcp {

/// Uniform counters across miners. Times are split the way the paper's
/// evaluation splits them: `maintenance_ns` covers index insertion and
/// expiry; `mining_ns` covers candidate search and FCP verification
/// (Figs. 5(c)-(e) vs 6(a)-(b); their sum is the "total cost" of 6(c)-(d)).
struct MinerStats {
  uint64_t segments_processed = 0;
  uint64_t segments_indexed_only = 0;  ///< backfill deliveries (indexed, not
                                       ///< mined) from shard migrations
  uint64_t fcps_emitted = 0;
  uint64_t candidates_checked = 0;
  uint64_t candidates_pruned = 0;  ///< candidates rejected before emission
  uint64_t slcp_probes = 0;        ///< per-object pattern probes (SLCP rows
                                   ///< for CooMine, posting/matrix probes
                                   ///< for DIMine/MatrixMine)
  uint64_t lcp_rows = 0;           ///< CooMine: LCP-table rows built
  uint64_t maintenance_runs = 0;   ///< full expiry sweeps executed
  uint64_t segments_expired = 0;
  int64_t mining_ns = 0;
  int64_t maintenance_ns = 0;
};

/// Point-in-time view of a miner's index structures, for telemetry — the
/// quantities the paper plots per structure (Seg-tree node counts and
/// compression ratio, DI-Index/Matrix posting sizes).
struct MinerIntrospection {
  uint64_t live_segments = 0;   ///< segments currently indexed (not expired)
  uint64_t index_nodes = 0;     ///< Seg-tree nodes / postings / matrix cells
  uint64_t index_entries = 0;   ///< total indexed (object, segment) entries
  uint64_t index_bytes = 0;     ///< analytic footprint (== MemoryUsage())
  uint64_t arena_bytes = 0;     ///< CooMine: bytes held by the node arena
  double compression_ratio = 0; ///< CooMine: entries per Seg-tree node
};

/// One supporting appearance of a pattern: stream + the (segment-granularity)
/// time interval of the occurrence.
struct Occurrence {
  StreamId stream = 0;
  Timestamp start = 0;
  Timestamp end = 0;
};

/// The distinct objects of `segment` (sorted), truncated to the first `cap`
/// objects when cap > 0 (MiningParams::max_segment_objects). All miners use
/// this helper so the cap is applied identically everywhere.
std::vector<ObjectId> DistinctObjectsCapped(const Segment& segment,
                                            uint32_t cap);

/// If `occurrences` (all within the tau window of the trigger — callers
/// filter by segment validity first) span >= theta distinct streams, builds
/// the Fcp; otherwise returns nullopt. `occurrences` is consumed.
std::optional<Fcp> MakeFcpIfFrequent(const Pattern& pattern,
                                     std::vector<Occurrence> occurrences,
                                     uint32_t theta, SegmentId trigger);

/// Online FCP miner over completed segments. Implementations are
/// single-threaded; one miner instance is driven by one pipeline.
class FcpMiner {
 public:
  virtual ~FcpMiner() = default;

  /// Processes one completed segment: mines the FCPs this segment completes
  /// (appended to `out`, each with min_pattern_size <= size <=
  /// max_pattern_size and >= theta streams), then indexes the segment.
  ///
  /// Segments arrive in completion order, which across streams is not
  /// necessarily end-time order; validity (the tau window) is anchored at
  /// the stream-time watermark — the maximum end time seen so far — so all
  /// miners make identical expiry decisions regardless of interleaving.
  virtual void AddSegment(const Segment& segment, std::vector<Fcp>* out) = 0;

  /// Indexes `segment` WITHOUT mining it. This is the migration backfill
  /// path: when an object moves to this shard, the router replays the live
  /// segments containing it that this shard never received, so the index
  /// holds every valid supporter before the first trigger mined under the
  /// new placement arrives. The segment must be indexed exactly as
  /// AddSegment would index it (same expiry anchor, same structure state);
  /// only the mining phase is skipped. Bumps segments_indexed_only, not
  /// segments_processed.
  virtual void AddSegmentIndexOnly(const Segment& segment) = 0;

  /// Swaps the ownership placement this miner filters patterns by. `map`
  /// may be null (revert to the hash). The caller owns the snapshot's
  /// lifetime and must call this only between AddSegment calls — the
  /// ShardRouter ships the route-time snapshot with every delivery and the
  /// shard loop applies it before mining, so each trigger is mined under
  /// exactly one placement.
  virtual void SetPlacement(const PlacementMap* map) = 0;

  /// Advances the miner's stream-time watermark to at least `now` without
  /// processing a segment. A sharded miner sees only a subset of the global
  /// segment stream, so its own max-end-time anchor would lag the pipeline's
  /// and expire supporters later than a serial run; the ShardRouter ships
  /// the global watermark with every delivery and the shard calls this
  /// before AddSegment to keep expiry decisions byte-identical to serial.
  virtual void AdvanceWatermark(Timestamp now) = 0;

  /// Forces a full expiry sweep with `now` as the current time. Miners also
  /// self-trigger sweeps every MiningParams::maintenance_interval.
  virtual void ForceMaintenance(Timestamp now) = 0;

  /// Advisory hint that `segment` will be passed to AddSegment soon: warms
  /// the index cache lines its objects will probe (Hlist heads, posting-list
  /// slots). MUST have no observable effect — batched ingestion calls it for
  /// segment k+1 while segment k is being mined, and outputs must stay
  /// byte-identical whether or not the hint fires. Default: no-op.
  virtual void PrefetchSegment(const Segment& segment) const {
    (void)segment;
  }

  /// Analytic memory footprint of the miner's index structures, in bytes.
  virtual size_t MemoryUsage() const = 0;

  virtual const MinerStats& stats() const = 0;

  /// Index-structure introspection for telemetry. The default covers the
  /// structure-agnostic fields; miners with richer indexes override.
  virtual MinerIntrospection Introspect() const {
    MinerIntrospection view;
    view.index_bytes = MemoryUsage();
    return view;
  }

  /// "CooMine", "DIMine", "MatrixMine", "BruteForce".
  virtual std::string_view name() const = 0;

  /// SegmentRef conveniences for the refcounted pipeline: engines hold
  /// shared slabs and deref at the miner boundary. Non-virtual on purpose —
  /// implementations only ever see `const Segment&`. (These are hidden when
  /// calling through a derived type; pipelines call via FcpMiner&.)
  void AddSegment(const SegmentRef& segment, std::vector<Fcp>* out) {
    AddSegment(*segment, out);
  }
  void AddSegmentIndexOnly(const SegmentRef& segment) {
    AddSegmentIndexOnly(*segment);
  }
  void PrefetchSegment(const SegmentRef& segment) const {
    PrefetchSegment(*segment);
  }
};

/// Which algorithm to instantiate.
enum class MinerKind { kCooMine, kDiMine, kMatrixMine, kBruteForce };

std::string_view MinerKindToString(MinerKind kind);

/// Creates a miner. `params` must validate OK (checked).
std::unique_ptr<FcpMiner> MakeMiner(MinerKind kind, const MiningParams& params);

/// Creates one miner *shard*: a replica that mines only the patterns whose
/// minimum object it owns (`shard.Owns(min_obj(P))`). Feed it every segment
/// containing >= 1 owned object (the ShardRouter's multicast rule) and the
/// union of the shard outputs over shard.index in [0, shard.count) equals
/// the serial miner's output exactly. The default ShardSpec (0 of 1) yields
/// a serial miner.
std::unique_ptr<FcpMiner> MakeMiner(MinerKind kind, const MiningParams& params,
                                    const ShardSpec& shard);

}  // namespace fcp

#endif  // FCP_CORE_MINER_H_
