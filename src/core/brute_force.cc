#include "core/brute_force.h"

#include <algorithm>

#include "common/check.h"

namespace fcp {

BruteForceMiner::BruteForceMiner(const MiningParams& params,
                                 const ShardSpec& shard)
    : params_(params), shard_(shard) {
  FCP_CHECK(params.Validate().ok());
  FCP_CHECK(shard.count >= 1 && shard.index < shard.count);
}

void BruteForceMiner::AddSegment(const Segment& segment,
                                 std::vector<Fcp>* out) {
  // Monotonic watermark anchor; see CooMine::AddSegment.
  watermark_ = std::max(watermark_, segment.end_time());
  const Timestamp now = watermark_;
  segments_.push_back(Stored{segment.stream(), segment.start_time(),
                             segment.end_time(), segment.distinct_objects()});

  const std::vector<ObjectId> objects =
      DistinctObjectsCapped(segment, params_.max_segment_objects);
  FCP_CHECK(objects.size() <= 20);

  // Enumerate every non-empty subset of the trigger's objects and test
  // Definition 3 directly against all valid stored segments — no Apriori,
  // no index, so the oracle shares no code path with the real miners.
  const uint32_t n = static_cast<uint32_t>(objects.size());
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    const uint32_t size = static_cast<uint32_t>(__builtin_popcount(mask));
    if (size < params_.min_pattern_size) continue;
    if (params_.max_pattern_size != 0 && size > params_.max_pattern_size) {
      continue;
    }
    Pattern pattern;
    pattern.reserve(size);
    for (uint32_t b = 0; b < n; ++b) {
      if (mask & (1u << b)) pattern.push_back(objects[b]);
    }
    // Sharded oracle: only the owner of the pattern's minimum object mines
    // it (objects are sorted, so pattern[0] is the minimum).
    if (!shard_.Owns(pattern[0])) continue;
    ++stats_.candidates_checked;

    std::vector<Occurrence> occurrences;
    for (const Stored& stored : segments_) {
      if (now - stored.start > params_.tau) continue;  // expired
      if (std::includes(stored.objects.begin(), stored.objects.end(),
                        pattern.begin(), pattern.end())) {
        occurrences.push_back(
            Occurrence{stored.stream, stored.start, stored.end});
      }
    }
    auto fcp = MakeFcpIfFrequent(pattern, std::move(occurrences),
                                 params_.theta, segment.id());
    if (fcp.has_value()) {
      out->push_back(*std::move(fcp));
      ++stats_.fcps_emitted;
    }
  }
  ++stats_.segments_processed;
}

void BruteForceMiner::AddSegmentIndexOnly(const Segment& segment) {
  // Migration backfill: store without mining. The oracle re-checks validity
  // per stored segment on every trigger, so an old segment landing at the
  // back of the deque is harmless.
  watermark_ = std::max(watermark_, segment.end_time());
  segments_.push_back(Stored{segment.stream(), segment.start_time(),
                             segment.end_time(), segment.distinct_objects()});
  ++stats_.segments_indexed_only;
}

void BruteForceMiner::ForceMaintenance(Timestamp now) {
  while (!segments_.empty() && now - segments_.front().start > params_.tau) {
    segments_.pop_front();
  }
  ++stats_.maintenance_runs;
}

size_t BruteForceMiner::MemoryUsage() const {
  size_t bytes = sizeof(Stored) * segments_.size();
  for (const Stored& s : segments_) bytes += s.objects.size() * sizeof(ObjectId);
  return bytes;
}

}  // namespace fcp
