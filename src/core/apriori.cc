#include "core/apriori.h"

#include <algorithm>

#include "common/check.h"

namespace fcp {

bool AllSubsetsFrequent(const Pattern& candidate,
                        const std::vector<Pattern>& frequent_k) {
  // The two subsets obtained by dropping one of the last two objects are the
  // join parents and frequent by construction; check the remaining ones.
  Pattern subset(candidate.size() - 1);
  for (size_t drop = 0; drop + 2 < candidate.size(); ++drop) {
    size_t w = 0;
    for (size_t i = 0; i < candidate.size(); ++i) {
      if (i != drop) subset[w++] = candidate[i];
    }
    if (!std::binary_search(frequent_k.begin(), frequent_k.end(), subset)) {
      return false;
    }
  }
  return true;
}

std::vector<Pattern> GenerateCandidates(
    const std::vector<Pattern>& frequent_k) {
  std::vector<Pattern> candidates;
  if (frequent_k.empty()) return candidates;
  [[maybe_unused]] const size_t k = frequent_k.front().size();
  FCP_DCHECK(std::is_sorted(frequent_k.begin(), frequent_k.end()));

  for (size_t i = 0; i < frequent_k.size(); ++i) {
    FCP_DCHECK(frequent_k[i].size() == k);
    for (size_t j = i + 1; j < frequent_k.size(); ++j) {
      // Lexicographic order means all patterns sharing the first k-1
      // objects are contiguous; stop as soon as the prefix diverges.
      if (!std::equal(frequent_k[i].begin(), frequent_k[i].end() - 1,
                      frequent_k[j].begin(), frequent_k[j].end() - 1)) {
        break;
      }
      Pattern candidate = frequent_k[i];
      candidate.push_back(frequent_k[j].back());
      FCP_DCHECK(std::is_sorted(candidate.begin(), candidate.end()));
      if (AllSubsetsFrequent(candidate, frequent_k)) {
        candidates.push_back(std::move(candidate));
      }
    }
  }
  // The double loop emits candidates in lexicographic order already.
  FCP_DCHECK(std::is_sorted(candidates.begin(), candidates.end()));
  return candidates;
}

}  // namespace fcp
