#include "core/slow_op.h"

#include "telemetry/trace.h"

namespace fcp {

std::string DumpSlowOp(const char* op, const Segment& segment,
                       const FcpMiner& miner, uint32_t shard,
                       int64_t duration_ns) {
  trace::SlowOpReport report;
  report.op = op;
  report.duration_ns = duration_ns;
  report.miner = std::string(miner.name());
  report.shard = shard;
  report.segment_debug = segment.DebugString();
  report.segment_id = segment.id();
  report.stream = segment.stream();
  report.segment_length = segment.length();
  report.segment_start_ms = segment.start_time();
  report.segment_end_ms = segment.end_time();

  const MinerStats& stats = miner.stats();
  const MinerIntrospection view = miner.Introspect();
  report.state = {
      {"segments_processed", static_cast<int64_t>(stats.segments_processed)},
      {"fcps_emitted", static_cast<int64_t>(stats.fcps_emitted)},
      {"candidates_checked", static_cast<int64_t>(stats.candidates_checked)},
      {"candidates_pruned", static_cast<int64_t>(stats.candidates_pruned)},
      {"slcp_probes", static_cast<int64_t>(stats.slcp_probes)},
      {"lcp_rows", static_cast<int64_t>(stats.lcp_rows)},
      {"maintenance_runs", static_cast<int64_t>(stats.maintenance_runs)},
      {"segments_expired", static_cast<int64_t>(stats.segments_expired)},
      {"mining_ns", stats.mining_ns},
      {"maintenance_ns", stats.maintenance_ns},
      {"live_segments", static_cast<int64_t>(view.live_segments)},
      {"index_nodes", static_cast<int64_t>(view.index_nodes)},
      {"index_entries", static_cast<int64_t>(view.index_entries)},
      {"index_bytes", static_cast<int64_t>(view.index_bytes)},
      {"arena_bytes", static_cast<int64_t>(view.arena_bytes)},
      {"compression_ratio_x1000",
       static_cast<int64_t>(view.compression_ratio * 1000.0)},
  };
  return trace::WriteSlowOpDump(report);
}

}  // namespace fcp
