// Bridges the core mining types into trace::WriteSlowOpDump: when a mine
// call exceeds the configured --slow_op_ns threshold, the engine snapshots
// the triggering segment, the miner's stats and Introspect() state and the
// flight-recorder tail into one structured JSON dump (the forensic record a
// latency-tail investigation starts from). The telemetry layer stays
// independent of core types — this translation lives here, in core.

#ifndef FCP_CORE_SLOW_OP_H_
#define FCP_CORE_SLOW_OP_H_

#include <cstdint>
#include <string>

#include "core/miner.h"
#include "stream/segment.h"

namespace fcp {

/// Builds and writes a slow-op dump for `segment` mined by `miner` in
/// `duration_ns`. Callers check the threshold first (trace::
/// SlowOpThresholdNs()) so the steady-state cost is one relaxed load.
/// Returns the dump path, or "" if capture is disabled / max dumps reached.
std::string DumpSlowOp(const char* op, const Segment& segment,
                       const FcpMiner& miner, uint32_t shard,
                       int64_t duration_ns);

}  // namespace fcp

#endif  // FCP_CORE_SLOW_OP_H_
