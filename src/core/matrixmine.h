// MatrixMine (Section 6.2 of the paper): the baseline miner over the pairwise
// co-occurrence Matrix.

#ifndef FCP_CORE_MATRIXMINE_H_
#define FCP_CORE_MATRIXMINE_H_

#include <vector>

#include "common/params.h"
#include "core/miner.h"
#include "index/matrix_index.h"
#include "stream/segment.h"

namespace fcp {

class MatrixMine : public FcpMiner {
 public:
  explicit MatrixMine(const MiningParams& params);

  void AddSegment(const Segment& segment, std::vector<Fcp>* out) override;
  void ForceMaintenance(Timestamp now) override;
  size_t MemoryUsage() const override;
  const MinerStats& stats() const override { return stats_; }
  std::string_view name() const override { return "MatrixMine"; }

  /// The underlying index (tests and benches).
  const MatrixIndex& index() const { return index_; }

 private:
  void Mine(const Segment& segment, std::vector<Fcp>* out);

  MiningParams params_;
  MatrixIndex index_;
  MinerStats stats_;
  Timestamp last_sweep_ = kMinTimestamp;
  Timestamp watermark_ = kMinTimestamp;
};

}  // namespace fcp

#endif  // FCP_CORE_MATRIXMINE_H_
