// MatrixMine (Section 6.2 of the paper): the baseline miner over the pairwise
// co-occurrence Matrix.
//
// Per-trigger state lives in a reusable MiningScratch (flat level store, the
// same shape as CooMine/DIMine), so steady-state AddSegment allocates only
// for emitted FCPs and occasional cell growth. When constructed as one shard
// of a sharded group (ShardSpec), emission is restricted to patterns whose
// minimum object the shard owns (see dimine.h).

#ifndef FCP_CORE_MATRIXMINE_H_
#define FCP_CORE_MATRIXMINE_H_

#include <cstdint>
#include <vector>

#include "common/params.h"
#include "core/miner.h"
#include "index/matrix_index.h"
#include "stream/segment.h"

namespace fcp {

class MatrixMine : public FcpMiner {
 public:
  /// `shard` restricts mining to patterns whose minimum object the shard
  /// owns (see MakeMiner's sharded overload); the default owns everything.
  explicit MatrixMine(const MiningParams& params, const ShardSpec& shard = {});

  void AddSegment(const Segment& segment, std::vector<Fcp>* out) override;
  void AddSegmentIndexOnly(const Segment& segment) override;
  void SetPlacement(const PlacementMap* map) override {
    shard_.placement = map;
  }
  void AdvanceWatermark(Timestamp now) override {
    watermark_ = std::max(watermark_, now);
  }
  void ForceMaintenance(Timestamp now) override;
  size_t MemoryUsage() const override;
  const MinerStats& stats() const override { return stats_; }
  MinerIntrospection Introspect() const override;
  std::string_view name() const override { return "MatrixMine"; }

  /// The underlying index (tests and benches).
  const MatrixIndex& index() const { return index_; }

 private:
  /// Reusable per-trigger buffers; see DiMine::MiningScratch — identical
  /// layout plus `pair_supp` for the (first, last) pair-cell lookup.
  struct MiningScratch {
    std::vector<ObjectId> objects;
    std::vector<uint8_t> owned;
    std::vector<std::vector<SegmentId>> valid;  ///< diagonal-cell lists
    std::vector<uint32_t> level_idx;
    std::vector<SegmentId> level_supp;
    std::vector<size_t> level_off;
    std::vector<uint32_t> next_idx;
    std::vector<SegmentId> next_supp;
    std::vector<size_t> next_off;
    std::vector<SegmentId> cand_supp;
    std::vector<SegmentId> pair_supp;  ///< one (first, last) pair cell
    std::vector<uint32_t> subset;
    std::vector<Occurrence> occurrences;
    std::vector<StreamId> streams;
  };

  void Mine(const Segment& segment, std::vector<Fcp>* out);

  MiningParams params_;
  ShardSpec shard_;
  MatrixIndex index_;
  MinerStats stats_;
  MiningScratch scratch_;
  Timestamp last_sweep_ = kMinTimestamp;
  Timestamp watermark_ = kMinTimestamp;
};

}  // namespace fcp

#endif  // FCP_CORE_MATRIXMINE_H_
