// The end-to-end facade: events in, deduplicated FCPs out.
//
//   MiningParams params{...};
//   MiningEngine engine(MinerKind::kCooMine, params);
//   for (const ObjectEvent& e : feed) {
//     for (const Fcp& fcp : engine.PushEvent(e)) Alert(fcp);
//   }
//
// The engine owns the segmentation layer (StreamMux), the chosen miner and a
// ResultCollector. Single-threaded.

#ifndef FCP_CORE_MINING_ENGINE_H_
#define FCP_CORE_MINING_ENGINE_H_

#include <chrono>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/params.h"
#include "common/types.h"
#include "core/engine_metrics.h"
#include "core/miner.h"
#include "obs/watchdog.h"
#include "core/result_collector.h"
#include "stream/segment.h"
#include "stream/segment_ref.h"
#include "stream/stream_mux.h"
#include "telemetry/registry.h"

namespace fcp {

/// Engine-level configuration on top of MiningParams.
struct EngineOptions {
  /// Passed to the ResultCollector (0 = report every discovery).
  DurationMs suppression_window = 0;
  /// Registry receiving the engine's metrics; null means the engine owns a
  /// private one (readable via metrics()/SnapshotMetrics()). Tools pass
  /// telemetry::MetricRegistry::Global() to share one process-wide registry.
  telemetry::MetricRegistry* metrics = nullptr;
  /// Telemetry is always compiled in; benches flip this off to measure the
  /// record-path overhead against a compiled-but-unread baseline.
  bool publish_metrics = true;
  /// Health supervision (DESIGN.md §2.8): when set, the engine registers a
  /// single "ingest" stage heartbeat (the whole pipeline runs on the caller's
  /// thread). The watchdog must be Stop()ped before the engine is destroyed.
  obs::Watchdog* watchdog = nullptr;
};

class MiningEngine {
 public:
  /// `params` must validate OK (checked).
  MiningEngine(MinerKind kind, const MiningParams& params,
               EngineOptions options = {});

  MiningEngine(const MiningEngine&) = delete;
  MiningEngine& operator=(const MiningEngine&) = delete;

  /// Feeds one event. Returns the (deduplicated) FCPs completed by any
  /// segment this event closed.
  std::vector<Fcp> PushEvent(const ObjectEvent& event);

  /// Feeds a batch of events in order. Byte-identical results to calling
  /// PushEvent per event, but cheaper: the segmenter lookup is cached across
  /// same-stream runs, telemetry counters take one delta per batch instead
  /// of one per event, and while segment k of the batch is mined the
  /// miner's index lines for segment k+1 are software-prefetched.
  std::vector<Fcp> IngestBatch(std::span<const ObjectEvent> events);

  /// Feeds a pre-built segment directly (e.g., a tweet). The segment id must
  /// come from ids allocated via AllocateSegmentId() so ids stay unique
  /// across direct and segmenter-produced segments.
  std::vector<Fcp> PushSegment(const Segment& segment);

  /// Flushes every stream's trailing window (end of feed) and mines the
  /// resulting segments.
  std::vector<Fcp> Flush();

  SegmentId AllocateSegmentId() { return mux_.id_gen()->Next(); }

  const FcpMiner& miner() const { return *miner_; }
  FcpMiner* mutable_miner() { return miner_.get(); }
  const ResultCollector& collector() const { return collector_; }
  const MiningParams& params() const { return params_; }
  const StreamMux& mux() const { return mux_; }

  /// Memory of the miner's index structures.
  size_t MemoryUsage() const { return miner_->MemoryUsage(); }

  uint64_t segments_completed() const { return segments_completed_; }

  /// The registry this engine publishes into (engine-owned unless
  /// EngineOptions::metrics was set).
  const telemetry::MetricRegistry& metrics() const { return *registry_; }

  /// Point-in-time copy of every metric (thread-safe). Refreshes the
  /// serial gauges (uptime, open windows, streams seen, pool occupancy
  /// via the mux mirrors) first.
  std::vector<telemetry::MetricSample> SnapshotMetrics() const {
    RefreshGauges();
    return registry_->Snapshot();
  }

  /// Pipeline topology for /statusz. Thread-safe: built from the mux's
  /// relaxed-atomic mirrors and the pool's locked stats, never from the
  /// single-threaded segmenter map.
  std::string StatusJson() const;

 private:
  std::vector<Fcp> ProcessSegments(const std::vector<SegmentRef>& segments);
  void RefreshGauges() const;

  MiningParams params_;
  StreamMux mux_;
  std::unique_ptr<FcpMiner> miner_;
  ResultCollector collector_;
  uint64_t segments_completed_ = 0;
  std::vector<SegmentRef> scratch_segments_;

  std::unique_ptr<telemetry::MetricRegistry> owned_registry_;
  telemetry::MetricRegistry* registry_ = nullptr;
  bool publish_ = true;
  MinerMetrics miner_metrics_;
  MinerStats published_stats_;  ///< last stats pushed via PublishDelta
  telemetry::Counter* events_ingested_ = nullptr;
  telemetry::Counter* segments_completed_metric_ = nullptr;
  telemetry::Counter* fcps_accepted_ = nullptr;
  telemetry::LatencyHistogram* mine_latency_us_ = nullptr;
  // Segment-pool observability (fcp_segment_pool_*), refreshed per batch.
  telemetry::Gauge* pool_live_refs_ = nullptr;
  telemetry::Gauge* pool_hits_ = nullptr;
  telemetry::Gauge* pool_misses_ = nullptr;
  telemetry::Gauge* pool_recycled_bytes_ = nullptr;
  telemetry::Gauge* pool_free_slabs_ = nullptr;
  telemetry::Gauge* open_windows_gauge_ = nullptr;
  telemetry::Gauge* streams_seen_gauge_ = nullptr;
  telemetry::Gauge* uptime_seconds_ = nullptr;
  std::chrono::steady_clock::time_point start_time_;
  obs::StageHeartbeat* heartbeat_ = nullptr;  ///< null without a watchdog
};

}  // namespace fcp

#endif  // FCP_CORE_MINING_ENGINE_H_
