// The end-to-end facade: events in, deduplicated FCPs out.
//
//   MiningParams params{...};
//   MiningEngine engine(MinerKind::kCooMine, params);
//   for (const ObjectEvent& e : feed) {
//     for (const Fcp& fcp : engine.PushEvent(e)) Alert(fcp);
//   }
//
// The engine owns the segmentation layer (StreamMux), the chosen miner and a
// ResultCollector. Single-threaded.

#ifndef FCP_CORE_MINING_ENGINE_H_
#define FCP_CORE_MINING_ENGINE_H_

#include <memory>
#include <vector>

#include "common/params.h"
#include "common/types.h"
#include "core/miner.h"
#include "core/result_collector.h"
#include "stream/segment.h"
#include "stream/stream_mux.h"

namespace fcp {

/// Engine-level configuration on top of MiningParams.
struct EngineOptions {
  /// Passed to the ResultCollector (0 = report every discovery).
  DurationMs suppression_window = 0;
};

class MiningEngine {
 public:
  /// `params` must validate OK (checked).
  MiningEngine(MinerKind kind, const MiningParams& params,
               EngineOptions options = {});

  MiningEngine(const MiningEngine&) = delete;
  MiningEngine& operator=(const MiningEngine&) = delete;

  /// Feeds one event. Returns the (deduplicated) FCPs completed by any
  /// segment this event closed.
  std::vector<Fcp> PushEvent(const ObjectEvent& event);

  /// Feeds a pre-built segment directly (e.g., a tweet). The segment id must
  /// come from ids allocated via AllocateSegmentId() so ids stay unique
  /// across direct and segmenter-produced segments.
  std::vector<Fcp> PushSegment(const Segment& segment);

  /// Flushes every stream's trailing window (end of feed) and mines the
  /// resulting segments.
  std::vector<Fcp> Flush();

  SegmentId AllocateSegmentId() { return mux_.id_gen()->Next(); }

  const FcpMiner& miner() const { return *miner_; }
  FcpMiner* mutable_miner() { return miner_.get(); }
  const ResultCollector& collector() const { return collector_; }
  const MiningParams& params() const { return params_; }
  const StreamMux& mux() const { return mux_; }

  /// Memory of the miner's index structures.
  size_t MemoryUsage() const { return miner_->MemoryUsage(); }

  uint64_t segments_completed() const { return segments_completed_; }

 private:
  std::vector<Fcp> ProcessSegments(const std::vector<Segment>& segments);

  MiningParams params_;
  StreamMux mux_;
  std::unique_ptr<FcpMiner> miner_;
  ResultCollector collector_;
  uint64_t segments_completed_ = 0;
  std::vector<Segment> scratch_segments_;
};

}  // namespace fcp

#endif  // FCP_CORE_MINING_ENGINE_H_
