// Parallel ingestion front end: the paper's future-work direction ("extend
// the proposed approaches ... to handle greater scales of data streams").
//
// Segmentation is embarrassingly parallel (each stream's windows depend only
// on that stream), while FCP mining is a cross-stream operation and stays on
// one thread. The ParallelEngine shards streams across W segmenter workers,
// each feeding completed segments through a bounded queue into the single
// miner thread:
//
//   Push(event) -> worker[hash(stream) % W] -> Segmenter -> segment queue
//                                                          -> miner thread
//
// Semantics: the miner sees segments in a valid completion order of some
// interleaving of the input streams (workers run at their own pace), so
// results match a serial MiningEngine run up to the watermark skew between
// workers. Every emitted FCP is sound (its supporters really co-occurred
// within tau); a pattern straddling the instant of a worker stall may be
// reported with a later trigger than the serial run would use. Tests verify
// soundness against the Definition-3 checker and full recall of planted
// ground truth.

#ifndef FCP_CORE_PARALLEL_ENGINE_H_
#define FCP_CORE_PARALLEL_ENGINE_H_

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/params.h"
#include "common/types.h"
#include "core/miner.h"
#include "core/result_collector.h"
#include "stream/bounded_queue.h"
#include "stream/segment.h"
#include "stream/segmenter.h"

namespace fcp {

/// Configuration of the parallel front end.
struct ParallelEngineOptions {
  uint32_t num_workers = 2;
  size_t event_queue_capacity = 8192;    ///< per worker
  size_t segment_queue_capacity = 1024;  ///< per worker, feeds the merge
  DurationMs suppression_window = 0;     ///< ResultCollector dedup
  /// The miner merges per-worker segment streams by end time. When some
  /// worker has produced nothing for this long while others have segments
  /// waiting, the merge stops waiting for it (bounds stalls on quiet
  /// stream partitions at the cost of a little ordering skew).
  int64_t merge_idle_timeout_us = 2000;
};

class ParallelEngine {
 public:
  /// Starts the worker and miner threads. `params` must validate OK.
  ParallelEngine(MinerKind kind, const MiningParams& params,
                 ParallelEngineOptions options = {});

  /// Joins all threads (calls Finish() if the caller has not).
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  /// Routes one event to its stream's worker. Blocks (spins briefly) when
  /// that worker's queue is full — ingestion is lossless, unlike the Fig. 8
  /// saturation harness. Must not be called after Finish().
  void Push(const ObjectEvent& event);

  /// Flushes every open window, drains the pipeline and joins all threads.
  /// Idempotent. After Finish(), results() is complete and stable.
  void Finish();

  /// All accepted discoveries so far. Only safe to read after Finish().
  const std::vector<Fcp>& results() const { return collector_.results(); }

  /// Collector access after Finish() (distinct pattern counts, etc.).
  const ResultCollector& collector() const { return collector_; }

  uint64_t segments_completed() const { return segments_completed_; }
  uint64_t events_pushed() const { return events_pushed_; }

 private:
  void WorkerLoop(uint32_t worker_index);
  void MinerLoop();

  MiningParams params_;
  ParallelEngineOptions options_;

  // Each worker owns an event queue and the segmenters of its streams.
  struct Worker {
    std::unique_ptr<BoundedQueue<ObjectEvent>> events;
    std::thread thread;
  };
  std::vector<Worker> workers_;

  // Per-worker segment queues; MinerLoop merges them by segment end time
  // (aligned watermark) and relabels with globally monotone ids.
  std::vector<std::unique_ptr<BoundedQueue<Segment>>> segments_;
  std::thread miner_thread_;

  std::unique_ptr<FcpMiner> miner_;
  ResultCollector collector_;
  uint64_t segments_completed_ = 0;
  uint64_t events_pushed_ = 0;
  bool finished_ = false;
};

}  // namespace fcp

#endif  // FCP_CORE_PARALLEL_ENGINE_H_
