// Parallel ingestion + mining: the paper's future-work direction ("extend
// the proposed approaches ... to handle greater scales of data streams").
//
// Segmentation is embarrassingly parallel (each stream's windows depend only
// on that stream). Mining is a cross-stream operation, but it *object*-
// partitions cleanly: S miner shards each own the patterns whose minimum
// object hashes to them (see common/shard.h), and a ShardRouter multicasts
// every completed segment to the shards owning >= 1 of its objects. Each
// shard runs a full miner instance restricted to its owned patterns, so the
// union of shard outputs equals the serial output exactly (every occurrence
// of an owned pattern contains the owned minimum object, hence reaches the
// owner).
//
//   Push(event) -> worker[stream % W] -> Segmenter -> segment queue
//     -> merge thread (end-time order, global ids, watermark)
//       -> ShardRouter -> shard[0..S-1] miner threads -> merged results
//
// Semantics: the merge thread sees segments in a valid completion order of
// some interleaving of the input streams (workers run at their own pace), so
// results match a serial MiningEngine run up to the watermark skew between
// workers; with one worker they match exactly, for any shard count. Every
// emitted FCP is sound (its supporters really co-occurred within tau).
// Tests verify soundness against the Definition-3 checker, full recall of
// planted ground truth, and shard-count invariance of the result multiset.
//
// All backpressure blocks on condition variables (BoundedQueue::Push /
// PopFor) — no spin loops anywhere in the pipeline.

#ifndef FCP_CORE_PARALLEL_ENGINE_H_
#define FCP_CORE_PARALLEL_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/params.h"
#include "common/placement.h"
#include "common/types.h"
#include "core/engine_metrics.h"
#include "obs/watchdog.h"
#include "core/miner.h"
#include "core/result_collector.h"
#include "stream/bounded_queue.h"
#include "stream/rebalancer.h"
#include "stream/segment.h"
#include "stream/segment_ref.h"
#include "stream/segmenter.h"
#include "stream/shard_router.h"
#include "telemetry/registry.h"

namespace fcp {

/// Configuration of the parallel front end.
struct ParallelEngineOptions {
  uint32_t num_workers = 2;
  /// Miner shards: independent miner replicas partitioning the pattern
  /// space by min-object ownership. 1 = classic single miner thread.
  uint32_t num_miner_shards = 1;
  size_t event_queue_capacity = 8192;    ///< per worker
  size_t segment_queue_capacity = 1024;  ///< per worker, feeds the merge
  size_t shard_queue_capacity = 1024;    ///< per shard, feeds the miners
  DurationMs suppression_window = 0;     ///< ResultCollector dedup
  /// The merge orders per-worker segment streams by end time. When some
  /// worker has produced nothing for this long while others have segments
  /// waiting, the merge stops waiting for it (bounds stalls on quiet
  /// stream partitions at the cost of a little ordering skew).
  int64_t merge_idle_timeout_us = 2000;
  /// Registry receiving the pipeline's metrics (per-shard counters labeled
  /// `{shard="s"}`); null means the engine owns a private one.
  telemetry::MetricRegistry* metrics = nullptr;
  /// Benches flip this off to measure record-path overhead.
  bool publish_metrics = true;
  /// Initial object->shard placement snapshot (null = Mix64 hash). Built by
  /// callers (fcpmine --placement=freq) via BuildGreedyPlacement over an
  /// observation pass.
  std::shared_ptr<const PlacementMap> placement;
  /// Live rebalancing: the merge thread closes load intervals and migrates
  /// hot objects between shards through the router's backfill fence. The
  /// imbalance gauge is published for S > 1 regardless; this flag only
  /// controls whether placements actually change.
  bool rebalance = false;
  RebalancerOptions rebalancer;  ///< cadence/thresholds when rebalancing
  /// Work stealing: a shard thread whose queue is empty mines queued
  /// segments of the most-loaded other shard, using that shard's miner
  /// under its mutex (output is unchanged — only which thread runs it).
  bool steal = false;
  /// Minimum victim queue depth before a steal is attempted.
  size_t steal_min_depth = 2;
  /// Health supervision (DESIGN.md §2.8): when set, every pipeline stage
  /// registers a heartbeat with this watchdog (worker-w, merge, shard-s)
  /// plus the watermark-lag probe. The watchdog must outlive the engine's
  /// threads and be Stop()ped before the engine is destroyed. Heartbeats
  /// are single relaxed atomics — zero cost on the mining hot path, and
  /// null leaves the pipeline exactly as instrumented as before.
  obs::Watchdog* watchdog = nullptr;
};

class ParallelEngine {
 public:
  /// Starts the worker, merge and shard miner threads. `params` must
  /// validate OK.
  ParallelEngine(MinerKind kind, const MiningParams& params,
                 ParallelEngineOptions options = {});

  /// Joins all threads (calls Finish() if the caller has not).
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  /// Routes one event to its stream's worker. Blocks (condition variable)
  /// while that worker's queue is full — ingestion is lossless, unlike the
  /// Fig. 8 saturation harness. Must not be called after Finish().
  void Push(const ObjectEvent& event);

  /// Routes a batch of events in order. Equivalent to Push per event, but
  /// consecutive same-worker runs are handed to the worker queue in one
  /// lock acquisition (BoundedQueue::PushAll) and the ingestion counter
  /// takes one delta per batch. Must not be called after Finish().
  void PushBatch(std::span<const ObjectEvent> events);

  /// Flushes every open window, drains the pipeline, joins all threads and
  /// merges the per-shard outputs into the collector. Idempotent. After
  /// Finish(), results() is complete and stable.
  void Finish();

  /// All accepted discoveries so far. Only safe to read after Finish().
  const std::vector<Fcp>& results() const { return collector_.results(); }

  /// Collector access after Finish() (distinct pattern counts, etc.).
  const ResultCollector& collector() const { return collector_; }

  /// Shard miner access after Finish() (stats, memory accounting).
  uint32_t num_miner_shards() const { return options_.num_miner_shards; }
  const FcpMiner& shard_miner(uint32_t shard) const {
    return *shard_miners_[shard];
  }
  const ShardRouterStats& router_stats() const { return router_->stats(); }

  /// The slab pool every in-flight segment lives in (stats: pool hit rate,
  /// live refs). Thread-safe.
  const SegmentPool& segment_pool() const { return segment_pool_; }

  /// Rebalancer counters + last imbalance (null when S == 1). Only safe to
  /// read after Finish().
  const Rebalancer* rebalancer() const { return rebalancer_.get(); }

  uint64_t segments_completed() const { return segments_completed_; }
  uint64_t events_pushed() const { return events_pushed_; }

  /// The registry this pipeline publishes into (engine-owned unless
  /// ParallelEngineOptions::metrics was set).
  const telemetry::MetricRegistry& metrics() const { return *registry_; }

  /// Refreshes the queue-occupancy and routing gauges, then snapshots every
  /// metric. Thread-safe; callable while the pipeline runs.
  std::vector<telemetry::MetricSample> SnapshotMetrics();

  /// Pipeline topology for /statusz: shards, workers, placement version,
  /// queue depth/high-watermark/capacity, pool occupancy, per-shard
  /// watermark lag, rebalancer activity. Thread-safe (built entirely from
  /// relaxed atomics and snapshot mutexes); callable while the pipeline
  /// runs. Counter-derived fields read the published metrics, so they stay
  /// zero when publish_metrics is off.
  std::string StatusJson() const;

  /// Max over shards of (router watermark - shard last-processed
  /// watermark), in stream-time ms: how far the slowest miner trails
  /// routing. 0 before any delivery. Thread-safe.
  int64_t WatermarkLagMs() const;

 private:
  void WorkerLoop(uint32_t worker_index);
  void MergeLoop();
  void ShardLoop(uint32_t shard_index);
  /// Applies the delivery's placement snapshot, advances the watermark and
  /// mines (or index-backfills) it with shard `shard_index`'s miner. When
  /// stealing is enabled the caller must hold that shard's runtime mutex.
  void ProcessDelivery(uint32_t shard_index, ShardDelivery&& delivery,
                       bool stolen);
  /// Pops and processes one queued delivery of the most-loaded other shard
  /// (depth >= steal_min_depth) with that shard's miner, if its mutex is
  /// free. Returns false when there was nothing to steal.
  bool TrySteal(uint32_t thief_index);
  void RegisterMetrics();
  void RegisterWatchdogStages();
  void RefreshGauges();

  MiningParams params_;
  ParallelEngineOptions options_;

  /// Slab pool behind every segment in flight. Declared before the router,
  /// queues and miners so it is destroyed LAST — every SegmentRef (shard
  /// deliveries, the router's live set, merge heads) must release back into
  /// it first (checked in ~SegmentPool).
  SegmentPool segment_pool_;

  // Each worker owns an event queue and the segmenters of its streams.
  struct Worker {
    std::unique_ptr<BoundedQueue<ObjectEvent>> events;
    std::thread thread;
  };
  std::vector<Worker> workers_;

  // Per-worker segment queues; MergeLoop merges them by segment end time
  // (aligned watermark), relabels with globally monotone ids (in place —
  // the ref is still unique at that point), and routes through the
  // ShardRouter to the shard miner threads.
  std::vector<std::unique_ptr<BoundedQueue<SegmentRef>>> segments_;
  std::thread merge_thread_;

  std::unique_ptr<ShardRouter> router_;
  /// Per-interval load measurement + migration decisions; owned by the
  /// merge thread, created for S > 1 (measure-only unless options_.rebalance).
  std::unique_ptr<Rebalancer> rebalancer_;
  std::vector<std::unique_ptr<FcpMiner>> shard_miners_;
  std::vector<std::thread> shard_threads_;
  /// Per-shard state shared between the owning shard thread and thieves.
  /// The mutex serializes (pop, mine) pairs against the shard's queue and
  /// miner, which keeps per-shard FIFO processing order — segment ids must
  /// reach an index in increasing order — and makes the miners' single-
  /// threaded assumption hold under stealing. unique_ptr for address
  /// stability (mutexes are immovable).
  struct ShardRuntime {
    std::mutex mutex;
    /// The snapshot the shard's miner currently filters by (keeps the
    /// shared_ptr alive between deliveries that carry the same snapshot).
    std::shared_ptr<const PlacementMap> active_placement;
    std::vector<Fcp> mined_scratch;
    /// Watermark of the last delivery this shard processed; sampled by the
    /// observability plane against the router's to compute per-shard lag.
    std::atomic<Timestamp> last_watermark{kMinTimestamp};
  };
  std::vector<std::unique_ptr<ShardRuntime>> shard_runtime_;
  // Per-shard output buffers, written only by the owning shard thread while
  // it runs; merged into collector_ by Finish() after the joins.
  std::vector<std::vector<Fcp>> shard_mined_;

  ResultCollector collector_;
  uint64_t segments_completed_ = 0;
  uint64_t events_pushed_ = 0;
  bool finished_ = false;
  std::vector<ObjectEvent> push_batch_scratch_;  ///< PushBatch staging

  // Telemetry. Registration happens in the constructor before any thread
  // starts; the record paths below are relaxed atomics only. Per-shard
  // mutable state (`published`) is touched only by the owning shard thread.
  struct ShardTelemetry {
    MinerMetrics miner;
    MinerStats published;
    telemetry::LatencyHistogram* discovery_latency_us = nullptr;
    telemetry::Gauge* segments_routed = nullptr;
    telemetry::Gauge* queue_depth = nullptr;
    telemetry::Gauge* queue_high_watermark = nullptr;
    telemetry::Gauge* watermark_lag_ms = nullptr;
  };
  struct WorkerTelemetry {
    telemetry::Gauge* event_queue_depth = nullptr;
    telemetry::Gauge* event_queue_high_watermark = nullptr;
    telemetry::Gauge* segment_queue_depth = nullptr;
    telemetry::Gauge* segment_queue_high_watermark = nullptr;
  };
  std::unique_ptr<telemetry::MetricRegistry> owned_registry_;
  telemetry::MetricRegistry* registry_ = nullptr;
  bool publish_ = true;
  telemetry::Counter* events_ingested_ = nullptr;
  telemetry::Counter* segments_completed_metric_ = nullptr;
  telemetry::Counter* merge_stalls_ = nullptr;
  telemetry::Gauge* watermark_lag_ms_ = nullptr;
  telemetry::Counter* rebalance_rounds_ = nullptr;
  telemetry::Counter* migrations_ = nullptr;
  telemetry::Counter* backfill_deliveries_ = nullptr;
  telemetry::Counter* segments_stolen_ = nullptr;
  telemetry::Gauge* imbalance_permille_ = nullptr;
  telemetry::LatencyHistogram* migration_latency_us_ = nullptr;
  // Segment-pool observability (fcp_segment_pool_*), refreshed with the
  // queue gauges.
  telemetry::Gauge* pool_live_refs_ = nullptr;
  telemetry::Gauge* pool_hits_ = nullptr;
  telemetry::Gauge* pool_misses_ = nullptr;
  telemetry::Gauge* pool_recycled_bytes_ = nullptr;
  telemetry::Gauge* pool_free_slabs_ = nullptr;
  telemetry::Gauge* uptime_seconds_ = nullptr;
  /// Engine construction time, behind fcp_uptime_seconds.
  std::chrono::steady_clock::time_point start_time_;
  std::vector<ShardTelemetry> shard_telemetry_;
  std::vector<WorkerTelemetry> worker_telemetry_;

  // Watchdog heartbeats (null / empty when no watchdog was attached).
  obs::StageHeartbeat* merge_heartbeat_ = nullptr;
  std::vector<obs::StageHeartbeat*> worker_heartbeats_;
  std::vector<obs::StageHeartbeat*> shard_heartbeats_;
};

}  // namespace fcp

#endif  // FCP_CORE_PARALLEL_ENGINE_H_
