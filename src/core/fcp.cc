#include "core/fcp.h"

#include <sstream>

namespace fcp {

std::string Fcp::DebugString() const {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < objects.size(); ++i) {
    os << (i ? "," : "") << objects[i];
  }
  os << "}x" << streams.size() << "@[" << window_start << "," << window_end
     << "]";
  return os.str();
}

bool FcpLess(const Fcp& a, const Fcp& b) {
  if (a.objects != b.objects) return a.objects < b.objects;
  return a.trigger < b.trigger;
}

}  // namespace fcp
