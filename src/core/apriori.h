// The shared Apriori kernel: level-wise candidate generation with subset
// pruning (Theorem 3: every subset of an FCP is an FCP). Support counting is
// miner-specific and stays in the miners.

#ifndef FCP_CORE_APRIORI_H_
#define FCP_CORE_APRIORI_H_

#include <vector>

#include "common/types.h"
#include "core/fcp.h"

namespace fcp {

/// Generates the size-(k+1) candidates from the size-k frequent patterns
/// using the classic F_k x F_k join (two patterns sharing their first k-1
/// objects combine) followed by the all-subsets-frequent prune.
///
/// `frequent_k` must contain sorted, distinct patterns of equal size k >= 1,
/// itself sorted lexicographically (the miners maintain this). The returned
/// candidates are sorted lexicographically.
std::vector<Pattern> GenerateCandidates(const std::vector<Pattern>& frequent_k);

/// True iff every size-k subset of `candidate` (size k+1) appears in the
/// lexicographically sorted `frequent_k`. Exposed for tests; called by
/// GenerateCandidates.
bool AllSubsetsFrequent(const Pattern& candidate,
                        const std::vector<Pattern>& frequent_k);

}  // namespace fcp

#endif  // FCP_CORE_APRIORI_H_
