#include "core/parallel_engine.h"

#include <chrono>
#include <unordered_map>

#include "common/check.h"

namespace fcp {

ParallelEngine::ParallelEngine(MinerKind kind, const MiningParams& params,
                               ParallelEngineOptions options)
    : params_(params),
      options_(options),
      miner_(MakeMiner(kind, params)),
      collector_(options.suppression_window) {
  FCP_CHECK(params.Validate().ok());
  FCP_CHECK(options.num_workers >= 1);
  workers_.resize(options_.num_workers);
  for (uint32_t w = 0; w < options_.num_workers; ++w) {
    workers_[w].events =
        std::make_unique<BoundedQueue<ObjectEvent>>(
            options_.event_queue_capacity);
    segments_.push_back(std::make_unique<BoundedQueue<Segment>>(
        options_.segment_queue_capacity));
  }
  // Start the miner first so segment production never deadlocks on a full
  // segment queue with nobody draining it.
  miner_thread_ = std::thread([this] { MinerLoop(); });
  for (uint32_t w = 0; w < options_.num_workers; ++w) {
    workers_[w].thread = std::thread([this, w] { WorkerLoop(w); });
  }
}

ParallelEngine::~ParallelEngine() { Finish(); }

void ParallelEngine::Push(const ObjectEvent& event) {
  FCP_CHECK(!finished_);
  const uint32_t w = event.stream % options_.num_workers;
  // Lossless ingestion: spin-yield until the worker accepts the event.
  while (!workers_[w].events->TryPush(event)) {
    std::this_thread::yield();
  }
  ++events_pushed_;
}

void ParallelEngine::Finish() {
  if (finished_) return;
  finished_ = true;
  for (Worker& worker : workers_) worker.events->Close();
  for (Worker& worker : workers_) {
    if (worker.thread.joinable()) worker.thread.join();
  }
  // All workers flushed their trailing windows before exiting; now the
  // segment queues can be closed and drained by the miner thread.
  for (auto& queue : segments_) queue->Close();
  if (miner_thread_.joinable()) miner_thread_.join();
}

void ParallelEngine::WorkerLoop(uint32_t worker_index) {
  std::unordered_map<StreamId, std::unique_ptr<Segmenter>> segmenters;
  // Worker-local scratch ids; the miner thread assigns the final, globally
  // monotone ids in consumption order (index posting lists rely on segment
  // ids increasing in insertion order).
  SegmentIdGen scratch_ids;
  std::vector<Segment> completed;

  BoundedQueue<Segment>& out = *segments_[worker_index];
  auto emit = [&](std::vector<Segment>& batch) {
    for (Segment& segment : batch) {
      while (!out.TryPush(segment)) {
        if (out.closed()) return;  // shutting down
        std::this_thread::yield();
      }
    }
    batch.clear();
  };

  while (auto event = workers_[worker_index].events->Pop()) {
    auto it = segmenters.find(event->stream);
    if (it == segmenters.end()) {
      it = segmenters
               .emplace(event->stream,
                        std::make_unique<Segmenter>(event->stream, params_.xi,
                                                    &scratch_ids))
               .first;
    }
    completed.clear();
    it->second->Push(event->object, event->time, &completed);
    emit(completed);
  }
  // Queue closed: flush trailing windows.
  completed.clear();
  for (auto& [stream, segmenter] : segmenters) segmenter->Flush(&completed);
  emit(completed);
}

void ParallelEngine::MinerLoop() {
  // Merge the per-worker segment streams by end time: processing the
  // smallest available end time keeps the miner\'s watermark aligned with a
  // serial run, so no worker\'s supporters expire early just because another
  // worker raced ahead. A worker that stays quiet for merge_idle_timeout_us
  // while others have segments waiting is skipped until it produces again.
  const uint32_t n = options_.num_workers;
  std::vector<std::optional<Segment>> heads(n);
  std::vector<bool> exhausted(n, false);
  SegmentIdGen final_ids;
  std::vector<Fcp> mined;

  while (true) {
    // Refill empty head slots without blocking.
    bool any_head = false;
    bool missing_active_head = false;
    for (uint32_t w = 0; w < n; ++w) {
      if (exhausted[w] || heads[w].has_value()) {
        any_head |= heads[w].has_value();
        continue;
      }
      if (auto segment = segments_[w]->TryPop()) {
        heads[w] = std::move(*segment);
        any_head = true;
      } else if (segments_[w]->closed()) {
        // Drain anything that raced in between TryPop and closed().
        if (auto last = segments_[w]->TryPop()) {
          heads[w] = std::move(*last);
          any_head = true;
        } else {
          exhausted[w] = true;
        }
      } else {
        missing_active_head = true;
      }
    }

    if (!any_head) {
      bool all_exhausted = true;
      for (uint32_t w = 0; w < n; ++w) all_exhausted &= exhausted[w];
      if (all_exhausted) break;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      continue;
    }

    if (missing_active_head) {
      // Give quiet workers a bounded chance to contribute the next-smallest
      // end time before we commit to the current minimum.
      int64_t waited_us = 0;
      while (missing_active_head &&
             waited_us < options_.merge_idle_timeout_us) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        waited_us += 100;
        missing_active_head = false;
        for (uint32_t w = 0; w < n; ++w) {
          if (exhausted[w] || heads[w].has_value()) continue;
          if (auto segment = segments_[w]->TryPop()) {
            heads[w] = std::move(*segment);
          } else if (segments_[w]->closed()) {
            exhausted[w] = true;
          } else {
            missing_active_head = true;
          }
        }
      }
    }

    // Process the head with the smallest end time.
    uint32_t best = n;
    for (uint32_t w = 0; w < n; ++w) {
      if (!heads[w].has_value()) continue;
      if (best == n || heads[w]->end_time() < heads[best]->end_time()) {
        best = w;
      }
    }
    FCP_DCHECK(best < n);
    const Segment relabeled(final_ids.Next(), heads[best]->stream(),
                            std::vector<SegmentEntry>(heads[best]->entries()));
    heads[best].reset();
    mined.clear();
    miner_->AddSegment(relabeled, &mined);
    ++segments_completed_;
    collector_.OfferAll(mined);
  }
}

}  // namespace fcp
