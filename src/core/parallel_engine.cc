#include "core/parallel_engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <unordered_map>

#include "common/check.h"
#include "core/slow_op.h"
#include "prof/prof.h"
#include "telemetry/trace.h"
#include "util/stopwatch.h"

namespace fcp {
namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Trace-flow id for a worker-local (pre-relabel) segment. Worker scratch
/// ids restart at 1 in every worker AND collide with the merge thread's
/// final global ids, so the worker index is folded into the top bits; the
/// merge thread recomputes the same id from (worker, head->id()) to stitch
/// the worker->merge hop without shipping extra state through the queue.
inline uint64_t WorkerFlowId(uint32_t worker_index, uint64_t scratch_id) {
  return (static_cast<uint64_t>(worker_index + 1) << 48) | scratch_id;
}

}  // namespace

ParallelEngine::ParallelEngine(MinerKind kind, const MiningParams& params,
                               ParallelEngineOptions options)
    : params_(params),
      options_(options),
      collector_(options.suppression_window),
      publish_(options.publish_metrics) {
  FCP_CHECK(params.Validate().ok());
  FCP_CHECK(options.num_workers >= 1);
  FCP_CHECK(options.num_miner_shards >= 1);
  const uint32_t num_shards = options_.num_miner_shards;
  ShardRouterOptions router_options;
  router_options.placement = options_.placement;
  // Live migration needs the router's live set (backfill source); static
  // placements do not pay for it.
  router_options.track_live = options_.rebalance && num_shards > 1;
  router_options.tau = params.tau;
  router_ = std::make_unique<ShardRouter>(
      num_shards, options_.shard_queue_capacity, std::move(router_options));
  if (num_shards > 1) {
    // Always measure (the imbalance gauge feeds dashboards); only move
    // objects when rebalancing was requested.
    RebalancerOptions rebalancer_options = options_.rebalancer;
    rebalancer_options.apply_moves = options_.rebalance;
    rebalancer_ = std::make_unique<Rebalancer>(num_shards, rebalancer_options);
  }
  shard_mined_.resize(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    shard_miners_.push_back(MakeMiner(kind, params, router_->spec(s)));
    shard_runtime_.push_back(std::make_unique<ShardRuntime>());
    // Seed the initial snapshot: deliveries carry it too, but setting it
    // here keeps the miner's view correct even before its first delivery.
    if (options_.placement != nullptr) {
      shard_miners_.back()->SetPlacement(options_.placement.get());
      shard_runtime_.back()->active_placement = options_.placement;
    }
  }
  workers_.resize(options_.num_workers);
  for (uint32_t w = 0; w < options_.num_workers; ++w) {
    // Off-CPU wait tags: consumer-side waits name the stage that is
    // starved, producer-side waits name the backpressure source.
    workers_[w].events =
        std::make_unique<BoundedQueue<ObjectEvent>>(
            options_.event_queue_capacity, "worker/events-empty",
            "ingest/events-full");
    segments_.push_back(std::make_unique<BoundedQueue<SegmentRef>>(
        options_.segment_queue_capacity, "merge/segments-empty",
        "worker/segments-full"));
  }
  RegisterMetrics();
  RegisterWatchdogStages();
  // Start consumers before producers so segment production never deadlocks
  // on a full queue with nobody draining it: shards first, then the merge,
  // then the workers.
  for (uint32_t s = 0; s < num_shards; ++s) {
    shard_threads_.emplace_back([this, s] { ShardLoop(s); });
  }
  merge_thread_ = std::thread([this] { MergeLoop(); });
  for (uint32_t w = 0; w < options_.num_workers; ++w) {
    workers_[w].thread = std::thread([this, w] { WorkerLoop(w); });
  }
}

ParallelEngine::~ParallelEngine() { Finish(); }

void ParallelEngine::RegisterMetrics() {
  if (options_.metrics != nullptr) {
    registry_ = options_.metrics;
  } else {
    owned_registry_ = std::make_unique<telemetry::MetricRegistry>();
    registry_ = owned_registry_.get();
  }
  events_ingested_ = registry_->GetCounter("fcp_events_ingested_total");
  segments_completed_metric_ =
      registry_->GetCounter("fcp_segments_completed_total");
  merge_stalls_ = registry_->GetCounter("fcp_merge_stalls_total");
  watermark_lag_ms_ = registry_->GetGauge("fcp_watermark_lag_ms");
  rebalance_rounds_ = registry_->GetCounter("fcp_rebalance_rounds_total");
  migrations_ = registry_->GetCounter("fcp_migrations_total");
  backfill_deliveries_ =
      registry_->GetCounter("fcp_backfill_deliveries_total");
  segments_stolen_ = registry_->GetCounter("fcp_segments_stolen_total");
  // max/mean per-shard deliveries over the last load interval, in permille
  // (1000 = perfectly balanced). One definition, shared by dashboards and
  // the rebalancer's trigger — both read the Rebalancer's computation.
  imbalance_permille_ =
      registry_->GetGauge("fcp_shard_load_imbalance_permille");
  migration_latency_us_ = registry_->GetHistogram("fcp_migration_latency_us");
  pool_live_refs_ = registry_->GetGauge("fcp_segment_pool_live_refs");
  pool_hits_ = registry_->GetGauge("fcp_segment_pool_hits_total");
  pool_misses_ = registry_->GetGauge("fcp_segment_pool_misses_total");
  pool_recycled_bytes_ =
      registry_->GetGauge("fcp_segment_pool_recycled_bytes_total");
  pool_free_slabs_ = registry_->GetGauge("fcp_segment_pool_free_slabs");
  uptime_seconds_ = RegisterBuildInfo(registry_);
  start_time_ = std::chrono::steady_clock::now();
  shard_telemetry_.resize(options_.num_miner_shards);
  for (uint32_t s = 0; s < options_.num_miner_shards; ++s) {
    const std::string label =
        telemetry::FormatLabel("shard", std::to_string(s));
    ShardTelemetry& t = shard_telemetry_[s];
    t.miner = MinerMetrics::Register(registry_, label);
    t.discovery_latency_us = registry_->GetHistogram(
        "fcp_discovery_latency_us{" + label + "}");
    t.segments_routed =
        registry_->GetGauge("fcp_segments_routed{" + label + "}");
    t.queue_depth =
        registry_->GetGauge("fcp_shard_queue_depth{" + label + "}");
    t.queue_high_watermark =
        registry_->GetGauge("fcp_shard_queue_high_watermark{" + label + "}");
    t.watermark_lag_ms =
        registry_->GetGauge("fcp_shard_watermark_lag_ms{" + label + "}");
  }
  worker_telemetry_.resize(options_.num_workers);
  for (uint32_t w = 0; w < options_.num_workers; ++w) {
    const std::string label =
        telemetry::FormatLabel("worker", std::to_string(w));
    WorkerTelemetry& t = worker_telemetry_[w];
    t.event_queue_depth =
        registry_->GetGauge("fcp_event_queue_depth{" + label + "}");
    t.event_queue_high_watermark =
        registry_->GetGauge("fcp_event_queue_high_watermark{" + label + "}");
    t.segment_queue_depth =
        registry_->GetGauge("fcp_segment_queue_depth{" + label + "}");
    t.segment_queue_high_watermark =
        registry_->GetGauge("fcp_segment_queue_high_watermark{" + label +
                            "}");
  }
}

void ParallelEngine::RegisterWatchdogStages() {
  obs::Watchdog* watchdog = options_.watchdog;
  if (watchdog == nullptr) return;
  // Stage names match the trace thread names, so a stalled row in /statusz
  // points straight at the matching Perfetto track. Probes capture `this`;
  // the watchdog contract (Stop() before the engine dies) makes that safe.
  worker_heartbeats_.resize(options_.num_workers, nullptr);
  for (uint32_t w = 0; w < options_.num_workers; ++w) {
    BoundedQueue<ObjectEvent>* queue = workers_[w].events.get();
    worker_heartbeats_[w] = watchdog->RegisterStage(
        "worker-" + std::to_string(w), [queue] { return queue->depth(); },
        options_.event_queue_capacity);
  }
  merge_heartbeat_ = watchdog->RegisterStage(
      "merge",
      [this] {
        size_t depth = 0;
        for (const auto& queue : segments_) depth += queue->depth();
        return depth;
      },
      options_.segment_queue_capacity * options_.num_workers);
  shard_heartbeats_.resize(options_.num_miner_shards, nullptr);
  for (uint32_t s = 0; s < options_.num_miner_shards; ++s) {
    shard_heartbeats_[s] = watchdog->RegisterStage(
        "shard-" + std::to_string(s),
        [this, s] { return router_->queue(s).depth(); },
        options_.shard_queue_capacity);
  }
  watchdog->SetWatermarkLagProbe([this] { return WatermarkLagMs(); });
}

int64_t ParallelEngine::WatermarkLagMs() const {
  const Timestamp routed = router_->watermark();
  if (routed == kMinTimestamp) return 0;
  int64_t max_lag = 0;
  for (const auto& runtime : shard_runtime_) {
    const Timestamp seen =
        runtime->last_watermark.load(std::memory_order_relaxed);
    if (seen == kMinTimestamp) continue;  // no delivery yet: depth covers it
    max_lag = std::max<int64_t>(max_lag, routed - seen);
  }
  return max_lag;
}

void ParallelEngine::RefreshGauges() {
  for (uint32_t s = 0; s < options_.num_miner_shards; ++s) {
    ShardTelemetry& t = shard_telemetry_[s];
    t.segments_routed->Set(static_cast<int64_t>(router_->routed_to(s)));
    t.queue_depth->Set(static_cast<int64_t>(router_->queue(s).depth()));
    t.queue_high_watermark->Set(
        static_cast<int64_t>(router_->queue(s).high_watermark()));
    const Timestamp routed = router_->watermark();
    const Timestamp seen =
        shard_runtime_[s]->last_watermark.load(std::memory_order_relaxed);
    t.watermark_lag_ms->Set(
        (routed == kMinTimestamp || seen == kMinTimestamp) ? 0 : routed - seen);
  }
  for (uint32_t w = 0; w < options_.num_workers; ++w) {
    WorkerTelemetry& t = worker_telemetry_[w];
    t.event_queue_depth->Set(
        static_cast<int64_t>(workers_[w].events->depth()));
    t.event_queue_high_watermark->Set(
        static_cast<int64_t>(workers_[w].events->high_watermark()));
    t.segment_queue_depth->Set(static_cast<int64_t>(segments_[w]->depth()));
    t.segment_queue_high_watermark->Set(
        static_cast<int64_t>(segments_[w]->high_watermark()));
  }
  const SegmentPoolStats pool = segment_pool_.stats();
  pool_live_refs_->Set(static_cast<int64_t>(pool.live));
  pool_hits_->Set(static_cast<int64_t>(pool.pool_hits));
  pool_misses_->Set(static_cast<int64_t>(pool.slab_allocs));
  pool_recycled_bytes_->Set(static_cast<int64_t>(pool.recycled_bytes));
  pool_free_slabs_->Set(static_cast<int64_t>(pool.free));
  uptime_seconds_->Set(std::chrono::duration_cast<std::chrono::seconds>(
                           std::chrono::steady_clock::now() - start_time_)
                           .count());
}

std::vector<telemetry::MetricSample> ParallelEngine::SnapshotMetrics() {
  RefreshGauges();
  return registry_->Snapshot();
}

void ParallelEngine::Push(const ObjectEvent& event) {
  FCP_CHECK(!finished_);
  const uint32_t w = event.stream % options_.num_workers;
  // Lossless ingestion: block until the worker accepts the event.
  workers_[w].events->Push(event);
  ++events_pushed_;
  if (publish_) events_ingested_->Increment();
}

void ParallelEngine::PushBatch(std::span<const ObjectEvent> events) {
  FCP_CHECK(!finished_);
  size_t k = 0;
  while (k < events.size()) {
    // Hand each maximal run of same-worker events to the queue in one lock
    // acquisition. Per-worker FIFO order is exactly what Push produces, so
    // downstream segmentation is unchanged.
    const uint32_t w = events[k].stream % options_.num_workers;
    size_t run_end = k + 1;
    while (run_end < events.size() &&
           events[run_end].stream % options_.num_workers == w) {
      ++run_end;
    }
    push_batch_scratch_.assign(events.begin() + static_cast<ptrdiff_t>(k),
                               events.begin() + static_cast<ptrdiff_t>(run_end));
    workers_[w].events->PushAll(&push_batch_scratch_);
    k = run_end;
  }
  events_pushed_ += events.size();
  if (publish_ && !events.empty()) events_ingested_->Increment(events.size());
}

void ParallelEngine::Finish() {
  if (finished_) return;
  finished_ = true;
  for (Worker& worker : workers_) worker.events->Close();
  for (Worker& worker : workers_) {
    if (worker.thread.joinable()) worker.thread.join();
  }
  // All workers flushed their trailing windows before exiting; now the
  // segment queues can be closed and drained by the merge thread.
  for (auto& queue : segments_) queue->Close();
  if (merge_thread_.joinable()) merge_thread_.join();
  // The merge routed everything; close the shard queues and let the miners
  // drain them.
  router_->Close();
  for (std::thread& thread : shard_threads_) {
    if (thread.joinable()) thread.join();
  }

  // Merge the per-shard outputs into the collector. Each (trigger, pattern)
  // pair is emitted by exactly one shard (the owner of the pattern's
  // minimum object), and the Apriori miners emit a trigger's patterns in
  // (size, lexicographic) order, so sorting the union by (trigger, size,
  // pattern) reproduces the serial offer order — suppression-window
  // decisions match a serial run. With one shard the buffer already is the
  // serial order (whatever the miner emitted), so it is offered verbatim.
  if (options_.num_miner_shards == 1) {
    collector_.OfferAll(shard_mined_[0]);
    shard_mined_[0].clear();
    return;
  }
  std::vector<Fcp> merged;
  size_t total = 0;
  for (const std::vector<Fcp>& buffer : shard_mined_) total += buffer.size();
  merged.reserve(total);
  for (std::vector<Fcp>& buffer : shard_mined_) {
    for (Fcp& fcp : buffer) merged.push_back(std::move(fcp));
    buffer.clear();
  }
  std::sort(merged.begin(), merged.end(), [](const Fcp& a, const Fcp& b) {
    if (a.trigger != b.trigger) return a.trigger < b.trigger;
    if (a.objects.size() != b.objects.size()) {
      return a.objects.size() < b.objects.size();
    }
    return a.objects < b.objects;
  });
  collector_.OfferAll(merged);
}

void ParallelEngine::WorkerLoop(uint32_t worker_index) {
  char thread_name[32];
  std::snprintf(thread_name, sizeof(thread_name), "worker-%u", worker_index);
  trace::SetThreadName(thread_name);
  prof::ThreadScope prof_scope(thread_name);
  std::unordered_map<StreamId, std::unique_ptr<Segmenter>> segmenters;
  // Worker-local scratch ids; the merge thread assigns the final, globally
  // monotone ids in consumption order (index posting lists rely on segment
  // ids increasing in insertion order).
  SegmentIdGen scratch_ids;
  std::vector<SegmentRef> completed;

  BoundedQueue<SegmentRef>& out = *segments_[worker_index];
  auto emit = [&](std::vector<SegmentRef>& batch) {
    for (SegmentRef& segment : batch) {
      // The span covers the push, so backpressure from a full segment queue
      // is visible as a stretched worker/segment slice; the flow-begin is
      // the tail of the arrow the merge thread extends.
      const uint64_t flow = WorkerFlowId(worker_index, segment->id());
      FCP_TRACE_SPAN_FLOW("worker/segment", flow,
                          static_cast<uint32_t>(segment->length()));
      FCP_TRACE_FLOW_BEGIN("segment", flow);
      // Blocking push: backpressure without spinning. False = shutdown.
      if (!out.Push(std::move(segment))) return;
    }
    batch.clear();
  };

  obs::StageHeartbeat* heartbeat =
      worker_heartbeats_.empty() ? nullptr : worker_heartbeats_[worker_index];
  while (true) {
    if (heartbeat != nullptr) heartbeat->MarkIdle(true);
    auto event = workers_[worker_index].events->Pop();
    if (!event) break;
    if (heartbeat != nullptr) heartbeat->MarkIdle(false);
    auto it = segmenters.find(event->stream);
    if (it == segmenters.end()) {
      it = segmenters
               .emplace(event->stream,
                        std::make_unique<Segmenter>(event->stream, params_.xi,
                                                    &scratch_ids,
                                                    &segment_pool_))
               .first;
    }
    completed.clear();
    it->second->Push(event->object, event->time, &completed);
    emit(completed);
    if (heartbeat != nullptr) heartbeat->Beat();
  }
  // Queue closed: flush trailing windows.
  completed.clear();
  for (auto& [stream, segmenter] : segmenters) segmenter->Flush(&completed);
  emit(completed);
}

void ParallelEngine::MergeLoop() {
  // Merge the per-worker segment streams by end time: processing the
  // smallest available end time keeps the mining watermark aligned with a
  // serial run, so no worker's supporters expire early just because another
  // worker raced ahead. A worker that stays quiet for merge_idle_timeout_us
  // while others have segments waiting is skipped until it produces again.
  trace::SetThreadName("merge");
  prof::ThreadScope prof_scope("merge");
  obs::StageHeartbeat* heartbeat = merge_heartbeat_;
  const uint32_t n = options_.num_workers;
  std::vector<SegmentRef> heads(n);  // null slot = no head buffered
  std::vector<bool> exhausted(n, false);
  SegmentIdGen final_ids;
  uint64_t moves_published = 0;
  uint64_t rounds_published = 0;
  uint64_t backfills_published = 0;

  while (true) {
    // Refill empty head slots without blocking.
    bool any_head = false;
    bool missing_active_head = false;
    for (uint32_t w = 0; w < n; ++w) {
      if (exhausted[w] || heads[w]) {
        any_head |= static_cast<bool>(heads[w]);
        continue;
      }
      if (auto segment = segments_[w]->TryPop()) {
        heads[w] = std::move(*segment);
        any_head = true;
      } else if (segments_[w]->closed()) {
        // Drain anything that raced in between TryPop and closed().
        if (auto last = segments_[w]->TryPop()) {
          heads[w] = std::move(*last);
          any_head = true;
        } else {
          exhausted[w] = true;
        }
      } else {
        missing_active_head = true;
      }
    }

    if (!any_head) {
      bool all_exhausted = true;
      for (uint32_t w = 0; w < n; ++w) all_exhausted &= exhausted[w];
      if (all_exhausted) break;
      // Nothing to merge: block on the first still-active queue until it
      // produces, closes, or the timeout passes (then re-poll the others).
      if (publish_) merge_stalls_->Increment();
      if (heartbeat != nullptr) heartbeat->MarkIdle(true);
      for (uint32_t w = 0; w < n; ++w) {
        if (exhausted[w]) continue;
        if (auto segment =
                segments_[w]->PopFor(options_.merge_idle_timeout_us)) {
          heads[w] = std::move(*segment);
        }
        break;
      }
      continue;
    }
    if (heartbeat != nullptr) heartbeat->MarkIdle(false);

    if (missing_active_head) {
      // Give quiet workers a bounded chance to contribute the next-smallest
      // end time before we commit to the current minimum. Each round blocks
      // on the quiet queues' condition variables instead of busy-sleeping.
      int64_t waited_us = 0;
      while (missing_active_head &&
             waited_us < options_.merge_idle_timeout_us) {
        missing_active_head = false;
        for (uint32_t w = 0; w < n; ++w) {
          if (exhausted[w] || heads[w]) continue;
          if (auto segment = segments_[w]->PopFor(100)) {
            heads[w] = std::move(*segment);
          } else if (segments_[w]->closed()) {
            exhausted[w] = true;
          } else {
            missing_active_head = true;
          }
          waited_us += 100;
        }
      }
    }

    // Route the head with the smallest end time.
    uint32_t best = n;
    for (uint32_t w = 0; w < n; ++w) {
      if (!heads[w]) continue;
      if (best == n || heads[w]->end_time() < heads[best]->end_time()) {
        best = w;
      }
    }
    FCP_DCHECK(best < n);
    SegmentRef segment = std::move(heads[best]);
    // Compute the worker-hop flow id from the scratch id BEFORE the relabel
    // renames it; the ref is still unique here (the worker queue handed over
    // its only reference), so the rename is race-free by construction.
    const uint64_t worker_flow = WorkerFlowId(best, segment->id());
    segment.RelabelId(final_ids.Next());
    {
      // One slice per routed segment: the flow-step receives the worker's
      // arrow, the flow-begin (keyed by the post-relabel global id, the same
      // id the router stamps into each delivery) fans out to every shard
      // that mines this segment. Routing blocks on full shard queues, so
      // shard backpressure shows up as a stretched merge/route slice.
      FCP_TRACE_SPAN_FLOW("merge/route", segment->id(),
                          static_cast<uint32_t>(segment->length()));
      FCP_TRACE_FLOW_STEP("segment", worker_flow);
      FCP_TRACE_FLOW_BEGIN("segment", segment->id());
      router_->Route(segment);
    }
    if (rebalancer_ != nullptr) {
      rebalancer_->ObserveSegment(*segment);
      if (auto next = rebalancer_->MaybeRebalance(*router_)) {
        // Migration: backfill the new owners' indexes through the delivery
        // path, then switch routing to the successor snapshot. The span's
        // duration is the routing-thread cost of the migration (backfill
        // enqueues, possibly blocking on full shard queues).
        FCP_TRACE_SPAN_FLOW("router/rebalance", next->version(),
                            rebalancer_->stats().objects_moved);
        Stopwatch migrate_timer;
        router_->ApplyPlacement(std::move(next));
        if (publish_) {
          migration_latency_us_->Record(
              static_cast<uint64_t>(migrate_timer.ElapsedNanos()) / 1000);
        }
      }
      if (publish_) {
        imbalance_permille_->Set(rebalancer_->imbalance_permille());
        // Counters are monotone; publish the deltas since the last loop.
        const RebalancerStats& rstats = rebalancer_->stats();
        if (rstats.objects_moved > moves_published) {
          migrations_->Increment(rstats.objects_moved - moves_published);
          moves_published = rstats.objects_moved;
        }
        if (rstats.rounds_triggered > rounds_published) {
          rebalance_rounds_->Increment(rstats.rounds_triggered -
                                       rounds_published);
          rounds_published = rstats.rounds_triggered;
        }
        const uint64_t backfills = router_->stats().backfill_deliveries;
        if (backfills > backfills_published) {
          backfill_deliveries_->Increment(backfills - backfills_published);
          backfills_published = backfills;
        }
      }
    }
    ++segments_completed_;
    if (heartbeat != nullptr) heartbeat->Beat();
    if (publish_) {
      segments_completed_metric_->Increment();
      // How far the just-routed segment trails the stream-time watermark:
      // nonzero when a straggler worker's older segment lands after newer
      // data was already routed (merge-order skew).
      watermark_lag_ms_->Set(router_->watermark() - segment->end_time());
    }
  }
}

void ParallelEngine::ProcessDelivery(uint32_t shard_index,
                                     ShardDelivery&& delivery, bool stolen) {
  FcpMiner& miner = *shard_miners_[shard_index];
  ShardRuntime& runtime = *shard_runtime_[shard_index];
  ShardTelemetry& telemetry = shard_telemetry_[shard_index];
  // The migration fence, consumer side: adopt the snapshot this delivery was
  // routed under before any ownership decision. Placement flips strictly
  // between deliveries, so one segment is never mined under two placements.
  if (delivery.placement.get() != runtime.active_placement.get()) {
    miner.SetPlacement(delivery.placement.get());
    runtime.active_placement = delivery.placement;
  }
  // Adopt the router's global watermark before mining: a shard only sees
  // the segments containing its objects, so its own max-end-time anchor
  // can lag the merge's and would expire supporters later than a serial
  // run (breaking shard-count invariance of the output).
  miner.AdvanceWatermark(delivery.watermark);
  // Per-shard lag mirror + heartbeat: stolen deliveries credit the VICTIM's
  // stage (its queue is the one draining), which is exactly what keeps a
  // skewed-but-stolen-from shard from reading as stalled.
  runtime.last_watermark.store(delivery.watermark, std::memory_order_relaxed);
  if (!shard_heartbeats_.empty() &&
      shard_heartbeats_[shard_index] != nullptr) {
    shard_heartbeats_[shard_index]->Beat();
  }
  if (delivery.index_only) {
    // Migration backfill: this shard just became an owner of one of the
    // segment's objects; index it so upcoming triggers see every valid
    // supporter, but do not mine (its route-time owners already did).
    FCP_TRACE_SPAN_FLOW("shard/index_backfill", delivery.trace_flow,
                        shard_index);
    miner.AddSegmentIndexOnly(*delivery.segment);
    if (publish_) {
      telemetry.miner.PublishDelta(miner.stats(), &telemetry.published);
      telemetry.miner.PublishIntrospection(miner.Introspect());
    }
    return;
  }
  std::vector<Fcp>& mined = runtime.mined_scratch;
  mined.clear();
  {
    // The flow-end closes the arrow the merge thread began under the same
    // id (the router-stamped trace_flow), tying this mine slice to the
    // segment's route slice across the thread boundary — for stolen
    // segments the arrow lands on the thief's thread track, which is how
    // migrations of *work* (not ownership) show up in the trace.
    FCP_TRACE_SPAN_FLOW(stolen ? "shard/steal" : "shard/mine",
                        delivery.trace_flow, shard_index);
    FCP_TRACE_FLOW_END("segment", delivery.trace_flow);
    const int64_t slow_ns = trace::SlowOpThresholdNs();
    if (slow_ns > 0) {
      Stopwatch timer;
      miner.AddSegment(*delivery.segment, &mined);
      const int64_t elapsed = timer.ElapsedNanos();
      if (elapsed >= slow_ns) {
        DumpSlowOp("shard/mine", *delivery.segment, miner, shard_index,
                   elapsed);
      }
    } else {
      miner.AddSegment(*delivery.segment, &mined);
    }
  }
  std::vector<Fcp>& buffer = shard_mined_[shard_index];
  for (Fcp& fcp : mined) buffer.push_back(std::move(fcp));
  if (publish_) {
    if (stolen) segments_stolen_->Increment();
    // Segment->discovery latency: shard-queue wait + mining, measured
    // from the router's enqueue stamp.
    telemetry.discovery_latency_us->Record(
        static_cast<uint64_t>(
            std::max<int64_t>(0, SteadyNowNs() - delivery.routed_at_ns)) /
        1000);
    // The caller holds this shard's runtime mutex (or is its only thread),
    // so delta-publishing the miner's plain-counter stats is race-free; the
    // reporter only reads the atomics.
    telemetry.miner.PublishDelta(miner.stats(), &telemetry.published);
    telemetry.miner.PublishIntrospection(miner.Introspect());
  }
}

bool ParallelEngine::TrySteal(uint32_t thief_index) {
  const uint32_t num_shards = options_.num_miner_shards;
  // Victim: the deepest queue above the threshold. Depth reads are racy
  // snapshots — fine, a stale pick just steals slightly less optimally.
  uint32_t victim = num_shards;
  size_t best_depth = options_.steal_min_depth - 1;
  for (uint32_t s = 0; s < num_shards; ++s) {
    if (s == thief_index) continue;
    const size_t depth = router_->queue(s).depth();
    if (depth > best_depth) {
      victim = s;
      best_depth = depth;
    }
  }
  if (victim == num_shards) return false;
  ShardRuntime& runtime = *shard_runtime_[victim];
  // try_lock, not lock: if the victim (or another thief) is mid-segment the
  // queue is already being drained — blocking here would serialize thieves
  // behind work that is not theirs.
  std::unique_lock<std::mutex> lock(runtime.mutex, std::try_to_lock);
  if (!lock.owns_lock()) return false;
  auto delivery = router_->queue(victim).TryPop();
  if (!delivery.has_value()) return false;
  // Mine with the VICTIM's miner under its mutex: ownership filtering,
  // index state and output buffer all stay the victim shard's — stealing
  // moves work between threads, never patterns between shards.
  ProcessDelivery(victim, std::move(*delivery), /*stolen=*/true);
  return true;
}

void ParallelEngine::ShardLoop(uint32_t shard_index) {
  char thread_name[32];
  std::snprintf(thread_name, sizeof(thread_name), "shard-%u", shard_index);
  trace::SetThreadName(thread_name);
  prof::ThreadScope prof_scope(thread_name);
  BoundedQueue<ShardDelivery>& queue = router_->queue(shard_index);
  obs::StageHeartbeat* heartbeat =
      shard_heartbeats_.empty() ? nullptr : shard_heartbeats_[shard_index];

  if (!options_.steal) {
    // No thieves: this thread is the only one touching the shard's miner,
    // queue consumer side and runtime, so pop blocking and skip the mutex.
    while (true) {
      if (heartbeat != nullptr) heartbeat->MarkIdle(true);
      auto delivery = queue.Pop();
      if (!delivery) break;
      if (heartbeat != nullptr) heartbeat->MarkIdle(false);
      ProcessDelivery(shard_index, std::move(*delivery), /*stolen=*/false);
    }
    return;
  }

  // Stealing: every (pop, mine) pair happens under the owning shard's
  // runtime mutex so owner and thieves serialize and per-shard FIFO order
  // is preserved. WaitNonEmptyFor paces the loop off the queue's condition
  // variable (its timeout is also the idle/drain polling cadence — no
  // spinning).
  constexpr int64_t kIdleWaitUs = 200;
  while (true) {
    if (heartbeat != nullptr) heartbeat->MarkIdle(true);
    if (queue.WaitNonEmptyFor(kIdleWaitUs)) {
      if (heartbeat != nullptr) heartbeat->MarkIdle(false);
      std::lock_guard<std::mutex> lock(shard_runtime_[shard_index]->mutex);
      if (auto delivery = queue.TryPop()) {
        ProcessDelivery(shard_index, std::move(*delivery), /*stolen=*/false);
      }
      continue;
    }
    // Own queue empty right now: help the most-loaded shard instead of
    // sleeping through the skew.
    if (TrySteal(shard_index)) continue;
    if (queue.closed() && queue.depth() == 0) {
      // Own work is finished for good; exit once nothing is left to steal
      // anywhere (the WaitNonEmptyFor timeout above paces this check).
      bool all_done = true;
      for (uint32_t s = 0; s < options_.num_miner_shards && all_done; ++s) {
        BoundedQueue<ShardDelivery>& other = router_->queue(s);
        all_done = other.closed() && other.depth() == 0;
      }
      if (all_done) break;
    }
  }
}

namespace {

void AppendQueueJson(std::string* out, const char* key, size_t depth,
                     size_t high_watermark, size_t capacity) {
  out->append("\"");
  out->append(key);
  out->append("\":{\"depth\":" + std::to_string(depth) +
              ",\"high_watermark\":" + std::to_string(high_watermark) +
              ",\"capacity\":" + std::to_string(capacity) + "}");
}

}  // namespace

std::string ParallelEngine::StatusJson() const {
  // Every field below comes from a relaxed atomic, a mutex-guarded queue
  // accessor, or the pool's locked stats snapshot — never from the plain
  // routing-thread state (stats(), placement()). Rows are racy relative to
  // one another; each is individually coherent.
  const Timestamp watermark = router_->watermark();
  std::string out = "{\"engine\":\"parallel\"";
  out += ",\"workers\":" + std::to_string(options_.num_workers);
  out += ",\"shards\":" + std::to_string(options_.num_miner_shards);
  out += ",\"rebalance\":";
  out += options_.rebalance ? "true" : "false";
  out += ",\"steal\":";
  out += options_.steal ? "true" : "false";
  out += ",\"watermark\":" +
         std::to_string(watermark == kMinTimestamp ? 0 : watermark);
  out += ",\"watermark_lag_ms\":" + std::to_string(WatermarkLagMs());
  out += ",\"placement_version\":" +
         std::to_string(router_->placement_version());
  out += ",\"events_ingested\":" + std::to_string(events_ingested_->Value());
  out += ",\"segments_completed\":" +
         std::to_string(segments_completed_metric_->Value());
  const SegmentPoolStats pool = segment_pool_.stats();
  out += ",\"pool\":{\"live_refs\":" + std::to_string(pool.live) +
         ",\"free_slabs\":" + std::to_string(pool.free) +
         ",\"hits\":" + std::to_string(pool.pool_hits) +
         ",\"misses\":" + std::to_string(pool.slab_allocs) +
         ",\"recycled_bytes\":" + std::to_string(pool.recycled_bytes) + "}";
  if (rebalancer_ != nullptr) {
    const Rebalancer::LiveStats rstats = rebalancer_->SnapshotStats();
    out += ",\"rebalancer\":{\"rounds\":" + std::to_string(rstats.rounds) +
           ",\"rounds_triggered\":" +
           std::to_string(rstats.rounds_triggered) +
           ",\"objects_moved\":" + std::to_string(rstats.objects_moved) +
           ",\"imbalance_permille\":" +
           std::to_string(rstats.imbalance_permille) + "}";
  }
  out += ",\"worker_queues\":[";
  for (uint32_t w = 0; w < options_.num_workers; ++w) {
    if (w > 0) out += ",";
    out += "{\"worker\":" + std::to_string(w) + ",";
    AppendQueueJson(&out, "events", workers_[w].events->depth(),
                    workers_[w].events->high_watermark(),
                    options_.event_queue_capacity);
    out += ",";
    AppendQueueJson(&out, "segments", segments_[w]->depth(),
                    segments_[w]->high_watermark(),
                    options_.segment_queue_capacity);
    out += "}";
  }
  out += "],\"shard_queues\":[";
  for (uint32_t s = 0; s < options_.num_miner_shards; ++s) {
    if (s > 0) out += ",";
    const Timestamp seen =
        shard_runtime_[s]->last_watermark.load(std::memory_order_relaxed);
    out += "{\"shard\":" + std::to_string(s) +
           ",\"routed\":" + std::to_string(router_->routed_to(s)) + ",";
    AppendQueueJson(&out, "deliveries", router_->queue(s).depth(),
                    router_->queue(s).high_watermark(),
                    options_.shard_queue_capacity);
    out += ",\"watermark_lag_ms\":" +
           std::to_string((watermark == kMinTimestamp || seen == kMinTimestamp)
                              ? 0
                              : watermark - seen);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace fcp
