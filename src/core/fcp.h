// Pattern and result types of the public mining API.

#ifndef FCP_CORE_FCP_H_
#define FCP_CORE_FCP_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace fcp {

/// A co-occurrence pattern: a set of objects, stored as a sorted vector of
/// distinct ObjectIds (the canonical form used everywhere in the library).
using Pattern = std::vector<ObjectId>;

/// One frequent co-occurrence pattern discovery (Definition 3).
///
/// Emitted by a miner at the moment the pattern's theta-th supporting stream
/// materializes (i.e., when the triggering segment completes). The same
/// pattern may be re-emitted by later triggers while it stays frequent;
/// ResultCollector deduplicates if the application wants unique patterns.
struct Fcp {
  /// The pattern (sorted, distinct).
  Pattern objects;

  /// The distinct streams supporting the discovery (sorted). Size >= theta.
  std::vector<StreamId> streams;

  /// Time interval covering all supporting occurrences (segment
  /// granularity). window_end - window_start <= tau.
  Timestamp window_start = 0;
  Timestamp window_end = 0;

  /// The segment whose completion triggered the discovery.
  SegmentId trigger = kInvalidSegmentId;

  /// "{o1,o2}x5@[t0,t1]".
  std::string DebugString() const;
};

/// Canonical ordering for test comparisons: by pattern, then trigger.
bool FcpLess(const Fcp& a, const Fcp& b);

}  // namespace fcp

#endif  // FCP_CORE_FCP_H_
