#include "core/pattern_report.h"

#include <algorithm>

namespace fcp {

namespace {

bool IsStrictSubset(const Pattern& small, const Pattern& big) {
  return small.size() < big.size() &&
         std::includes(big.begin(), big.end(), small.begin(), small.end());
}

}  // namespace

std::vector<Fcp> MaximalOnly(const std::vector<Fcp>& fcps) {
  std::vector<Fcp> result;
  for (size_t i = 0; i < fcps.size(); ++i) {
    bool dominated = false;
    bool duplicate_earlier = false;
    for (size_t j = 0; j < fcps.size() && !dominated; ++j) {
      if (i == j) continue;
      if (IsStrictSubset(fcps[i].objects, fcps[j].objects)) dominated = true;
      if (j < i && fcps[j].objects == fcps[i].objects) {
        duplicate_earlier = true;
      }
    }
    if (!dominated && !duplicate_earlier) result.push_back(fcps[i]);
  }
  return result;
}

void PatternSupportIndex::Add(const Fcp& fcp) {
  Best& best = best_[fcp.objects];
  if (fcp.streams.size() > best.support) {
    best.support = fcp.streams.size();
    best.window_start = fcp.window_start;
    best.window_end = fcp.window_end;
  }
}

void PatternSupportIndex::AddAll(const std::vector<Fcp>& fcps) {
  for (const Fcp& fcp : fcps) Add(fcp);
}

size_t PatternSupportIndex::SupportOf(const Pattern& pattern) const {
  auto it = best_.find(pattern);
  return it == best_.end() ? 0 : it->second.support;
}

std::vector<PatternSupportIndex::Entry> PatternSupportIndex::TopK(
    size_t k) const {
  std::vector<Entry> entries;
  entries.reserve(best_.size());
  for (const auto& [pattern, best] : best_) {
    entries.push_back(
        Entry{pattern, best.support, best.window_start, best.window_end});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.pattern < b.pattern;
            });
  if (entries.size() > k) entries.resize(k);
  return entries;
}

std::vector<PatternSupportIndex::Entry>
PatternSupportIndex::MaximalPatterns() const {
  // Group patterns by size, longest first; a pattern is maximal iff no
  // longer pattern contains it. n = distinct patterns; the subset test only
  // runs against strictly longer patterns.
  std::vector<Entry> entries;
  for (const auto& [pattern, best] : best_) {
    entries.push_back(
        Entry{pattern, best.support, best.window_start, best.window_end});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.pattern.size() != b.pattern.size()) {
                return a.pattern.size() > b.pattern.size();
              }
              return a.pattern < b.pattern;
            });
  std::vector<Entry> maximal;
  for (const Entry& entry : entries) {
    bool dominated = false;
    for (const Entry& longer : maximal) {
      if (IsStrictSubset(entry.pattern, longer.pattern)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) maximal.push_back(entry);
  }
  std::sort(maximal.begin(), maximal.end(),
            [](const Entry& a, const Entry& b) { return a.pattern < b.pattern; });
  return maximal;
}

}  // namespace fcp
