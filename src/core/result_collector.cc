#include "core/result_collector.h"

namespace fcp {

bool ResultCollector::Offer(const Fcp& fcp) {
  ++offered_;
  auto [it, is_new] = last_report_.emplace(fcp.objects, fcp.window_end);
  if (is_new) {
    ++distinct_by_size_[static_cast<uint32_t>(fcp.objects.size())];
  } else {
    if (suppression_window_ > 0 &&
        fcp.window_end - it->second < suppression_window_) {
      ++suppressed_;
      return false;
    }
    it->second = fcp.window_end;
  }
  results_.push_back(fcp);
  return true;
}

void ResultCollector::OfferAll(const std::vector<Fcp>& fcps,
                               std::vector<Fcp>* accepted) {
  for (const Fcp& fcp : fcps) {
    if (Offer(fcp) && accepted != nullptr) accepted->push_back(fcp);
  }
}

void ResultCollector::Clear() {
  last_report_.clear();
  results_.clear();
  distinct_by_size_.clear();
  offered_ = 0;
  suppressed_ = 0;
}

}  // namespace fcp
