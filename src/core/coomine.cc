#include "core/coomine.h"

#include <algorithm>
#include <bit>

#include "common/check.h"
#include "telemetry/trace.h"
#include "util/kernels/kernels.h"
#include "util/stopwatch.h"

namespace fcp {

CooMine::CooMine(const MiningParams& params, CooMineOptions options,
                 const ShardSpec& shard)
    : params_(params), options_(options), shard_(shard), tree_(options.seg_tree) {
  FCP_CHECK(params.Validate().ok());
  FCP_CHECK(shard.count >= 1 && shard.index < shard.count);
}

void CooMine::AddSegment(const Segment& segment, std::vector<Fcp>* out) {
  // Validity is anchored at the stream-time watermark (max end time seen):
  // segments complete out of end-time order across streams, and a monotonic
  // anchor keeps lazy deletion consistent with per-trigger re-evaluation.
  watermark_ = std::max(watermark_, segment.end_time());
  const Timestamp now = watermark_;

  // --- Mining phase: SLCP + Apriori over the LCP table. -------------------
  Stopwatch mine_timer;
  scratch_.expired.clear();
  {
    FCP_TRACE_SPAN("coomine/slcp");
    tree_.SlcpInto(segment, now, params_.tau, &scratch_.expired, &scratch_.lcp,
                   shard_);
  }
  stats_.lcp_rows += scratch_.lcp.rows.size();
  {
    FCP_TRACE_SPAN("coomine/apriori");
    MineFromLcps(segment, scratch_.lcp, out);
  }
  stats_.mining_ns += mine_timer.ElapsedNanos();

  // --- Maintenance phase: lazy deletion + insert + periodic sweep. --------
  FCP_TRACE_SPAN("coomine/maintenance");
  Stopwatch maint_timer;
  for (SegmentId id : scratch_.expired) tree_.Remove(id);
  stats_.segments_expired += scratch_.expired.size();
  if (options_.periodic_sweep &&
      (last_sweep_ == kMinTimestamp ||
       now - last_sweep_ >= params_.maintenance_interval)) {
    if (last_sweep_ != kMinTimestamp) {
      stats_.segments_expired += tree_.RemoveExpired(now, params_.tau);
      ++stats_.maintenance_runs;
    }
    last_sweep_ = now;
  }
  tree_.Insert(segment);
  stats_.maintenance_ns += maint_timer.ElapsedNanos();

  ++stats_.segments_processed;
}

void CooMine::AddSegmentIndexOnly(const Segment& segment) {
  // Migration backfill: index the segment exactly as AddSegment's
  // maintenance phase would — same watermark anchor, same periodic-sweep
  // cadence — with SLCP and the Apriori pass skipped. The Fcp output is
  // insensitive to Hlist chain order (streams are sorted and the window is
  // a min/max), so inserting an old segment after newer ones is safe.
  watermark_ = std::max(watermark_, segment.end_time());
  const Timestamp now = watermark_;
  FCP_TRACE_SPAN("coomine/index_backfill");
  Stopwatch maint_timer;
  if (options_.periodic_sweep &&
      (last_sweep_ == kMinTimestamp ||
       now - last_sweep_ >= params_.maintenance_interval)) {
    if (last_sweep_ != kMinTimestamp) {
      stats_.segments_expired += tree_.RemoveExpired(now, params_.tau);
      ++stats_.maintenance_runs;
    }
    last_sweep_ = now;
  }
  tree_.Insert(segment);
  stats_.maintenance_ns += maint_timer.ElapsedNanos();
  ++stats_.segments_indexed_only;
}

void CooMine::ForceMaintenance(Timestamp now) {
  Stopwatch maint_timer;
  stats_.segments_expired += tree_.RemoveExpired(now, params_.tau);
  ++stats_.maintenance_runs;
  last_sweep_ = now;
  stats_.maintenance_ns += maint_timer.ElapsedNanos();
}

void CooMine::PrefetchSegment(const Segment& segment) const {
  // Warm the Hlist head slots the upcoming AddSegment will probe. Capped:
  // beyond a few lines the prefetches evict each other before they help.
  constexpr size_t kPrefetchEntryCap = 16;
  size_t issued = 0;
  for (const SegmentEntry& entry : segment.entries()) {
    tree_.PrefetchObject(entry.object);
    if (++issued >= kPrefetchEntryCap) break;
  }
}

size_t CooMine::MemoryUsage() const { return tree_.MemoryUsage(); }

MinerIntrospection CooMine::Introspect() const {
  MinerIntrospection view;
  view.live_segments = tree_.num_segments();
  view.index_nodes = tree_.num_nodes();
  view.index_entries = tree_.total_objects();
  view.index_bytes = tree_.MemoryUsage();
  view.arena_bytes = tree_.ArenaBytes();
  view.compression_ratio = tree_.CompressionRatio();
  return view;
}

void CooMine::MineFromLcps(const Segment& segment, const LcpTable& lcp,
                           std::vector<Fcp>* out) {
  MiningScratch& s = scratch_;

  // Distinct probe objects, capped — the construction-time cache, same
  // result as DistinctObjectsCapped, copied into scratch.
  const std::vector<ObjectId>& distinct = segment.distinct_objects();
  s.objects.assign(distinct.begin(), distinct.end());
  if (params_.max_segment_objects > 0 &&
      s.objects.size() > params_.max_segment_objects) {
    s.objects.resize(params_.max_segment_objects);
  }
  if (s.objects.empty()) return;

  const size_t num_objects = s.objects.size();

  // Shard ownership of each probe object (all true for the serial shard).
  s.owned.resize(num_objects);
  bool any_owned = false;
  for (size_t oi = 0; oi < num_objects; ++oi) {
    s.owned[oi] = shard_.Owns(s.objects[oi]) ? 1 : 0;
    any_owned |= s.owned[oi] != 0;
  }
  // No owned probe object means no owned pattern can trigger here (every
  // pattern is a subset of the probe's objects).
  if (!any_owned) return;
  stats_.slcp_probes += num_objects;

  // Compact the LCP table to its *live* rows — rows sharing >= 1 owned probe
  // object — and build the per-object tidsets over live-row bit positions:
  // bit b of object_bits[oi] is set iff live row b's common set contains
  // objects[oi]. Every supporting row of an owned pattern contains the
  // pattern's (owned) minimum object, so dropping the other rows loses no
  // support; it shrinks the bitset width each shard pays for. Both sides of
  // the per-row merge are sorted, so one linear merge per row replaces a
  // binary search per (row, object) pair. Objects in a row's common set
  // beyond the max_segment_objects cap simply find no merge partner and are
  // skipped, as before.
  const size_t max_rows = lcp.rows.size();
  const size_t max_words = (max_rows + 63) / 64;
  s.object_bits.assign(num_objects * max_words, 0);
  s.live_rows.clear();
  for (size_t r = 0; r < max_rows; ++r) {
    const LcpTable::Row& row = lcp.rows[r];
    const ObjectId* c = lcp.CommonBegin(row);
    const ObjectId* ce = lcp.CommonEnd(row);
    s.row_match.clear();
    bool row_owned = false;
    size_t oi = 0;
    while (c != ce && oi < num_objects) {
      if (*c < s.objects[oi]) {
        ++c;
      } else if (s.objects[oi] < *c) {
        ++oi;
      } else {
        s.row_match.push_back(static_cast<uint32_t>(oi));
        row_owned |= s.owned[oi] != 0;
        ++c;
        ++oi;
      }
    }
    if (!row_owned) continue;  // cannot support any owned pattern
    const size_t b = s.live_rows.size();
    s.live_rows.push_back(static_cast<uint32_t>(r));
    const uint64_t bit_word = uint64_t{1} << (b % 64);
    const size_t word = b / 64;
    for (uint32_t match : s.row_match) {
      s.object_bits[match * max_words + word] |= bit_word;
    }
  }
  const size_t num_rows = s.live_rows.size();
  const size_t words = (num_rows + 63) / 64;  // bitset words per tidset
  // Repack the per-object bitsets to the live width (max_words >= words;
  // rows beyond num_rows never got a bit, so this is a pure shift-down).
  if (words != max_words) {
    for (size_t oi = 1; oi < num_objects; ++oi) {
      for (size_t w = 0; w < words; ++w) {
        s.object_bits[oi * words + w] = s.object_bits[oi * max_words + w];
      }
    }
    s.object_bits.resize(num_objects * words);
  }

  const Occurrence probe_occurrence{segment.stream(), segment.start_time(),
                                    segment.end_time()};

  // Evaluates one candidate from its tidset. The popcount prefilter is
  // exact pruning, not an approximation: popcount rows plus the probe is an
  // upper bound on distinct supporting streams, so failing it proves the
  // candidate infrequent without touching the rows. The kernel's
  // early-exit-at-threshold keeps that exactness: only the boolean
  // "popcount >= theta - 1" is consumed, never the count. On success,
  // s.occurrences holds the supporting occurrences (probe first) and
  // s.streams the sorted distinct stream ids.
  const kernels::KernelOps& ops = kernels::Ops();
  const size_t row_threshold =
      params_.theta == 0 ? 0 : static_cast<size_t>(params_.theta) - 1;

  // The slow path of candidate evaluation: materialize the supporting
  // occurrences and count distinct streams. Callers run the popcount
  // prefilter first.
  auto verify_streams = [&](const uint64_t* bits) -> bool {
    s.occurrences.clear();
    s.occurrences.push_back(probe_occurrence);
    for (size_t w = 0; w < words; ++w) {
      uint64_t word = bits[w];
      while (word != 0) {
        const size_t b = w * 64 + static_cast<size_t>(std::countr_zero(word));
        word &= word - 1;
        const LcpTable::Row& row = lcp.rows[s.live_rows[b]];
        s.occurrences.push_back(Occurrence{row.stream, row.start, row.end});
      }
    }
    s.streams.clear();
    for (const Occurrence& occ : s.occurrences) s.streams.push_back(occ.stream);
    std::sort(s.streams.begin(), s.streams.end());
    s.streams.erase(std::unique(s.streams.begin(), s.streams.end()),
                    s.streams.end());
    return s.streams.size() >= params_.theta;
  };

  auto evaluate = [&](const uint64_t* bits) -> bool {
    if (!ops.popcount_atleast(bits, words, row_threshold)) return false;
    return verify_streams(bits);
  };

  // Emits the Fcp for the pattern at `idx` (object indices, `size` of them)
  // from the evaluate() scratch. Allocation here is output, not overhead.
  auto emit = [&](const uint32_t* idx, size_t size) {
    Fcp fcp;
    fcp.objects.reserve(size);
    for (size_t i = 0; i < size; ++i) fcp.objects.push_back(s.objects[idx[i]]);
    fcp.streams.assign(s.streams.begin(), s.streams.end());
    fcp.trigger = segment.id();
    fcp.window_start = kMaxTimestamp;
    fcp.window_end = kMinTimestamp;
    for (const Occurrence& occ : s.occurrences) {
      fcp.window_start = std::min(fcp.window_start, occ.start);
      fcp.window_end = std::max(fcp.window_end, occ.end);
    }
    out->push_back(std::move(fcp));
    ++stats_.fcps_emitted;
  };

  // A pattern owned by this shard has an owned minimum object, and that
  // object must itself be a frequent singleton (supports only shrink as
  // patterns grow). So when every owned probe object is infrequent, the
  // delivery cannot emit anything — skip the level build outright. Most
  // deliveries of a sharded run are owned only via unpopular objects, which
  // fail the popcount prefilter immediately, so the gate is cheap; the
  // serial shard skips it (owned == everything, the level-1 loop below
  // does the same work once).
  if (!shard_.IsSingleton()) {
    bool any_owned_frequent = false;
    for (uint32_t oi = 0; oi < num_objects && !any_owned_frequent; ++oi) {
      if (!s.owned[oi]) continue;
      any_owned_frequent = evaluate(s.object_bits.data() + oi * words);
    }
    if (!any_owned_frequent) return;
  }

  // Level 1 (FCP_1): each object's tidset is its support. Non-owned
  // singletons stay in the level store — they are join partners for owned
  // size-2 candidates — but only owned ones are emitted. (Their tidsets only
  // cover live rows, an undercount that can never drop a singleton whose
  // owned superset is frequent: that superset's supporting rows are all
  // live.)
  s.level_idx.clear();
  s.level_bits.clear();
  for (uint32_t oi = 0; oi < num_objects; ++oi) {
    ++stats_.candidates_checked;
    const uint64_t* bits = s.object_bits.data() + oi * words;
    if (!evaluate(bits)) {
      ++stats_.candidates_pruned;
      continue;
    }
    s.level_idx.push_back(oi);
    s.level_bits.insert(s.level_bits.end(), bits, bits + words);
    if (params_.min_pattern_size <= 1 && s.owned[oi]) emit(&oi, 1);
  }

  // Level-wise Apriori: F_k x F_k join on a shared (k-1)-prefix, subset
  // prune, then tidset intersection with the joined-in object — the
  // candidate's support is parent_bits AND object_bits[last], carried to the
  // next level so no support is ever recomputed from the table.
  s.subset.clear();
  s.cand_bits.assign(words, 0);
  uint32_t level = 1;
  while (!s.level_idx.empty() &&
         (params_.max_pattern_size == 0 || level < params_.max_pattern_size)) {
    const size_t k = level;  // current pattern size
    const size_t level_count = s.level_idx.size() / k;
    ++level;
    s.next_idx.clear();
    s.next_bits.clear();

    // True iff every size-k subset of (prefix[0..k-1], last) obtained by
    // dropping a non-parent position is in the (lexicographically sorted)
    // level store. Binary search over the flat stride-k rows. Dropping
    // position 0 yields a subset whose minimum is prefix[1]; if this shard
    // does not own that minimum the subset belongs to another shard's store
    // and is skipped (conservative: pruning is an optimization, the tidset
    // intersection still rejects infrequent candidates exactly).
    auto all_subsets_frequent = [&](const uint32_t* prefix, uint32_t last) {
      s.subset.resize(k);
      for (size_t drop = 0; drop + 2 < k + 1; ++drop) {
        if (drop == 0 && k >= 2 && !s.owned[prefix[1]]) continue;
        size_t w = 0;
        for (size_t i = 0; i < k; ++i) {
          if (i != drop) s.subset[w++] = prefix[i];
        }
        s.subset[w] = last;
        size_t lo = 0, hi = level_count;
        bool found = false;
        while (lo < hi) {
          const size_t mid = (lo + hi) / 2;
          const uint32_t* row = s.level_idx.data() + mid * k;
          if (std::lexicographical_compare(row, row + k, s.subset.data(),
                                           s.subset.data() + k)) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }
        if (lo < level_count) {
          const uint32_t* row = s.level_idx.data() + lo * k;
          found = std::equal(row, row + k, s.subset.data());
        }
        if (!found) return false;
      }
      return true;
    };

    for (size_t i = 0; i < level_count; ++i) {
      const uint32_t* pi = s.level_idx.data() + i * k;
      // Size-2 candidates fix the pattern's minimum object: only extend
      // owned minima, so every pattern at level >= 2 has an owned minimum.
      if (k == 1 && !s.owned[pi[0]]) continue;
      const uint64_t* bi = s.level_bits.data() + i * words;
      for (size_t j = i + 1; j < level_count; ++j) {
        const uint32_t* pj = s.level_idx.data() + j * k;
        // Patterns sharing the first k-1 indices are contiguous in
        // lexicographic order; stop as soon as the prefix diverges.
        if (!std::equal(pi, pi + k - 1, pj)) break;
        const uint32_t last = pj[k - 1];
        if (!all_subsets_frequent(pi, last)) {
          ++stats_.candidates_pruned;
          continue;
        }
        ++stats_.candidates_checked;
        // Fused AND + popcount prefilter: the candidate's tidset is written
        // in full (carried to the next level on success) while the support
        // upper bound is counted in the same pass.
        const uint64_t* bo = s.object_bits.data() + last * words;
        if (!ops.and_popcount_atleast(bi, bo, s.cand_bits.data(), words,
                                      row_threshold) ||
            !verify_streams(s.cand_bits.data())) {
          ++stats_.candidates_pruned;
          continue;
        }
        s.next_idx.insert(s.next_idx.end(), pi, pi + k);
        s.next_idx.push_back(last);
        s.next_bits.insert(s.next_bits.end(), s.cand_bits.begin(),
                           s.cand_bits.end());
        if (level >= params_.min_pattern_size) {
          emit(s.next_idx.data() + s.next_idx.size() - (k + 1), k + 1);
        }
      }
    }
    std::swap(s.level_idx, s.next_idx);
    std::swap(s.level_bits, s.next_bits);
  }
}

}  // namespace fcp
