#include "core/coomine.h"

#include <algorithm>

#include "common/check.h"
#include "core/apriori.h"
#include "util/stopwatch.h"

namespace fcp {

CooMine::CooMine(const MiningParams& params, CooMineOptions options)
    : params_(params), options_(options), tree_(options.seg_tree) {
  FCP_CHECK(params.Validate().ok());
}

void CooMine::AddSegment(const Segment& segment, std::vector<Fcp>* out) {
  // Validity is anchored at the stream-time watermark (max end time seen):
  // segments complete out of end-time order across streams, and a monotonic
  // anchor keeps lazy deletion consistent with per-trigger re-evaluation.
  watermark_ = std::max(watermark_, segment.end_time());
  const Timestamp now = watermark_;

  // --- Mining phase: SLCP + Apriori over the LCP table. -------------------
  Stopwatch mine_timer;
  std::vector<SegmentId> expired;
  const std::vector<LcpRow> rows =
      tree_.Slcp(segment, now, params_.tau, &expired);
  stats_.lcp_rows += rows.size();
  MineFromLcps(segment, rows, out);
  stats_.mining_ns += mine_timer.ElapsedNanos();

  // --- Maintenance phase: lazy deletion + insert + periodic sweep. --------
  Stopwatch maint_timer;
  for (SegmentId id : expired) tree_.Remove(id);
  stats_.segments_expired += expired.size();
  if (options_.periodic_sweep &&
      (last_sweep_ == kMinTimestamp ||
       now - last_sweep_ >= params_.maintenance_interval)) {
    if (last_sweep_ != kMinTimestamp) {
      stats_.segments_expired += tree_.RemoveExpired(now, params_.tau);
      ++stats_.maintenance_runs;
    }
    last_sweep_ = now;
  }
  tree_.Insert(segment);
  stats_.maintenance_ns += maint_timer.ElapsedNanos();

  ++stats_.segments_processed;
}

void CooMine::ForceMaintenance(Timestamp now) {
  Stopwatch maint_timer;
  stats_.segments_expired += tree_.RemoveExpired(now, params_.tau);
  ++stats_.maintenance_runs;
  last_sweep_ = now;
  stats_.maintenance_ns += maint_timer.ElapsedNanos();
}

size_t CooMine::MemoryUsage() const { return tree_.MemoryUsage(); }

void CooMine::MineFromLcps(const Segment& segment,
                           const std::vector<LcpRow>& rows,
                           std::vector<Fcp>* out) {
  const std::vector<ObjectId> objects =
      DistinctObjectsCapped(segment, params_.max_segment_objects);
  if (objects.empty()) return;

  const Occurrence probe_occurrence{segment.stream(), segment.start_time(),
                                    segment.end_time()};

  // Rows per object, indexed by the object's position in `objects` (which
  // is sorted), for fast level-1 support and candidate verification without
  // hash lookups on the hot path.
  std::vector<std::vector<uint32_t>> rows_of_object(objects.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    for (ObjectId o : rows[r].common) {
      const auto it = std::lower_bound(objects.begin(), objects.end(), o);
      // The common set can contain objects beyond the max_segment_objects
      // cap; those are not candidates.
      if (it == objects.end() || *it != o) continue;
      rows_of_object[static_cast<size_t>(it - objects.begin())].push_back(
          static_cast<uint32_t>(r));
    }
  }
  auto object_index = [&](ObjectId o) -> const std::vector<uint32_t>* {
    const auto it = std::lower_bound(objects.begin(), objects.end(), o);
    if (it == objects.end() || *it != o) return nullptr;
    return &rows_of_object[static_cast<size_t>(it - objects.begin())];
  };

  // Gathers the supporting occurrences of `pattern` (probe + rows whose
  // common set includes the pattern, scanning the candidate rows of the
  // pattern's rarest object).
  auto support_of = [&](const Pattern& pattern) {
    std::vector<Occurrence> occurrences{probe_occurrence};
    const std::vector<uint32_t>* best = nullptr;
    for (ObjectId o : pattern) {
      const std::vector<uint32_t>* candidate_rows = object_index(o);
      if (candidate_rows == nullptr) return occurrences;  // probe only
      if (best == nullptr || candidate_rows->size() < best->size()) {
        best = candidate_rows;
      }
    }
    for (uint32_t r : *best) {
      const LcpRow& row = rows[r];
      if (pattern.size() > row.common.size()) continue;
      if (std::includes(row.common.begin(), row.common.end(), pattern.begin(),
                        pattern.end())) {
        occurrences.push_back(Occurrence{row.stream, row.start, row.end});
      }
    }
    return occurrences;
  };

  // Level 1 (FCP_1) straight from the table, then iterate Apriori levels.
  std::vector<Pattern> frequent;
  Pattern singleton(1);
  for (ObjectId o : objects) {
    singleton[0] = o;
    ++stats_.candidates_checked;
    auto fcp = MakeFcpIfFrequent(singleton, support_of(singleton),
                                 params_.theta, segment.id());
    if (!fcp.has_value()) continue;
    frequent.push_back(singleton);
    if (1 >= params_.min_pattern_size) {
      out->push_back(*std::move(fcp));
      ++stats_.fcps_emitted;
    }
  }

  uint32_t level = 1;
  while (!frequent.empty() &&
         (params_.max_pattern_size == 0 || level < params_.max_pattern_size)) {
    const std::vector<Pattern> candidates = GenerateCandidates(frequent);
    ++level;
    std::vector<Pattern> next;
    for (const Pattern& candidate : candidates) {
      ++stats_.candidates_checked;
      auto fcp = MakeFcpIfFrequent(candidate, support_of(candidate),
                                   params_.theta, segment.id());
      if (!fcp.has_value()) continue;
      next.push_back(candidate);
      if (level >= params_.min_pattern_size) {
        out->push_back(*std::move(fcp));
        ++stats_.fcps_emitted;
      }
    }
    frequent = std::move(next);
  }
}

}  // namespace fcp
