// Reference miner: a direct, unoptimized implementation of Definition 3 used
// as a correctness oracle. It stores segments verbatim and enumerates every
// subset of the trigger segment's objects — exponential, suitable only for
// tests and small examples.

#ifndef FCP_CORE_BRUTE_FORCE_H_
#define FCP_CORE_BRUTE_FORCE_H_

#include <deque>
#include <vector>

#include "common/params.h"
#include "core/miner.h"
#include "stream/segment.h"

namespace fcp {

class BruteForceMiner : public FcpMiner {
 public:
  /// `shard` restricts emission to patterns whose minimum object the shard
  /// owns, so the oracle can also check sharded runs shard-by-shard.
  explicit BruteForceMiner(const MiningParams& params,
                           const ShardSpec& shard = {});

  /// Aborts if the segment has more than 20 distinct objects after the
  /// max_segment_objects cap (2^20 subsets is the oracle's practical limit).
  void AddSegment(const Segment& segment, std::vector<Fcp>* out) override;
  void AddSegmentIndexOnly(const Segment& segment) override;
  void SetPlacement(const PlacementMap* map) override {
    shard_.placement = map;
  }
  void AdvanceWatermark(Timestamp now) override {
    watermark_ = now > watermark_ ? now : watermark_;
  }
  void ForceMaintenance(Timestamp now) override;
  size_t MemoryUsage() const override;
  const MinerStats& stats() const override { return stats_; }
  std::string_view name() const override { return "BruteForce"; }

 private:
  struct Stored {
    StreamId stream;
    Timestamp start;
    Timestamp end;
    std::vector<ObjectId> objects;  // sorted distinct
  };

  MiningParams params_;
  ShardSpec shard_;
  std::deque<Stored> segments_;
  MinerStats stats_;
  Timestamp watermark_ = kMinTimestamp;
};

}  // namespace fcp

#endif  // FCP_CORE_BRUTE_FORCE_H_
