// Post-processing of mined FCPs for presentation: maximal-pattern filtering
// and top-K ranking by stream support.
//
// Mining emits every frequent pattern (Theorem 3 guarantees all subsets of
// an FCP are FCPs), so a convoy of 4 vehicles produces 11 patterns of size
// >= 2. Applications usually want the *maximal* patterns ("this group
// travels together"), optionally ranked by how many streams support them.

#ifndef FCP_CORE_PATTERN_REPORT_H_
#define FCP_CORE_PATTERN_REPORT_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/types.h"
#include "core/fcp.h"

namespace fcp {

/// Returns the subset of `fcps` whose pattern is not a strict subset of any
/// other pattern in the batch. Ties on identical patterns keep the first
/// occurrence. O(n^2 * k) over the batch — batches are per-trigger and
/// small; for global reports use PatternSupportIndex below.
std::vector<Fcp> MaximalOnly(const std::vector<Fcp>& fcps);

/// Accumulates discoveries over a whole run and answers report queries:
/// best (max) stream support per distinct pattern, top-K patterns, and
/// maximal patterns among everything seen.
class PatternSupportIndex {
 public:
  /// Records a discovery (keeps the maximum stream support and the
  /// discovery window achieving it).
  void Add(const Fcp& fcp);
  void AddAll(const std::vector<Fcp>& fcps);

  /// Number of distinct patterns seen.
  size_t size() const { return best_.size(); }

  /// Best-known support for `pattern`, or 0 if never seen.
  size_t SupportOf(const Pattern& pattern) const;

  /// The K patterns with the highest stream support (ties broken by
  /// pattern order for determinism), as (pattern, support, window) records.
  struct Entry {
    Pattern pattern;
    size_t support = 0;
    Timestamp window_start = 0;
    Timestamp window_end = 0;
  };
  std::vector<Entry> TopK(size_t k) const;

  /// All patterns not strictly contained in another *seen* pattern, sorted.
  /// A pattern with higher support than its superset is still non-maximal
  /// set-wise; callers wanting support-aware pruning should use TopK.
  std::vector<Entry> MaximalPatterns() const;

  void Clear() { best_.clear(); }

 private:
  struct Best {
    size_t support = 0;
    Timestamp window_start = 0;
    Timestamp window_end = 0;
  };
  std::unordered_map<Pattern, Best, IdVectorHash> best_;
};

}  // namespace fcp

#endif  // FCP_CORE_PATTERN_REPORT_H_
