// CooMine (Section 5 of the paper): Seg-tree based FCP mining.
//
// For every completed segment: (1) SLCP finds the largest common CP between
// the new segment and each valid existing segment (the LCP table), then
// (2) an Apriori pass over the LCP table yields the FCPs the new segment
// completes. Expired segments discovered by the search are deleted lazily
// (the paper's LD strategy); a periodic sweep bounds memory.

#ifndef FCP_CORE_COOMINE_H_
#define FCP_CORE_COOMINE_H_

#include <vector>

#include "common/params.h"
#include "core/miner.h"
#include "index/seg_tree.h"
#include "stream/segment.h"

namespace fcp {

/// CooMine-specific knobs (the MiningParams thresholds are shared).
struct CooMineOptions {
  SegTreeOptions seg_tree;
  /// Run a full Seg-tree expiry sweep every MiningParams::maintenance_
  /// interval of event time (the paper triggers this sweep on memory
  /// pressure; an event-time cadence is deterministic and testable).
  bool periodic_sweep = true;
};

class CooMine : public FcpMiner {
 public:
  explicit CooMine(const MiningParams& params, CooMineOptions options = {});

  void AddSegment(const Segment& segment, std::vector<Fcp>* out) override;
  void ForceMaintenance(Timestamp now) override;
  size_t MemoryUsage() const override;
  const MinerStats& stats() const override { return stats_; }
  std::string_view name() const override { return "CooMine"; }

  /// The underlying index (tests, benches, invariant checks).
  const SegTree& seg_tree() const { return tree_; }

 private:
  /// Runs the Apriori pass of Algorithm 4 over the LCP table `rows`.
  void MineFromLcps(const Segment& segment, const std::vector<LcpRow>& rows,
                    std::vector<Fcp>* out);

  MiningParams params_;
  CooMineOptions options_;
  SegTree tree_;
  MinerStats stats_;
  Timestamp last_sweep_ = kMinTimestamp;
  Timestamp watermark_ = kMinTimestamp;
};

}  // namespace fcp

#endif  // FCP_CORE_COOMINE_H_
