// CooMine (Section 5 of the paper): Seg-tree based FCP mining.
//
// For every completed segment: (1) SLCP finds the largest common CP between
// the new segment and each valid existing segment (the LCP table), then
// (2) an Apriori pass over the LCP table yields the FCPs the new segment
// completes. Expired segments discovered by the search are deleted lazily
// (the paper's LD strategy); a periodic sweep bounds memory.
//
// The Apriori pass counts support Eclat-style: each probe object gets a
// bitset over the LCP rows (its tidset), a pattern's supporting rows are the
// AND of its parent's bitset with the last object's bitset (carried level to
// level), and a popcount prefilter rejects infrequent candidates before any
// occurrence list is materialized. All per-trigger state lives in a reusable
// MiningScratch, so steady-state AddSegment performs no heap allocations.
//
// When constructed as one shard of a sharded group (ShardSpec), the Apriori
// pass is restricted to the patterns the shard owns: only LCP rows sharing
// >= 1 owned probe object get a tidset bit (every supporting row of an owned
// pattern contains its owned minimum object, so this drops nothing), the
// size-2 join only extends owned first objects, and subset pruning skips
// subsets whose minimum the shard cannot verify locally. With the default
// ShardSpec the filter is the identity.

#ifndef FCP_CORE_COOMINE_H_
#define FCP_CORE_COOMINE_H_

#include <cstdint>
#include <vector>

#include "common/params.h"
#include "core/miner.h"
#include "index/seg_tree.h"
#include "stream/segment.h"

namespace fcp {

/// CooMine-specific knobs (the MiningParams thresholds are shared).
struct CooMineOptions {
  SegTreeOptions seg_tree;
  /// Run a full Seg-tree expiry sweep every MiningParams::maintenance_
  /// interval of event time (the paper triggers this sweep on memory
  /// pressure; an event-time cadence is deterministic and testable).
  bool periodic_sweep = true;
};

class CooMine : public FcpMiner {
 public:
  /// `shard` restricts mining to patterns whose minimum object the shard
  /// owns (see MakeMiner's sharded overload); the default owns everything.
  explicit CooMine(const MiningParams& params, CooMineOptions options = {},
                   const ShardSpec& shard = {});

  void AddSegment(const Segment& segment, std::vector<Fcp>* out) override;
  void AddSegmentIndexOnly(const Segment& segment) override;
  void SetPlacement(const PlacementMap* map) override {
    shard_.placement = map;
  }
  void AdvanceWatermark(Timestamp now) override {
    watermark_ = std::max(watermark_, now);
  }
  void ForceMaintenance(Timestamp now) override;
  void PrefetchSegment(const Segment& segment) const override;
  size_t MemoryUsage() const override;
  const MinerStats& stats() const override { return stats_; }
  MinerIntrospection Introspect() const override;
  std::string_view name() const override { return "CooMine"; }

  /// The underlying index (tests, benches, invariant checks).
  const SegTree& seg_tree() const { return tree_; }

 private:
  /// Reusable per-trigger buffers: every vector is cleared (capacity kept)
  /// at the start of a trigger, so a warm miner allocates nothing on the
  /// mining path. Frequent patterns of the current level are stored flat:
  /// `level_idx` holds level-many uint32 indices into `objects` per pattern
  /// (lexicographic order of index tuples == lexicographic order of the
  /// patterns, since `objects` is sorted) and `level_bits` holds the
  /// matching row bitsets, `words` words per pattern.
  struct MiningScratch {
    LcpTable lcp;                       ///< SLCP output table
    std::vector<SegmentId> expired;     ///< lazily deleted segments
    std::vector<ObjectId> objects;      ///< distinct probe objects (capped)
    std::vector<uint8_t> owned;         ///< per-object shard ownership flag
    std::vector<uint32_t> live_rows;    ///< LCP rows given a bit position
    std::vector<uint32_t> row_match;    ///< one row's matched object indexes
    std::vector<uint64_t> object_bits;  ///< per-object row bitsets
    std::vector<uint32_t> level_idx;    ///< frequent patterns, stride k
    std::vector<uint64_t> level_bits;   ///< their bitsets, stride words
    std::vector<uint32_t> next_idx;
    std::vector<uint64_t> next_bits;
    std::vector<uint64_t> cand_bits;    ///< one candidate's bitset
    std::vector<uint32_t> subset;       ///< Apriori prune scratch
    std::vector<Occurrence> occurrences;
    std::vector<StreamId> streams;
  };

  /// Runs the Apriori pass of Algorithm 4 over the LCP table.
  void MineFromLcps(const Segment& segment, const LcpTable& lcp,
                    std::vector<Fcp>* out);

  MiningParams params_;
  CooMineOptions options_;
  ShardSpec shard_;
  SegTree tree_;
  MinerStats stats_;
  MiningScratch scratch_;
  Timestamp last_sweep_ = kMinTimestamp;
  Timestamp watermark_ = kMinTimestamp;
};

}  // namespace fcp

#endif  // FCP_CORE_COOMINE_H_
