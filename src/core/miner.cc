#include "core/miner.h"

#include <algorithm>

#include "common/check.h"
#include "core/brute_force.h"
#include "core/coomine.h"
#include "core/dimine.h"
#include "core/matrixmine.h"

namespace fcp {

std::vector<ObjectId> DistinctObjectsCapped(const Segment& segment,
                                            uint32_t cap) {
  // The distinct set is cached at segment construction; this helper only
  // pays for the copy (and the cap truncation) callers asked for.
  const std::vector<ObjectId>& distinct = segment.distinct_objects();
  std::vector<ObjectId> objects(
      distinct.begin(),
      cap > 0 && distinct.size() > cap ? distinct.begin() + cap
                                       : distinct.end());
  return objects;
}

std::optional<Fcp> MakeFcpIfFrequent(const Pattern& pattern,
                                     std::vector<Occurrence> occurrences,
                                     uint32_t theta, SegmentId trigger) {
  std::vector<StreamId> streams;
  streams.reserve(occurrences.size());
  for (const Occurrence& occ : occurrences) streams.push_back(occ.stream);
  std::sort(streams.begin(), streams.end());
  streams.erase(std::unique(streams.begin(), streams.end()), streams.end());
  if (streams.size() < theta) return std::nullopt;

  Fcp fcp;
  fcp.objects = pattern;
  fcp.streams = std::move(streams);
  fcp.trigger = trigger;
  fcp.window_start = kMaxTimestamp;
  fcp.window_end = kMinTimestamp;
  for (const Occurrence& occ : occurrences) {
    fcp.window_start = std::min(fcp.window_start, occ.start);
    fcp.window_end = std::max(fcp.window_end, occ.end);
  }
  return fcp;
}

std::string_view MinerKindToString(MinerKind kind) {
  switch (kind) {
    case MinerKind::kCooMine:
      return "CooMine";
    case MinerKind::kDiMine:
      return "DIMine";
    case MinerKind::kMatrixMine:
      return "MatrixMine";
    case MinerKind::kBruteForce:
      return "BruteForce";
  }
  return "Unknown";
}

std::unique_ptr<FcpMiner> MakeMiner(MinerKind kind,
                                    const MiningParams& params) {
  return MakeMiner(kind, params, ShardSpec{});
}

std::unique_ptr<FcpMiner> MakeMiner(MinerKind kind, const MiningParams& params,
                                    const ShardSpec& shard) {
  FCP_CHECK(params.Validate().ok());
  FCP_CHECK(shard.count >= 1 && shard.index < shard.count);
  switch (kind) {
    case MinerKind::kCooMine:
      return std::make_unique<CooMine>(params, CooMineOptions{}, shard);
    case MinerKind::kDiMine:
      return std::make_unique<DiMine>(params, shard);
    case MinerKind::kMatrixMine:
      return std::make_unique<MatrixMine>(params, shard);
    case MinerKind::kBruteForce:
      return std::make_unique<BruteForceMiner>(params, shard);
  }
  return nullptr;
}

}  // namespace fcp
