#include "core/engine_metrics.h"

#include "telemetry/trace.h"
#include "util/kernels/kernels.h"

namespace fcp {
namespace {

std::string Name(const std::string& base, const std::string& labels) {
  if (labels.empty()) return base;
  return base + "{" + labels + "}";
}

}  // namespace

MinerMetrics MinerMetrics::Register(telemetry::MetricRegistry* registry,
                                    const std::string& labels) {
  MinerMetrics m;
  m.segments_mined =
      registry->GetCounter(Name("fcp_segments_mined_total", labels));
  m.fcps_emitted = registry->GetCounter(Name("fcp_fcps_emitted_total", labels));
  m.candidates_checked =
      registry->GetCounter(Name("fcp_candidates_checked_total", labels));
  m.candidates_pruned =
      registry->GetCounter(Name("fcp_candidates_pruned_total", labels));
  m.slcp_probes = registry->GetCounter(Name("fcp_slcp_probes_total", labels));
  m.lcp_rows = registry->GetCounter(Name("fcp_lcp_rows_total", labels));
  m.maintenance_runs =
      registry->GetCounter(Name("fcp_maintenance_runs_total", labels));
  m.segments_expired =
      registry->GetCounter(Name("fcp_segments_expired_total", labels));
  m.mining_ns = registry->GetCounter(Name("fcp_mining_ns_total", labels));
  m.maintenance_ns =
      registry->GetCounter(Name("fcp_maintenance_ns_total", labels));

  m.live_segments = registry->GetGauge(Name("fcp_live_segments", labels));
  m.index_nodes = registry->GetGauge(Name("fcp_index_nodes", labels));
  m.index_entries = registry->GetGauge(Name("fcp_index_entries", labels));
  m.index_bytes = registry->GetGauge(Name("fcp_index_bytes", labels));
  m.arena_bytes = registry->GetGauge(Name("fcp_arena_bytes", labels));
  m.compression_ratio_milli =
      registry->GetGauge(Name("fcp_compression_ratio_milli", labels));
  return m;
}

namespace {

// Zero deltas are the common case for most fields when publishing per
// segment; skipping them avoids dirtying the counter's cache line.
inline void Bump(telemetry::Counter* counter, uint64_t delta) {
  if (delta != 0) counter->Increment(delta);
}

}  // namespace

void MinerMetrics::PublishDelta(const MinerStats& current,
                                MinerStats* last) const {
  Bump(segments_mined, current.segments_processed - last->segments_processed);
  Bump(fcps_emitted, current.fcps_emitted - last->fcps_emitted);
  Bump(candidates_checked,
       current.candidates_checked - last->candidates_checked);
  Bump(candidates_pruned, current.candidates_pruned - last->candidates_pruned);
  Bump(slcp_probes, current.slcp_probes - last->slcp_probes);
  Bump(lcp_rows, current.lcp_rows - last->lcp_rows);
  Bump(maintenance_runs, current.maintenance_runs - last->maintenance_runs);
  Bump(segments_expired, current.segments_expired - last->segments_expired);
  Bump(mining_ns, static_cast<uint64_t>(current.mining_ns - last->mining_ns));
  Bump(maintenance_ns,
       static_cast<uint64_t>(current.maintenance_ns - last->maintenance_ns));
  *last = current;
}

telemetry::Gauge* RegisterBuildInfo(telemetry::MetricRegistry* registry) {
#ifdef FCP_VERSION
  const std::string version = FCP_VERSION;
#else
  const std::string version = "dev";
#endif
  const std::string name =
      "fcp_build_info{" + telemetry::FormatLabel("version", version) + "," +
      telemetry::FormatLabel("kernel", kernels::Ops().name) + "," +
      telemetry::FormatLabel("trace", trace::kCompiledIn ? "1" : "0") + "}";
  registry->GetGauge(name)->Set(1);
  return registry->GetGauge("fcp_uptime_seconds");
}

void MinerMetrics::PublishIntrospection(const MinerIntrospection& view) const {
  live_segments->Set(static_cast<int64_t>(view.live_segments));
  index_nodes->Set(static_cast<int64_t>(view.index_nodes));
  index_entries->Set(static_cast<int64_t>(view.index_entries));
  index_bytes->Set(static_cast<int64_t>(view.index_bytes));
  arena_bytes->Set(static_cast<int64_t>(view.arena_bytes));
  compression_ratio_milli->Set(
      static_cast<int64_t>(view.compression_ratio * 1000.0));
}

}  // namespace fcp
