// DIMine (Section 3.2 of the paper): Apriori-style FCP mining over the
// DI-Index inverted index.

#ifndef FCP_CORE_DIMINE_H_
#define FCP_CORE_DIMINE_H_

#include <vector>

#include "common/params.h"
#include "core/miner.h"
#include "index/di_index.h"
#include "stream/segment.h"

namespace fcp {

class DiMine : public FcpMiner {
 public:
  explicit DiMine(const MiningParams& params);

  void AddSegment(const Segment& segment, std::vector<Fcp>* out) override;
  void ForceMaintenance(Timestamp now) override;
  size_t MemoryUsage() const override;
  const MinerStats& stats() const override { return stats_; }
  std::string_view name() const override { return "DIMine"; }

  /// The underlying index (tests and benches).
  const DiIndex& index() const { return index_; }

 private:
  void Mine(const Segment& segment, std::vector<Fcp>* out);

  MiningParams params_;
  DiIndex index_;
  MinerStats stats_;
  Timestamp last_sweep_ = kMinTimestamp;
  Timestamp watermark_ = kMinTimestamp;
};

}  // namespace fcp

#endif  // FCP_CORE_DIMINE_H_
