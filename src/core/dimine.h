// DIMine (Section 3.2 of the paper): Apriori-style FCP mining over the
// DI-Index inverted index.
//
// Support counting intersects the parent pattern's supporter list with the
// joined-in object's posting list, level to level, so no support is ever
// recomputed from scratch. All per-trigger state lives in a reusable
// MiningScratch (frequent patterns stored flat, stride k, exactly like
// CooMine's level store), so steady-state AddSegment allocates only for
// emitted FCPs and occasional posting-list growth.
//
// When constructed as one shard of a sharded group (ShardSpec), emission is
// restricted to patterns whose minimum object the shard owns; non-owned
// singletons remain join partners so owned supersets are still found. With
// the default ShardSpec the filter is the identity.

#ifndef FCP_CORE_DIMINE_H_
#define FCP_CORE_DIMINE_H_

#include <cstdint>
#include <vector>

#include "common/params.h"
#include "core/miner.h"
#include "index/di_index.h"
#include "stream/segment.h"

namespace fcp {

class DiMine : public FcpMiner {
 public:
  /// `shard` restricts mining to patterns whose minimum object the shard
  /// owns (see MakeMiner's sharded overload); the default owns everything.
  explicit DiMine(const MiningParams& params, const ShardSpec& shard = {});

  void AddSegment(const Segment& segment, std::vector<Fcp>* out) override;
  void AddSegmentIndexOnly(const Segment& segment) override;
  void SetPlacement(const PlacementMap* map) override {
    shard_.placement = map;
  }
  void AdvanceWatermark(Timestamp now) override {
    watermark_ = std::max(watermark_, now);
  }
  void ForceMaintenance(Timestamp now) override;
  void PrefetchSegment(const Segment& segment) const override;
  size_t MemoryUsage() const override;
  const MinerStats& stats() const override { return stats_; }
  MinerIntrospection Introspect() const override;
  std::string_view name() const override { return "DIMine"; }

  /// The underlying index (tests and benches).
  const DiIndex& index() const { return index_; }

 private:
  /// Reusable per-trigger buffers; every container is cleared (capacity
  /// kept) at the start of a trigger. Frequent patterns of the current level
  /// are stored flat: `level_idx` holds level-many uint32 indices into
  /// `objects` per pattern and `level_supp`/`level_off` hold the matching
  /// supporter id lists back to back with offsets.
  struct MiningScratch {
    std::vector<ObjectId> objects;   ///< distinct probe objects (capped)
    std::vector<uint8_t> owned;      ///< per-object shard ownership flag
    std::vector<std::vector<SegmentId>> valid;  ///< per-object valid lists
    std::vector<uint32_t> level_idx;   ///< frequent patterns, stride k
    std::vector<SegmentId> level_supp; ///< their supporters, concatenated
    std::vector<size_t> level_off;     ///< offsets into level_supp
    std::vector<uint32_t> next_idx;
    std::vector<SegmentId> next_supp;
    std::vector<size_t> next_off;
    std::vector<SegmentId> cand_supp;  ///< one candidate's supporters
    std::vector<uint32_t> subset;      ///< Apriori prune scratch
    std::vector<Occurrence> occurrences;
    std::vector<StreamId> streams;
  };

  void Mine(const Segment& segment, std::vector<Fcp>* out);

  MiningParams params_;
  ShardSpec shard_;
  DiIndex index_;
  MinerStats stats_;
  MiningScratch scratch_;
  Timestamp last_sweep_ = kMinTimestamp;
  Timestamp watermark_ = kMinTimestamp;
};

}  // namespace fcp

#endif  // FCP_CORE_DIMINE_H_
