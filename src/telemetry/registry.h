// MetricRegistry: named aggregation of telemetry metrics with JSON and
// Prometheus text-exposition serialization.
//
// Usage contract, chosen so the record path stays lock-free:
//
//   1. Register at construction time: GetCounter/GetGauge/GetHistogram take
//      the registry mutex and may allocate. They return stable raw pointers
//      (the registry owns the metric objects for its lifetime).
//   2. Record through the returned pointers: no registry involvement, no
//      lock, no allocation (see metric.h).
//   3. Snapshot/serialize from any thread: takes the mutex only against
//      concurrent *registration*, reads the metric values with relaxed
//      atomics.
//
// Naming scheme (DESIGN.md §2.3): Prometheus-style snake_case with an
// `fcp_` prefix; counters end in `_total`; histograms carry their unit
// suffix (`_us`, `_ms`); dimensioned metrics append labels in canonical
// Prometheus form, e.g. `fcp_fcps_emitted_total{shard="3"}`. The label
// block is part of the registered name; the serializers split it back out.

#ifndef FCP_TELEMETRY_REGISTRY_H_
#define FCP_TELEMETRY_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "telemetry/metric.h"

namespace fcp::telemetry {

enum class MetricType { kCounter, kGauge, kHistogram };

/// One serializable metric value at snapshot time.
struct MetricSample {
  std::string name;  ///< full registered name, may include a {label} block
  MetricType type = MetricType::kCounter;
  uint64_t counter_value = 0;
  int64_t gauge_value = 0;
  HistogramSnapshot histogram;
};

/// Escapes a label value per the Prometheus text exposition format 0.0.4:
/// backslash -> \\, double quote -> \", line feed -> \n. Everything else
/// passes through untouched.
std::string EscapeLabelValue(const std::string& value);

/// Renders one `key="value"` label pair with the value escaped. Producers
/// embedding a label block into a registered metric name use this so values
/// containing quotes, backslashes or newlines serialize as valid Prometheus
/// and JSON output.
std::string FormatLabel(const std::string& key, const std::string& value);

/// Serializes samples as one flat JSON object: scalar metrics map name ->
/// value, histograms map name -> {count, sum, mean, p50, p90, p99}.
std::string SerializeJson(const std::vector<MetricSample>& samples);

/// Serializes samples in Prometheus text exposition format 0.0.4: one
/// `# TYPE` line per metric family (label variants grouped), `name{labels}
/// value` sample lines, histograms expanded to cumulative `_bucket{le=...}`
/// series plus `_sum` and `_count`.
std::string SerializePrometheus(const std::vector<MetricSample>& samples);

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Returns the metric registered under `name`, creating it on first use.
  /// Aborts if `name` is already registered with a different type. The
  /// returned pointer is valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);

  /// Point-in-time copy of every registered metric, in registration order.
  std::vector<MetricSample> Snapshot() const;

  std::string ToJson() const { return SerializeJson(Snapshot()); }
  std::string ToPrometheus() const { return SerializePrometheus(Snapshot()); }

  size_t size() const;

  /// The process-wide default registry (tools). Library components take a
  /// registry parameter instead of reaching for this.
  static MetricRegistry& Global();

 private:
  struct Entry {
    std::string name;
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  Entry* FindOrCreate(const std::string& name, MetricType type);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  ///< registration order
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace fcp::telemetry

#endif  // FCP_TELEMETRY_REGISTRY_H_
