#include "telemetry/reporter.h"

#include <chrono>
#include <cstdio>

namespace fcp::telemetry {

MetricReporter::MetricReporter(const MetricRegistry* registry,
                               ReporterOptions options)
    : registry_(registry), options_(std::move(options)) {
  // interval_ms <= 0 means "final report only": no background thread at all
  // (a zero-length wait_for would busy-spin EmitOnce); Stop() still renders
  // one complete report.
  if (options_.interval_ms > 0) {
    thread_ = std::thread([this] { Loop(); });
  }
}

MetricReporter::~MetricReporter() { Stop(); }

void MetricReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  EmitOnce();
}

std::string MetricReporter::Render() const {
  return options_.format == ReporterOptions::Format::kJson
             ? registry_->ToJson()
             : registry_->ToPrometheus();
}

void MetricReporter::EmitOnce() {
  const std::string report = Render();
  if (options_.path.empty()) {
    std::fwrite(report.data(), 1, report.size(), stderr);
    std::fflush(stderr);
    return;
  }
  // Rewrite, don't append: the file is a live view, and each report is a
  // complete document (CI parses it with a strict JSON parser).
  std::FILE* f = std::fopen(options_.path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "metrics: cannot open %s\n", options_.path.c_str());
    return;
  }
  std::fwrite(report.data(), 1, report.size(), f);
  std::fclose(f);
}

void MetricReporter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    const bool stopping = cv_.wait_for(
        lock, std::chrono::milliseconds(options_.interval_ms),
        [this] { return stop_; });
    if (stopping) break;
    lock.unlock();
    EmitOnce();
    lock.lock();
  }
}

}  // namespace fcp::telemetry
