#include "telemetry/reporter.h"

#include <chrono>
#include <cstdio>

#include "telemetry/trace.h"

namespace fcp::telemetry {

MetricReporter::MetricReporter(const MetricRegistry* registry,
                               ReporterOptions options)
    : registry_(registry), options_(std::move(options)) {
  // interval_ms <= 0 means "final report only": no background thread at all
  // (a zero-length wait_for would busy-spin EmitOnce); Stop() still renders
  // one complete report.
  if (options_.interval_ms > 0) {
    thread_ = std::thread([this] { Loop(); });
  }
}

MetricReporter::~MetricReporter() { Stop(); }

void MetricReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  EmitOnce();
}

std::string MetricReporter::Render() const {
  return options_.format == ReporterOptions::Format::kJson
             ? registry_->ToJson()
             : registry_->ToPrometheus();
}

void MetricReporter::EmitOnce() {
  const std::string report = Render();
  if (options_.path.empty()) {
    std::fwrite(report.data(), 1, report.size(), stderr);
    std::fflush(stderr);
    return;
  }
  // Write-to-temp-then-rename: the file is a live view that scrapers (and
  // CI's strict JSON parser) read while the pipeline runs, and each report
  // must be a complete document — a reader must never observe a half-written
  // file. rename(2) on the same filesystem is atomic, so the visible path
  // always holds either the previous or the new complete report.
  const std::string tmp_path = options_.path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "metrics: cannot open %s\n", tmp_path.c_str());
    return;
  }
  std::fwrite(report.data(), 1, report.size(), f);
  std::fclose(f);
  if (std::rename(tmp_path.c_str(), options_.path.c_str()) != 0) {
    std::fprintf(stderr, "metrics: cannot rename %s -> %s\n",
                 tmp_path.c_str(), options_.path.c_str());
    std::remove(tmp_path.c_str());
  }
}

void MetricReporter::Loop() {
  trace::SetThreadName("metrics-reporter");
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    const bool stopping = cv_.wait_for(
        lock, std::chrono::milliseconds(options_.interval_ms),
        [this] { return stop_; });
    if (stopping) break;
    lock.unlock();
    EmitOnce();
    lock.lock();
  }
}

}  // namespace fcp::telemetry
