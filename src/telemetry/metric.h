// fcp::telemetry metric primitives: the record path of every type here is
// wait-free and allocation-free — a relaxed-atomic add or store, nothing
// else — so the miners' zero-allocation hot-path invariant (DESIGN.md §2.1)
// holds with telemetry permanently enabled. All cross-thread visibility is
// relaxed: metrics are monitoring data, not synchronization; readers see
// values that are each individually recent, not a consistent cut.
//
// Registration/aggregation (naming, serialization, the process-wide
// registry) lives in registry.h; components hold raw pointers to their
// metrics, obtained once at construction, and record through them lock-free.

#ifndef FCP_TELEMETRY_METRIC_H_
#define FCP_TELEMETRY_METRIC_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace fcp::telemetry {

/// Monotonically increasing event count.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written instantaneous value (queue depth, index bytes, lag).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time copy of a LatencyHistogram, with percentile queries.
/// Bucket b covers values with std::bit_width(v) == b, i.e. [2^(b-1), 2^b)
/// for b >= 1 and exactly {0} for b == 0 — power-of-two buckets, <= 2x
/// relative error on any percentile, fixed footprint.
struct HistogramSnapshot {
  /// bit_width ranges over [0, 64], one bucket each.
  static constexpr size_t kNumBuckets = 65;

  std::array<uint64_t, kNumBuckets> counts{};
  uint64_t total = 0;  ///< sum of counts
  uint64_t sum = 0;    ///< sum of recorded values

  /// Largest value bucket `b` can contain.
  static uint64_t BucketUpperBound(size_t b) {
    if (b == 0) return 0;
    if (b >= 64) return ~uint64_t{0};
    return (uint64_t{1} << b) - 1;
  }

  /// Upper bound of the bucket containing the p-th percentile (p in
  /// [0, 100]); 0 on an empty snapshot. The bound overestimates by at most
  /// 2x, which is the resolution observability needs — exact quantiles over
  /// bounded samples live in util/stats.h.
  double Percentile(double p) const {
    if (total == 0) return 0.0;
    if (p < 0.0) p = 0.0;
    if (p > 100.0) p = 100.0;
    // Rank of the percentile observation, 1-based, nearest-rank definition.
    uint64_t rank = static_cast<uint64_t>(p / 100.0 *
                                          static_cast<double>(total) + 0.5);
    if (rank == 0) rank = 1;
    if (rank > total) rank = total;
    uint64_t cumulative = 0;
    for (size_t b = 0; b < kNumBuckets; ++b) {
      cumulative += counts[b];
      if (cumulative >= rank) return static_cast<double>(BucketUpperBound(b));
    }
    return static_cast<double>(BucketUpperBound(kNumBuckets - 1));
  }

  double Mean() const {
    return total == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(total);
  }

  /// Accumulates another snapshot (cross-shard aggregation).
  void Merge(const HistogramSnapshot& other) {
    for (size_t b = 0; b < kNumBuckets; ++b) counts[b] += other.counts[b];
    total += other.total;
    sum += other.sum;
  }
};

/// Fixed-bucket concurrent histogram for latency-like nonnegative values.
/// Record() is two relaxed fetch_adds — wait-free, allocation-free, no
/// false-sharing-prone global locks. Unit is the recorder's choice and
/// should be part of the metric name (e.g. `..._latency_us`).
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = HistogramSnapshot::kNumBuckets;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  static size_t BucketOf(uint64_t value) {
    return static_cast<size_t>(std::bit_width(value));
  }

  void Record(uint64_t value) {
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot snap;
    for (size_t b = 0; b < kNumBuckets; ++b) {
      snap.counts[b] = buckets_[b].load(std::memory_order_relaxed);
      snap.total += snap.counts[b];
    }
    snap.sum = sum_.load(std::memory_order_relaxed);
    return snap;
  }

  uint64_t TotalCount() const { return Snapshot().total; }

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
};

}  // namespace fcp::telemetry

#endif  // FCP_TELEMETRY_METRIC_H_
