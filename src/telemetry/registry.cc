#include "telemetry/registry.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "common/check.h"

namespace fcp::telemetry {
namespace {

/// Splits a registered name into its family base and label block:
/// `fcp_x_total{shard="0"}` -> ("fcp_x_total", `shard="0"`).
std::pair<std::string, std::string> SplitLabels(const std::string& name) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) return {name, ""};
  FCP_CHECK(name.back() == '}');
  return {name.substr(0, brace),
          name.substr(brace + 1, name.size() - brace - 2)};
}

/// JSON string escaping for the metric names used as object keys (labels
/// contain quote characters, and escaped label values can contain literal
/// backslashes; control characters must never reach the output raw or the
/// report stops being parseable JSON).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// One Prometheus sample line: `base{labels} value\n` (labels optional,
/// `extra` appended as an additional label, e.g. the `le` of a bucket).
void PromLine(std::string* out, const std::string& base,
              const std::string& labels, const std::string& extra,
              const std::string& value) {
  *out += base;
  if (!labels.empty() || !extra.empty()) {
    *out += '{';
    *out += labels;
    if (!labels.empty() && !extra.empty()) *out += ',';
    *out += extra;
    *out += '}';
  }
  *out += ' ';
  *out += value;
  *out += '\n';
}

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 8);
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string FormatLabel(const std::string& key, const std::string& value) {
  return key + "=\"" + EscapeLabelValue(value) + "\"";
}

std::string SerializeJson(const std::vector<MetricSample>& samples) {
  std::string out = "{\n";
  for (size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& s = samples[i];
    out += "  \"" + JsonEscape(s.name) + "\": ";
    switch (s.type) {
      case MetricType::kCounter:
        out += std::to_string(s.counter_value);
        break;
      case MetricType::kGauge:
        out += std::to_string(s.gauge_value);
        break;
      case MetricType::kHistogram: {
        const HistogramSnapshot& h = s.histogram;
        out += "{\"count\": " + std::to_string(h.total);
        out += ", \"sum\": " + std::to_string(h.sum);
        out += ", \"mean\": " + FormatDouble(h.Mean());
        out += ", \"p50\": " + FormatDouble(h.Percentile(50));
        out += ", \"p90\": " + FormatDouble(h.Percentile(90));
        out += ", \"p99\": " + FormatDouble(h.Percentile(99));
        out += "}";
        break;
      }
    }
    out += (i + 1 < samples.size()) ? ",\n" : "\n";
  }
  out += "}\n";
  return out;
}

std::string SerializePrometheus(const std::vector<MetricSample>& samples) {
  // Prometheus requires every sample of a family to follow that family's
  // single `# TYPE` line, so group label variants by base name, preserving
  // first-seen order.
  std::vector<std::pair<std::string, std::vector<const MetricSample*>>>
      families;
  std::unordered_map<std::string, size_t> family_index;
  for (const MetricSample& s : samples) {
    const std::string base = SplitLabels(s.name).first;
    auto [it, inserted] = family_index.emplace(base, families.size());
    if (inserted) families.emplace_back(base, std::vector<const MetricSample*>{});
    families[it->second].second.push_back(&s);
  }

  std::string out;
  for (const auto& [base, members] : families) {
    out += "# TYPE " + base + " " + TypeName(members.front()->type) + "\n";
    for (const MetricSample* s : members) {
      const std::string labels = SplitLabels(s->name).second;
      switch (s->type) {
        case MetricType::kCounter:
          PromLine(&out, base, labels, "", std::to_string(s->counter_value));
          break;
        case MetricType::kGauge:
          PromLine(&out, base, labels, "", std::to_string(s->gauge_value));
          break;
        case MetricType::kHistogram: {
          const HistogramSnapshot& h = s->histogram;
          uint64_t cumulative = 0;
          for (size_t b = 0; b < HistogramSnapshot::kNumBuckets; ++b) {
            if (h.counts[b] == 0) continue;
            cumulative += h.counts[b];
            PromLine(&out, base + "_bucket", labels,
                     "le=\"" +
                         std::to_string(HistogramSnapshot::BucketUpperBound(b)) +
                         "\"",
                     std::to_string(cumulative));
          }
          PromLine(&out, base + "_bucket", labels, "le=\"+Inf\"",
                   std::to_string(h.total));
          PromLine(&out, base + "_sum", labels, "", std::to_string(h.sum));
          PromLine(&out, base + "_count", labels, "", std::to_string(h.total));
          break;
        }
      }
    }
  }
  return out;
}

MetricRegistry::Entry* MetricRegistry::FindOrCreate(const std::string& name,
                                                    MetricType type) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  if (it != index_.end()) {
    Entry* entry = entries_[it->second].get();
    FCP_CHECK(entry->type == type);
    return entry;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->type = type;
  switch (type) {
    case MetricType::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      entry->histogram = std::make_unique<LatencyHistogram>();
      break;
  }
  index_.emplace(name, entries_.size());
  entries_.push_back(std::move(entry));
  return entries_.back().get();
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  return FindOrCreate(name, MetricType::kCounter)->counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  return FindOrCreate(name, MetricType::kGauge)->gauge.get();
}

LatencyHistogram* MetricRegistry::GetHistogram(const std::string& name) {
  return FindOrCreate(name, MetricType::kHistogram)->histogram.get();
}

std::vector<MetricSample> MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> samples;
  samples.reserve(entries_.size());
  for (const auto& entry : entries_) {
    MetricSample sample;
    sample.name = entry->name;
    sample.type = entry->type;
    switch (entry->type) {
      case MetricType::kCounter:
        sample.counter_value = entry->counter->Value();
        break;
      case MetricType::kGauge:
        sample.gauge_value = entry->gauge->Value();
        break;
      case MetricType::kHistogram:
        sample.histogram = entry->histogram->Snapshot();
        break;
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

size_t MetricRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

}  // namespace fcp::telemetry
