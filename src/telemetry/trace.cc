#include "telemetry/trace.h"

#include <bit>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>

namespace fcp::trace {
namespace {

constexpr size_t kMinSlots = 64;
constexpr size_t kThreadNameCap = 32;

/// One thread's ring. Only the owning thread writes slots and head; readers
/// (Snapshot) are exact at quiescence, racy on the crash path by design.
struct ThreadRing {
  explicit ThreadRing(size_t slot_count)
      : slots(new TraceEvent[slot_count]), mask(slot_count - 1) {}

  std::unique_ptr<TraceEvent[]> slots;
  size_t mask;
  /// Monotonic write index (next slot = head & mask). Release-stored after
  /// the slot write so a quiescent reader acquiring it sees complete slots.
  std::atomic<uint64_t> head{0};
  uint64_t tid = 0;
  char name[kThreadNameCap] = {};
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadRing>> rings;
  size_t ring_slots = 8192;
  /// Bumped by Start/Reset so stale thread-local ring pointers re-register
  /// instead of writing into a freed ring.
  std::atomic<uint64_t> epoch{1};
  std::atomic<uint64_t> next_flow{1};
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

thread_local ThreadRing* t_ring = nullptr;
thread_local uint64_t t_epoch = 0;
thread_local char t_name[kThreadNameCap] = {};

/// Registers the calling thread's ring (first event after Start/Reset).
/// The one place the recorder allocates.
ThreadRing* RegisterThread() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto ring = std::make_unique<ThreadRing>(registry.ring_slots);
  ring->tid = registry.rings.size() + 1;  // stable, compact track ids
  std::memcpy(ring->name, t_name, kThreadNameCap);
  registry.rings.push_back(std::move(ring));
  t_ring = registry.rings.back().get();
  t_epoch = registry.epoch.load(std::memory_order_relaxed);
  return t_ring;
}

}  // namespace

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Start(size_t ring_kb) {
  Registry& registry = GetRegistry();
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    size_t slots = ring_kb * 1024 / sizeof(TraceEvent);
    slots = std::bit_ceil(slots < kMinSlots ? kMinSlots : slots);
    registry.ring_slots = slots;
    registry.rings.clear();  // discard any previous recording
    registry.epoch.fetch_add(1, std::memory_order_relaxed);
  }
  EnabledFlag().store(true, std::memory_order_release);
}

void Stop() { EnabledFlag().store(false, std::memory_order_release); }

void Reset() {
  Stop();
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.rings.clear();
  registry.epoch.fetch_add(1, std::memory_order_relaxed);
}

void Emit(Phase phase, const char* name, uint64_t flow, uint32_t arg) {
  if (!IsEnabled()) return;
  Registry& registry = GetRegistry();
  ThreadRing* ring = t_ring;
  if (ring == nullptr ||
      t_epoch != registry.epoch.load(std::memory_order_relaxed)) {
    ring = RegisterThread();
  }
  const uint64_t head = ring->head.load(std::memory_order_relaxed);
  TraceEvent& slot = ring->slots[head & ring->mask];
  slot.ts_ns = NowNs();
  slot.name = name;
  slot.flow = flow;
  slot.arg = arg;
  slot.phase = phase;
  ring->head.store(head + 1, std::memory_order_release);
}

void SetThreadName(const char* name) {
  std::strncpy(t_name, name, kThreadNameCap - 1);
  t_name[kThreadNameCap - 1] = '\0';
  Registry& registry = GetRegistry();
  ThreadRing* ring = t_ring;
  if (ring != nullptr &&
      t_epoch == registry.epoch.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(registry.mu);
    std::memcpy(ring->name, t_name, kThreadNameCap);
  }
}

uint64_t NextFlowId() {
  return GetRegistry().next_flow.fetch_add(1, std::memory_order_relaxed);
}

std::vector<ThreadTrace> Snapshot() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<ThreadTrace> out;
  out.reserve(registry.rings.size());
  for (const auto& ring : registry.rings) {
    ThreadTrace thread;
    thread.tid = ring->tid;
    thread.name = ring->name;
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    const size_t capacity = ring->mask + 1;
    const uint64_t n = head < capacity ? head : capacity;
    thread.dropped = head - n;
    thread.events.reserve(static_cast<size_t>(n));
    for (uint64_t i = head - n; i < head; ++i) {
      thread.events.push_back(ring->slots[i & ring->mask]);
    }
    out.push_back(std::move(thread));
  }
  return out;
}

}  // namespace fcp::trace
