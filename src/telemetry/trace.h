// fcp::trace — an always-on flight recorder for causal, per-occurrence
// latency forensics (DESIGN.md §2.5).
//
// Aggregate metrics (telemetry/metric.h) answer "what is p99"; the flight
// recorder answers "why did THIS segment take 40 ms": every thread records
// begin/end/instant/flow events into its own fixed-size ring buffer, old
// events are overwritten (drop-oldest policy), and a snapshot serializes to
// Chrome trace-event JSON that opens directly in Perfetto/chrome://tracing.
//
// Hot-path contract, preserving the §2.1 zero-allocation invariant:
//
//   - Recording disabled (default): one relaxed atomic load + branch.
//   - Recording enabled, steady state: a handful of plain stores into the
//     calling thread's ring slot plus one release store of the head index —
//     no locks, no allocation, no cross-thread contention.
//   - The only allocation is per-thread ring registration, which happens on
//     a thread's FIRST recorded event (mutex + one array allocation) — never
//     again on that thread.
//   - Compiled out (cmake -DFCP_TRACE=OFF): the FCP_TRACE_* macros expand to
//     nothing, so instrumented hot paths carry zero bytes of trace code.
//
// Event names MUST be string literals (or other static-storage strings): the
// recorder stores the pointer, not a copy. Flow ids stitch one logical
// operation across threads (a segment's journey worker -> merge -> shards);
// the serializer emits them as Chrome flow events so Perfetto draws arrows
// across track boundaries.
//
// Snapshot/serialize read ring slots written without atomics, so they are
// exact only at quiescence (writers stopped or joined); the crash handler
// knowingly reads racy tails — a torn final event beats an empty black box.

#ifndef FCP_TELEMETRY_TRACE_H_
#define FCP_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace fcp::trace {

/// Whether the FCP_TRACE_* macros compile to anything in this build.
#if defined(FCP_TRACE_DISABLED)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/// Chrome trace-event phases (the serializer emits the enum value as the
/// event's "ph" letter verbatim).
enum class Phase : uint8_t {
  kBegin = 'B',      ///< duration span open
  kEnd = 'E',        ///< duration span close
  kInstant = 'i',    ///< point event
  kFlowBegin = 's',  ///< flow start (arrow tail)
  kFlowStep = 't',   ///< flow step (arrow through)
  kFlowEnd = 'f',    ///< flow end (arrow head)
};

/// One recorded event: 32 bytes, POD, lives in the per-thread ring.
struct TraceEvent {
  int64_t ts_ns = 0;           ///< steady-clock nanoseconds
  const char* name = nullptr;  ///< static-storage string, never owned
  uint64_t flow = 0;           ///< flow id (0 = not part of a flow)
  uint32_t arg = 0;            ///< free-form payload (length, shard, ...)
  Phase phase = Phase::kInstant;
};

/// Monotonic nanosecond clock shared by all recorder events.
int64_t NowNs();

/// Starts recording with `ring_kb` KiB of ring per thread (rounded to a
/// power-of-two slot count, minimum 64 slots). Must be called at quiescence
/// (no concurrently emitting threads); discards any previous recording.
void Start(size_t ring_kb = 256);

/// Stops recording (events already in the rings are kept for Snapshot).
void Stop();

/// Drops all rings and thread registrations. Quiescence required. Tests.
void Reset();

inline std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{false};
  return enabled;
}

/// True while recording. The macro fast path: one relaxed load.
inline bool IsEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

/// Records one event on the calling thread's ring. No-op when disabled.
/// `name` must have static storage duration.
void Emit(Phase phase, const char* name, uint64_t flow = 0, uint32_t arg = 0);

/// Names the calling thread's track in the serialized trace ("shard-0",
/// "merge", ...). Cheap and callable whether or not recording is on (the
/// name is kept thread-locally and attached to the ring at registration).
void SetThreadName(const char* name);

/// Allocates a process-unique flow id (never 0).
uint64_t NextFlowId();

/// One thread's recorded tail, oldest event first.
struct ThreadTrace {
  uint64_t tid = 0;        ///< serializer track id (registration order)
  std::string name;        ///< SetThreadName value, may be empty
  uint64_t dropped = 0;    ///< events overwritten by ring wrap
  std::vector<TraceEvent> events;
};

/// Copies every registered ring's tail. Exact at quiescence; while writers
/// run, the most recent slots of their rings may be torn (crash path only).
std::vector<ThreadTrace> Snapshot();

// --- Chrome trace-event serialization (trace_sink.cc). ---------------------

/// Serializes a snapshot as Chrome trace-event JSON (the object form:
/// {"traceEvents": [...]}), timestamps in microseconds as Perfetto expects.
std::string SerializeChromeTrace(const std::vector<ThreadTrace>& threads);

/// Snapshot() + SerializeChromeTrace + write to `path`. False on I/O error.
bool WriteChromeTrace(const std::string& path);

/// One event parsed back out of Chrome trace JSON (fcptrace, tests).
struct ParsedTraceEvent {
  std::string name;
  std::string cat;
  char ph = '?';
  double ts_us = 0;
  double dur_us = 0;   ///< "X" complete events only
  uint64_t pid = 0;
  uint64_t tid = 0;
  std::string id;      ///< flow id, empty when absent
  std::string arg_name;  ///< metadata events: args.name
};

/// Strict parse of Chrome trace-event JSON (object form). Returns nullopt
/// and sets `error` when the document is not well-formed JSON or events are
/// missing required fields (ph/ts/pid/tid, name on non-E phases).
std::optional<std::vector<ParsedTraceEvent>> ParseChromeTraceJson(
    const std::string& json, std::string* error);

/// True iff `json` parses as valid Chrome trace-event JSON.
bool ValidateChromeTraceJson(const std::string& json, std::string* error);

// --- Slow-op forensic capture (trace_sink.cc). -----------------------------

/// Global slow-op capture configuration. `threshold_ns` <= 0 disables
/// capture; dumps land at `<dump_prefix>.slowop-<n>.json`, at most
/// `max_dumps` per process (first triggers win: the earliest slow ops are
/// the interesting ones, and a pathological run must not flood the disk).
struct SlowOpOptions {
  int64_t threshold_ns = 0;
  std::string dump_prefix = "fcp";
  int max_dumps = 8;
};

/// Installs the configuration (thread-safe; typically once at startup).
void ConfigureSlowOp(const SlowOpOptions& options);

/// The active threshold; 0 when capture is disabled. Relaxed load.
int64_t SlowOpThresholdNs();

/// Dumps written so far.
uint64_t SlowOpDumpCount();

/// What a slow mine call looked like. The core layer fills this from the
/// triggering Segment and the miner's stats/Introspect() (the telemetry
/// layer stays independent of core types — everything arrives pre-rendered).
struct SlowOpReport {
  const char* op = "";          ///< e.g. "engine/mine", "shard/mine"
  int64_t duration_ns = 0;
  std::string miner;            ///< miner name()
  uint32_t shard = 0;
  std::string segment_debug;    ///< Segment::DebugString()
  uint64_t segment_id = 0;
  uint64_t stream = 0;
  uint64_t segment_length = 0;
  int64_t segment_start_ms = 0;
  int64_t segment_end_ms = 0;
  /// Introspection/stats counters, serialized as a flat "state" object.
  std::vector<std::pair<std::string, int64_t>> state;
};

/// Writes one structured slow-op dump: the report, the active threshold and
/// the calling thread's flight-recorder tail. Returns the path written, or
/// "" when capture is disabled or max_dumps was reached.
std::string WriteSlowOpDump(const SlowOpReport& report);

/// One retained slow-op summary — the in-memory digest behind /tracez
/// (DESIGN.md §2.8). Summaries keep accumulating after the max_dumps disk
/// cap is exhausted (dump_path is then empty), so a long-running process
/// still reports its most recent slow ops live.
struct SlowOpSummary {
  int64_t captured_unix_ms = 0;  ///< wall-clock capture time
  std::string op;
  int64_t duration_ns = 0;
  std::string miner;
  uint32_t shard = 0;
  uint64_t segment_id = 0;
  uint64_t segment_length = 0;
  std::string dump_path;  ///< "" when no forensic dump was written
};

/// The last-N retained slow-op summaries, oldest first (N is a small fixed
/// cap). Cleared by ConfigureSlowOp, so each capture session starts empty.
std::vector<SlowOpSummary> RecentSlowOps();

// --- Fatal-signal black box (trace_sink.cc). -------------------------------

/// Installs handlers for SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT that write the
/// full flight-recorder contents as Chrome trace JSON to `path` and then
/// re-raise with the default disposition (so exit codes/core dumps are
/// unchanged). Best-effort: the handler formats JSON with ordinary library
/// calls, which is not async-signal-safe — acceptable for a crash-path black
/// box, where a partial trace beats none. Idempotent; last path wins.
void InstallCrashHandler(const std::string& path);

/// A provider of auxiliary crash forensics: returns one JSON value (object,
/// array or scalar). Must be callable from the fatal-signal path — same
/// best-effort stance as the black box itself (may allocate; must not hang).
using CrashAuxProvider = std::string (*)();

/// Registers `provider` under `key` as an extra top-level member of the
/// crash black box: the fatal-signal handler splices `"key": <value>` into
/// the .crash.json next to "traceEvents". Strict consumers that read only
/// "traceEvents" (ParseChromeTraceJson) are unaffected. At most a handful
/// of providers (fixed small cap); `key` must be a JSON-clean static string.
/// Re-registering a key overwrites its provider. The profiler registers
/// its sample-ring tail here (prof::CrashJson).
void RegisterCrashAux(const char* key, CrashAuxProvider provider);

// --- RAII span + instrumentation macros. -----------------------------------

/// Opens a Begin/End span over its scope. When recording is off at
/// construction the destructor does nothing (name_ stays null), so a span
/// that straddles Stop() emits a dangling Begin at worst — the serializer
/// closes unbalanced spans at the snapshot's end.
class Span {
 public:
  explicit Span(const char* name, uint64_t flow = 0, uint32_t arg = 0) {
    if (IsEnabled()) {
      name_ = name;
      Emit(Phase::kBegin, name, flow, arg);
    }
  }
  ~Span() {
    if (name_ != nullptr) Emit(Phase::kEnd, name_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
};

}  // namespace fcp::trace

#if defined(FCP_TRACE_DISABLED)

// The no-op forms still "use" their arguments via unevaluated sizeof so a
// local computed only for tracing doesn't trip -Werror=unused-variable.
#define FCP_TRACE_SPAN(name)  \
  do {                        \
    (void)sizeof(name);       \
  } while (false)
#define FCP_TRACE_SPAN_FLOW(name, flow_id, arg_v) \
  do {                                            \
    (void)sizeof(name);                           \
    (void)sizeof(flow_id);                        \
    (void)sizeof(arg_v);                          \
  } while (false)
#define FCP_TRACE_INSTANT(name, flow_id, arg_v) \
  do {                                          \
    (void)sizeof(name);                         \
    (void)sizeof(flow_id);                      \
    (void)sizeof(arg_v);                        \
  } while (false)
#define FCP_TRACE_FLOW_BEGIN(name, flow_id) \
  do {                                      \
    (void)sizeof(name);                     \
    (void)sizeof(flow_id);                  \
  } while (false)
#define FCP_TRACE_FLOW_STEP(name, flow_id) \
  do {                                     \
    (void)sizeof(name);                    \
    (void)sizeof(flow_id);                 \
  } while (false)
#define FCP_TRACE_FLOW_END(name, flow_id) \
  do {                                    \
    (void)sizeof(name);                   \
    (void)sizeof(flow_id);                \
  } while (false)

#else

#define FCP_TRACE_CONCAT_(a, b) a##b
#define FCP_TRACE_CONCAT(a, b) FCP_TRACE_CONCAT_(a, b)

/// Scoped duration span; `name` must be a string literal.
#define FCP_TRACE_SPAN(name) \
  ::fcp::trace::Span FCP_TRACE_CONCAT(fcp_trace_span_, __LINE__)(name)

/// Scoped span carrying a flow id and a numeric arg.
#define FCP_TRACE_SPAN_FLOW(name, flow_id, arg_v)                       \
  ::fcp::trace::Span FCP_TRACE_CONCAT(fcp_trace_span_, __LINE__)(       \
      name, static_cast<uint64_t>(flow_id), static_cast<uint32_t>(arg_v))

#define FCP_TRACE_INSTANT(name, flow_id, arg_v)                         \
  ::fcp::trace::Emit(::fcp::trace::Phase::kInstant, name,               \
                     static_cast<uint64_t>(flow_id),                    \
                     static_cast<uint32_t>(arg_v))

#define FCP_TRACE_FLOW_BEGIN(name, flow_id)                  \
  ::fcp::trace::Emit(::fcp::trace::Phase::kFlowBegin, name,  \
                     static_cast<uint64_t>(flow_id))

#define FCP_TRACE_FLOW_STEP(name, flow_id)                  \
  ::fcp::trace::Emit(::fcp::trace::Phase::kFlowStep, name,  \
                     static_cast<uint64_t>(flow_id))

#define FCP_TRACE_FLOW_END(name, flow_id)                  \
  ::fcp::trace::Emit(::fcp::trace::Phase::kFlowEnd, name,  \
                     static_cast<uint64_t>(flow_id))

#endif  // FCP_TRACE_DISABLED

#endif  // FCP_TELEMETRY_TRACE_H_
