// MetricReporter: background thread that periodically serializes a
// MetricRegistry to stderr or a file, in JSON or Prometheus text format.
// Owned by tools (`fcpmine --metrics=...`), never by library code — the
// engines only expose Snapshot() and let the caller decide when/where to
// report.

#ifndef FCP_TELEMETRY_REPORTER_H_
#define FCP_TELEMETRY_REPORTER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "telemetry/registry.h"

namespace fcp::telemetry {

struct ReporterOptions {
  enum class Format { kJson, kPrometheus };

  Format format = Format::kJson;
  /// Output path; empty writes to stderr. A file is rewritten in place on
  /// every tick so it always holds one complete, parseable report.
  std::string path;
  /// Reporting period. <= 0 disables periodic reporting — no background
  /// thread is started and the only output is the final report at Stop().
  int64_t interval_ms = 10000;
};

class MetricReporter {
 public:
  MetricReporter(const MetricRegistry* registry, ReporterOptions options);
  ~MetricReporter();

  MetricReporter(const MetricReporter&) = delete;
  MetricReporter& operator=(const MetricReporter&) = delete;

  /// Stops the background thread and emits one final report so short runs
  /// (shorter than one interval) still produce output. Idempotent; also
  /// called by the destructor.
  void Stop();

  /// Serializes the registry once in the configured format (also used for
  /// the final report).
  std::string Render() const;

 private:
  void Loop();
  void EmitOnce();

  const MetricRegistry* registry_;
  const ReporterOptions options_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace fcp::telemetry

#endif  // FCP_TELEMETRY_REPORTER_H_
