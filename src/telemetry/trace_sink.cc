// Chrome trace-event serialization, slow-op forensic dumps and the fatal-
// signal black box for the fcp::trace flight recorder (see trace.h).

#include "telemetry/trace.h"

#include <pthread.h>
#include <signal.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>

namespace fcp::trace {
namespace {

// --- JSON building helpers. ------------------------------------------------

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Microsecond timestamp with nanosecond resolution kept as decimals.
void AppendTsUs(std::string* out, int64_t ts_ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ts_ns / 1000),
                static_cast<long long>(ts_ns % 1000));
  *out += buf;
}

void AppendEvent(std::string* out, const TraceEvent& event, uint64_t tid,
                 bool* first) {
  if (!*first) *out += ",\n";
  *first = false;
  const char ph = static_cast<char>(event.phase);
  *out += "  {\"name\": ";
  AppendJsonString(out, event.name != nullptr ? event.name : "?");
  *out += ", \"ph\": \"";
  out->push_back(ph);
  *out += "\", \"ts\": ";
  AppendTsUs(out, event.ts_ns);
  *out += ", \"pid\": 1, \"tid\": " + std::to_string(tid);
  if (ph == 's' || ph == 't' || ph == 'f') {
    // Flow events: Chrome groups them by (cat, id) and binds each to the
    // enclosing slice of its thread at its timestamp.
    char idbuf[32];
    std::snprintf(idbuf, sizeof(idbuf), "0x%llx",
                  static_cast<unsigned long long>(event.flow));
    *out += ", \"cat\": \"flow\", \"id\": \"";
    *out += idbuf;
    *out += "\"";
    if (ph == 'f') *out += ", \"bp\": \"e\"";
  } else if (ph == 'i') {
    *out += ", \"s\": \"t\"";  // thread-scoped instant
  }
  if (event.arg != 0 || (event.flow != 0 && ph != 's' && ph != 't' &&
                         ph != 'f')) {
    *out += ", \"args\": {\"arg\": " + std::to_string(event.arg);
    if (event.flow != 0 && ph != 's' && ph != 't' && ph != 'f') {
      *out += ", \"flow\": " + std::to_string(event.flow);
    }
    *out += "}";
  }
  *out += "}";
}

// --- Minimal strict JSON parser (for our own output + fcptrace input). -----

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const char* what) {
    if (error_ != nullptr) {
      *error_ = std::string(what) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (c == 't' || c == 'f') {
      const std::string_view word = c == 't' ? "true" : "false";
      if (text_.compare(pos_, word.size(), word) != 0) {
        return Fail("bad literal");
      }
      pos_ += word.size();
      out->kind = JsonValue::Kind::kBool;
      out->boolean = c == 't';
      return true;
    }
    if (c == 'n') {
      if (text_.compare(pos_, 4, "null") != 0) return Fail("bad literal");
      pos_ += 4;
      out->kind = JsonValue::Kind::kNull;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Fail("bad \\u escape");
            }
            // ASCII only (our own output never emits more); others pass
            // through as '?' rather than failing the parse.
            c = code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default: return Fail("bad escape");
        }
      }
      out->push_back(c);
    }
    if (pos_ >= text_.size()) return Fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected value");
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(text_.c_str() + start, nullptr);
    return true;
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      SkipWs();
      if (!ParseValue(&element)) return false;
      out->array.push_back(std::move(element));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return Fail("expected ':'");
      ++pos_;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

bool WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  std::fclose(f);
  return written == contents.size();
}

// --- Slow-op state. --------------------------------------------------------

/// Cap on the in-memory slow-op summary ring behind RecentSlowOps().
constexpr size_t kRecentSlowOpCap = 64;

struct SlowOpState {
  std::mutex mu;
  SlowOpOptions options;
  std::atomic<int64_t> threshold_ns{0};
  std::atomic<uint64_t> dumps{0};
  std::deque<SlowOpSummary> recent;  ///< oldest first, <= kRecentSlowOpCap
};

SlowOpState& GetSlowOpState() {
  static SlowOpState* state = new SlowOpState();
  return *state;
}

// --- Crash handler state. --------------------------------------------------

constexpr size_t kCrashPathCap = 1024;
char g_crash_path[kCrashPathCap] = {};
bool g_crash_handler_installed = false;

/// Registered crash-aux providers (RegisterCrashAux). Fixed storage, plain
/// writes guarded by a mutex on the register side; the crash handler reads
/// the release-published count without locking (it must not block on a
/// mutex a crashed thread might hold).
constexpr size_t kCrashAuxCap = 4;
struct CrashAuxEntry {
  const char* key = nullptr;
  CrashAuxProvider provider = nullptr;
};
CrashAuxEntry g_crash_aux[kCrashAuxCap];
std::atomic<size_t> g_crash_aux_count{0};
std::mutex g_crash_aux_mu;

void CrashHandler(int signum) {
  // Restore default disposition first so a second fault (or the re-raise
  // below) terminates instead of recursing.
  std::signal(signum, SIG_DFL);
  // Mask SIGPROF for the duration of the dump: the sampling profiler's
  // per-thread timers keep firing while we serialize, and a sample taken
  // inside the (already not async-signal-safe) dump path helps nobody.
  sigset_t block;
  sigemptyset(&block);
  sigaddset(&block, SIGPROF);
  pthread_sigmask(SIG_BLOCK, &block, nullptr);
  if (g_crash_path[0] != '\0') {
    // Not async-signal-safe (allocates while serializing); a best-effort
    // black box — see InstallCrashHandler's contract in trace.h.
    std::string doc = SerializeChromeTrace(Snapshot());
    const size_t aux_count =
        g_crash_aux_count.load(std::memory_order_acquire);
    const size_t splice = doc.rfind('}');
    if (splice != std::string::npos) {
      std::string extra;
      for (size_t i = 0; i < aux_count && i < kCrashAuxCap; ++i) {
        const CrashAuxEntry& entry = g_crash_aux[i];
        if (entry.key == nullptr || entry.provider == nullptr) continue;
        extra += ", \"";
        extra += entry.key;
        extra += "\": ";
        extra += entry.provider();
      }
      doc.insert(splice, extra);
    }
    WriteFile(g_crash_path, doc);
    std::fprintf(stderr, "fcp::trace: fatal signal %d, flight recorder -> %s\n",
                 signum, g_crash_path);
  }
  raise(signum);
}

}  // namespace

std::string SerializeChromeTrace(const std::vector<ThreadTrace>& threads) {
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  // Metadata first: process name and one thread_name entry per track.
  out +=
      "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"name\": \"fcp\"}}";
  first = false;
  for (const ThreadTrace& thread : threads) {
    out += ",\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": " +
           std::to_string(thread.tid) + ", \"args\": {\"name\": ";
    AppendJsonString(&out, thread.name.empty()
                               ? "thread-" + std::to_string(thread.tid)
                               : thread.name);
    out += "}}";
  }
  for (const ThreadTrace& thread : threads) {
    for (const TraceEvent& event : thread.events) {
      AppendEvent(&out, event, thread.tid, &first);
    }
    // Close any span left open at snapshot time (e.g. recording stopped
    // mid-span) so strict viewers still pair every B with an E.
    int64_t open = 0;
    int64_t last_ts = 0;
    for (const TraceEvent& event : thread.events) {
      if (event.phase == Phase::kBegin) ++open;
      if (event.phase == Phase::kEnd && open > 0) --open;
      last_ts = event.ts_ns > last_ts ? event.ts_ns : last_ts;
    }
    for (int64_t i = 0; i < open; ++i) {
      TraceEvent closer;
      closer.ts_ns = last_ts;
      closer.name = "unclosed";
      closer.phase = Phase::kEnd;
      AppendEvent(&out, closer, thread.tid, &first);
    }
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

bool WriteChromeTrace(const std::string& path) {
  return WriteFile(path, SerializeChromeTrace(Snapshot()));
}

std::optional<std::vector<ParsedTraceEvent>> ParseChromeTraceJson(
    const std::string& json, std::string* error) {
  std::string local_error;
  std::string* err = error != nullptr ? error : &local_error;
  JsonValue root;
  if (!JsonParser(json, err).Parse(&root)) return std::nullopt;
  if (root.kind != JsonValue::Kind::kObject) {
    *err = "top level is not an object";
    return std::nullopt;
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    *err = "missing traceEvents array";
    return std::nullopt;
  }
  std::vector<ParsedTraceEvent> out;
  out.reserve(events->array.size());
  for (size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    if (e.kind != JsonValue::Kind::kObject) {
      *err = "traceEvents[" + std::to_string(i) + "] is not an object";
      return std::nullopt;
    }
    ParsedTraceEvent parsed;
    const JsonValue* ph = e.Find("ph");
    const JsonValue* ts = e.Find("ts");
    const JsonValue* pid = e.Find("pid");
    const JsonValue* tid = e.Find("tid");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString ||
        ph->str.size() != 1) {
      *err = "traceEvents[" + std::to_string(i) + "] missing ph";
      return std::nullopt;
    }
    parsed.ph = ph->str[0];
    if (pid == nullptr || pid->kind != JsonValue::Kind::kNumber ||
        tid == nullptr || tid->kind != JsonValue::Kind::kNumber) {
      *err = "traceEvents[" + std::to_string(i) + "] missing pid/tid";
      return std::nullopt;
    }
    parsed.pid = static_cast<uint64_t>(pid->number);
    parsed.tid = static_cast<uint64_t>(tid->number);
    if (parsed.ph != 'M') {
      if (ts == nullptr || ts->kind != JsonValue::Kind::kNumber) {
        *err = "traceEvents[" + std::to_string(i) + "] missing ts";
        return std::nullopt;
      }
      parsed.ts_us = ts->number;
    }
    const JsonValue* name = e.Find("name");
    if (name != nullptr && name->kind == JsonValue::Kind::kString) {
      parsed.name = name->str;
    }
    if (parsed.name.empty() && parsed.ph != 'E') {
      *err = "traceEvents[" + std::to_string(i) + "] missing name";
      return std::nullopt;
    }
    const JsonValue* cat = e.Find("cat");
    if (cat != nullptr && cat->kind == JsonValue::Kind::kString) {
      parsed.cat = cat->str;
    }
    const JsonValue* id = e.Find("id");
    if (id != nullptr && id->kind == JsonValue::Kind::kString) {
      parsed.id = id->str;
    }
    if (parsed.ph == 's' || parsed.ph == 't' || parsed.ph == 'f') {
      if (parsed.id.empty()) {
        *err = "flow event traceEvents[" + std::to_string(i) + "] missing id";
        return std::nullopt;
      }
    }
    const JsonValue* dur = e.Find("dur");
    if (dur != nullptr && dur->kind == JsonValue::Kind::kNumber) {
      parsed.dur_us = dur->number;
    }
    const JsonValue* args = e.Find("args");
    if (args != nullptr && args->kind == JsonValue::Kind::kObject) {
      const JsonValue* arg_name = args->Find("name");
      if (arg_name != nullptr &&
          arg_name->kind == JsonValue::Kind::kString) {
        parsed.arg_name = arg_name->str;
      }
    }
    out.push_back(std::move(parsed));
  }
  return out;
}

bool ValidateChromeTraceJson(const std::string& json, std::string* error) {
  return ParseChromeTraceJson(json, error).has_value();
}

void ConfigureSlowOp(const SlowOpOptions& options) {
  SlowOpState& state = GetSlowOpState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.options = options;
  state.threshold_ns.store(options.threshold_ns < 0 ? 0 : options.threshold_ns,
                           std::memory_order_relaxed);
  state.dumps.store(0, std::memory_order_relaxed);
  state.recent.clear();
}

std::vector<SlowOpSummary> RecentSlowOps() {
  SlowOpState& state = GetSlowOpState();
  std::lock_guard<std::mutex> lock(state.mu);
  return std::vector<SlowOpSummary>(state.recent.begin(), state.recent.end());
}

int64_t SlowOpThresholdNs() {
  return GetSlowOpState().threshold_ns.load(std::memory_order_relaxed);
}

uint64_t SlowOpDumpCount() {
  return GetSlowOpState().dumps.load(std::memory_order_relaxed);
}

std::string WriteSlowOpDump(const SlowOpReport& report) {
  SlowOpState& state = GetSlowOpState();
  std::string path;
  int64_t threshold = 0;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (state.options.threshold_ns <= 0) return "";
    const uint64_t n = state.dumps.load(std::memory_order_relaxed);
    const bool dump_to_disk =
        n < static_cast<uint64_t>(state.options.max_dumps);
    if (dump_to_disk) {
      state.dumps.store(n + 1, std::memory_order_relaxed);
      path = state.options.dump_prefix + ".slowop-" + std::to_string(n) +
             ".json";
    }
    // Retain the in-memory summary even once the disk cap is exhausted —
    // /tracez keeps reporting fresh slow ops for the life of the process.
    SlowOpSummary summary;
    summary.captured_unix_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    summary.op = report.op;
    summary.duration_ns = report.duration_ns;
    summary.miner = report.miner;
    summary.shard = report.shard;
    summary.segment_id = report.segment_id;
    summary.segment_length = report.segment_length;
    summary.dump_path = path;
    state.recent.push_back(std::move(summary));
    if (state.recent.size() > kRecentSlowOpCap) state.recent.pop_front();
    if (!dump_to_disk) return "";
    threshold = state.options.threshold_ns;
  }

  std::string out = "{\n";
  out += "  \"op\": ";
  AppendJsonString(&out, report.op);
  out += ",\n  \"duration_ns\": " + std::to_string(report.duration_ns);
  out += ",\n  \"threshold_ns\": " + std::to_string(threshold);
  out += ",\n  \"miner\": ";
  AppendJsonString(&out, report.miner);
  out += ",\n  \"shard\": " + std::to_string(report.shard);
  out += ",\n  \"segment\": {\n    \"id\": " +
         std::to_string(report.segment_id);
  out += ",\n    \"stream\": " + std::to_string(report.stream);
  out += ",\n    \"length\": " + std::to_string(report.segment_length);
  out += ",\n    \"start_ms\": " + std::to_string(report.segment_start_ms);
  out += ",\n    \"end_ms\": " + std::to_string(report.segment_end_ms);
  out += ",\n    \"debug\": ";
  AppendJsonString(&out, report.segment_debug);
  out += "\n  },\n  \"state\": {";
  for (size_t i = 0; i < report.state.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(&out, report.state[i].first);
    out += ": " + std::to_string(report.state[i].second);
  }
  out += "\n  },\n  \"recorder_tail\": ";
  // The flight-recorder tail leading up to the slow op, capped per thread so
  // a dump stays readable; embedded as a complete Chrome trace document so
  // the tail itself opens in Perfetto when extracted.
  constexpr size_t kTailCap = 512;
  std::vector<ThreadTrace> threads = Snapshot();
  for (ThreadTrace& thread : threads) {
    if (thread.events.size() > kTailCap) {
      thread.events.erase(thread.events.begin(),
                          thread.events.end() - kTailCap);
    }
  }
  out += SerializeChromeTrace(threads);
  out += "}\n";
  WriteFile(path, out);
  return path;
}

void InstallCrashHandler(const std::string& path) {
  std::strncpy(g_crash_path, path.c_str(), kCrashPathCap - 1);
  g_crash_path[kCrashPathCap - 1] = '\0';
  if (g_crash_handler_installed) return;
  g_crash_handler_installed = true;
  for (const int signum :
       {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT}) {
    std::signal(signum, CrashHandler);
  }
}

void RegisterCrashAux(const char* key, CrashAuxProvider provider) {
  if (key == nullptr || provider == nullptr) return;
  std::lock_guard<std::mutex> lock(g_crash_aux_mu);
  const size_t count = g_crash_aux_count.load(std::memory_order_relaxed);
  for (size_t i = 0; i < count; ++i) {
    if (std::strcmp(g_crash_aux[i].key, key) == 0) {
      g_crash_aux[i].provider = provider;
      return;
    }
  }
  if (count >= kCrashAuxCap) return;  // fixed cap, silently full
  g_crash_aux[count].key = key;
  g_crash_aux[count].provider = provider;
  g_crash_aux_count.store(count + 1, std::memory_order_release);
}

}  // namespace fcp::trace
