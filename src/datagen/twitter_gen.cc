#include "datagen/twitter_gen.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/check.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace fcp {

Status TwitterConfig::Validate() const {
  if (num_users == 0) return Status::InvalidArgument("num_users == 0");
  if (vocab_size == 0) return Status::InvalidArgument("vocab_size == 0");
  if (words_per_tweet_min < 1 || words_per_tweet_min > words_per_tweet_max) {
    return Status::InvalidArgument("bad words_per_tweet range");
  }
  if (mean_tweet_gap <= 0 || min_tweet_gap <= 0) {
    return Status::InvalidArgument("tweet gaps must be positive");
  }
  if (num_events > 0) {
    if (event_keywords_min < 1 || event_keywords_min > event_keywords_max) {
      return Status::InvalidArgument("bad event keyword range");
    }
    if (event_participants_min < 1 ||
        event_participants_min > event_participants_max) {
      return Status::InvalidArgument("bad event participants range");
    }
    if (event_participants_max > num_users) {
      return Status::InvalidArgument("event participants exceed user count");
    }
    if (event_duration <= 0) {
      return Status::InvalidArgument("event_duration must be positive");
    }
  }
  return Status::OK();
}

namespace {

// Synthetic "hot event" vocabularies used to label planted keyword groups in
// Table-3-style reports. Purely illustrative names of our own making.
constexpr const char* kEventNames[] = {
    "stadium final whistle", "airport ground stop",  "comet visible tonight",
    "election exit polls",   "metro line outage",    "storm landfall warning",
    "award show winner",     "derby photo finish",   "rocket launch window",
    "festival headline act",
};
constexpr const char* kEventWords[][4] = {
    {"stadium", "final", "whistle", "goal"},
    {"airport", "ground", "stop", "delay"},
    {"comet", "visible", "tonight", "sky"},
    {"election", "exit", "polls", "count"},
    {"metro", "line", "outage", "commute"},
    {"storm", "landfall", "warning", "coast"},
    {"award", "show", "winner", "speech"},
    {"derby", "photo", "finish", "odds"},
    {"rocket", "launch", "window", "pad"},
    {"festival", "headline", "act", "encore"},
};
constexpr size_t kNumEventNames = std::size(kEventNames);

std::vector<uint32_t> SampleDistinctUsers(uint32_t n, uint32_t bound,
                                          Rng& rng) {
  std::unordered_set<uint32_t> seen;
  std::vector<uint32_t> out;
  out.reserve(n);
  while (out.size() < n) {
    const uint32_t v = static_cast<uint32_t>(rng.Below(bound));
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace

std::string TwitterTrace::WordName(ObjectId id) const {
  if (id < keyword_names.size() && !keyword_names[id].empty()) {
    return keyword_names[id];
  }
  std::ostringstream os;
  os << "w" << id;
  return os.str();
}

TwitterTrace GenerateTwitter(const TwitterConfig& config) {
  FCP_CHECK(config.Validate().ok());
  Rng rng(config.seed);
  ZipfDistribution zipf(config.vocab_size, config.zipf_s);

  TwitterTrace trace;
  trace.num_users = config.num_users;

  // Reserve ObjectIds above the background vocabulary for planted keywords,
  // so event keyword sets never collide with hot Zipf words.
  ObjectId next_keyword_id = config.vocab_size;

  // Event time horizon: enough for total_tweets across all users.
  const double tweets_per_user = static_cast<double>(config.total_tweets) /
                                 static_cast<double>(config.num_users);
  const Timestamp duration_ms = static_cast<Timestamp>(
      tweets_per_user * static_cast<double>(config.mean_tweet_gap));

  struct Tweet {
    StreamId user;
    Timestamp time;
    std::vector<ObjectId> words;
  };
  std::vector<Tweet> tweets;
  tweets.reserve(config.total_tweets + 1024);

  // --- Background tweets ---------------------------------------------------
  // Per user: renewal process with mean gap `mean_tweet_gap`, floored at
  // `min_tweet_gap` so one tweet == one segment under xi < min_tweet_gap.
  for (StreamId user = 0; user < config.num_users; ++user) {
    double t = rng.Exponential(static_cast<double>(config.mean_tweet_gap));
    while (t < static_cast<double>(duration_ms) &&
           tweets.size() < config.total_tweets) {
      Tweet tweet;
      tweet.user = user;
      tweet.time = static_cast<Timestamp>(t);
      const uint32_t n_words = static_cast<uint32_t>(
          rng.Range(config.words_per_tweet_min, config.words_per_tweet_max));
      tweet.words.reserve(n_words);
      for (uint32_t w = 0; w < n_words; ++w) {
        tweet.words.push_back(static_cast<ObjectId>(zipf.Sample(rng)));
      }
      tweets.push_back(std::move(tweet));
      const double gap =
          std::max(static_cast<double>(config.min_tweet_gap),
                   rng.Exponential(static_cast<double>(config.mean_tweet_gap)));
      t += gap;
    }
  }

  // --- Planted events ------------------------------------------------------
  // Each participating user posts one tweet containing the full keyword set
  // (plus noise) inside the burst window. A real event would also produce
  // partial mentions; the full-set tweets are what make it an exact FCP.
  for (uint32_t e = 0; e < config.num_events; ++e) {
    EventPlan plan;
    const size_t name_idx = e % kNumEventNames;
    plan.name = kEventNames[name_idx];
    const uint32_t n_kw = static_cast<uint32_t>(
        rng.Range(config.event_keywords_min,
                  std::min<int64_t>(config.event_keywords_max, 4)));
    for (uint32_t k = 0; k < n_kw; ++k) {
      const ObjectId id = next_keyword_id++;
      plan.keywords.push_back(id);
      if (trace.keyword_names.size() <= id) {
        trace.keyword_names.resize(id + 1);
      }
      std::ostringstream word;
      word << kEventWords[name_idx][k];
      if (e >= kNumEventNames) word << "_" << (e / kNumEventNames);
      trace.keyword_names[id] = word.str();
    }
    std::sort(plan.keywords.begin(), plan.keywords.end());

    plan.num_participants = static_cast<uint32_t>(rng.Range(
        config.event_participants_min, config.event_participants_max));
    const Timestamp latest_start =
        std::max<Timestamp>(1, duration_ms - config.event_duration);
    plan.start = rng.Range(0, latest_start);
    plan.end = plan.start + config.event_duration;

    const std::vector<uint32_t> users =
        SampleDistinctUsers(plan.num_participants, config.num_users, rng);
    for (uint32_t user : users) {
      Tweet tweet;
      tweet.user = user;
      tweet.time = rng.Range(plan.start, plan.end);
      tweet.words = plan.keywords;
      // Poisson-ish noise words.
      const uint32_t noise = static_cast<uint32_t>(
          rng.Exponential(config.event_noise_words));
      for (uint32_t w = 0; w < noise; ++w) {
        tweet.words.push_back(static_cast<ObjectId>(zipf.Sample(rng)));
      }
      tweets.push_back(std::move(tweet));
    }
    trace.planted_events.push_back(std::move(plan));
  }

  // --- Serialize: sort tweets by time, then expand to word events. --------
  std::sort(tweets.begin(), tweets.end(), [](const Tweet& a, const Tweet& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.user < b.user;
  });

  // Event tweets may violate a user's min_tweet_gap; nudge collisions apart
  // per user so the "tweet == segment" invariant holds under xi.
  {
    std::vector<Timestamp> last_time(config.num_users, kMinTimestamp);
    bool nudged = false;
    for (Tweet& tweet : tweets) {
      Timestamp& last = last_time[tweet.user];
      if (last != kMinTimestamp && tweet.time - last < config.min_tweet_gap) {
        tweet.time = last + config.min_tweet_gap;
        nudged = true;
      }
      last = tweet.time;
    }
    if (nudged) {
      std::sort(tweets.begin(), tweets.end(),
                [](const Tweet& a, const Tweet& b) {
                  if (a.time != b.time) return a.time < b.time;
                  return a.user < b.user;
                });
    }
  }

  trace.num_tweets = tweets.size();
  trace.events.reserve(tweets.size() * config.words_per_tweet_max / 2);
  for (const Tweet& tweet : tweets) {
    for (ObjectId word : tweet.words) {
      trace.events.push_back(ObjectEvent{tweet.user, word, tweet.time});
    }
  }
  return trace;
}

}  // namespace fcp
