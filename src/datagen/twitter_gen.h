// Synthetic microblog workload modeled on the paper's Twitter dataset
// (Tweets2011; see DESIGN.md §3).
//
// Each user is one stream; each tweet is a bag of words sharing a single
// timestamp, and a user's tweets are spaced more than xi apart so that each
// tweet is exactly one segment (the paper: "a tweet corresponds to a
// segment"). Background words follow a Zipf distribution; planted *events*
// (keyword sets bursting across many user streams within a short interval)
// are the ground-truth FCPs and reproduce the Tables 3-4 scenario.

#ifndef FCP_DATAGEN_TWITTER_GEN_H_
#define FCP_DATAGEN_TWITTER_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace fcp {

/// Ground truth for one planted hot event.
struct EventPlan {
  std::string name;                 ///< label for Table-3-style reports
  std::vector<ObjectId> keywords;   ///< the co-occurring word set (sorted)
  Timestamp start = 0;              ///< burst window start (event time)
  Timestamp end = 0;                ///< burst window end
  uint32_t num_participants = 0;    ///< users tweeting about the event
};

/// Configuration of the Twitter-like generator.
struct TwitterConfig {
  uint32_t num_users = 5000;
  uint32_t vocab_size = 50000;
  double zipf_s = 1.0;  ///< word popularity skew

  uint32_t words_per_tweet_min = 3;
  uint32_t words_per_tweet_max = 8;

  /// Target number of tweets (the paper's Ds knob for Twitter).
  uint64_t total_tweets = 100000;

  /// Mean gap between two tweets of the same user in event time. Tweets of
  /// one user are additionally forced >= min_tweet_gap apart.
  DurationMs mean_tweet_gap = Minutes(10);
  DurationMs min_tweet_gap = Seconds(61);  ///< keep > xi=60s: tweet==segment

  // --- Event planting ------------------------------------------------------
  uint32_t num_events = 8;
  uint32_t event_keywords_min = 2;
  uint32_t event_keywords_max = 4;
  /// Number of distinct users that tweet about one event.
  uint32_t event_participants_min = 50;
  uint32_t event_participants_max = 200;
  /// Length of the burst window in event time.
  DurationMs event_duration = Minutes(20);
  /// Probability that an event tweet also carries background noise words.
  double event_noise_words = 2.0;  ///< mean extra Zipf words per event tweet

  uint64_t seed = 7;

  Status Validate() const;
};

/// Output: interleaved trace (sorted by time) + ground truth. Every tweet
/// appears as `words_per_tweet` consecutive ObjectEvents sharing one
/// (stream, time).
struct TwitterTrace {
  std::vector<ObjectEvent> events;
  std::vector<EventPlan> planted_events;
  uint64_t num_tweets = 0;
  uint32_t num_users = 0;

  /// Display name of a word (planted event keywords get their event's
  /// vocabulary, e.g. "super", "bowl"; background words are "w<id>").
  std::string WordName(ObjectId id) const;

  /// Names assigned to planted keywords (index = ObjectId) — empty for
  /// background words.
  std::vector<std::string> keyword_names;
};

/// Generates the trace. The configuration must validate OK (checked).
TwitterTrace GenerateTwitter(const TwitterConfig& config);

}  // namespace fcp

#endif  // FCP_DATAGEN_TWITTER_GEN_H_
