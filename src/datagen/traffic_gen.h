// Synthetic vehicle-passing-record (VPR) workload modeled on the paper's TR
// dataset (traffic surveillance cameras in Jinan; see DESIGN.md §3).
//
// Each camera is one stream. Background traffic gives every camera a dense,
// continuous arrival process (adjacent segments overlap heavily — the regime
// where the Seg-tree compresses well). Planted *convoys* — groups of vehicles
// passing sequences of cameras together — are the ground-truth FCPs.

#ifndef FCP_DATAGEN_TRAFFIC_GEN_H_
#define FCP_DATAGEN_TRAFFIC_GEN_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace fcp {

/// Ground truth for one planted convoy.
struct ConvoyPlan {
  std::vector<ObjectId> vehicles;  ///< the co-travelling group (sorted)
  std::vector<StreamId> cameras;   ///< the route (ordered by passage time)
  Timestamp first_passage = 0;     ///< time the convoy hits its first camera
  Timestamp last_passage = 0;      ///< time the convoy leaves its last camera
};

/// Configuration of the TR-like generator. Defaults produce segment sizes
/// comparable to the real TR data (≈5-8 VPRs per 60 s camera window).
struct TrafficConfig {
  uint32_t num_cameras = 200;
  uint32_t num_vehicles = 20000;

  /// Background VPR rate of one camera, in events per second of *event
  /// time*. 0.1 Hz == 6 VPRs/min, matching the Jinan density (20M/day over
  /// 3000 cameras).
  double per_camera_rate_hz = 0.1;

  /// Total number of events to generate (the paper's Ds knob). Event time
  /// extends as far as needed: duration ≈ total_events /
  /// (num_cameras * per_camera_rate_hz).
  uint64_t total_events = 100000;

  /// Vehicles revisit cameras with temporal locality: with this probability
  /// the next background VPR of a camera repeats one of the camera's recent
  /// vehicles instead of drawing a fresh one. Creates realistic repeats.
  double revisit_probability = 0.2;

  // --- Convoy planting -----------------------------------------------------
  uint32_t num_convoys = 20;
  uint32_t convoy_size_min = 2;  ///< vehicles per convoy
  uint32_t convoy_size_max = 4;
  uint32_t route_len_min = 4;  ///< cameras on a convoy's route
  uint32_t route_len_max = 8;
  /// Gap between consecutive cameras on a route (event-time ms).
  DurationMs inter_camera_gap_min = Seconds(30);
  DurationMs inter_camera_gap_max = Seconds(120);
  /// All convoy members pass one camera within this span (must be << xi).
  DurationMs member_spread = Seconds(20);

  uint64_t seed = 42;

  Status Validate() const;
};

/// Output of the generator: the interleaved multi-stream trace (sorted by
/// time) plus ground truth.
struct TrafficTrace {
  std::vector<ObjectEvent> events;  ///< sorted by (time, stream)
  std::vector<ConvoyPlan> convoys;
  uint32_t num_cameras = 0;
};

/// Generates the trace. The configuration must validate OK (checked).
TrafficTrace GenerateTraffic(const TrafficConfig& config);

}  // namespace fcp

#endif  // FCP_DATAGEN_TRAFFIC_GEN_H_
