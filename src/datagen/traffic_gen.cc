#include "datagen/traffic_gen.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/check.h"
#include "util/rng.h"

namespace fcp {

Status TrafficConfig::Validate() const {
  if (num_cameras == 0) return Status::InvalidArgument("num_cameras == 0");
  if (num_vehicles == 0) return Status::InvalidArgument("num_vehicles == 0");
  if (per_camera_rate_hz <= 0) {
    return Status::InvalidArgument("per_camera_rate_hz must be positive");
  }
  if (convoy_size_min < 1 || convoy_size_min > convoy_size_max) {
    return Status::InvalidArgument("bad convoy size range");
  }
  if (route_len_min < 1 || route_len_min > route_len_max) {
    return Status::InvalidArgument("bad route length range");
  }
  if (route_len_max > num_cameras) {
    return Status::InvalidArgument("route longer than camera count");
  }
  if (num_convoys > 0 && convoy_size_max > num_vehicles) {
    return Status::InvalidArgument("convoy larger than vehicle population");
  }
  if (inter_camera_gap_min <= 0 ||
      inter_camera_gap_min > inter_camera_gap_max) {
    return Status::InvalidArgument("bad inter-camera gap range");
  }
  if (member_spread < 0) return Status::InvalidArgument("bad member_spread");
  return Status::OK();
}

namespace {

// Picks `n` distinct values in [0, bound) (n << bound in practice).
std::vector<uint32_t> SampleDistinct(uint32_t n, uint32_t bound, Rng& rng) {
  std::unordered_set<uint32_t> seen;
  std::vector<uint32_t> out;
  out.reserve(n);
  while (out.size() < n) {
    const uint32_t v = static_cast<uint32_t>(rng.Below(bound));
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace

TrafficTrace GenerateTraffic(const TrafficConfig& config) {
  FCP_CHECK(config.Validate().ok());
  Rng rng(config.seed);

  TrafficTrace trace;
  trace.num_cameras = config.num_cameras;
  trace.events.reserve(config.total_events + 1024);

  const double total_rate =
      config.per_camera_rate_hz * static_cast<double>(config.num_cameras);
  const double duration_s =
      static_cast<double>(config.total_events) / total_rate;
  const Timestamp duration_ms = static_cast<Timestamp>(duration_s * 1000.0);

  // --- Background traffic: per camera, Poisson arrivals with revisits. ----
  // Recent vehicles per camera, for the revisit process.
  std::vector<std::deque<ObjectId>> recent(config.num_cameras);
  constexpr size_t kRecentWindow = 16;
  const double mean_gap_ms = 1000.0 / config.per_camera_rate_hz;

  for (StreamId cam = 0; cam < config.num_cameras; ++cam) {
    double t = rng.Exponential(mean_gap_ms);
    auto& rec = recent[cam];
    while (t < static_cast<double>(duration_ms)) {
      ObjectId vehicle;
      if (!rec.empty() && rng.Chance(config.revisit_probability)) {
        vehicle = rec[rng.Below(rec.size())];
      } else {
        vehicle = static_cast<ObjectId>(rng.Below(config.num_vehicles));
      }
      rec.push_back(vehicle);
      if (rec.size() > kRecentWindow) rec.pop_front();
      trace.events.push_back(
          ObjectEvent{cam, vehicle, static_cast<Timestamp>(t)});
      t += rng.Exponential(mean_gap_ms);
    }
  }

  // --- Planted convoys -----------------------------------------------------
  for (uint32_t c = 0; c < config.num_convoys; ++c) {
    ConvoyPlan plan;
    const uint32_t size = static_cast<uint32_t>(
        rng.Range(config.convoy_size_min, config.convoy_size_max));
    const uint32_t route_len = static_cast<uint32_t>(
        rng.Range(config.route_len_min, config.route_len_max));
    plan.vehicles = SampleDistinct(size, config.num_vehicles, rng);
    std::sort(plan.vehicles.begin(), plan.vehicles.end());
    const std::vector<uint32_t> route =
        SampleDistinct(route_len, config.num_cameras, rng);
    plan.cameras.assign(route.begin(), route.end());

    // Start somewhere that leaves room for the whole route.
    const DurationMs max_route_span =
        static_cast<DurationMs>(route_len) * config.inter_camera_gap_max +
        config.member_spread;
    const Timestamp latest_start =
        std::max<Timestamp>(1, duration_ms - max_route_span);
    Timestamp t = rng.Range(0, latest_start);
    plan.first_passage = t;
    for (StreamId cam : plan.cameras) {
      for (ObjectId vehicle : plan.vehicles) {
        const Timestamp passage =
            t + rng.Range(0, std::max<DurationMs>(1, config.member_spread));
        trace.events.push_back(ObjectEvent{cam, vehicle, passage});
        plan.last_passage = std::max(plan.last_passage, passage);
      }
      t += rng.Range(config.inter_camera_gap_min, config.inter_camera_gap_max);
    }
    trace.convoys.push_back(std::move(plan));
  }

  // Interleave all streams by time (stable tiebreak on stream then object so
  // runs are bit-reproducible).
  std::sort(trace.events.begin(), trace.events.end(),
            [](const ObjectEvent& a, const ObjectEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.stream != b.stream) return a.stream < b.stream;
              return a.object < b.object;
            });

  // Trim to the requested Ds (convoy events may push past the target).
  if (trace.events.size() > config.total_events) {
    trace.events.resize(config.total_events);
  }
  return trace;
}

}  // namespace fcp
