#include "stream/segmenter.h"

#include "common/check.h"

namespace fcp {

Segmenter::Segmenter(StreamId stream, DurationMs xi, SegmentIdGen* id_gen,
                     SegmentPool* pool)
    : stream_(stream), xi_(xi), id_gen_(id_gen), pool_(pool) {
  FCP_CHECK(xi > 0);
  FCP_CHECK(id_gen != nullptr);
  FCP_CHECK(pool != nullptr);
}

void Segmenter::Push(ObjectId object, Timestamp time,
                     std::vector<SegmentRef>* out) {
  if (time < last_time_) {
    time = last_time_;
    ++reordered_;
  }
  last_time_ = time;

  if (!window_.empty() && time - window_.front().time > xi_) {
    // Admitting this event forces the left boundary to advance, so the
    // current window [l, r] is maximal: emit it, then shrink.
    EmitWindow(out);
    while (!window_.empty() && time - window_.front().time > xi_) {
      window_.pop_front();
    }
  }
  window_.push_back(SegmentEntry{object, time});
}

void Segmenter::Flush(std::vector<SegmentRef>* out) {
  if (!window_.empty()) {
    EmitWindow(out);
    window_.clear();
  }
  last_time_ = kMinTimestamp;
}

void Segmenter::EmitWindow(std::vector<SegmentRef>* out) {
  FCP_DCHECK(!window_.empty());
  // One copy, into a recycled slab: the ring's two contiguous halves are
  // bulk-copied by SegmentPool::Make, and everything downstream shares the
  // resulting slab by reference.
  out->push_back(pool_->Make(id_gen_->Next(), stream_, window_.first_span(),
                             window_.second_span()));
}

}  // namespace fcp
