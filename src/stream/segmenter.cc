#include "stream/segmenter.h"

#include "common/check.h"

namespace fcp {

Segmenter::Segmenter(StreamId stream, DurationMs xi, SegmentIdGen* id_gen)
    : stream_(stream), xi_(xi), id_gen_(id_gen) {
  FCP_CHECK(xi > 0);
  FCP_CHECK(id_gen != nullptr);
}

void Segmenter::Push(ObjectId object, Timestamp time,
                     std::vector<Segment>* out) {
  if (time < last_time_) {
    time = last_time_;
    ++reordered_;
  }
  last_time_ = time;

  if (!window_.empty() && time - window_.front().time > xi_) {
    // Admitting this event forces the left boundary to advance, so the
    // current window [l, r] is maximal: emit it, then shrink.
    EmitWindow(out);
    while (!window_.empty() && time - window_.front().time > xi_) {
      window_.pop_front();
    }
  }
  window_.push_back(SegmentEntry{object, time});
}

void Segmenter::Flush(std::vector<Segment>* out) {
  if (!window_.empty()) {
    EmitWindow(out);
    window_.clear();
  }
  last_time_ = kMinTimestamp;
}

void Segmenter::EmitWindow(std::vector<Segment>* out) {
  FCP_DCHECK(!window_.empty());
  std::vector<SegmentEntry> entries(window_.begin(), window_.end());
  out->emplace_back(id_gen_->Next(), stream_, std::move(entries));
}

}  // namespace fcp
