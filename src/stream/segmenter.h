// Online segmentation of one data stream into maximal windows of span <= xi
// (Definition 5 of the paper).

#ifndef FCP_STREAM_SEGMENTER_H_
#define FCP_STREAM_SEGMENTER_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "stream/segment.h"
#include "stream/segment_ref.h"
#include "util/ring_buffer.h"

namespace fcp {

/// Hands out globally unique, monotonically increasing segment ids. One
/// instance is shared by all segmenters of a mining pipeline (single
/// threaded; the pipeline is driven by one consumer thread).
class SegmentIdGen {
 public:
  SegmentId Next() { return next_++; }
  SegmentId peek_next() const { return next_; }

 private:
  SegmentId next_ = 0;
};

/// Converts the ordered event sequence of ONE stream into its unique sequence
/// of (overlapping) segments, online.
///
/// Enumeration rule (DESIGN.md Semantics #1): the segments of a stream are
/// exactly its maximal windows [l, r] with t_r - t_l <= xi. We emit window
/// [l(r), r] as soon as an event arrives whose admission forces the left
/// boundary to advance (then the old window can never be extended again and
/// is maximal); Flush() emits the trailing window.
///
/// Emission is zero-copy-per-consumer: each completed window is copied ONCE
/// into a slab recycled from the shared SegmentPool, and the returned
/// SegmentRef is what travels through queues, the router's multicast and the
/// miners — downstream fan-out only bumps a refcount.
///
/// Out-of-order events (time lower than the previous event of the same
/// stream) are clamped up to the previous timestamp and counted in
/// `reordered_count()`; streams are expected to be time-ordered (Def. 1).
class Segmenter {
 public:
  /// `xi` must be positive. `id_gen` and `pool` must outlive the segmenter;
  /// both are shared across the streams of one pipeline.
  Segmenter(StreamId stream, DurationMs xi, SegmentIdGen* id_gen,
            SegmentPool* pool);

  Segmenter(const Segmenter&) = delete;
  Segmenter& operator=(const Segmenter&) = delete;
  Segmenter(Segmenter&&) = default;
  Segmenter& operator=(Segmenter&&) = default;

  /// Feeds the next object of this stream. Appends every segment that this
  /// event *completes* (0 or 1 segments for in-order input) to `out`.
  void Push(ObjectId object, Timestamp time, std::vector<SegmentRef>* out);

  /// Emits the trailing (not yet maximal-by-evidence) window, if any. Call at
  /// end of stream. After Flush() the segmenter is empty and reusable.
  void Flush(std::vector<SegmentRef>* out);

  StreamId stream() const { return stream_; }
  DurationMs xi() const { return xi_; }

  /// Number of events whose timestamps were clamped to restore monotonicity.
  uint64_t reordered_count() const { return reordered_; }

  /// Number of events currently buffered in the open window.
  size_t pending_size() const { return window_.size(); }

  /// True while a window is open (events buffered, trailing segment not yet
  /// emitted). The mux aggregates this into its open-window gauge.
  bool has_open_window() const { return !window_.empty(); }

 private:
  void EmitWindow(std::vector<SegmentRef>* out);

  StreamId stream_;
  DurationMs xi_;
  SegmentIdGen* id_gen_;  // not owned
  SegmentPool* pool_;     // not owned
  RingBuffer<SegmentEntry> window_;
  Timestamp last_time_ = kMinTimestamp;
  uint64_t reordered_ = 0;
};

}  // namespace fcp

#endif  // FCP_STREAM_SEGMENTER_H_
