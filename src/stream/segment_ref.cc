#include "stream/segment_ref.h"

#include <algorithm>
#include <bit>

namespace fcp {

namespace {
// Size classes below 2^3 collapse into one freelist: most real traces are
// dominated by short segments and splitting them across classes just
// fragments the warm capacity.
constexpr uint32_t kMinClassLog2 = 3;
// Entry capacities above 2^20 are not pooled (a window that large is a
// misconfiguration, not a steady state worth caching).
constexpr uint32_t kMaxClassLog2 = 20;
}  // namespace

SegmentRef SegmentRef::Adopt(Segment segment) {
  auto* slab = new internal::SegmentSlab;
  slab->segment = std::move(segment);
  return SegmentRef(slab);
}

SegmentPool::SegmentPool(size_t max_free_per_class)
    : max_free_per_class_(max_free_per_class), free_(kMaxClassLog2 + 1) {}

SegmentPool::~SegmentPool() {
  std::lock_guard<std::mutex> lock(mu_);
  // Every reference must be back: a live SegmentRef outliving its pool would
  // release into freed freelists.
  FCP_CHECK(stats_.live == 0);
  for (auto& list : free_) {
    for (internal::SegmentSlab* slab : list) delete slab;
    list.clear();
  }
}

uint32_t SegmentPool::SizeClass(size_t n) {
  const uint32_t log2 = std::bit_width(std::max<size_t>(n, 1) - 1);
  return std::min(std::max(log2, kMinClassLog2), kMaxClassLog2);
}

SegmentRef SegmentPool::Make(SegmentId id, StreamId stream,
                             std::span<const SegmentEntry> head,
                             std::span<const SegmentEntry> tail) {
  const size_t n = head.size() + tail.size();
  const uint32_t size_class = SizeClass(n);
  internal::SegmentSlab* slab = nullptr;
  const bool pooled = size_class < free_.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pooled && !free_[size_class].empty()) {
      slab = free_[size_class].back();
      free_[size_class].pop_back();
      ++stats_.pool_hits;
      --stats_.free;
    } else {
      ++stats_.slab_allocs;
    }
    ++stats_.live;
  }
  if (slab == nullptr) {
    slab = new internal::SegmentSlab;
    slab->size_class = size_class;
    slab->pool = this;
    // Reserve the full class capacity up front so the recycled slab serves
    // any segment of its class without regrowing.
    if (n <= (size_t{1} << size_class)) {
      slab->segment.entries_.reserve(size_t{1} << size_class);
    }
  } else {
    slab->refs.store(1, std::memory_order_relaxed);
  }
  slab->segment.Assign(id, stream, head, tail);
  return SegmentRef(slab);
}

void SegmentPool::Release(internal::SegmentSlab* slab) {
  // Keep the capacity, drop the payload: the recycled slab's vectors are the
  // whole point of the pool.
  const size_t kept_bytes =
      slab->segment.entries_.capacity() * sizeof(SegmentEntry) +
      slab->segment.distinct_.capacity() * sizeof(ObjectId);
  bool park = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    FCP_DCHECK(stats_.live > 0);
    --stats_.live;
    if (slab->size_class < free_.size() &&
        free_[slab->size_class].size() < max_free_per_class_) {
      free_[slab->size_class].push_back(slab);
      ++stats_.recycled;
      stats_.recycled_bytes += kept_bytes;
      ++stats_.free;
      park = true;
    }
  }
  if (!park) delete slab;
}

SegmentPoolStats SegmentPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace fcp
