#include "stream/stream_mux.h"

#include "common/check.h"

namespace fcp {

StreamMux::StreamMux(DurationMs xi) : xi_(xi) { FCP_CHECK(xi > 0); }

void StreamMux::Push(const ObjectEvent& event, std::vector<Segment>* out) {
  auto it = segmenters_.find(event.stream);
  if (it == segmenters_.end()) {
    it = segmenters_
             .emplace(event.stream, std::make_unique<Segmenter>(
                                        event.stream, xi_, &id_gen_))
             .first;
  }
  it->second->Push(event.object, event.time, out);
}

void StreamMux::PushBatch(const ObjectEvent* events, size_t count,
                          std::vector<Segment>* out) {
  Segmenter* cached = nullptr;
  StreamId cached_stream = 0;
  for (size_t k = 0; k < count; ++k) {
    const ObjectEvent& event = events[k];
    if (cached == nullptr || event.stream != cached_stream) {
      auto it = segmenters_.find(event.stream);
      if (it == segmenters_.end()) {
        it = segmenters_
                 .emplace(event.stream, std::make_unique<Segmenter>(
                                            event.stream, xi_, &id_gen_))
                 .first;
      }
      cached = it->second.get();
      cached_stream = event.stream;
    }
    cached->Push(event.object, event.time, out);
  }
}

void StreamMux::FlushAll(std::vector<Segment>* out) {
  for (auto& [stream, segmenter] : segmenters_) {
    segmenter->Flush(out);
  }
}

uint64_t StreamMux::reordered_count() const {
  uint64_t total = 0;
  for (const auto& [stream, segmenter] : segmenters_) {
    total += segmenter->reordered_count();
  }
  return total;
}

}  // namespace fcp
