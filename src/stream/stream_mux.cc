#include "stream/stream_mux.h"

#include "common/check.h"
#include "telemetry/trace.h"

namespace fcp {
namespace {

/// Emits the ingest-side origin of each completed segment's trace flow: a
/// zero-width "mux/segment_complete" span enclosing a flow-begin keyed by the
/// segment id. The downstream mine span (serial engine) or shard span
/// (sharded pipeline) ends the flow, so Perfetto draws one arrow per segment
/// from ingest to mine. `before` is out->size() before the push.
inline void TraceCompletedSegments(const std::vector<SegmentRef>& out,
                                   size_t before) {
#ifndef FCP_TRACE_DISABLED
  if (!trace::IsEnabled()) return;
  for (size_t k = before; k < out.size(); ++k) {
    trace::Emit(trace::Phase::kBegin, "mux/segment_complete", out[k]->id(),
                static_cast<uint32_t>(out[k]->length()));
    trace::Emit(trace::Phase::kFlowBegin, "segment", out[k]->id());
    trace::Emit(trace::Phase::kEnd, "mux/segment_complete");
  }
#else
  (void)out;
  (void)before;
#endif
}

}  // namespace

StreamMux::StreamMux(DurationMs xi, SegmentPool* pool) : xi_(xi) {
  FCP_CHECK(xi > 0);
  if (pool != nullptr) {
    pool_ = pool;
  } else {
    owned_pool_ = std::make_unique<SegmentPool>();
    pool_ = owned_pool_.get();
  }
}

void StreamMux::Push(const ObjectEvent& event, std::vector<SegmentRef>* out) {
  auto it = segmenters_.find(event.stream);
  if (it == segmenters_.end()) {
    it = segmenters_
             .emplace(event.stream,
                      std::make_unique<Segmenter>(event.stream, xi_, &id_gen_,
                                                  pool_))
             .first;
    streams_seen_.fetch_add(1, std::memory_order_relaxed);
  }
  const size_t before = out->size();
  const bool was_open = it->second->has_open_window();
  it->second->Push(event.object, event.time, out);
  if (it->second->has_open_window() != was_open) {
    open_windows_.fetch_add(was_open ? -1 : 1, std::memory_order_relaxed);
  }
  TraceCompletedSegments(*out, before);
}

void StreamMux::PushBatch(const ObjectEvent* events, size_t count,
                          std::vector<SegmentRef>* out) {
  Segmenter* cached = nullptr;
  StreamId cached_stream = 0;
  for (size_t k = 0; k < count; ++k) {
    const ObjectEvent& event = events[k];
    if (cached == nullptr || event.stream != cached_stream) {
      auto it = segmenters_.find(event.stream);
      if (it == segmenters_.end()) {
        it = segmenters_
                 .emplace(event.stream,
                          std::make_unique<Segmenter>(event.stream, xi_,
                                                      &id_gen_, pool_))
                 .first;
        streams_seen_.fetch_add(1, std::memory_order_relaxed);
      }
      cached = it->second.get();
      cached_stream = event.stream;
    }
    const size_t before = out->size();
    const bool was_open = cached->has_open_window();
    cached->Push(event.object, event.time, out);
    if (cached->has_open_window() != was_open) {
      open_windows_.fetch_add(was_open ? -1 : 1, std::memory_order_relaxed);
    }
    TraceCompletedSegments(*out, before);
  }
}

void StreamMux::FlushAll(std::vector<SegmentRef>* out) {
  for (auto& [stream, segmenter] : segmenters_) {
    const size_t before = out->size();
    const bool was_open = segmenter->has_open_window();
    segmenter->Flush(out);
    if (was_open) open_windows_.fetch_add(-1, std::memory_order_relaxed);
    TraceCompletedSegments(*out, before);
  }
}

uint64_t StreamMux::reordered_count() const {
  uint64_t total = 0;
  for (const auto& [stream, segmenter] : segmenters_) {
    total += segmenter->reordered_count();
  }
  return total;
}

}  // namespace fcp
