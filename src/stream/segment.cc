#include "stream/segment.h"

#include <algorithm>
#include <sstream>

namespace fcp {

void Segment::RebuildDistinct() {
  distinct_.clear();
  distinct_.reserve(entries_.size());
  for (const SegmentEntry& e : entries_) distinct_.push_back(e.object);
  std::sort(distinct_.begin(), distinct_.end());
  distinct_.erase(std::unique(distinct_.begin(), distinct_.end()),
                  distinct_.end());
}

void Segment::Assign(SegmentId id, StreamId stream,
                     std::span<const SegmentEntry> head,
                     std::span<const SegmentEntry> tail) {
  FCP_CHECK(!head.empty() || !tail.empty());
  id_ = id;
  stream_ = stream;
  entries_.clear();
  entries_.reserve(head.size() + tail.size());
  entries_.insert(entries_.end(), head.begin(), head.end());
  entries_.insert(entries_.end(), tail.begin(), tail.end());
  RebuildDistinct();
}

std::vector<ObjectId> Segment::DistinctObjects() const {
  std::vector<ObjectId> out;
  out.reserve(entries_.size());
  for (const SegmentEntry& e : entries_) out.push_back(e.object);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string Segment::DebugString() const {
  std::ostringstream os;
  os << "G" << id_ << "[s" << stream_ << " @" << start_time() << ".."
     << end_time() << ":";
  for (const SegmentEntry& e : entries_) os << " " << e.object;
  os << "]";
  return os.str();
}

}  // namespace fcp
