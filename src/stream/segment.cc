#include "stream/segment.h"

#include <algorithm>
#include <sstream>

namespace fcp {

std::vector<ObjectId> Segment::DistinctObjects() const {
  std::vector<ObjectId> out;
  out.reserve(entries_.size());
  for (const SegmentEntry& e : entries_) out.push_back(e.object);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string Segment::DebugString() const {
  std::ostringstream os;
  os << "G" << id_ << "[s" << stream_ << " @" << start_time() << ".."
     << end_time() << ":";
  for (const SegmentEntry& e : entries_) os << " " << e.object;
  os << "]";
  return os.str();
}

}  // namespace fcp
