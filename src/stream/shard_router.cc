#include "stream/shard_router.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"

namespace fcp {
namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ShardRouter::ShardRouter(uint32_t num_shards, size_t queue_capacity)
    : num_shards_(num_shards),
      routed_to_(new std::atomic<uint64_t>[num_shards]) {
  FCP_CHECK(num_shards >= 1);
  queues_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    queues_.push_back(
        std::make_unique<BoundedQueue<ShardDelivery>>(queue_capacity));
    routed_to_[s].store(0, std::memory_order_relaxed);
  }
  target_scratch_.assign(num_shards, 0);
}

uint32_t ShardRouter::Route(const Segment& segment) {
  watermark_ = std::max(watermark_, segment.end_time());
  ++stats_.segments_routed;
  const int64_t now_ns = SteadyNowNs();

  uint32_t delivered = 0;
  if (num_shards_ == 1) {
    if (queues_[0]->Push(ShardDelivery{segment, watermark_, now_ns})) {
      routed_to_[0].fetch_add(1, std::memory_order_relaxed);
      ++delivered;
    }
  } else {
    // Mark each shard owning >= 1 entry object. Entries suffice (duplicates
    // just re-mark); no distinct-object vector is materialized.
    std::fill(target_scratch_.begin(), target_scratch_.end(), 0);
    for (const SegmentEntry& entry : segment.entries()) {
      target_scratch_[ShardOf(entry.object, num_shards_)] = 1;
    }
    for (uint32_t s = 0; s < num_shards_; ++s) {
      if (!target_scratch_[s]) continue;
      if (queues_[s]->Push(ShardDelivery{segment, watermark_, now_ns})) {
        routed_to_[s].fetch_add(1, std::memory_order_relaxed);
        ++delivered;
      }
    }
  }
  stats_.deliveries += delivered;
  return delivered;
}

void ShardRouter::Close() {
  for (auto& queue : queues_) queue->Close();
}

}  // namespace fcp
