#include "stream/shard_router.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"

namespace fcp {
namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Live-set compaction cadence: a full scan every this many Route() calls
// keeps the amortized prune cost O(1) per segment while bounding how long an
// expired reference can linger (segments complete out of start order, so a
// simple pop-from-front would stall on one late-starting segment).
constexpr uint64_t kCompactEvery = 256;

}  // namespace

ShardRouter::ShardRouter(uint32_t num_shards, size_t queue_capacity,
                         ShardRouterOptions options)
    : num_shards_(num_shards),
      options_(std::move(options)),
      routed_to_(new std::atomic<uint64_t>[num_shards]),
      placement_(options_.placement) {
  FCP_CHECK(num_shards >= 1);
  if (options_.track_live) {
    // LiveEntry::delivered is a 64-bit shard bitmask.
    FCP_CHECK(num_shards <= 64);
  }
  if (placement_ != nullptr) {
    FCP_CHECK(placement_->num_shards() == num_shards);
  }
  queues_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    // One shared tag pair across shards: off-CPU profiles aggregate shard
    // idling / routing backpressure rather than splitting per shard.
    queues_.push_back(std::make_unique<BoundedQueue<ShardDelivery>>(
        queue_capacity, "shard/deliveries-empty", "router/deliveries-full"));
    routed_to_[s].store(0, std::memory_order_relaxed);
  }
  target_scratch_.assign(num_shards, 0);
}

void ShardRouter::MarkTargets(const Segment& segment) {
  std::fill(target_scratch_.begin(), target_scratch_.end(), 0);
  // The segment's construction-time distinct cache: one TargetShard lookup
  // per distinct object instead of one per entry.
  for (const ObjectId object : segment.distinct_objects()) {
    target_scratch_[TargetShard(object)] = 1;
  }
}

uint32_t ShardRouter::Route(const SegmentRef& segment) {
  watermark_ = std::max(watermark_, segment->end_time());
  watermark_pub_.store(watermark_, std::memory_order_relaxed);
  ++stats_.segments_routed;
  const int64_t now_ns = SteadyNowNs();

  uint32_t delivered = 0;
  uint64_t delivered_mask = 0;
  if (num_shards_ == 1) {
    if (queues_[0]->Push(ShardDelivery{segment, watermark_, now_ns,
                                       segment->id(), placement_,
                                       /*index_only=*/false})) {
      routed_to_[0].fetch_add(1, std::memory_order_relaxed);
      ++delivered;
      delivered_mask = 1;
    }
  } else {
    MarkTargets(*segment);
    for (uint32_t s = 0; s < num_shards_; ++s) {
      if (!target_scratch_[s]) continue;
      // The delivery shares the caller's slab: a refcount bump per shard,
      // no entry-vector copy.
      if (queues_[s]->Push(ShardDelivery{segment, watermark_, now_ns,
                                         segment->id(), placement_,
                                         /*index_only=*/false})) {
        routed_to_[s].fetch_add(1, std::memory_order_relaxed);
        ++delivered;
        delivered_mask |= uint64_t{1} << s;
      }
    }
  }
  stats_.deliveries += delivered;
  if (options_.track_live && delivered > 0) {
    live_.push_back(LiveEntry{segment, delivered_mask});
    if (++routes_since_compact_ >= kCompactEvery) CompactLive();
  }
  return delivered;
}

uint64_t ShardRouter::RouteBatch(const SegmentRef* segments, size_t count) {
  if (count == 0) return 0;
  // The live set needs one delivered-mask per segment; the batch staging
  // below only keeps per-shard buffers, so the tracking variant just routes
  // one at a time (migration runs care about adaptivity, not the last few
  // percent of routing throughput).
  if (options_.track_live) {
    uint64_t delivered = 0;
    for (size_t k = 0; k < count; ++k) delivered += Route(segments[k]);
    return delivered;
  }
  const int64_t now_ns = SteadyNowNs();
  // Stage the deliveries per shard first — the watermark must advance
  // cumulatively in segment order (delivery k ships the max end time over
  // segments [0, k]), which a per-shard flush after the fact preserves.
  if (batch_scratch_.size() < num_shards_) batch_scratch_.resize(num_shards_);
  for (auto& staged : batch_scratch_) staged.clear();
  for (size_t k = 0; k < count; ++k) {
    const SegmentRef& segment = segments[k];
    watermark_ = std::max(watermark_, segment->end_time());
    ++stats_.segments_routed;
    if (num_shards_ == 1) {
      batch_scratch_[0].push_back(ShardDelivery{segment, watermark_, now_ns,
                                                segment->id(), placement_,
                                                /*index_only=*/false});
      continue;
    }
    MarkTargets(*segment);
    for (uint32_t s = 0; s < num_shards_; ++s) {
      if (!target_scratch_[s]) continue;
      batch_scratch_[s].push_back(ShardDelivery{segment, watermark_, now_ns,
                                                segment->id(), placement_,
                                                /*index_only=*/false});
    }
  }
  watermark_pub_.store(watermark_, std::memory_order_relaxed);
  uint64_t delivered = 0;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    if (batch_scratch_[s].empty()) continue;
    // PushAll moves the staged deliveries out and leaves the scratch
    // buffer's capacity for the next batch — no per-batch vector churn.
    const size_t pushed = queues_[s]->PushAll(&batch_scratch_[s]);
    routed_to_[s].fetch_add(pushed, std::memory_order_relaxed);
    delivered += pushed;
  }
  stats_.deliveries += delivered;
  return delivered;
}

void ShardRouter::CompactLive() {
  routes_since_compact_ = 0;
  while (!live_.empty() &&
         watermark_ - live_.front().segment->start_time() > options_.tau) {
    live_.pop_front();
  }
  // Segments complete out of start order, so expired entries can hide behind
  // a long-lived front. Scan first; only when a straggler exists rotate the
  // survivors through the ring in one pass (a move per entry — a SegmentRef
  // pointer swap — never an allocation).
  const size_t n = live_.size();
  bool stale = false;
  for (size_t i = 0; i < n && !stale; ++i) {
    stale = watermark_ - live_.at(i).segment->start_time() > options_.tau;
  }
  if (!stale) return;
  for (size_t i = 0; i < n; ++i) {
    LiveEntry entry = std::move(live_.front());
    live_.pop_front();
    if (watermark_ - entry.segment->start_time() <= options_.tau) {
      live_.push_back(std::move(entry));
    }
  }
}

uint64_t ShardRouter::ApplyPlacement(std::shared_ptr<const PlacementMap> next) {
  FCP_CHECK(options_.track_live);
  FCP_CHECK(next != nullptr && next->num_shards() == num_shards_);
  const int64_t now_ns = SteadyNowNs();
  CompactLive();
  uint64_t backfills = 0;
  for (size_t i = 0; i < live_.size(); ++i) {
    LiveEntry& entry = live_.at(i);
    // Shards owning >= 1 object of this segment under the NEW placement but
    // that never received it: their index would miss a valid supporter of a
    // pattern they are about to own, so replay it index-only. FIFO order
    // guarantees the replay lands before any trigger routed under `next`.
    uint64_t need = 0;
    for (const ObjectId object : entry.segment->distinct_objects()) {
      need |= uint64_t{1} << next->shard_of(object);
    }
    need &= ~entry.delivered;
    if (need == 0) continue;
    for (uint32_t s = 0; s < num_shards_; ++s) {
      if (!(need & (uint64_t{1} << s))) continue;
      if (queues_[s]->Push(ShardDelivery{entry.segment, watermark_, now_ns,
                                         entry.segment->id(), next,
                                         /*index_only=*/true})) {
        ++backfills;
      }
    }
    entry.delivered |= need;
  }
  placement_ = std::move(next);
  placement_version_.fetch_add(1, std::memory_order_relaxed);
  stats_.backfill_deliveries += backfills;
  ++stats_.placements_applied;
  return backfills;
}

void ShardRouter::Close() {
  for (auto& queue : queues_) queue->Close();
}

}  // namespace fcp
