#include "stream/shard_router.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"

namespace fcp {
namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ShardRouter::ShardRouter(uint32_t num_shards, size_t queue_capacity)
    : num_shards_(num_shards),
      routed_to_(new std::atomic<uint64_t>[num_shards]) {
  FCP_CHECK(num_shards >= 1);
  queues_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    queues_.push_back(
        std::make_unique<BoundedQueue<ShardDelivery>>(queue_capacity));
    routed_to_[s].store(0, std::memory_order_relaxed);
  }
  target_scratch_.assign(num_shards, 0);
}

uint32_t ShardRouter::Route(const Segment& segment) {
  watermark_ = std::max(watermark_, segment.end_time());
  ++stats_.segments_routed;
  const int64_t now_ns = SteadyNowNs();

  uint32_t delivered = 0;
  if (num_shards_ == 1) {
    if (queues_[0]->Push(
            ShardDelivery{segment, watermark_, now_ns, segment.id()})) {
      routed_to_[0].fetch_add(1, std::memory_order_relaxed);
      ++delivered;
    }
  } else {
    // Mark each shard owning >= 1 entry object. Entries suffice (duplicates
    // just re-mark); no distinct-object vector is materialized.
    std::fill(target_scratch_.begin(), target_scratch_.end(), 0);
    for (const SegmentEntry& entry : segment.entries()) {
      target_scratch_[ShardOf(entry.object, num_shards_)] = 1;
    }
    for (uint32_t s = 0; s < num_shards_; ++s) {
      if (!target_scratch_[s]) continue;
      if (queues_[s]->Push(
              ShardDelivery{segment, watermark_, now_ns, segment.id()})) {
        routed_to_[s].fetch_add(1, std::memory_order_relaxed);
        ++delivered;
      }
    }
  }
  stats_.deliveries += delivered;
  return delivered;
}

uint64_t ShardRouter::RouteBatch(const Segment* segments, size_t count) {
  if (count == 0) return 0;
  const int64_t now_ns = SteadyNowNs();
  // Stage the deliveries per shard first — the watermark must advance
  // cumulatively in segment order (delivery k ships the max end time over
  // segments [0, k]), which a per-shard flush after the fact preserves.
  if (batch_scratch_.size() < num_shards_) batch_scratch_.resize(num_shards_);
  for (auto& staged : batch_scratch_) staged.clear();
  for (size_t k = 0; k < count; ++k) {
    const Segment& segment = segments[k];
    watermark_ = std::max(watermark_, segment.end_time());
    ++stats_.segments_routed;
    if (num_shards_ == 1) {
      batch_scratch_[0].push_back(
          ShardDelivery{segment, watermark_, now_ns, segment.id()});
      continue;
    }
    std::fill(target_scratch_.begin(), target_scratch_.end(), 0);
    for (const SegmentEntry& entry : segment.entries()) {
      target_scratch_[ShardOf(entry.object, num_shards_)] = 1;
    }
    for (uint32_t s = 0; s < num_shards_; ++s) {
      if (!target_scratch_[s]) continue;
      batch_scratch_[s].push_back(
          ShardDelivery{segment, watermark_, now_ns, segment.id()});
    }
  }
  uint64_t delivered = 0;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    if (batch_scratch_[s].empty()) continue;
    const size_t pushed = queues_[s]->PushAll(&batch_scratch_[s]);
    routed_to_[s].fetch_add(pushed, std::memory_order_relaxed);
    delivered += pushed;
  }
  stats_.deliveries += delivered;
  return delivered;
}

void ShardRouter::Close() {
  for (auto& queue : queues_) queue->Close();
}

}  // namespace fcp
