// SegmentRef + SegmentPool: refcounted immutable segment storage, recycled
// through a size-classed pool.
//
// The sharded pipeline multicasts every completed segment to up to S shards,
// keeps it in the router's live set for migration backfill, and replays it
// index-only after each placement change. Holding `Segment` by value in
// ShardDelivery meant every one of those hops heap-copied the entry vector —
// at S=8 the router was the dominant allocator. A SegmentRef is an intrusive
// refcounted handle to a pool-owned slab: the Segmenter allocates (or
// recycles) the slab once, and every delivery, live-set entry, backfill and
// steal just bumps a counter. When the last reference drops, the slab goes
// back to the pool's per-size-class freelist with its vector capacity intact,
// so a steady-state pipeline performs zero allocations per segment.
//
// Threading: SegmentRef copies/destructions are thread-safe (the refcount is
// atomic); the pool's freelists are mutex-guarded. The Segment payload is
// immutable once shared — the single mutation, RelabelId (merge-thread
// scratch-id -> global-id rename), is checked to happen while the refcount
// is exactly 1.

#ifndef FCP_STREAM_SEGMENT_REF_H_
#define FCP_STREAM_SEGMENT_REF_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "stream/segment.h"

namespace fcp {

class SegmentPool;

namespace internal {

/// The pool's unit of storage: refcount + recycling metadata + the payload.
struct SegmentSlab {
  std::atomic<uint32_t> refs{1};
  uint32_t size_class = 0;       ///< freelist index (log2 of entry capacity)
  SegmentPool* pool = nullptr;   ///< null = plain heap slab (SegmentRef::Adopt)
  Segment segment;
};

}  // namespace internal

/// Shared, immutable handle to a pooled Segment. Copy = refcount increment;
/// destruction of the last handle returns the slab to its pool (or deletes
/// it for Adopt-ed slabs). A default-constructed ref is null.
class SegmentRef {
 public:
  SegmentRef() = default;

  SegmentRef(const SegmentRef& other) : slab_(other.slab_) {
    if (slab_ != nullptr) {
      slab_->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }

  SegmentRef& operator=(const SegmentRef& other) {
    if (this != &other) {
      SegmentRef copy(other);
      std::swap(slab_, copy.slab_);
    }
    return *this;
  }

  SegmentRef(SegmentRef&& other) noexcept
      : slab_(std::exchange(other.slab_, nullptr)) {}

  SegmentRef& operator=(SegmentRef&& other) noexcept {
    if (this != &other) {
      reset();
      slab_ = std::exchange(other.slab_, nullptr);
    }
    return *this;
  }

  ~SegmentRef() { reset(); }

  /// Wraps a free-standing Segment in a heap-owned slab (no pool). For
  /// tests and drivers that build segments by hand.
  static SegmentRef Adopt(Segment segment);

  const Segment& operator*() const {
    FCP_DCHECK(slab_ != nullptr);
    return slab_->segment;
  }
  const Segment* operator->() const {
    FCP_DCHECK(slab_ != nullptr);
    return &slab_->segment;
  }
  const Segment* get() const {
    return slab_ != nullptr ? &slab_->segment : nullptr;
  }
  explicit operator bool() const { return slab_ != nullptr; }

  /// Drops this handle (releasing the slab if it was the last one).
  void reset();

  /// Number of live handles to this slab (racy unless externally quiesced).
  uint32_t use_count() const {
    return slab_ != nullptr ? slab_->refs.load(std::memory_order_relaxed) : 0;
  }
  bool unique() const { return use_count() == 1; }

  /// Renames the segment (worker scratch id -> merge-assigned global id).
  /// Checked to run while this is the only handle — after that the payload
  /// is immutable and may be shared across threads freely.
  void RelabelId(SegmentId id) {
    FCP_CHECK(slab_ != nullptr);
    FCP_CHECK(slab_->refs.load(std::memory_order_acquire) == 1);
    slab_->segment.set_id(id);
  }

 private:
  friend class SegmentPool;
  explicit SegmentRef(internal::SegmentSlab* slab) : slab_(slab) {}

  internal::SegmentSlab* slab_ = nullptr;
};

/// Pool activity counters (point-in-time snapshot under the pool mutex).
struct SegmentPoolStats {
  uint64_t slab_allocs = 0;     ///< Make() calls that had to heap-allocate
  uint64_t pool_hits = 0;       ///< Make() calls served from a freelist
  uint64_t recycled = 0;        ///< slabs returned to a freelist
  uint64_t recycled_bytes = 0;  ///< entry-capacity bytes kept warm by returns
  uint64_t live = 0;            ///< slabs currently out (>= 1 reference)
  uint64_t free = 0;            ///< slabs currently parked in freelists
};

/// Size-classed slab pool. Make() copies a window's entries into a recycled
/// (or fresh) slab and hands back the first reference. Thread-safe; slabs
/// may be released from any thread. The pool must outlive every reference it
/// produced (checked in the destructor).
class SegmentPool {
 public:
  /// `max_free_per_class` bounds each freelist; surplus slabs are deleted on
  /// release instead of parked.
  explicit SegmentPool(size_t max_free_per_class = 4096);
  ~SegmentPool();

  SegmentPool(const SegmentPool&) = delete;
  SegmentPool& operator=(const SegmentPool&) = delete;

  /// Builds a pooled segment from up to two contiguous entry spans (the two
  /// halves of a ring-buffered window; pass an empty `tail` for one span).
  SegmentRef Make(SegmentId id, StreamId stream,
                  std::span<const SegmentEntry> head,
                  std::span<const SegmentEntry> tail = {});

  SegmentPoolStats stats() const;

 private:
  friend class SegmentRef;

  /// Size class of a slab able to hold `n` entries: log2 of the (power of
  /// two) entry capacity, floored at 8 entries so tiny segments share one
  /// freelist.
  static uint32_t SizeClass(size_t n);

  /// Called by the last SegmentRef; parks or deletes the slab.
  void Release(internal::SegmentSlab* slab);

  const size_t max_free_per_class_;
  mutable std::mutex mu_;
  std::vector<std::vector<internal::SegmentSlab*>> free_;  ///< per size class
  SegmentPoolStats stats_;
};

inline void SegmentRef::reset() {
  internal::SegmentSlab* slab = std::exchange(slab_, nullptr);
  if (slab == nullptr) return;
  if (slab->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if (slab->pool != nullptr) {
      slab->pool->Release(slab);
    } else {
      delete slab;
    }
  }
}

}  // namespace fcp

#endif  // FCP_STREAM_SEGMENT_REF_H_
