// Routes the interleaved event feed of many streams to per-stream segmenters.

#ifndef FCP_STREAM_STREAM_MUX_H_
#define FCP_STREAM_STREAM_MUX_H_

#include <atomic>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "stream/segment.h"
#include "stream/segment_ref.h"
#include "stream/segmenter.h"

namespace fcp {

/// Demultiplexes a single interleaved feed of ObjectEvents (the union of all
/// streams, as a data-center front end would receive it) into per-stream
/// Segmenters, and surfaces completed segments in arrival order as pooled
/// SegmentRefs (see segment_ref.h — one slab per segment, shared downstream).
///
/// Single-threaded: the mining pipeline is one consumer; concurrency enters
/// only via the BoundedQueue in front of it (Fig. 8 experiment).
class StreamMux {
 public:
  /// `xi` is the segment span threshold, shared by all streams. `pool` is
  /// the slab pool completed segments are built in; null means the mux owns
  /// a private one.
  explicit StreamMux(DurationMs xi, SegmentPool* pool = nullptr);

  StreamMux(const StreamMux&) = delete;
  StreamMux& operator=(const StreamMux&) = delete;

  /// Feeds one event; appends any segments it completes to `out`.
  void Push(const ObjectEvent& event, std::vector<SegmentRef>* out);

  /// Feeds `count` events in order; appends any segments they complete to
  /// `out`. Equivalent to calling Push per event, but the segmenter lookup
  /// is cached across consecutive same-stream events, so a feed with runs
  /// (the common shape of a batched front end) pays one hash probe per run
  /// instead of one per event.
  void PushBatch(const ObjectEvent* events, size_t count,
                 std::vector<SegmentRef>* out);

  /// Flushes the open window of every stream (end of feed).
  void FlushAll(std::vector<SegmentRef>* out);

  /// Number of streams seen so far.
  size_t num_streams() const { return segmenters_.size(); }

  /// Cross-thread-safe mirrors for the observability plane (/statusz,
  /// serial-engine gauges): the ingest thread maintains them incrementally
  /// with relaxed stores, so a scrape never touches the segmenter map.
  int64_t open_windows() const {
    return open_windows_.load(std::memory_order_relaxed);
  }
  int64_t streams_seen() const {
    return streams_seen_.load(std::memory_order_relaxed);
  }

  /// Total events whose timestamps had to be clamped (see Segmenter).
  uint64_t reordered_count() const;

  /// The id generator (exposed so callers can pre-register segments built by
  /// hand, e.g. tests and the Twitter generator which emits whole segments).
  SegmentIdGen* id_gen() { return &id_gen_; }

  /// The slab pool completed segments are built in.
  SegmentPool* pool() { return pool_; }
  const SegmentPool& pool() const { return *pool_; }

 private:
  DurationMs xi_;
  std::unique_ptr<SegmentPool> owned_pool_;
  SegmentPool* pool_ = nullptr;
  SegmentIdGen id_gen_;
  std::unordered_map<StreamId, std::unique_ptr<Segmenter>> segmenters_;
  /// Incrementally maintained around each segmenter push/flush: +1 when a
  /// push opens a stream's window, -1 when emission/flush drains it.
  std::atomic<int64_t> open_windows_{0};
  std::atomic<int64_t> streams_seen_{0};
};

}  // namespace fcp

#endif  // FCP_STREAM_STREAM_MUX_H_
