// Routes the interleaved event feed of many streams to per-stream segmenters.

#ifndef FCP_STREAM_STREAM_MUX_H_
#define FCP_STREAM_STREAM_MUX_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "stream/segment.h"
#include "stream/segmenter.h"

namespace fcp {

/// Demultiplexes a single interleaved feed of ObjectEvents (the union of all
/// streams, as a data-center front end would receive it) into per-stream
/// Segmenters, and surfaces completed segments in arrival order.
///
/// Single-threaded: the mining pipeline is one consumer; concurrency enters
/// only via the BoundedQueue in front of it (Fig. 8 experiment).
class StreamMux {
 public:
  /// `xi` is the segment span threshold, shared by all streams.
  explicit StreamMux(DurationMs xi);

  StreamMux(const StreamMux&) = delete;
  StreamMux& operator=(const StreamMux&) = delete;

  /// Feeds one event; appends any segments it completes to `out`.
  void Push(const ObjectEvent& event, std::vector<Segment>* out);

  /// Feeds `count` events in order; appends any segments they complete to
  /// `out`. Equivalent to calling Push per event, but the segmenter lookup
  /// is cached across consecutive same-stream events, so a feed with runs
  /// (the common shape of a batched front end) pays one hash probe per run
  /// instead of one per event.
  void PushBatch(const ObjectEvent* events, size_t count,
                 std::vector<Segment>* out);

  /// Flushes the open window of every stream (end of feed).
  void FlushAll(std::vector<Segment>* out);

  /// Number of streams seen so far.
  size_t num_streams() const { return segmenters_.size(); }

  /// Total events whose timestamps had to be clamped (see Segmenter).
  uint64_t reordered_count() const;

  /// The id generator (exposed so callers can pre-register segments built by
  /// hand, e.g. tests and the Twitter generator which emits whole segments).
  SegmentIdGen* id_gen() { return &id_gen_; }

 private:
  DurationMs xi_;
  SegmentIdGen id_gen_;
  std::unordered_map<StreamId, std::unique_ptr<Segmenter>> segmenters_;
};

}  // namespace fcp

#endif  // FCP_STREAM_STREAM_MUX_H_
