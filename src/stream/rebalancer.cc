#include "stream/rebalancer.h"

#include <algorithm>

#include "common/check.h"
#include "common/shard.h"
#include "stream/shard_router.h"

namespace fcp {

Rebalancer::Rebalancer(uint32_t num_shards, RebalancerOptions options)
    : num_shards_(num_shards), options_(options) {
  FCP_CHECK(num_shards >= 1);
  FCP_CHECK(options_.interval_segments >= 1);
  last_routed_.assign(num_shards, 0);
  cumulative_.assign(num_shards, 0);
  cumulative_cost_.assign(num_shards, 0);
  model_load_.assign(num_shards, 0);
}

void Rebalancer::ObserveSegment(const Segment& segment) {
  ++observed_since_round_;
  if (!options_.apply_moves) return;  // gauge-only mode: no weights needed
  // Entry counts (with multiplicity) approximate the delivery/probe load an
  // object's owner pays; distinct-ness is not worth a dedup pass here.
  for (const SegmentEntry& entry : segment.entries()) {
    ++counts_[entry.object];
  }
}

std::shared_ptr<const PlacementMap> Rebalancer::MaybeRebalance(
    const ShardRouter& router) {
  if (observed_since_round_ < options_.interval_segments) return nullptr;
  observed_since_round_ = 0;

  // Close the interval: per-shard deliveries since the last round.
  uint64_t total = 0;
  uint64_t max_load = 0;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    const uint64_t routed = router.routed_to(s);
    const uint64_t interval = routed - last_routed_[s];
    last_routed_[s] = routed;
    cumulative_[s] += interval;
    total += interval;
    max_load = std::max(max_load, interval);
  }
  ++stats_.rounds;
  live_rounds_.store(stats_.rounds, std::memory_order_relaxed);
  if (total == 0) return nullptr;
  // max/mean in permille: 1000 * max / (total / S).
  imbalance_permille_ =
      static_cast<int64_t>((max_load * 1000 * num_shards_) / total);
  live_imbalance_.store(imbalance_permille_, std::memory_order_relaxed);

  if (!options_.apply_moves) return nullptr;

  // Attribute this interval's modeled mining cost to the owner that held
  // each hot object: pairwise probe work scales with the SQUARE of an
  // object's frequency, so cost — not delivery count — is what the
  // destination model must balance. (Delivery counts anti-correlate with
  // cost at high skew: the hot object's owner owns little else, so the
  // tail shards receive MORE deliveries than it does, and an argmin over
  // deliveries would keep handing the hot object back to its own shard.)
  // Tail objects below min_move_weight are skipped — the hash already
  // spreads them evenly and they are never move candidates.
  const PlacementMap* current = router.placement().get();
  for (const auto& [object, count] : counts_) {
    if (count < options_.min_move_weight) continue;
    const uint32_t owner = current != nullptr
                               ? current->shard_of(object)
                               : ShardOf(object, num_shards_);
    cumulative_cost_[owner] += count * count;
  }

  const bool triggered =
      static_cast<double>(imbalance_permille_) >=
      options_.imbalance_threshold * 1000.0;

  std::shared_ptr<const PlacementMap> next;
  if (triggered && num_shards_ > 1) {
    // Hot candidates: heaviest decayed counts first, deterministic tie-break.
    hot_scratch_.clear();
    for (const auto& [object, count] : counts_) {
      if (count >= options_.min_move_weight) {
        hot_scratch_.push_back({count, object});
      }
    }
    const size_t top = std::min<size_t>(options_.max_moves_per_round,
                                        hot_scratch_.size());
    std::partial_sort(hot_scratch_.begin(), hot_scratch_.begin() + top,
                      hot_scratch_.end(),
                      [](const auto& a, const auto& b) {
                        if (a.first != b.first) return a.first > b.first;
                        return a.second < b.second;
                      });

    // Greedy re-assignment against cumulative modeled COST: each candidate
    // goes to the shard that has paid the least so far. The hot object's
    // owner is by construction the fastest cost accumulator, so this rule
    // rotates ownership round by round — time-sliced LPT: over the run
    // every shard pays ~1/S of a dominant object's cost, the bound no
    // static placement reaches once one object exceeds total/S.
    model_load_ = cumulative_cost_;
    moves_scratch_.clear();
    for (size_t i = 0; i < top; ++i) {
      const auto [count, object] = hot_scratch_[i];
      const uint32_t from = current != nullptr
                                ? current->shard_of(object)
                                : ShardOf(object, num_shards_);
      uint32_t dest = 0;
      for (uint32_t s = 1; s < num_shards_; ++s) {
        if (model_load_[s] < model_load_[dest]) dest = s;
      }
      model_load_[dest] += count * count;
      if (dest == from) continue;
      moves_scratch_.push_back({object, dest});
    }
    if (!moves_scratch_.empty()) {
      auto current_sp = router.placement();
      if (current_sp == nullptr) {
        current_sp = std::make_shared<const PlacementMap>(num_shards_);
      }
      next = current_sp->WithMoves(moves_scratch_);
      ++stats_.rounds_triggered;
      stats_.objects_moved += moves_scratch_.size();
      live_triggered_.store(stats_.rounds_triggered, std::memory_order_relaxed);
      live_moved_.store(stats_.objects_moved, std::memory_order_relaxed);
    }
  }

  // Decay so the weights track the recent window; stale heat must not keep
  // bouncing an object that went cold.
  if (options_.decay_shift > 0) {
    for (auto& [object, count] : counts_) {
      (void)object;
      count >>= options_.decay_shift;
    }
  }
  return next;
}

}  // namespace fcp
