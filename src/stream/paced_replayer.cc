#include "stream/paced_replayer.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/check.h"
#include "util/stopwatch.h"

namespace fcp {

ReplayStats ReplayAtRate(const std::vector<ObjectEvent>& events,
                         double rate_per_second,
                         BoundedQueue<ObjectEvent>* queue,
                         double deadline_seconds, int batch) {
  FCP_CHECK(rate_per_second > 0);
  FCP_CHECK(queue != nullptr);
  if (batch <= 0) {
    // Default: one pacing tick per 10ms of offered load, at least 1 event.
    batch = std::max(1, static_cast<int>(rate_per_second / 100.0));
  }

  ReplayStats stats;
  Stopwatch clock;
  size_t i = 0;
  while (i < events.size()) {
    const double now = clock.ElapsedSeconds();
    if (now >= deadline_seconds) break;
    // How many events should have been offered by `now`?
    const uint64_t due = static_cast<uint64_t>(now * rate_per_second);
    if (due <= stats.offered) {
      // Ahead of schedule: sleep until the next batch is due.
      const double next_due_at =
          static_cast<double>(stats.offered + static_cast<uint64_t>(batch)) /
          rate_per_second;
      const double sleep_s = next_due_at - now;
      if (sleep_s > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            std::min(sleep_s, deadline_seconds - now)));
      }
      continue;
    }
    uint64_t to_offer = due - stats.offered;
    to_offer = std::min<uint64_t>(to_offer, events.size() - i);
    for (uint64_t k = 0; k < to_offer; ++k) {
      ++stats.offered;
      if (queue->TryPush(events[i])) {
        ++stats.accepted;
      } else {
        ++stats.dropped;
      }
      ++i;
    }
  }
  stats.elapsed_seconds = clock.ElapsedSeconds();
  return stats;
}

}  // namespace fcp
