// Bounded producer/consumer buffer between stream ingestion and mining —
// the "buffer queue with 5000 storage units" of the paper's maximum
// sustainable workload experiment (Fig. 8).

#ifndef FCP_STREAM_BOUNDED_QUEUE_H_
#define FCP_STREAM_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "prof/prof.h"

namespace fcp {

/// Thread-safe bounded FIFO.
///
/// Storage is a fixed ring of `capacity` slots allocated once at
/// construction — the queue never touches the heap again, so steady-state
/// traffic through every pipeline queue is allocation-free by construction
/// (a deque would allocate and free blocks as the FIFO advances). `T` must
/// be default-constructible and move-assignable.
///
/// `TryPush` fails (returns false) when the queue is full — the paper's
/// harness uses this to detect saturation: once the producer can no longer
/// enqueue at the offered arrival rate, the workload is unsustainable.
/// `Push` blocks on a condition variable until space frees up, so lossless
/// producers exert backpressure without burning a core. `Close()` wakes
/// everyone; `Pop` returns nullopt once closed and drained.
///
/// Off-CPU profiling: the optional wait tags name this queue's block points
/// to fcp::prof (`wait;<tag>` pseudo stacks). `pop_wait_tag` covers
/// consumer-side empty waits (Pop/PopFor/WaitNonEmptyFor), `push_wait_tag`
/// covers producer-side full waits, i.e. backpressure (Push/PushAll). Tags
/// must have static storage duration. When the profiler is not armed the
/// instrumentation costs one relaxed load on paths that were about to
/// block anyway; non-blocking fast paths are untouched.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity, const char* pop_wait_tag = nullptr,
                        const char* push_wait_tag = nullptr)
      : capacity_(capacity),
        slots_(capacity),
        pop_wait_tag_(pop_wait_tag),
        push_wait_tag_(push_wait_tag) {
    FCP_CHECK(capacity > 0);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking push; returns false if the queue is full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || count_ >= capacity_) return false;
      PlaceLocked(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocking push: waits (condition variable, no spinning) until the queue
  /// has space or is closed. Returns false iff the queue was closed before
  /// the item could be enqueued.
  bool Push(T item) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!closed_ && count_ >= capacity_) {
        prof::WaitTimer wait(push_wait_tag_);
        space_cv_.wait(lock, [&] { return closed_ || count_ < capacity_; });
      }
      if (closed_) return false;
      PlaceLocked(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocking bulk push: enqueues `*items` in order, taking the lock once
  /// per admitted chunk instead of once per item (waits for space between
  /// chunks like Push). `*items` is left cleared — elements are moved out,
  /// its capacity is retained for the caller's next batch. Returns the
  /// number of items enqueued; less than items->size() only if the queue
  /// was closed mid-batch (the remainder is dropped with the clear,
  /// mirroring Push's false-on-closed contract).
  size_t PushAll(std::vector<T>* items) {
    size_t pushed = 0;
    const size_t n = items->size();
    while (pushed < n) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (!closed_ && count_ >= capacity_) {
          prof::WaitTimer wait(push_wait_tag_);
          space_cv_.wait(lock,
                         [&] { return closed_ || count_ < capacity_; });
        }
        if (closed_) break;
        while (pushed < n && count_ < capacity_) {
          PlaceLocked(std::move((*items)[pushed]));
          ++pushed;
        }
      }
      // A chunk can satisfy many waiting consumers; wake them all.
      cv_.notify_all();
    }
    items->clear();
    return pushed;
  }

  /// Blocking pop. Returns nullopt when the queue is closed and empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (!closed_ && count_ == 0) {
      prof::WaitTimer wait(pop_wait_tag_);
      cv_.wait(lock, [&] { return closed_ || count_ > 0; });
    }
    return PopLockedOrNull(lock);
  }

  /// Pop with timeout: waits up to `timeout_us` for an item. Returns nullopt
  /// on timeout or when closed and empty (check `closed()` to distinguish).
  std::optional<T> PopFor(int64_t timeout_us) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!closed_ && count_ == 0) {
      prof::WaitTimer wait(pop_wait_tag_);
      cv_.wait_for(lock, std::chrono::microseconds(timeout_us),
                   [&] { return closed_ || count_ > 0; });
    }
    return PopLockedOrNull(lock);
  }

  /// Non-blocking pop; nullopt if currently empty (even if not closed).
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    return PopLockedOrNull(lock);
  }

  /// Waits until the queue is non-empty or `timeout_us` elapses, WITHOUT
  /// popping; returns true iff non-empty on return. Work stealing needs the
  /// wait and the pop split: the owning shard thread learns work exists
  /// here, then pops under its miner mutex, so owner and thieves serialize
  /// on the same lock and per-shard FIFO processing order is preserved.
  /// Deliberately does NOT wake on close: a closed empty queue times out,
  /// which paces the caller's drain/steal loop instead of spinning it.
  bool WaitNonEmptyFor(int64_t timeout_us) {
    std::unique_lock<std::mutex> lock(mu_);
    if (count_ == 0) {
      prof::WaitTimer wait(pop_wait_tag_);
      cv_.wait_for(lock, std::chrono::microseconds(timeout_us),
                   [&] { return count_ > 0; });
    }
    return count_ > 0;
  }

  /// Marks the queue closed; producers fail, consumers drain then see eof.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
    space_cv_.notify_all();
  }

  /// Current occupancy (racy snapshot; used for Fig. 8 sampling).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  /// Alias of size() under the telemetry vocabulary (queue *depth*).
  size_t depth() const { return size(); }

  /// Deepest occupancy ever reached — the paper's saturation signal: a
  /// high watermark pinned at capacity means the producer outran mining.
  /// Tracked under the push lock, so it costs nothing extra on the hot path.
  size_t high_watermark() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_watermark_;
  }

  size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  /// Writes `item` into the tail slot under the lock.
  void PlaceLocked(T item) {
    size_t tail = head_ + count_;
    if (tail >= capacity_) tail -= capacity_;
    slots_[tail] = std::move(item);
    ++count_;
    if (count_ > high_watermark_) high_watermark_ = count_;
  }

  /// Pops the front under `lock` (empty -> nullopt), waking one blocked
  /// producer when an item was removed. The vacated slot is reset to T{} so
  /// resources (e.g. a SegmentRef's slab reference) are released at pop
  /// time, not when the slot is eventually overwritten.
  std::optional<T> PopLockedOrNull(std::unique_lock<std::mutex>& lock) {
    if (count_ == 0) return std::nullopt;
    std::optional<T> item(std::move(slots_[head_]));
    slots_[head_] = T{};
    head_ = head_ + 1 < capacity_ ? head_ + 1 : 0;
    --count_;
    lock.unlock();
    space_cv_.notify_one();
    return item;
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;        ///< "item available or closed"
  std::condition_variable space_cv_;  ///< "space available or closed"
  std::vector<T> slots_;              ///< fixed ring, allocated once
  size_t head_ = 0;                   ///< index of the front element
  size_t count_ = 0;                  ///< live elements
  size_t high_watermark_ = 0;
  bool closed_ = false;
  const char* pop_wait_tag_ = nullptr;   ///< off-CPU tag: empty waits
  const char* push_wait_tag_ = nullptr;  ///< off-CPU tag: backpressure
};

}  // namespace fcp

#endif  // FCP_STREAM_BOUNDED_QUEUE_H_
