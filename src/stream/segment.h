// Segment: the unit of work of all miners (Definition 5 of the paper).

#ifndef FCP_STREAM_SEGMENT_H_
#define FCP_STREAM_SEGMENT_H_

#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace fcp {

/// One timestamped object inside a segment.
struct SegmentEntry {
  ObjectId object = 0;
  Timestamp time = 0;

  friend bool operator==(const SegmentEntry&, const SegmentEntry&) = default;
};

/// A maximal subsequence of one stream whose time span is <= xi
/// (Definition 5). Segments of one stream overlap; every co-occurrence
/// pattern occurrence is contained in at least one segment, which is why the
/// miners only ever look at segments.
///
/// Invariants (established by the Segmenter, checked by tests):
///  - entries are ordered by non-decreasing time;
///  - last().time - first().time <= xi;
///  - maximality is a property of the enclosing stream, not of the Segment
///    object itself.
class Segment {
 public:
  Segment() = default;

  /// Builds a segment from parts. `entries` must be non-empty and sorted by
  /// time; `id` must be unique among live segments.
  Segment(SegmentId id, StreamId stream, std::vector<SegmentEntry> entries)
      : id_(id), stream_(stream), entries_(std::move(entries)) {
    FCP_CHECK(!entries_.empty());
  }

  SegmentId id() const { return id_; }
  StreamId stream() const { return stream_; }

  /// Timestamp of the first object (the segment's start time).
  Timestamp start_time() const { return entries_.front().time; }

  /// Timestamp of the last object (the segment's end time).
  Timestamp end_time() const { return entries_.back().time; }

  /// end_time() - start_time(); always <= xi for segmenter-produced segments.
  DurationMs span() const { return end_time() - start_time(); }

  /// Number of objects (with multiplicity).
  size_t length() const { return entries_.size(); }

  const std::vector<SegmentEntry>& entries() const { return entries_; }

  /// The distinct objects of this segment in ascending ObjectId order
  /// (duplicates removed). This is what pattern mining operates on
  /// (patterns are sets; see DESIGN.md Semantics #4).
  std::vector<ObjectId> DistinctObjects() const;

  /// Debug representation, e.g. "G7[s2 @100..160: 5 3 9]".
  std::string DebugString() const;

  friend bool operator==(const Segment&, const Segment&) = default;

 private:
  SegmentId id_ = kInvalidSegmentId;
  StreamId stream_ = 0;
  std::vector<SegmentEntry> entries_;
};

}  // namespace fcp

#endif  // FCP_STREAM_SEGMENT_H_
