// Segment: the unit of work of all miners (Definition 5 of the paper).

#ifndef FCP_STREAM_SEGMENT_H_
#define FCP_STREAM_SEGMENT_H_

#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace fcp {

class SegmentRef;
class SegmentPool;

/// One timestamped object inside a segment.
struct SegmentEntry {
  ObjectId object = 0;
  Timestamp time = 0;

  friend bool operator==(const SegmentEntry&, const SegmentEntry&) = default;
};

/// A maximal subsequence of one stream whose time span is <= xi
/// (Definition 5). Segments of one stream overlap; every co-occurrence
/// pattern occurrence is contained in at least one segment, which is why the
/// miners only ever look at segments.
///
/// Invariants (established by the Segmenter, checked by tests):
///  - entries are ordered by non-decreasing time;
///  - last().time - first().time <= xi;
///  - maximality is a property of the enclosing stream, not of the Segment
///    object itself.
///
/// The distinct-object set is computed ONCE at construction and cached
/// (`distinct_objects()`): routing, ownership filtering and SLCP probes all
/// need it, and a segment is multicast to up to S shards — recomputing a
/// sort+unique per consumer was pure hot-path waste.
class Segment {
 public:
  Segment() = default;

  /// Builds a segment from parts. `entries` must be non-empty and sorted by
  /// time; `id` must be unique among live segments.
  Segment(SegmentId id, StreamId stream, std::vector<SegmentEntry> entries)
      : id_(id), stream_(stream), entries_(std::move(entries)) {
    FCP_CHECK(!entries_.empty());
    RebuildDistinct();
  }

  /// Rebuilds this segment in place from up to two contiguous entry spans
  /// (the two halves of a ring-buffered window), reusing the entry and
  /// distinct-object capacity already held. This is how the SegmentPool
  /// recycles slabs without churning their vectors. `head` + `tail` must be
  /// non-empty overall and time-sorted across the concatenation.
  void Assign(SegmentId id, StreamId stream,
              std::span<const SegmentEntry> head,
              std::span<const SegmentEntry> tail);

  SegmentId id() const { return id_; }
  StreamId stream() const { return stream_; }

  /// Timestamp of the first object (the segment's start time).
  Timestamp start_time() const { return entries_.front().time; }

  /// Timestamp of the last object (the segment's end time).
  Timestamp end_time() const { return entries_.back().time; }

  /// end_time() - start_time(); always <= xi for segmenter-produced segments.
  DurationMs span() const { return end_time() - start_time(); }

  /// Number of objects (with multiplicity).
  size_t length() const { return entries_.size(); }

  const std::vector<SegmentEntry>& entries() const { return entries_; }

  /// The distinct objects of this segment in ascending ObjectId order
  /// (duplicates removed), cached at construction. This is what pattern
  /// mining operates on (patterns are sets; see DESIGN.md Semantics #4).
  const std::vector<ObjectId>& distinct_objects() const { return distinct_; }

  /// Recomputes the distinct-object set from the entries (allocates). This
  /// is the reference implementation the cached `distinct_objects()` is
  /// tested against; hot paths use the cache.
  std::vector<ObjectId> DistinctObjects() const;

  /// Debug representation, e.g. "G7[s2 @100..160: 5 3 9]".
  std::string DebugString() const;

  friend bool operator==(const Segment&, const Segment&) = default;

 private:
  friend class SegmentRef;   // RelabelId on uniquely-owned slabs
  friend class SegmentPool;  // vector-capacity management when recycling

  /// Only the merge thread relabels (scratch id -> global id), and only
  /// through SegmentRef::RelabelId which checks unique ownership — segments
  /// are otherwise immutable once shared.
  void set_id(SegmentId id) { id_ = id; }

  void RebuildDistinct();

  SegmentId id_ = kInvalidSegmentId;
  StreamId stream_ = 0;
  std::vector<SegmentEntry> entries_;
  std::vector<ObjectId> distinct_;  ///< sorted, unique; derived from entries_
};

}  // namespace fcp

#endif  // FCP_STREAM_SEGMENT_H_
