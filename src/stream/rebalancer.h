// Rebalancer: turns observed per-shard load into placement changes.
//
// The routing thread feeds it every routed segment (ObserveSegment) and
// periodically asks for a decision (MaybeRebalance). Every
// `interval_segments` routed segments the rebalancer closes an *interval*:
// it reads the router's per-shard delivery counters, computes the interval
// imbalance (max/mean deliveries — the same definition the
// `fcp_shard_load_imbalance_permille` gauge publishes), and, when the
// imbalance exceeds the threshold, proposes a successor PlacementMap that
// moves the hottest objects onto the shards that have paid the least
// *cumulative modeled cost* — per-object decayed frequency squared,
// attributed each interval to the object's owner. Squared, because the
// owner of object w pays O(f_w²) of the pairwise probe-vs-chain work;
// delivery counts anti-correlate with that cost at high skew (the hot
// object's owner owns little else and so receives fewer deliveries than
// the tail shards), which is why the destination model must use cost.
//
// Choosing destinations by cumulative cost is what breaks the skew ceiling:
// a single object hot enough to dominate mining cost cannot be split within
// one interval (its pairwise work is inherently serial per trigger), but
// because its current owner accumulates cost fastest, the argmin-cumulative
// rule hands it to a different shard each round — over the run every shard
// pays ~1/S of the hot object's total cost, which is exactly the LPT bound
// a static placement can never reach. Cold objects stay put: only objects
// whose decayed interval count clears `min_move_weight` are candidates.
//
// Single-threaded: lives on the routing thread, next to the ShardRouter it
// observes. Placement changes are applied by the caller via
// ShardRouter::ApplyPlacement (see shard_router.h for the fence protocol).

#ifndef FCP_STREAM_REBALANCER_H_
#define FCP_STREAM_REBALANCER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/placement.h"
#include "common/types.h"
#include "stream/segment.h"
#include "util/flat_map.h"

namespace fcp {

class ShardRouter;

struct RebalancerOptions {
  /// Decision cadence: close an interval every this many routed segments.
  uint32_t interval_segments = 1024;
  /// Interval imbalance (max/mean per-shard deliveries) that triggers moves.
  double imbalance_threshold = 1.15;
  /// At most this many objects move per round.
  uint32_t max_moves_per_round = 4;
  /// Objects with a smaller decayed count than this are never moved (the
  /// tail is already spread fine by the hash / initial placement).
  uint64_t min_move_weight = 8;
  /// Per-round right-shift applied to all object counts, so the weights
  /// track the recent window instead of the whole run.
  uint32_t decay_shift = 1;
  /// When false the rebalancer only measures (the imbalance gauge stays
  /// live) and MaybeRebalance never proposes a placement. This is how the
  /// engine shares one imbalance definition between dashboards and the
  /// rebalancer even when --rebalance is off.
  bool apply_moves = true;
};

/// Counters describing rebalancing activity (single-threaded, read after the
/// run or from the owning thread).
struct RebalancerStats {
  uint64_t rounds = 0;           ///< intervals closed (gauge refreshes)
  uint64_t rounds_triggered = 0; ///< intervals that produced a new placement
  uint64_t objects_moved = 0;    ///< total moves across all rounds
};

class Rebalancer {
 public:
  Rebalancer(uint32_t num_shards, RebalancerOptions options = {});

  Rebalancer(const Rebalancer&) = delete;
  Rebalancer& operator=(const Rebalancer&) = delete;

  /// Accounts one routed segment toward the current interval (and, when
  /// moves are enabled, its objects toward the hot-object weights).
  void ObserveSegment(const Segment& segment);

  /// Closes the interval if due. Returns the successor placement to apply
  /// (router->ApplyPlacement), or null when the interval is still open, the
  /// load is balanced, or apply_moves is off. Reads `router`'s per-shard
  /// delivery counters and current placement; does not mutate the router.
  std::shared_ptr<const PlacementMap> MaybeRebalance(const ShardRouter& router);

  /// max/mean per-shard deliveries of the last closed interval, in permille
  /// (1000 = perfectly balanced). Valid after the first round.
  int64_t imbalance_permille() const { return imbalance_permille_; }

  const RebalancerStats& stats() const { return stats_; }

  /// Thread-safe copy of stats() plus the live imbalance, mirrored through
  /// relaxed atomics by the owning (routing) thread after every closed
  /// round. This is what /statusz samples while the pipeline runs; stats()
  /// stays single-threaded and exact.
  struct LiveStats {
    uint64_t rounds = 0;
    uint64_t rounds_triggered = 0;
    uint64_t objects_moved = 0;
    int64_t imbalance_permille = 1000;
  };
  LiveStats SnapshotStats() const {
    LiveStats s;
    s.rounds = live_rounds_.load(std::memory_order_relaxed);
    s.rounds_triggered = live_triggered_.load(std::memory_order_relaxed);
    s.objects_moved = live_moved_.load(std::memory_order_relaxed);
    s.imbalance_permille = live_imbalance_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  const uint32_t num_shards_;
  const RebalancerOptions options_;
  FlatMap<ObjectId, uint64_t> counts_;  ///< decayed per-object delivery load
  std::vector<uint64_t> last_routed_;   ///< router counters at interval open
  std::vector<uint64_t> cumulative_;    ///< per-shard deliveries since start
  std::vector<uint64_t> cumulative_cost_;  ///< per-shard modeled cost (Σf²)
  std::vector<uint64_t> model_load_;    ///< scratch: cost model during moves
  uint64_t observed_since_round_ = 0;
  int64_t imbalance_permille_ = 1000;
  RebalancerStats stats_;
  std::atomic<uint64_t> live_rounds_{0};
  std::atomic<uint64_t> live_triggered_{0};
  std::atomic<uint64_t> live_moved_{0};
  std::atomic<int64_t> live_imbalance_{1000};
  std::vector<std::pair<uint64_t, ObjectId>> hot_scratch_;
  std::vector<std::pair<ObjectId, uint32_t>> moves_scratch_;
};

}  // namespace fcp

#endif  // FCP_STREAM_REBALANCER_H_
