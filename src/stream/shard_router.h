// ShardRouter: multicasts completed segments to object-partitioned miner
// shards.
//
// One producer (the ParallelEngine's merge thread, or a bench driver) calls
// Route() with segments in global completion order; the router delivers each
// segment to every shard that owns at least one of its distinct objects,
// together with the *global* stream-time watermark at routing time. Each
// per-shard queue is SPSC — single producer (the router caller), single
// consumer (that shard's miner thread) — and bounded, so a slow shard exerts
// condition-variable backpressure instead of unbounded buffering.
//
// Deliveries carry SegmentRefs (segment_ref.h): the multicast, the live set
// and every backfill replay share ONE slab per segment, so an S-way fan-out
// costs S refcount increments instead of S entry-vector copies.
//
// Shipping the global watermark with every delivery is what keeps sharded
// mining byte-identical to a serial run: a shard only sees a subset of the
// segment stream, so its own max-end-time would lag the pipeline's and
// expire supporters later than the serial miner does. Miners call
// AdvanceWatermark(delivery.watermark) before AddSegment to stay aligned.
//
// Live migration (DESIGN.md §2.6) rides the same delivery path. The router
// targets shards through an immutable PlacementMap snapshot and stamps the
// route-time snapshot on every delivery — that is the fence: a trigger is
// mined under exactly one placement on every shard that receives it, so the
// per-trigger ownership partition stays complete and disjoint no matter how
// many times placement changes. ApplyPlacement() switches to a successor
// snapshot after enqueuing *index-only backfill* deliveries: every still-
// valid segment is replayed to the shards that own one of its objects under
// the new placement but never received it. Per-shard FIFO order then
// guarantees the new owner's index holds every valid supporter before the
// first trigger routed under the new snapshot arrives.

#ifndef FCP_STREAM_SHARD_ROUTER_H_
#define FCP_STREAM_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/placement.h"
#include "common/shard.h"
#include "common/types.h"
#include "stream/bounded_queue.h"
#include "stream/segment.h"
#include "stream/segment_ref.h"
#include "util/ring_buffer.h"

namespace fcp {

/// One delivery to a miner shard: a reference to the shared segment slab
/// plus the global watermark (max segment end time routed so far, this
/// segment included).
struct ShardDelivery {
  SegmentRef segment;
  Timestamp watermark = kMinTimestamp;
  /// Steady-clock stamp taken when Route() enqueued this delivery; the shard
  /// thread turns (now - routed_at_ns) into the segment->discovery latency
  /// histogram (queue wait + mining).
  int64_t routed_at_ns = 0;
  /// Trace-flow id stamped at route time (the segment's post-relabel global
  /// id). Shard threads emit flow-end events against it so one segment's
  /// journey — ingest, route, per-shard mine — renders as a connected arrow
  /// chain in Perfetto. Stamped unconditionally (one uint64 store) so the
  /// router stays independent of the recorder's enabled state.
  uint64_t trace_flow = 0;
  /// The placement snapshot in force when this delivery was enqueued (null =
  /// hash placement). The consuming shard applies it to its miner before
  /// processing, so ownership decisions for this segment match the routing
  /// decision that produced the delivery — the migration fence.
  std::shared_ptr<const PlacementMap> placement;
  /// Migration backfill: index the segment (AddSegmentIndexOnly), do not
  /// mine it. The segment was already mined by its route-time owners.
  bool index_only = false;
};

/// Routing counters (racy snapshots while the pipeline runs; exact after
/// Close()).
struct ShardRouterStats {
  uint64_t segments_routed = 0;  ///< Route() calls
  uint64_t deliveries = 0;       ///< sum over shards of segments enqueued
  uint64_t backfill_deliveries = 0;  ///< index-only migration replays
  uint64_t placements_applied = 0;   ///< ApplyPlacement() calls
};

/// Optional router behaviour; the defaults reproduce static hash routing.
struct ShardRouterOptions {
  /// Initial placement snapshot (null = Mix64 hash).
  std::shared_ptr<const PlacementMap> placement;
  /// Keep the live-segment set (with per-shard delivered masks) required by
  /// ApplyPlacement. Costs one SegmentRef per Route (a refcount, not a
  /// copy); requires num_shards <= 64 and a valid `tau`.
  bool track_live = false;
  /// Validity window for the live set (same tau the miners use).
  DurationMs tau = 0;
};

class ShardRouter {
 public:
  /// `num_shards >= 1`; `queue_capacity` bounds each per-shard queue.
  ShardRouter(uint32_t num_shards, size_t queue_capacity,
              ShardRouterOptions options = {});

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Multicasts `segment` to every shard owning >= 1 of its distinct
  /// objects (all shards when num_shards == 1). Blocks while target queues
  /// are full. Returns the number of shards the segment was delivered to
  /// (0 only if the router was closed mid-route).
  uint32_t Route(const SegmentRef& segment);

  /// Routes `count` segments in order with one queue lock per (shard, batch)
  /// instead of one per delivery. The watermark advances cumulatively in
  /// segment order, so each delivery carries exactly the watermark a
  /// sequence of Route() calls would have shipped — sharded output stays
  /// byte-identical to serial. Returns the total deliveries enqueued.
  uint64_t RouteBatch(const SegmentRef* segments, size_t count);

  /// Switches routing to `next` (a successor snapshot, normally produced by
  /// Rebalancer / PlacementMap::WithMoves) after enqueuing index-only
  /// backfill deliveries for every still-valid segment a new owner lacks.
  /// Requires ShardRouterOptions::track_live. Must be called from the
  /// routing thread (the router is single-producer). Returns the number of
  /// backfill deliveries enqueued.
  uint64_t ApplyPlacement(std::shared_ptr<const PlacementMap> next);

  /// The placement snapshot currently in force (null = hash).
  const std::shared_ptr<const PlacementMap>& placement() const {
    return placement_;
  }

  /// Closes every shard queue; consumers drain then see end-of-stream.
  void Close();

  uint32_t num_shards() const { return num_shards_; }

  /// The ShardSpec shard `i`'s miner must be constructed with.
  ShardSpec spec(uint32_t shard) const { return ShardSpec{shard, num_shards_}; }

  /// Shard `i`'s delivery queue (consumer side).
  BoundedQueue<ShardDelivery>& queue(uint32_t shard) {
    return *queues_[shard];
  }

  /// The global watermark after the last Route() call. Published through a
  /// relaxed atomic so the observability plane can sample it from another
  /// thread while the pipeline runs (per-shard watermark lag in /statusz).
  Timestamp watermark() const {
    return watermark_pub_.load(std::memory_order_relaxed);
  }

  /// Monotonic count of placement snapshots applied (0 = the initial one),
  /// also sampled cross-thread by /statusz. The placement() accessor itself
  /// remains routing-thread-only.
  uint64_t placement_version() const {
    return placement_version_.load(std::memory_order_relaxed);
  }

  const ShardRouterStats& stats() const { return stats_; }

  /// Segments delivered to `shard` so far. Relaxed-atomic, so telemetry can
  /// sample it from another thread while the pipeline runs (skew visibility:
  /// per-shard delivery counts diverge under object-popularity skew).
  uint64_t routed_to(uint32_t shard) const {
    return routed_to_[shard].load(std::memory_order_relaxed);
  }

 private:
  /// One still-valid routed segment plus the set of shards (bitmask) it has
  /// been delivered to, mined or backfilled. ApplyPlacement compares the
  /// mask against the new placement's target set to find owed backfills.
  struct LiveEntry {
    SegmentRef segment;
    uint64_t delivered = 0;
  };

  /// The shard `object` routes to under the current placement.
  uint32_t TargetShard(ObjectId object) const {
    if (placement_ != nullptr) return placement_->shard_of(object);
    return ShardOf(object, num_shards_);
  }

  /// Marks target_scratch_[s] for every shard owning >= 1 distinct object
  /// of `segment` under the current placement.
  void MarkTargets(const Segment& segment);

  /// Drops expired entries (watermark anchored, same predicate as the
  /// miners) from the live set.
  void CompactLive();

  const uint32_t num_shards_;
  ShardRouterOptions options_;
  std::vector<std::unique_ptr<BoundedQueue<ShardDelivery>>> queues_;
  std::unique_ptr<std::atomic<uint64_t>[]> routed_to_;  ///< per-shard count
  /// Routing-thread working copy; watermark_pub_ mirrors it for cross-thread
  /// reads (the hot routing loop reads the plain field, the atomic is only
  /// stored once per Route/RouteBatch).
  Timestamp watermark_ = kMinTimestamp;
  std::atomic<Timestamp> watermark_pub_{kMinTimestamp};
  std::atomic<uint64_t> placement_version_{0};
  std::shared_ptr<const PlacementMap> placement_;  ///< null = hash
  std::vector<uint8_t> target_scratch_;  ///< per-shard "owns an object" flags
  /// RouteBatch's per-shard staging buffers (capacity reused across calls;
  /// deliveries are MOVED into the queues, never copied).
  std::vector<std::vector<ShardDelivery>> batch_scratch_;
  /// Valid routed segments (track_live). A ring, not a deque: the live set
  /// is a watermark-bounded FIFO, so once its capacity covers the tau window
  /// the expiry churn performs zero allocations (a deque would allocate and
  /// free a block every ~32 entries, the single largest steady-state heap
  /// source in the whole pipeline).
  RingBuffer<LiveEntry> live_;
  uint64_t routes_since_compact_ = 0;
  ShardRouterStats stats_;
};

}  // namespace fcp

#endif  // FCP_STREAM_SHARD_ROUTER_H_
