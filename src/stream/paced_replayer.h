// Replays a pre-generated event trace into a BoundedQueue at a controlled
// arrival rate (events per wall-clock second). Drives the Fig. 8 maximum
// sustainable workload experiment.

#ifndef FCP_STREAM_PACED_REPLAYER_H_
#define FCP_STREAM_PACED_REPLAYER_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "stream/bounded_queue.h"

namespace fcp {

/// Statistics of one replay run.
struct ReplayStats {
  uint64_t offered = 0;   ///< events the producer attempted to enqueue
  uint64_t accepted = 0;  ///< events that fit into the queue
  uint64_t dropped = 0;   ///< events rejected because the queue was full
  double elapsed_seconds = 0.0;
};

/// Pushes `events` into `queue` at `rate_per_second`, in batches of
/// `batch` events (pacing granularity; the paper feeds per-second bursts,
/// we default to 10ms ticks for smoother pacing). Blocks until all events
/// were offered or `deadline_seconds` elapsed.
///
/// When the queue is full the event is *dropped* and counted — this mirrors
/// the paper's saturation criterion (queue usage pinned at capacity).
ReplayStats ReplayAtRate(const std::vector<ObjectEvent>& events,
                         double rate_per_second,
                         BoundedQueue<ObjectEvent>* queue,
                         double deadline_seconds = 1e9, int batch = 0);

}  // namespace fcp

#endif  // FCP_STREAM_PACED_REPLAYER_H_
