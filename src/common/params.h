// User-facing mining parameters (Table 2 of the paper) and their validation.

#ifndef FCP_COMMON_PARAMS_H_
#define FCP_COMMON_PARAMS_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/types.h"

namespace fcp {

/// The thresholds that define a frequent co-occurrence pattern (Definitions
/// 2-3 of the paper) plus operational knobs of the miners.
///
/// - `xi`    (ξ): maximum time span of a co-occurrence inside one stream; also
///               the span bound of a segment (Definition 5).
/// - `tau`   (τ): maximum global time interval covering the appearances of a
///               pattern across streams. Must satisfy tau >= xi.
/// - `theta` (θ): minimum number of *distinct* streams a pattern must appear
///               in to be frequent.
/// - `max_pattern_size` (k): miners enumerate FCPs with up to this many
///               objects. 0 means "unbounded" (mine all sizes).
/// - `min_pattern_size`: smallest pattern size to report. The paper reports
///               FCP_1 upward; many applications only care about size >= 2.
struct MiningParams {
  DurationMs xi = Seconds(60);
  DurationMs tau = Minutes(30);
  uint32_t theta = 3;
  uint32_t max_pattern_size = 5;
  uint32_t min_pattern_size = 1;

  /// Hard cap on the number of objects in one segment that the miners will
  /// consider when building candidate patterns. Extremely dense segments
  /// (hundreds of objects within ξ) would otherwise blow up the Apriori
  /// lattice; real deployments bound this. 0 disables the cap.
  uint32_t max_segment_objects = 0;

  /// Maintenance knob: how often (in event time) the DI-Index / Matrix run
  /// their full expiry sweeps; the Seg-tree uses lazy deletion and only
  /// consults this for its memory-pressure fallback sweep.
  DurationMs maintenance_interval = Minutes(5);

  /// Returns OK iff the parameter combination is meaningful.
  Status Validate() const;

  /// Human-readable one-liner, e.g. "xi=60s tau=30min theta=3 k<=5".
  std::string ToString() const;

  friend bool operator==(const MiningParams&, const MiningParams&) = default;
};

}  // namespace fcp

#endif  // FCP_COMMON_PARAMS_H_
