// Object-space sharding for shard-parallel mining.
//
// The mining stage scales across cores by running S independent miner
// replicas, each owning a disjoint slice of the object universe:
//
//   shard(o) = Mix64(o) % S
//
// A pattern P (a sorted object set) is *owned* by the shard of its minimum
// object. Every occurrence segment of P contains all of P's objects —
// including min(P) — so the shard that receives every segment containing one
// of its owned objects sees every occurrence of every pattern it owns. The
// union of the shard outputs therefore equals the serial result exactly: no
// occurrence is lost (recall) and no pattern is owned by two shards (no
// duplicates). See DESIGN.md "Shard ownership semantics".

// With a PlacementMap attached (common/placement.h), ownership is data
// instead of a hash: placement(o) replaces Mix64(o) % S, which is how the
// frequency-weighted initial placement and the live Rebalancer change which
// shard owns a hot object without touching the ownership *rule* — min-object
// ownership and the union==serial proof are placement-agnostic, because any
// function object -> shard partitions the pattern space.

#ifndef FCP_COMMON_SHARD_H_
#define FCP_COMMON_SHARD_H_

#include <cstdint>

#include "common/hash.h"
#include "common/placement.h"
#include "common/types.h"

namespace fcp {

/// The shard responsible for `object` among `num_shards` shards. Mix64
/// spreads adjacent ids (data generators hand them out densely, often in
/// popularity order) so hot objects do not pile onto one shard.
inline uint32_t ShardOf(ObjectId object, uint32_t num_shards) {
  return static_cast<uint32_t>(Mix64(object) % num_shards);
}

/// Identity of one miner shard inside a group of `count` shards. The default
/// (shard 0 of 1) owns everything, so unsharded code paths are the S=1
/// special case of the sharded ones.
struct ShardSpec {
  uint32_t index = 0;
  uint32_t count = 1;
  /// When set, ownership consults this placement instead of the hash. Not
  /// owned; the holder (miner / shard thread) keeps the snapshot alive and
  /// swaps the pointer at delivery boundaries only (never mid-AddSegment),
  /// so one trigger is always mined under exactly one placement.
  const PlacementMap* placement = nullptr;

  /// True iff this shard owns `object` (always true for count <= 1).
  bool Owns(ObjectId object) const {
    if (count <= 1) return true;
    if (placement != nullptr) return placement->shard_of(object) == index;
    return ShardOf(object, count) == index;
  }

  /// True iff this shard is the whole universe (the serial special case).
  bool IsSingleton() const { return count <= 1; }

  friend bool operator==(const ShardSpec&, const ShardSpec&) = default;
};

}  // namespace fcp

#endif  // FCP_COMMON_SHARD_H_
