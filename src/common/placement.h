// Load-aware object placement: the pluggable replacement for hash(o) % S.
//
// Static `ShardOf(o, S) = Mix64(o) % S` ownership balances shards only as
// well as the object popularity distribution allows: the shard owning a hot
// word pays the O(f_w^2) pairwise probe work of that word, so at Zipf
// s = 1.0 one shard is ~half of all mining cost and the pipeline tops out
// far short of linear (BENCH_scaling.json). A PlacementMap makes the
// object -> shard function data: a dense table for the observed id range
// (generators hand out ids densely) with the Mix64 hash as fallback for
// unseen objects, seeded by a greedy balance over observed object
// frequencies and amended at runtime by the Rebalancer.
//
// Snapshots are IMMUTABLE. Routing threads publish a new snapshot (via
// shared_ptr) instead of mutating the current one, and every ShardDelivery
// carries the snapshot in force when it was routed. A segment is therefore
// mined under exactly one placement — the one at route time — which is the
// fence that keeps migration from ever splitting or duplicating a pattern's
// ownership mid-trigger (DESIGN.md §2.6).

#ifndef FCP_COMMON_PLACEMENT_H_
#define FCP_COMMON_PLACEMENT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/types.h"

namespace fcp {

/// One immutable object -> shard assignment. Objects inside the dense range
/// read a flat table; objects beyond it fall back to the Mix64 hash, so an
/// open vocabulary never needs the table resized.
class PlacementMap {
 public:
  /// The hash-equivalent placement: empty dense table, every object falls
  /// back to Mix64(o) % num_shards.
  explicit PlacementMap(uint32_t num_shards);

  /// A placement with an explicit dense table (`dense[o]` is the shard of
  /// object `o` for `o < dense.size()`). Every entry must be < num_shards.
  PlacementMap(uint32_t num_shards, std::vector<uint32_t> dense);

  PlacementMap(const PlacementMap&) = delete;
  PlacementMap& operator=(const PlacementMap&) = delete;

  uint32_t shard_of(ObjectId object) const {
    if (object < dense_.size()) return dense_[static_cast<size_t>(object)];
    return static_cast<uint32_t>(Mix64(object) % num_shards_);
  }

  uint32_t num_shards() const { return num_shards_; }
  size_t dense_size() const { return dense_.size(); }

  /// Monotone snapshot id (0 for the initial placement); the Rebalancer
  /// bumps it on every ApplyPlacement so logs and traces can name epochs.
  uint64_t version() const { return version_; }

  /// A copy of this placement with `moves` applied ([object, new_shard]
  /// pairs; objects beyond the dense range grow the table to include them)
  /// and the version bumped. This is the only way placements change:
  /// the successor is a fresh immutable snapshot.
  std::shared_ptr<const PlacementMap> WithMoves(
      std::span<const std::pair<ObjectId, uint32_t>> moves) const;

  size_t MemoryUsage() const {
    return sizeof(*this) + dense_.capacity() * sizeof(uint32_t);
  }

 private:
  uint32_t num_shards_;
  uint64_t version_ = 0;
  std::vector<uint32_t> dense_;
};

/// Greedy frequency-weighted initial placement: objects sorted by weight
/// descending, each assigned to the currently lightest shard (LPT). Weights
/// are the caller's cost model — per-object squared frequency approximates
/// the pairwise probe work the paper's hot-word term concentrates, so the
/// head of the distribution is spread instead of hashed onto one victim.
/// `weights` are (object, weight) pairs from an observation pass; objects
/// not listed fall back to the hash. The dense table covers
/// [0, max listed object], capped at `max_dense_objects` entries (listed
/// objects beyond the cap are dropped to the hash fallback).
std::shared_ptr<const PlacementMap> BuildGreedyPlacement(
    std::span<const std::pair<ObjectId, uint64_t>> weights,
    uint32_t num_shards, size_t max_dense_objects = size_t{1} << 22);

}  // namespace fcp

#endif  // FCP_COMMON_PLACEMENT_H_
