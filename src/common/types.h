// Core value types shared by every layer of libfcp.
//
// All identifiers are plain integer types: streams, objects, and segments are
// dense ids handed out by the data generators / the segment registry. Using
// integers (rather than strings) keeps the hot mining paths allocation-free;
// applications that have string keys interned them once at the edge (see
// examples/trending_topics.cpp for the idiom).

#ifndef FCP_COMMON_TYPES_H_
#define FCP_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace fcp {

/// Identifier of a data stream (e.g., one camera, one Twitter user).
using StreamId = uint32_t;

/// Identifier of an object flowing through the streams (a vehicle plate, a
/// word, an item sku). Objects are shared across streams; two events in
/// different streams carrying the same ObjectId denote the *same* object.
using ObjectId = uint32_t;

/// Identifier of a segment. Segment ids are unique across all streams and
/// monotonically increasing in completion order (assigned by the segmenter /
/// segment registry).
using SegmentId = uint64_t;

/// Event time in milliseconds. Streams deliver events ordered by Timestamp
/// within each stream. We use a signed 64-bit integer so that subtracting two
/// timestamps is always well defined.
using Timestamp = int64_t;

/// A duration in milliseconds (same unit as Timestamp).
using DurationMs = int64_t;

/// Sentinel for "no segment".
inline constexpr SegmentId kInvalidSegmentId =
    std::numeric_limits<SegmentId>::max();

/// Sentinel for "no object".
inline constexpr ObjectId kInvalidObjectId =
    std::numeric_limits<ObjectId>::max();

/// Sentinel timestamp smaller than any real event time.
inline constexpr Timestamp kMinTimestamp =
    std::numeric_limits<Timestamp>::min();

/// Sentinel timestamp larger than any real event time.
inline constexpr Timestamp kMaxTimestamp =
    std::numeric_limits<Timestamp>::max();

/// One element of a data stream: object `object` was observed in stream
/// `stream` at time `time` (Definition 1 of the paper).
struct ObjectEvent {
  StreamId stream = 0;
  ObjectId object = 0;
  Timestamp time = 0;

  friend bool operator==(const ObjectEvent&, const ObjectEvent&) = default;
};

/// Milliseconds helpers so call sites can say `Seconds(60)` instead of 60000.
constexpr DurationMs Millis(int64_t ms) { return ms; }
constexpr DurationMs Seconds(int64_t s) { return s * 1000; }
constexpr DurationMs Minutes(int64_t m) { return m * 60 * 1000; }

}  // namespace fcp

#endif  // FCP_COMMON_TYPES_H_
