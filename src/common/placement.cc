#include "common/placement.h"

#include <algorithm>

#include "common/check.h"

namespace fcp {

PlacementMap::PlacementMap(uint32_t num_shards) : num_shards_(num_shards) {
  FCP_CHECK(num_shards >= 1);
}

PlacementMap::PlacementMap(uint32_t num_shards, std::vector<uint32_t> dense)
    : num_shards_(num_shards), dense_(std::move(dense)) {
  FCP_CHECK(num_shards >= 1);
  for (uint32_t shard : dense_) FCP_CHECK(shard < num_shards);
}

std::shared_ptr<const PlacementMap> PlacementMap::WithMoves(
    std::span<const std::pair<ObjectId, uint32_t>> moves) const {
  std::vector<uint32_t> dense = dense_;
  for (const auto& [object, shard] : moves) {
    FCP_CHECK(shard < num_shards_);
    if (object >= dense.size()) {
      // Grow to cover the moved object; the new slots keep their hash
      // assignment so only the moved object changes owner.
      const size_t old_size = dense.size();
      dense.resize(static_cast<size_t>(object) + 1);
      for (size_t o = old_size; o < dense.size(); ++o) {
        dense[o] = static_cast<uint32_t>(Mix64(o) % num_shards_);
      }
    }
    dense[static_cast<size_t>(object)] = shard;
  }
  auto next = std::make_shared<PlacementMap>(num_shards_, std::move(dense));
  next->version_ = version_ + 1;
  return next;
}

std::shared_ptr<const PlacementMap> BuildGreedyPlacement(
    std::span<const std::pair<ObjectId, uint64_t>> weights,
    uint32_t num_shards, size_t max_dense_objects) {
  FCP_CHECK(num_shards >= 1);
  ObjectId max_object = 0;
  for (const auto& [object, weight] : weights) {
    (void)weight;
    if (object < max_dense_objects && object > max_object) {
      max_object = object;
    }
  }
  std::vector<uint32_t> dense(
      weights.empty() ? 0 : static_cast<size_t>(max_object) + 1);
  // Unlisted ids keep the hash assignment (matches the fallback, so the
  // dense table is transparent for them).
  for (size_t o = 0; o < dense.size(); ++o) {
    dense[o] = static_cast<uint32_t>(Mix64(o) % num_shards);
  }

  // LPT: heaviest object first onto the lightest shard. Sort indices, not
  // the caller's span; ties broken by object id for determinism.
  std::vector<uint32_t> order(weights.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (weights[a].second != weights[b].second) {
      return weights[a].second > weights[b].second;
    }
    return weights[a].first < weights[b].first;
  });
  std::vector<uint64_t> load(num_shards, 0);
  for (const uint32_t i : order) {
    const auto& [object, weight] = weights[i];
    if (object >= dense.size()) continue;  // beyond the dense cap
    uint32_t lightest = 0;
    for (uint32_t s = 1; s < num_shards; ++s) {
      if (load[s] < load[lightest]) lightest = s;
    }
    dense[static_cast<size_t>(object)] = lightest;
    // An unweighted object still occupies its owner a little; +1 keeps the
    // zero-weight tail spread round-robin instead of piling onto shard 0.
    load[lightest] += weight + 1;
  }
  return std::make_shared<const PlacementMap>(num_shards, std::move(dense));
}

}  // namespace fcp
