#include "common/params.h"

#include <sstream>

namespace fcp {

Status MiningParams::Validate() const {
  if (xi <= 0) {
    return Status::InvalidArgument("xi must be positive");
  }
  if (tau <= 0) {
    return Status::InvalidArgument("tau must be positive");
  }
  if (tau < xi) {
    return Status::InvalidArgument(
        "tau must be >= xi (the paper assumes tau >> xi)");
  }
  if (theta == 0) {
    return Status::InvalidArgument("theta must be >= 1");
  }
  if (max_pattern_size != 0 && min_pattern_size > max_pattern_size) {
    return Status::InvalidArgument(
        "min_pattern_size must be <= max_pattern_size");
  }
  if (min_pattern_size == 0) {
    return Status::InvalidArgument("min_pattern_size must be >= 1");
  }
  if (maintenance_interval <= 0) {
    return Status::InvalidArgument("maintenance_interval must be positive");
  }
  return Status::OK();
}

std::string MiningParams::ToString() const {
  std::ostringstream os;
  os << "xi=" << xi << "ms tau=" << tau << "ms theta=" << theta << " k=["
     << min_pattern_size << ",";
  if (max_pattern_size == 0) {
    os << "inf";
  } else {
    os << max_pattern_size;
  }
  os << "]";
  return os.str();
}

}  // namespace fcp
