// Hashing helpers: hash combining and hashers for composite keys used by the
// indexes (object pairs in the Matrix index, pattern keys in result
// collectors).

#ifndef FCP_COMMON_HASH_H_
#define FCP_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fcp {

/// Mixes 64 bits thoroughly (the SplitMix64 finalizer). Good enough as a
/// building block for all internal hash tables.
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines a hash value with the hash of another 64-bit quantity.
constexpr uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

/// Hash functor for an (a, b) pair of 32-bit ids packed into one word.
/// Used by the Matrix index, keyed on unordered object pairs.
struct PairHash {
  size_t operator()(const std::pair<uint32_t, uint32_t>& p) const {
    return static_cast<size_t>(
        Mix64((static_cast<uint64_t>(p.first) << 32) | p.second));
  }
};

/// Order-sensitive hash of a sequence of 32-bit ids. Patterns are stored as
/// sorted vectors, so equal sets hash equally.
struct IdVectorHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    uint64_t h = 0x2545f4914f6cdd1dULL;
    for (uint32_t x : v) h = HashCombine(h, x);
    return static_cast<size_t>(h);
  }
};

}  // namespace fcp

#endif  // FCP_COMMON_HASH_H_
