// Internal invariant checks.
//
// FCP_CHECK is always on (it guards programmer errors that would otherwise
// corrupt index state); FCP_DCHECK compiles away in release builds and is
// used on hot paths.

#ifndef FCP_COMMON_CHECK_H_
#define FCP_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace fcp::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "FCP_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace fcp::internal

#define FCP_CHECK(expr)                                     \
  do {                                                      \
    if (!(expr)) {                                          \
      ::fcp::internal::CheckFailed(#expr, __FILE__, __LINE__); \
    }                                                       \
  } while (0)

#ifdef NDEBUG
#define FCP_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define FCP_DCHECK(expr) FCP_CHECK(expr)
#endif

#endif  // FCP_COMMON_CHECK_H_
