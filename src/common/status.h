// Lightweight status/error type used at API boundaries (configuration
// validation, data loading). The mining hot paths never fail and therefore do
// not return Status.

#ifndef FCP_COMMON_STATUS_H_
#define FCP_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace fcp {

/// Error categories. Deliberately small; extend only when a caller needs to
/// dispatch on the code.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kInternal = 5,
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument"...).
std::string_view StatusCodeToString(StatusCode code);

/// Value type describing the outcome of a fallible operation.
///
/// Usage:
///   Status s = params.Validate();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// kOk (use the default constructor for success).
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

}  // namespace fcp

#endif  // FCP_COMMON_STATUS_H_
