// Open-addressing hash map for integral keys on the mining hot path.
//
// std::unordered_map allocates one heap node per element, so the Seg-tree's
// id -> node and object -> chain-head maps produced a malloc/free pair per
// segment even at steady state. FlatMap stores slots inline in one flat
// array (linear probing, power-of-two capacity) and erases with
// backward-shift deletion, so there are no tombstones and a size-stable map
// performs ZERO heap allocations: memory is only touched when the element
// count outgrows the load-factor bound and the table rehashes.
//
// Not a general-purpose map: keys must be integral (hashed with Mix64),
// iteration order is unspecified, and iterators/pointers are invalidated by
// any structural mutation (insert/erase/rehash). The mutable iterator may
// modify slot *values* in place (the index sweeps compact posting lists this
// way) but must never touch keys.

#ifndef FCP_UTIL_FLAT_MAP_H_
#define FCP_UTIL_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/hash.h"

namespace fcp {

template <typename K, typename V>
class FlatMap {
  static_assert(std::is_integral_v<K>, "FlatMap keys must be integral ids");

 public:
  using value_type = std::pair<K, V>;

  FlatMap() = default;

  /// Ensures capacity for `n` elements without rehashing.
  void Reserve(size_t n) {
    size_t cap = kMinCapacity;
    while (cap * kMaxLoadNum < n * kMaxLoadDen) cap <<= 1;
    if (cap > slots_.size()) Rehash(cap);
  }

  V* Find(K key) {
    if (size_ == 0) return nullptr;
    for (size_t i = Home(key);; i = Next(i)) {
      if (!used_[i]) return nullptr;
      if (slots_[i].first == key) return &slots_[i].second;
    }
  }
  const V* Find(K key) const {
    return const_cast<FlatMap*>(this)->Find(key);
  }

  bool Contains(K key) const { return Find(key) != nullptr; }

  /// Issues a software prefetch of `key`'s home slot (read intent, low
  /// temporal locality). Purely advisory — no observable effect — and safe
  /// on an empty map. Batched ingestion calls this for the next segment's
  /// objects while the current one is being mined, so the probe chain's
  /// first line is warm by the time Find() runs.
  void PrefetchSlot(K key) const {
#if defined(__GNUC__) || defined(__clang__)
    if (slots_.empty()) return;
    const size_t home = Home(key);
    __builtin_prefetch(&slots_[home], /*rw=*/0, /*locality=*/1);
    __builtin_prefetch(&used_[home], /*rw=*/0, /*locality=*/1);
#else
    (void)key;
#endif
  }

  /// Returns the value for `key`, inserting a default-constructed V first if
  /// absent (the unordered_map operator[] shape the index code uses).
  V& operator[](K key) {
    MaybeGrow();
    for (size_t i = Home(key);; i = Next(i)) {
      if (!used_[i]) {
        used_[i] = 1;
        slots_[i].first = key;
        slots_[i].second = V{};
        ++size_;
        return slots_[i].second;
      }
      if (slots_[i].first == key) return slots_[i].second;
    }
  }

  /// Inserts (key, value); returns false (leaving the map unchanged) if the
  /// key is already present.
  bool Insert(K key, V value) {
    MaybeGrow();
    for (size_t i = Home(key);; i = Next(i)) {
      if (!used_[i]) {
        used_[i] = 1;
        slots_[i].first = key;
        slots_[i].second = std::move(value);
        ++size_;
        return true;
      }
      if (slots_[i].first == key) return false;
    }
  }

  /// Removes `key` if present (backward-shift deletion: no tombstones, so
  /// load factor — and therefore rehash pressure — never creeps up under
  /// churn). Returns true iff the key was present.
  bool Erase(K key) {
    if (size_ == 0) return false;
    size_t i = Home(key);
    for (;; i = Next(i)) {
      if (!used_[i]) return false;
      if (slots_[i].first == key) break;
    }
    // Shift the probe chain back over the hole.
    size_t hole = i;
    for (size_t j = Next(i);; j = Next(j)) {
      if (!used_[j]) break;
      const size_t home = Home(slots_[j].first);
      // `j` may move into the hole iff its home position is not inside the
      // (hole, j] cycle — i.e. the element is not already as close to its
      // home as the hole would allow.
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = std::move(slots_[j]);
        hole = j;
      }
    }
    used_[hole] = 0;
    slots_[hole].second = V{};  // drop payload resources eagerly
    --size_;
    return true;
  }

  void Clear() {
    std::fill(used_.begin(), used_.end(), uint8_t{0});
    for (auto& slot : slots_) slot.second = V{};
    size_ = 0;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Bytes held by the table (slot array + occupancy bytes).
  size_t MemoryUsage() const {
    return slots_.capacity() * sizeof(value_type) +
           used_.capacity() * sizeof(uint8_t) + sizeof(*this);
  }

  /// Forward iterator over occupied slots (unspecified order). Mutation
  /// invalidates iterators.
  class const_iterator {
   public:
    const_iterator(const FlatMap* map, size_t index)
        : map_(map), index_(index) {
      SkipFree();
    }
    const value_type& operator*() const { return map_->slots_[index_]; }
    const value_type* operator->() const { return &map_->slots_[index_]; }
    const_iterator& operator++() {
      ++index_;
      SkipFree();
      return *this;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.index_ == b.index_;
    }

   private:
    void SkipFree() {
      while (index_ < map_->slots_.size() && !map_->used_[index_]) ++index_;
    }
    const FlatMap* map_;
    size_t index_;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, slots_.size()); }

  /// Mutable forward iterator: values may be modified in place, keys must
  /// not be. Structural mutation (operator[], Insert, Erase) invalidates it.
  class iterator {
   public:
    iterator(FlatMap* map, size_t index) : map_(map), index_(index) {
      SkipFree();
    }
    value_type& operator*() const { return map_->slots_[index_]; }
    value_type* operator->() const { return &map_->slots_[index_]; }
    iterator& operator++() {
      ++index_;
      SkipFree();
      return *this;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.index_ == b.index_;
    }

   private:
    void SkipFree() {
      while (index_ < map_->slots_.size() && !map_->used_[index_]) ++index_;
    }
    FlatMap* map_;
    size_t index_;
  };

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, slots_.size()); }

 private:
  static constexpr size_t kMinCapacity = 16;
  // Max load factor 7/8: linear probing stays fast and growth is rare.
  static constexpr size_t kMaxLoadNum = 7;
  static constexpr size_t kMaxLoadDen = 8;

  size_t Home(K key) const {
    return static_cast<size_t>(Mix64(static_cast<uint64_t>(key))) & mask_;
  }
  size_t Next(size_t i) const { return (i + 1) & mask_; }

  void MaybeGrow() {
    if (slots_.empty()) {
      Rehash(kMinCapacity);
    } else if ((size_ + 1) * kMaxLoadDen > slots_.size() * kMaxLoadNum) {
      Rehash(slots_.size() * 2);
    }
  }

  void Rehash(size_t new_capacity) {
    FCP_DCHECK((new_capacity & (new_capacity - 1)) == 0);
    std::vector<value_type> old_slots = std::move(slots_);
    std::vector<uint8_t> old_used = std::move(used_);
    slots_.assign(new_capacity, value_type{});
    used_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    size_ = 0;
    for (size_t i = 0; i < old_slots.size(); ++i) {
      if (old_used[i]) Insert(old_slots[i].first, std::move(old_slots[i].second));
    }
  }

  std::vector<value_type> slots_;
  std::vector<uint8_t> used_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace fcp

#endif  // FCP_UTIL_FLAT_MAP_H_
