// Online summary statistics and simple histograms for the bench harness.

#ifndef FCP_UTIL_STATS_H_
#define FCP_UTIL_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace fcp {

/// Welford-style running mean / variance / min / max accumulator.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = (n_ == 1) ? x : std::min(min_, x);
    max_ = (n_ == 1) ? x : std::max(max_, x);
    sum_ += x;
  }

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Parallel combine (Chan et al.): merging per-shard accumulators yields
  /// the same mean/variance as one accumulator over the union.
  void Merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const uint64_t n = n_ + other.n_;
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) /
                           static_cast<double>(n);
    mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(n);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    n_ = n;
  }

  void Reset() { *this = RunningStats(); }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exact quantiles over a bounded sample (the bench runs are small enough to
/// keep every observation). Not intended for unbounded production telemetry.
class Sample {
 public:
  void Add(double x) { values_.push_back(x); }

  /// q in [0, 1]; returns 0 on an empty sample.
  double Quantile(double q) {
    if (values_.empty()) return 0.0;
    std::sort(values_.begin(), values_.end());
    const double idx = q * static_cast<double>(values_.size() - 1);
    const size_t lo = static_cast<size_t>(idx);
    const size_t hi = std::min(lo + 1, values_.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return values_[lo] * (1.0 - frac) + values_[hi] * frac;
  }

  /// p in [0, 100]; percentile spelling of Quantile, matching the telemetry
  /// histogram API (telemetry/metric.h).
  double Percentile(double p) {
    return Quantile(std::clamp(p, 0.0, 100.0) / 100.0);
  }

  /// Pools another sample's observations (cross-shard aggregation).
  void Merge(const Sample& other) {
    values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  }

  size_t size() const { return values_.size(); }
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

}  // namespace fcp

#endif  // FCP_UTIL_STATS_H_
