// Counting replacements for the global allocation functions.
//
// Include this header in EXACTLY ONE translation unit of a binary (the one
// that defines main): it *defines* the replaceable global `operator new` /
// `operator delete` overloads, so a second inclusion in the same binary is an
// ODR violation. Every heap allocation made anywhere in the process is then
// visible through the fcp::alloc_counter accessors, which is how the
// hot-path benches and the allocation-regression test measure allocations/op
// without a malloc-interposing profiler.
//
// The counters use relaxed atomics: the hot paths under measurement are
// single-threaded, and cross-thread exactness is not needed — only the delta
// observed by the measuring thread around its own allocations.

#ifndef FCP_UTIL_ALLOC_COUNTER_H_
#define FCP_UTIL_ALLOC_COUNTER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "util/alloc_hook.h"

namespace fcp::alloc_counter {

/// Number of successful heap allocations since process start.
inline std::atomic<uint64_t>& AllocationCounter() {
  static std::atomic<uint64_t> counter{0};
  return counter;
}

/// Number of (non-null) deallocations since process start.
inline std::atomic<uint64_t>& DeallocationCounter() {
  static std::atomic<uint64_t> counter{0};
  return counter;
}

/// Total bytes requested from the heap since process start.
inline std::atomic<uint64_t>& ByteCounter() {
  static std::atomic<uint64_t> counter{0};
  return counter;
}

inline uint64_t allocations() {
  return AllocationCounter().load(std::memory_order_relaxed);
}
inline uint64_t deallocations() {
  return DeallocationCounter().load(std::memory_order_relaxed);
}
inline uint64_t bytes_allocated() {
  return ByteCounter().load(std::memory_order_relaxed);
}

inline void* CountedAllocate(std::size_t size, std::size_t alignment) {
  AllocationCounter().fetch_add(1, std::memory_order_relaxed);
  ByteCounter().fetch_add(size, std::memory_order_relaxed);
  // One relaxed load on the common (no hook) path; the heap profiler in
  // src/prof installs a sampling hook here when armed.
  if (alloc_hook::AllocHook hook =
          alloc_hook::AllocHookSlot().load(std::memory_order_relaxed);
      hook != nullptr) {
    hook(size);
  }
  if (alignment <= alignof(std::max_align_t)) return std::malloc(size);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  return std::aligned_alloc(alignment, rounded);
}

// GCC pairs allocation/deallocation functions when both ends of a heap
// object's life get inlined into one function and then flags our free() as
// mismatched with `operator new` — but these helpers ARE the global operator
// new/delete implementation, and free() is the matching call for the
// malloc/aligned_alloc they perform.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

inline void CountedFree(void* ptr) {
  if (ptr == nullptr) return;
  DeallocationCounter().fetch_add(1, std::memory_order_relaxed);
  std::free(ptr);  // glibc free() accepts aligned_alloc pointers
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace fcp::alloc_counter

// --- Replaceable global allocation functions (defined once per binary). ----

void* operator new(std::size_t size) {
  void* p = fcp::alloc_counter::CountedAllocate(
      size, alignof(std::max_align_t));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t alignment) {
  void* p = fcp::alloc_counter::CountedAllocate(
      size, static_cast<std::size_t>(alignment));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  return ::operator new(size, alignment);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return fcp::alloc_counter::CountedAllocate(size,
                                             alignof(std::max_align_t));
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void operator delete(void* ptr) noexcept { fcp::alloc_counter::CountedFree(ptr); }
void operator delete[](void* ptr) noexcept { fcp::alloc_counter::CountedFree(ptr); }
void operator delete(void* ptr, std::size_t) noexcept {
  fcp::alloc_counter::CountedFree(ptr);
}
void operator delete[](void* ptr, std::size_t) noexcept {
  fcp::alloc_counter::CountedFree(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept {
  fcp::alloc_counter::CountedFree(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  fcp::alloc_counter::CountedFree(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  fcp::alloc_counter::CountedFree(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  fcp::alloc_counter::CountedFree(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  fcp::alloc_counter::CountedFree(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  fcp::alloc_counter::CountedFree(ptr);
}

#endif  // FCP_UTIL_ALLOC_COUNTER_H_
