// The allocation hook slot: a process-wide atomic function pointer that
// util/alloc_counter.h's counting allocator invokes (relaxed load, almost
// always null) on every allocation it counts.
//
// This lives in its own header — separate from alloc_counter.h — because
// alloc_counter.h defines the replaceable global operator new/delete and may
// therefore be included in exactly one TU per binary, while consumers of the
// slot (the heap profiler in src/prof) must be linkable into any binary
// without dragging those definitions along.
//
// Contract for hook implementations: the hook runs inside operator new on
// the allocating thread. It may allocate (the installer must guard against
// recursion) but must tolerate being called from any thread at any time
// between install and uninstall, including during static init/teardown.

#ifndef FCP_UTIL_ALLOC_HOOK_H_
#define FCP_UTIL_ALLOC_HOOK_H_

#include <atomic>
#include <cstddef>

namespace fcp::alloc_hook {

using AllocHook = void (*)(std::size_t size);

/// The slot. Install with store(release), uninstall with store(nullptr).
/// The counting allocator reads it with a relaxed load.
inline std::atomic<AllocHook>& AllocHookSlot() {
  static std::atomic<AllocHook> slot{nullptr};
  return slot;
}

}  // namespace fcp::alloc_hook

#endif  // FCP_UTIL_ALLOC_HOOK_H_
