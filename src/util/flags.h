// Minimal command-line flag parsing for the bench harness binaries
// (`--key=value` / `--flag`). Not a general-purpose flags library; just
// enough to make every bench parameterizable without extra dependencies.

#ifndef FCP_UTIL_FLAGS_H_
#define FCP_UTIL_FLAGS_H_

#include <cstdint>
#include <string>
#include <unordered_map>

namespace fcp {

/// Parses `--key=value` and bare `--key` arguments. Unknown positional
/// arguments are ignored (google-benchmark consumes its own flags first).
class Flags {
 public:
  Flags(int argc, char** argv);

  /// True iff `--name` or `--name=...` was passed.
  bool Has(const std::string& name) const;

  /// Value lookups with defaults.
  std::string GetString(const std::string& name, std::string def) const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;

 private:
  std::unordered_map<std::string, std::string> values_;
};

}  // namespace fcp

#endif  // FCP_UTIL_FLAGS_H_
