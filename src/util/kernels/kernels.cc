#include "util/kernels/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/kernels/kernels_generic.h"

namespace fcp::kernels {

namespace {

size_t ScalarIntersectU32(const uint32_t* a, size_t a_size, const uint32_t* b,
                          size_t b_size, uint32_t* out) {
  return generic::IntersectLinear(a, a_size, b, b_size, out);
}

size_t ScalarIntersectU64(const uint64_t* a, size_t a_size, const uint64_t* b,
                          size_t b_size, uint64_t* out) {
  return generic::IntersectLinear(a, a_size, b, b_size, out);
}

const KernelOps kScalarOps = {
    &generic::PopcountAtLeast, &generic::AndPopcountAtLeast,
    &ScalarIntersectU32,       &ScalarIntersectU64,
    KernelLevel::kScalar,      "scalar",
};

bool CpuSupports(KernelLevel level) {
  switch (level) {
    case KernelLevel::kScalar:
      return true;
    case KernelLevel::kSse42:
#if defined(__x86_64__) || defined(__i386__)
      return internal::Sse42Ops() != nullptr &&
             __builtin_cpu_supports("sse4.2") && __builtin_cpu_supports("popcnt");
#else
      return false;
#endif
    case KernelLevel::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return internal::Avx2Ops() != nullptr && __builtin_cpu_supports("avx2") &&
             __builtin_cpu_supports("popcnt");
#else
      return false;
#endif
  }
  return false;
}

const KernelOps* TableFor(KernelLevel level) {
  switch (level) {
    case KernelLevel::kScalar:
      return &kScalarOps;
    case KernelLevel::kSse42:
      return internal::Sse42Ops();
    case KernelLevel::kAvx2:
      return internal::Avx2Ops();
  }
  return &kScalarOps;
}

std::atomic<const KernelOps*> g_active{nullptr};
std::once_flag g_init_once;

/// First-use initialization: honor FCP_KERNEL if set, else auto.
void InitActive() {
  const char* env = std::getenv("FCP_KERNEL");
  KernelLevel level = BestSupportedLevel();
  if (env != nullptr && env[0] != '\0') {
    const std::string_view name(env);
    if (name == "scalar") {
      level = KernelLevel::kScalar;
    } else if (name == "sse") {
      level = KernelLevel::kSse42;
    } else if (name == "avx2") {
      level = KernelLevel::kAvx2;
    } else if (name != "auto") {
      std::fprintf(stderr,
                   "fcp: ignoring unknown FCP_KERNEL='%s' "
                   "(want auto|scalar|sse|avx2)\n",
                   env);
    }
  }
  if (!CpuSupports(level)) {
    const KernelLevel best = BestSupportedLevel();
    std::fprintf(stderr,
                 "fcp: kernel level '%.*s' unsupported on this CPU/build; "
                 "using '%.*s'\n",
                 static_cast<int>(KernelLevelName(level).size()),
                 KernelLevelName(level).data(),
                 static_cast<int>(KernelLevelName(best).size()),
                 KernelLevelName(best).data());
    level = best;
  }
  g_active.store(TableFor(level), std::memory_order_release);
}

}  // namespace

namespace internal {
const KernelOps* ScalarOps() { return &kScalarOps; }
}  // namespace internal

std::string_view KernelLevelName(KernelLevel level) {
  switch (level) {
    case KernelLevel::kScalar:
      return "scalar";
    case KernelLevel::kSse42:
      return "sse";
    case KernelLevel::kAvx2:
      return "avx2";
  }
  return "scalar";
}

bool LevelSupported(KernelLevel level) { return CpuSupports(level); }

KernelLevel BestSupportedLevel() {
  if (CpuSupports(KernelLevel::kAvx2)) return KernelLevel::kAvx2;
  if (CpuSupports(KernelLevel::kSse42)) return KernelLevel::kSse42;
  return KernelLevel::kScalar;
}

KernelLevel SetKernelLevel(KernelLevel level) {
  std::call_once(g_init_once, InitActive);
  if (!CpuSupports(level)) {
    const KernelLevel best = BestSupportedLevel();
    std::fprintf(stderr,
                 "fcp: kernel level '%.*s' unsupported on this CPU/build; "
                 "using '%.*s'\n",
                 static_cast<int>(KernelLevelName(level).size()),
                 KernelLevelName(level).data(),
                 static_cast<int>(KernelLevelName(best).size()),
                 KernelLevelName(best).data());
    level = best;
  }
  g_active.store(TableFor(level), std::memory_order_release);
  return level;
}

bool SetKernelLevelFromString(std::string_view name) {
  if (name == "auto") {
    SetKernelLevel(BestSupportedLevel());
    return true;
  }
  if (name == "scalar") {
    SetKernelLevel(KernelLevel::kScalar);
    return true;
  }
  if (name == "sse") {
    SetKernelLevel(KernelLevel::kSse42);
    return true;
  }
  if (name == "avx2") {
    SetKernelLevel(KernelLevel::kAvx2);
    return true;
  }
  return false;
}

KernelLevel ActiveLevel() { return Ops().level; }

const KernelOps& Ops() {
  const KernelOps* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) {
    std::call_once(g_init_once, InitActive);
    ops = g_active.load(std::memory_order_acquire);
  }
  return *ops;
}

const KernelOps& OpsFor(KernelLevel level) {
  if (!CpuSupports(level)) return kScalarOps;
  return *TableFor(level);
}

}  // namespace fcp::kernels
