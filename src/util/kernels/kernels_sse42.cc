// SSE4.2 kernel variants. Compiled with -msse4.2 -mpopcnt (see
// src/util/CMakeLists.txt); executed only when cpuid reports support.
//
// The threshold kernels are the generic loops: with -mpopcnt std::popcount
// lowers to the POPCNT instruction, which is the entire win at this level
// (SSE has no vector popcount). The u32 intersection uses 128-bit all-pairs
// block compares: 4-lane blocks (3 in-register rotations), scalar tail;
// matches are extracted in lane order, so outputs stay sorted and
// duplicate-free. u64 stays on the scalar merge: a 2-lane block buys one
// comparison per iteration but pays a shuffle, an or and a movemask, and
// bench_micro_ops measures it consistently *slower* than the branchy scalar
// loop — so this level does not ship it.

#include "util/kernels/kernels.h"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__SSE4_2__)

#include <bit>
#include <smmintrin.h>

#include "util/kernels/kernels_generic.h"

namespace fcp::kernels {
namespace {

size_t Sse42IntersectU32(const uint32_t* a, size_t a_size, const uint32_t* b,
                         size_t b_size, uint32_t* out) {
  size_t i = 0, j = 0, n = 0;
  while (i + 4 <= a_size && j + 4 <= b_size) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    // a-lane matches against every b lane: compare vb and its 3 rotations.
    __m128i eq = _mm_cmpeq_epi32(va, vb);
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
    int mask = _mm_movemask_ps(_mm_castsi128_ps(eq));
    while (mask != 0) {
      const int lane = std::countr_zero(static_cast<unsigned>(mask));
      out[n++] = a[i + static_cast<size_t>(lane)];
      mask &= mask - 1;
    }
    // Retire the block(s) whose maximum cannot match anything ahead.
    const uint32_t a_max = a[i + 3];
    const uint32_t b_max = b[j + 3];
    if (a_max <= b_max) i += 4;
    if (b_max <= a_max) j += 4;
  }
  n += generic::IntersectLinear(a + i, a_size - i, b + j, b_size - j, out + n);
  return n;
}

size_t Sse42IntersectU64(const uint64_t* a, size_t a_size, const uint64_t* b,
                         size_t b_size, uint64_t* out) {
  // Measured slower as a 2-lane block compare (see file comment); the
  // scalar merge is the fastest exact implementation at this level.
  return generic::IntersectLinear(a, a_size, b, b_size, out);
}

const KernelOps kSse42Ops = {
    &generic::PopcountAtLeast, &generic::AndPopcountAtLeast,
    &Sse42IntersectU32,        &Sse42IntersectU64,
    KernelLevel::kSse42,       "sse",
};

}  // namespace

namespace internal {
const KernelOps* Sse42Ops() { return &kSse42Ops; }
}  // namespace internal

}  // namespace fcp::kernels

#else  // non-x86 build or the compiler lacked -msse4.2

namespace fcp::kernels::internal {
const KernelOps* Sse42Ops() { return nullptr; }
}  // namespace fcp::kernels::internal

#endif
