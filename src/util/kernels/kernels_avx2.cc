// AVX2 kernel variants. Compiled with -mavx2 -mpopcnt (see
// src/util/CMakeLists.txt); executed only when cpuid reports support.
//
// Popcount uses the vpshufb nibble-LUT (Mula's method): 256 bits per
// vector, per-byte counts folded into four u64 partials with VPSADBW, with
// a horizontal threshold check every 8 vectors so the early exit stays
// cheap. Bitsets in this codebase are usually short (LCP rows / 64), so the
// vector path only engages above a small-words cutoff where it wins;
// beneath it the POPCNT loop is faster and is what the scalar tail uses
// anyway.
//
// Intersections are all-pairs block compares: 4-lane u64 blocks (3
// VPERMQ rotations) and 8-lane u32 blocks (7 VPERMD rotations), scalar
// tails. Matches are extracted in lane order, so outputs stay sorted.

#include "util/kernels/kernels.h"

#if defined(__x86_64__) && defined(__AVX2__)

#include <bit>
#include <immintrin.h>

#include "util/kernels/kernels_generic.h"

namespace fcp::kernels {
namespace {

/// Per-byte popcount of a 256-bit vector (vpshufb nibble lookup).
inline __m256i PopcountBytes(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

inline uint64_t HorizontalSumU64(__m256i v) {
  const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(v),
                                  _mm256_extracti128_si256(v, 1));
  return static_cast<uint64_t>(_mm_extract_epi64(s, 0)) +
         static_cast<uint64_t>(_mm_extract_epi64(s, 1));
}

// Below this many words the POPCNT loop beats the vector setup cost
// (measured in bench_micro_ops; tidsets here are usually a handful of
// words, so this path matters for correctness-parity more than speed).
constexpr size_t kVectorPopcountCutoffWords = 16;

bool Avx2PopcountAtLeast(const uint64_t* bits, size_t words,
                         size_t threshold) {
  if (threshold == 0) return true;
  if (words < kVectorPopcountCutoffWords) {
    return generic::PopcountAtLeast(bits, words, threshold);
  }
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  size_t w = 0;
  size_t vectors = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bits + w));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(PopcountBytes(v), zero));
    if ((++vectors & 7) == 0 && HorizontalSumU64(acc) >= threshold) {
      return true;
    }
  }
  size_t count = static_cast<size_t>(HorizontalSumU64(acc));
  for (; w < words; ++w) {
    count += static_cast<size_t>(std::popcount(bits[w]));
    if (count >= threshold) return true;
  }
  return count >= threshold;
}

bool Avx2AndPopcountAtLeast(const uint64_t* a, const uint64_t* b,
                            uint64_t* out, size_t words, size_t threshold) {
  if (words < 8) {
    return generic::AndPopcountAtLeast(a, b, out, words, threshold);
  }
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w), v);
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(PopcountBytes(v), zero));
  }
  size_t count = static_cast<size_t>(HorizontalSumU64(acc));
  for (; w < words; ++w) {
    out[w] = a[w] & b[w];
    count += static_cast<size_t>(std::popcount(out[w]));
  }
  return count >= threshold;
}

size_t Avx2IntersectU32(const uint32_t* a, size_t a_size, const uint32_t* b,
                        size_t b_size, uint32_t* out) {
  size_t i = 0, j = 0, n = 0;
  while (i + 8 <= a_size && j + 8 <= b_size) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    // Compare va against vb and its 7 non-trivial lane rotations.
    const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
    const __m256i rot2 = _mm256_setr_epi32(2, 3, 4, 5, 6, 7, 0, 1);
    const __m256i rot3 = _mm256_setr_epi32(3, 4, 5, 6, 7, 0, 1, 2);
    const __m256i rot4 = _mm256_setr_epi32(4, 5, 6, 7, 0, 1, 2, 3);
    const __m256i rot5 = _mm256_setr_epi32(5, 6, 7, 0, 1, 2, 3, 4);
    const __m256i rot6 = _mm256_setr_epi32(6, 7, 0, 1, 2, 3, 4, 5);
    const __m256i rot7 = _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6);
    // Tree-reduce the per-rotation compares: the permutes are independent
    // (all source from vb), so the critical path is one compare plus a
    // 3-deep OR tree instead of a 7-deep OR chain.
    const __m256i eq0 = _mm256_cmpeq_epi32(va, vb);
    const __m256i eq1 =
        _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot1));
    const __m256i eq2 =
        _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot2));
    const __m256i eq3 =
        _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot3));
    const __m256i eq4 =
        _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot4));
    const __m256i eq5 =
        _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot5));
    const __m256i eq6 =
        _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot6));
    const __m256i eq7 =
        _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot7));
    const __m256i eq =
        _mm256_or_si256(_mm256_or_si256(_mm256_or_si256(eq0, eq1),
                                        _mm256_or_si256(eq2, eq3)),
                        _mm256_or_si256(_mm256_or_si256(eq4, eq5),
                                        _mm256_or_si256(eq6, eq7)));
    int mask = _mm256_movemask_ps(_mm256_castsi256_ps(eq));
    while (mask != 0) {
      const int lane = std::countr_zero(static_cast<unsigned>(mask));
      out[n++] = a[i + static_cast<size_t>(lane)];
      mask &= mask - 1;
    }
    const uint32_t a_max = a[i + 7];
    const uint32_t b_max = b[j + 7];
    if (a_max <= b_max) i += 8;
    if (b_max <= a_max) j += 8;
  }
  n += generic::IntersectLinear(a + i, a_size - i, b + j, b_size - j, out + n);
  return n;
}

size_t Avx2IntersectU64(const uint64_t* a, size_t a_size, const uint64_t* b,
                        size_t b_size, uint64_t* out) {
  size_t i = 0, j = 0, n = 0;
  while (i + 4 <= a_size && j + 4 <= b_size) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    // Independent permutes, OR tree (see the u32 kernel).
    const __m256i eq0 = _mm256_cmpeq_epi64(va, vb);
    const __m256i eq1 =
        _mm256_cmpeq_epi64(va, _mm256_permute4x64_epi64(vb, 0x39));
    const __m256i eq2 =
        _mm256_cmpeq_epi64(va, _mm256_permute4x64_epi64(vb, 0x4E));
    const __m256i eq3 =
        _mm256_cmpeq_epi64(va, _mm256_permute4x64_epi64(vb, 0x93));
    const __m256i eq = _mm256_or_si256(_mm256_or_si256(eq0, eq1),
                                       _mm256_or_si256(eq2, eq3));
    int mask = _mm256_movemask_pd(_mm256_castsi256_pd(eq));
    while (mask != 0) {
      const int lane = std::countr_zero(static_cast<unsigned>(mask));
      out[n++] = a[i + static_cast<size_t>(lane)];
      mask &= mask - 1;
    }
    const uint64_t a_max = a[i + 3];
    const uint64_t b_max = b[j + 3];
    if (a_max <= b_max) i += 4;
    if (b_max <= a_max) j += 4;
  }
  n += generic::IntersectLinear(a + i, a_size - i, b + j, b_size - j, out + n);
  return n;
}

const KernelOps kAvx2Ops = {
    &Avx2PopcountAtLeast, &Avx2AndPopcountAtLeast,
    &Avx2IntersectU32,    &Avx2IntersectU64,
    KernelLevel::kAvx2,   "avx2",
};

}  // namespace

namespace internal {
const KernelOps* Avx2Ops() { return &kAvx2Ops; }
}  // namespace internal

}  // namespace fcp::kernels

#else  // not an x86-64 AVX2 build

namespace fcp::kernels::internal {
const KernelOps* Avx2Ops() { return nullptr; }
}  // namespace fcp::kernels::internal

#endif
