// Data-parallel kernels with runtime CPU dispatch.
//
// The mining hot loops spend their cycles in three primitive families:
//
//  1. tidset support counting — popcount of a bitset, and fused
//     AND+popcount of two bitsets (CooMine's Eclat-style Apriori);
//  2. sorted posting-list intersection on the *balanced* side of the
//     galloping crossover (DiMine/MatrixMine supporter intersection);
//  3. the scalar reference versions of both, which remain the portable
//     fallback and the differential-testing oracle.
//
// Each family has scalar, SSE4.2 and AVX2 implementations compiled into
// separate translation units with the matching -m flags; at startup (or on
// SetKernelLevel / FCP_KERNEL / --kernel) one KernelOps table of function
// pointers is selected, clamped to what cpuid reports the machine supports.
// Every implementation is semantically *exact*: for identical inputs every
// dispatch level returns identical results (the threshold kernels return
// the same boolean, the intersections the same output array), so miner
// output is byte-identical across levels — asserted by
// kernel_equivalence_test.
//
// Threshold kernels return "popcount >= threshold" rather than the count:
// callers only branch on the comparison (the popcount prefilter is exact
// pruning, see CooMine), which licenses an early exit as soon as the
// running count reaches the threshold without changing any observable
// result.
//
// Non-x86 builds (and x86 CPUs without the instruction sets) fall back to
// scalar; NEON is not provided because this project's CI cannot execute it
// (see DESIGN.md §2.4).

#ifndef FCP_UTIL_KERNELS_KERNELS_H_
#define FCP_UTIL_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fcp::kernels {

/// Dispatch levels, ordered: a level is eligible iff the CPU supports it.
enum class KernelLevel : int {
  kScalar = 0,
  kSse42 = 1,
  kAvx2 = 2,
};

/// One resolved set of kernel entry points. All pointers are non-null.
struct KernelOps {
  /// True iff popcount(bits[0..words)) >= threshold. May stop scanning as
  /// soon as the running count reaches `threshold` (exact: the boolean is
  /// unchanged). threshold == 0 is always true.
  bool (*popcount_atleast)(const uint64_t* bits, size_t words,
                           size_t threshold);

  /// Writes out[w] = a[w] & b[w] for every w in [0, words) — the output is
  /// always complete, callers consume it on success — and returns
  /// popcount(out) >= threshold. Counting (not the AND) may stop early at
  /// the threshold. `out` must not alias `a` or `b` partially; exact
  /// aliasing (out == a or out == b) is allowed.
  bool (*and_popcount_atleast)(const uint64_t* a, const uint64_t* b,
                               uint64_t* out, size_t words, size_t threshold);

  /// Intersection of two ascending duplicate-free u32 ranges, written to
  /// `out` (capacity >= min(a_size, b_size); must not alias the inputs).
  /// Returns the output count. This is the *balanced* merge kernel; callers
  /// handle the skewed case with galloping (see util/intersect.h).
  size_t (*intersect_u32)(const uint32_t* a, size_t a_size, const uint32_t* b,
                          size_t b_size, uint32_t* out);

  /// Same contract for u64 ranges (SegmentId posting lists).
  size_t (*intersect_u64)(const uint64_t* a, size_t a_size, const uint64_t* b,
                          size_t b_size, uint64_t* out);

  KernelLevel level = KernelLevel::kScalar;
  const char* name = "scalar";
};

/// "scalar", "sse", "avx2".
std::string_view KernelLevelName(KernelLevel level);

/// True iff this build + this CPU can execute `level`.
bool LevelSupported(KernelLevel level);

/// The highest supported level on this machine (cpuid at first call).
KernelLevel BestSupportedLevel();

/// Forces the active dispatch level. Requests above the machine's support
/// are clamped to BestSupportedLevel() (a warning is printed to stderr);
/// returns the level actually activated. Not thread-safe against concurrent
/// mining — switch levels only between runs (tools do it at startup).
KernelLevel SetKernelLevel(KernelLevel level);

/// Parses "auto" | "scalar" | "sse" | "avx2" and activates it ("auto" =
/// BestSupportedLevel). Returns false (state unchanged) on an unknown name.
bool SetKernelLevelFromString(std::string_view name);

/// The active level. Resolution order at first use: FCP_KERNEL environment
/// variable if set (same values as SetKernelLevelFromString), else auto.
KernelLevel ActiveLevel();

/// The active ops table. One acquire load; fetch once per mining call and
/// reuse.
const KernelOps& Ops();

/// The ops table for an explicit level (clamped to supported levels) —
/// differential tests and benches iterate these.
const KernelOps& OpsFor(KernelLevel level);

namespace internal {
/// Per-TU tables. Sse42Ops()/Avx2Ops() return nullptr when the build (non-
/// x86, or a compiler without the -m flags) does not include them.
const KernelOps* ScalarOps();
const KernelOps* Sse42Ops();
const KernelOps* Avx2Ops();
}  // namespace internal

}  // namespace fcp::kernels

#endif  // FCP_UTIL_KERNELS_KERNELS_H_
