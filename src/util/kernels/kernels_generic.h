// Portable reference implementations of the kernel families, shared by the
// scalar TU (baseline codegen) and the SSE4.2 TU (same loops recompiled with
// -msse4.2 -mpopcnt, which turns std::popcount into one POPCNT instruction
// and lets the autovectorizer at the word level). These are also the
// semantic oracle the SIMD paths are differential-tested against.
//
// Internal to src/util/kernels/ — include kernels.h instead.

#ifndef FCP_UTIL_KERNELS_KERNELS_GENERIC_H_
#define FCP_UTIL_KERNELS_KERNELS_GENERIC_H_

#include <bit>
#include <cstddef>
#include <cstdint>

namespace fcp::kernels::generic {

inline bool PopcountAtLeast(const uint64_t* bits, size_t words,
                            size_t threshold) {
  if (threshold == 0) return true;
  size_t count = 0;
  for (size_t w = 0; w < words; ++w) {
    count += static_cast<size_t>(std::popcount(bits[w]));
    if (count >= threshold) return true;
  }
  return false;
}

inline bool AndPopcountAtLeast(const uint64_t* a, const uint64_t* b,
                               uint64_t* out, size_t words, size_t threshold) {
  size_t count = 0;
  size_t w = 0;
  // Count until the threshold is reached (exact early exit: the caller only
  // consumes the boolean), then finish the AND without counting — the output
  // must always be complete.
  for (; w < words; ++w) {
    const uint64_t v = a[w] & b[w];
    out[w] = v;
    count += static_cast<size_t>(std::popcount(v));
    if (count >= threshold) break;
  }
  if (w == words) return count >= threshold;
  for (++w; w < words; ++w) out[w] = a[w] & b[w];
  return true;
}

template <typename T>
size_t IntersectLinear(const T* a, size_t a_size, const T* b, size_t b_size,
                       T* out) {
  size_t i = 0, j = 0, n = 0;
  while (i < a_size && j < b_size) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out[n++] = a[i];
      ++i;
      ++j;
    }
  }
  return n;
}

}  // namespace fcp::kernels::generic

#endif  // FCP_UTIL_KERNELS_KERNELS_GENERIC_H_
