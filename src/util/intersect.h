// Sorted-set intersection with galloping for skewed operand sizes and a
// SIMD kernel for balanced ones.
//
// The Apriori support-counting paths intersect a (small) per-pattern
// supporter list with a (potentially huge) posting/pair list: under Zipf
// object popularity the size ratio is routinely 100x+. std::set_intersection
// walks both inputs linearly; galloping advances through the long side in
// O(small * log(large)) instead. For balanced inputs a block-compare SIMD
// merge (util/kernels/) is faster, so the helper picks per call.

#ifndef FCP_UTIL_INTERSECT_H_
#define FCP_UTIL_INTERSECT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "util/kernels/kernels.h"

namespace fcp {

/// Size ratio (long/short) above which galloping replaces the block/linear
/// merge. Tuned with bench_micro_ops' intersect-crossover sweep (u64
/// posting lists, long side 4096, same-universe overlap): the merge wins
/// ratio 8 by ~1.4x (AVX2 block) / ~1.3x (scalar), the two strategies are
/// within ~15% of each other at ratio 16 under every dispatch level, and
/// galloping wins ratio 32 by ~1.7x vs the AVX2 merge (~2x vs scalar),
/// growing without bound beyond (~5x at 128). 16 is the measured
/// break-even for both the vectorized and the scalar merge, so it costs
/// nothing where they tie and keeps the asymptotic win on the 100x-skewed
/// Zipf tail.
inline constexpr size_t kGallopCrossoverRatio = 16;

namespace internal {

/// First index in sorted [begin, size) with data[index] >= key, found by
/// exponential probing from `begin` (cheap when the answer is near).
template <typename T>
size_t GallopLowerBound(const T* data, size_t begin, size_t size,
                        const T& key) {
  size_t step = 1;
  size_t hi = begin;
  while (hi < size && data[hi] < key) {
    begin = hi + 1;
    hi += step;
    step <<= 1;
  }
  if (hi > size) hi = size;
  return static_cast<size_t>(
      std::lower_bound(data + begin, data + hi, key) - data);
}

}  // namespace internal

/// Intersects two ascending, duplicate-free ranges into `out` (cleared
/// first; capacity is reused across calls). Galloping kicks in when one side
/// is kGallopCrossoverRatio+ longer than the other; the balanced branch of
/// u32/u64 element types runs the active dispatch kernel (scalar merge on
/// other types).
template <typename T>
void IntersectSorted(const T* a, size_t a_size, const T* b, size_t b_size,
                     std::vector<T>* out) {
  out->clear();
  if (a_size == 0 || b_size == 0) return;
  if (a_size > b_size) {
    std::swap(a, b);
    std::swap(a_size, b_size);
  }
  if (b_size / kGallopCrossoverRatio <= a_size) {
    // Balanced: block-compare SIMD merge for the kernel-backed widths.
    if constexpr (std::is_same_v<T, uint64_t>) {
      out->resize(a_size);
      out->resize(kernels::Ops().intersect_u64(a, a_size, b, b_size,
                                               out->data()));
      return;
    } else if constexpr (std::is_same_v<T, uint32_t>) {
      out->resize(a_size);
      out->resize(kernels::Ops().intersect_u32(a, a_size, b, b_size,
                                               out->data()));
      return;
    } else {
      size_t i = 0, j = 0;
      while (i < a_size && j < b_size) {
        if (a[i] < b[j]) {
          ++i;
        } else if (b[j] < a[i]) {
          ++j;
        } else {
          out->push_back(a[i]);
          ++i;
          ++j;
        }
      }
      return;
    }
  }
  // Skewed: iterate the short side, gallop through the long side.
  size_t j = 0;
  for (size_t i = 0; i < a_size; ++i) {
    j = internal::GallopLowerBound(b, j, b_size, a[i]);
    if (j == b_size) return;
    if (b[j] == a[i]) {
      out->push_back(a[i]);
      ++j;
    }
  }
}

template <typename T>
void IntersectSorted(const std::vector<T>& a, const std::vector<T>& b,
                     std::vector<T>* out) {
  IntersectSorted(a.data(), a.size(), b.data(), b.size(), out);
}

/// Scratch-capacity release policy. IntersectSorted (and the miners' other
/// scratch vectors) clear but never shrink, so one pathological trigger — a
/// viral object with a million-entry posting list, say — leaves its
/// high-water capacity pinned forever. Calling shrink_to_fit
/// unconditionally would be worse: steady-state capacity would be released
/// and re-allocated every call, breaking the zero-allocation invariant.
///
/// This helper splits the difference: it releases a vector's buffer only
/// when the capacity exceeds both a floor (small buffers are never worth
/// releasing) and `oversize_factor` times the current size. Callers invoke
/// it at *maintenance* boundaries (the periodic expiry sweep), never per
/// operation, so a stable workload — whose scratch sizes hover near their
/// high-water marks — never trips it and stays allocation-free, while a
/// workload shift of oversize_factor+ eventually returns the memory.
/// Returns true iff the buffer was released.
template <typename T>
bool ShrinkToFitIfOversized(std::vector<T>* v, size_t oversize_factor = 8,
                            size_t min_capacity_bytes = 4096) {
  if (v->capacity() * sizeof(T) <= min_capacity_bytes) return false;
  if (v->capacity() / oversize_factor <= v->size()) return false;
  v->shrink_to_fit();
  return true;
}

}  // namespace fcp

#endif  // FCP_UTIL_INTERSECT_H_
