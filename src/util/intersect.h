// Sorted-set intersection with galloping for skewed operand sizes.
//
// The Apriori support-counting paths intersect a (small) per-pattern
// supporter list with a (potentially huge) posting/pair list: under Zipf
// object popularity the size ratio is routinely 100x+. std::set_intersection
// walks both inputs linearly; galloping advances through the long side in
// O(small * log(large)) instead. For balanced inputs the plain merge is
// faster, so the helper picks per call.

#ifndef FCP_UTIL_INTERSECT_H_
#define FCP_UTIL_INTERSECT_H_

#include <algorithm>
#include <cstddef>
#include <vector>

namespace fcp {

namespace internal {

/// First index in sorted [begin, size) with data[index] >= key, found by
/// exponential probing from `begin` (cheap when the answer is near).
template <typename T>
size_t GallopLowerBound(const T* data, size_t begin, size_t size,
                        const T& key) {
  size_t step = 1;
  size_t hi = begin;
  while (hi < size && data[hi] < key) {
    begin = hi + 1;
    hi += step;
    step <<= 1;
  }
  if (hi > size) hi = size;
  return static_cast<size_t>(
      std::lower_bound(data + begin, data + hi, key) - data);
}

}  // namespace internal

/// Intersects two ascending, duplicate-free ranges into `out` (cleared
/// first; capacity is reused across calls). Galloping kicks in when one side
/// is 8x+ longer than the other.
template <typename T>
void IntersectSorted(const T* a, size_t a_size, const T* b, size_t b_size,
                     std::vector<T>* out) {
  out->clear();
  if (a_size == 0 || b_size == 0) return;
  if (a_size > b_size) {
    std::swap(a, b);
    std::swap(a_size, b_size);
  }
  if (b_size / 8 <= a_size) {
    // Balanced: linear merge.
    size_t i = 0, j = 0;
    while (i < a_size && j < b_size) {
      if (a[i] < b[j]) {
        ++i;
      } else if (b[j] < a[i]) {
        ++j;
      } else {
        out->push_back(a[i]);
        ++i;
        ++j;
      }
    }
    return;
  }
  // Skewed: iterate the short side, gallop through the long side.
  size_t j = 0;
  for (size_t i = 0; i < a_size; ++i) {
    j = internal::GallopLowerBound(b, j, b_size, a[i]);
    if (j == b_size) return;
    if (b[j] == a[i]) {
      out->push_back(a[i]);
      ++j;
    }
  }
}

template <typename T>
void IntersectSorted(const std::vector<T>& a, const std::vector<T>& b,
                     std::vector<T>* out) {
  IntersectSorted(a.data(), a.size(), b.data(), b.size(), out);
}

}  // namespace fcp

#endif  // FCP_UTIL_INTERSECT_H_
