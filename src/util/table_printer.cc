#include "util/table_printer.h"

#include <cstdio>
#include <iomanip>

#include "common/check.h"

namespace fcp {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  FCP_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  FCP_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c])) << row[c];
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
  os.flush();  // bench output is often piped to a file; don't sit in buffers
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c] << (c + 1 == row.size() ? "\n" : ",");
    }
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

}  // namespace fcp
