// Plain-text table output for the bench harness: every figure of the paper is
// regenerated as an aligned table (one row per plotted point) that is easy to
// diff and to feed into a plotting script.

#ifndef FCP_UTIL_TABLE_PRINTER_H_
#define FCP_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace fcp {

/// Collects rows of string cells and prints them column-aligned.
///
/// Usage:
///   TablePrinter t({"rate", "seg_tree_mb", "di_index_mb", "matrix_mb"});
///   t.AddRow({"1000", "12.1", "15.0", "48.2"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds a data row; must have the same number of cells as the header.
  void AddRow(std::vector<std::string> cells);

  /// Formats a double with `digits` fractional digits.
  static std::string Num(double v, int digits = 2);

  /// Prints the header, a separator, and all rows, space-aligned.
  void Print(std::ostream& os) const;

  /// Prints in comma-separated form (for plotting scripts).
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fcp

#endif  // FCP_UTIL_TABLE_PRINTER_H_
