// Analytic memory-footprint estimation for the index structures.
//
// The paper compares the three indexes by resident memory (Fig. 5(a)/5(b)).
// We account analytically instead of asking the allocator: every index sums
// the footprint of its nodes/entries/containers with the helpers below. The
// constants are libstdc++-shaped estimates; what matters for reproducing the
// figure is that all three indexes are measured with the same ruler.

#ifndef FCP_UTIL_MEMORY_H_
#define FCP_UTIL_MEMORY_H_

#include <cstddef>

namespace fcp {

/// Estimated bytes of a std::vector<T> with `size` elements (capacity is
/// assumed ~= size; the indexes shrink or grow geometrically, and the same
/// assumption is applied to every index).
template <typename T>
constexpr size_t VectorFootprint(size_t size) {
  return sizeof(void*) * 3 + size * sizeof(T);
}

/// Estimated per-element overhead of one std::unordered_map node
/// (libstdc++: next pointer + cached hash) plus its bucket share.
inline constexpr size_t kHashNodeOverhead = 16;
inline constexpr size_t kHashBucketBytes = 8;

/// Estimated bytes of a std::unordered_map<K, V> with `size` entries,
/// assuming load factor ~1 and V stored inline in the node.
template <typename K, typename V>
constexpr size_t HashMapFootprint(size_t size) {
  return size * (sizeof(K) + sizeof(V) + kHashNodeOverhead) +
         size * kHashBucketBytes + 56 /* control block */;
}

/// Estimated bytes of a std::deque<T> with `size` elements (512-byte blocks
/// plus the block map).
template <typename T>
constexpr size_t DequeFootprint(size_t size) {
  const size_t per_block = 512 / sizeof(T) > 0 ? 512 / sizeof(T) : 1;
  const size_t blocks = (size + per_block - 1) / per_block + 1;
  return blocks * 512 + blocks * sizeof(void*) + 80;
}

}  // namespace fcp

#endif  // FCP_UTIL_MEMORY_H_
