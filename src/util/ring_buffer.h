// Growable ring buffer (FIFO) with power-of-two capacity.
//
// Replaces std::deque on the hot path: a deque allocates and frees 512-byte
// blocks as the FIFO advances, which shows up as steady-state heap traffic.
// The ring only allocates when the live element count outgrows its capacity;
// a size-stable FIFO (the Seg-tree's Tlist) performs zero allocations.

#ifndef FCP_UTIL_RING_BUFFER_H_
#define FCP_UTIL_RING_BUFFER_H_

#include <algorithm>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/check.h"

namespace fcp {

template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;

  void push_back(T value) {
    if (size_ == data_.size()) Grow();
    data_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  void pop_front() {
    FCP_DCHECK(size_ > 0);
    data_[head_] = T{};  // drop payload resources eagerly
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  T& front() {
    FCP_DCHECK(size_ > 0);
    return data_[head_];
  }
  const T& front() const {
    FCP_DCHECK(size_ > 0);
    return data_[head_];
  }

  /// Element `i` positions behind the front (0 == front).
  const T& at(size_t i) const {
    FCP_DCHECK(i < size_);
    return data_[(head_ + i) & mask_];
  }
  T& at(size_t i) {
    FCP_DCHECK(i < size_);
    return data_[(head_ + i) & mask_];
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// The contents as (up to) two contiguous spans: `first_span()` runs from
  /// the front to the end of the backing array, `second_span()` holds the
  /// wrapped remainder (empty when the live range is contiguous). Consumers
  /// that copy the whole FIFO (the Segmenter emitting a window) use these to
  /// bulk-copy instead of iterating element-wise.
  std::span<const T> first_span() const {
    const size_t first = std::min(size_, data_.size() - head_);
    return std::span<const T>(data_.data() + head_, first);
  }
  std::span<const T> second_span() const {
    const size_t first = std::min(size_, data_.size() - head_);
    return std::span<const T>(data_.data(), size_ - first);
  }

  /// Drops every element (capacity is kept).
  void clear() {
    for (size_t i = 0; i < size_; ++i) {
      data_[(head_ + i) & mask_] = T{};
    }
    head_ = 0;
    size_ = 0;
  }

  /// Bytes held by the backing array.
  size_t MemoryUsage() const {
    return data_.capacity() * sizeof(T) + sizeof(*this);
  }

 private:
  void Grow() {
    const size_t new_capacity = data_.empty() ? 16 : data_.size() * 2;
    std::vector<T> grown(new_capacity);
    for (size_t i = 0; i < size_; ++i) {
      grown[i] = std::move(data_[(head_ + i) & mask_]);
    }
    data_ = std::move(grown);
    head_ = 0;
    mask_ = new_capacity - 1;
  }

  std::vector<T> data_;
  size_t head_ = 0;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace fcp

#endif  // FCP_UTIL_RING_BUFFER_H_
