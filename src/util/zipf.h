// Zipfian object popularity distribution used by the Twitter-like generator
// (word frequencies) and the e-commerce example (item popularity).

#ifndef FCP_UTIL_ZIPF_H_
#define FCP_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace fcp {

/// Samples ranks in [0, n) with P(rank = r) proportional to 1 / (r+1)^s.
///
/// Implementation: precomputed cumulative table + binary search. Build cost
/// is O(n); sampling is O(log n). For the vocabulary sizes we use (<= 1M)
/// the table is small and sampling is fast and exact.
class ZipfDistribution {
 public:
  /// `n` must be >= 1; `s` is the skew exponent (s = 0 is uniform; Twitter
  /// word frequencies are conventionally modeled near s = 1).
  ZipfDistribution(uint64_t n, double s);

  /// Draws one rank in [0, n).
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

  /// Probability mass of rank `r` (for tests).
  double Pmf(uint64_t r) const;

 private:
  uint64_t n_;
  double s_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i), cdf_.back() == 1.0
};

}  // namespace fcp

#endif  // FCP_UTIL_ZIPF_H_
