// Wall-clock timing helper used by benches and the Fig. 8 workload harness.

#ifndef FCP_UTIL_STOPWATCH_H_
#define FCP_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace fcp {

/// Monotonic stopwatch. Start() (or construction) marks t0; Elapsed*() report
/// time since t0.
class Stopwatch {
 public:
  Stopwatch() { Start(); }

  void Start() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fcp

#endif  // FCP_UTIL_STOPWATCH_H_
