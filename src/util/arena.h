// Slab arena + free-list object pool for hot-path node recycling.
//
// The Seg-tree allocates and frees one node per inserted/removed object on
// the steady-state path; going through the global allocator for each costs a
// malloc/free pair and scatters nodes across the heap. ObjectPool<T> carves
// objects out of large slabs (cache-friendly, one allocation per slab) and
// recycles released objects through a free list WITHOUT destroying them:
// a recycled node keeps the heap capacity of its member vectors, so reusing
// it performs no allocation at all once the pool is warm. Callers reset the
// object's logical fields on acquire (see SegTree::NewNode).
//
// Slabs are never returned to the OS while the pool lives; MemoryUsage()
// reports the full slab footprint so the Fig. 5 memory accounting cannot
// silently undercount arena-backed structures.

#ifndef FCP_UTIL_ARENA_H_
#define FCP_UTIL_ARENA_H_

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace fcp {

/// Pool counters (surfaced through SegTreeStats / benches).
struct ObjectPoolStats {
  uint64_t objects_constructed = 0;  ///< placement-new slots ever created
  uint64_t objects_recycled = 0;     ///< acquires served from the free list
  uint64_t slabs_allocated = 0;
};

/// A typed slab pool. T must be default-constructible; released objects stay
/// constructed (their destructor runs only when the pool is destroyed), which
/// is what lets vector members keep their capacity across recycling.
template <typename T>
class ObjectPool {
 public:
  explicit ObjectPool(size_t objects_per_slab = 256)
      : per_slab_(objects_per_slab > 0 ? objects_per_slab : 1) {}

  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  ~ObjectPool() {
    // Every slot in [0, bump_) of the last slab and every slot of the
    // earlier slabs was placement-constructed exactly once; destroy them all
    // (free-listed objects included — they are still constructed).
    for (size_t s = 0; s < slabs_.size(); ++s) {
      const size_t constructed = s + 1 < slabs_.size() ? per_slab_ : bump_;
      for (size_t i = 0; i < constructed; ++i) Slot(s, i)->~T();
    }
  }

  /// Returns a constructed object: recycled from the free list when
  /// possible (no heap traffic), freshly placement-constructed in the
  /// current slab otherwise. The caller owns resetting its logical state.
  T* Acquire() {
    // T may be incomplete where ObjectPool<T> members are declared; check
    // here, where completeness is required anyway.
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "over-aligned pool elements are not supported");
    if (!free_.empty()) {
      T* object = free_.back();
      free_.pop_back();
      ++stats_.objects_recycled;
      return object;
    }
    if (slabs_.empty() || bump_ == per_slab_) {
      slabs_.push_back(std::make_unique<std::byte[]>(per_slab_ * sizeof(T)));
      bump_ = 0;
      ++stats_.slabs_allocated;
    }
    T* object = new (Slot(slabs_.size() - 1, bump_)) T();
    ++bump_;
    ++stats_.objects_constructed;
    return object;
  }

  /// Returns an object to the free list. It must have come from Acquire()
  /// and must not be used again until re-acquired.
  void Release(T* object) { free_.push_back(object); }

  /// Objects currently handed out (constructed minus free-listed).
  size_t live() const {
    return static_cast<size_t>(stats_.objects_constructed) - free_.size();
  }

  /// Bytes held by the slabs (the pool's true footprint: recycled and
  /// never-used slots count too).
  size_t SlabBytes() const {
    return slabs_.size() * per_slab_ * sizeof(T);
  }

  /// Bytes of the free-list bookkeeping.
  size_t FreeListBytes() const { return free_.capacity() * sizeof(T*); }

  const ObjectPoolStats& stats() const { return stats_; }

 private:
  T* Slot(size_t slab, size_t index) {
    return reinterpret_cast<T*>(slabs_[slab].get() + index * sizeof(T));
  }

  size_t per_slab_;
  size_t bump_ = 0;  // next unconstructed slot in the last slab
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::vector<T*> free_;
  ObjectPoolStats stats_;
};

/// Slab arena for power-of-two-capacity arrays of a trivially copyable T,
/// recycled through per-capacity-class free lists.
///
/// This is what makes steady-state churn allocation-free even though node
/// fan-out varies: a released array goes back to the free list of its size
/// class, so the NEXT node that needs that capacity — whichever node that is
/// — reuses it. Capacity lives in the pool keyed by size, not parked on
/// whichever object happened to grow first (vectors embedded in pooled
/// objects converge only per-object, which takes unboundedly long when
/// object roles shuffle).
template <typename T>
class ChunkArena {
  static_assert(std::is_trivially_copyable_v<T>,
                "chunks are moved with memcpy and never destroyed");
  static_assert(alignof(T) <= alignof(std::max_align_t));

 public:
  explicit ChunkArena(size_t slab_bytes = 64 * 1024)
      : slab_bytes_(slab_bytes > 0 ? slab_bytes : 1) {}

  ChunkArena(const ChunkArena&) = delete;
  ChunkArena& operator=(const ChunkArena&) = delete;

  /// Returns an uninitialized array of (1 << capacity_class) elements.
  T* Acquire(uint32_t capacity_class) {
    auto& free_list = free_[capacity_class];
    if (!free_list.empty()) {
      T* chunk = free_list.back();
      free_list.pop_back();
      return chunk;
    }
    const size_t bytes = (size_t{1} << capacity_class) * sizeof(T);
    if (slabs_.empty() || current_slab_bytes_ - bump_ < bytes) {
      // Oversized requests get a dedicated slab; offsets stay multiples of
      // sizeof(T) because every chunk is a power-of-two multiple of it.
      const size_t capacity = std::max(slab_bytes_, bytes);
      slabs_.push_back(std::make_unique<std::byte[]>(capacity));
      total_slab_bytes_ += capacity;
      current_slab_bytes_ = capacity;
      bump_ = 0;
    }
    T* chunk = reinterpret_cast<T*>(slabs_.back().get() + bump_);
    bump_ += bytes;
    return chunk;
  }

  /// Returns a chunk obtained from Acquire(capacity_class) to its free list.
  void Release(T* chunk, uint32_t capacity_class) {
    free_[capacity_class].push_back(chunk);
  }

  /// Bytes held by the slabs (live, free-listed and never-used space alike).
  size_t SlabBytes() const { return total_slab_bytes_; }

  /// Bytes of the free-list bookkeeping.
  size_t FreeListBytes() const {
    size_t bytes = 0;
    for (const auto& free_list : free_) {
      bytes += free_list.capacity() * sizeof(T*);
    }
    return bytes;
  }

 private:
  static constexpr size_t kNumClasses = 32;

  size_t slab_bytes_;
  size_t current_slab_bytes_ = 0;
  size_t bump_ = 0;  // next free byte in the last slab
  size_t total_slab_bytes_ = 0;
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::array<std::vector<T*>, kNumClasses> free_;
};

/// A vector whose backing array lives in a ChunkArena. Deliberately dumb:
/// trivially copyable/destructible (so it can sit inside ObjectPool-managed
/// nodes), no automatic cleanup — the owner calls Reset() to hand the chunk
/// back to the arena, and every growing operation takes the arena
/// explicitly. Capacity is always 0 or a power of two.
template <typename T>
struct PooledVec {
  T* data = nullptr;
  uint32_t count = 0;
  uint32_t capacity = 0;

  size_t size() const { return count; }
  bool empty() const { return count == 0; }

  T* begin() { return data; }
  T* end() { return data + count; }
  const T* begin() const { return data; }
  const T* end() const { return data + count; }

  T& operator[](size_t i) { return data[i]; }
  const T& operator[](size_t i) const { return data[i]; }
  T& back() { return data[count - 1]; }
  const T& back() const { return data[count - 1]; }

  void push_back(const T& value, ChunkArena<T>& arena) {
    if (count == capacity) Grow(arena);
    data[count++] = value;
  }

  void pop_back() { --count; }

  /// Removes element `i`, preserving order (the arrays are tiny).
  void erase_at(size_t i) {
    std::copy(data + i + 1, data + count, data + i);
    --count;
  }

  void clear() { count = 0; }

  /// Returns the chunk to the arena; the vec is empty afterwards.
  void Reset(ChunkArena<T>& arena) {
    if (data != nullptr) {
      arena.Release(data, ClassOf(capacity));
      data = nullptr;
    }
    count = 0;
    capacity = 0;
  }

 private:
  static uint32_t ClassOf(uint32_t cap) {
    return static_cast<uint32_t>(std::countr_zero(cap));
  }

  void Grow(ChunkArena<T>& arena) {
    const uint32_t new_class = capacity == 0 ? 0 : ClassOf(capacity) + 1;
    T* fresh = arena.Acquire(new_class);
    std::copy(data, data + count, fresh);
    if (data != nullptr) arena.Release(data, ClassOf(capacity));
    data = fresh;
    capacity = uint32_t{1} << new_class;
  }
};

}  // namespace fcp

#endif  // FCP_UTIL_ARENA_H_
