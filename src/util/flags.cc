#include "util/flags.h"

#include <cstdlib>
#include <string_view>

namespace fcp {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) continue;
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(arg)] = "true";
    } else {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.contains(name);
}

std::string Flags::GetString(const std::string& name, std::string def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second != "false" && it->second != "0";
}

}  // namespace fcp
