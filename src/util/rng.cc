#include "util/rng.h"

#include <cmath>

namespace fcp {

double Rng::Log(double x) { return std::log(x); }

}  // namespace fcp
