// Deterministic, fast pseudo-random number generation.
//
// All randomness in libfcp (data generators, property tests, benches) flows
// through Rng seeded explicitly, so every experiment is reproducible.

#ifndef FCP_UTIL_RNG_H_
#define FCP_UTIL_RNG_H_

#include <cstdint>

#include "common/check.h"
#include "common/hash.h"

namespace fcp {

/// xoshiro256** PRNG. Not cryptographic; excellent statistical quality and
/// very fast, which matters because the generators produce millions of events
/// per bench run.
class Rng {
 public:
  /// Seeds the four lanes from `seed` via SplitMix64 (the recommended way to
  /// initialize xoshiro state).
  explicit Rng(uint64_t seed = 0xfc9de15e1ULL) {
    uint64_t x = seed;
    for (auto& lane : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      lane = Mix64(x);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// multiply-shift rejection-free mapping (bias is negligible for our
  /// bounds, all far below 2^32).
  uint64_t Below(uint64_t bound) {
    FCP_DCHECK(bound > 0);
    return Next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    FCP_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability `p`.
  bool Chance(double p) { return NextDouble() < p; }

  /// Exponentially distributed inter-arrival gap with the given mean.
  /// Returns at least 0. Used by the generators for Poisson arrivals.
  double Exponential(double mean) {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * Log(u);
  }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  // Thin wrapper so this header does not pull in <cmath> for every user.
  static double Log(double x);

  uint64_t s_[4];
};

}  // namespace fcp

#endif  // FCP_UTIL_RNG_H_
