#include "util/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace fcp {

ZipfDistribution::ZipfDistribution(uint64_t n, double s) : n_(n), s_(s) {
  FCP_CHECK(n >= 1);
  FCP_CHECK(s >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(uint64_t r) const {
  FCP_CHECK(r < n_);
  const double lo = (r == 0) ? 0.0 : cdf_[r - 1];
  return cdf_[r] - lo;
}

}  // namespace fcp
