#include "io/trace_io.h"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

namespace fcp {

namespace {

constexpr char kMagic[4] = {'F', 'C', 'P', 'T'};
constexpr uint32_t kVersion = 1;
// 20 bytes per packed event: u32 stream, u32 object, i64 time, with 4 bytes
// of explicit padding reserved (kept zero) for forward compatibility.
constexpr size_t kRecordBytes = 20;

void SortEvents(std::vector<ObjectEvent>* events) {
  std::sort(events->begin(), events->end(),
            [](const ObjectEvent& a, const ObjectEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.stream != b.stream) return a.stream < b.stream;
              return a.object < b.object;
            });
}

// Parses a non-negative integer field; rejects garbage and overflow.
bool ParseU32(const std::string& field, uint32_t* out) {
  if (field.empty()) return false;
  uint64_t value = 0;
  for (char ch : field) {
    if (ch < '0' || ch > '9') return false;
    value = value * 10 + static_cast<uint64_t>(ch - '0');
    if (value > std::numeric_limits<uint32_t>::max()) return false;
  }
  *out = static_cast<uint32_t>(value);
  return true;
}

bool ParseI64(const std::string& field, int64_t* out) {
  if (field.empty()) return false;
  size_t i = 0;
  bool negative = false;
  if (field[0] == '-') {
    negative = true;
    i = 1;
    if (field.size() == 1) return false;
  }
  uint64_t value = 0;
  for (; i < field.size(); ++i) {
    const char ch = field[i];
    if (ch < '0' || ch > '9') return false;
    const uint64_t next = value * 10 + static_cast<uint64_t>(ch - '0');
    if (next < value) return false;  // overflow
    value = next;
  }
  if (!negative && value > static_cast<uint64_t>(
                               std::numeric_limits<int64_t>::max())) {
    return false;
  }
  if (negative &&
      value > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    return false;
  }
  *out = negative ? -static_cast<int64_t>(value) : static_cast<int64_t>(value);
  return true;
}

std::string Trimmed(std::string s) {
  while (!s.empty() && (s.back() == '\r' || s.back() == ' ' ||
                        s.back() == '\t')) {
    s.pop_back();
  }
  size_t start = 0;
  while (start < s.size() && (s[start] == ' ' || s[start] == '\t')) ++start;
  return s.substr(start);
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutI64(std::string* out, int64_t v) {
  const uint64_t u = static_cast<uint64_t>(v);
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(u >> (8 * i)));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

int64_t GetI64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return static_cast<int64_t>(v);
}

}  // namespace

Status ParseCsvEvent(const std::string& line, char delimiter,
                     ObjectEvent* event) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, delimiter)) {
    fields.push_back(Trimmed(field));
  }
  if (fields.size() != 3) {
    return Status::InvalidArgument("expected 3 fields, got " +
                                   std::to_string(fields.size()) + " in '" +
                                   line + "'");
  }
  uint32_t stream_id = 0, object_id = 0;
  int64_t time = 0;
  if (!ParseU32(fields[0], &stream_id)) {
    return Status::InvalidArgument("bad stream id '" + fields[0] + "'");
  }
  if (!ParseU32(fields[1], &object_id)) {
    return Status::InvalidArgument("bad object id '" + fields[1] + "'");
  }
  if (!ParseI64(fields[2], &time)) {
    return Status::InvalidArgument("bad timestamp '" + fields[2] + "'");
  }
  *event = ObjectEvent{stream_id, object_id, time};
  return Status::OK();
}

Status LoadCsvTrace(const std::string& path, const CsvOptions& options,
                    std::vector<ObjectEvent>* events) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  events->clear();
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string trimmed = Trimmed(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    ObjectEvent event;
    const Status status = ParseCsvEvent(trimmed, options.delimiter, &event);
    if (!status.ok()) {
      if (line_number == 1 && options.allow_header) continue;  // header
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": " + status.message());
    }
    events->push_back(event);
  }
  if (options.sort_events) SortEvents(events);
  return Status::OK();
}

Status SaveCsvTrace(const std::string& path,
                    const std::vector<ObjectEvent>& events) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot write '" + path + "'");
  }
  out << "stream,object,time_ms\n";
  for (const ObjectEvent& event : events) {
    out << event.stream << ',' << event.object << ',' << event.time << '\n';
  }
  out.flush();
  if (!out) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

Status SaveBinaryTrace(const std::string& path,
                       const std::vector<ObjectEvent>& events) {
  std::string buffer;
  buffer.reserve(16 + events.size() * kRecordBytes);
  buffer.append(kMagic, sizeof(kMagic));
  PutU32(&buffer, kVersion);
  PutI64(&buffer, static_cast<int64_t>(events.size()));
  for (const ObjectEvent& event : events) {
    PutU32(&buffer, event.stream);
    PutU32(&buffer, event.object);
    PutI64(&buffer, event.time);
    PutU32(&buffer, 0);  // reserved
  }
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) {
    return Status::Internal("cannot write '" + path + "'");
  }
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  out.flush();
  if (!out) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

Status LoadBinaryTrace(const std::string& path,
                       std::vector<ObjectEvent>* events) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::string buffer((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  if (buffer.size() < 16) {
    return Status::InvalidArgument("'" + path + "' too short for FCPT header");
  }
  if (std::memcmp(buffer.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path + "' is not an FCPT trace");
  }
  const uint32_t version = GetU32(buffer.data() + 4);
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported FCPT version " +
                                   std::to_string(version));
  }
  const int64_t count = GetI64(buffer.data() + 8);
  if (count < 0) {
    return Status::InvalidArgument("negative record count");
  }
  const size_t expected = 16 + static_cast<size_t>(count) * kRecordBytes;
  if (buffer.size() != expected) {
    return Status::OutOfRange("'" + path + "': expected " +
                              std::to_string(expected) + " bytes, got " +
                              std::to_string(buffer.size()));
  }
  events->clear();
  events->reserve(static_cast<size_t>(count));
  const char* p = buffer.data() + 16;
  for (int64_t i = 0; i < count; ++i, p += kRecordBytes) {
    events->push_back(ObjectEvent{GetU32(p), GetU32(p + 4), GetI64(p + 8)});
  }
  return Status::OK();
}

Status LoadTrace(const std::string& path, std::vector<ObjectEvent>* events) {
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0) {
    return LoadCsvTrace(path, CsvOptions{}, events);
  }
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".fcpt") == 0) {
    return LoadBinaryTrace(path, events);
  }
  return Status::InvalidArgument(
      "unknown trace extension (want .csv or .fcpt): '" + path + "'");
}

}  // namespace fcp
