// Reading and writing multi-stream event traces, so the miners can run on
// external data (the paper's VPR feeds are exactly "stream_id, object_id,
// timestamp" records).
//
// Two formats:
//
//  - CSV: one event per line, `stream,object,time_ms`, optional header line,
//    '#' comments. Events may be unsorted; LoadCsvTrace sorts by time.
//  - FCPT binary: little-endian, magic "FCPT", version, count, then packed
//    (u32 stream, u32 object, i64 time) triples. ~4x smaller and ~20x faster
//    than CSV for large traces.
//
// All functions report failures via Status; none throw.

#ifndef FCP_IO_TRACE_IO_H_
#define FCP_IO_TRACE_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace fcp {

/// Options for CSV parsing.
struct CsvOptions {
  char delimiter = ',';
  /// If true (default), a first line that does not parse as an event is
  /// treated as a header and skipped; if false, it is an error.
  bool allow_header = true;
  /// Sort events by (time, stream, object) after loading (the miners expect
  /// per-stream time order; a global sort guarantees it).
  bool sort_events = true;
};

/// Parses one CSV line into an event. Returns InvalidArgument with the
/// offending text on malformed input. Exposed for tests.
Status ParseCsvEvent(const std::string& line, char delimiter,
                     ObjectEvent* event);

/// Loads a CSV trace from `path`. On success fills `events` (replacing its
/// contents).
Status LoadCsvTrace(const std::string& path, const CsvOptions& options,
                    std::vector<ObjectEvent>* events);

/// Writes `events` as CSV with a `stream,object,time_ms` header.
Status SaveCsvTrace(const std::string& path,
                    const std::vector<ObjectEvent>& events);

/// Loads a binary FCPT trace. Validates magic, version and length; corrupt
/// or truncated files produce InvalidArgument/OutOfRange, never UB.
Status LoadBinaryTrace(const std::string& path,
                       std::vector<ObjectEvent>* events);

/// Writes `events` in FCPT binary format.
Status SaveBinaryTrace(const std::string& path,
                       const std::vector<ObjectEvent>& events);

/// Convenience dispatcher: ".csv" -> CSV, ".fcpt" -> binary, otherwise
/// InvalidArgument.
Status LoadTrace(const std::string& path, std::vector<ObjectEvent>* events);

}  // namespace fcp

#endif  // FCP_IO_TRACE_IO_H_
