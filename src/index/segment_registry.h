// Registry of live segment metadata, shared in shape by all three indexes.
//
// Ordinary nodes of the Seg-tree do not record which segments contain them
// (the paper's key memory saving); the registry is where per-segment facts
// (stream, start/end time, length) live, keyed by SegmentId.

#ifndef FCP_INDEX_SEGMENT_REGISTRY_H_
#define FCP_INDEX_SEGMENT_REGISTRY_H_

#include <cstdint>

#include "common/check.h"
#include "common/types.h"
#include "util/flat_map.h"

namespace fcp {

/// Metadata of one live segment.
struct SegmentInfo {
  StreamId stream = 0;
  Timestamp start = 0;
  Timestamp end = 0;
  uint32_t length = 0;  ///< number of objects (with multiplicity)
};

/// Id -> SegmentInfo map with expiry convenience queries. Backed by a flat
/// open-addressing table, so a size-stable registry (steady-state stream
/// churn) performs no heap allocations.
class SegmentRegistry {
 public:
  /// Registers a segment. `id` must not already be present.
  void Add(SegmentId id, const SegmentInfo& info) {
    const bool inserted = segments_.Insert(id, info);
    FCP_CHECK(inserted);
  }

  /// Looks up a segment; nullptr if it was never added or was removed.
  const SegmentInfo* Find(SegmentId id) const { return segments_.Find(id); }

  /// Removes a segment (no-op if absent). Returns true if it was present.
  bool Remove(SegmentId id) { return segments_.Erase(id); }

  /// A segment is valid at `now` iff it exists and `now - start <= tau`
  /// (DESIGN.md Semantics #2).
  bool IsValid(SegmentId id, Timestamp now, DurationMs tau) const {
    const SegmentInfo* info = Find(id);
    return info != nullptr && now - info->start <= tau;
  }

  /// True iff the segment exists but has fallen out of the tau window.
  bool IsExpired(SegmentId id, Timestamp now, DurationMs tau) const {
    const SegmentInfo* info = Find(id);
    return info != nullptr && now - info->start > tau;
  }

  size_t size() const { return segments_.size(); }

  size_t MemoryUsage() const { return segments_.MemoryUsage(); }

  auto begin() const { return segments_.begin(); }
  auto end() const { return segments_.end(); }

 private:
  FlatMap<SegmentId, SegmentInfo> segments_;
};

}  // namespace fcp

#endif  // FCP_INDEX_SEGMENT_REGISTRY_H_
