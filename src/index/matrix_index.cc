#include "index/matrix_index.h"

#include <algorithm>

#include "common/check.h"
#include "util/memory.h"

namespace fcp {

void MatrixIndex::Insert(const Segment& segment) {
  FCP_CHECK(registry_.Find(segment.id()) == nullptr);
  registry_.Add(segment.id(),
                SegmentInfo{segment.stream(), segment.start_time(),
                            segment.end_time(),
                            static_cast<uint32_t>(segment.length())});
  const std::vector<ObjectId> objects = segment.DistinctObjects();
  for (size_t i = 0; i < objects.size(); ++i) {
    for (size_t j = i; j < objects.size(); ++j) {
      cells_[MakeKey(objects[i], objects[j])].push_back(segment.id());
      ++total_entries_;
    }
  }
  ++stats_.segments_inserted;
}

std::vector<SegmentId> MatrixIndex::ValidSegments(ObjectId a, ObjectId b,
                                                  Timestamp now,
                                                  DurationMs tau) {
  std::vector<SegmentId> result;
  auto it = cells_.find(MakeKey(a, b));
  if (it == cells_.end()) return result;
  std::vector<SegmentId>& cell = it->second;

  size_t write = 0;
  for (size_t read = 0; read < cell.size(); ++read) {
    ++stats_.cell_entries_scanned;
    const SegmentId id = cell[read];
    const SegmentInfo* info = registry_.Find(id);
    if (info == nullptr || now - info->start > tau) continue;  // drop
    cell[write++] = id;
    result.push_back(id);
  }
  total_entries_ -= cell.size() - write;
  cell.resize(write);
  if (cell.empty()) cells_.erase(it);
  return result;
}

size_t MatrixIndex::RemoveExpired(Timestamp now, DurationMs tau) {
  ++stats_.full_sweeps;
  std::vector<SegmentId> expired;
  for (const auto& [id, info] : registry_) {
    if (now - info.start > tau) expired.push_back(id);
  }
  if (expired.empty()) return 0;
  std::sort(expired.begin(), expired.end());

  for (auto it = cells_.begin(); it != cells_.end();) {
    std::vector<SegmentId>& cell = it->second;
    size_t write = 0;
    for (size_t read = 0; read < cell.size(); ++read) {
      ++stats_.cell_entries_scanned;
      if (!std::binary_search(expired.begin(), expired.end(), cell[read])) {
        cell[write++] = cell[read];
      }
    }
    total_entries_ -= cell.size() - write;
    cell.resize(write);
    if (cell.empty()) {
      it = cells_.erase(it);
    } else {
      ++it;
    }
  }

  for (SegmentId id : expired) registry_.Remove(id);
  stats_.segments_expired += expired.size();
  return expired.size();
}

size_t MatrixIndex::MemoryUsage() const {
  size_t bytes =
      HashMapFootprint<Key, std::vector<SegmentId>>(cells_.size());
  bytes += total_entries_ * sizeof(SegmentId);
  bytes += registry_.MemoryUsage();
  return bytes;
}

}  // namespace fcp
